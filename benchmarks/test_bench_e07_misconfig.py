"""E7 — Misconfiguration case.

Claims quantified: the rule set detects the paper's misconfiguration
classes with high precision/recall on a labelled population, and
on-the-fly fixes recover most of the wasted runtime compared with an
advise-only deployment.
"""

from conftest import run_once

from repro.experiments.misconfig_exp import run_misconfig_scenario
from repro.experiments.report import render_table


def test_misconfig_detection_and_fixes(benchmark):
    def run_both():
        return [
            run_misconfig_scenario(seed=0, n_jobs=24, with_fixes=w, horizon_s=30_000.0)
            for w in (False, True)
        ]

    rows = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print()
    print(render_table(rows, title="E7 — labelled misconfigured population (24 jobs)"))
    advised, fixed = rows
    assert advised["precision"] >= 0.9
    assert advised["recall"] >= 0.9
    assert fixed["fixes_applied"] >= 1
    # fixes shorten misconfigured jobs' runtimes substantially
    assert fixed["mean_runtime_misconfigured_s"] < 0.8 * advised["mean_runtime_misconfigured_s"]
    # and more of the population completes within the horizon
    assert fixed["completed"] >= advised["completed"]


def test_misconfig_no_false_alarms_on_clean_population(benchmark):
    row = run_once(
        benchmark,
        run_misconfig_scenario,
        seed=3,
        n_jobs=16,
        misconfig_fraction=0.0,
        with_fixes=True,
        horizon_s=20_000.0,
    )
    print()
    print(render_table([row], title="E7 — fully clean population"))
    assert row["fixes_applied"] == 0
    assert row["n_misconfigured"] == 0
