"""E1 (Fig. 1) — holistic monitoring + ODA pipeline feasibility.

Claim quantified: a continuous monitoring pipeline with in-line
analytics is complete (no sample loss), timely (sub-second end-to-end
lag), cheap (<1% agent CPU), and supports the visualize / diagnose /
forecast roles of Fig. 1 at interactive latencies.
"""

from conftest import run_once

from repro.experiments.pipeline_exp import run_pipeline_scenario, run_sampling_tradeoff
from repro.experiments.report import render_table


def test_pipeline_64_nodes(benchmark):
    row = run_once(
        benchmark,
        run_pipeline_scenario,
        seed=0,
        n_nodes=64,
        horizon_s=3600.0,
    )
    print()
    print(render_table([row], title="E1 — monitoring + ODA pipeline (64 nodes, 1 h)"))
    assert row["completeness"] > 0.99
    assert row["e2e_lag_s"] < 1.0
    assert row["overhead_cpu_frac"] < 0.01
    assert row["anomaly_recall"] >= 0.75
    # interactive analytics: visualize/diagnose/forecast under a second each
    assert row["visualize_ms"] < 1000.0
    assert row["forecast_ms"] < 1000.0


def test_pipeline_scales_to_256_nodes(benchmark):
    row = run_once(
        benchmark,
        run_pipeline_scenario,
        seed=1,
        n_nodes=256,
        metrics_per_node=4,
        horizon_s=1800.0,
    )
    print()
    print(render_table([row], title="E1 — pipeline at 256 nodes"))
    assert row["completeness"] > 0.99
    assert row["series"] == 256 * 4


def test_sampling_period_tradeoff(benchmark):
    """E1b: the monitoring design dial — reaction time vs overhead."""
    rows = run_once(benchmark, run_sampling_tradeoff, seed=0)
    print()
    print(render_table(rows, title="E1b — sampling period trade-off"))
    assert all(r["detected_frac"] == 1.0 for r in rows)
    # detection latency grows with the period...
    latencies = [r["detect_latency_s"] for r in rows]
    assert latencies == sorted(latencies)
    # ...while monitoring cost falls
    costs = [r["overhead_cpu_frac"] for r in rows]
    assert costs == sorted(costs, reverse=True)
    assert latencies[-1] > 10 * latencies[0]
