"""E11 — trust controls (methodology question iv).

Claim quantified: bounded extension budgets give operators a dial —
small budgets already rescue most jobs while keeping extension overhang
(the untaken-backfill proxy) bounded; budget zero reproduces the status
quo.
"""

from conftest import run_once

from repro.experiments.report import render_table
from repro.experiments.trust_exp import run_trust_sweep


def test_trust_budget_sweep(benchmark):
    rows = run_once(benchmark, run_trust_sweep, seed=0, n_jobs=24, n_nodes=12)
    print()
    print(render_table(rows, title="E11 — extension budget sweep"))
    by = {int(r["max_extensions"]): r for r in rows}
    # budget 0 = status quo
    assert by[0]["ext_granted"] == 0
    # completion is (weakly) monotone in budget, and the first unit of
    # budget captures most of the value
    rates = [r["completion_rate"] for r in rows]
    assert all(b >= a - 0.05 for a, b in zip(rates, rates[1:]))
    assert by[1]["completion_rate"] - by[0]["completion_rate"] > 0.5 * (
        rates[-1] - rates[0]
    )
    # overhang stays bounded: granting extensions does not blow up idle hold
    assert all(r["overhang_nh"] < 50.0 for r in rows)


def test_confidence_gate_blocks_uncertain_actions(benchmark):
    """D3: gating on confidence trades a few rescues for fewer actions."""
    from repro.experiments.scheduler_case import SchedulerScenarioConfig
    from repro.loops.scheduler_loop import SchedulerCaseConfig

    def run_two():
        rows = []
        for min_conf in (0.0, 0.9):
            # thread the gate through via a custom config run

            cfg = SchedulerScenarioConfig(
                seed=2, mode="autonomous", n_jobs=20, n_nodes=10, horizon_s=300_000.0
            )
            # monkey-free: run the scenario, then a second pass with the gate
            # by overriding the manager's config through the module function
            row = _run_with_gate(cfg, min_conf)
            row["min_confidence"] = min_conf
            rows.append(row)
        return rows

    rows = benchmark.pedantic(run_two, rounds=1, iterations=1)
    print()
    print(render_table(rows, columns=["min_confidence", "completion_rate", "ext_req", "ext_granted"],
                       title="E11/D3 — confidence gating"))
    ungated, gated = rows
    assert gated["ext_req"] <= ungated["ext_req"]


def _run_with_gate(cfg, min_confidence):
    """Variant of run_scheduler_scenario exposing the loop confidence gate."""
    from repro.cluster.checkpoint import CheckpointStore
    from repro.cluster.node import Node, NodeSpec
    from repro.cluster.scheduler import ExtensionPolicy, Scheduler, SchedulerConfig
    from repro.experiments.metrics import JobOutcomeSummary
    from repro.loops.scheduler_loop import SchedulerCaseConfig, SchedulerCaseManager
    from repro.sim import Engine, RngRegistry
    from repro.telemetry.markers import ProgressMarkerChannel
    from repro.workloads.generator import (
        MisestimationModel,
        ResubmitPolicy,
        WorkloadGenerator,
        WorkloadSpec,
    )

    engine = Engine()
    rngs = RngRegistry(seed=cfg.seed)
    channel = ProgressMarkerChannel()
    checkpoints = CheckpointStore()
    nodes = [Node(f"n{i:03d}", NodeSpec()) for i in range(cfg.n_nodes)]
    scheduler = Scheduler(
        engine,
        nodes,
        config=SchedulerConfig(extension_policy=ExtensionPolicy(10, 100_000.0)),
        marker_channel=channel,
        checkpoint_store=checkpoints,
        rng=rngs.stream("scheduler"),
    )
    generator = WorkloadGenerator(
        engine,
        scheduler,
        rngs.stream("workload"),
        WorkloadSpec(
            n_jobs=cfg.n_jobs,
            misestimation=MisestimationModel(mu=cfg.misestimation_mu, sigma=cfg.misestimation_sigma),
        ),
    )
    ResubmitPolicy(engine, scheduler, checkpoint_store=checkpoints)
    SchedulerCaseManager(
        engine,
        scheduler,
        channel,
        config=SchedulerCaseConfig(min_confidence=min_confidence, loop_period_s=cfg.loop_period_s),
    )
    generator.start()
    engine.run(until=cfg.horizon_s)
    return JobOutcomeSummary.from_scheduler(scheduler, cfg.horizon_s).as_row()
