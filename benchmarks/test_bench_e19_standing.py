"""E19 — standing queries: O(new samples) incremental monitor serving (§IV).

PR 8 compiles hot fused monitor shapes into standing queries: per-series
partial-aggregate state (count/sum/min/max/sumsq plus rate increases per
time bin) maintained from the store's ingest listeners, so a hub tick
reads maintained state instead of re-scanning window x fleet samples.
The benchmark gates both sides of that bargain on a streamed commit
sequence at the E17b watch-fleet sizing (256 loops x 4096 series):

* hub serving from standing state ≥5× the PR 5 fused baseline — the
  standing side must *auto-register* the hot shape from tick-sharing
  statistics, and its burn-in ticks count against it;
* the per-commit partial-aggregate update costs ≤1.1× plain columnar
  ingest (paired per-commit walls, stall-trimmed pairwise);
* **exactness is asserted unconditionally**: sampled loops on sampled
  ticks must match an uncached batch engine on both sides, and the
  standing side must serve from state (no scan fallbacks).
"""

import os

import pytest
from conftest import run_once

from repro.experiments.report import render_table
from repro.experiments.standing_exp import (
    run_standing_hub_benchmark,
    run_standing_ingest_overhead,
)

MULTICORE = (os.cpu_count() or 1) >= 4


def test_standing_hub_serving_exact_and_fast(benchmark):
    row = run_once(benchmark, run_standing_hub_benchmark, seed=0)
    print()
    print(render_table(
        [row], title="E19 — standing vs fused hub serving (256 loops, 4096 series)"
    ))
    assert row["n_loops"] == 256
    assert row["n_series"] == 4096
    assert row["match"] == 1.0  # both sides vs the uncached batch engine
    assert row["auto_registered_shapes"] == 1.0  # hot shape found by the hub
    assert row["standing_fallbacks"] == 0.0  # every standing read from state
    assert row["standing_updates"] > 0
    if not MULTICORE:
        pytest.skip("hub serving gate needs an unloaded multicore host")
    assert row["hub_speedup"] >= 5.0


def test_standing_ingest_overhead(benchmark):
    row = run_once(benchmark, run_standing_ingest_overhead, seed=0)
    print()
    print(render_table(
        [row], title="E19 — standing-update overhead on columnar ingest (4096 series)"
    ))
    assert row["n_series"] == 4096
    assert row["commits"] > 0
    if not MULTICORE:
        pytest.skip("ingest overhead gate needs an unloaded multicore host")
    assert row["standing_overhead"] <= 1.1
