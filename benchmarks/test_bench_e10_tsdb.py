"""E10 — MODA storage design points (Section IV).

Measures the raw time-series path (insert rates at cardinality, window
query and downsample latency) and the model-metadata path (knowledge
registry and plan-outcome records) the paper says future MODA storage
must serve simultaneously.
"""

import numpy as np
from conftest import run_once

from repro.experiments.report import render_table
from repro.experiments.tsdb_exp import run_knowledge_ops, run_tsdb_ingest, run_tsdb_queries
from repro.telemetry.metric import SeriesKey
from repro.telemetry.tsdb import TimeSeriesStore


def test_ingest_scaling(benchmark):
    def sweep():
        return [
            run_tsdb_ingest(seed=0, n_series=256, batch_size=b) for b in (1, 64, 512)
        ]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(render_table(rows, title="E10 — ingest throughput vs batch size"))
    assert rows[0]["inserts_per_s"] > 100_000  # point inserts
    assert rows[-1]["inserts_per_s"] > 5 * rows[0]["inserts_per_s"]  # batching wins


def test_query_latency(benchmark):
    row = run_once(benchmark, run_tsdb_queries, seed=0, n_series=256)
    print()
    print(render_table([row], title="E10 — query/downsample latency"))
    assert row["query_us"] < 1000.0
    assert row["downsample_us"] < 10_000.0


def test_knowledge_metadata_ops(benchmark):
    row = run_once(benchmark, run_knowledge_ops)
    print()
    print(render_table([row], title="E10 — knowledge/model metadata ops"))
    assert row["model_register_us"] < 1000.0
    assert row["plan_record_assess_us"] < 1000.0


def test_point_insert_microbenchmark(benchmark):
    store = TimeSeriesStore(default_capacity=100_000)
    key = SeriesKey.of("m", node="n0")
    state = {"t": 0.0}

    def insert():
        state["t"] += 1.0
        store.insert(key, state["t"], 1.0)

    benchmark(insert)
    assert store.total_inserts > 0


def test_window_query_microbenchmark(benchmark):
    store = TimeSeriesStore(default_capacity=10_000)
    key = SeriesKey.of("m", node="n0")
    times = np.arange(10_000, dtype=float)
    store.insert_batch(key, times, np.sin(times))
    benchmark(lambda: store.query(key, 2_500.0, 7_500.0))
