"""E20 — observability: span tracing priced on the hot paths (§IV).

PR 9 threads span tracing through the autonomy hot paths (hub serving,
standing reads, engine execution, federated scatter, columnar ingest).
The benchmark prices the instrumentation on the two paths earlier PRs
already gate (E14 ingest, E19 standing serving), with A/A controls so
the gates bound the methodology's noise floor, not just the tracer:

* **disabled tracing ≤1.02×** — each guarded site costs one attribute
  load + branch; the A/A control (two disabled passes) must land inside
  the same gate, proving the floor is measurable at 2%;
* **enabled tracing ≤1.05×** — one bounded-ring append per span on the
  standing path (the ingest path carries no per-commit spans and must
  show that);
* **exactness is asserted unconditionally**: traced and untraced query
  sweeps must return bit-identical results on sampled ticks.
"""

import os

import pytest
from conftest import run_once

from repro.experiments.obs_exp import (
    run_obs_ingest_overhead,
    run_obs_standing_overhead,
)
from repro.experiments.report import render_table

MULTICORE = (os.cpu_count() or 1) >= 4


def test_obs_ingest_overhead(benchmark):
    row = run_once(benchmark, run_obs_ingest_overhead, seed=0)
    print()
    print(render_table(
        [row], title="E20 — tracing overhead on columnar ingest (4096 series)"
    ))
    assert row["n_series"] == 4096
    assert row["commits"] > 0
    if not MULTICORE:
        pytest.skip("overhead gates need an unloaded multicore host")
    assert row["disabled_overhead"] <= 1.02
    assert row["enabled_overhead"] <= 1.05


def test_obs_standing_overhead(benchmark):
    row = run_once(benchmark, run_obs_standing_overhead, seed=0)
    print()
    print(render_table(
        [row], title="E20 — tracing overhead on standing hub serving (64 loops)"
    ))
    assert row["n_loops"] == 64
    assert row["match"] == 1.0  # spans never perturb results
    assert row["standing_served"] > 0  # the instrumented path actually served
    assert row["spans_recorded"] > 0  # enabled sweeps actually traced
    if not MULTICORE:
        pytest.skip("overhead gates need an unloaded multicore host")
    assert row["disabled_overhead"] <= 1.02
    assert row["enabled_overhead"] <= 1.05
