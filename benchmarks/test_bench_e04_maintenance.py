"""E4 — Maintenance case: continuity of running jobs.

Claim quantified: checkpointing ahead of announced maintenance windows
preserves nearly all in-flight work (lost node-hours collapse) and the
affected workload finishes sooner.
"""


from repro.experiments.maintenance_exp import run_maintenance_scenario
from repro.experiments.report import render_table


def test_maintenance_case(benchmark):
    def run_both():
        return [run_maintenance_scenario(with_loop=w, seed=0) for w in (False, True)]

    rows = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print()
    print(render_table(rows, title="E4 — maintenance window at t=8000s, 8 long jobs"))
    without, with_loop = rows
    assert with_loop["lost_node_hours"] < 0.2 * without["lost_node_hours"]
    assert with_loop["checkpoints_saved"] >= 1
    assert without["checkpoints_saved"] == 0
    assert with_loop["makespan_s"] < without["makespan_s"]


def test_maintenance_short_notice(benchmark):
    """Even a 30-minute announcement lead still saves most of the work."""
    def run_both():
        return [
            run_maintenance_scenario(
                with_loop=w, seed=1, announce_lead_s=1800.0, checkpoint_cost_s=120.0
            )
            for w in (False, True)
        ]

    rows = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print()
    print(render_table(rows, title="E4 — short (30 min) announcement lead"))
    without, with_loop = rows
    assert with_loop["lost_node_hours"] < 0.5 * without["lost_node_hours"]
