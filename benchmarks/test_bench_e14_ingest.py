"""E14 — columnar ingest pipeline vs the seed per-object path (§IV).

Section IV makes insert rate a first-class storage concern; the paper's
holistic-monitoring premise (E1) needs full-system sample movement that
does not melt at thousands of nodes.  This benchmark drives the same
deterministic workload through both ingest paths — per-object
``Sample``/``insert`` vs ``SensorBank`` → ``SampleBatch`` →
``append_batch`` — asserting bit-identical stores, a ≥5× throughput
win at 1024 nodes × 8 metrics, and that the full E1 scenario at 1024
nodes fits inside the seed path's 256-node wall-clock budget.
"""

from conftest import run_once

from repro.experiments.ingest_exp import run_e1_scale_check, run_ingest_benchmark
from repro.experiments.report import render_table


def test_columnar_ingest_5x_over_seed_path(benchmark):
    row = run_once(benchmark, run_ingest_benchmark, seed=0)
    print()
    print(render_table([row], title="E14 — columnar vs per-object ingest (1024 nodes × 8 metrics)"))
    assert row["n_nodes"] == 1024
    assert row["metrics_per_node"] == 8
    assert row["match"] == 1.0  # both paths stored identical series
    assert row["event_reduction"] >= 4.0  # coalesced scheduling
    assert row["speedup"] >= 5.0


def test_e1_at_1024_nodes_within_256_node_budget(benchmark):
    row = run_once(benchmark, run_e1_scale_check, seed=0)
    print()
    print(render_table([row], title="E14 — E1 scale check: columnar@1024 vs seed@256"))
    assert row["node_scale_factor"] == 4.0
    assert row["legacy_completeness"] > 0.99
    assert row["columnar_completeness"] > 0.99
    assert row["within_budget"] == 1.0
