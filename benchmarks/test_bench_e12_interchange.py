"""E12 — interchangeable components (methodology questions i–ii).

Claim quantified: the loop skeleton accepts any registered forecaster
through the typed interfaces; every combination rescues the reference
job, i.e. components are genuinely swappable at run time.
"""

from conftest import run_once

from repro.experiments.interchange_exp import run_interchange_matrix
from repro.experiments.report import render_table


def test_interchange_matrix(benchmark):
    rows = run_once(benchmark, run_interchange_matrix)
    print()
    print(render_table(rows, title="E12 — forecaster swap matrix"))
    from repro.analytics.forecast import forecaster_names

    assert len(rows) == len(forecaster_names())
    assert all(r["constructed_via_registry"] for r in rows)
    assert all(r["rescued"] for r in rows)


def test_loop_iteration_microbenchmark(benchmark):
    """Cost of one full MAPE-K cycle on the regulation task (loop engine)."""
    from repro.core.patterns import DriftingElement, classical_loop_for
    from repro.sim import Engine, RngRegistry

    engine = Engine()
    element = DriftingElement(engine, "e0", RngRegistry(seed=0).fork("e", 0))
    loop = classical_loop_for(engine, element, setpoint=100.0, period_s=10.0)
    loop.start()
    state = {"until": 0.0}

    def one_cycle():
        state["until"] += 10.0
        engine.run(until=state["until"])

    benchmark(one_cycle)
    assert loop.iterations_run > 0
