"""E5 — I/O QoS case.

Claim quantified: adapting QoS token-bucket parameters to observed
application performance and system load "decrease[s] interference,
reduce[s] tail latency, and provide[s] more consistent results for
deadline dependent workflows".
"""

from conftest import run_once

from repro.experiments.report import render_table
from repro.experiments.storage_exp import run_ioqos_scenario


def test_ioqos_case(benchmark):
    def run_both():
        return [run_ioqos_scenario(with_loop=w, seed=0, horizon_s=6000.0) for w in (False, True)]

    rows = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print()
    print(render_table(rows, title="E5 — deadline tenant vs 2 saturating background tenants"))
    without, with_loop = rows
    # interference ↓
    assert with_loop["mean_latency_s"] < 0.6 * without["mean_latency_s"]
    # tail latency ↓ (violations of the 2 s target)
    assert without["violation_rate"] > 0.5
    assert with_loop["violation_rate"] < 0.2
    # the loop actually acted
    assert with_loop["qos_adjustments"] > 0


def test_ioqos_background_still_progresses(benchmark):
    """Throttling is proportionate: background tenants keep meaningful
    throughput rather than being starved outright."""
    row = run_once(benchmark, run_ioqos_scenario, with_loop=True, seed=1, horizon_s=6000.0)
    print()
    print(render_table([row], title="E5 — background throughput under shaping"))
    assert row["bg_throughput_mbps"] > 50.0
