"""E3 (Fig. 3) — the Scheduler case against its baselines.

Claim quantified: the autonomy loop rescues walltime-underestimated
jobs (completion rate up, wasted node-hours down) versus doing nothing,
static padding, and a human-mediated response; a perfect-information
oracle bounds achievable efficiency.
"""


from repro.experiments.report import render_table
from repro.experiments.scheduler_case import (
    SchedulerScenarioConfig,
    run_scheduler_scenario,
)

COLUMNS = [
    "mode", "completed", "timeout", "completion_rate", "wasted_nh",
    "ext_granted", "ext_hours", "overhang_nh", "resubmissions",
]


def test_scheduler_case_modes(benchmark):
    def run_all():
        rows = []
        for mode in ("none", "padding", "human", "autonomous", "oracle"):
            rows.append(
                run_scheduler_scenario(
                    SchedulerScenarioConfig(
                        seed=7, mode=mode, n_jobs=32, n_nodes=16, horizon_s=400_000.0
                    )
                )
            )
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    print(render_table(rows, columns=COLUMNS, title="E3 — Scheduler case (seed 7)"))
    by = {r["mode"]: r for r in rows}
    # the ordering the reproduction must show
    assert by["autonomous"]["completion_rate"] > by["human"]["completion_rate"]
    assert by["human"]["completion_rate"] > by["none"]["completion_rate"]
    assert by["autonomous"]["completion_rate"] > by["padding"]["completion_rate"]
    assert by["autonomous"]["wasted_nh"] < 0.5 * by["none"]["wasted_nh"]
    # oracle bounds extension efficiency (less padding waste than the loop)
    assert by["oracle"]["ext_hours"] <= by["autonomous"]["ext_hours"] * 1.5


def test_forecaster_choice_matters(benchmark):
    """D1 in vivo: the naive rate forecaster rescues fewer jobs."""

    def run_two():
        out = {}
        for fc in ("rate", "ols"):
            out[fc] = run_scheduler_scenario(
                SchedulerScenarioConfig(
                    seed=11, mode="autonomous", n_jobs=24, n_nodes=12,
                    horizon_s=300_000.0, forecaster_name=fc,
                )
            )
        return out

    result = benchmark.pedantic(run_two, rounds=1, iterations=1)
    rows = [dict(forecaster=k, **{c: v for c, v in r.items() if c in COLUMNS}) for k, r in result.items()]
    print()
    print(render_table(rows, title="E3/D1 — forecaster choice in the live loop"))
    assert result["ols"]["completion_rate"] >= result["rate"]["completion_rate"]
