"""E6 — OST case.

Claim quantified: continuous evaluation of back-end write performance
lets the application close files on a poorly performing OST and reopen
them elsewhere, restoring write bandwidth; without the loop the
degraded OST bottlenecks every striped write indefinitely.
"""

from math import isinf


from repro.experiments.report import render_table
from repro.experiments.storage_exp import run_ost_scenario


def test_ost_case(benchmark):
    def run_both():
        return [run_ost_scenario(with_loop=w, seed=0) for w in (False, True)]

    rows = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print()
    print(render_table(rows, title="E6 — OST degradation to 5% at t=600s"))
    without, with_loop = rows
    assert isinf(without["recovery_s"])  # never recovers
    assert with_loop["recovery_s"] < 600.0  # a few loop periods
    assert with_loop["final_bw_mbps"] > 10 * without["final_bw_mbps"]
    assert with_loop["restripes"] >= 1


def test_ost_case_multiple_writers(benchmark):
    """Several writers striped over the bad OST all get moved."""
    from repro.loops.ost_loop import OstCaseConfig, OstCaseManager
    from repro.sim import Engine
    from repro.storage import OST, OstState, ParallelFileSystem, PeriodicWriter

    def scenario():
        engine = Engine()
        fs = ParallelFileSystem(engine, [OST(f"ost{i}", 1000.0) for i in range(8)])
        writers = [
            PeriodicWriter(engine, fs, f"app{i}", size_mb=400.0, period_s=30.0, stripe_count=2)
            for i in range(4)
        ]
        for w in writers:
            w.start()
        case = OstCaseManager(engine, fs, writers, config=OstCaseConfig(loop_period_s=60.0))
        case.start()
        engine.run(until=500.0)
        victim = writers[0].file.stripe_osts[0]
        fs.set_ost_state(victim, OstState.DEGRADED, 0.05)
        engine.run(until=3000.0)
        moved = sum(1 for w in writers if victim not in w.file.stripe_osts)
        affected = sum(1 for w in writers if w.file.restripe_count > 0)
        return {"victim": victim, "writers_clear_of_victim": moved, "restriped": affected}

    row = benchmark.pedantic(scenario, rounds=1, iterations=1)
    print()
    print(render_table([row], title="E6 — fleet failover"))
    assert row["writers_clear_of_victim"] == 4
