"""E18 — process-parallel shard execution on shared-memory columns (§IV).

PR 7's execution tier moves shard ring buffers into
``multiprocessing.shared_memory`` and dispatches the per-shard
scatter/append/fold passes to a persistent worker-process pool, keeping
the gather as the canonical single-process lexsort/reduceat merge.  The
benchmark gates both sides of that bargain on identical data:

* parallel federated ``group_by`` scatters ≥2.5× the serial engine at
  4 workers × 8 shards (4096 series) — skipped below 4 CPU cores, where
  process parallelism cannot win by construction;
* shared-memory column layout costs ≤1.2× plain sharded ingest with the
  pool off (pure layout overhead — but the paired wall-clock measurement
  needs an unloaded multicore host to resolve a ~10% effect, so the gate
  skips below 4 cores like the speedup gates);
* **bit-identicality is asserted unconditionally**: every check query
  (range/instant/rate/p95 + raw ``samples()``) must match the serial
  engine exactly for every worker count, and all three ingest tiers
  must produce bit-identical stores.
"""

import os

import pytest
from conftest import run_once

from repro.experiments.parallel_exp import (
    run_parallel_ingest_benchmark,
    run_parallel_scatter_benchmark,
)
from repro.experiments.report import render_table

MULTICORE = (os.cpu_count() or 1) >= 4


def test_parallel_scatter_bit_identical_and_speedup(benchmark):
    row = run_once(benchmark, run_parallel_scatter_benchmark, seed=0)
    print()
    print(render_table(
        [row], title="E18 — parallel vs serial federated scatter (4096 series, 8 shards)"
    ))
    assert row["n_series"] == 4096
    assert row["n_shards"] == 8
    assert row["workers"] == 4
    assert row["worker_counts_checked"] >= 4  # 1, 2, 3, and the measured count
    assert row["bit_identical"] == 1.0  # every query, every worker count
    if not MULTICORE:
        pytest.skip("scatter speedup gate needs >= 4 CPU cores")
    assert row["scatter_speedup"] >= 2.5


def test_shared_memory_ingest_overhead(benchmark):
    row = run_once(benchmark, run_parallel_ingest_benchmark, seed=0)
    print()
    print(render_table(
        [row], title="E18 — shared-memory vs plain sharded ingest (4096 series, 8 shards)"
    ))
    assert row["n_series"] == 4096
    assert row["match"] == 1.0  # serial, shm, and pool-ingested stores identical
    assert row["parallel_appends"] > 0  # the pool really executed the appends
    if not MULTICORE:
        pytest.skip("ingest overhead gate needs an unloaded multicore host")
    assert row["shm_overhead"] <= 1.2
