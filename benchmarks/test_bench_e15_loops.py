"""E15 — unified loop runtime: fused fleet monitoring (§II patterns / §IV).

The paper's framework claim is many concurrent autonomy loops over
shared monitoring data; the ROADMAP north-star is hundreds of loop
instances per cluster.  This benchmark hosts a 256-instance watch fleet
(one loop per node partition, each also reading a fleet-wide aggregate)
and measures the Monitor phase two ways over identical data:

* **ad-hoc** — fusion and caching disabled: every loop's reads execute
  individually, the seed idiom of one private query pass per loop;
* **fused** — the runtime's shared hub: compatible selections widen to
  one cached pass per tick, narrow answers served by label filtering.

Asserted: identical analyzer verdicts, ≥3× cheaper monitoring, query
executions collapsed to O(ticks), and runtime hosting overhead within
1.5× of hand-wired seed-style loops.
"""

from conftest import run_once

from repro.experiments.loops_exp import run_loop_fleet_benchmark, run_runtime_overhead
from repro.experiments.report import render_table


def test_fused_fleet_monitoring_3x_over_adhoc_scans(benchmark):
    row = run_once(benchmark, run_loop_fleet_benchmark, seed=0, n_loops=256, ticks=10)
    print()
    print(render_table([row], title="E15 — 256-loop fleet: fused vs per-loop ad-hoc monitoring"))
    assert row["n_loops"] == 256
    assert row["match"] == 1.0  # same verdicts from both serving paths
    # one widened pass (+ cluster aggregate) per tick instead of
    # 2 executions per loop per tick
    assert row["fused_queries"] <= 4 * row["ticks"]
    assert row["adhoc_queries"] >= row["n_loops"] * row["ticks"]
    assert row["monitor_speedup"] >= 3.0
    # loops publish their own telemetry and it is queryable
    assert row["mean_loop_iteration_ms"] > 0.0


def test_runtime_hosting_overhead_within_budget(benchmark):
    row = run_once(benchmark, run_runtime_overhead, seed=0)
    print()
    print(render_table([row], title="E15b — LoopRuntime hosting vs hand-wired loops"))
    assert row["iterations_match"] == 1.0
    assert row["overhead_ratio"] <= 1.5
