"""E8 — "having a human in the loop limits the speed of response".

Claim quantified: the value of the Scheduler-case response decays
monotonically (in shape) with the operator's median reaction latency;
autonomous response is the zero-latency limit.
"""


from repro.experiments.report import render_table
from repro.experiments.scheduler_case import (
    SchedulerScenarioConfig,
    run_scheduler_scenario,
)


def test_human_latency_sweep(benchmark):
    latencies = [0.0, 300.0, 1800.0, 7200.0, 28800.0]

    def sweep():
        rows = []
        for latency in latencies:
            if latency == 0.0:
                cfg = SchedulerScenarioConfig(
                    seed=0, mode="autonomous", n_jobs=24, n_nodes=12, horizon_s=300_000.0
                )
            else:
                cfg = SchedulerScenarioConfig(
                    seed=0, mode="human", n_jobs=24, n_nodes=12, horizon_s=300_000.0,
                    human_median_latency_s=latency, human_availability=0.9,
                )
            row = run_scheduler_scenario(cfg)
            rows.append(
                {
                    "median_latency_s": latency,
                    "completion_rate": row["completion_rate"],
                    "wasted_nh": row["wasted_nh"],
                    "ext_granted": row["ext_granted"],
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(render_table(rows, title="E8 — response value vs operator latency"))
    # endpoint comparison: instant response ≫ 8-hour response
    assert rows[0]["completion_rate"] > rows[-1]["completion_rate"] + 0.3
    # broad monotone shape: each 24× latency step should not help
    assert rows[1]["completion_rate"] >= rows[3]["completion_rate"]


def test_availability_matters_too(benchmark):
    def run_two():
        out = []
        for availability in (1.0, 0.3):
            row = run_scheduler_scenario(
                SchedulerScenarioConfig(
                    seed=1, mode="human", n_jobs=20, n_nodes=10, horizon_s=300_000.0,
                    human_median_latency_s=600.0, human_availability=availability,
                )
            )
            out.append(
                {
                    "availability": availability,
                    "completion_rate": row["completion_rate"],
                    "dropped": row.get("human_dropped", 0.0),
                }
            )
        return out

    rows = benchmark.pedantic(run_two, rounds=1, iterations=1)
    print()
    print(render_table(rows, title="E8 — operator availability"))
    assert rows[0]["completion_rate"] >= rows[1]["completion_rate"]
