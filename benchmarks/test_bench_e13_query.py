"""E13 — vectorized query engine vs naive raw scans (Section IV).

The paper's storage section demands low query cost at high cardinality;
this benchmark pits the query subsystem (tiered rollups + vectorized
kernels + LRU cache) against the hand-rolled per-bin scan idiom it
replaced, on long-range (≥100× step) cross-series queries over ≥500
series, asserting the acceptance floor of a 5× speedup.
"""

from conftest import run_once

from repro.experiments.query_exp import run_cache_effectiveness, run_query_scan_comparison
from repro.experiments.report import render_table


def test_engine_beats_naive_scan(benchmark):
    row = run_once(
        benchmark,
        run_query_scan_comparison,
        seed=0,
        n_series=512,
        range_s=36_000.0,
        step_s=300.0,
    )
    print()
    print(render_table([row], title="E13 — long-range query: engine vs naive scan"))
    assert row["n_series"] >= 500
    assert row["range_over_step"] >= 100
    assert row["match"] == 1.0  # identical results, purely a serving-cost diff
    assert row["rollup_served"] == 1.0  # the long-range query never scanned raw bulk
    assert row["speedup_cold"] >= 5.0
    assert row["speedup_cached"] >= row["speedup_cold"]  # cache can only help


def test_cache_absorbs_dashboard_refreshes(benchmark):
    row = run_once(benchmark, run_cache_effectiveness)
    print()
    print(render_table([row], title="E13 — dashboard refresh fleet vs query cache"))
    assert row["hit_rate"] > 0.8
    assert row["rollup_served"] >= 1.0
