"""E21 — multi-tenant serving front door (§IV).

PR 10 puts admission control (token-bucket quotas, bounded queues,
in-flight caps), a degrade ladder, and priority shedding between
external callers and the query engines, behind the public
``repro.api.Client``.  The benchmark drives sustained mixed traffic
(closed-loop tenant drivers + a concurrent ingest pump sharing the
serving write gate) and gates what must hold on any host:

* **exactness** — answers served for a tenant that forbids degradation
  are bit-identical to direct engine execution;
* **accounting** — per-tenant conservation: every submitted request
  lands in exactly one of admitted/rejected/shed, and every admitted
  one in served/expired/errored;
* **quota enforcement** — a greedy flood's excess bounces off its
  token bucket.

The wall-clock gates (aggregate QPS in the thousands, served p99 below
the request deadline, quiet-tenant p99 inflation ≤2x under a greedy
flood) need an unloaded multicore host and are skipped elsewhere.
"""

import os

import pytest
from conftest import run_once

from repro.experiments.report import render_table
from repro.experiments.serve_exp import (
    run_quota_isolation_benchmark,
    run_serve_load_benchmark,
)

MULTICORE = (os.cpu_count() or 1) >= 4

LOAD_KW = dict(seed=0, n_nodes=32, duration_s=1.5, n_drivers=4)
ISO_KW = dict(seed=0, n_nodes=32, duration_s=1.0, greedy_drivers=4)


def test_serve_mixed_load(benchmark):
    row = run_once(benchmark, run_serve_load_benchmark, **LOAD_KW)
    print()
    print(render_table([row], title="E21 — sustained mixed multi-tenant serving"))
    assert row["submitted"] > 0
    assert row["served"] > 0
    assert row["errors"] == 0
    assert row["match"] == 1.0  # non-degraded answers are engine-exact
    assert row["accounting_ok"] == 1.0  # every request in exactly one bin
    if not MULTICORE:
        pytest.skip("QPS/p99 gates need an unloaded multicore host")
    assert row["qps"] >= 2000.0
    assert row["p99_ms"] <= row["deadline_ms"]


def test_serve_quota_isolation(benchmark):
    row = run_once(benchmark, run_quota_isolation_benchmark, **ISO_KW)
    print()
    print(render_table([row], title="E21b — quota isolation under a greedy flood"))
    assert row["quiet_served"] > 0
    assert row["greedy_served"] > 0
    assert row["accounting_ok"] == 1.0
    if not MULTICORE:
        pytest.skip("isolation gate needs an unloaded multicore host")
    assert row["isolation_ok"] == 1.0  # quiet p99 within 2x of its solo run
    assert row["greedy_rejected"] > 0  # the token bucket actually throttled
