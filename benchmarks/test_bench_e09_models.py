"""E9 + D1 — model selection for real-time MODA decisions.

Claims quantified (Section IV): small continual models track drifting
environments at a fraction of the per-update cost of heavyweight
refit-everything models; among TTC forecasters, robust regression wins
on drifting progress traces.
"""

from conftest import run_once

from repro.analytics.forecast import make_forecaster
from repro.analytics.models import RecursiveLeastSquares
from repro.experiments.model_exp import run_forecaster_comparison, run_model_ablation
from repro.experiments.report import render_table


def test_model_ablation_under_drift(benchmark):
    rows = run_once(benchmark, run_model_ablation, seed=0, n_samples=2000)
    print()
    print(render_table(rows, title="E9 — continual vs frozen vs batch under drift"))
    by = {r["model"].split()[0]: r for r in rows}
    continual = by["rls-forgetting"]
    frozen = by["rls-no-forgetting"]
    batch = by["batch-poly-8"]
    assert continual["post_drift_mae"] < 0.3 * frozen["post_drift_mae"]
    assert continual["post_drift_mae"] < 0.3 * batch["post_drift_mae"]
    assert continual["update_us"] < 0.5 * batch["update_us"]


def test_forecaster_ablation(benchmark):
    rows = run_once(benchmark, run_forecaster_comparison, seed=0, n_runs=30)
    print()
    print(render_table(rows, title="D1 — forecaster ablation"))
    by = {r["forecaster"]: r for r in rows}
    assert by["ols"]["rel_eta_error"] < by["rate"]["rel_eta_error"]
    assert by["theilsen"]["rel_eta_error"] < by["rate"]["rel_eta_error"]
    # the adaptive ensemble beats the naive baseline without hand-tuning
    assert by["ensemble"]["rel_eta_error"] < by["rate"]["rel_eta_error"]
    # single forecasters stay cheap enough for in-situ loops (<5 ms per
    # run); the ensemble pays for running every member but stays modest
    assert all(
        r["cost_ms_per_run"] < 5.0 for r in rows if r["forecaster"] != "ensemble"
    )
    assert by["ensemble"]["cost_ms_per_run"] < 50.0


def test_rls_update_microbenchmark(benchmark):
    """Raw per-update cost of the paper-endorsed model class."""
    model = RecursiveLeastSquares(n_features=4, forgetting=0.98)
    x = [1.0, 2.0, 3.0, 4.0]
    i = [0]

    def update():
        i[0] += 1
        model.update(x, float(i[0]))

    benchmark(update)
    assert model.n > 0


def test_forecaster_update_microbenchmark(benchmark):
    """Per-marker cost of the default loop forecaster (OLS, bounded window)."""
    fc = make_forecaster("ols")
    state = {"t": 0.0, "s": 0.0}

    def update():
        state["t"] += 30.0
        state["s"] += 60.0
        fc.update(state["t"], state["s"])

    benchmark(update)
    assert fc.forecast(state["t"], state["s"] * 2) is not None
