"""E17 — fleet supervision: meta-loops over loop self-telemetry (§II/§IV).

The paper's closed-loop story must apply to the loops themselves: the
fleet publishes ``loop_*`` self-telemetry (PR 3), so supervision is
just more loops whose monitors query it and whose actions operate on
the fleet.  Two claims, one 256-instance fleet:

* **Self-healing** — with frozen monitors and silently stuck loops
  injected, the health supervisor restores fleet p95
  ``loop_staleness_s`` to within 2× of the healthy baseline, while the
  unsupervised control degrades beyond it; every injected fault is
  repaired by an audited, deterministic restart.
* **Adaptive fusion** — with query fusion disabled and no manual
  ``fuse`` flags, the fusion supervisor discovers the fusible load from
  the hub's tick-sharing statistics and recovers ≥2× of the E15
  fused-monitoring win with identical analyzer verdicts.
"""

from conftest import run_once

from repro.experiments.report import render_table
from repro.experiments.supervise_exp import (
    run_adaptive_fusion_benchmark,
    run_supervision_benchmark,
)


def test_supervision_restores_fleet_staleness(benchmark):
    row = run_once(benchmark, run_supervision_benchmark, seed=0, n_loops=256)
    print()
    print(render_table([row], title="E17 — supervised vs unsupervised fleet under injected faults"))
    assert row["n_loops"] == 256
    assert row["frozen"] == 16 and row["stuck"] == 8
    assert row["restores_within_2x"] == 1.0
    assert row["control_degrades"] == 1.0
    # every injected fault was repaired, every stuck loop iterates again
    assert row["restarts"] >= row["frozen"] + row["stuck"]
    assert row["stuck_recovered"] == row["stuck"]
    # supervisor decisions are audited fleet operations
    assert row["actions_audited"] >= row["restarts"]


def test_adaptive_fusion_2x_without_manual_flags(benchmark):
    row = run_once(benchmark, run_adaptive_fusion_benchmark, seed=0, n_loops=256, ticks=20)
    print()
    print(render_table([row], title="E17b — adaptive fusion vs never-fused monitoring"))
    assert row["match"] == 1.0  # identical verdicts
    assert row["overrides"] >= 1.0  # the supervisor flipped a shape
    assert row["fused_served"] > 0.0
    assert row["monitor_speedup"] >= 2.0
