"""Shared benchmark helpers.

Every benchmark regenerates one experiment from DESIGN.md §5, asserts
the *shape* the paper predicts (who wins, by roughly what factor), and
prints the result table (visible with ``pytest -s`` or in the captured
output block of a failure).
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Time one full scenario execution and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
