"""E16 — sharded store + federated scatter-gather queries (§IV).

Section IV's storage concerns — insert rate and query cost at high
cardinality — stop scaling on one in-process store.  This benchmark
partitions 4096 series across 8 shards and checks both directions of
the facade on identical data:

* federated ``group_by`` queries ≥3× the unsharded engine's throughput,
  bit-identical to the single-store oracle (the same scatter-gather
  engine over one shard) and 1e-9-tight against the legacy engine;
* sharded ingest ≥1× (no regression) vs ``append_batch`` on one store,
  with bit-identical resulting stores.
"""

from conftest import run_once

from repro.experiments.report import render_table
from repro.experiments.shard_exp import (
    run_federated_query_benchmark,
    run_sharded_ingest_benchmark,
)


def test_federated_groupby_3x_at_4096_series(benchmark):
    row = run_once(benchmark, run_federated_query_benchmark, seed=0)
    print()
    print(render_table([row], title="E16 — federated vs unsharded group_by queries (4096 series, 8 shards)"))
    assert row["n_series"] == 4096
    assert row["n_shards"] == 8
    assert row["result_series"] == 4096  # one output series per node
    assert row["bit_identical"] == 1.0  # vs the single-store oracle
    assert row["match"] == 1.0  # vs the legacy per-group engine
    assert row["query_speedup"] >= 3.0


def test_sharded_ingest_no_regression(benchmark):
    row = run_once(benchmark, run_sharded_ingest_benchmark, seed=0)
    print()
    print(render_table([row], title="E16 — sharded vs single-store columnar ingest (4096 series, 8 shards)"))
    assert row["match"] == 1.0  # stores came out bit-identical
    assert row["shard_balance"] >= 0.5  # hash routing spreads the keys
    assert row["ingest_speedup"] >= 1.0
