"""E2 (Fig. 2) — MAPE-K design-pattern trade-offs.

Claims quantified:
* master-worker: decision latency grows linearly with managed count
  (limited scalability); a master failure stops *all* control.
* coordinated: constant local latency; failure of one local loop only
  loses that element; aggressive decentralized compensation oscillates.
* hierarchical: latency bounded by group size; a group-head failure is
  contained to its group.
"""

import pytest
from conftest import run_once

from repro.experiments.patterns_exp import PatternScenarioConfig, run_pattern_scenario
from repro.experiments.report import render_table


def _run(benchmark, **kw):
    return run_once(benchmark, run_pattern_scenario, PatternScenarioConfig(**kw))


def test_scalability_sweep(benchmark):
    def sweep():
        rows = []
        for pattern in ("classical", "master-worker", "coordinated", "hierarchical"):
            for n in (8, 32, 128):
                rows.append(
                    run_pattern_scenario(
                        PatternScenarioConfig(
                            seed=1, pattern=pattern, n_elements=n,
                            horizon_s=600.0, settle_s=200.0,
                        )
                    )
                )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(render_table(
        rows,
        columns=["pattern", "n", "latency_s", "messages_total", "bias", "osc_std"],
        title="E2 — scalability sweep",
    ))
    by = {(r["pattern"], r["n"]): r for r in rows}
    # master-worker latency grows with N; hierarchical/coordinated stay flat
    assert by[("master-worker", 128)]["latency_s"] > 3 * by[("master-worker", 8)]["latency_s"]
    assert by[("hierarchical", 128)]["latency_s"] == pytest.approx(
        by[("hierarchical", 8)]["latency_s"]
    )
    assert by[("coordinated", 128)]["latency_s"] == pytest.approx(
        by[("coordinated", 8)]["latency_s"]
    )


def test_robustness_under_controller_failure(benchmark):
    def run_all():
        return [
            run_pattern_scenario(
                PatternScenarioConfig(
                    seed=2, pattern=p, n_elements=32, horizon_s=900.0,
                    inject_failure_at=300.0,
                )
            )
            for p in ("master-worker", "coordinated", "hierarchical")
        ]

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    print(render_table(
        rows, columns=["pattern", "uncontrolled_frac", "bias", "osc_std"],
        title="E2 — controller failure at t=300s",
    ))
    by = {r["pattern"]: r for r in rows}
    assert by["master-worker"]["uncontrolled_frac"] == 1.0
    assert by["coordinated"]["uncontrolled_frac"] < 0.1
    assert 0.1 < by["hierarchical"]["uncontrolled_frac"] < 0.5


def test_coordinated_stability_cliff(benchmark):
    def sweep():
        return [
            dict(
                comp_gain=cg,
                osc_std=run_pattern_scenario(
                    PatternScenarioConfig(
                        seed=3, pattern="coordinated", n_elements=16,
                        horizon_s=900.0, comp_gain=cg,
                    )
                )["osc_std"],
            )
            for cg in (0.1, 1.0, 3.0)
        ]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(render_table(rows, title="E2 — coordinated stability vs comp_gain"))
    assert rows[-1]["osc_std"] > 100 * rows[0]["osc_std"]  # instability cliff
