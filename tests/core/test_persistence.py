"""Tests for knowledge persistence."""

import json

import pytest

from repro.analytics.similarity import JobRecord
from repro.core.knowledge import KnowledgeBase, ModelEntry
from repro.core.persistence import load_knowledge, save_knowledge
from repro.core.types import Action, ExecutionResult, Plan


def populated_knowledge():
    k = KnowledgeBase()
    k.remember("site", "cluster-a")
    k.remember("walltime_default_s", 3600.0)
    k.remember("live_handle", object())  # non-serializable, must be skipped
    k.run_history.add(
        JobRecord("j1", "solver", {"n_nodes": 2.0, "steps": 100.0}, 1234.5, True, ("tag",))
    )
    k.run_history.add(JobRecord("j2", "solver", {"n_nodes": 4.0}, 999.0, False))
    k.register_model(
        ModelEntry("ttc", model=object(), kind="forecaster", trained_at=5.0, metadata={"mae": 0.1})
    )
    action = Action("extend", "j1", params={"extra_s": 100.0})
    for score in (0.9, 0.4):
        outcome = k.record_plan(
            Plan(1.0, "planner", actions=(action,)),
            [ExecutionResult(action, 1.0, honored=True)],
        )
        k.assess_outcome(outcome, score, now=2.0)
    k.record_plan(Plan(3.0, "planner"), [])  # unassessed → not persisted
    return k


def test_save_reports_counts(tmp_path):
    counts = save_knowledge(populated_knowledge(), tmp_path / "k.json")
    assert counts == {
        "facts": 2,  # the object() fact is skipped
        "run_history": 2,
        "plan_outcomes": 2,
        "model_metadata": 1,
    }


def test_roundtrip_facts_and_history(tmp_path):
    path = tmp_path / "k.json"
    save_knowledge(populated_knowledge(), path)
    restored = load_knowledge(path)
    assert restored.recall("site") == "cluster-a"
    assert restored.recall("walltime_default_s") == 3600.0
    assert restored.recall("live_handle") is None
    assert len(restored.run_history) == 2
    rec = restored.run_history.records("solver")[0]
    assert rec.runtime_s == 1234.5
    assert rec.tags == ("tag",)


def test_roundtrip_outcome_summary(tmp_path):
    path = tmp_path / "k.json"
    save_knowledge(populated_knowledge(), path)
    restored = load_knowledge(path)
    assert restored.recall("restored_outcomes") == 2
    assert restored.recall("restored_effectiveness") == pytest.approx(0.65)


def test_restored_history_drives_predictions(tmp_path):
    path = tmp_path / "k.json"
    save_knowledge(populated_knowledge(), path)
    restored = load_knowledge(path)
    prediction = restored.run_history.predict_runtime({"n_nodes": 2.0}, app_name="solver")
    assert prediction is not None
    mean, _ = prediction
    assert mean == pytest.approx(1234.5)  # only the successful run counts


def test_version_check(tmp_path):
    path = tmp_path / "k.json"
    path.write_text(json.dumps({"version": 99}))
    with pytest.raises(ValueError, match="version"):
        load_knowledge(path)


def test_file_is_stable_json(tmp_path):
    path = tmp_path / "k.json"
    save_knowledge(populated_knowledge(), path)
    payload = json.loads(path.read_text())
    assert payload["version"] == 1
    assert {"facts", "run_history", "plan_outcomes", "model_metadata"} <= set(payload)
