"""Tests for the four Fig. 2 MAPE-K design patterns."""

import numpy as np
import pytest

from repro.core.coordination import NeighborView, ring_neighbors
from repro.core.patterns import (
    CoordinatedController,
    DriftingElement,
    HierarchicalController,
    MasterWorkerController,
    classical_loop_for,
)
from repro.sim import Engine, RngRegistry


def make_elements(eng, n, seed=0, drift_mu=0.3, drift_std=0.5):
    rngs = RngRegistry(seed=seed)
    elements = []
    for i in range(n):
        e = DriftingElement(
            eng,
            f"e{i}",
            rngs.fork("element", i),
            initial=100.0,
            drift_mu=drift_mu,
            drift_std=drift_std,
            disturb_period_s=1.0,
        )
        e.start_disturbance()
        elements.append(e)
    return elements


class TestRingNeighbors:
    def test_basic_ring(self):
        assert ring_neighbors(5, 0) == [1, 4]
        assert ring_neighbors(5, 2) == [1, 3]

    def test_k2(self):
        assert ring_neighbors(6, 0, k=2) == [1, 2, 4, 5]

    def test_small_ring_dedup(self):
        assert ring_neighbors(2, 0, k=3) == [1]

    def test_validation(self):
        with pytest.raises(ValueError):
            ring_neighbors(0, 0)
        with pytest.raises(ValueError):
            ring_neighbors(5, 9)


class TestNeighborView:
    def test_update_and_staleness(self):
        v = NeighborView()
        assert v.staleness(100.0) == 0.0
        v.update(1, 5.0, time=10.0)
        v.update(2, 7.0, time=50.0)
        assert v.get(1) == 5.0
        assert v.get(9) is None
        assert sorted(v.known_values()) == [5.0, 7.0]
        assert v.staleness(100.0) == 90.0
        assert len(v) == 2


class TestDriftingElement:
    def test_drifts_upward(self):
        eng = Engine()
        (e,) = make_elements(eng, 1, drift_mu=1.0, drift_std=0.1)
        eng.run(until=100.0)
        assert e.read() > 150.0  # ~100 + 100*1.0

    def test_actuation(self):
        eng = Engine()
        e = DriftingElement(eng, "e", np.random.default_rng(0))
        e.actuate(-20.0)
        assert e.read() == 80.0
        assert e.actuations == 1

    def test_double_disturbance_start_raises(self):
        eng = Engine()
        (e,) = make_elements(eng, 1)
        with pytest.raises(RuntimeError):
            e.start_disturbance()


class TestClassicalLoop:
    def test_regulates_single_element(self):
        eng = Engine()
        (e,) = make_elements(eng, 1, drift_mu=0.5, drift_std=0.2)
        loop = classical_loop_for(eng, e, setpoint=100.0, period_s=5.0, gain=0.8)
        loop.start()
        eng.run(until=600.0)
        assert abs(e.read() - 100.0) < 10.0

    def test_without_control_element_drifts(self):
        eng = Engine()
        (e,) = make_elements(eng, 1, drift_mu=0.5, drift_std=0.2)
        eng.run(until=600.0)
        assert abs(e.read() - 100.0) > 100.0


class TestMasterWorker:
    def test_regulates_aggregate(self):
        eng = Engine()
        elements = make_elements(eng, 8)
        ctrl = MasterWorkerController(eng, elements, target_total=800.0, period_s=5.0, gain=0.8)
        ctrl.start()
        eng.run(until=600.0)
        assert ctrl.control_error() < 40.0  # within 5% of 800

    def test_latency_grows_with_n(self):
        eng = Engine()
        small = MasterWorkerController(eng, make_elements(eng, 4), 400.0)
        big = MasterWorkerController(eng, make_elements(eng, 64, seed=1), 6400.0)
        assert big.nominal_decision_latency() > small.nominal_decision_latency()

    def test_messages_two_per_element_per_cycle(self):
        eng = Engine()
        elements = make_elements(eng, 4, drift_mu=5.0)  # force corrections
        ctrl = MasterWorkerController(eng, elements, 400.0, period_s=10.0)
        ctrl.start()
        eng.run(until=95.0)
        # 10 cycles × (4 obs + 4 actions)
        assert ctrl.messages_sent() == 10 * 8

    def test_master_failure_stops_all_control(self):
        eng = Engine()
        elements = make_elements(eng, 8, drift_mu=0.5)
        ctrl = MasterWorkerController(eng, elements, 800.0, period_s=5.0, gain=0.8)
        ctrl.start()
        eng.schedule(100.0, ctrl.kill_central)
        eng.run(until=600.0)
        # uncontrolled drift after the kill: aggregate way above target
        assert ctrl.control_error() > 100.0

    def test_needs_elements(self):
        eng = Engine()
        with pytest.raises(ValueError):
            MasterWorkerController(eng, [], 0.0)


class TestCoordinated:
    def test_regulates_aggregate(self):
        eng = Engine()
        elements = make_elements(eng, 8)
        ctrl = CoordinatedController(
            eng, elements, 800.0, period_s=5.0, gain=0.8, comp_gain=0.2
        )
        ctrl.start()
        eng.run(until=600.0)
        assert ctrl.control_error() < 40.0

    def test_local_latency_constant_in_n(self):
        eng = Engine()
        small = CoordinatedController(eng, make_elements(eng, 4), 400.0)
        big = CoordinatedController(eng, make_elements(eng, 64, seed=1), 6400.0)
        assert big.nominal_decision_latency() == small.nominal_decision_latency()

    def test_single_controller_failure_is_contained(self):
        eng = Engine()
        elements = make_elements(eng, 8, drift_mu=0.5)
        ctrl = CoordinatedController(eng, elements, 800.0, period_s=5.0, gain=0.8)
        ctrl.start()
        eng.schedule(100.0, ctrl.kill_local, 0)
        eng.run(until=600.0)
        # element 0 drifts; the others stay near their fair share
        others_ok = [abs(e.read() - 100.0) < 20.0 for e in elements[1:]]
        assert all(others_ok)
        assert abs(elements[0].read() - 100.0) > 50.0
        assert ctrl.alive_fraction() == pytest.approx(7 / 8)

    def test_aggressive_compensation_oscillates(self):
        """High comp_gain over stale gossip destabilizes the aggregate."""

        def aggregate_std(comp_gain):
            eng = Engine()
            elements = make_elements(eng, 16, drift_mu=0.2, drift_std=0.2)
            ctrl = CoordinatedController(
                eng, elements, 1600.0, period_s=5.0, gain=0.6, comp_gain=comp_gain
            )
            ctrl.start()
            samples = []
            eng.every(5.0, lambda: samples.append(ctrl.aggregate()), start_at=300.0)
            eng.run(until=900.0)
            return float(np.std(samples))

        calm = aggregate_std(0.1)
        wild = aggregate_std(3.0)
        assert wild > 2.0 * calm


class TestHierarchical:
    def test_regulates_aggregate(self):
        eng = Engine()
        elements = make_elements(eng, 16)
        ctrl = HierarchicalController(
            eng, elements, 1600.0, group_size=4, period_s=5.0, top_period_s=25.0, gain=0.8
        )
        ctrl.start()
        eng.run(until=600.0)
        assert ctrl.control_error() < 80.0

    def test_groups_partition_elements(self):
        eng = Engine()
        elements = make_elements(eng, 10)
        ctrl = HierarchicalController(eng, elements, 1000.0, group_size=4)
        flat = [i for g in ctrl.groups for i in g]
        assert sorted(flat) == list(range(10))
        assert [len(g) for g in ctrl.groups] == [4, 4, 2]

    def test_latency_independent_of_n(self):
        eng = Engine()
        small = HierarchicalController(eng, make_elements(eng, 8), 800.0, group_size=4)
        big = HierarchicalController(eng, make_elements(eng, 64, seed=1), 6400.0, group_size=4)
        assert big.nominal_decision_latency() == small.nominal_decision_latency()

    def test_group_head_failure_contained_to_group(self):
        eng = Engine()
        elements = make_elements(eng, 16, drift_mu=0.5)
        ctrl = HierarchicalController(
            eng, elements, 1600.0, group_size=4, period_s=5.0, gain=0.8
        )
        ctrl.start()
        eng.schedule(100.0, ctrl.kill_group_head, 0)
        eng.run(until=600.0)
        # after the kill, the top level re-shares the global target over the
        # 12 alive elements: their new setpoint is 1600/12
        new_share = 1600.0 / 12
        dead_group = [abs(elements[i].read() - 100.0) for i in ctrl.groups[0]]
        live_groups = [
            abs(elements[i].read() - new_share) for g in ctrl.groups[1:] for i in g
        ]
        assert min(dead_group) > 30.0  # group 0 uncontrolled, keeps drifting
        assert max(live_groups) < 20.0  # others regulated to the new share

    def test_validation(self):
        eng = Engine()
        with pytest.raises(ValueError):
            HierarchicalController(eng, make_elements(eng, 4), 400.0, group_size=0)
