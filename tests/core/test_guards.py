"""Tests for safety guards."""

import pytest

from repro.core.guards import (
    ActionBudgetGuard,
    ActionKindGuard,
    ConfidenceGuard,
    RateLimitGuard,
)
from repro.core.knowledge import KnowledgeBase
from repro.core.types import Action, Plan


def plan_with(*actions, confidence=1.0):
    return Plan(0.0, "test", actions=tuple(actions), confidence=confidence)


K = KnowledgeBase()


class TestActionBudgetGuard:
    def test_allows_within_budget(self):
        g = ActionBudgetGuard(max_actions_per_target=2, max_amount_per_target=1000.0)
        a = Action("extend", "j1", params={"extra_s": 400.0})
        filtered, vetoed = g.filter(plan_with(a), K, 0.0)
        assert filtered.actions == (a,)
        assert vetoed == []

    def test_vetoes_beyond_count(self):
        g = ActionBudgetGuard(max_actions_per_target=1)
        a = Action("extend", "j1", params={"extra_s": 10.0})
        g.filter(plan_with(a), K, 0.0)
        filtered, vetoed = g.filter(plan_with(a), K, 1.0)
        assert filtered.empty
        assert vetoed == [a]

    def test_vetoes_beyond_amount(self):
        g = ActionBudgetGuard(max_actions_per_target=10, max_amount_per_target=500.0)
        a1 = Action("extend", "j1", params={"extra_s": 400.0})
        a2 = Action("extend", "j1", params={"extra_s": 200.0})
        g.filter(plan_with(a1), K, 0.0)
        _, vetoed = g.filter(plan_with(a2), K, 1.0)
        assert vetoed == [a2]
        assert g.spent("j1") == (1, 400.0)

    def test_budgets_are_per_target(self):
        g = ActionBudgetGuard(max_actions_per_target=1)
        a1 = Action("extend", "j1", params={"extra_s": 10.0})
        a2 = Action("extend", "j2", params={"extra_s": 10.0})
        g.filter(plan_with(a1), K, 0.0)
        filtered, vetoed = g.filter(plan_with(a2), K, 1.0)
        assert not filtered.empty and vetoed == []

    def test_kind_scoping(self):
        g = ActionBudgetGuard(kinds={"extend"}, max_actions_per_target=0)
        other = Action("checkpoint", "j1")
        filtered, vetoed = g.filter(plan_with(other), K, 0.0)
        assert not filtered.empty and vetoed == []

    def test_validation(self):
        with pytest.raises(ValueError):
            ActionBudgetGuard(max_actions_per_target=-1)
        with pytest.raises(ValueError):
            ActionBudgetGuard(max_amount_per_target=-1.0)


class TestRateLimitGuard:
    def test_first_action_allowed_then_limited(self):
        g = RateLimitGuard(min_interval_s=100.0)
        a = Action("extend", "j1")
        _, v1 = g.filter(plan_with(a), K, 0.0)
        _, v2 = g.filter(plan_with(a), K, 50.0)
        _, v3 = g.filter(plan_with(a), K, 150.0)
        assert v1 == [] and v2 == [a] and v3 == []

    def test_kind_target_scoped(self):
        g = RateLimitGuard(min_interval_s=100.0)
        a1 = Action("extend", "j1")
        a2 = Action("extend", "j2")
        g.filter(plan_with(a1), K, 0.0)
        _, vetoed = g.filter(plan_with(a2), K, 1.0)
        assert vetoed == []

    def test_validation(self):
        with pytest.raises(ValueError):
            RateLimitGuard(min_interval_s=-1.0)


class TestConfidenceGuard:
    def test_blocks_low_confidence_plan(self):
        g = ConfidenceGuard(min_confidence=0.7)
        a = Action("extend", "j1")
        filtered, vetoed = g.filter(plan_with(a, confidence=0.5), K, 0.0)
        assert filtered.empty and vetoed == [a]

    def test_passes_confident_plan(self):
        g = ConfidenceGuard(min_confidence=0.7)
        a = Action("extend", "j1")
        filtered, vetoed = g.filter(plan_with(a, confidence=0.9), K, 0.0)
        assert not filtered.empty and vetoed == []

    def test_empty_plan_passes(self):
        g = ConfidenceGuard(min_confidence=0.99)
        filtered, vetoed = g.filter(plan_with(confidence=0.1), K, 0.0)
        assert filtered.empty and vetoed == []

    def test_validation(self):
        with pytest.raises(ValueError):
            ConfidenceGuard(min_confidence=1.5)


class TestActionKindGuard:
    def test_whitelist(self):
        g = ActionKindGuard(allowed={"notify"})
        ok = Action("notify", "u1")
        bad = Action("reboot", "n1")
        filtered, vetoed = g.filter(plan_with(ok, bad), K, 0.0)
        assert filtered.actions == (ok,)
        assert vetoed == [bad]

    def test_requires_nonempty(self):
        with pytest.raises(ValueError):
            ActionKindGuard(allowed=set())
