"""Tests for typed contracts and the knowledge base."""

import pytest

from repro.core.knowledge import KnowledgeBase, ModelEntry
from repro.core.types import Action, AnalysisReport, ExecutionResult, LoopIteration, Plan, Symptom


class TestTypes:
    def test_symptom_severity_bounds(self):
        Symptom("x", 0.0)
        Symptom("x", 1.0)
        with pytest.raises(ValueError):
            Symptom("x", 1.5)

    def test_report_symptom_lookup(self):
        r = AnalysisReport(0.0, "a", symptoms=(Symptom("slow", 0.8),))
        assert r.has_symptom("slow")
        assert r.symptom("slow").severity == 0.8
        assert r.symptom("missing") is None
        assert not r.has_symptom("missing")

    def test_report_confidence_bounds(self):
        with pytest.raises(ValueError):
            AnalysisReport(0.0, "a", confidence=2.0)

    def test_action_param_default(self):
        a = Action("adjust", "n1", params={"delta": 2.0})
        assert a.param("delta") == 2.0
        assert a.param("missing", 7.0) == 7.0

    def test_plan_without(self):
        a1 = Action("k1", "t1")
        a2 = Action("k2", "t2")
        p = Plan(0.0, "src", actions=(a1, a2))
        filtered = p.without([a1])
        assert filtered.actions == (a2,)
        assert not p.empty and not filtered.empty
        assert p.without([a1, a2]).empty

    def test_iteration_latency(self):
        it = LoopIteration(index=0, t_monitor=10.0)
        assert it.latency is None
        it.t_complete = 12.5
        assert it.latency == 2.5
        assert not it.acted
        it.results.append(
            ExecutionResult(Action("k", "t"), 12.5, honored=True)
        )
        assert it.acted


class TestKnowledgeBase:
    def test_facts_roundtrip(self):
        k = KnowledgeBase()
        k.remember("walltime", 3600.0)
        assert k.recall("walltime") == 3600.0
        assert k.recall("missing", "dflt") == "dflt"
        k.forget("walltime")
        assert k.recall("walltime") is None
        assert k.fact_writes == 1
        assert k.fact_reads == 3

    def test_model_registry(self):
        k = KnowledgeBase()
        k.register_model(ModelEntry("ttc", model=object(), kind="forecaster"))
        assert k.model("ttc").kind == "forecaster"
        assert k.models() == ["ttc"]
        assert k.model("none") is None
        assert k.model_writes == 1

    def test_plan_outcomes_and_assessment(self):
        k = KnowledgeBase()
        plan = Plan(0.0, "p", actions=(Action("k", "t"),))
        results = [ExecutionResult(plan.actions[0], 0.0, honored=True)]
        outcome = k.record_plan(plan, results)
        assert k.unassessed_outcomes() == [outcome]
        k.assess_outcome(outcome, 0.8, now=10.0)
        assert outcome.score == 0.8
        assert k.unassessed_outcomes() == []
        assert k.effectiveness() == pytest.approx(0.8)

    def test_assessment_score_bounds(self):
        k = KnowledgeBase()
        outcome = k.record_plan(Plan(0.0, "p"), [])
        with pytest.raises(ValueError):
            k.assess_outcome(outcome, 1.5, now=0.0)

    def test_effectiveness_windows(self):
        k = KnowledgeBase()
        for score in [0.0, 0.0, 1.0, 1.0]:
            o = k.record_plan(Plan(0.0, "p"), [])
            k.assess_outcome(o, score, now=0.0)
        assert k.effectiveness() == pytest.approx(0.5)
        assert k.effectiveness(last_n=2) == pytest.approx(1.0)
        assert KnowledgeBase().effectiveness() is None

    def test_honored_rate(self):
        k = KnowledgeBase()
        a = Action("k", "t")
        k.record_plan(Plan(0.0, "p", actions=(a,)), [ExecutionResult(a, 0.0, honored=True)])
        k.record_plan(Plan(0.0, "p", actions=(a,)), [ExecutionResult(a, 0.0, honored=False)])
        assert k.honored_rate() == pytest.approx(0.5)
        assert k.honored_rate(last_n=1) == pytest.approx(0.0)
        assert KnowledgeBase().honored_rate() is None

    def test_run_history_attached(self):
        k = KnowledgeBase()
        assert len(k.run_history) == 0
