"""Fleet supervision: meta-loops, fleet ops, adaptive fusion, determinism."""

import numpy as np
import pytest

from repro.core.audit import AuditTrail
from repro.core.component import Analyzer, Executor, Planner
from repro.core.loop import PhaseLatency
from repro.core.runtime import LoopRuntime, LoopSpec, MonitorQuery, RuntimeConfig
from repro.core.supervisor import (
    MetaLoopSpec,
    SupervisorConfig,
    attach_supervisors,
)
from repro.core.types import (
    Action,
    AnalysisReport,
    ExecutionResult,
    Observation,
    Plan,
)
from repro.experiments.supervise_exp import (
    inject_faults,
    run_supervision_scenario,
)
from repro.sim import Engine
from repro.telemetry.metric import SeriesKey
from repro.telemetry.tsdb import TimeSeriesStore


class PassAnalyzer(Analyzer):
    name = "pass-analyzer"

    def analyze(self, observation, knowledge):
        return AnalysisReport(observation.time, self.name)


class KindPlanner(Planner):
    """Plans one fixed action per cycle."""

    name = "kind-planner"

    def __init__(self, kind, target, **params):
        self.kind, self.target, self.params = kind, target, params

    def plan(self, report, knowledge):
        return Plan(
            report.time, self.name, (Action(self.kind, self.target, params=self.params),)
        )


class OkExecutor(Executor):
    name = "ok-executor"

    def execute(self, plan, knowledge):
        return [ExecutionResult(a, plan.time, honored=True) for a in plan.actions]


def fill(store, metric="util", nodes=4, horizon=4000.0, period=10.0, value=0.5):
    times = np.arange(0.0, horizon, period)
    for i in range(nodes):
        store.insert_batch(
            SeriesKey.of(metric, node=f"n{i}"), times, np.full(times.size, value)
        )


def acting_spec(name, node, *, period_s=30.0, kind="notify_user", target=None, **params):
    """A loop that observes one node and acts every cycle (staleness 2s)."""

    def build(now, inputs, _name=name):
        frozen = inputs["_memory"].get("frozen_at")
        if not inputs["u"].series:
            return None
        return Observation(frozen if frozen is not None else now, _name, values={"v": 1.0})

    return LoopSpec(
        name=name,
        queries=(MonitorQuery("u", f'mean(util{{node="{node}"}}[300s]) group by (node)'),),
        build_observation=build,
        analyzer_factory=PassAnalyzer,
        planner_factory=lambda: KindPlanner(kind, target if target is not None else name, **params),
        executor_factory=OkExecutor,
        period_s=period_s,
        phase_latency=PhaseLatency(analyze_s=2.0),
    )


def make_runtime(*, audit=None, config=None, nodes=4):
    engine = Engine()
    store = TimeSeriesStore()
    fill(store, nodes=nodes)
    return engine, LoopRuntime(engine, store, audit=audit, config=config)


SUP = SupervisorConfig(
    period_s=60.0,
    window_s=600.0,
    heartbeat_factor=3.0,
    heartbeat_step_s=30.0,
    staleness_bound_s=90.0,
    restart_cooldown_s=240.0,
    quarantine_vetoes=5.0,
)


# ---------------------------------------------------------------------------
# Fleet operations on the runtime


class TestFleetOps:
    def test_restart_rebuilds_components_and_releases_claims(self):
        engine, runtime = make_runtime()
        runtime.add(acting_spec("a", "n0", kind="signal_checkpoint", target="j1"), start=True)
        engine.run(until=100.0)
        assert runtime.arbiter.active_claims(engine.now)
        old_loop = runtime.handles["a"].loop
        runtime.restart("a")
        assert runtime.handles["a"].loop is not old_loop
        assert not runtime.arbiter.active_claims(engine.now)
        assert runtime.handles["a"].restarts == 1
        assert runtime.restarts_total == 1
        # the restarted loop iterates again
        before = runtime.handles["a"].loop.iterations_run
        engine.run(until=200.0)
        assert runtime.handles["a"].loop.iterations_run > before

    def test_restart_publishes_counter_series(self):
        engine, runtime = make_runtime()
        runtime.add(acting_spec("a", "n0"), start=True)
        engine.run(until=50.0)
        runtime.restart("a")
        value = runtime.query_engine.scalar(
            'last(loop_restarts_total{loop="a"})', at=engine.now
        )
        assert value == 1.0

    def test_quarantine_stops_and_bars_start(self):
        engine, runtime = make_runtime()
        runtime.add(acting_spec("a", "n0"), start=True)
        engine.run(until=50.0)
        runtime.quarantine("a")
        handle = runtime.handles["a"]
        assert handle.quarantined and not handle.running
        with pytest.raises(RuntimeError):
            handle.start()
        runtime.start()  # must skip the quarantined loop
        assert not handle.running
        runtime.unquarantine("a")
        assert handle.running and not handle.quarantined

    def test_retune_updates_period_and_claim_ttl(self):
        engine, runtime = make_runtime()
        runtime.add(acting_spec("a", "n0", period_s=30.0), start=True)
        engine.run(until=50.0)
        iters = runtime.handles["a"].loop.iterations_run
        runtime.retune("a", period_s=120.0)
        handle = runtime.handles["a"]
        assert handle.spec.period_s == 120.0
        assert handle.loop.period_s == 120.0
        from repro.core.arbiter import ArbiterGuard

        guard = [g for g in handle.loop.guards if isinstance(g, ArbiterGuard)][0]
        assert guard.ttl_s == 120.0
        # loop state survives a retune
        assert handle.loop.iterations_run == iters
        engine.run(until=500.0)
        # ~(500-50)/120 further ticks, not /30
        assert handle.loop.iterations_run - iters <= 5

    def test_wedged_loop_still_reports_running(self):
        engine, runtime = make_runtime()
        runtime.add(acting_spec("a", "n0"), start=True)
        engine.run(until=50.0)
        handle = runtime.handles["a"]
        iters = handle.loop.iterations_run
        handle.wedge()
        engine.run(until=400.0)
        assert handle.running  # looks alive...
        assert handle.loop.iterations_run == iters  # ...never iterates


# ---------------------------------------------------------------------------
# Health supervision


class TestHealthSupervision:
    def test_wedged_loop_detected_and_restarted(self):
        audit = AuditTrail()
        engine, runtime = make_runtime(audit=audit)
        runtime.add(acting_spec("a", "n0"), start=True)
        runtime.add(acting_spec("b", "n1"), start=True)
        attach_supervisors(runtime, SUP, kinds=("health",))
        engine.run(until=700.0)
        runtime.handles["a"].wedge()
        engine.run(until=1400.0)
        assert runtime.handles["a"].restarts == 1
        assert runtime.handles["b"].restarts == 0
        ops = [e for e in audit.by_phase("fleet") if e.data["op"] == "restart"]
        assert [e.data["loop"] for e in ops] == ["a"]
        assert runtime.handles["a"].loop.iterations_run > 0

    def test_frozen_monitor_detected_and_restarted(self):
        engine, runtime = make_runtime()
        runtime.add(acting_spec("a", "n0"), start=True)
        attach_supervisors(runtime, SUP, kinds=("health",))
        engine.run(until=700.0)
        inject_faults(runtime, frozen=["a"])
        engine.run(until=1500.0)
        assert runtime.handles["a"].restarts == 1
        # post-restart observations are fresh again
        staleness = runtime.query_engine.scalar(
            'last(loop_staleness_s{loop="a"})', at=engine.now
        )
        assert staleness == 2.0

    def test_restarting_loop_that_holds_active_claim_releases_it(self):
        """The satellite edge case: restart must not leak held claims."""
        engine, runtime = make_runtime()
        # claim ttl far beyond the period: the claim would outlive a wedge
        spec = acting_spec("holder", "n0", kind="signal_checkpoint", target="j1")
        spec.claim_ttl_s = 100_000.0
        runtime.add(spec, start=True)
        attach_supervisors(runtime, SUP, kinds=("health",))
        engine.run(until=700.0)
        assert ("job", "j1") in runtime.arbiter.active_claims(engine.now)
        runtime.handles["holder"].wedge()
        engine.run(until=1400.0)
        assert runtime.handles["holder"].restarts >= 1
        # the supervisor's restart released the wedged loop's claim, so a
        # newcomer can take the resource (until the restarted holder
        # naturally re-claims it on its next healthy cycle)
        claim = runtime.arbiter.active_claims(engine.now).get(("job", "j1"))
        assert claim is None or claim.time > 700.0

    def test_veto_storm_quarantined(self):
        audit = AuditTrail()
        engine, runtime = make_runtime(audit=audit)
        # both loops contend for the same job; the low-priority one is
        # vetoed every cycle and must eventually be quarantined
        hi = acting_spec("hi", "n0", kind="signal_checkpoint", target="j1")
        hi.priority = 10
        lo = acting_spec("lo", "n1", kind="request_extension", target="j1")
        runtime.add(hi, start=True)
        runtime.add(lo, start=True)
        attach_supervisors(runtime, SUP, kinds=("health",))
        engine.run(until=1200.0)
        assert runtime.handles["lo"].quarantined
        assert not runtime.handles["hi"].quarantined
        assert runtime.quarantines_total == 1
        ops = [e for e in audit.by_phase("fleet") if e.data["op"] == "quarantine"]
        assert [e.data["loop"] for e in ops] == ["lo"]
        # quarantined loop's claims are gone and it no longer iterates
        iters = runtime.handles["lo"].loop.iterations_run
        engine.run(until=1500.0)
        assert runtime.handles["lo"].loop.iterations_run == iters

    def test_restarted_loop_immune_to_stale_veto_counter(self):
        """The veto counter resets with the instance: max-min over a window
        spanning the restart must not read as a fresh storm."""
        engine, runtime = make_runtime()
        runtime.add(acting_spec("w", "n0"), start=True)
        attach_supervisors(runtime, SUP, kinds=("health",))
        engine.run(until=700.0)
        # bake a high veto total into the telemetry (appends must be
        # ordered, so the samples sit just past the loop's own), as if
        # the loop had been vetoed for a long stretch before being
        # healed; the counter restarts from 0 alongside the loop, so the
        # window's max-min delta reads 50 — a storm, if not for immunity
        store = runtime.store
        for t in (695.0, 696.0, 697.0):
            store.insert(SeriesKey.of("loop_vetoes_total", loop="w"), t, 50.0)
        runtime.restart("w")
        engine.run(until=700.0 + SUP.window_s - 100.0)
        # window still spans pre-restart samples (delta 50) — immune
        assert not runtime.handles["w"].quarantined
        assert runtime.quarantines_total == 0

    def test_meta_loops_not_supervised(self):
        engine, runtime = make_runtime()
        runtime.add(acting_spec("a", "n0"), start=True)
        handles = attach_supervisors(runtime, SUP, kinds=("health", "tuning"))
        assert all(isinstance(h.spec, MetaLoopSpec) for h in handles)
        engine.run(until=700.0)
        runtime.handles["meta-tuning"].wedge()
        engine.run(until=1600.0)
        # the health supervisor does not heal other meta-loops
        assert runtime.handles["meta-tuning"].restarts == 0

    def test_fresh_loop_not_stuck_before_grace(self):
        engine, runtime = make_runtime()
        spec = acting_spec("late", "n0")
        spec.start_at = 500.0  # configured to start late
        runtime.add(spec, start=True)
        attach_supervisors(runtime, SUP, kinds=("health",))
        engine.run(until=480.0)
        assert runtime.handles["late"].restarts == 0


# ---------------------------------------------------------------------------
# Tuning supervision


class TestTuningSupervision:
    def runtime_with_cost(self, cost_ms, *, period_s=30.0):
        """A running loop whose telemetry claims ``cost_ms`` per iteration."""
        engine = Engine()
        store = TimeSeriesStore()
        fill(store)
        # self-telemetry off: the injected cost series is the only signal
        runtime = LoopRuntime(
            engine, store, config=RuntimeConfig(self_telemetry=False)
        )
        runtime.add(acting_spec("w", "n0", period_s=period_s), start=True)
        times = np.arange(0.0, 600.0, period_s)
        store.insert_batch(
            SeriesKey.of("loop_iteration_ms", loop="w"),
            times,
            np.full(times.size, float(cost_ms)),
        )
        return engine, runtime

    def test_overloaded_loop_slowed_down(self):
        engine, runtime = self.runtime_with_cost(120.0)
        cfg = SupervisorConfig(
            period_s=60.0, slow_iteration_ms=50.0, retune_factor=2.0,
            retune_cooldown_s=240.0,
        )
        attach_supervisors(runtime, cfg, kinds=("tuning",))
        engine.run(until=130.0)
        assert runtime.handles["w"].spec.period_s == 60.0  # 30 * 2
        assert runtime.retunes_total == 1  # cooldown holds further retunes

    def test_retune_clamped_at_max_period_factor(self):
        engine, runtime = self.runtime_with_cost(500.0)
        cfg = SupervisorConfig(
            period_s=60.0,
            slow_iteration_ms=50.0,
            retune_factor=16.0,
            max_period_factor=4.0,
            retune_cooldown_s=60.0,
        )
        attach_supervisors(runtime, cfg, kinds=("tuning",))
        engine.run(until=130.0)
        assert runtime.handles["w"].spec.period_s == 120.0  # 30 * 4 clamp
        # at the clamp there is no further headroom: no second retune
        engine.run(until=400.0)
        assert runtime.retunes_total == 1

    def test_cheap_retuned_loop_speeds_back_toward_base(self):
        engine, runtime = self.runtime_with_cost(1.0)
        runtime.retune("w", period_s=120.0)  # previously slowed
        cfg = SupervisorConfig(
            period_s=60.0, fast_iteration_ms=5.0, retune_factor=2.0, retune_cooldown_s=60.0
        )
        attach_supervisors(runtime, cfg, kinds=("tuning",))
        engine.run(until=50.0)
        assert runtime.handles["w"].spec.period_s == 60.0  # halved toward base
        engine.run(until=250.0)
        assert runtime.handles["w"].spec.period_s == 30.0  # back at base
        engine.run(until=400.0)
        assert runtime.handles["w"].spec.period_s == 30.0  # never below base


# ---------------------------------------------------------------------------
# Adaptive fusion


def narrow_spec(name, node):
    def build(now, inputs, _name=name):
        return Observation(now, _name, values={"v": 1.0}) if inputs["u"].series else None

    return LoopSpec(
        name=name,
        queries=(MonitorQuery("u", f'mean(util{{node="{node}"}}[300s]) group by (node)'),),
        build_observation=build,
        analyzer_factory=PassAnalyzer,
        planner_factory=lambda: KindPlanner("notify_user", name),
        executor_factory=OkExecutor,
        period_s=30.0,
    )


class TestAdaptiveFusion:
    def test_hub_tracks_tick_sharing(self):
        engine = Engine()
        store = TimeSeriesStore()
        fill(store, nodes=8)
        runtime = LoopRuntime(engine, store, config=RuntimeConfig(fuse_queries=False))
        for i in range(8):
            runtime.add(narrow_spec(f"w{i}", f"n{i}"), start=True)
        engine.run(until=100.0)
        stats = runtime.hub.sharing_stats()
        assert len(stats) == 1
        row = next(iter(stats.values()))
        assert row["mean_narrow"] == 8.0
        assert row["fused"] == 0.0

    def test_override_precedence_over_hub_default(self):
        engine = Engine()
        store = TimeSeriesStore()
        fill(store, nodes=2)
        runtime = LoopRuntime(engine, store, config=RuntimeConfig(fuse_queries=False))
        hub = runtime.hub
        expr = 'mean(util{node="n0"}[300s]) group by (node)'
        hub.query(expr, at=50.0)
        assert hub.fused_served == 0
        hub.set_fuse_override(expr, True)
        hub.query(expr, at=60.0)
        assert hub.fused_served == 1
        # explicit per-call fuse still wins over the override
        hub.query(expr, at=70.0, fuse=False)
        assert hub.fused_served == 1
        hub.set_fuse_override(expr, None)
        hub.query(expr, at=80.0)
        assert hub.fused_served == 1

    def test_supervisor_flips_fusion_on_shared_load(self):
        engine = Engine()
        store = TimeSeriesStore()
        fill(store, nodes=8)
        runtime = LoopRuntime(engine, store, config=RuntimeConfig(fuse_queries=False))
        for i in range(8):
            runtime.add(narrow_spec(f"w{i}", f"n{i}"), start=True)
        cfg = SupervisorConfig(period_s=60.0, fuse_min_sharing=4.0, fuse_min_ticks=3.0)
        attach_supervisors(runtime, cfg, kinds=("fusion",))
        engine.run(until=400.0)
        assert len(runtime.hub.fuse_overrides) == 1
        assert list(runtime.hub.fuse_overrides.values()) == [True]
        assert runtime.hub.fused_served > 0

    def test_supervisor_clears_override_when_sharing_evaporates(self):
        engine = Engine()
        store = TimeSeriesStore()
        fill(store, nodes=2)
        runtime = LoopRuntime(engine, store, config=RuntimeConfig(fuse_queries=False))
        runtime.add(narrow_spec("w0", "n0"), start=True)  # a lone narrow reader
        runtime.hub.set_fuse_override('mean(util{node="n0"}[300s]) group by (node)', True)
        cfg = SupervisorConfig(period_s=60.0, fuse_min_sharing=4.0, fuse_min_ticks=3.0)
        attach_supervisors(runtime, cfg, kinds=("fusion",))
        engine.run(until=400.0)
        assert runtime.hub.fuse_overrides == {}


# ---------------------------------------------------------------------------
# Determinism and audit of the full scenario


class TestScenarioDeterminism:
    def test_supervisor_action_trace_is_deterministic(self):
        kwargs = dict(seed=3, n_loops=16, supervise=True)
        first = run_supervision_scenario(**kwargs)
        second = run_supervision_scenario(**kwargs)
        assert first["trace"] == second["trace"]
        assert first["trace"]  # faults were injected, so actions happened
        assert first["restarts"] == second["restarts"]
        assert first["final_p95_s"] == second["final_p95_s"]

    def test_scenario_heals_and_control_degrades(self):
        supervised = run_supervision_scenario(seed=1, n_loops=16, supervise=True)
        control = run_supervision_scenario(seed=1, n_loops=16, supervise=False)
        healthy = supervised["healthy_p95_s"]
        assert supervised["final_p95_s"] <= 2.0 * healthy
        assert control["final_p95_s"] > 2.0 * healthy
        assert control["restarts"] == 0.0 and not control["trace"]
