"""Pluggable arbiter policies: merge, queue-behind-claim, policy audit."""

from repro.core.arbiter import (
    MergePolicy,
    PlanArbiter,
    PriorityVetoPolicy,
    QueuePolicy,
    cooperative_policies,
    default_policies,
)
from repro.core.audit import AuditTrail
from repro.core.types import Action, Plan


def plan_of(*actions, confidence=1.0):
    return Plan(0.0, "test", tuple(actions), confidence)


def act(kind="signal_checkpoint", target="j1", **params):
    return Plan(0.0, "test", (Action(kind, target, params=params),))


class TestMergePolicy:
    def arbiter(self, audit=None):
        return PlanArbiter(audit=audit, policies=(MergePolicy(), PriorityVetoPolicy()))

    def test_compatible_duplicate_absorbed_not_vetoed(self):
        audit = AuditTrail()
        arb = self.arbiter(audit)
        arb.resolve("a", 5, act(rate=2.0), 0.0, ttl_s=60.0)
        kept, vetoed = arb.resolve("b", 0, act(rate=2.0), 1.0, ttl_s=60.0)
        # absorbed: dropped from the plan but NOT reported as a veto
        assert kept.empty and not vetoed
        assert arb.merged_total == 1 and arb.vetoes_total == 0
        events = audit.by_phase("arbitrate")
        assert len(events) == 1
        assert events[0].data["policy"] == "merge"
        assert events[0].data["outcome"] == "merge"
        assert events[0].data["winner"] == "a"

    def test_incompatible_params_rejected(self):
        audit = AuditTrail()
        arb = self.arbiter(audit)
        arb.resolve("a", 5, act(rate=2.0), 0.0, ttl_s=60.0)
        kept, vetoed = arb.resolve("b", 0, act(rate=9.0), 1.0, ttl_s=60.0)
        # merge of incompatible plans is rejected: falls through to veto
        assert kept.empty and len(vetoed) == 1
        assert arb.merged_total == 0 and arb.vetoes_total == 1
        assert audit.by_phase("arbitrate")[0].data["policy"] == "priority-veto"

    def test_different_kind_rejected(self):
        arb = self.arbiter()
        arb.resolve("a", 5, act("signal_checkpoint"), 0.0, ttl_s=60.0)
        _, vetoed = arb.resolve("b", 0, act("request_extension"), 1.0, ttl_s=60.0)
        assert len(vetoed) == 1 and arb.merged_total == 0

    def test_merge_does_not_inflate_loop_veto_counts(self):
        arb = self.arbiter()
        arb.resolve("a", 5, act(), 0.0, ttl_s=60.0)
        arb.resolve("b", 0, act(), 1.0, ttl_s=60.0)
        assert arb.vetoes_by_loop == {}

    def test_higher_priority_duplicate_absorbed_not_preempted(self):
        """A duplicate is a duplicate regardless of rank: no double execute."""
        arb = self.arbiter()
        arb.resolve("lo", 0, act(rate=2.0), 0.0, ttl_s=60.0)
        kept, vetoed = arb.resolve("hi", 10, act(rate=2.0), 1.0, ttl_s=60.0)
        assert kept.empty and not vetoed  # absorbed, not preempted
        assert arb.merged_total == 1 and arb.preemptions_total == 0
        # the original claim holder keeps the key
        assert arb.active_claims(1.0)[("job", "j1")].loop == "lo"
        # an *incompatible* higher-priority plan still preempts
        kept, vetoed = arb.resolve("hi", 10, act(rate=9.0), 2.0, ttl_s=60.0)
        assert len(kept.actions) == 1 and not vetoed
        assert arb.preemptions_total == 1


class TestQueuePolicy:
    def arbiter(self, *, defer_ttl_s=100.0, audit=None):
        return PlanArbiter(
            audit=audit,
            policies=(QueuePolicy(defer_ttl_s=defer_ttl_s), PriorityVetoPolicy()),
        )

    def test_blocked_contender_deferred_not_vetoed(self):
        audit = AuditTrail()
        arb = self.arbiter(audit=audit)
        arb.resolve("a", 5, act(), 0.0, ttl_s=60.0)
        kept, vetoed = arb.resolve("b", 0, act(), 10.0, ttl_s=60.0)
        # deferred: dropped from the plan, but a polite wait is not a
        # veto — the health supervisor's storm counter must not see it
        assert kept.empty and not vetoed
        assert arb.vetoes_total == 0 and arb.deferred_total == 1
        event = audit.by_phase("arbitrate")[0]
        assert event.data["policy"] == "queue"
        assert event.data["outcome"] == "defer"
        assert event.data["queue_position"] == 0
        assert arb.stats()["queued_total"] == 1.0

    def test_queue_head_right_of_way_after_claim_expiry(self):
        arb = self.arbiter()
        arb.resolve("a", 5, act(), 0.0, ttl_s=60.0)
        arb.resolve("b", 0, act(), 10.0, ttl_s=60.0)  # queued behind a
        # claim expired at 60; c (same priority as b) arrives first but
        # b holds the reservation
        kept_c, vetoed_c = arb.resolve("c", 0, act(), 70.0, ttl_s=60.0)
        assert kept_c.empty and not vetoed_c  # deferred behind b
        kept_b, vetoed_b = arb.resolve("b", 0, act(), 80.0, ttl_s=60.0)
        assert not vetoed_b and len(kept_b.actions) == 1
        assert arb.active_claims(80.0)[("job", "j1")].loop == "b"
        assert arb.stats()["queue_granted_total"] == 1.0

    def test_claim_expiry_mid_queue_drops_expired_deferral(self):
        """A queued loop whose deferral lapsed loses its reservation."""
        arb = self.arbiter(defer_ttl_s=30.0)
        arb.resolve("a", 5, act(), 0.0, ttl_s=60.0)
        arb.resolve("b", 0, act(), 10.0, ttl_s=60.0)  # deferral expires at 40
        # claim expires at 60; b's reservation already lapsed mid-queue,
        # so c takes the key immediately
        kept_c, vetoed_c = arb.resolve("c", 0, act(), 65.0, ttl_s=60.0)
        assert not vetoed_c and len(kept_c.actions) == 1
        assert arb.stats()["queue_expired_total"] == 1.0

    def test_fifo_order_among_queued_contenders(self):
        arb = self.arbiter()
        arb.resolve("a", 5, act(), 0.0, ttl_s=50.0)
        arb.resolve("b", 0, act(), 10.0, ttl_s=50.0)
        arb.resolve("c", 0, act(), 20.0, ttl_s=50.0)
        # after expiry, c is still behind b
        kept_c, _ = arb.resolve("c", 0, act(), 60.0, ttl_s=50.0)
        assert kept_c.empty
        kept_b, _ = arb.resolve("b", 0, act(), 61.0, ttl_s=50.0)
        assert len(kept_b.actions) == 1

    def test_strictly_higher_priority_overrides_reservation(self):
        arb = self.arbiter()
        arb.resolve("a", 5, act(), 0.0, ttl_s=50.0)
        arb.resolve("b", 0, act(), 10.0, ttl_s=50.0)  # queued, prio 0
        kept_hi, vetoed_hi = arb.resolve("hi", 10, act(), 60.0, ttl_s=50.0)
        assert not vetoed_hi and len(kept_hi.actions) == 1

    def test_release_purges_queue_entries(self):
        arb = self.arbiter()
        arb.resolve("a", 5, act(), 0.0, ttl_s=50.0)
        arb.resolve("b", 0, act(), 10.0, ttl_s=50.0)
        arb.release("b")
        kept_c, vetoed_c = arb.resolve("c", 0, act(), 60.0, ttl_s=50.0)
        assert not vetoed_c and len(kept_c.actions) == 1

    def test_requeue_same_loop_is_idempotent(self):
        arb = self.arbiter()
        arb.resolve("a", 5, act(), 0.0, ttl_s=200.0)
        arb.resolve("b", 0, act(), 10.0, ttl_s=200.0)
        arb.resolve("b", 0, act(), 20.0, ttl_s=200.0)
        assert arb.stats()["queued_total"] == 1.0

    def test_drained_queues_are_forgotten(self):
        """The queue table is bounded by live contention, not key history."""
        policy = QueuePolicy(defer_ttl_s=50.0)
        policy.sweep_threshold = 8
        arb = PlanArbiter(policies=(policy, PriorityVetoPolicy()))
        # a stream of short-lived contended keys: b queues once per key
        # and never returns; lapsed entries must not accumulate
        for i in range(64):
            t = float(i * 200)
            arb.resolve("a", 5, act(target=f"j{i}"), t, ttl_s=100.0)
            arb.resolve("b", 0, act(target=f"j{i}"), t + 1.0, ttl_s=100.0)
        assert len(policy._queues) <= policy.sweep_threshold + 1
        # a touched key whose queue drained is dropped immediately
        policy.sweep(64 * 200.0 + 100.0)
        assert len(policy._queues) == 0


class TestPolicyChains:
    def test_default_chain_matches_pr3_behavior(self):
        arb = PlanArbiter()
        assert [p.name for p in default_policies()] == ["priority-veto"]
        arb.resolve("a", 5, act(), 0.0, ttl_s=60.0)
        _, vetoed = arb.resolve("b", 0, act(), 1.0, ttl_s=60.0)
        assert len(vetoed) == 1

    def test_cooperative_chain_merges_then_queues(self):
        audit = AuditTrail()
        arb = PlanArbiter(audit=audit, policies=cooperative_policies(defer_ttl_s=100.0))
        arb.resolve("a", 5, act(rate=1.0), 0.0, ttl_s=60.0)
        # duplicate → merged by the first policy in the chain
        kept, vetoed = arb.resolve("b", 0, act(rate=1.0), 1.0, ttl_s=60.0)
        assert kept.empty and not vetoed
        # incompatible → deferred by the second
        kept, vetoed = arb.resolve("c", 0, act(rate=3.0), 2.0, ttl_s=60.0)
        assert kept.empty and not vetoed
        policies = [e.data["policy"] for e in audit.by_phase("arbitrate")]
        assert policies == ["merge", "queue"]
        assert arb.decisions_by_policy == {"merge": 1, "queue": 1}

    def test_audit_names_policy_per_conflict(self):
        audit = AuditTrail()
        arb = PlanArbiter(audit=audit)
        arb.resolve("a", 5, act(), 0.0, ttl_s=60.0)
        arb.resolve("b", 0, act(), 1.0, ttl_s=60.0)
        assert audit.by_phase("arbitrate")[0].data["policy"] == "priority-veto"
