"""Tests for the MAPE-K loop engine."""

import pytest

from repro.core.audit import AuditTrail
from repro.core.component import Analyzer, Assessor, Executor, Monitor, Planner
from repro.core.guards import ConfidenceGuard
from repro.core.loop import MAPEKLoop, PhaseLatency
from repro.core.types import (
    Action,
    AnalysisReport,
    ExecutionResult,
    Observation,
    Plan,
)
from repro.sim import Engine


class FakeMonitor(Monitor):
    name = "fake-monitor"

    def __init__(self, value_fn, skip_until=None):
        self.value_fn = value_fn
        self.skip_until = skip_until
        self.calls = 0

    def observe(self, now):
        self.calls += 1
        if self.skip_until is not None and now < self.skip_until:
            return None
        return Observation(now, self.name, values={"x": self.value_fn(now)})


class ThresholdAnalyzer(Analyzer):
    name = "threshold-analyzer"

    def __init__(self, threshold=10.0, confidence=1.0):
        self.threshold = threshold
        self.confidence = confidence

    def analyze(self, observation, knowledge):
        x = observation.values["x"]
        return AnalysisReport(
            observation.time,
            self.name,
            metrics={"x": x, "excess": x - self.threshold},
            confidence=self.confidence,
        )


class SimplePlanner(Planner):
    name = "simple-planner"

    def plan(self, report, knowledge):
        if report.metrics["excess"] <= 0:
            return Plan(report.time, self.name)
        action = Action("reduce", "sys", params={"amount": report.metrics["excess"]})
        return Plan(report.time, self.name, actions=(action,), confidence=report.confidence)


class RecordingExecutor(Executor):
    name = "recording-executor"

    def __init__(self):
        self.executed = []

    def execute(self, plan, knowledge):
        out = []
        for a in plan.actions:
            self.executed.append((a, plan.time))
            out.append(ExecutionResult(a, plan.time, honored=True))
        return out


class CountingAssessor(Assessor):
    name = "counting-assessor"

    def __init__(self):
        self.calls = 0

    def assess(self, observation, knowledge):
        self.calls += 1


def build_loop(engine, value_fn, *, guards=(), phase_latency=PhaseLatency(), period=10.0,
               assessor=None, audit=None, confidence=1.0, skip_until=None):
    executor = RecordingExecutor()
    loop = MAPEKLoop(
        engine,
        "test-loop",
        monitor=FakeMonitor(value_fn, skip_until=skip_until),
        analyzer=ThresholdAnalyzer(confidence=confidence),
        planner=SimplePlanner(),
        executor=executor,
        guards=guards,
        period_s=period,
        phase_latency=phase_latency,
        assessor=assessor,
        audit=audit,
    )
    return loop, executor


class TestLoopBasics:
    def test_iterates_on_period(self):
        eng = Engine()
        loop, _ = build_loop(eng, lambda now: 0.0, period=10.0)
        loop.start()
        eng.run(until=45.0)
        assert loop.iterations_run == 5  # t = 0, 10, 20, 30, 40

    def test_acts_when_threshold_exceeded(self):
        eng = Engine()
        loop, executor = build_loop(eng, lambda now: 15.0)
        loop.start()
        eng.run(until=0.0)
        assert len(executor.executed) == 1
        action, _ = executor.executed[0]
        assert action.kind == "reduce"
        assert action.param("amount") == 5.0
        assert loop.actions_executed == 1

    def test_no_action_below_threshold(self):
        eng = Engine()
        loop, executor = build_loop(eng, lambda now: 5.0)
        loop.start()
        eng.run(until=50.0)
        assert executor.executed == []

    def test_plans_recorded_in_knowledge(self):
        eng = Engine()
        loop, _ = build_loop(eng, lambda now: 15.0)
        loop.start()
        eng.run(until=25.0)
        assert len(loop.knowledge.plan_outcomes) == 3
        assert all(o.honored for o in loop.knowledge.plan_outcomes)

    def test_none_observation_skips_cycle(self):
        eng = Engine()
        loop, executor = build_loop(eng, lambda now: 15.0, skip_until=25.0)
        loop.start()
        eng.run(until=45.0)
        # first three cycles (0,10,20) observe None; 30 and 40 act
        assert len(executor.executed) == 2
        assert loop.iterations_run == 5

    def test_double_start_raises(self):
        eng = Engine()
        loop, _ = build_loop(eng, lambda now: 0.0)
        loop.start()
        with pytest.raises(RuntimeError):
            loop.start()

    def test_stop_halts_iterations(self):
        eng = Engine()
        loop, _ = build_loop(eng, lambda now: 0.0)
        loop.start()
        eng.schedule(25.0, loop.stop)
        eng.run(until=100.0)
        assert loop.iterations_run == 3
        assert not loop.running

    def test_period_validation(self):
        eng = Engine()
        with pytest.raises(ValueError):
            build_loop(eng, lambda now: 0.0, period=0.0)


class TestPhaseLatency:
    def test_decision_delay_defers_execution(self):
        eng = Engine()
        latency = PhaseLatency(monitor_s=1.0, analyze_s=2.0, plan_s=3.0, execute_s=4.0)
        loop, executor = build_loop(eng, lambda now: 15.0, phase_latency=latency, period=100.0)
        loop.start()
        eng.run(until=5.0)
        assert executor.executed == []  # decision at t=6
        eng.run(until=9.0)
        assert executor.executed == []  # execution at t=10
        eng.run(until=10.0)
        assert len(executor.executed) == 1

    def test_cycle_latency_recorded(self):
        eng = Engine()
        latency = PhaseLatency(analyze_s=2.0, execute_s=1.0)
        loop, _ = build_loop(eng, lambda now: 15.0, phase_latency=latency, period=100.0)
        loop.start()
        eng.run(until=10.0)
        assert loop.mean_cycle_latency() == pytest.approx(3.0)

    def test_stale_observation_semantics(self):
        """Execution uses the observation taken at cycle start, not fresher data."""
        eng = Engine()
        values = {"x": 15.0}
        latency = PhaseLatency(analyze_s=5.0)
        loop, executor = build_loop(eng, lambda now: values["x"], phase_latency=latency, period=100.0)
        loop.start()
        eng.schedule(1.0, lambda: values.update(x=0.0))  # world changes mid-decision
        eng.run(until=10.0)
        # the plan still reflects x=15 as observed at t=0
        action, _ = executor.executed[0]
        assert action.param("amount") == 5.0

    def test_validation(self):
        with pytest.raises(ValueError):
            PhaseLatency(monitor_s=-1.0)


class TestGuardsIntegration:
    def test_confidence_guard_vetoes(self):
        eng = Engine()
        loop, executor = build_loop(
            eng, lambda now: 15.0, guards=[ConfidenceGuard(0.9)], confidence=0.5
        )
        loop.start()
        eng.run(until=25.0)
        assert executor.executed == []
        assert loop.actions_vetoed == 3
        assert all(it.vetoed for it in loop.iterations)

    def test_vetoed_actions_not_recorded_as_plans(self):
        eng = Engine()
        loop, _ = build_loop(
            eng, lambda now: 15.0, guards=[ConfidenceGuard(0.9)], confidence=0.5
        )
        loop.start()
        eng.run(until=25.0)
        assert loop.knowledge.plan_outcomes == []


class TestAssessorAndAudit:
    def test_assessor_runs_each_observed_cycle(self):
        eng = Engine()
        assessor = CountingAssessor()
        loop, _ = build_loop(eng, lambda now: 0.0, assessor=assessor)
        loop.start()
        eng.run(until=35.0)
        assert assessor.calls == 4

    def test_audit_records_plans_and_executions(self):
        eng = Engine()
        audit = AuditTrail()
        loop, _ = build_loop(eng, lambda now: 15.0, audit=audit)
        loop.start()
        eng.run(until=15.0)
        plans = audit.by_phase("plan")
        execs = audit.by_phase("execute")
        assert len(plans) == 2 and len(execs) == 2
        assert "honored" in execs[0].message

    def test_iterations_bounded(self):
        eng = Engine()
        loop, _ = build_loop(eng, lambda now: 0.0, period=1.0)
        loop.keep_iterations = 10
        loop.start()
        eng.run(until=100.0)
        assert len(loop.iterations) == 10
        assert loop.iterations_run == 101
