"""Cross-loop plan arbitration: conflicts, priority, TTL, audit."""


from repro.core.arbiter import PlanArbiter, default_resource_keys
from repro.core.audit import AuditTrail
from repro.core.component import Analyzer, Executor, Monitor, Planner
from repro.core.guards import ConfidenceGuard
from repro.core.runtime import LoopRuntime, LoopSpec
from repro.core.types import Action, AnalysisReport, ExecutionResult, Observation, Plan
from repro.sim import Engine
from repro.telemetry.tsdb import TimeSeriesStore


def plan_of(*actions, confidence=1.0):
    return Plan(0.0, "test", tuple(actions), confidence)


class TestDefaultResourceKeys:
    def test_job_domain(self):
        keys = default_resource_keys(Action("signal_checkpoint", "j1"))
        assert keys == (("job", "j1"),)
        assert default_resource_keys(Action("request_extension", "j1")) == (("job", "j1"),)

    def test_advisory_kinds_claim_nothing(self):
        assert default_resource_keys(Action("notify_user", "j1")) == ()

    def test_unknown_kind_falls_back_to_target(self):
        assert default_resource_keys(Action("weird", "x")) == (("target", "x"),)


class TestPlanArbiter:
    def test_conflict_detected_and_lower_priority_vetoed(self):
        audit = AuditTrail()
        arb = PlanArbiter(audit=audit)
        high = plan_of(Action("signal_checkpoint", "j1"))
        low = plan_of(Action("request_extension", "j1"))
        kept, vetoed = arb.resolve("maint", 10, high, 100.0, ttl_s=120.0)
        assert not vetoed and len(kept.actions) == 1
        kept, vetoed = arb.resolve("sched", 0, low, 100.0, ttl_s=120.0)
        assert len(vetoed) == 1 and kept.empty
        assert arb.vetoes_total == 1
        assert arb.vetoes_by_loop == {"sched": 1}
        events = audit.by_phase("arbitrate")
        assert len(events) == 1
        assert events[0].loop == "sched"
        assert events[0].data["winner"] == "maint"

    def test_equal_priority_first_claim_wins(self):
        arb = PlanArbiter()
        arb.resolve("a", 5, plan_of(Action("signal_checkpoint", "j1")), 0.0, ttl_s=60.0)
        _, vetoed = arb.resolve("b", 5, plan_of(Action("signal_checkpoint", "j1")), 0.0, ttl_s=60.0)
        assert len(vetoed) == 1

    def test_higher_priority_preempts(self):
        audit = AuditTrail()
        arb = PlanArbiter(audit=audit)
        arb.resolve("low", 0, plan_of(Action("signal_checkpoint", "j1")), 0.0, ttl_s=600.0)
        kept, vetoed = arb.resolve(
            "high", 10, plan_of(Action("fix_threads", "j1")), 10.0, ttl_s=600.0
        )
        assert not vetoed and len(kept.actions) == 1
        assert arb.preemptions_total == 1
        assert any("preempted" in e.message for e in audit.by_phase("arbitrate"))

    def test_claim_expires_after_ttl(self):
        arb = PlanArbiter()
        arb.resolve("a", 5, plan_of(Action("signal_checkpoint", "j1")), 0.0, ttl_s=60.0)
        _, vetoed = arb.resolve("b", 0, plan_of(Action("signal_checkpoint", "j1")), 61.0, ttl_s=60.0)
        assert not vetoed  # claim expired

    def test_same_loop_never_self_conflicts(self):
        arb = PlanArbiter()
        for t in (0.0, 10.0, 20.0):
            _, vetoed = arb.resolve(
                "a", 0, plan_of(Action("set_qos_rate", "bg1")), t, ttl_s=600.0
            )
            assert not vetoed

    def test_advisory_actions_pass_through(self):
        arb = PlanArbiter()
        arb.resolve("a", 10, plan_of(Action("signal_checkpoint", "j1")), 0.0, ttl_s=600.0)
        _, vetoed = arb.resolve("b", 0, plan_of(Action("notify_user", "j1")), 0.0, ttl_s=600.0)
        assert not vetoed

    def test_different_targets_no_conflict(self):
        arb = PlanArbiter()
        arb.resolve("a", 5, plan_of(Action("signal_checkpoint", "j1")), 0.0, ttl_s=600.0)
        _, vetoed = arb.resolve("b", 0, plan_of(Action("signal_checkpoint", "j2")), 0.0, ttl_s=600.0)
        assert not vetoed

    def test_release_drops_loop_claims(self):
        arb = PlanArbiter()
        arb.resolve("a", 5, plan_of(Action("signal_checkpoint", "j1")), 0.0, ttl_s=600.0)
        assert arb.release("a") == 1
        _, vetoed = arb.resolve("b", 0, plan_of(Action("signal_checkpoint", "j1")), 1.0, ttl_s=600.0)
        assert not vetoed


# --------------------------------------------------------------------------
# Runtime-hosted conflict resolution end to end


class StubMonitor(Monitor):
    name = "stub-monitor"

    def observe(self, now):
        return Observation(now, self.name, values={"x": 1.0})


class StubAnalyzer(Analyzer):
    name = "stub-analyzer"

    def analyze(self, observation, knowledge):
        return AnalysisReport(observation.time, self.name)


class ActionPlanner(Planner):
    name = "action-planner"

    def __init__(self, kind, target, confidence=1.0):
        self.kind, self.target, self.confidence = kind, target, confidence

    def plan(self, report, knowledge):
        return Plan(
            report.time,
            self.name,
            (Action(self.kind, self.target),),
            self.confidence,
            "planned",
        )


class RecordingExecutor(Executor):
    name = "recording-executor"

    def __init__(self):
        self.executed = []

    def execute(self, plan, knowledge):
        now = plan.time
        out = []
        for action in plan.actions:
            self.executed.append((action.kind, action.target))
            out.append(ExecutionResult(action, now, honored=True))
        return out


def conflict_spec(name, priority, kind, target, executor, confidence=1.0, min_confidence=0.0):
    guards = (lambda: ConfidenceGuard(min_confidence),) if min_confidence > 0 else ()
    return LoopSpec(
        name=name,
        priority=priority,
        monitor_factory=lambda rt: StubMonitor(),
        analyzer_factory=StubAnalyzer,
        planner_factory=lambda: ActionPlanner(kind, target, confidence),
        executor_factory=lambda: executor,
        guard_factories=guards,
        period_s=60.0,
    )


class TestRuntimeArbitration:
    def test_priority_wins_on_shared_tick(self):
        engine = Engine()
        audit = AuditTrail()
        runtime = LoopRuntime(engine, TimeSeriesStore(), audit=audit)
        ex_hi, ex_lo = RecordingExecutor(), RecordingExecutor()
        runtime.add(conflict_spec("hi", 10, "signal_checkpoint", "j1", ex_hi), start=True)
        runtime.add(conflict_spec("lo", 0, "request_extension", "j1", ex_lo), start=True)
        engine.run(until=200.0)
        # same tick, same job: high-priority loop acts, low is vetoed
        assert ex_hi.executed and not ex_lo.executed
        lo_loop = runtime.handle("lo").loop
        assert lo_loop.actions_vetoed >= 1
        assert lo_loop.iterations[-1].vetoed
        assert audit.by_phase("arbitrate")

    def test_priority_ordering_on_shared_tick(self):
        """Higher-priority loop runs first even if registered last."""
        engine = Engine()
        runtime = LoopRuntime(engine, TimeSeriesStore())
        order = []

        def tracker(name):
            class T(StubAnalyzer):
                def analyze(self, observation, knowledge, _n=name):
                    order.append(_n)
                    return AnalysisReport(observation.time, self.name)

            return T

        for name, prio in (("low", 0), ("high", 10)):
            runtime.add(
                LoopSpec(
                    name=name,
                    priority=prio,
                    monitor_factory=lambda rt: StubMonitor(),
                    analyzer_factory=tracker(name),
                    planner_factory=lambda: ActionPlanner("noop_kind", "t"),
                    executor_factory=RecordingExecutor,
                    period_s=60.0,
                ),
                start=True,
            )
        engine.run(until=10.0)
        assert order == ["high", "low"]

    def test_guard_veto_still_audited_under_runtime(self):
        engine = Engine()
        audit = AuditTrail()
        runtime = LoopRuntime(engine, TimeSeriesStore(), audit=audit)
        executor = RecordingExecutor()
        runtime.add(
            conflict_spec(
                "gated", 0, "signal_checkpoint", "j1", executor,
                confidence=0.2, min_confidence=0.9,
            ),
            start=True,
        )
        engine.run(until=100.0)
        assert not executor.executed
        loop = runtime.handle("gated").loop
        assert loop.actions_vetoed >= 1
        plan_events = [e for e in audit.by_loop("gated") if e.phase == "plan"]
        assert plan_events and plan_events[0].data["vetoed"] >= 1
        # the guard (not the arbiter) vetoed: no arbitrate events
        assert not audit.by_phase("arbitrate")
        # vetoed actions never claimed the resource
        assert not runtime.arbiter.active_claims(engine.now)

    def test_removed_loop_releases_claims(self):
        engine = Engine()
        runtime = LoopRuntime(engine, TimeSeriesStore())
        ex = RecordingExecutor()
        runtime.add(conflict_spec("a", 5, "signal_checkpoint", "j1", ex), start=True)
        engine.run(until=10.0)
        assert runtime.arbiter.active_claims(engine.now)
        runtime.remove("a")
        assert not runtime.arbiter.active_claims(engine.now)

    def test_veto_counter_published_to_store(self):
        engine = Engine()
        runtime = LoopRuntime(engine, TimeSeriesStore())
        runtime.add(conflict_spec("hi", 10, "signal_checkpoint", "j1", RecordingExecutor()), start=True)
        runtime.add(conflict_spec("lo", 0, "request_extension", "j1", RecordingExecutor()), start=True)
        engine.run(until=200.0)
        vetoes = runtime.query_engine.scalar(
            'last(loop_vetoes_total{loop="lo"})', at=engine.now
        )
        assert vetoes is not None and vetoes >= 1.0
