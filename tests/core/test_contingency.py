"""Tests for contingency policies (Section IV: humans absent)."""

import pytest

from repro.core.component import Executor
from repro.core.humanloop import (
    ContingencyPolicy,
    HumanInTheLoopExecutor,
    HumanResponseModel,
)
from repro.core.knowledge import KnowledgeBase
from repro.core.types import Action, ExecutionResult, Plan
from repro.sim import Engine, RngRegistry


class RecordingExecutor(Executor):
    name = "recording"

    def __init__(self):
        self.plans = []

    def execute(self, plan, knowledge):
        self.plans.append(plan)
        return [ExecutionResult(a, 0.0, honored=True) for a in plan.actions]


def extension_plan():
    return Plan(0.0, "p", actions=(Action("request_extension", "j1", params={"extra_s": 600.0}),))


def downgrade_to_checkpoint(plan: Plan) -> Plan:
    actions = tuple(
        Action("signal_checkpoint", a.target, rationale="contingency downgrade")
        if a.kind == "request_extension"
        else a
        for a in plan.actions
    )
    return Plan(plan.time, plan.source, actions, plan.confidence, "contingency")


class TestContingencyPolicy:
    def test_transform_applied(self):
        inner = RecordingExecutor()
        policy = ContingencyPolicy(inner, transform=downgrade_to_checkpoint)
        results = policy.execute(extension_plan(), KnowledgeBase())
        assert inner.plans[0].actions[0].kind == "signal_checkpoint"
        assert results[0].honored
        assert policy.invocations == 1

    def test_no_transform_passthrough(self):
        inner = RecordingExecutor()
        policy = ContingencyPolicy(inner)
        policy.execute(extension_plan(), KnowledgeBase())
        assert inner.plans[0].actions[0].kind == "request_extension"


class TestHumanWithContingency:
    def test_unavailable_operator_triggers_contingency(self):
        eng = Engine()
        primary = RecordingExecutor()
        fallback = RecordingExecutor()
        human = HumanInTheLoopExecutor(
            eng,
            primary,
            HumanResponseModel(availability=0.0),
            RngRegistry(seed=1).stream("h"),
            contingency=ContingencyPolicy(fallback, transform=downgrade_to_checkpoint),
        )
        knowledge = KnowledgeBase()
        results = human.execute(extension_plan(), knowledge)
        assert human.contingency_executions == 1
        assert fallback.plans and fallback.plans[0].actions[0].kind == "signal_checkpoint"
        assert primary.plans == []
        assert results[0].honored  # the contingency acted
        assert knowledge.plan_outcomes  # recorded for assessment

    def test_slow_operator_beaten_by_deadline(self):
        eng = Engine()
        primary = RecordingExecutor()
        fallback = RecordingExecutor()
        human = HumanInTheLoopExecutor(
            eng,
            primary,
            HumanResponseModel(
                median_latency_s=10_000.0, latency_sigma=0.0, availability=1.0
            ),
            RngRegistry(seed=2).stream("h"),
            contingency=ContingencyPolicy(fallback),
            contingency_after_s=600.0,
        )
        human.execute(extension_plan(), KnowledgeBase())
        eng.run(until=20_000.0)
        assert fallback.plans  # contingency fired at the deadline
        assert primary.plans == []  # late approval was ignored
        assert human.contingency_executions == 1

    def test_fast_operator_preempts_contingency(self):
        eng = Engine()
        primary = RecordingExecutor()
        fallback = RecordingExecutor()
        human = HumanInTheLoopExecutor(
            eng,
            primary,
            HumanResponseModel(median_latency_s=60.0, latency_sigma=0.0, availability=1.0),
            RngRegistry(seed=3).stream("h"),
            contingency=ContingencyPolicy(fallback),
            contingency_after_s=600.0,
        )
        human.execute(extension_plan(), KnowledgeBase())
        eng.run(until=20_000.0)
        assert primary.plans  # approval landed in time
        assert fallback.plans == []
        assert human.contingency_executions == 0

    def test_no_contingency_preserves_old_behaviour(self):
        eng = Engine()
        primary = RecordingExecutor()
        human = HumanInTheLoopExecutor(
            eng,
            primary,
            HumanResponseModel(availability=0.0),
            RngRegistry(seed=4).stream("h"),
        )
        results = human.execute(extension_plan(), KnowledgeBase())
        assert not results[0].honored
        assert human.plans_dropped_unavailable == 1

    def test_validation(self):
        eng = Engine()
        with pytest.raises(ValueError):
            HumanInTheLoopExecutor(
                eng,
                RecordingExecutor(),
                HumanResponseModel(),
                RngRegistry(seed=5).stream("h"),
                contingency=ContingencyPolicy(RecordingExecutor()),
                contingency_after_s=-1.0,
            )
