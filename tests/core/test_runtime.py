"""LoopRuntime: declarative specs, fused serving, self-telemetry, jitter."""

import numpy as np
import pytest

from repro.core.component import Analyzer, Executor, Planner
from repro.core.loop import PhaseLatency
from repro.core.runtime import (
    LoopRuntime,
    LoopSpec,
    MonitorQuery,
    RuntimeConfig,
    deterministic_phase,
)
from repro.core.types import Action, AnalysisReport, ExecutionResult, Observation, Plan
from repro.sim import Engine
from repro.telemetry.metric import SeriesKey
from repro.telemetry.tsdb import TimeSeriesStore


class PassAnalyzer(Analyzer):
    name = "pass-analyzer"

    def analyze(self, observation, knowledge):
        return AnalysisReport(observation.time, self.name)


class EmptyPlanner(Planner):
    name = "empty-planner"

    def plan(self, report, knowledge):
        return Plan(report.time, self.name)


class ActOncePlanner(Planner):
    """Plans one action on the first report, then stays quiet."""

    name = "act-once-planner"

    def __init__(self):
        self.acted = False

    def plan(self, report, knowledge):
        if self.acted:
            return Plan(report.time, self.name)
        self.acted = True
        return Plan(report.time, self.name, (Action("poke", "t1"),))


class OkExecutor(Executor):
    name = "ok-executor"

    def execute(self, plan, knowledge):
        return [ExecutionResult(a, plan.time, honored=True) for a in plan.actions]


def fill(store, metric="util", nodes=4, points=30, period=10.0):
    times = np.arange(points) * period
    for i in range(nodes):
        store.insert_batch(
            SeriesKey.of(metric, node=f"n{i}"), times, np.full(points, 0.5 + 0.1 * i)
        )


def watch_spec(name, expr, *, period_s=60.0, planner=EmptyPlanner, **kw):
    def build(now, inputs):
        result = inputs["q"]
        if not result.series:
            return None
        values = {
            f"v:{s.label('node') or i}": float(s.values[-1])
            for i, s in enumerate(result.series)
        }
        return Observation(now, name, values=values)

    return LoopSpec(
        name=name,
        queries=(MonitorQuery("q", expr),),
        build_observation=build,
        analyzer_factory=PassAnalyzer,
        planner_factory=planner,
        executor_factory=OkExecutor,
        period_s=period_s,
        **kw,
    )


class TestSpecValidation:
    def test_needs_monitor_definition(self):
        with pytest.raises(ValueError, match="monitor_factory"):
            LoopSpec(
                name="x",
                analyzer_factory=PassAnalyzer,
                planner_factory=EmptyPlanner,
                executor_factory=OkExecutor,
            )

    def test_period_positive(self):
        with pytest.raises(ValueError):
            LoopSpec(
                name="x",
                analyzer_factory=PassAnalyzer,
                planner_factory=EmptyPlanner,
                executor_factory=OkExecutor,
                build_observation=lambda now, inputs: None,
                period_s=0.0,
            )

    def test_duplicate_name_rejected(self):
        engine = Engine()
        runtime = LoopRuntime(engine, TimeSeriesStore())
        spec = watch_spec("dup", "last(util) group by (node)")
        runtime.add(spec)
        with pytest.raises(ValueError, match="already registered"):
            runtime.add(watch_spec("dup", "last(util) group by (node)"))


class TestQueryMonitorServing:
    def test_declarative_loop_runs(self):
        engine = Engine()
        store = TimeSeriesStore()
        fill(store)
        runtime = LoopRuntime(engine, store)
        runtime.add(watch_spec("w", "last(util) group by (node)"), start=True)
        engine.run(until=290.0)
        loop = runtime.handle("w").loop
        assert loop.iterations_run == 5
        obs = loop.iterations[-1].observation
        assert obs is not None and len(obs.values) == 4

    def test_fused_selections_share_one_execution(self):
        engine = Engine()
        store = TimeSeriesStore()
        fill(store, nodes=8)
        runtime = LoopRuntime(engine, store)
        for i in range(8):
            runtime.add(
                watch_spec(f"w{i}", f'last(util{{node="n{i}"}}) group by (node)'),
                start=True,
            )
        engine.run(until=0.0)  # one shared tick at t=0
        qe = runtime.query_engine
        assert runtime.hub.fused_served == 8
        assert qe.served_raw + qe.served_rollup == 1  # one widened execution
        for i in range(8):
            obs = runtime.handle(f"w{i}").loop.iterations[-1].observation
            assert obs.values == {f"v:n{i}": pytest.approx(0.5 + 0.1 * i)}

    def test_unfused_query_served_directly(self):
        engine = Engine()
        store = TimeSeriesStore()
        fill(store)
        runtime = LoopRuntime(engine, store)
        spec = watch_spec("w", "last(util) group by (node)")
        runtime.add(spec, start=True)
        engine.run(until=0.0)
        assert runtime.hub.direct_served >= 1  # no matchers → not fusable

    def test_new_series_visible_after_generation_bump(self):
        engine = Engine()
        store = TimeSeriesStore()
        fill(store, nodes=2)
        runtime = LoopRuntime(engine, store)
        runtime.add(
            watch_spec("w", 'last(util{node=~"n.*"}) group by (node)', period_s=50.0),
            start=True,
        )
        engine.schedule_at(60.0, lambda: store.insert(SeriesKey.of("util", node="n9"), 60.0, 9.9))
        engine.run(until=140.0)
        loop = runtime.handle("w").loop
        assert len(loop.iterations[0].observation.values) == 2
        assert len(loop.iterations[-1].observation.values) == 3


class TestSelfTelemetry:
    def test_iteration_series_published(self):
        engine = Engine()
        store = TimeSeriesStore()
        fill(store)
        runtime = LoopRuntime(engine, store)
        runtime.add(
            watch_spec("w", "last(util) group by (node)", planner=ActOncePlanner),
            start=True,
        )
        engine.run(until=250.0)
        qe = runtime.query_engine
        ms = qe.scalar('mean(loop_iteration_ms{loop="w"})', at=engine.now)
        assert ms is not None and ms > 0.0
        actions = qe.scalar('last(loop_actions_total{loop="w"})', at=engine.now)
        assert actions == 1.0
        staleness = qe.scalar('last(loop_staleness_s{loop="w"})', at=engine.now)
        assert staleness == 0.0  # no phase latency configured

    def test_self_telemetry_can_be_disabled(self):
        engine = Engine()
        store = TimeSeriesStore()
        fill(store)
        runtime = LoopRuntime(engine, store, config=RuntimeConfig(self_telemetry=False))
        runtime.add(watch_spec("w", "last(util) group by (node)"), start=True)
        engine.run(until=250.0)
        assert not store.series_keys("loop_iteration_ms")


class TestStaleness:
    def test_staleness_spans_decision_and_execute_delay(self):
        engine = Engine()
        store = TimeSeriesStore()
        fill(store)
        runtime = LoopRuntime(engine, store)
        runtime.add(
            watch_spec(
                "w",
                "last(util) group by (node)",
                planner=ActOncePlanner,
                phase_latency=PhaseLatency(monitor_s=1.0, analyze_s=3.0, plan_s=2.0, execute_s=4.0),
            ),
            start=True,
        )
        engine.run(until=100.0)
        acted = [it for it in runtime.handle("w").loop.iterations if it.acted]
        assert acted
        it = acted[0]
        assert it.t_observation == it.t_monitor
        assert it.t_execute == pytest.approx(it.t_monitor + 6.0 + 4.0)
        assert it.staleness == pytest.approx(10.0)
        # non-acting iterations have no execute timestamp, hence no staleness
        idle = [it for it in runtime.handle("w").loop.iterations if not it.acted]
        assert all(it.staleness is None for it in idle)

    def test_staleness_published_when_acting(self):
        engine = Engine()
        store = TimeSeriesStore()
        fill(store)
        runtime = LoopRuntime(engine, store)
        runtime.add(
            watch_spec(
                "w",
                "last(util) group by (node)",
                planner=ActOncePlanner,
                phase_latency=PhaseLatency(analyze_s=5.0),
            ),
            start=True,
        )
        engine.run(until=100.0)
        staleness = runtime.query_engine.scalar(
            'last(loop_staleness_s{loop="w"})', at=engine.now
        )
        assert staleness == pytest.approx(5.0)


class TestScheduling:
    def test_deterministic_phase_is_stable_and_bounded(self):
        a = deterministic_phase("loop-a", 60.0, 0.5)
        b = deterministic_phase("loop-a", 60.0, 0.5)
        c = deterministic_phase("loop-b", 60.0, 0.5)
        assert a == b
        assert a != c
        assert 0.0 <= a < 30.0
        assert deterministic_phase("loop-a", 60.0, 0.0) == 0.0

    def test_jitter_spreads_first_ticks(self):
        engine = Engine()
        store = TimeSeriesStore()
        fill(store)
        runtime = LoopRuntime(
            engine, store, config=RuntimeConfig(phase_jitter_frac=0.5)
        )
        for i in range(4):
            runtime.add(watch_spec(f"w{i}", "last(util) group by (node)"), start=True)
        engine.run(until=59.0)
        first_ticks = {
            name: h.loop.iterations[0].t_monitor for name, h in runtime.handles.items()
        }
        assert len(set(first_ticks.values())) > 1  # not all aligned

    def test_dynamic_add_remove(self):
        engine = Engine()
        store = TimeSeriesStore()
        fill(store)
        runtime = LoopRuntime(engine, store)
        runtime.add(watch_spec("w0", "last(util) group by (node)"), start=True)
        engine.run(until=100.0)
        handle = runtime.remove("w0")
        assert handle is not None and not handle.running
        count = handle.loop.iterations_run
        runtime.add(watch_spec("w1", "last(util) group by (node)"), start=True)
        engine.run(until=200.0)
        assert handle.loop.iterations_run == count  # removed loop stayed dead
        assert runtime.handle("w1").loop.iterations_run > 0
        assert runtime.active_loops() == 1

    def test_stats_and_loop_stats_shape(self):
        engine = Engine()
        store = TimeSeriesStore()
        fill(store)
        runtime = LoopRuntime(engine, store)
        runtime.add(watch_spec("w", "last(util) group by (node)"), start=True)
        engine.run(until=100.0)
        stats = runtime.stats()
        assert stats["loops"] == 1.0
        assert stats["iterations_total"] >= 1.0
        rows = runtime.loop_stats()
        assert rows[0]["loop"] == "w"
        assert rows[0]["iterations"] >= 1.0

    def test_legacy_mapek_start_still_works(self):
        """Specs are additive: hand-wired MAPEKLoop.start() is untouched."""
        engine = Engine()
        store = TimeSeriesStore()
        fill(store)
        runtime = LoopRuntime(engine, store)
        spec = watch_spec("hand", "last(util) group by (node)")
        handle = runtime.add(spec)
        handle.loop.start()  # classic self-scheduling path
        engine.run(until=100.0)
        assert handle.loop.iterations_run >= 2
