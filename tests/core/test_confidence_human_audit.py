"""Tests for confidence measures, human adapters, audit, bus, registry."""

import pytest

from repro.analytics.forecast import ForecastResult
from repro.core.audit import AuditTrail
from repro.core.bus import MessageBus
from repro.core.component import Executor
from repro.core.confidence import (
    combined_confidence,
    interval_confidence,
    success_confidence,
)
from repro.core.humanloop import (
    HumanInTheLoopExecutor,
    HumanOnTheLoopNotifier,
    HumanResponseModel,
)
from repro.core.knowledge import KnowledgeBase
from repro.core.registry import ComponentRegistry, default_registry
from repro.core.types import Action, ExecutionResult, Plan
from repro.sim import Engine, RngRegistry


def fr(eta=100.0, lo=90.0, hi=110.0):
    return ForecastResult(eta, lo, hi, rate=1.0, n_markers=10)


class TestConfidence:
    def test_interval_confidence_tight_is_high(self):
        tight = interval_confidence(fr(lo=99.0, hi=101.0), horizon_s=1000.0)
        loose = interval_confidence(fr(lo=0.0, hi=2000.0), horizon_s=1000.0)
        assert tight > 0.95
        assert loose < 0.2
        assert 0.0 <= loose <= tight <= 1.0

    def test_interval_confidence_zero_horizon(self):
        assert interval_confidence(fr(), horizon_s=0.0) == 0.0

    def test_success_confidence_cold_start(self):
        assert success_confidence(KnowledgeBase()) == pytest.approx(0.5)

    def test_success_confidence_tracks_history(self):
        k = KnowledgeBase()
        for score in [1.0] * 8:
            o = k.record_plan(Plan(0.0, "p"), [])
            k.assess_outcome(o, score, 0.0)
        high = success_confidence(k)
        k2 = KnowledgeBase()
        for score in [0.0] * 8:
            o = k2.record_plan(Plan(0.0, "p"), [])
            k2.assess_outcome(o, score, 0.0)
        low = success_confidence(k2)
        assert high > 0.8 and low < 0.2

    def test_combined_confidence_blend(self):
        k = KnowledgeBase()
        c = combined_confidence(fr(lo=99, hi=101), k, horizon_s=1000.0)
        assert 0.5 < c <= 1.0
        c_none = combined_confidence(None, k, horizon_s=1000.0)
        assert c_none == pytest.approx(0.4 * 0.5)

    def test_combined_weight_validation(self):
        with pytest.raises(ValueError):
            combined_confidence(fr(), KnowledgeBase(), 100.0, forecast_weight=1.5)


class _CountingExecutor(Executor):
    name = "counting"

    def __init__(self):
        self.count = 0

    def execute(self, plan, knowledge):
        self.count += len(plan.actions)
        return [ExecutionResult(a, 0.0, honored=True) for a in plan.actions]


class TestHumanInTheLoop:
    def _plan(self):
        return Plan(0.0, "p", actions=(Action("extend", "j1"),))

    def test_available_operator_executes_after_latency(self):
        eng = Engine()
        inner = _CountingExecutor()
        model = HumanResponseModel(median_latency_s=100.0, latency_sigma=0.0, availability=1.0, approve_prob=1.0)
        rng = RngRegistry(seed=1).stream("h")
        human = HumanInTheLoopExecutor(eng, inner, model, rng)
        results = human.execute(self._plan(), KnowledgeBase())
        assert all(not r.honored for r in results)  # queued, not yet done
        eng.run(until=99.0)
        assert inner.count == 0
        eng.run(until=101.0)
        assert inner.count == 1
        assert human.plans_executed == 1

    def test_unavailable_operator_drops_plan(self):
        eng = Engine()
        inner = _CountingExecutor()
        model = HumanResponseModel(availability=0.0)
        rng = RngRegistry(seed=2).stream("h")
        human = HumanInTheLoopExecutor(eng, inner, model, rng)
        results = human.execute(self._plan(), KnowledgeBase())
        eng.run(until=1e6)
        assert inner.count == 0
        assert human.plans_dropped_unavailable == 1
        assert "unavailable" in results[0].detail

    def test_rejection(self):
        eng = Engine()
        inner = _CountingExecutor()
        model = HumanResponseModel(availability=1.0, approve_prob=0.0)
        rng = RngRegistry(seed=3).stream("h")
        human = HumanInTheLoopExecutor(eng, inner, model, rng)
        human.execute(self._plan(), KnowledgeBase())
        eng.run(until=1e6)
        assert inner.count == 0
        assert human.plans_rejected == 1

    def test_latency_distribution_positive(self):
        model = HumanResponseModel(median_latency_s=600.0, latency_sigma=0.8)
        rng = RngRegistry(seed=4).stream("h")
        samples = [model.sample_latency(rng) for _ in range(200)]
        assert all(s > 0 for s in samples)
        import numpy as np

        assert 300.0 < float(np.median(samples)) < 1200.0

    def test_model_validation(self):
        with pytest.raises(ValueError):
            HumanResponseModel(availability=1.5)
        with pytest.raises(ValueError):
            HumanResponseModel(median_latency_s=-1.0)


class TestHumanOnTheLoop:
    def test_notifications_audited(self):
        audit = AuditTrail()
        notifier = HumanOnTheLoopNotifier(audit)
        notifier.notify(10.0, "loop-a", "extended j1 by 600s", confidence=0.9)
        assert notifier.notifications == 1
        assert notifier.unacknowledged == 1
        assert audit.by_phase("notify")[0].data["confidence"] == 0.9
        assert notifier.acknowledge_all() == 1
        assert notifier.unacknowledged == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            HumanOnTheLoopNotifier(AuditTrail(), digest_period_s=0.0)


class TestAuditTrail:
    def test_capacity_eviction(self):
        audit = AuditTrail(capacity=3)
        for i in range(5):
            audit.record(float(i), "l", "plan", f"m{i}")
        assert len(audit) == 3
        assert audit.dropped == 2
        assert audit.events[0].message == "m2"

    def test_filters(self):
        audit = AuditTrail()
        audit.record(1.0, "a", "plan", "x")
        audit.record(2.0, "b", "execute", "y")
        audit.record(3.0, "a", "execute", "z")
        assert len(audit.by_loop("a")) == 2
        assert len(audit.by_phase("execute")) == 2
        assert len(audit.since(2.0)) == 2
        assert [e.message for e in audit.tail(1)] == ["z"]

    def test_render(self):
        audit = AuditTrail()
        e = audit.record(1.5, "loop", "plan", "did a thing")
        assert "loop/plan" in e.render()

    def test_validation(self):
        with pytest.raises(ValueError):
            AuditTrail(capacity=0)


class TestMessageBus:
    def test_delivery_with_latency(self):
        eng = Engine()
        bus = MessageBus(eng, latency_s=1.0)
        got = []
        bus.send("hello", got.append)
        assert got == []
        eng.run(until=1.0)
        assert got == ["hello"]
        assert bus.messages_sent == bus.messages_delivered == 1

    def test_lossy_bus(self):
        eng = Engine()
        rng = RngRegistry(seed=5).stream("bus")
        bus = MessageBus(eng, latency_s=0.0, loss_prob=1.0, rng=rng)
        got = []
        bus.send("x", got.append)
        eng.run(until=1.0)
        assert got == []
        assert bus.messages_lost == 1

    def test_validation(self):
        eng = Engine()
        with pytest.raises(ValueError):
            MessageBus(eng, latency_s=-1.0)
        with pytest.raises(ValueError):
            MessageBus(eng, loss_prob=0.5)  # rng missing


class TestRegistry:
    def test_register_and_create(self):
        reg = ComponentRegistry()
        reg.register("planner", "noop", lambda **kw: "planner-instance")
        assert reg.create("planner", "noop") == "planner-instance"
        assert ("planner", "noop") in reg

    def test_duplicate_rejected(self):
        reg = ComponentRegistry()
        reg.register("planner", "x", lambda: None)
        with pytest.raises(ValueError, match="already registered"):
            reg.register("planner", "x", lambda: None)

    def test_unknown_role_rejected(self):
        with pytest.raises(ValueError, match="unknown role"):
            ComponentRegistry().register("wizard", "x", lambda: None)

    def test_unknown_name_raises_with_hint(self):
        reg = ComponentRegistry()
        with pytest.raises(KeyError, match="available"):
            reg.create("planner", "ghost")

    def test_default_registry_has_forecasters(self):
        reg = default_registry()
        names = reg.names("forecaster")
        assert "ols" in names and "theilsen" in names
        fc = reg.create("forecaster", "ols")
        assert fc.name == "ols"
