"""The public-API import-boundary lint must pass on the current tree.

``tools/check_api_imports.py`` fails (exit 1) when the CLI or an
experiment driver imports engine internals instead of going through
``repro.api``; pre-existing offenders are grandfathered and only warn.
This test keeps the tree at zero *new* violations and pins the
forbidden-import predicate itself.
"""

import importlib.util
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SCRIPT = REPO / "tools" / "check_api_imports.py"


def _load_checker():
    spec = importlib.util.spec_from_file_location("check_api_imports", SCRIPT)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def test_tree_has_no_new_violations():
    proc = subprocess.run(
        [sys.executable, str(SCRIPT)],
        cwd=REPO,
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "0 new violation(s)" in proc.stdout


def test_forbidden_predicate():
    checker = _load_checker()
    assert checker._is_forbidden("repro.query.engine", ())
    assert checker._is_forbidden("repro.query.standing", ("StandingQueryEngine",))
    assert checker._is_forbidden("repro.shard", ())
    assert checker._is_forbidden("repro.shard.federated", ())
    assert checker._is_forbidden("repro.query", ("QueryEngine",))
    # the public surface stays importable
    assert not checker._is_forbidden("repro.query", ("MetricQuery",))
    assert not checker._is_forbidden("repro.api", ("Client",))
    assert not checker._is_forbidden("repro.serve", ("TenantSpec",))
    # prefix match is dotted, not textual
    assert not checker._is_forbidden("repro.sharding", ())
