"""Tests for synthetic telemetry generation and overhead accounting."""

import numpy as np
import pytest

from repro.sim import Engine, RngRegistry
from repro.telemetry.collector import CollectionPipeline
from repro.telemetry.metric import SeriesKey
from repro.telemetry.overhead import MonitoringOverheadModel
from repro.telemetry.sampler import Sampler
from repro.telemetry.sensor import ConstantSensor
from repro.telemetry.synthetic import (
    DAY_S,
    LevelShiftSpec,
    SpikeSpec,
    SyntheticSeriesSpec,
    node_power_spec,
    node_temperature_spec,
    render_series,
)
from repro.telemetry.tsdb import TimeSeriesStore


@pytest.fixture
def rng():
    return RngRegistry(seed=11).stream("synthetic")


def test_base_only(rng):
    spec = SyntheticSeriesSpec(base=50.0, noise_std=0.0)
    values = render_series(np.arange(10.0), spec, rng)
    np.testing.assert_array_equal(values, np.full(10, 50.0))


def test_diurnal_period(rng):
    spec = SyntheticSeriesSpec(base=0.0, diurnal_amplitude=10.0, noise_std=0.0)
    t = np.array([0.0, DAY_S / 4, DAY_S / 2])
    v = render_series(t, spec, rng)
    assert v[0] == pytest.approx(0.0, abs=1e-9)
    assert v[1] == pytest.approx(10.0)
    assert v[2] == pytest.approx(0.0, abs=1e-9)


def test_drift(rng):
    spec = SyntheticSeriesSpec(base=0.0, drift_per_day=24.0, noise_std=0.0)
    v = render_series(np.array([0.0, DAY_S / 2, DAY_S]), spec, rng)
    np.testing.assert_allclose(v, [0.0, 12.0, 24.0])


def test_spike_window(rng):
    spec = SyntheticSeriesSpec(
        base=0.0, noise_std=0.0, spikes=[SpikeSpec(time=100.0, magnitude=50.0, duration=10.0)]
    )
    t = np.array([99.0, 100.0, 105.0, 110.0])
    v = render_series(t, spec, rng)
    np.testing.assert_allclose(v, [0.0, 50.0, 50.0, 0.0])


def test_level_shift(rng):
    spec = SyntheticSeriesSpec(
        base=10.0, noise_std=0.0, level_shifts=[LevelShiftSpec(time=50.0, magnitude=5.0)]
    )
    v = render_series(np.array([0.0, 49.0, 50.0, 100.0]), spec, rng)
    np.testing.assert_allclose(v, [10.0, 10.0, 15.0, 15.0])


def test_ar1_noise_is_autocorrelated(rng):
    spec = SyntheticSeriesSpec(base=0.0, noise_std=1.0, ar1_coeff=0.95)
    v = render_series(np.arange(5000.0), spec, rng)
    lag1 = np.corrcoef(v[:-1], v[1:])[0, 1]
    assert lag1 > 0.8


def test_white_noise_not_autocorrelated(rng):
    spec = SyntheticSeriesSpec(base=0.0, noise_std=1.0, ar1_coeff=0.0)
    v = render_series(np.arange(5000.0), spec, rng)
    lag1 = np.corrcoef(v[:-1], v[1:])[0, 1]
    assert abs(lag1) < 0.1


def test_clipping(rng):
    spec = SyntheticSeriesSpec(base=0.0, noise_std=10.0, clip_min=-1.0, clip_max=1.0)
    v = render_series(np.arange(100.0), spec, rng)
    assert np.all(v >= -1.0) and np.all(v <= 1.0)


def test_invalid_ar1_raises():
    with pytest.raises(ValueError):
        SyntheticSeriesSpec(ar1_coeff=1.0)


def test_anomaly_times_sorted(rng):
    spec = SyntheticSeriesSpec(
        spikes=[SpikeSpec(200.0, 1.0)], level_shifts=[LevelShiftSpec(100.0, 1.0)]
    )
    assert spec.anomaly_times() == [100.0, 200.0]


def test_plausible_specs(rng):
    for factory in (node_power_spec, node_temperature_spec):
        spec = factory(rng)
        v = render_series(np.arange(0.0, 3600.0, 10.0), spec, rng)
        assert np.all(np.isfinite(v))


def test_overhead_report():
    eng = Engine()
    store = TimeSeriesStore()
    pipe = CollectionPipeline(eng, store, hop_latency=0.0, ingest_latency=0.0)
    aggs = pipe.build(1)
    sampler = Sampler(eng, aggs[0], period=1.0, per_sample_cost_s=0.002)
    sampler.add_sensor(ConstantSensor(SeriesKey.of("m", node="a"), 1.0))
    sampler.start()
    eng.run(until=99.0)
    model = MonitoringOverheadModel([sampler], aggs)
    report = model.report(window_s=100.0)
    assert report.n_agents == 1
    assert report.cpu_fraction_per_agent == pytest.approx(0.002, rel=0.01)
    assert report.bytes_total == 100 * 64
    assert report.drop_rate == 0.0


def test_overhead_rejects_bad_window():
    model = MonitoringOverheadModel([], [])
    with pytest.raises(ValueError):
        model.report(0.0)
