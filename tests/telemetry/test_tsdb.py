"""Unit tests for the ring buffer and time-series store."""

import numpy as np
import pytest

from repro.telemetry.metric import SeriesKey
from repro.telemetry.tsdb import RingBuffer, TimeSeriesStore


class TestRingBuffer:
    def test_append_and_read_back(self):
        rb = RingBuffer(8)
        for t in range(5):
            rb.append(float(t), float(t) * 10)
        times, values = rb.arrays()
        np.testing.assert_array_equal(times, [0, 1, 2, 3, 4])
        np.testing.assert_array_equal(values, [0, 10, 20, 30, 40])

    def test_wraparound_keeps_latest(self):
        rb = RingBuffer(4)
        for t in range(10):
            rb.append(float(t), float(t))
        times, _ = rb.arrays()
        np.testing.assert_array_equal(times, [6, 7, 8, 9])
        assert len(rb) == 4
        assert rb.total_appended == 10

    def test_out_of_order_append_raises(self):
        rb = RingBuffer(4)
        rb.append(5.0, 1.0)
        with pytest.raises(ValueError, match="out-of-order"):
            rb.append(4.0, 1.0)

    def test_equal_time_append_allowed(self):
        rb = RingBuffer(4)
        rb.append(5.0, 1.0)
        rb.append(5.0, 2.0)
        assert len(rb) == 2

    def test_window_query(self):
        rb = RingBuffer(16)
        for t in range(10):
            rb.append(float(t), float(t))
        times, values = rb.window(2.5, 6.0)
        np.testing.assert_array_equal(times, [3, 4, 5, 6])

    def test_window_inclusive_bounds(self):
        rb = RingBuffer(16)
        for t in range(5):
            rb.append(float(t), float(t))
        times, _ = rb.window(1.0, 3.0)
        np.testing.assert_array_equal(times, [1, 2, 3])

    def test_last_time_value(self):
        rb = RingBuffer(4)
        rb.append(1.0, 10.0)
        rb.append(2.0, 20.0)
        assert rb.last_time() == 2.0
        assert rb.last_value() == 20.0

    def test_first_time_tracks_overwrites(self):
        rb = RingBuffer(4)
        rb.append(1.0, 0.0)
        assert rb.first_time() == 1.0
        for t in range(2, 10):
            rb.append(float(t), 0.0)
        assert rb.first_time() == 6.0  # oldest surviving sample after wrap
        with pytest.raises(IndexError):
            RingBuffer(2).first_time()

    def test_empty_last_raises(self):
        rb = RingBuffer(4)
        with pytest.raises(IndexError):
            rb.last_time()
        with pytest.raises(IndexError):
            rb.last_value()

    def test_nonpositive_capacity_rejected(self):
        with pytest.raises(ValueError):
            RingBuffer(0)

    def test_extend_bulk(self):
        rb = RingBuffer(8)
        rb.extend(np.array([1.0, 2.0, 3.0]), np.array([10.0, 20.0, 30.0]))
        times, values = rb.arrays()
        np.testing.assert_array_equal(times, [1, 2, 3])
        np.testing.assert_array_equal(values, [10, 20, 30])

    def test_extend_larger_than_capacity_keeps_tail(self):
        rb = RingBuffer(4)
        rb.extend(np.arange(10.0), np.arange(10.0) * 2)
        times, values = rb.arrays()
        np.testing.assert_array_equal(times, [6, 7, 8, 9])
        np.testing.assert_array_equal(values, [12, 14, 16, 18])

    def test_extend_wraps_correctly(self):
        rb = RingBuffer(5)
        rb.extend(np.array([0.0, 1.0, 2.0]), np.zeros(3))
        rb.extend(np.array([3.0, 4.0, 5.0, 6.0]), np.ones(4))
        times, values = rb.arrays()
        np.testing.assert_array_equal(times, [2, 3, 4, 5, 6])
        np.testing.assert_array_equal(values, [0, 1, 1, 1, 1])

    def test_extend_unsorted_raises(self):
        rb = RingBuffer(8)
        with pytest.raises(ValueError, match="sorted"):
            rb.extend(np.array([2.0, 1.0]), np.array([0.0, 0.0]))

    def test_extend_overlap_raises(self):
        rb = RingBuffer(8)
        rb.append(5.0, 0.0)
        with pytest.raises(ValueError, match="overlaps"):
            rb.extend(np.array([4.0]), np.array([0.0]))

    def test_extend_empty_noop(self):
        rb = RingBuffer(8)
        rb.extend(np.empty(0), np.empty(0))
        assert len(rb) == 0

    def test_extend_shape_mismatch(self):
        rb = RingBuffer(8)
        with pytest.raises(ValueError, match="same shape"):
            rb.extend(np.array([1.0]), np.array([1.0, 2.0]))

    def test_extend_exactly_capacity(self):
        """n == capacity takes the replace-everything path."""
        rb = RingBuffer(4)
        rb.append(0.0, -1.0)
        rb.extend(np.array([1.0, 2.0, 3.0, 4.0]), np.array([10.0, 20.0, 30.0, 40.0]))
        times, values = rb.arrays()
        np.testing.assert_array_equal(times, [1, 2, 3, 4])
        np.testing.assert_array_equal(values, [10, 20, 30, 40])
        assert len(rb) == 4
        assert rb.total_appended == 5

    def test_extend_split_write_lands_on_both_sides(self):
        """A wrapping extend writes the tail then the head, in order."""
        rb = RingBuffer(6)
        rb.extend(np.arange(4.0), np.arange(4.0) * 10)  # head at 4
        rb.extend(np.arange(4.0, 8.0), np.arange(4.0, 8.0) * 10)  # splits 2/2
        times, values = rb.arrays()
        np.testing.assert_array_equal(times, [2, 3, 4, 5, 6, 7])
        np.testing.assert_array_equal(values, [20, 30, 40, 50, 60, 70])

    def test_extend_overlap_rejected_after_wrap(self):
        rb = RingBuffer(3)
        rb.extend(np.arange(10.0), np.zeros(10))  # wrapped; last_time == 9
        with pytest.raises(ValueError, match="overlaps"):
            rb.extend(np.array([8.5]), np.array([0.0]))
        rb.extend(np.array([9.0]), np.array([1.0]))  # equal time is allowed
        assert rb.last_value() == 1.0

    def test_window_after_multiple_full_wraps(self):
        rb = RingBuffer(8)
        for t in range(50):  # wraps 6+ times
            rb.append(float(t), float(t) * 2)
        times, values = rb.window(44.0, 47.0)
        np.testing.assert_array_equal(times, [44, 45, 46, 47])
        np.testing.assert_array_equal(values, [88, 90, 92, 94])
        # window wider than retention clamps to stored range
        times, _ = rb.window(0.0, 100.0)
        np.testing.assert_array_equal(times, np.arange(42, 50))

    def test_window_after_wrapping_extends(self):
        rb = RingBuffer(5)
        for start in (0, 3, 6, 9):
            rb.extend(np.arange(float(start), float(start) + 3), np.full(3, float(start)))
        times, values = rb.window(7.0, 11.0)
        np.testing.assert_array_equal(times, [7, 8, 9, 10, 11])
        np.testing.assert_array_equal(values, [6, 6, 9, 9, 9])


class TestTimeSeriesStore:
    def _key(self, **labels):
        return SeriesKey.of("m", **labels)

    def test_insert_query_roundtrip(self):
        store = TimeSeriesStore()
        k = self._key(node="a")
        for t in range(10):
            store.insert(k, float(t), float(t) ** 2)
        times, values = store.query(k, 2.0, 4.0)
        np.testing.assert_array_equal(times, [2, 3, 4])
        np.testing.assert_array_equal(values, [4, 9, 16])

    def test_query_missing_series_returns_empty(self):
        store = TimeSeriesStore()
        times, values = store.query(self._key(), 0, 10)
        assert times.size == 0 and values.size == 0

    def test_latest(self):
        store = TimeSeriesStore()
        k = self._key()
        assert store.latest(k) is None
        store.insert(k, 1.0, 5.0)
        store.insert(k, 2.0, 7.0)
        assert store.latest(k) == (2.0, 7.0)

    def test_cardinality_counts_distinct_series(self):
        store = TimeSeriesStore()
        store.insert(self._key(node="a"), 0.0, 1.0)
        store.insert(self._key(node="b"), 0.0, 1.0)
        store.insert(self._key(node="a"), 1.0, 1.0)
        assert store.cardinality() == 2

    def test_rate_on_counter(self):
        store = TimeSeriesStore()
        k = self._key()
        for t in range(11):
            store.insert(k, float(t), float(t) * 3)  # 3 units/s
        assert store.rate(k, 0, 10) == pytest.approx(3.0)

    def test_rate_insufficient_points(self):
        store = TimeSeriesStore()
        k = self._key()
        store.insert(k, 0.0, 1.0)
        assert store.rate(k, 0, 10) is None

    def test_rate_clamps_counter_reset(self):
        """A restart (counter drops) must not yield a negative rate."""
        store = TimeSeriesStore()
        k = self._key()
        samples = [(0.0, 0.0), (10.0, 100.0), (20.0, 10.0), (30.0, 110.0)]
        for t, v in samples:
            store.insert(k, t, v)
        # increases: 100, then 10 (post-reset value), then 100 → 210 / 30 s
        assert store.rate(k, 0, 30) == pytest.approx(7.0)

    def test_rate_all_resets_still_nonnegative(self):
        store = TimeSeriesStore()
        k = self._key()
        for t, v in [(0.0, 50.0), (10.0, 40.0), (20.0, 30.0)]:
            store.insert(k, t, v)
        assert store.rate(k, 0, 20) == pytest.approx((40.0 + 30.0) / 20.0)

    def test_downsample_mean(self):
        store = TimeSeriesStore()
        k = self._key()
        for t in range(10):
            store.insert(k, float(t), float(t))
        times, values = store.downsample(k, 0.0, 10.0, step=5.0, agg="mean")
        np.testing.assert_array_equal(times, [0.0, 5.0])
        np.testing.assert_array_equal(values, [2.0, 7.0])

    def test_downsample_drops_empty_bins(self):
        store = TimeSeriesStore()
        k = self._key()
        store.insert(k, 0.0, 1.0)
        store.insert(k, 20.0, 2.0)
        times, _ = store.downsample(k, 0.0, 30.0, step=5.0)
        np.testing.assert_array_equal(times, [0.0, 20.0])

    def test_downsample_matches_naive_loop_for_all_aggs(self):
        """The vectorized path must agree with a per-bin reference loop."""
        rng = np.random.default_rng(5)
        store = TimeSeriesStore()
        k = self._key()
        times = np.sort(rng.uniform(0.0, 500.0, size=400))
        values = rng.normal(100.0, 25.0, size=400)
        store.insert_batch(k, times, values)
        naive_fns = {
            "mean": np.mean,
            "sum": np.sum,
            "min": np.min,
            "max": np.max,
            "count": lambda a: float(a.size),
            "last": lambda a: float(a[-1]),
            "p50": lambda a: float(np.percentile(a, 50)),
            "p95": lambda a: float(np.percentile(a, 95)),
            "p99": lambda a: float(np.percentile(a, 99)),
        }
        t0, t1, step = 13.0, 487.0, 37.0
        w_times, w_values = store.query(k, t0, t1)
        bins = np.floor((w_times - t0) / step).astype(np.int64)
        for agg, fn in naive_fns.items():
            got_t, got_v = store.downsample(k, t0, t1, step=step, agg=agg)
            want_t = [t0 + b * step for b in np.unique(bins)]
            want_v = [fn(w_values[bins == b]) for b in np.unique(bins)]
            np.testing.assert_allclose(got_t, want_t, rtol=1e-12)
            np.testing.assert_allclose(got_v, want_v, rtol=1e-12)

    def test_downsample_unknown_agg_raises(self):
        store = TimeSeriesStore()
        with pytest.raises(ValueError, match="unknown aggregator"):
            store.downsample(self._key(), 0, 1, 1.0, agg="median-ish")

    def test_downsample_nonpositive_step_raises(self):
        store = TimeSeriesStore()
        with pytest.raises(ValueError, match="step"):
            store.downsample(self._key(), 0, 1, 0.0)

    def test_stats(self):
        store = TimeSeriesStore()
        k = self._key()
        for t, v in enumerate([1.0, 2.0, 3.0, 4.0]):
            store.insert(k, float(t), v)
        s = store.stats(k, 0, 3)
        assert s.count == 4
        assert s.mean == pytest.approx(2.5)
        assert s.minimum == 1.0 and s.maximum == 4.0

    def test_stats_empty(self):
        store = TimeSeriesStore()
        s = store.stats(self._key(), 0, 1)
        assert s.count == 0
        assert np.isnan(s.mean)

    def test_aggregate_across_series(self):
        store = TimeSeriesStore()
        store.insert(SeriesKey.of("power", node="a"), 0.0, 100.0)
        store.insert(SeriesKey.of("power", node="b"), 0.0, 300.0)
        assert store.aggregate_across("power", 0, 1, "mean") == pytest.approx(200.0)
        assert store.aggregate_across("power", 0, 1, "max") == pytest.approx(300.0)
        assert store.aggregate_across("other", 0, 1) is None

    def test_capacity_override(self):
        store = TimeSeriesStore(default_capacity=100)
        store.set_capacity("m", 2)
        k = self._key()
        for t in range(5):
            store.insert(k, float(t), float(t))
        times, _ = store.query(k, 0, 10)
        np.testing.assert_array_equal(times, [3, 4])

    def test_total_inserts_counted(self):
        store = TimeSeriesStore()
        k = self._key()
        store.insert(k, 0.0, 1.0)
        store.insert_batch(k, np.array([1.0, 2.0]), np.array([1.0, 2.0]))
        assert store.total_inserts == 3

    def test_series_keys_filter_by_metric(self):
        store = TimeSeriesStore()
        store.insert(SeriesKey.of("a", n="1"), 0.0, 0.0)
        store.insert(SeriesKey.of("b", n="1"), 0.0, 0.0)
        assert [k.metric for k in store.series_keys("a")] == ["a"]
        assert len(store.series_keys()) == 2
