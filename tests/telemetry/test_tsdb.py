"""Unit tests for the ring buffer and time-series store."""

import numpy as np
import pytest

from repro.telemetry.metric import SeriesKey
from repro.telemetry.tsdb import RingBuffer, SeriesStats, TimeSeriesStore


class TestRingBuffer:
    def test_append_and_read_back(self):
        rb = RingBuffer(8)
        for t in range(5):
            rb.append(float(t), float(t) * 10)
        times, values = rb.arrays()
        np.testing.assert_array_equal(times, [0, 1, 2, 3, 4])
        np.testing.assert_array_equal(values, [0, 10, 20, 30, 40])

    def test_wraparound_keeps_latest(self):
        rb = RingBuffer(4)
        for t in range(10):
            rb.append(float(t), float(t))
        times, _ = rb.arrays()
        np.testing.assert_array_equal(times, [6, 7, 8, 9])
        assert len(rb) == 4
        assert rb.total_appended == 10

    def test_out_of_order_append_raises(self):
        rb = RingBuffer(4)
        rb.append(5.0, 1.0)
        with pytest.raises(ValueError, match="out-of-order"):
            rb.append(4.0, 1.0)

    def test_equal_time_append_allowed(self):
        rb = RingBuffer(4)
        rb.append(5.0, 1.0)
        rb.append(5.0, 2.0)
        assert len(rb) == 2

    def test_window_query(self):
        rb = RingBuffer(16)
        for t in range(10):
            rb.append(float(t), float(t))
        times, values = rb.window(2.5, 6.0)
        np.testing.assert_array_equal(times, [3, 4, 5, 6])

    def test_window_inclusive_bounds(self):
        rb = RingBuffer(16)
        for t in range(5):
            rb.append(float(t), float(t))
        times, _ = rb.window(1.0, 3.0)
        np.testing.assert_array_equal(times, [1, 2, 3])

    def test_last_time_value(self):
        rb = RingBuffer(4)
        rb.append(1.0, 10.0)
        rb.append(2.0, 20.0)
        assert rb.last_time() == 2.0
        assert rb.last_value() == 20.0

    def test_empty_last_raises(self):
        rb = RingBuffer(4)
        with pytest.raises(IndexError):
            rb.last_time()
        with pytest.raises(IndexError):
            rb.last_value()

    def test_nonpositive_capacity_rejected(self):
        with pytest.raises(ValueError):
            RingBuffer(0)

    def test_extend_bulk(self):
        rb = RingBuffer(8)
        rb.extend(np.array([1.0, 2.0, 3.0]), np.array([10.0, 20.0, 30.0]))
        times, values = rb.arrays()
        np.testing.assert_array_equal(times, [1, 2, 3])
        np.testing.assert_array_equal(values, [10, 20, 30])

    def test_extend_larger_than_capacity_keeps_tail(self):
        rb = RingBuffer(4)
        rb.extend(np.arange(10.0), np.arange(10.0) * 2)
        times, values = rb.arrays()
        np.testing.assert_array_equal(times, [6, 7, 8, 9])
        np.testing.assert_array_equal(values, [12, 14, 16, 18])

    def test_extend_wraps_correctly(self):
        rb = RingBuffer(5)
        rb.extend(np.array([0.0, 1.0, 2.0]), np.zeros(3))
        rb.extend(np.array([3.0, 4.0, 5.0, 6.0]), np.ones(4))
        times, values = rb.arrays()
        np.testing.assert_array_equal(times, [2, 3, 4, 5, 6])
        np.testing.assert_array_equal(values, [0, 1, 1, 1, 1])

    def test_extend_unsorted_raises(self):
        rb = RingBuffer(8)
        with pytest.raises(ValueError, match="sorted"):
            rb.extend(np.array([2.0, 1.0]), np.array([0.0, 0.0]))

    def test_extend_overlap_raises(self):
        rb = RingBuffer(8)
        rb.append(5.0, 0.0)
        with pytest.raises(ValueError, match="overlaps"):
            rb.extend(np.array([4.0]), np.array([0.0]))

    def test_extend_empty_noop(self):
        rb = RingBuffer(8)
        rb.extend(np.empty(0), np.empty(0))
        assert len(rb) == 0

    def test_extend_shape_mismatch(self):
        rb = RingBuffer(8)
        with pytest.raises(ValueError, match="same shape"):
            rb.extend(np.array([1.0]), np.array([1.0, 2.0]))


class TestTimeSeriesStore:
    def _key(self, **labels):
        return SeriesKey.of("m", **labels)

    def test_insert_query_roundtrip(self):
        store = TimeSeriesStore()
        k = self._key(node="a")
        for t in range(10):
            store.insert(k, float(t), float(t) ** 2)
        times, values = store.query(k, 2.0, 4.0)
        np.testing.assert_array_equal(times, [2, 3, 4])
        np.testing.assert_array_equal(values, [4, 9, 16])

    def test_query_missing_series_returns_empty(self):
        store = TimeSeriesStore()
        times, values = store.query(self._key(), 0, 10)
        assert times.size == 0 and values.size == 0

    def test_latest(self):
        store = TimeSeriesStore()
        k = self._key()
        assert store.latest(k) is None
        store.insert(k, 1.0, 5.0)
        store.insert(k, 2.0, 7.0)
        assert store.latest(k) == (2.0, 7.0)

    def test_cardinality_counts_distinct_series(self):
        store = TimeSeriesStore()
        store.insert(self._key(node="a"), 0.0, 1.0)
        store.insert(self._key(node="b"), 0.0, 1.0)
        store.insert(self._key(node="a"), 1.0, 1.0)
        assert store.cardinality() == 2

    def test_rate_on_counter(self):
        store = TimeSeriesStore()
        k = self._key()
        for t in range(11):
            store.insert(k, float(t), float(t) * 3)  # 3 units/s
        assert store.rate(k, 0, 10) == pytest.approx(3.0)

    def test_rate_insufficient_points(self):
        store = TimeSeriesStore()
        k = self._key()
        store.insert(k, 0.0, 1.0)
        assert store.rate(k, 0, 10) is None

    def test_downsample_mean(self):
        store = TimeSeriesStore()
        k = self._key()
        for t in range(10):
            store.insert(k, float(t), float(t))
        times, values = store.downsample(k, 0.0, 10.0, step=5.0, agg="mean")
        np.testing.assert_array_equal(times, [0.0, 5.0])
        np.testing.assert_array_equal(values, [2.0, 7.0])

    def test_downsample_drops_empty_bins(self):
        store = TimeSeriesStore()
        k = self._key()
        store.insert(k, 0.0, 1.0)
        store.insert(k, 20.0, 2.0)
        times, _ = store.downsample(k, 0.0, 30.0, step=5.0)
        np.testing.assert_array_equal(times, [0.0, 20.0])

    def test_downsample_unknown_agg_raises(self):
        store = TimeSeriesStore()
        with pytest.raises(ValueError, match="unknown aggregator"):
            store.downsample(self._key(), 0, 1, 1.0, agg="median-ish")

    def test_downsample_nonpositive_step_raises(self):
        store = TimeSeriesStore()
        with pytest.raises(ValueError, match="step"):
            store.downsample(self._key(), 0, 1, 0.0)

    def test_stats(self):
        store = TimeSeriesStore()
        k = self._key()
        for t, v in enumerate([1.0, 2.0, 3.0, 4.0]):
            store.insert(k, float(t), v)
        s = store.stats(k, 0, 3)
        assert s.count == 4
        assert s.mean == pytest.approx(2.5)
        assert s.minimum == 1.0 and s.maximum == 4.0

    def test_stats_empty(self):
        store = TimeSeriesStore()
        s = store.stats(self._key(), 0, 1)
        assert s.count == 0
        assert np.isnan(s.mean)

    def test_aggregate_across_series(self):
        store = TimeSeriesStore()
        store.insert(SeriesKey.of("power", node="a"), 0.0, 100.0)
        store.insert(SeriesKey.of("power", node="b"), 0.0, 300.0)
        assert store.aggregate_across("power", 0, 1, "mean") == pytest.approx(200.0)
        assert store.aggregate_across("power", 0, 1, "max") == pytest.approx(300.0)
        assert store.aggregate_across("other", 0, 1) is None

    def test_capacity_override(self):
        store = TimeSeriesStore(default_capacity=100)
        store.set_capacity("m", 2)
        k = self._key()
        for t in range(5):
            store.insert(k, float(t), float(t))
        times, _ = store.query(k, 0, 10)
        np.testing.assert_array_equal(times, [3, 4])

    def test_total_inserts_counted(self):
        store = TimeSeriesStore()
        k = self._key()
        store.insert(k, 0.0, 1.0)
        store.insert_batch(k, np.array([1.0, 2.0]), np.array([1.0, 2.0]))
        assert store.total_inserts == 3

    def test_series_keys_filter_by_metric(self):
        store = TimeSeriesStore()
        store.insert(SeriesKey.of("a", n="1"), 0.0, 0.0)
        store.insert(SeriesKey.of("b", n="1"), 0.0, 0.0)
        assert [k.metric for k in store.series_keys("a")] == ["a"]
        assert len(store.series_keys()) == 2
