"""Tests for metric specs, series keys, and the catalog."""

import pytest

from repro.telemetry.metric import (
    MetricCatalog,
    MetricKind,
    MetricSpec,
    SeriesKey,
    standard_catalog,
)


class TestSeriesKey:
    def test_of_sorts_labels(self):
        k1 = SeriesKey.of("m", b="2", a="1")
        k2 = SeriesKey.of("m", a="1", b="2")
        assert k1 == k2
        assert hash(k1) == hash(k2)

    def test_label_lookup(self):
        k = SeriesKey.of("m", node="n01")
        assert k.label("node") == "n01"
        assert k.label("missing") is None

    def test_with_labels_overrides(self):
        k = SeriesKey.of("m", node="n01")
        k2 = k.with_labels(node="n02", job="j1")
        assert k2.label("node") == "n02"
        assert k2.label("job") == "j1"
        # original untouched
        assert k.label("node") == "n01"

    def test_str_rendering(self):
        assert str(SeriesKey.of("power")) == "power"
        assert str(SeriesKey.of("power", node="n1")) == "power{node=n1}"

    def test_non_string_label_values_coerced(self):
        k = SeriesKey.of("m", idx=3)
        assert k.label("idx") == "3"


class TestMetricCatalog:
    def test_register_and_get(self):
        cat = MetricCatalog()
        spec = MetricSpec("watts", "W")
        cat.register(spec)
        assert cat.get("watts") is spec
        assert "watts" in cat

    def test_idempotent_reregistration(self):
        cat = MetricCatalog()
        spec = MetricSpec("watts", "W")
        cat.register(spec)
        cat.register(MetricSpec("watts", "W"))  # identical → fine
        assert len(cat) == 1

    def test_conflicting_reregistration_raises(self):
        cat = MetricCatalog()
        cat.register(MetricSpec("watts", "W"))
        with pytest.raises(ValueError, match="different spec"):
            cat.register(MetricSpec("watts", "kW"))

    def test_unknown_metric_raises(self):
        with pytest.raises(KeyError, match="unknown metric"):
            MetricCatalog().get("nope")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            MetricSpec("", "W")

    def test_standard_catalog_has_progress_metric(self):
        cat = standard_catalog()
        assert "job_progress_steps" in cat
        assert cat.get("job_progress_steps").kind is MetricKind.COUNTER

    def test_names_sorted(self):
        cat = MetricCatalog([MetricSpec("zz", "u"), MetricSpec("aa", "u")])
        assert cat.names() == ["aa", "zz"]
