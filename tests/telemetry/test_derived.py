"""Tests for the derived-metrics service."""

import pytest

from repro.sim import Engine
from repro.telemetry.derived import (
    DerivedMetricSpec,
    DerivedMetricsService,
    standard_cluster_aggregates,
)
from repro.telemetry.metric import SeriesKey
from repro.telemetry.tsdb import TimeSeriesStore


def feed_node_power(store, n_nodes=4, until=300.0, step=10.0, watts=400.0):
    t = 0.0
    while t <= until:
        for i in range(n_nodes):
            store.insert(SeriesKey.of("node_power_watts", node=f"n{i}"), t, watts)
        t += step
    return store


class TestDerivedMetricsService:
    def test_sum_aggregate_written(self):
        eng = Engine()
        store = TimeSeriesStore()
        out = SeriesKey.of("cluster_power_watts")
        service = DerivedMetricsService(
            eng,
            store,
            [DerivedMetricSpec("node_power_watts", "sum", out, window_s=60.0)],
            period_s=60.0,
        )
        service.start(start_at=60.0)

        def feed():
            for i in range(4):
                store.insert(
                    SeriesKey.of("node_power_watts", node=f"n{i}"), eng.now, 400.0
                )

        eng.every(10.0, feed)
        eng.run(until=300.0)
        times, values = store.query(out, 0, 300)
        assert times.size == 5  # t = 60,120,...,300... (start_at=60, period 60)
        # 4 nodes × 6 samples in the window × 400 W summed
        assert values[0] == pytest.approx(4 * 6 * 400.0)
        assert service.samples_written == times.size

    def test_mean_aggregate(self):
        eng = Engine()
        store = TimeSeriesStore()
        out = SeriesKey.of("cluster_cpu_util")
        service = DerivedMetricsService(
            eng,
            store,
            [DerivedMetricSpec("node_cpu_util", "mean", out, window_s=120.0)],
            period_s=120.0,
        )
        service.start(start_at=120.0)
        eng.every(
            30.0,
            lambda: [
                store.insert(SeriesKey.of("node_cpu_util", node="a"), eng.now, 1.0),
                store.insert(SeriesKey.of("node_cpu_util", node="b"), eng.now, 0.0),
            ],
        )
        eng.run(until=600.0)
        _, values = store.query(out, 0, 600)
        assert values.size > 0
        assert all(v == pytest.approx(0.5) for v in values)

    def test_missing_source_skipped(self):
        eng = Engine()
        store = TimeSeriesStore()
        out = SeriesKey.of("ghost_agg")
        service = DerivedMetricsService(
            eng, store, [DerivedMetricSpec("ghost", "mean", out)], period_s=60.0
        )
        service.start()
        eng.run(until=300.0)
        assert service.samples_written == 0
        assert not store.has(out)

    def test_standard_aggregates_shape(self):
        specs = standard_cluster_aggregates()
        assert {s.output.metric for s in specs} == {
            "cluster_power_watts",
            "cluster_cpu_util",
            "cluster_cpu_util_p95",
            "cluster_temp_max",
        }

    def test_validation(self):
        eng = Engine()
        store = TimeSeriesStore()
        with pytest.raises(ValueError):
            DerivedMetricsService(eng, store, [], period_s=60.0)
        with pytest.raises(ValueError):
            DerivedMetricsService(
                eng, store, standard_cluster_aggregates(), period_s=0.0
            )
        with pytest.raises(ValueError):
            DerivedMetricSpec("m", "mean", SeriesKey.of("o"), window_s=0.0)

    def test_double_start_raises(self):
        eng = Engine()
        store = TimeSeriesStore()
        service = DerivedMetricsService(
            eng, store, standard_cluster_aggregates(), period_s=60.0
        )
        service.start()
        with pytest.raises(RuntimeError):
            service.start()
