"""Property-style equivalence: columnar ingest ≡ per-object ingest.

For randomized scenarios (topology, periods, latencies, commit
coalescing, signal shapes — all drawn from a seeded RNG), the columnar
pipeline (SensorBank → SamplingGroup → SampleBatch → append_batch) and
the legacy per-object pipeline (Sampler → list[Sample] → point commits)
must leave *identical* stores: same series, same timestamps, same
values.  The modes share no moving parts beyond the engine and the
store, so equality here pins the whole batched data path — group
scheduling, bank readout, hop coalescing, lexsort grouping, and ring
extends — to the seed semantics.
"""

import numpy as np
import pytest

from repro.sim import Engine, RngRegistry
from repro.telemetry.collector import CollectionPipeline
from repro.telemetry.metric import SeriesKey
from repro.telemetry.sampler import Sampler, SamplingGroup
from repro.telemetry.sensor import CallableSensor, SensorBank
from repro.telemetry.tsdb import TimeSeriesStore


def _scenario(seed):
    rng = RngRegistry(seed=seed).stream("scenario")
    n_nodes = int(rng.integers(1, 7))
    metrics = int(rng.integers(1, 4))
    period = float(rng.choice([1.0, 2.5, 5.0]))
    ticks = int(rng.integers(5, 40))
    cfg = {
        "n_nodes": n_nodes,
        "metrics": metrics,
        "period": period,
        "horizon": period * ticks,
        "n_groups": int(rng.integers(1, n_nodes + 1)),
        "hop_latency": float(rng.choice([0.0, 0.05, 0.2])),
        "ingest_latency": float(rng.choice([0.0, 0.1])),
        "commit_interval": float(rng.choice([0.0, 2.0, 6.0])) * period or None,
        # value table: (node, metric, tick) -> value, shared by both modes
        "table": rng.normal(100.0, 25.0, size=(n_nodes, metrics, ticks + 2)),
    }
    return cfg


def _keys(node_idx, metrics):
    return [SeriesKey.of(f"metric{m}", node=f"n{node_idx}") for m in range(metrics)]


def _run(mode, cfg):
    engine = Engine()
    store = TimeSeriesStore(default_capacity=4096)
    pipeline = CollectionPipeline(
        engine,
        store,
        hop_latency=cfg["hop_latency"],
        ingest_latency=cfg["ingest_latency"],
        commit_interval_s=cfg["commit_interval"] if mode == "columnar" else None,
    )
    aggregators = pipeline.build(cfg["n_groups"])
    table, period = cfg["table"], cfg["period"]
    last_tick = table.shape[2] - 1
    fronts = []
    if mode == "legacy":
        for node_idx in range(cfg["n_nodes"]):
            sampler = Sampler(
                engine, aggregators[node_idx % cfg["n_groups"]], period=period
            )
            for m, key in enumerate(_keys(node_idx, cfg["metrics"])):
                def reader(now, _n=node_idx, _m=m):
                    return float(table[_n, _m, min(last_tick, int(now / period))])

                sampler.add_sensor(CallableSensor(key, reader))
            fronts.append(sampler)
    else:
        registry = pipeline.registry
        for g in range(cfg["n_groups"]):
            group = SamplingGroup(engine, aggregators[g], period=period)
            for node_idx in range(g, cfg["n_nodes"], cfg["n_groups"]):
                def read_all(now, _n=node_idx):
                    return table[_n, :, min(last_tick, int(now / period))]

                group.add_bank(
                    SensorBank(_keys(node_idx, cfg["metrics"]), read_all, registry=registry)
                )
            fronts.append(group)
    for front in fronts:
        front.start()
    engine.run(until=cfg["horizon"])
    for front in fronts:
        front.stop()
    engine.run(until=cfg["horizon"] + 1.0 + (cfg["commit_interval"] or 0.0))
    pipeline.root.flush()
    return store


@pytest.mark.parametrize("seed", range(25))
def test_columnar_equals_per_object_store(seed):
    cfg = _scenario(seed)
    legacy = _run("legacy", cfg)
    columnar = _run("columnar", cfg)
    assert legacy.cardinality() == columnar.cardinality()
    assert legacy.total_inserts == columnar.total_inserts
    for key in legacy.series_keys():
        lt, lv = legacy.query(key, -np.inf, np.inf)
        ct, cv = columnar.query(key, -np.inf, np.inf)
        np.testing.assert_array_equal(lt, ct, err_msg=f"times diverged for {key}")
        np.testing.assert_array_equal(lv, cv, err_msg=f"values diverged for {key}")


def test_jittered_modes_sample_identical_values():
    """With per-front jitter the two modes fire at different instants, so
    stored *timestamps* differ — but per-series sample counts and the
    sampled value sequence (index-based readers) must still agree."""
    cfg = _scenario(3)
    cfg["hop_latency"] = 0.05
    rngs_a, rngs_b = RngRegistry(seed=11), RngRegistry(seed=12)

    def run_with_jitter(mode, rngs):
        # same scenario, but fronts get jittered schedules
        engine = Engine()
        store = TimeSeriesStore(default_capacity=4096)
        pipeline = CollectionPipeline(engine, store, hop_latency=0.05, ingest_latency=0.05)
        aggregators = pipeline.build(cfg["n_groups"])
        table, period = cfg["table"], cfg["period"]
        last_tick = table.shape[2] - 1
        fronts = []
        if mode == "legacy":
            for node_idx in range(cfg["n_nodes"]):
                sampler = Sampler(
                    engine,
                    aggregators[node_idx % cfg["n_groups"]],
                    period=period,
                    jitter_std=0.01,
                    rng=rngs.stream(f"j{node_idx}"),
                )
                for m, key in enumerate(_keys(node_idx, cfg["metrics"])):
                    def reader(now, _n=node_idx, _m=m):
                        return float(table[_n, _m, min(last_tick, round(now / period))])

                    sampler.add_sensor(CallableSensor(key, reader))
                fronts.append(sampler)
        else:
            registry = pipeline.registry
            for g in range(cfg["n_groups"]):
                group = SamplingGroup(
                    engine,
                    aggregators[g],
                    period=period,
                    jitter_std=0.01,
                    rng=rngs.stream(f"j{g}"),
                )
                for node_idx in range(g, cfg["n_nodes"], cfg["n_groups"]):
                    def read_all(now, _n=node_idx):
                        return table[_n, :, min(last_tick, round(now / period))]

                    group.add_bank(
                        SensorBank(_keys(node_idx, cfg["metrics"]), read_all, registry=registry)
                    )
                fronts.append(group)
        for front in fronts:
            front.start()
        engine.run(until=cfg["horizon"])
        for front in fronts:
            front.stop()
        engine.run(until=cfg["horizon"] + 1.0)
        pipeline.root.flush()
        return store

    legacy = run_with_jitter("legacy", rngs_a)
    columnar = run_with_jitter("columnar", rngs_b)
    for key in legacy.series_keys():
        _, lv = legacy.query(key, -np.inf, np.inf)
        _, cv = columnar.query(key, -np.inf, np.inf)
        # independent jitter draws may push one mode's final tick past the
        # horizon, so counts can differ by one round at the edge
        assert abs(lv.size - cv.size) <= 1, f"round counts diverged for {key}"
        n = min(lv.size, cv.size)
        np.testing.assert_array_equal(
            lv[:n], cv[:n], err_msg=f"sampled values diverged for {key}"
        )
