"""Tests for the progress-marker channel."""

import pytest

from repro.telemetry.markers import ProgressMarker, ProgressMarkerChannel
from repro.telemetry.metric import SeriesKey
from repro.telemetry.tsdb import TimeSeriesStore


def test_emit_and_read_all():
    ch = ProgressMarkerChannel()
    ch.emit(ProgressMarker("j1", 0.0, 0))
    ch.emit(ProgressMarker("j1", 10.0, 5))
    markers = ch.read_all("j1")
    assert [m.step for m in markers] == [0, 5]
    assert ch.total_emitted == 2


def test_read_since_exclusive():
    ch = ProgressMarkerChannel()
    for t, s in [(0.0, 0), (10.0, 5), (20.0, 10)]:
        ch.emit(ProgressMarker("j1", t, s))
    assert [m.step for m in ch.read_since("j1", 10.0)] == [10]
    assert [m.step for m in ch.read_since("j1", -1.0)] == [0, 5, 10]


def test_last():
    ch = ProgressMarkerChannel()
    assert ch.last("j1") is None
    ch.emit(ProgressMarker("j1", 1.0, 2))
    assert ch.last("j1").step == 2


def test_out_of_order_emit_raises():
    ch = ProgressMarkerChannel()
    ch.emit(ProgressMarker("j1", 10.0, 5))
    with pytest.raises(ValueError, match="older"):
        ch.emit(ProgressMarker("j1", 5.0, 6))


def test_streams_are_per_job():
    ch = ProgressMarkerChannel()
    ch.emit(ProgressMarker("j1", 10.0, 5))
    ch.emit(ProgressMarker("j2", 1.0, 1))  # earlier time, different job → fine
    assert ch.jobs() == ["j1", "j2"]


def test_fraction_done():
    assert ProgressMarker("j", 0.0, 50, total_steps=200).fraction_done == pytest.approx(0.25)
    assert ProgressMarker("j", 0.0, 500, total_steps=200).fraction_done == 1.0
    assert ProgressMarker("j", 0.0, 50).fraction_done is None


def test_mirror_to_store():
    store = TimeSeriesStore()
    ch = ProgressMarkerChannel(mirror_store=store)
    ch.emit(ProgressMarker("j1", 5.0, 3))
    assert store.latest(SeriesKey.of("job_progress_steps", job="j1")) == (5.0, 3.0)


def test_drop_job():
    ch = ProgressMarkerChannel()
    ch.emit(ProgressMarker("j1", 0.0, 0))
    ch.drop_job("j1")
    assert ch.read_all("j1") == []
    ch.drop_job("never-existed")  # no error


def test_as_arrays():
    ch = ProgressMarkerChannel()
    ch.emit(ProgressMarker("j1", 0.0, 0))
    ch.emit(ProgressMarker("j1", 10.0, 4))
    times, steps = ch.as_arrays("j1")
    assert times == [0.0, 10.0]
    assert steps == [0, 4]
