"""Aggregation-tree backpressure: bounded per-hop queues, drop accounting.

Tail-drop semantics under test (same rule at the root collector and at
every aggregator hop): once a coalescing/forwarding window holds
``max_pending_samples``, arriving submissions bounce *whole* — but a
single oversized submission into an empty window is still accepted, or
it could never drain.  Drops are a distinct signal from random network
loss, and the immediate (non-windowed) paths never drop.
"""

import numpy as np
import pytest

from repro.sim import Engine
from repro.telemetry.collector import (
    SAMPLE_WIRE_BYTES,
    Aggregator,
    CollectionPipeline,
    Collector,
)
from repro.telemetry.metric import SeriesKey
from repro.telemetry.sampler import Sample
from repro.telemetry.tsdb import TimeSeriesStore


class _ListSink:
    def __init__(self):
        self.batches = []

    def submit(self, samples):
        self.batches.append(samples)


def _samples(n, t0=0.0):
    key = SeriesKey.of("m")
    return [Sample(key, t0 + 0.001 * i, float(i)) for i in range(n)]


class TestCollectorBackpressure:
    def test_full_window_bounces_whole_submission(self):
        eng = Engine()
        col = Collector(
            eng, TimeSeriesStore(), commit_interval_s=1.0, max_pending_samples=4
        )
        col.submit(_samples(3))
        col.submit(_samples(2))  # 3 < 4: accepted, window now holds 5
        col.submit(_samples(2))  # 5 >= 4: bounced whole
        assert col.batches_received == 2
        assert col.dropped_batches == 1
        assert col.dropped_samples == 2
        assert col.dropped_bytes == 2 * SAMPLE_WIRE_BYTES
        stats = col.stats()
        assert stats["dropped_samples"] == 2.0
        assert stats["pending_samples"] == 5.0

    def test_flush_reopens_the_window(self):
        eng = Engine()
        store = TimeSeriesStore()
        col = Collector(eng, store, commit_interval_s=1.0, max_pending_samples=4)
        col.submit(_samples(5, t0=0.0))  # oversized into empty window: accepted
        col.submit(_samples(1, t0=1.0))  # bounced
        assert col.dropped_samples == 1
        eng.run(until=2.0)  # interval flush drains the window
        assert col.stats()["pending_samples"] == 0.0
        assert col.samples_ingested == 5
        col.submit(_samples(1, t0=2.5))  # accepted again
        assert col.dropped_samples == 1

    def test_unbounded_by_default(self):
        eng = Engine()
        col = Collector(eng, TimeSeriesStore(), commit_interval_s=1.0)
        for _ in range(50):
            col.submit(_samples(100))
        assert col.dropped_samples == 0

    def test_immediate_path_never_drops(self):
        # without coalescing there is no queue to bound: the cap is inert
        eng = Engine()
        col = Collector(eng, TimeSeriesStore(), max_pending_samples=1)
        col.submit(_samples(5, t0=0.0))
        col.submit(_samples(5, t0=1.0))
        assert col.dropped_samples == 0
        assert col.samples_ingested == 10

    def test_cap_must_be_positive(self):
        with pytest.raises(ValueError, match="max_pending_samples"):
            Collector(Engine(), TimeSeriesStore(), max_pending_samples=0)


class TestAggregatorBackpressure:
    def test_full_window_bounces_whole_submission(self):
        eng = Engine()
        sink = _ListSink()
        agg = Aggregator(eng, sink, forward_latency=0.5, max_pending_samples=3)
        agg.submit(_samples(3))
        agg.submit(_samples(2))  # 3 >= 3: bounced
        assert agg.batches_received == 1
        assert agg.dropped_batches == 1
        assert agg.dropped_samples == 2
        assert agg.dropped_bytes == 2 * SAMPLE_WIRE_BYTES
        eng.run(until=1.0)
        assert agg.samples_forwarded == 3
        assert len(sink.batches) == 1
        # the drained window accepts again
        agg.submit(_samples(1))
        assert agg.dropped_batches == 1

    def test_zero_latency_path_never_drops(self):
        eng = Engine()
        sink = _ListSink()
        agg = Aggregator(eng, sink, forward_latency=0.0, max_pending_samples=1)
        for _ in range(5):
            agg.submit(_samples(4))
        assert agg.dropped_samples == 0
        assert agg.samples_forwarded == 20

    def test_loss_is_checked_before_the_queue(self):
        # a lost batch is network loss, not backpressure: it must land in
        # the loss counters even when the window is already full
        eng = Engine()
        agg = Aggregator(
            eng, _ListSink(), forward_latency=0.5, max_pending_samples=1,
            loss_prob=1.0, rng=np.random.default_rng(0),
        )
        agg.submit(_samples(2))
        assert agg.batches_lost == 1
        assert agg.samples_lost == 2
        assert agg.dropped_samples == 0

    def test_cap_must_be_positive(self):
        with pytest.raises(ValueError, match="max_pending_samples"):
            Aggregator(Engine(), _ListSink(), max_pending_samples=-1)


class TestPipelineBackpressure:
    def test_tree_wide_drop_accounting(self):
        eng = Engine()
        pipe = CollectionPipeline(
            eng,
            TimeSeriesStore(),
            hop_latency=0.5,
            ingest_latency=0.1,
            commit_interval_s=1.0,
            max_pending_samples=100,
            hop_max_pending_samples=3,
        )
        hops = pipe.build(n_groups=2)
        for agg in hops:
            agg.submit(_samples(3))
            agg.submit(_samples(2))  # bounced at each hop
        assert pipe.total_dropped_samples() == 4
        stats = pipe.stats()
        assert set(stats) == {"root", "hops"}
        assert stats["hops"]["dropped_samples"] == 4.0
        assert stats["hops"]["dropped_batches"] == 2.0
        assert stats["root"]["dropped_samples"] == 0.0

    def test_root_cap_reached_through_hops(self):
        eng = Engine()
        pipe = CollectionPipeline(
            eng,
            TimeSeriesStore(),
            hop_latency=0.0,  # hops forward straight into the root window
            ingest_latency=0.0,
            commit_interval_s=10.0,
            max_pending_samples=5,
        )
        (agg,) = pipe.build(n_groups=1)
        agg.submit(_samples(5, t0=0.0))
        agg.submit(_samples(2, t0=1.0))  # root window full: dropped at root
        assert pipe.root.dropped_samples == 2
        assert pipe.total_dropped_samples() == 2
