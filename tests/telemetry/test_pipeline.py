"""Tests for sensors, samplers, collectors, and the assembled pipeline."""

import numpy as np
import pytest

from repro.sim import Engine, RngRegistry
from repro.telemetry.batch import SampleBatch
from repro.telemetry.collector import (
    SAMPLE_WIRE_BYTES,
    Aggregator,
    CollectionPipeline,
    Collector,
)
from repro.telemetry.metric import SeriesKey
from repro.telemetry.sampler import Sample, Sampler
from repro.telemetry.sensor import CallableSensor, ConstantSensor
from repro.telemetry.tsdb import TimeSeriesStore


class _ListSink:
    def __init__(self):
        self.batches = []

    def submit(self, samples):
        self.batches.append(samples)


class TestSensors:
    def test_callable_sensor_reads_fn(self):
        k = SeriesKey.of("m")
        s = CallableSensor(k, lambda now: now * 2)
        assert s.read(3.0) == 6.0

    def test_callable_sensor_noise(self):
        rng = RngRegistry(seed=1).stream("s")
        s = CallableSensor(SeriesKey.of("m"), lambda now: 100.0, noise_std=1.0, rng=rng)
        vals = [s.read(0.0) for _ in range(200)]
        assert np.std(vals) > 0.5
        assert abs(np.mean(vals) - 100.0) < 0.5

    def test_callable_sensor_fault(self):
        rng = RngRegistry(seed=2).stream("s")
        s = CallableSensor(SeriesKey.of("m"), lambda now: 1.0, fault_prob=1.0, rng=rng)
        assert s.read(0.0) is None

    def test_noise_requires_rng(self):
        with pytest.raises(ValueError, match="rng required"):
            CallableSensor(SeriesKey.of("m"), lambda now: 1.0, noise_std=1.0)

    def test_fn_none_propagates(self):
        s = CallableSensor(SeriesKey.of("m"), lambda now: None)
        assert s.read(0.0) is None

    def test_constant_sensor(self):
        s = ConstantSensor(SeriesKey.of("m"), 42.0)
        assert s.read(123.0) == 42.0


class TestSampler:
    def test_samples_at_period(self):
        eng = Engine()
        sink = _ListSink()
        sampler = Sampler(eng, sink, period=10.0)
        sampler.add_sensor(ConstantSensor(SeriesKey.of("m"), 1.0))
        sampler.start()
        eng.run(until=35.0)
        assert len(sink.batches) == 4  # t = 0, 10, 20, 30
        assert sampler.samples_emitted == 4

    def test_batch_contains_all_sensors(self):
        eng = Engine()
        sink = _ListSink()
        sampler = Sampler(eng, sink, period=10.0)
        sampler.add_sensors(
            [ConstantSensor(SeriesKey.of("a"), 1.0), ConstantSensor(SeriesKey.of("b"), 2.0)]
        )
        sampler.start()
        eng.run(until=0.0)
        assert len(sink.batches) == 1
        assert {s.key.metric for s in sink.batches[0]} == {"a", "b"}

    def test_failed_sensor_skipped(self):
        eng = Engine()
        sink = _ListSink()
        sampler = Sampler(eng, sink, period=10.0)
        sampler.add_sensor(CallableSensor(SeriesKey.of("dead"), lambda now: None))
        sampler.add_sensor(ConstantSensor(SeriesKey.of("ok"), 1.0))
        sampler.start()
        eng.run(until=0.0)
        assert [s.key.metric for s in sink.batches[0]] == ["ok"]

    def test_dropout_loses_rounds(self):
        eng = Engine()
        sink = _ListSink()
        rng = RngRegistry(seed=3).stream("drop")
        sampler = Sampler(eng, sink, period=1.0, dropout_prob=1.0, rng=rng)
        sampler.add_sensor(ConstantSensor(SeriesKey.of("m"), 1.0))
        sampler.start()
        eng.run(until=5.0)
        assert sink.batches == []
        assert sampler.samples_dropped == 6

    def test_overhead_accumulates(self):
        eng = Engine()
        sampler = Sampler(eng, _ListSink(), period=1.0, per_sample_cost_s=0.001)
        sampler.add_sensor(ConstantSensor(SeriesKey.of("m"), 1.0))
        sampler.start()
        eng.run(until=9.0)
        assert sampler.overhead_cpu_s == pytest.approx(0.010)

    def test_double_start_raises(self):
        eng = Engine()
        sampler = Sampler(eng, _ListSink(), period=1.0)
        sampler.start()
        with pytest.raises(RuntimeError):
            sampler.start()

    def test_stop_halts_sampling(self):
        eng = Engine()
        sink = _ListSink()
        sampler = Sampler(eng, sink, period=1.0)
        sampler.add_sensor(ConstantSensor(SeriesKey.of("m"), 1.0))
        sampler.start()
        eng.schedule(2.5, sampler.stop)
        eng.run(until=10.0)
        assert len(sink.batches) == 3


class TestCollector:
    def test_zero_latency_writes_immediately(self):
        eng = Engine()
        store = TimeSeriesStore()
        coll = Collector(eng, store)
        k = SeriesKey.of("m")
        coll.submit([Sample(k, 0.0, 5.0)])
        assert store.latest(k) == (0.0, 5.0)

    def test_ingest_latency_defers_write(self):
        eng = Engine()
        store = TimeSeriesStore()
        coll = Collector(eng, store, ingest_latency=2.0)
        k = SeriesKey.of("m")
        eng.schedule(1.0, coll.submit, [Sample(k, 1.0, 5.0)])
        eng.run(until=2.0)
        assert store.latest(k) is None  # not yet committed
        eng.run(until=3.0)
        assert store.latest(k) == (1.0, 5.0)
        assert coll.latest_arrival_lag == pytest.approx(2.0)

    def test_aggregator_forwards_with_latency(self):
        eng = Engine()
        store = TimeSeriesStore()
        coll = Collector(eng, store)
        agg = Aggregator(eng, coll, forward_latency=1.5)
        k = SeriesKey.of("m")
        eng.schedule(0.0, agg.submit, [Sample(k, 0.0, 1.0)])
        eng.run(until=1.0)
        assert store.latest(k) is None
        eng.run(until=2.0)
        assert store.latest(k) == (0.0, 1.0)
        assert agg.bytes_forwarded > 0

    def test_aggregator_loss(self):
        eng = Engine()
        store = TimeSeriesStore()
        coll = Collector(eng, store)
        rng = RngRegistry(seed=5).stream("loss")
        agg = Aggregator(eng, coll, forward_latency=0.0, loss_prob=1.0, rng=rng)
        agg.submit([Sample(SeriesKey.of("m"), 0.0, 1.0)])
        assert agg.batches_lost == 1
        assert store.cardinality() == 0


def _batch(store_or_reg, metric, times, values, node="a"):
    registry = getattr(store_or_reg, "registry", store_or_reg)
    sid = registry.id_for(SeriesKey.of(metric, node=node))
    times = np.asarray(times, dtype=float)
    return SampleBatch(np.full(times.size, sid, dtype=np.int64), times, np.asarray(values, dtype=float))


class TestBatchPath:
    def test_collector_commits_batches_bulk(self):
        eng = Engine()
        store = TimeSeriesStore()
        coll = Collector(eng, store)
        coll.submit(_batch(store, "m", [0.0, 1.0], [5.0, 6.0]))
        times, values = store.query(SeriesKey.of("m", node="a"), 0, 10)
        np.testing.assert_array_equal(values, [5.0, 6.0])
        assert coll.samples_ingested == 2
        assert coll.commits == 1

    def test_lag_is_batch_max_not_last_sample(self):
        eng = Engine()
        store = TimeSeriesStore()
        coll = Collector(eng, store, ingest_latency=1.0)
        # oldest sample is first: lag must reflect it, not the newest
        eng.schedule(2.0, coll.submit, _batch(store, "m", [0.0, 2.0], [1.0, 2.0]))
        eng.run(until=5.0)
        assert coll.latest_arrival_lag == pytest.approx(3.0)  # 3.0 - 0.0
        assert coll.samples_ingested == 2

    def test_commit_interval_coalesces_submissions(self):
        eng = Engine()
        store = TimeSeriesStore()
        coll = Collector(eng, store, ingest_latency=0.1, commit_interval_s=10.0)
        eng.schedule(0.0, coll.submit, _batch(store, "m", [0.0], [1.0]))
        eng.schedule(5.0, coll.submit, _batch(store, "m", [5.0], [2.0]))
        eng.run(until=9.0)
        assert store.total_inserts == 0  # still pending
        eng.run(until=11.0)
        assert store.total_inserts == 2
        assert coll.commits == 1  # one bulk append for both submissions
        assert coll.batches_received == 2

    def test_flush_drains_pending(self):
        eng = Engine()
        store = TimeSeriesStore()
        coll = Collector(eng, store, commit_interval_s=100.0)
        coll.submit(_batch(store, "m", [0.0], [1.0]))
        assert store.total_inserts == 0
        coll.flush()
        assert store.total_inserts == 1

    def test_legacy_lists_convert_at_root(self):
        eng = Engine()
        store = TimeSeriesStore()
        coll = Collector(eng, store)
        coll.submit([Sample(SeriesKey.of("m"), 0.0, 7.0)])
        assert store.latest(SeriesKey.of("m")) == (0.0, 7.0)


class TestAggregatorBatchLoss:
    def test_dropped_batch_counters(self):
        eng = Engine()
        store = TimeSeriesStore()
        coll = Collector(eng, store)
        rng = RngRegistry(seed=5).stream("loss")
        agg = Aggregator(eng, coll, forward_latency=0.0, loss_prob=1.0, rng=rng)
        agg.submit(_batch(store, "m", [0.0, 1.0, 2.0], [1.0, 2.0, 3.0]))
        assert agg.batches_lost == 1
        assert agg.samples_lost == 3
        assert agg.bytes_lost == 3 * SAMPLE_WIRE_BYTES
        assert agg.batches_forwarded == 0
        assert agg.bytes_forwarded == 0
        assert store.cardinality() == 0

    def test_loss_and_forward_accounting_balance(self):
        eng = Engine()
        store = TimeSeriesStore()
        coll = Collector(eng, store)
        rng = RngRegistry(seed=8).stream("loss")
        agg = Aggregator(eng, coll, forward_latency=0.0, loss_prob=0.5, rng=rng)
        total = 0
        for i in range(200):
            agg.submit(_batch(store, "m", [float(i)], [1.0]))
            total += 1
        assert agg.batches_lost + agg.batches_received == total
        assert agg.samples_lost + agg.samples_forwarded == total
        assert agg.bytes_lost + agg.bytes_forwarded == total * SAMPLE_WIRE_BYTES
        assert 20 < agg.batches_lost < 180  # both outcomes actually happened

    def test_empty_batch_forwarded_harmlessly(self):
        eng = Engine()
        store = TimeSeriesStore()
        coll = Collector(eng, store)
        agg = Aggregator(eng, coll, forward_latency=0.0)
        agg.submit(SampleBatch.empty())
        assert agg.batches_forwarded == 1
        assert agg.samples_forwarded == 0
        assert store.total_inserts == 0

    def test_hop_coalesces_same_window_batches(self):
        eng = Engine()
        store = TimeSeriesStore()
        coll = Collector(eng, store)
        agg = Aggregator(eng, coll, forward_latency=0.5)
        eng.schedule(0.0, agg.submit, _batch(store, "m", [0.0], [1.0], node="a"))
        eng.schedule(0.0, agg.submit, _batch(store, "m", [0.0], [2.0], node="b"))
        eng.run(until=1.0)
        assert agg.batches_received == 2
        assert agg.batches_forwarded == 1  # one concatenated hop message
        assert agg.samples_forwarded == 2
        assert store.total_inserts == 2

    def test_multi_level_fan_in_deep_topology(self):
        """leaf aggregators -> mid aggregator -> root, batches all the way."""
        eng = Engine()
        store = TimeSeriesStore()
        coll = Collector(eng, store, ingest_latency=0.1)
        mid = Aggregator(eng, coll, forward_latency=0.1, name="mid")
        leaves = [
            Aggregator(eng, mid, forward_latency=0.1, name=f"leaf-{i}") for i in range(4)
        ]
        for i, leaf in enumerate(leaves):
            eng.schedule(
                0.0, leaf.submit, _batch(store, "m", [0.0, 1.0], [1.0, 2.0], node=f"n{i}")
            )
        eng.run(until=2.0)
        # every leaf forwarded one batch; mid coalesced all four into one
        assert all(leaf.batches_forwarded == 1 for leaf in leaves)
        assert mid.batches_received == 4
        assert mid.batches_forwarded == 1
        assert mid.samples_forwarded == 8
        assert store.total_inserts == 8
        assert store.cardinality() == 4
        for i in range(4):
            _, values = store.query(SeriesKey.of("m", node=f"n{i}"), 0, 10)
            np.testing.assert_array_equal(values, [1.0, 2.0])


class TestCollectionPipeline:
    def test_end_to_end(self):
        eng = Engine()
        store = TimeSeriesStore()
        pipe = CollectionPipeline(eng, store, hop_latency=0.1, ingest_latency=0.1)
        aggs = pipe.build(2)
        k = SeriesKey.of("node_power_watts", node="n0")
        sampler = Sampler(eng, aggs[0], period=1.0)
        sampler.add_sensor(ConstantSensor(k, 400.0))
        sampler.start()
        eng.run(until=5.5)
        times, values = store.query(k, 0, 10)
        assert times.size == 6
        assert np.all(values == 400.0)
        assert pipe.end_to_end_latency == pytest.approx(0.2)
        assert pipe.total_bytes() > 0

    def test_build_rejects_zero_groups(self):
        eng = Engine()
        pipe = CollectionPipeline(eng, TimeSeriesStore())
        with pytest.raises(ValueError):
            pipe.build(0)
