"""Ingest-listener edge cases.

The listener seam is load-bearing for the standing-query engine and the
listener-driven rollup folds: these tests pin the commit protocol —
listeners fire after the epoch bump, zero-sample commits are inert, and
a throwing listener cannot leave the store's epoch bookkeeping out of
sync with the data it describes.
"""

import numpy as np
import pytest

from repro.query import MetricQuery, QueryEngine, RollupManager, evaluate_naive
from repro.query.standing import StandingQueryEngine
from repro.telemetry.metric import SeriesKey
from repro.telemetry.tsdb import TimeSeriesStore


class Recorder:
    def __init__(self):
        self.calls = []

    def __call__(self, ids, times, values):
        self.calls.append((ids.copy(), times.copy(), values.copy()))


def test_listener_receives_every_write_path():
    store = TimeSeriesStore(default_capacity=64)
    rec = Recorder()
    store.add_ingest_listener(rec)
    k0 = SeriesKey.of("m", node="n0")
    k1 = SeriesKey.of("m", node="n1")
    store.insert(k0, 1.0, 10.0)
    store.insert_batch(k0, np.array([2.0, 3.0]), np.array([1.0, 2.0]))
    ids = np.array([store.registry.id_for(k1)] * 2, dtype=np.int64)
    store.append_batch(ids, np.array([1.0, 2.0]), np.array([5.0, 6.0]))
    assert len(rec.calls) == 3
    total = sum(c[1].size for c in rec.calls)
    assert total == 5


def test_zero_sample_commit_is_inert():
    """An empty batch commits nothing: no epoch bump, no listener call."""
    store = TimeSeriesStore(default_capacity=64)
    rec = Recorder()
    store.add_ingest_listener(rec)
    key = SeriesKey.of("m", node="n0")
    store.insert_batch(key, np.array([1.0]), np.array([1.0]))
    epoch = store.metric_epoch("m")
    store.insert_batch(key, np.empty(0), np.empty(0))
    assert store.metric_epoch("m") == epoch
    assert len(rec.calls) == 1


def test_listener_exception_does_not_corrupt_epochs():
    """A throwing listener surfaces its error but the commit it observed
    is already durable: data written, epoch bumped exactly once, and the
    next (listener-free) write sees consistent bookkeeping."""
    store = TimeSeriesStore(default_capacity=64)
    boom = {"armed": True}

    def bad_listener(ids, times, values):
        if boom["armed"]:
            raise RuntimeError("listener exploded")

    store.add_ingest_listener(bad_listener)
    key = SeriesKey.of("m", node="n0")
    with pytest.raises(RuntimeError):
        store.insert_batch(key, np.array([1.0, 2.0]), np.array([5.0, 6.0]))
    # commit preceded notification: the samples and the epoch both landed
    assert store.metric_epoch("m") == 1
    times, values = store.query(key, 0.0, 10.0)
    np.testing.assert_array_equal(times, [1.0, 2.0])
    boom["armed"] = False
    store.insert_batch(key, np.array([3.0]), np.array([7.0]))
    assert store.metric_epoch("m") == 2
    qe = QueryEngine(store, enable_cache=False)
    q = MetricQuery("m", agg="sum", range_s=10.0, step_s=5.0)
    got = qe.query(q, at=5.0)
    want = evaluate_naive(store, q, at=5.0)
    for a, b in zip(got.series, want.series):
        np.testing.assert_allclose(a.values, b.values)


def test_listener_exception_does_not_corrupt_standing_reads():
    """Standing state keyed on (epoch, generation) stays coherent when a
    *later* listener throws: the standing provider (registered first)
    already folded the commit the epoch describes."""
    store = TimeSeriesStore(default_capacity=4096)
    qe = QueryEngine(store, enable_cache=False)
    st = StandingQueryEngine(qe)
    q = MetricQuery("m", agg="mean", range_s=100.0, step_s=10.0)
    assert st.register(q)

    def bad_listener(ids, times, values):
        raise RuntimeError("listener exploded")

    store.add_ingest_listener(bad_listener)
    key = SeriesKey.of("m", node="n0")
    with pytest.raises(RuntimeError):
        store.insert_batch(key, np.arange(1.0, 50.0, 5.0), np.ones(10))
    got = st.query(q, at=50.0)
    assert got is not None and got.source == "standing"
    want = qe.query(q, at=50.0)
    for a, b in zip(got.series, want.series):
        np.testing.assert_allclose(a.values, b.values, rtol=1e-9)


def test_commit_straddling_ring_eviction_stays_exact():
    """Commits that wrap a small ring do not disturb standing state.

    The grid's bin ring is independent of the raw ring: while commits
    evict the raw tail, standing reads inside the bin ring must equal a
    brute-force oracle over the *full* history (kept in a large
    reference store), and the batch engine stitches rollup tiers under
    what the raw ring lost.
    """
    small = TimeSeriesStore(default_capacity=48)
    reference = TimeSeriesStore(default_capacity=100_000)
    rollups = RollupManager(small, resolutions=(10.0,))
    qe = QueryEngine(small, rollups=rollups, enable_cache=False)
    st = StandingQueryEngine(qe)
    q = MetricQuery("m", agg="sum", range_s=100.0, step_s=10.0, group_by=("node",))
    assert st.register(q)
    rng = np.random.default_rng(5)
    keys = [SeriesKey.of("m", node=f"n{i}") for i in range(3)]
    t = 0.0
    for _ in range(12):  # 12 commits x 20 samples vs capacity 48: wraps repeatedly
        for k in keys:
            ts = t + np.sort(rng.uniform(0.0, 25.0, size=20))
            vs = rng.normal(1.0, 0.2, size=20)
            small.insert_batch(k, ts, vs)
            reference.insert_batch(k, ts, vs)
        t += 25.0
        rollups.fold(t)
        got = st.query(q, at=t)
        assert got is not None and got.source == "standing"
        want = evaluate_naive(reference, q, at=t)
        assert len(got.series) == len(want.series)
        for a, b in zip(got.series, want.series):
            assert a.labels == b.labels
            np.testing.assert_allclose(a.times, b.times, rtol=0, atol=1e-9)
            np.testing.assert_allclose(a.values, b.values, rtol=1e-9, atol=1e-9)
    assert st.stats()["scan_fallbacks"] == 0.0
