"""Adaptive commit intervals: the collector follows the ingest rate."""

import numpy as np
import pytest

from repro.sim import Engine
from repro.telemetry import AdaptiveCommitConfig, Collector
from repro.telemetry.batch import SampleBatch
from repro.telemetry.metric import SeriesKey
from repro.telemetry.tsdb import TimeSeriesStore


def _batch(store, n, t):
    key = SeriesKey.of("m", node="n0")
    sid = store.registry.id_for(key)
    return SampleBatch(
        np.full(n, sid, dtype=np.int64),
        np.linspace(t, t + 0.9, n),
        np.zeros(n),
    )


def _drive(collector, engine, store, *, rows_per_tick, ticks, period=1.0):
    t = engine.now
    for _ in range(ticks):
        if rows_per_tick:
            collector.submit(_batch(store, rows_per_tick, t))
        t += period
        engine.run(until=t)
    engine.run(until=t + collector.commit_interval_s + 1.0)
    collector.flush()


def test_flood_narrows_interval_to_minimum():
    engine = Engine()
    store = TimeSeriesStore()
    cfg = AdaptiveCommitConfig(
        min_interval_s=0.5, max_interval_s=30.0, target_batch_samples=100, smoothing=1.0
    )
    collector = Collector(
        engine, store, commit_interval_s=10.0, adaptive_commit=cfg
    )
    # 2000 rows/s against a 100-row target -> wants 0.05s -> clamps to min
    _drive(collector, engine, store, rows_per_tick=2000, ticks=8)
    assert collector.commit_interval_s == cfg.min_interval_s
    assert collector.interval_adjustments >= 1


def test_trickle_widens_interval_toward_maximum():
    engine = Engine()
    store = TimeSeriesStore()
    cfg = AdaptiveCommitConfig(
        min_interval_s=0.5, max_interval_s=30.0, target_batch_samples=1000, smoothing=1.0
    )
    collector = Collector(engine, store, commit_interval_s=0.5, adaptive_commit=cfg)
    # ~2 rows/s against a 1000-row target -> wants 500s -> clamps to max
    _drive(collector, engine, store, rows_per_tick=2, ticks=20)
    assert collector.commit_interval_s == cfg.max_interval_s


def test_idle_pipeline_backs_off_to_maximum():
    engine = Engine()
    store = TimeSeriesStore()
    cfg = AdaptiveCommitConfig(min_interval_s=1.0, max_interval_s=20.0)
    collector = Collector(engine, store, adaptive_commit=cfg)
    assert collector.commit_interval_s == cfg.min_interval_s  # starts conservative
    collector.submit(_batch(store, 1, 0.0))
    engine.run(until=100.0)
    collector._flush_pending()  # empty flush observes zero rate
    assert collector.commit_interval_s == cfg.max_interval_s


def test_interval_converges_to_target_batch_size():
    engine = Engine()
    store = TimeSeriesStore()
    cfg = AdaptiveCommitConfig(
        min_interval_s=0.5, max_interval_s=60.0, target_batch_samples=600, smoothing=1.0
    )
    collector = Collector(engine, store, commit_interval_s=1.0, adaptive_commit=cfg)
    # steady 200 rows/s -> target 600 rows -> ~3s interval (the last
    # window is partially filled depending on phase, so steady state
    # wobbles around the target rather than pinning it exactly)
    _drive(collector, engine, store, rows_per_tick=200, ticks=30)
    assert 2.0 <= collector.commit_interval_s <= 6.0
    assert collector.commit_interval_s not in (cfg.min_interval_s, cfg.max_interval_s)
    assert store.total_inserts == 30 * 200


def test_adaptation_keeps_all_samples():
    engine = Engine()
    store = TimeSeriesStore()
    cfg = AdaptiveCommitConfig(min_interval_s=0.5, max_interval_s=10.0, smoothing=0.5)
    collector = Collector(engine, store, adaptive_commit=cfg)
    rng = np.random.default_rng(0)
    t, total = 0.0, 0
    for _ in range(25):
        n = int(rng.integers(1, 500))
        collector.submit(_batch(store, n, t))
        total += n
        t += 1.0
        engine.run(until=t)
    engine.run(until=t + cfg.max_interval_s + 1.0)
    collector.flush()
    assert store.total_inserts == total


def test_rate_observed_over_actual_window_with_long_ingest_latency():
    """When ingest_latency exceeds the interval, the accumulation window
    is the latency — the rate estimate must use it, not the interval."""
    engine = Engine()
    store = TimeSeriesStore()
    cfg = AdaptiveCommitConfig(
        min_interval_s=0.5, max_interval_s=60.0, target_batch_samples=400, smoothing=1.0
    )
    collector = Collector(
        engine, store, ingest_latency=4.0, commit_interval_s=0.5, adaptive_commit=cfg
    )
    # 100 rows/s over the 4s latency window -> 400 rows per flush,
    # exactly on target -> interval should settle near 4s, not pin at min
    _drive(collector, engine, store, rows_per_tick=100, ticks=40)
    assert collector.commit_interval_s >= 2.0


def test_manual_flush_does_not_poison_rate_estimate():
    """A manual drain cancels the in-flight scheduled flush: the orphan
    event must neither adapt on an empty window nor commit early."""
    engine = Engine()
    store = TimeSeriesStore()
    cfg = AdaptiveCommitConfig(min_interval_s=1.0, max_interval_s=60.0, smoothing=1.0)
    collector = Collector(engine, store, commit_interval_s=1.0, adaptive_commit=cfg)
    collector.submit(_batch(store, 10, 0.0))
    collector.flush()  # manual drain before the scheduled flush fires
    interval = collector.commit_interval_s
    engine.run(until=5.0)  # orphaned event fires: must be a no-op
    assert collector._rate_ewma is None  # no zero-rate observation
    assert collector.commit_interval_s == interval
    # a new submission schedules cleanly and commits exactly once more
    collector.submit(_batch(store, 20, 5.0))
    engine.run(until=5.0 + collector.commit_interval_s + 0.1)
    assert store.total_inserts == 30


def test_adaptive_requires_valid_config():
    with pytest.raises(ValueError):
        AdaptiveCommitConfig(min_interval_s=5.0, max_interval_s=1.0)
    with pytest.raises(ValueError):
        AdaptiveCommitConfig(target_batch_samples=0)
    with pytest.raises(ValueError):
        AdaptiveCommitConfig(smoothing=0.0)
