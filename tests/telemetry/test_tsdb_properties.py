"""Property-based tests (hypothesis) for the ring-buffer TSDB."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.telemetry.tsdb import RingBuffer

# sorted, finite, reasonably-sized time arrays
times_strategy = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=0,
    max_size=200,
).map(sorted)

values_like = st.floats(min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False)


@given(times=times_strategy, capacity=st.integers(min_value=1, max_value=64))
def test_ring_buffer_keeps_last_capacity_points(times, capacity):
    rb = RingBuffer(capacity)
    for i, t in enumerate(times):
        rb.append(t, float(i))
    stored_t, stored_v = rb.arrays()
    expect = times[-capacity:]
    np.testing.assert_array_equal(stored_t, expect)
    # values identify the original append index, so ordering is verifiable
    np.testing.assert_array_equal(stored_v, np.arange(len(times))[-capacity:])


@given(times=times_strategy, capacity=st.integers(min_value=1, max_value=64))
def test_ring_buffer_times_always_sorted(times, capacity):
    rb = RingBuffer(capacity)
    for t in times:
        rb.append(t, 0.0)
    stored_t, _ = rb.arrays()
    assert np.all(np.diff(stored_t) >= 0)


@given(
    times=times_strategy,
    capacity=st.integers(min_value=1, max_value=64),
    t0=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    t1=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
)
def test_window_equals_filter_of_stored(times, capacity, t0, t1):
    rb = RingBuffer(capacity)
    for i, t in enumerate(times):
        rb.append(t, float(i))
    stored_t, stored_v = rb.arrays()
    wt, wv = rb.window(t0, t1)
    mask = (stored_t >= t0) & (stored_t <= t1)
    np.testing.assert_array_equal(wt, stored_t[mask])
    np.testing.assert_array_equal(wv, stored_v[mask])


@given(
    chunks=st.lists(
        st.lists(values_like, min_size=1, max_size=20),
        min_size=1,
        max_size=10,
    ),
    capacity=st.integers(min_value=1, max_value=50),
)
@settings(max_examples=60)
def test_extend_equivalent_to_appends(chunks, capacity):
    """Bulk extend must produce exactly the same state as point appends."""
    rb_bulk = RingBuffer(capacity)
    rb_point = RingBuffer(capacity)
    t = 0.0
    for chunk in chunks:
        ts = np.array([t + i for i in range(len(chunk))], dtype=float)
        vs = np.array(chunk, dtype=float)
        rb_bulk.extend(ts, vs)
        for tt, vv in zip(ts, vs):
            rb_point.append(tt, vv)
        t += len(chunk)
    bt, bv = rb_bulk.arrays()
    pt, pv = rb_point.arrays()
    np.testing.assert_array_equal(bt, pt)
    np.testing.assert_array_equal(bv, pv)
    assert rb_bulk.total_appended == rb_point.total_appended


@given(times=times_strategy)
def test_len_never_exceeds_capacity(times):
    rb = RingBuffer(7)
    for t in times:
        rb.append(t, 0.0)
    assert len(rb) <= 7
    assert len(rb) == min(len(times), 7)
