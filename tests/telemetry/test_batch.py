"""Tests for the columnar ingest building blocks: SampleBatch,
SeriesRegistry, SensorBank, SamplingGroup, and bulk store appends."""

import numpy as np
import pytest

from repro.sim import Engine, RngRegistry
from repro.telemetry.batch import Sample, SampleBatch, SeriesRegistry
from repro.telemetry.metric import SeriesKey
from repro.telemetry.sampler import SamplingGroup
from repro.telemetry.sensor import CallableSensor, SensorBank
from repro.telemetry.tsdb import TimeSeriesStore


class TestSeriesRegistry:
    def test_ids_are_dense_and_stable(self):
        reg = SeriesRegistry()
        a, b = SeriesKey.of("m", node="a"), SeriesKey.of("m", node="b")
        assert reg.id_for(a) == 0
        assert reg.id_for(b) == 1
        assert reg.id_for(a) == 0  # interned, not re-assigned
        assert reg.key_for(1) == b
        assert len(reg) == 2
        assert a in reg and SeriesKey.of("other") not in reg

    def test_ids_for_vector(self):
        reg = SeriesRegistry()
        keys = [SeriesKey.of("m", node=f"n{i}") for i in range(4)]
        np.testing.assert_array_equal(reg.ids_for(keys), [0, 1, 2, 3])

    def test_unknown_id_raises(self):
        with pytest.raises(IndexError):
            SeriesRegistry().key_for(0)


class TestSampleBatch:
    def test_validation(self):
        with pytest.raises(ValueError, match="parallel"):
            SampleBatch(np.array([1, 2]), np.array([0.0]), np.array([1.0]))

    def test_concat_and_len(self):
        b1 = SampleBatch(np.array([0]), np.array([1.0]), np.array([5.0]))
        b2 = SampleBatch(np.array([1, 2]), np.array([2.0, 3.0]), np.array([6.0, 7.0]))
        merged = SampleBatch.concat([b1, b2])
        assert len(merged) == 3
        np.testing.assert_array_equal(merged.series_ids, [0, 1, 2])
        assert len(SampleBatch.concat([])) == 0
        assert SampleBatch.concat([b1]) is b1

    def test_sample_roundtrip(self):
        reg = SeriesRegistry()
        samples = [
            Sample(SeriesKey.of("m", node="a"), 1.0, 10.0),
            Sample(SeriesKey.of("m", node="b"), 2.0, 20.0),
        ]
        batch = SampleBatch.from_samples(samples, reg)
        assert batch.to_samples(reg) == samples
        assert len(SampleBatch.from_samples([], reg)) == 0


class TestSensorBank:
    def test_vectorized_read(self):
        reg = SeriesRegistry()
        keys = [SeriesKey.of("m", node="a"), SeriesKey.of("m", node="b")]
        bank = SensorBank(keys, lambda now: np.array([now, 2 * now]), registry=reg)
        batch = bank.read(3.0)
        np.testing.assert_array_equal(batch.values, [3.0, 6.0])
        np.testing.assert_array_equal(batch.times, [3.0, 3.0])
        np.testing.assert_array_equal(batch.series_ids, reg.ids_for(keys))

    def test_nan_marks_unavailable(self):
        reg = SeriesRegistry()
        keys = [SeriesKey.of("m", node="a"), SeriesKey.of("m", node="b")]
        bank = SensorBank(keys, lambda now: np.array([np.nan, 7.0]), registry=reg)
        batch = bank.read(0.0)
        assert len(batch) == 1
        np.testing.assert_array_equal(batch.values, [7.0])
        np.testing.assert_array_equal(batch.series_ids, [reg.id_for(keys[1])])

    def test_faults_drop_readings(self):
        reg = SeriesRegistry()
        rng = RngRegistry(seed=3).stream("f")
        keys = [SeriesKey.of("m", node=f"n{i}") for i in range(100)]
        bank = SensorBank(
            keys, lambda now: np.zeros(100), registry=reg, fault_prob=1.0, rng=rng
        )
        assert len(bank.read(0.0)) == 0

    def test_noise_is_array_drawn(self):
        reg = SeriesRegistry()
        rng = RngRegistry(seed=4).stream("n")
        keys = [SeriesKey.of("m", node=f"n{i}") for i in range(500)]
        bank = SensorBank(
            keys, lambda now: np.full(500, 100.0), registry=reg, noise_std=2.0, rng=rng
        )
        values = bank.read(0.0).values
        assert abs(float(np.mean(values)) - 100.0) < 0.5
        assert 1.0 < float(np.std(values)) < 3.0

    def test_per_series_noise_and_fault_arrays(self):
        reg = SeriesRegistry()
        rng = RngRegistry(seed=5).stream("nf")
        keys = [SeriesKey.of("m", node="a"), SeriesKey.of("m", node="b")]
        bank = SensorBank(
            keys,
            lambda now: np.array([1.0, 2.0]),
            registry=reg,
            noise_std=np.array([0.0, 1.0]),
            fault_prob=np.array([1.0, 0.0]),
            rng=rng,
        )
        batch = bank.read(0.0)
        assert list(batch.series_ids) == [reg.id_for(keys[1])]

    def test_rng_required(self):
        with pytest.raises(ValueError, match="rng required"):
            SensorBank(
                [SeriesKey.of("m")], lambda now: np.zeros(1),
                registry=SeriesRegistry(), noise_std=1.0,
            )

    def test_shape_mismatch_raises(self):
        bank = SensorBank(
            [SeriesKey.of("m")], lambda now: np.zeros(3), registry=SeriesRegistry()
        )
        with pytest.raises(ValueError, match="shape"):
            bank.read(0.0)

    def test_from_sensors_adapter(self):
        reg = SeriesRegistry()
        sensors = [
            CallableSensor(SeriesKey.of("a"), lambda now: 1.0),
            CallableSensor(SeriesKey.of("dead"), lambda now: None),
            CallableSensor(SeriesKey.of("b"), lambda now: 2.0),
        ]
        bank = SensorBank.from_sensors(sensors, reg)
        batch = bank.read(0.0)
        assert len(batch) == 2
        np.testing.assert_array_equal(batch.values, [1.0, 2.0])


class _BatchSink:
    def __init__(self):
        self.batches = []

    def submit(self, batch):
        self.batches.append(batch)


def _bank(reg, name, values):
    keys = [SeriesKey.of(name, i=str(i)) for i in range(len(values))]
    arr = np.asarray(values, dtype=float)
    return SensorBank(keys, lambda now, _a=arr: _a, registry=reg)


class TestSamplingGroup:
    def test_one_batch_per_tick_for_all_banks(self):
        eng = Engine()
        reg = SeriesRegistry()
        sink = _BatchSink()
        group = SamplingGroup(eng, sink, period=10.0)
        group.add_banks([_bank(reg, "a", [1.0, 2.0]), _bank(reg, "b", [3.0])])
        group.start()
        eng.run(until=25.0)
        assert len(sink.batches) == 3  # t = 0, 10, 20 — one event each
        assert all(len(b) == 3 for b in sink.batches)
        assert group.samples_emitted == 9
        assert group.agent_count == 2
        assert group.sensor_count == 3

    def test_dropout_skips_polling_and_overhead(self):
        eng = Engine()
        reg = SeriesRegistry()
        sink = _BatchSink()
        rng = RngRegistry(seed=6).stream("d")
        group = SamplingGroup(
            eng, sink, period=1.0, dropout_prob=1.0, per_sample_cost_s=0.5, rng=rng
        )
        group.add_bank(_bank(reg, "a", [1.0, 2.0]))
        group.start()
        eng.run(until=3.0)
        assert sink.batches == []
        assert group.samples_dropped == 8  # 4 rounds x 2 sensors
        assert group.overhead_cpu_s == 0.0  # dropped before polling

    def test_overhead_charged_per_sensor_read(self):
        eng = Engine()
        reg = SeriesRegistry()
        group = SamplingGroup(eng, _BatchSink(), period=1.0, per_sample_cost_s=0.001)
        group.add_bank(_bank(reg, "a", [1.0, 2.0, 3.0]))
        group.start()
        eng.run(until=9.0)
        assert group.overhead_cpu_s == pytest.approx(0.030)  # 10 rounds x 3
        assert group.overhead_cpu_frac(10.0) == pytest.approx(0.003)

    def test_nan_rows_dropped_from_group_batch(self):
        eng = Engine()
        reg = SeriesRegistry()
        sink = _BatchSink()
        keys = [SeriesKey.of("m", i=str(i)) for i in range(3)]
        bank = SensorBank(
            keys, lambda now: np.array([1.0, np.nan, 3.0]), registry=reg
        )
        group = SamplingGroup(eng, sink, period=1.0)
        group.add_bank(bank)
        group.start()
        eng.run(until=0.0)
        assert len(sink.batches) == 1
        np.testing.assert_array_equal(sink.batches[0].values, [1.0, 3.0])

    def test_double_start_raises(self):
        eng = Engine()
        group = SamplingGroup(eng, _BatchSink(), period=1.0)
        group.start()
        with pytest.raises(RuntimeError):
            group.start()


class TestAppendBatch:
    def test_groups_rows_per_series(self):
        store = TimeSeriesStore()
        a = store.registry.id_for(SeriesKey.of("m", node="a"))
        b = store.registry.id_for(SeriesKey.of("m", node="b"))
        store.append_batch(
            np.array([a, b, a, b]),
            np.array([0.0, 0.0, 1.0, 1.0]),
            np.array([1.0, 2.0, 3.0, 4.0]),
        )
        times, values = store.query(SeriesKey.of("m", node="a"), 0, 10)
        np.testing.assert_array_equal(values, [1.0, 3.0])
        times, values = store.query(SeriesKey.of("m", node="b"), 0, 10)
        np.testing.assert_array_equal(values, [2.0, 4.0])
        assert store.total_inserts == 4

    def test_unsorted_rows_within_batch_are_ordered(self):
        store = TimeSeriesStore()
        sid = store.registry.id_for(SeriesKey.of("m"))
        store.append_batch(
            np.array([sid, sid, sid]),
            np.array([2.0, 0.0, 1.0]),
            np.array([20.0, 0.0, 10.0]),
        )
        times, values = store.query(SeriesKey.of("m"), 0, 10)
        np.testing.assert_array_equal(times, [0.0, 1.0, 2.0])
        np.testing.assert_array_equal(values, [0.0, 10.0, 20.0])

    def test_cross_batch_overlap_rejected(self):
        store = TimeSeriesStore()
        sid = store.registry.id_for(SeriesKey.of("m"))
        store.append_batch(np.array([sid]), np.array([5.0]), np.array([1.0]))
        with pytest.raises(ValueError, match="overlap"):
            store.append_batch(np.array([sid]), np.array([4.0]), np.array([2.0]))

    def test_empty_batch_is_noop(self):
        store = TimeSeriesStore()
        store.append_batch(np.empty(0, dtype=np.int64), np.empty(0), np.empty(0))
        assert store.total_inserts == 0

    def test_matches_per_sample_inserts(self):
        rng = RngRegistry(seed=9).stream("x")
        keys = [SeriesKey.of("m", node=f"n{i}") for i in range(5)]
        ref = TimeSeriesStore()
        col = TimeSeriesStore()
        ids = col.registry.ids_for(keys)
        for t in range(50):
            values = rng.normal(size=5)
            for k, v in zip(keys, values):
                ref.insert(k, float(t), float(v))
            col.append_batch(ids, np.full(5, float(t)), values)
        for k in keys:
            rt, rv = ref.query(k, -np.inf, np.inf)
            ct, cv = col.query(k, -np.inf, np.inf)
            np.testing.assert_array_equal(rt, ct)
            np.testing.assert_array_equal(rv, cv)

    def test_metric_epoch_bumps_on_every_write_path(self):
        store = TimeSeriesStore()
        key = SeriesKey.of("m")
        assert store.metric_epoch("m") == 0
        store.insert(key, 0.0, 1.0)
        assert store.metric_epoch("m") == 1
        store.insert_batch(key, np.array([1.0]), np.array([2.0]))
        assert store.metric_epoch("m") == 2
        store.append_batch(
            np.array([store.registry.id_for(key)]), np.array([3.0]), np.array([4.0])
        )
        assert store.metric_epoch("m") == 3
        assert store.metric_epoch("other") == 0

    def test_ingest_listener_sees_sorted_columns(self):
        store = TimeSeriesStore()
        seen = []
        store.add_ingest_listener(lambda i, t, v: seen.append((i.copy(), t.copy(), v.copy())))
        a = store.registry.id_for(SeriesKey.of("m", node="a"))
        b = store.registry.id_for(SeriesKey.of("m", node="b"))
        store.append_batch(
            np.array([b, a, b]), np.array([1.0, 0.0, 0.5]), np.array([1.0, 2.0, 3.0])
        )
        ids, times, values = seen[0]
        np.testing.assert_array_equal(ids, [a, b, b])
        np.testing.assert_array_equal(times, [0.0, 0.5, 1.0])
        store.insert(SeriesKey.of("m", node="a"), 9.0, 9.0)
        ids, times, values = seen[1]
        np.testing.assert_array_equal(ids, [a])
        np.testing.assert_array_equal(times, [9.0])
