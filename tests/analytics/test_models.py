"""Tests for online models (RLS and the heavyweight batch baseline)."""

import numpy as np
import pytest

from repro.analytics.models import BatchPolynomialModel, RecursiveLeastSquares


class TestRecursiveLeastSquares:
    def test_learns_linear_function(self):
        rls = RecursiveLeastSquares(n_features=2, forgetting=1.0)
        rng = np.random.default_rng(0)
        for _ in range(300):
            x = rng.uniform(-5, 5, size=2)
            y = 3.0 + 2.0 * x[0] - 1.5 * x[1]
            rls.update(x, y)
        pred = rls.predict([1.0, 1.0])
        # the P-prior acts as a tiny ridge penalty, so convergence is
        # near-exact rather than exact
        assert pred == pytest.approx(3.0 + 2.0 - 1.5, abs=1e-3)
        np.testing.assert_allclose(rls.weights, [3.0, 2.0, -1.5], atol=1e-3)

    def test_none_before_two_updates(self):
        rls = RecursiveLeastSquares(n_features=1)
        assert rls.predict([1.0]) is None
        rls.update([1.0], 1.0)
        assert rls.predict([1.0]) is None

    def test_forgetting_tracks_drift(self):
        rng = np.random.default_rng(1)
        adaptive = RecursiveLeastSquares(n_features=1, forgetting=0.95)
        frozen = RecursiveLeastSquares(n_features=1, forgetting=1.0)
        # regime 1: y = x
        for _ in range(200):
            x = rng.uniform(0, 10)
            for m in (adaptive, frozen):
                m.update([x], x)
        # regime 2: y = 3x
        for _ in range(100):
            x = rng.uniform(0, 10)
            for m in (adaptive, frozen):
                m.update([x], 3.0 * x)
        x_test = 5.0
        err_adaptive = abs(adaptive.predict([x_test]) - 15.0)
        err_frozen = abs(frozen.predict([x_test]) - 15.0)
        assert err_adaptive < err_frozen

    def test_noise_robustness(self):
        rng = np.random.default_rng(2)
        rls = RecursiveLeastSquares(n_features=1, forgetting=1.0)
        for _ in range(2000):
            x = rng.uniform(-1, 1)
            rls.update([x], 5.0 * x + rng.normal(0, 0.5))
        assert rls.predict([0.5]) == pytest.approx(2.5, abs=0.1)

    def test_feature_shape_validation(self):
        rls = RecursiveLeastSquares(n_features=2)
        with pytest.raises(ValueError):
            rls.update([1.0], 1.0)

    def test_param_validation(self):
        with pytest.raises(ValueError):
            RecursiveLeastSquares(n_features=0)
        with pytest.raises(ValueError):
            RecursiveLeastSquares(n_features=1, forgetting=0.0)

    def test_param_count(self):
        assert RecursiveLeastSquares(n_features=3).param_count == 4  # + bias


class TestBatchPolynomialModel:
    def test_fits_polynomial(self):
        model = BatchPolynomialModel(degree=2, ridge=1e-9)
        for x in np.linspace(0, 10, 50):
            model.update([x], 1.0 + 2.0 * x + 0.5 * x * x)
        assert model.predict([4.0]) == pytest.approx(1.0 + 8.0 + 8.0, rel=1e-4)

    def test_none_before_enough_points(self):
        model = BatchPolynomialModel(degree=3)
        model.update([1.0], 1.0)
        assert model.predict([1.0]) is None

    def test_history_bound(self):
        model = BatchPolynomialModel(degree=1, max_history=10)
        for x in range(50):
            model.update([float(x)], float(x))
        assert len(model._x) == 10

    def test_fit_cost_grows_with_history(self):
        model = BatchPolynomialModel(degree=4)
        for x in np.linspace(0, 1, 30):
            model.update([x], x)
        cost_30 = model.total_fit_flops
        for x in np.linspace(1, 2, 30):
            model.update([x], x)
        cost_60 = model.total_fit_flops
        # second 30 updates cost more than the first 30 (refit over more data)
        assert cost_60 - cost_30 > cost_30

    def test_multivariate_rejected(self):
        model = BatchPolynomialModel()
        with pytest.raises(ValueError):
            model.update([1.0, 2.0], 1.0)

    def test_degree_validation(self):
        with pytest.raises(ValueError):
            BatchPolynomialModel(degree=0)

    def test_param_count(self):
        assert BatchPolynomialModel(degree=8).param_count == 9
