"""Tests for time-to-completion forecasters."""

import numpy as np
import pytest

from repro.analytics.forecast import (
    EwmaRateForecaster,
    ForecasterEnsemble,
    HoltForecaster,
    OLSForecaster,
    RateForecaster,
    TheilSenForecaster,
    forecaster_names,
    make_forecaster,
)

ALL_NAMES = ["rate", "ewma", "ols", "theilsen", "holt", "ensemble"]


def feed_linear(fc, rate=2.0, n=20, dt=10.0, noise=None, rng=None):
    """Feed markers step = rate * t (+ optional noise)."""
    for i in range(n):
        t = i * dt
        step = rate * t
        if noise is not None:
            step += rng.normal(0, noise)
        fc.update(t, max(0.0, step))
    return (n - 1) * dt  # last marker time


@pytest.mark.parametrize("name", ALL_NAMES)
class TestAllForecasters:
    def test_none_before_enough_data(self, name):
        fc = make_forecaster(name)
        assert fc.forecast(0.0, 100.0) is None
        fc.update(0.0, 0.0)
        assert fc.forecast(0.0, 100.0) is None

    def test_exact_on_noiseless_linear(self, name):
        fc = make_forecaster(name)
        now = feed_linear(fc, rate=2.0, n=20, dt=10.0)
        result = fc.forecast(now, target_step=1000.0)
        assert result is not None
        # step = 2t → target 1000 at t = 500
        assert result.eta == pytest.approx(500.0, rel=0.02)
        assert result.rate == pytest.approx(2.0, rel=0.02)
        assert result.eta_lo <= result.eta <= result.eta_hi

    def test_interval_contains_truth_on_noisy_data(self, name):
        rng = np.random.default_rng(3)
        fc = make_forecaster(name)
        now = feed_linear(fc, rate=1.0, n=50, dt=10.0, noise=2.0, rng=rng)
        result = fc.forecast(now, target_step=2000.0)
        assert result is not None
        assert result.eta_lo <= 2000.0 <= result.eta_hi or abs(result.eta - 2000.0) < 100.0

    def test_no_forecast_for_stalled_progress(self, name):
        fc = make_forecaster(name)
        for i in range(10):
            fc.update(i * 10.0, 5.0)  # constant step → zero rate
        assert fc.forecast(100.0, 100.0) is None

    def test_remaining_clamps_to_zero(self, name):
        fc = make_forecaster(name)
        now = feed_linear(fc, rate=10.0, n=10, dt=10.0)
        result = fc.forecast(now, target_step=10.0)  # already passed
        assert result is not None
        assert result.remaining(now) >= 0.0


class TestRateForecaster:
    def test_band_widens_with_few_markers(self):
        fc3 = RateForecaster(band=0.2)
        feed_linear(fc3, n=3)
        fc30 = RateForecaster(band=0.2)
        feed_linear(fc30, n=30)
        r3 = fc3.forecast(20.0, 1000.0)
        r30 = fc30.forecast(290.0, 1500.0)
        # interval width relative to remaining should shrink with markers
        rel3 = r3.interval_width / max(1e-9, r3.remaining(20.0))
        rel30 = r30.interval_width / max(1e-9, r30.remaining(290.0))
        assert rel30 < rel3

    def test_negative_band_rejected(self):
        with pytest.raises(ValueError):
            RateForecaster(band=-0.1)

    def test_reset(self):
        fc = RateForecaster()
        feed_linear(fc)
        fc.reset()
        assert fc.forecast(0.0, 10.0) is None


class TestEwmaRateForecaster:
    def test_adapts_to_rate_change(self):
        fc = EwmaRateForecaster(alpha=0.5)
        # phase 1: rate 1.0 for 20 markers
        step = 0.0
        for i in range(20):
            fc.update(i * 10.0, step)
            step += 10.0
        # phase 2: rate doubles
        for i in range(20, 40):
            fc.update(i * 10.0, step)
            step += 20.0
        result = fc.forecast(390.0, step + 2000.0)
        assert result.rate == pytest.approx(2.0, rel=0.05)

    def test_overall_rate_would_be_wrong(self):
        """Contrast: plain RateForecaster averages over both phases."""
        fc = RateForecaster()
        step = 0.0
        for i in range(20):
            fc.update(i * 10.0, step)
            step += 10.0
        for i in range(20, 40):
            fc.update(i * 10.0, step)
            step += 20.0
        result = fc.forecast(390.0, step + 2000.0)
        assert 1.0 < result.rate < 2.0  # blended, not adapted


class TestOLSForecaster:
    def test_window_bounds_history(self):
        fc = OLSForecaster(window=8)
        feed_linear(fc, n=100)
        assert len(fc._t) == 8

    def test_interval_narrows_with_more_data(self):
        rng = np.random.default_rng(11)
        small, large = OLSForecaster(window=64), OLSForecaster(window=64)
        feed_linear(small, rate=1.0, n=5, dt=10.0, noise=1.0, rng=rng)
        feed_linear(large, rate=1.0, n=60, dt=10.0, noise=1.0, rng=rng)
        rs = small.forecast(40.0, 5000.0)
        rl = large.forecast(590.0, 5000.0)
        assert rl.interval_width < rs.interval_width

    def test_min_window_validation(self):
        with pytest.raises(ValueError):
            OLSForecaster(window=2)


class TestTheilSenForecaster:
    def test_robust_to_outlier_markers(self):
        fc_ts = TheilSenForecaster()
        fc_ols = OLSForecaster()
        for i in range(30):
            t = i * 10.0
            step = 2.0 * t
            if i in (10, 20):  # corrupted markers (e.g. clock skew)
                step += 500.0
            fc_ts.update(t, step)
            fc_ols.update(t, step)
        rts = fc_ts.forecast(290.0, 5000.0)
        rols = fc_ols.forecast(290.0, 5000.0)
        # true eta = 2500; Theil-Sen should be much closer
        assert abs(rts.eta - 2500.0) < abs(rols.eta - 2500.0)
        assert rts.rate == pytest.approx(2.0, rel=0.02)


class TestHoltForecaster:
    def test_tracks_trend_changes(self):
        fc = HoltForecaster(alpha=0.6, beta=0.3)
        step = 0.0
        for i in range(15):
            fc.update(i * 10.0, step)
            step += 10.0
        for i in range(15, 60):
            fc.update(i * 10.0, step)
            step += 30.0  # rate tripled
        result = fc.forecast(590.0, step + 3000.0)
        assert result.rate == pytest.approx(3.0, rel=0.10)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            HoltForecaster(alpha=0.0)
        with pytest.raises(ValueError):
            HoltForecaster(beta=2.0)


class TestForecasterEnsemble:
    def test_best_name_none_before_scoring(self):
        assert ForecasterEnsemble().best_name is None

    def test_cannot_contain_itself(self):
        with pytest.raises(ValueError):
            ForecasterEnsemble(member_names=("ols", "ensemble"))

    def test_prefers_robust_member_on_outlier_stream(self):
        fc = ForecasterEnsemble(member_names=("ols", "theilsen"))
        for i in range(60):
            t = i * 10.0
            step = 2.0 * t
            if i % 7 == 3:  # recurring corrupted markers
                step += 400.0
            fc.update(t, step)
        assert fc.best_name == "theilsen"
        result = fc.forecast(590.0, 5000.0)
        assert result.rate == pytest.approx(2.0, rel=0.05)

    def test_selection_adapts_to_rate_change(self):
        """After a sharp rate change the drift-adaptive member wins."""
        fc = ForecasterEnsemble(member_names=("rate", "ewma"))
        step = 0.0
        for i in range(20):
            fc.update(i * 10.0, step)
            step += 10.0
        for i in range(20, 60):
            fc.update(i * 10.0, step)
            step += 30.0
        assert fc.best_name == "ewma"
        result = fc.forecast(590.0, step + 3000.0)
        assert result.rate == pytest.approx(3.0, rel=0.1)

    def test_reset(self):
        fc = ForecasterEnsemble()
        feed_linear(fc)
        fc.reset()
        assert fc.best_name is None
        assert fc.forecast(0.0, 100.0) is None


class TestRegistry:
    def test_all_names_constructible(self):
        for name in forecaster_names():
            fc = make_forecaster(name)
            assert fc.name == name

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown forecaster"):
            make_forecaster("oracle")

    def test_names_match_expected(self):
        assert set(forecaster_names()) == set(ALL_NAMES)
