"""Tests for behavioral fingerprints."""

import math

import pytest

from repro.analytics.fingerprint import (
    BehaviorFingerprint,
    fingerprint_distance,
    fingerprint_from_store,
)
from repro.telemetry.metric import SeriesKey
from repro.telemetry.tsdb import TimeSeriesStore


def test_fingerprint_from_store_summaries():
    store = TimeSeriesStore()
    k = SeriesKey.of("node_cpu_util", node="n1")
    for t, v in enumerate([0.5, 0.6, 0.7, 0.8]):
        store.insert(k, float(t), v)
    fp = fingerprint_from_store(store, "j1", "lmp", 0, 10, {"cpu": k})
    assert fp.get("cpu_mean") == pytest.approx(0.65)
    assert fp.get("cpu_p95") == pytest.approx(0.785)
    assert "cpu_std" in fp.features


def test_fingerprint_missing_series_empty_features():
    store = TimeSeriesStore()
    fp = fingerprint_from_store(
        store, "j1", "lmp", 0, 10, {"cpu": SeriesKey.of("node_cpu_util", node="nope")}
    )
    assert fp.features == {}


def test_distance_zero_for_identical():
    a = BehaviorFingerprint("a", "app", {"x": 1.0, "y": 2.0})
    b = BehaviorFingerprint("b", "app", {"x": 1.0, "y": 2.0})
    assert fingerprint_distance(a, b) == pytest.approx(0.0)


def test_distance_positive_for_different():
    a = BehaviorFingerprint("a", "app", {"x": 1.0})
    b = BehaviorFingerprint("b", "app", {"x": 2.0})
    assert fingerprint_distance(a, b) > 0.0


def test_distance_inf_without_shared_features():
    a = BehaviorFingerprint("a", "app", {"x": 1.0})
    b = BehaviorFingerprint("b", "app", {"y": 1.0})
    assert math.isinf(fingerprint_distance(a, b))


def test_distance_uses_scales():
    a = BehaviorFingerprint("a", "app", {"x": 0.0})
    b = BehaviorFingerprint("b", "app", {"x": 10.0})
    d_raw = fingerprint_distance(a, b)
    d_scaled = fingerprint_distance(a, b, scales={"x": 100.0})
    assert d_scaled < d_raw


def test_distance_only_shared_features_counted():
    a = BehaviorFingerprint("a", "app", {"x": 1.0, "only_a": 99.0})
    b = BehaviorFingerprint("b", "app", {"x": 1.0, "only_b": -99.0})
    assert fingerprint_distance(a, b) == pytest.approx(0.0)


def test_get_default():
    fp = BehaviorFingerprint("a", "app", {})
    assert math.isnan(fp.get("missing"))
    assert fp.get("missing", 5.0) == 5.0
