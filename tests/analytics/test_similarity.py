"""Tests for job similarity / run history k-NN."""

import pytest

from repro.analytics.similarity import JobRecord, RunHistory


def rec(job_id, app="lmp", runtime=100.0, succeeded=True, **features):
    return JobRecord(job_id, app, features, runtime, succeeded)


class TestRunHistory:
    def test_empty_history(self):
        h = RunHistory()
        assert h.nearest({"x": 1.0}) == []
        assert h.predict_runtime({"x": 1.0}) is None

    def test_nearest_orders_by_distance(self):
        h = RunHistory()
        h.add(rec("a", x=1.0))
        h.add(rec("b", x=5.0))
        h.add(rec("c", x=2.0))
        got = [n.record.job_id for n in h.nearest({"x": 1.1}, k=3)]
        assert got == ["a", "c", "b"]

    def test_k_limits_results(self):
        h = RunHistory()
        for i in range(10):
            h.add(rec(f"j{i}", x=float(i)))
        assert len(h.nearest({"x": 0.0}, k=3)) == 3

    def test_filter_by_app(self):
        h = RunHistory()
        h.add(rec("a", app="lmp", x=1.0))
        h.add(rec("b", app="cfd", x=1.0))
        got = h.nearest({"x": 1.0}, app_name="cfd")
        assert [n.record.job_id for n in got] == ["b"]

    def test_normalization_prevents_scale_domination(self):
        h = RunHistory()
        # feature "big" has huge scale; "small" is discriminative
        h.add(rec("near", big=1e6, small=1.0))
        h.add(rec("far", big=1.001e6, small=100.0))
        got = h.nearest({"big": 1e6, "small": 1.0}, k=1)
        assert got[0].record.job_id == "near"

    def test_missing_features_treated_as_mean(self):
        h = RunHistory()
        h.add(rec("full", x=1.0, y=5.0))
        h.add(rec("partial", x=2.0))  # no y
        got = h.nearest({"x": 2.0, "y": 5.0}, k=2)
        assert len(got) == 2  # no crash; both records scored

    def test_predict_runtime_weighted(self):
        h = RunHistory()
        h.add(rec("a", runtime=100.0, x=1.0))
        h.add(rec("b", runtime=200.0, x=10.0))
        mean, spread = h.predict_runtime({"x": 1.0}, k=2)
        assert 100.0 <= mean < 160.0  # dominated by the nearer record
        assert spread >= 0.0

    def test_predict_excludes_failures(self):
        h = RunHistory()
        h.add(rec("ok", runtime=100.0, x=1.0))
        h.add(rec("fail", runtime=5.0, succeeded=False, x=1.0))
        mean, _ = h.predict_runtime({"x": 1.0}, k=5)
        assert mean == pytest.approx(100.0)

    def test_predict_none_when_only_failures(self):
        h = RunHistory()
        h.add(rec("fail", runtime=5.0, succeeded=False, x=1.0))
        assert h.predict_runtime({"x": 1.0}) is None

    def test_invalid_k(self):
        h = RunHistory()
        with pytest.raises(ValueError):
            h.nearest({"x": 1.0}, k=0)

    def test_negative_runtime_rejected(self):
        with pytest.raises(ValueError):
            JobRecord("x", "app", {}, runtime_s=-1.0)

    def test_explicit_feature_keys(self):
        h = RunHistory(feature_keys=["x"])
        h.add(rec("a", x=1.0, ignored=99.0))
        assert h.feature_keys() == ["x"]

    def test_identical_features_zero_distance(self):
        h = RunHistory()
        h.add(rec("a", x=3.0, y=4.0))
        h.add(rec("b", x=30.0, y=40.0))
        got = h.nearest({"x": 3.0, "y": 4.0}, k=1)
        assert got[0].record.job_id == "a"
        assert got[0].distance == pytest.approx(0.0, abs=1e-9)
