"""Tests for misconfiguration detection rules."""

import pytest

from repro.analytics.misconfig import (
    CpuUnderutilizationRule,
    GpuUnderutilizationRule,
    JobConfigView,
    MemoryOversubscriptionRule,
    MisconfigAnalyzer,
    MisconfigKind,
    ThreadCoreMismatchRule,
    WrongLibraryPathRule,
    default_rules,
)


def view(**overrides):
    defaults = dict(
        job_id="j1",
        cores_allocated=32,
        gpus_allocated=0,
        mem_allocated_gb=128.0,
        threads_requested=32,
        library_paths=("site-blas", "site-mpi"),
        expected_libraries=("site-blas",),
        cpu_util_mean=0.85,
        gpu_util_mean=float("nan"),
        mem_used_gb_p95=64.0,
        observation_s=600.0,
    )
    defaults.update(overrides)
    return JobConfigView(**defaults)


class TestThreadCoreMismatch:
    def test_well_configured_passes(self):
        assert ThreadCoreMismatchRule().check(view()) is None

    def test_undersubscription_detected(self):
        f = ThreadCoreMismatchRule().check(view(threads_requested=4))
        assert f is not None
        assert f.kind is MisconfigKind.THREAD_CORE_MISMATCH
        assert "idle" in f.explanation
        assert f.fixable_online
        assert f.fix_params["threads"] == 32.0

    def test_oversubscription_detected(self):
        f = ThreadCoreMismatchRule().check(view(threads_requested=128))
        assert f is not None
        assert "oversubscription" in f.explanation

    def test_unset_threads_skipped(self):
        assert ThreadCoreMismatchRule().check(view(threads_requested=0)) is None

    def test_tolerance(self):
        rule = ThreadCoreMismatchRule(tolerance=2)
        assert rule.check(view(threads_requested=30)) is None
        assert rule.check(view(threads_requested=29)) is not None


class TestCpuUnderutilization:
    def test_busy_job_passes(self):
        assert CpuUnderutilizationRule().check(view(cpu_util_mean=0.9)) is None

    def test_idle_job_detected(self):
        f = CpuUnderutilizationRule(threshold=0.25).check(view(cpu_util_mean=0.05))
        assert f is not None
        assert f.kind is MisconfigKind.CPU_UNDERUTILIZATION
        assert f.severity > 0.5

    def test_short_observation_suppressed(self):
        rule = CpuUnderutilizationRule(min_observation_s=300.0)
        assert rule.check(view(cpu_util_mean=0.05, observation_s=60.0)) is None

    def test_nan_util_suppressed(self):
        assert CpuUnderutilizationRule().check(view(cpu_util_mean=float("nan"))) is None

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            CpuUnderutilizationRule(threshold=1.5)


class TestGpuUnderutilization:
    def test_no_gpus_skipped(self):
        assert GpuUnderutilizationRule().check(view(gpus_allocated=0)) is None

    def test_idle_gpu_detected(self):
        f = GpuUnderutilizationRule().check(view(gpus_allocated=4, gpu_util_mean=0.0))
        assert f is not None
        assert f.severity == 1.0

    def test_moderately_used_gpu_detected_lower_severity(self):
        f = GpuUnderutilizationRule(threshold=0.10).check(
            view(gpus_allocated=4, gpu_util_mean=0.05)
        )
        assert f is not None
        assert f.severity < 1.0

    def test_busy_gpu_passes(self):
        assert (
            GpuUnderutilizationRule().check(view(gpus_allocated=4, gpu_util_mean=0.8)) is None
        )


class TestWrongLibraryPath:
    def test_expected_present_passes(self):
        assert WrongLibraryPathRule().check(view()) is None

    def test_missing_library_detected(self):
        f = WrongLibraryPathRule().check(view(library_paths=("generic-blas",)))
        assert f is not None
        assert "site-blas" in f.explanation
        assert f.fixable_online

    def test_no_expectations_skipped(self):
        assert WrongLibraryPathRule().check(view(expected_libraries=())) is None


class TestMemoryOversubscription:
    def test_comfortable_headroom_passes(self):
        assert MemoryOversubscriptionRule().check(view(mem_used_gb_p95=64.0)) is None

    def test_near_limit_detected(self):
        f = MemoryOversubscriptionRule().check(view(mem_used_gb_p95=126.0))
        assert f is not None
        assert f.kind is MisconfigKind.MEMORY_OVERSUBSCRIPTION

    def test_zero_allocation_skipped(self):
        assert (
            MemoryOversubscriptionRule().check(view(mem_allocated_gb=0.0)) is None
        )


class TestMisconfigAnalyzer:
    def test_clean_job_no_findings(self):
        assert MisconfigAnalyzer().analyze(view()) == []

    def test_multiple_findings_sorted_by_severity(self):
        bad = view(
            threads_requested=1,
            cpu_util_mean=0.02,
            gpus_allocated=4,
            gpu_util_mean=0.0,
        )
        findings = MisconfigAnalyzer().analyze(bad)
        assert len(findings) >= 3
        severities = [f.severity for f in findings]
        assert severities == sorted(severities, reverse=True)

    def test_default_rules_cover_all_paper_kinds(self):
        kinds = set()
        for rule in default_rules():
            # each rule is tied to exactly one kind through its check
            kinds.add(rule.name)
        assert len(default_rules()) == 5

    def test_custom_rule_subset(self):
        analyzer = MisconfigAnalyzer(rules=[ThreadCoreMismatchRule()])
        findings = analyzer.analyze(view(threads_requested=1, cpu_util_mean=0.01))
        assert [f.kind for f in findings] == [MisconfigKind.THREAD_CORE_MISMATCH]
