"""Tests for streaming statistics, including property tests vs NumPy."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytics.streaming import Ewma, P2Quantile, RollingWindow, RunningStats

floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)


class TestRunningStats:
    def test_empty_is_nan(self):
        s = RunningStats()
        assert math.isnan(s.mean)
        assert math.isnan(s.variance)
        assert math.isnan(s.minimum)

    def test_single_value(self):
        s = RunningStats()
        s.update(5.0)
        assert s.mean == 5.0
        assert math.isnan(s.variance)  # ddof=1 undefined for n=1
        assert s.minimum == 5.0 and s.maximum == 5.0

    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        data = rng.normal(10, 3, size=500)
        s = RunningStats()
        for x in data:
            s.update(x)
        assert s.mean == pytest.approx(np.mean(data))
        assert s.variance == pytest.approx(np.var(data, ddof=1))
        assert s.std == pytest.approx(np.std(data, ddof=1))

    @given(st.lists(floats, min_size=2, max_size=100))
    def test_property_matches_numpy(self, data):
        s = RunningStats()
        for x in data:
            s.update(x)
        np.testing.assert_allclose(s.mean, np.mean(data), rtol=1e-8, atol=1e-6)
        np.testing.assert_allclose(s.variance, np.var(data, ddof=1), rtol=1e-6, atol=1e-6)

    @given(st.lists(floats, min_size=1, max_size=50), st.lists(floats, min_size=1, max_size=50))
    def test_merge_equals_sequential(self, a, b):
        sa, sb, sall = RunningStats(), RunningStats(), RunningStats()
        for x in a:
            sa.update(x)
            sall.update(x)
        for x in b:
            sb.update(x)
            sall.update(x)
        merged = sa.merge(sb)
        np.testing.assert_allclose(merged.mean, sall.mean, rtol=1e-8, atol=1e-6)
        np.testing.assert_allclose(merged.variance, sall.variance, rtol=1e-6, atol=1e-6)
        assert merged.n == sall.n
        assert merged.minimum == sall.minimum
        assert merged.maximum == sall.maximum

    def test_merge_with_empty(self):
        a = RunningStats()
        a.update(1.0)
        a.update(3.0)
        merged = a.merge(RunningStats())
        assert merged.mean == 2.0
        merged2 = RunningStats().merge(a)
        assert merged2.mean == 2.0


class TestEwma:
    def test_first_value_sets_level(self):
        e = Ewma(0.5)
        assert e.update(10.0) == 10.0

    def test_converges_to_constant(self):
        e = Ewma(0.3)
        for _ in range(100):
            e.update(7.0)
        assert e.value == pytest.approx(7.0)
        assert e.std == pytest.approx(0.0, abs=1e-9)

    def test_smoothing_formula(self):
        e = Ewma(0.5)
        e.update(0.0)
        e.update(10.0)
        assert e.value == pytest.approx(5.0)
        e.update(10.0)
        assert e.value == pytest.approx(7.5)

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            Ewma(0.0)
        with pytest.raises(ValueError):
            Ewma(1.5)

    def test_empty_value_nan(self):
        assert math.isnan(Ewma(0.5).value)

    def test_variance_tracks_noise(self):
        rng = np.random.default_rng(1)
        e = Ewma(0.1)
        for x in rng.normal(0, 2.0, size=2000):
            e.update(x)
        # EW std should be in the ballpark of the true std
        assert 1.0 < e.std < 3.0


class TestRollingWindow:
    def test_keeps_last_n(self):
        w = RollingWindow(3)
        for x in [1, 2, 3, 4, 5]:
            w.update(x)
        np.testing.assert_array_equal(w.values(), [3, 4, 5])
        assert w.full

    def test_stats(self):
        w = RollingWindow(5)
        for x in [1.0, 2.0, 3.0, 4.0]:
            w.update(x)
        assert w.mean == pytest.approx(2.5)
        assert w.median == pytest.approx(2.5)
        assert w.std == pytest.approx(np.std([1, 2, 3, 4], ddof=1))
        assert not w.full

    def test_mad(self):
        w = RollingWindow(5)
        for x in [1.0, 1.0, 1.0, 1.0, 100.0]:
            w.update(x)
        assert w.mad() == 0.0  # median of |x - 1| = 0

    def test_empty_stats_nan(self):
        w = RollingWindow(3)
        assert math.isnan(w.mean)
        assert math.isnan(w.median)
        assert math.isnan(w.mad())

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            RollingWindow(0)


class TestP2Quantile:
    def test_exact_below_five_samples(self):
        p = P2Quantile(0.5)
        for x in [3.0, 1.0, 2.0]:
            p.update(x)
        assert p.value == pytest.approx(2.0)

    def test_empty_nan(self):
        assert math.isnan(P2Quantile(0.5).value)

    def test_invalid_quantile(self):
        with pytest.raises(ValueError):
            P2Quantile(0.0)
        with pytest.raises(ValueError):
            P2Quantile(1.0)

    @pytest.mark.parametrize("q", [0.5, 0.9, 0.95])
    def test_accuracy_on_gaussian(self, q):
        rng = np.random.default_rng(7)
        data = rng.normal(50, 10, size=20_000)
        p = P2Quantile(q)
        for x in data:
            p.update(x)
        exact = np.quantile(data, q)
        # P2 should land within a small relative error on smooth data
        assert abs(p.value - exact) / abs(exact) < 0.05

    @pytest.mark.parametrize("q", [0.5, 0.95])
    def test_accuracy_on_uniform(self, q):
        rng = np.random.default_rng(8)
        data = rng.uniform(0, 100, size=20_000)
        p = P2Quantile(q)
        for x in data:
            p.update(x)
        assert abs(p.value - 100 * q) < 3.0

    @given(st.lists(st.floats(min_value=0, max_value=1000, allow_nan=False), min_size=5, max_size=300))
    @settings(max_examples=50)
    def test_estimate_within_observed_range(self, data):
        p = P2Quantile(0.9)
        for x in data:
            p.update(x)
        assert min(data) <= p.value <= max(data)
