"""Tests for seasonal baselines and seasonal anomaly detection."""

import numpy as np
import pytest

from repro.analytics.seasonal import DAY_S, SeasonalAnomalyDetector, SeasonalBaseline
from repro.telemetry.synthetic import SpikeSpec, SyntheticSeriesSpec, render_series


class TestSeasonalBaseline:
    def test_bin_index_wraps_daily(self):
        b = SeasonalBaseline(period_s=DAY_S, n_bins=24)
        assert b.bin_index(0.0) == 0
        assert b.bin_index(3600.0) == 1
        assert b.bin_index(DAY_S) == 0  # next day, same phase
        assert b.bin_index(DAY_S + 3600.0 * 23) == 23

    def test_expected_tracks_phase_mean(self):
        b = SeasonalBaseline(period_s=DAY_S, n_bins=24)
        for day in range(5):
            b.update(day * DAY_S + 100.0, 10.0)  # midnight bin
            b.update(day * DAY_S + 12 * 3600.0, 50.0)  # noon bin
        assert b.expected(100.0) == pytest.approx(10.0)
        assert b.expected(12 * 3600.0) == pytest.approx(50.0)
        assert b.expected(6 * 3600.0) is None  # unseen phase

    def test_coverage(self):
        b = SeasonalBaseline(n_bins=4, period_s=4.0)
        assert b.coverage() == 0.0
        for t in [0.0, 4.0, 1.0, 5.0]:  # two samples in bins 0 and 1
            b.update(t, 1.0)
        assert b.coverage() == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            SeasonalBaseline(period_s=0.0)
        with pytest.raises(ValueError):
            SeasonalBaseline(n_bins=0)


class TestSeasonalAnomalyDetector:
    def _diurnal_signal(self, days=6, step_s=600.0, spike_at=None, rng_seed=0):
        rng = np.random.default_rng(rng_seed)
        times = np.arange(0.0, days * DAY_S, step_s)
        spec = SyntheticSeriesSpec(
            base=400.0,
            diurnal_amplitude=80.0,
            noise_std=4.0,
            spikes=[SpikeSpec(spike_at, magnitude=60.0, duration=1200.0)] if spike_at else [],
        )
        return times, render_series(times, spec, rng)

    def test_trains_through_first_days_silently(self):
        det = SeasonalAnomalyDetector(threshold=4.0, min_per_bin=3)
        times, values = self._diurnal_signal(days=3)
        hits = [det.update(t, v) for t, v in zip(times, values)]
        assert sum(1 for h in hits if h) == 0

    def test_detects_off_phase_excursion(self):
        # a +60 W spike is small vs the ±80 W diurnal swing, so a plain
        # z-score over the whole stream would need a huge window to see it;
        # the seasonal detector catches it against the phase baseline
        spike_at = 4 * DAY_S + 3 * 3600.0  # 3 am on day 5
        det = SeasonalAnomalyDetector(threshold=4.0, min_per_bin=3)
        times, values = self._diurnal_signal(days=6, spike_at=spike_at)
        hits = [
            (t, det.update(t, v)) for t, v in zip(times, values)
        ]
        detections = [t for t, h in hits if h is not None]
        assert any(spike_at <= t <= spike_at + 1800.0 for t in detections)

    def test_no_false_alarms_on_clean_diurnal(self):
        det = SeasonalAnomalyDetector(threshold=5.0, min_per_bin=3)
        times, values = self._diurnal_signal(days=8, rng_seed=3)
        false_alarms = sum(1 for t, v in zip(times, values) if det.update(t, v))
        assert false_alarms <= 2  # ≥5σ noise events are vanishingly rare

    def test_plain_zscore_misses_the_off_phase_spike(self):
        """Motivating contrast: a trending window inflates the plain
        detector's own std, so the small off-phase excursion that the
        seasonal detector catches is invisible to it."""
        from repro.analytics.anomaly import ZScoreDetector

        spike_at = 3 * DAY_S + 3 * 3600.0
        times, values = self._diurnal_signal(days=4, spike_at=spike_at, rng_seed=5)
        det = ZScoreDetector(window=36, threshold=4.0)  # 6 h window
        detections = [
            t for t, v in zip(times, values)
            if det.update(t, v) is not None and spike_at <= t <= spike_at + 1800.0
        ]
        assert detections == []

    def test_validation(self):
        with pytest.raises(ValueError):
            SeasonalAnomalyDetector(threshold=0.0)
        with pytest.raises(ValueError):
            SeasonalAnomalyDetector(min_per_bin=1)
