"""Tests for anomaly detectors and changepoint detection."""

import numpy as np
import pytest

from repro.analytics.anomaly import (
    CusumDetector,
    EwmaControlChart,
    MadDetector,
    ZScoreDetector,
)
from repro.analytics.changepoint import PageHinkley


def feed(detector, values, t0=0.0, dt=1.0):
    """Feed values; return list of (index, anomaly)."""
    out = []
    for i, v in enumerate(values):
        a = detector.update(t0 + i * dt, float(v))
        if a is not None:
            out.append((i, a))
    return out


def quiet_then_spike(n_quiet=100, spike=50.0, rng=None, noise=1.0):
    rng = rng or np.random.default_rng(0)
    base = rng.normal(10.0, noise, size=n_quiet)
    return np.concatenate([base, [10.0 + spike]])


class TestZScoreDetector:
    def test_detects_spike(self):
        det = ZScoreDetector(window=50, threshold=4.0)
        hits = feed(det, quiet_then_spike())
        assert len(hits) == 1
        idx, anomaly = hits[0]
        assert idx == 100
        assert anomaly.score > 4.0
        assert anomaly.kind == "zscore"

    def test_no_false_positives_on_quiet_signal(self):
        rng = np.random.default_rng(1)
        det = ZScoreDetector(window=50, threshold=5.0)
        hits = feed(det, rng.normal(10, 1, size=1000))
        assert len(hits) <= 2  # ~5-sigma events are vanishingly rare

    def test_cold_start_suppressed(self):
        det = ZScoreDetector(window=50, threshold=3.0)
        # huge jump during warmup must not fire
        hits = feed(det, [1.0] * 10 + [100.0])
        assert hits == []

    def test_level_shift_keeps_firing(self):
        rng = np.random.default_rng(2)
        det = ZScoreDetector(window=20, threshold=4.0)
        values = list(rng.normal(10, 0.5, 30)) + [50.0] * 5
        hits = feed(det, values)
        # anomalous values never enter the window, so every shifted
        # sample keeps firing
        shifted_hits = [i for i, _ in hits if i >= 30]
        assert shifted_hits == [30, 31, 32, 33, 34]

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            ZScoreDetector(threshold=0.0)

    def test_scan_matches_sequential_updates(self):
        rng = np.random.default_rng(7)
        values = list(rng.normal(10, 1, 300))
        for spike_at in (120, 200):
            values[spike_at] = 100.0
        times = [float(i) for i in range(len(values))]
        seq = ZScoreDetector(window=50, threshold=4.0)
        seq_hits = [a.time for t, v in zip(times, values) if (a := seq.update(t, v))]
        bat = ZScoreDetector(window=50, threshold=4.0)
        bat_hits = [a.time for a in bat.scan(times, values)]
        assert bat_hits == seq_hits
        # window state after scan matches the sequential detector's
        assert bat.window.values().tolist() == seq.window.values().tolist()

    def test_scan_stable_for_large_mean_series(self):
        """Regression: shifted accumulators keep variance precision when
        the series mean dwarfs its spread (counters, byte totals)."""
        rng = np.random.default_rng(11)
        values = list(rng.normal(1e8, 1.0, 500))
        values[300] = 1e8 + 50.0
        times = [float(i) for i in range(len(values))]
        seq = ZScoreDetector(window=50, threshold=5.0)
        seq_hits = [a.time for t, v in zip(times, values) if (a := seq.update(t, v))]
        bat = ZScoreDetector(window=50, threshold=5.0)
        bat_hits = [a.time for a in bat.scan(times, values)]
        assert bat_hits == seq_hits
        assert 300.0 in bat_hits

    def test_scan_window_of_one_never_flags(self):
        det = ZScoreDetector(window=1, threshold=4.0)
        assert det.scan([0.0, 1.0, 2.0], [1.0, 100.0, 1.0]) == []

    def test_scan_resumes_from_prefilled_window(self):
        """Regression: a scan() after earlier updates (non-empty buffer)
        must work and agree with the sequential path."""
        seq = ZScoreDetector(window=10, threshold=4.0)
        bat = ZScoreDetector(window=10, threshold=4.0)
        warm = [float(v) for v in range(12)]
        for i, v in enumerate(warm):
            seq.update(float(i), v)
        bat.scan([float(i) for i in range(12)], warm)
        tail_t = [float(i) for i in range(12, 24)]
        tail_v = [5.0] * 6 + [500.0] + [5.0] * 5
        seq_hits = [a.time for t, v in zip(tail_t, tail_v) if (a := seq.update(t, v))]
        bat_hits = [a.time for a in bat.scan(tail_t, tail_v)]
        assert bat_hits == seq_hits


class TestMadDetector:
    def test_detects_spike_with_contaminated_window(self):
        rng = np.random.default_rng(3)
        det = MadDetector(window=50, threshold=6.0)
        base = list(rng.normal(10, 1, size=60))
        base[30] = 100.0  # prior outlier inside the window
        base.append(200.0)
        hits = feed(det, base)
        assert any(i == 60 for i, _ in hits)

    def test_quiet_signal_clean(self):
        rng = np.random.default_rng(4)
        det = MadDetector(window=50, threshold=8.0)
        hits = feed(det, rng.normal(0, 1, size=500))
        assert len(hits) <= 1


class TestEwmaControlChart:
    def test_detects_drift(self):
        rng = np.random.default_rng(5)
        det = EwmaControlChart(alpha=0.2, L=3.5, warmup=50)
        quiet = rng.normal(10, 1, size=100)
        drifted = rng.normal(14, 1, size=50)  # 4-sigma mean shift
        hits = feed(det, np.concatenate([quiet, drifted]))
        # detection must land shortly after the shift begins; occasional
        # boundary noise before is tolerated but must be rare
        in_shift = [i for i, _ in hits if i >= 100]
        assert in_shift and in_shift[0] <= 120
        assert len([i for i, _ in hits if i < 100]) <= 2

    def test_quiet_signal_mostly_clean(self):
        rng = np.random.default_rng(6)
        det = EwmaControlChart(alpha=0.2, L=3.5, warmup=50)
        hits = feed(det, rng.normal(10, 1, size=500))
        assert len(hits) < 10

    def test_warmup_validation(self):
        with pytest.raises(ValueError):
            EwmaControlChart(warmup=1)


class TestCusumDetector:
    def test_detects_small_persistent_shift(self):
        rng = np.random.default_rng(7)
        det = CusumDetector(k=0.5, h=5.0, warmup=50)
        quiet = rng.normal(10, 1, size=200)
        shifted = rng.normal(11.5, 1, size=100)  # 1.5 sigma shift
        hits = feed(det, np.concatenate([quiet, shifted]))
        # detection shortly after the shift; rare boundary alarms tolerated
        in_shift = [i for i, _ in hits if i >= 200]
        assert in_shift and in_shift[0] <= 230
        assert len([i for i, _ in hits if i < 200]) <= 2

    def test_detects_downward_shift(self):
        rng = np.random.default_rng(8)
        det = CusumDetector(k=0.5, h=5.0, warmup=50)
        data = np.concatenate([rng.normal(10, 1, 200), rng.normal(8, 1, 100)])
        hits = feed(det, data)
        assert hits
        assert "down" in hits[0][1].detail

    def test_resets_after_alarm(self):
        rng = np.random.default_rng(9)
        det = CusumDetector(k=0.5, h=4.0, warmup=30)
        data = np.concatenate(
            [rng.normal(10, 1, 100), rng.normal(14, 1, 50), rng.normal(14, 1, 50)]
        )
        hits = feed(det, data)
        assert len(hits) >= 2  # fires, resets, fires again on sustained shift


class TestPageHinkley:
    def test_detects_mean_increase(self):
        rng = np.random.default_rng(10)
        ph = PageHinkley(delta=0.05, threshold=20.0)
        data = np.concatenate([rng.normal(5, 0.5, 200), rng.normal(8, 0.5, 100)])
        cps = [ph.update(float(i), v) for i, v in enumerate(data)]
        detections = [c for c in cps if c is not None]
        assert detections
        first = detections[0]
        assert first.direction == "up"
        assert first.time >= 200

    def test_detects_mean_decrease(self):
        rng = np.random.default_rng(11)
        ph = PageHinkley(delta=0.05, threshold=20.0)
        data = np.concatenate([rng.normal(5, 0.5, 200), rng.normal(2, 0.5, 100)])
        detections = [c for i, v in enumerate(data) if (c := ph.update(float(i), v))]
        assert detections
        assert detections[0].direction == "down"

    def test_stationary_signal_no_detection(self):
        rng = np.random.default_rng(12)
        ph = PageHinkley(delta=0.1, threshold=50.0)
        detections = [
            c for i, v in enumerate(rng.normal(5, 0.5, 2000)) if (c := ph.update(float(i), v))
        ]
        assert detections == []

    def test_resets_after_detection(self):
        rng = np.random.default_rng(13)
        ph = PageHinkley(delta=0.02, threshold=10.0)
        data = np.concatenate(
            [rng.normal(0, 0.2, 100), rng.normal(3, 0.2, 100), rng.normal(6, 0.2, 100)]
        )
        detections = [c for i, v in enumerate(data) if (c := ph.update(float(i), v))]
        assert len(detections) >= 2

    def test_validation(self):
        with pytest.raises(ValueError):
            PageHinkley(threshold=0.0)
        with pytest.raises(ValueError):
            PageHinkley(min_samples=0)
