"""Federation exactness: property tests against single-store oracles.

Two oracles pin the federated engine down:

* **Partition invariance (bit-identical)** — the same engine over a
  single-shard store.  Per-series arithmetic happens on exactly one
  shard and the gather reduction runs in a canonical partition-free
  order, so results must be *bit-identical* for every shard count.
* **Semantics (1e-9)** — the legacy per-group :class:`QueryEngine` and
  the brute-force :func:`evaluate_naive` reference.  These pool samples
  in a different floating-point association order, so agreement is
  exact-or-tight-allclose rather than bitwise.

Randomized stores, shard counts, matchers, group-bys, aggregators, and
rollup fold boundaries; seeded RNG keeps every run deterministic.
"""

import numpy as np
import pytest

from repro.query import MetricQuery, QueryEngine, RollupManager, evaluate_naive
from repro.shard import FederatedQueryEngine, ShardedTimeSeriesStore
from repro.telemetry.metric import SeriesKey

from tests.query.test_property import assert_results_match, random_query

HORIZON = 1000.0


def build_stores(rng, n_shards, n_series=14, max_points=250, counter=False):
    """The same random series in a k-shard store, a 1-shard oracle store,
    and a plain single store."""
    from repro.telemetry.tsdb import TimeSeriesStore

    sharded = ShardedTimeSeriesStore(n_shards=n_shards, default_capacity=4096)
    oracle = ShardedTimeSeriesStore(n_shards=1, default_capacity=4096)
    single = TimeSeriesStore(default_capacity=4096)
    for i in range(n_series):
        key = SeriesKey.of(
            "ctr" if counter else "m",
            node=f"n{i % 5}",
            shard=str(i),
            rack=f"r{i % 3}",
        )
        n = int(rng.integers(2, max_points))
        times = np.sort(rng.uniform(0, HORIZON, size=n))
        if counter:
            values = np.cumsum(rng.exponential(5.0, size=n))
        else:
            values = rng.normal(50.0, 20.0, size=n)
        for store in (sharded, oracle, single):
            store.insert_batch(key, times, values)
    return sharded, oracle, single


def assert_bit_identical(got, want):
    assert len(got.series) == len(want.series), (
        f"series count {len(got.series)} != {len(want.series)} for {got.query}"
    )
    for a, b in zip(got.series, want.series):
        assert a.labels == b.labels
        assert np.array_equal(a.times, b.times)
        assert np.array_equal(a.values, b.values), (
            f"bitwise mismatch for {got.query} {a.labels}"
        )


@pytest.mark.parametrize("seed,n_shards", [(s, k) for s in range(4) for k in (2, 3, 5, 8)])
def test_federated_bit_identical_to_single_shard_oracle(seed, n_shards):
    rng = np.random.default_rng(1000 * seed + n_shards)
    sharded, oracle, single = build_stores(rng, n_shards)
    fed = FederatedQueryEngine(sharded, enable_cache=False)
    fed1 = FederatedQueryEngine(oracle, enable_cache=False)
    qe = QueryEngine(single, enable_cache=False)
    for _ in range(10):
        q = random_query(rng)
        at = float(rng.uniform(HORIZON * 0.5, HORIZON * 1.1))
        got = fed.query(q, at=at)
        assert_bit_identical(got, fed1.query(q, at=at))
        assert_results_match(got, qe.query(q, at=at))
        assert_results_match(got, evaluate_naive(single, q, at=at))


@pytest.mark.parametrize("seed,n_shards", [(0, 2), (1, 3), (2, 5), (3, 8)])
def test_federated_bit_identical_with_rollup_boundaries(seed, n_shards):
    """Tier+raw-tail stitching must stay partition-invariant across
    random fold boundaries (per-shard tiers fold at the same instant)."""
    rng = np.random.default_rng(5000 + 100 * seed + n_shards)
    sharded, oracle, single = build_stores(rng, n_shards)
    fed = FederatedQueryEngine.with_rollups(sharded, resolutions=(10.0, 50.0), enable_cache=False)
    fed1 = FederatedQueryEngine.with_rollups(oracle, resolutions=(10.0, 50.0), enable_cache=False)
    rollups = RollupManager(single, resolutions=(10.0, 50.0))
    qe = QueryEngine(single, rollups=rollups, enable_cache=False)
    boundary = float(rng.uniform(HORIZON * 0.5, HORIZON))
    fed.fold_rollups(boundary)
    fed1.fold_rollups(boundary)
    rollups.fold(boundary)
    served_rollup = 0
    for _ in range(12):
        q = random_query(rng)
        at = float(rng.uniform(HORIZON * 0.5, HORIZON * 1.1))
        got = fed.query(q, at=at)
        assert_bit_identical(got, fed1.query(q, at=at))
        assert_results_match(got, qe.query(q, at=at))
        assert_results_match(got, evaluate_naive(single, q, at=at))
        served_rollup += got.source == "federated:rollup"
    assert fed.served_rollup == served_rollup


@pytest.mark.parametrize("seed,n_shards", [(0, 3), (1, 8)])
def test_federated_rate_matches_oracles(seed, n_shards):
    rng = np.random.default_rng(7000 + 10 * seed + n_shards)
    sharded, oracle, single = build_stores(rng, n_shards, counter=True)
    fed = FederatedQueryEngine(sharded, enable_cache=False)
    fed1 = FederatedQueryEngine(oracle, enable_cache=False)
    qe = QueryEngine(single, enable_cache=False)
    for _ in range(8):
        base = random_query(rng, metric="ctr")
        q = MetricQuery(
            "ctr", agg="rate", matchers=base.matchers, range_s=base.range_s,
            step_s=base.step_s, group_by=base.group_by,
        )
        at = float(rng.uniform(HORIZON * 0.5, HORIZON * 1.1))
        got = fed.query(q, at=at)
        assert_bit_identical(got, fed1.query(q, at=at))
        assert_results_match(got, qe.query(q, at=at))
        assert_results_match(got, evaluate_naive(single, q, at=at))


def test_federated_cache_and_fanout_counters():
    rng = np.random.default_rng(42)
    sharded, _, _ = build_stores(rng, 4)
    fed = FederatedQueryEngine(sharded)
    q = MetricQuery("m", agg="mean", range_s=600.0, step_s=60.0, group_by=("node",))
    first = fed.query(q, at=900.0)
    hit = fed.query(q, at=900.0)
    assert hit.source == "cache"
    assert_bit_identical(hit, first)
    stats = fed.stats()
    assert stats["shards"] == 4.0
    assert stats["federated_queries"] == 1.0  # cache hit never re-scattered
    assert 1.0 <= stats["fanout_mean"] <= 4.0
    assert stats["cache_hits"] == 1.0


def test_federated_cache_invalidated_by_any_shard_commit():
    rng = np.random.default_rng(43)
    sharded, _, _ = build_stores(rng, 4)
    fed = FederatedQueryEngine(sharded)
    q = MetricQuery("m", agg="count", range_s=600.0, step_s=60.0)
    before = fed.query(q, at=900.0)
    assert fed.query(q, at=900.0).source == "cache"
    # a commit on whichever shard owns this key mints a new epoch sum,
    # so the next evaluation misses the pre-commit entry and re-scatters
    key = sharded.series_keys("m")[0]
    last_t, _ = sharded.latest(key)
    sharded.insert(key, max(last_t, HORIZON) + 100.0, 123.0)
    after = fed.query(q, at=900.0)
    assert after.source != "cache"
    assert_bit_identical(after, before)  # commit landed outside the window


def test_federated_serves_aged_out_instant_from_shard_tiers():
    """Singleton instant queries past ring retention answer from the
    owning shard's tiers, matching the single-store engine's fallback —
    and stay partition-invariant."""
    from repro.telemetry.tsdb import TimeSeriesStore

    key = SeriesKey.of("m", node="n0")

    def filled(store_factory):
        store = store_factory()
        store.set_capacity("m", 32)
        if isinstance(store, ShardedTimeSeriesStore):
            fed = FederatedQueryEngine.with_rollups(
                store, resolutions=(10.0,), enable_cache=False
            )
        else:
            fed = QueryEngine(
                store, rollups=RollupManager(store, resolutions=(10.0,)), enable_cache=False
            )
        for i in range(400):
            store.insert(key, float(i), float(i))
            if i % 10 == 9:
                if isinstance(fed, FederatedQueryEngine):
                    fed.fold_rollups(float(i))
                else:
                    fed.rollups.fold(float(i))
        return fed

    fed = filled(lambda: ShardedTimeSeriesStore(n_shards=4))
    fed1 = filled(lambda: ShardedTimeSeriesStore(n_shards=1))
    qe = filled(lambda: TimeSeriesStore())
    q = MetricQuery("m", agg="mean", range_s=100.0, group_by=("node",))
    got = fed.query(q, at=200.0)  # ring holds only ~[368, 399]
    assert got.source == "federated:rollup"
    assert_bit_identical(got, fed1.query(q, at=200.0))
    want = qe.query(q, at=200.0)
    assert want.source.startswith("rollup:")
    assert got.series[0].values[0] == want.series[0].values[0]


def test_samples_read_matches_plain_engine():
    from repro.telemetry.tsdb import TimeSeriesStore

    rng = np.random.default_rng(44)
    sharded, _, single = build_stores(rng, 4)
    fed = FederatedQueryEngine(sharded, enable_cache=False)
    qe = QueryEngine(single, enable_cache=False)
    q = MetricQuery("m", agg="mean", range_s=400.0)
    ft, fv = fed.samples(q, at=950.0)
    st, sv = qe.samples(q, at=950.0)
    assert np.array_equal(ft, st)
    assert np.array_equal(fv, sv)
