"""Standing queries over sharded stores.

Shard-local standing state gathered with the canonical lexsort+reduceat
merge must be partition-invariant: the same history partitioned across
1, 3, or 4 shards — or maintained worker-side under the process pool —
answers every registered shape identically to the single-pass batch
evaluation.
"""

import numpy as np
import pytest

from repro.query import MetricQuery
from repro.query.standing import StandingQueryEngine
from repro.shard import (
    FederatedQueryEngine,
    ParallelFederatedQueryEngine,
    ParallelShardedStore,
    ShardedTimeSeriesStore,
)
from repro.telemetry.metric import SeriesKey

QUERIES = [
    MetricQuery("m", agg="mean", range_s=400.0, step_s=60.0, group_by=("node",)),
    MetricQuery("m", agg="max", range_s=300.0, step_s=30.0),
    MetricQuery("m", agg="last", range_s=500.0, step_s=50.0, group_by=("node",)),
    MetricQuery("m", agg="count", range_s=400.0, step_s=60.0, group_by=("node", "shard")),
    MetricQuery("ctr", agg="rate", range_s=400.0, step_s=60.0, group_by=("node",)),
]


def commit_rounds(seed, n_series=10, rounds=6, counter=False):
    """Interleaved per-series commit slices with monotone times."""
    rng = np.random.default_rng(seed)
    metric = "ctr" if counter else "m"
    keys = [
        SeriesKey.of(metric, node=f"n{i % 3}", shard=str(i)) for i in range(n_series)
    ]
    level = {k: 0.0 for k in keys}
    tcur = {k: 0.0 for k in keys}
    out = []
    for _ in range(rounds):
        batch = []
        for k in keys:
            n = int(rng.integers(0, 8))
            if n == 0:
                continue
            ts = tcur[k] + np.cumsum(rng.uniform(1.0, 30.0, size=n))
            tcur[k] = float(ts[-1])
            if counter:
                vs = level[k] + np.cumsum(rng.exponential(5.0, size=n))
                level[k] = float(vs[-1])
            else:
                vs = rng.normal(50.0, 20.0, size=n)
            batch.append((k, ts, vs))
        out.append(batch)
    return out


def assert_standing_matches(got, want):
    assert got is not None, f"standing fell back for {want.query}"
    assert got.source == "standing"
    assert len(got.series) == len(want.series)
    for a, b in zip(got.series, want.series):
        assert a.labels == b.labels
        np.testing.assert_array_equal(a.times, b.times)
        np.testing.assert_allclose(a.values, b.values, rtol=1e-9, atol=1e-9)


@pytest.mark.parametrize("n_shards", [1, 3, 4])
def test_federated_standing_matches_batch(n_shards):
    store = ShardedTimeSeriesStore(n_shards=n_shards, default_capacity=4096)
    engine = FederatedQueryEngine(store, enable_cache=False)
    st = StandingQueryEngine(engine)
    for q in QUERIES:
        assert st.register(q)
    at = 0.0
    for batch, cbatch in zip(commit_rounds(7), commit_rounds(8, counter=True)):
        for k, ts, vs in batch + cbatch:
            store.insert_batch(k, ts, vs)
            at = max(at, float(ts[-1]))
        for q in QUERIES:
            assert_standing_matches(st.query(q, at=at), engine.query(q, at=at))
    stats = st.stats()
    assert stats["reads_served"] > 0
    assert stats["scan_fallbacks"] == 0


def test_parallel_standing_matches_serial_reference_through_crash():
    """Worker-side grids fed by the shard event stream answer exactly —
    including after a worker crash, where the respawned worker replays
    its shard state (rings + standing registrations) from shared memory.
    One read may observe the crash and fall back; the next is exact."""
    with ParallelShardedStore(n_shards=4, default_capacity=4096, workers=2) as pstore:
        pstore.create_tiersets((10.0, 60.0))
        pstore.start_parallel()
        engine = ParallelFederatedQueryEngine(pstore, enable_cache=False)
        st = StandingQueryEngine(engine)
        ref = ShardedTimeSeriesStore(n_shards=4, default_capacity=4096)
        ref_engine = FederatedQueryEngine(ref, enable_cache=False)
        for q in QUERIES:
            assert st.register(q)
        at = 0.0
        rounds = list(zip(commit_rounds(7), commit_rounds(8, counter=True)))
        for i, (batch, cbatch) in enumerate(rounds):
            for k, ts, vs in batch + cbatch:
                gid = pstore.registry.id_for(k)
                pstore.append_batch(np.full(ts.size, gid, dtype=np.int64), ts, vs)
                ref.insert_batch(k, ts, vs)
                at = max(at, float(ts[-1]))
            if i == 2:
                pstore.pool.inject_crash(0)
            for q in QUERIES:
                got = st.query(q, at=at)
                if got is None:
                    # the dispatch that detects the dead worker loses its
                    # tasks by design; the retry hits the respawned worker
                    got = st.query(q, at=at)
                assert_standing_matches(got, ref_engine.query(q, at=at))
        assert pstore.pool.respawns_total == 1
        assert not pstore.pool.broken
        assert pstore.parallel_active
        stats = st.stats()
        assert stats["standing_scatters"] > 0
        assert stats["scan_fallbacks"] <= len(QUERIES)
