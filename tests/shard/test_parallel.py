"""Process-parallel shard execution: exactness, degradation, lifecycle.

The parallel tier's contract is *bit-identicality*: the worker pool runs
the very same per-shard pass functions the serial loop runs and the
gather is untouched, so results must equal serial federated execution
exactly — for every worker count, for every query shape, with rollup
tiers folded inside the workers, and across every degradation path
(worker crash during append, scatter, or fold).  These tests pin all of
that to the serial engine and the single-shard oracle, plus the
``append_segments`` edge cases and the ``ClusterConfig(parallel=)``
wiring.
"""

import numpy as np
import pytest

from repro.query import MetricQuery
from repro.shard import (
    FederatedQueryEngine,
    ParallelFederatedQueryEngine,
    ParallelShardContext,
    ParallelShardedStore,
    ShardedTimeSeriesStore,
)
from repro.telemetry.metric import SeriesKey

from tests.query.test_property import random_query
from tests.shard.test_federation_property import assert_bit_identical

HORIZON = 1000.0


def series_data(seed, n_series=12, max_points=60, counter=False):
    """Deterministic per-series columns shared by every store under test."""
    rng = np.random.default_rng(seed)
    out = []
    for i in range(n_series):
        key = SeriesKey.of(
            "ctr" if counter else "m", node=f"n{i % 4}", shard=str(i)
        )
        n = int(rng.integers(2, max_points))
        times = np.sort(rng.uniform(0, HORIZON, size=n))
        if counter:
            values = np.cumsum(rng.exponential(5.0, size=n))
        else:
            values = rng.normal(50.0, 20.0, size=n)
        out.append((key, times, values))
    return out


def fill_serial(store, data):
    for key, times, values in data:
        store.insert_batch(key, times, values)


def fill_through_pool(store, data):
    """Commit through ``append_batch`` so the pool executes the appends
    (single-series batches — also an ``append_segments`` edge case)."""
    for key, times, values in data:
        gid = store.registry.id_for(key)
        store.append_batch(np.full(times.size, gid, dtype=np.int64), times, values)


def parallel_store(data, n_shards, workers, *, resolutions=None, respawn=True):
    store = ParallelShardedStore(
        n_shards=n_shards, default_capacity=4096, workers=workers, respawn=respawn
    )
    if resolutions is not None:
        store.create_tiersets(resolutions)
    store.start_parallel()
    fill_through_pool(store, data)
    return store


# ---------------------------------------------------------------------------
# Bit-identicality properties


@pytest.mark.parametrize("workers,n_shards", [(1, 3), (2, 4), (3, 5)])
def test_parallel_bit_identical_to_serial_across_worker_counts(workers, n_shards):
    data = series_data(100 * workers + n_shards)
    serial_sharded = ShardedTimeSeriesStore(n_shards=n_shards, default_capacity=4096)
    oracle = ShardedTimeSeriesStore(n_shards=1, default_capacity=4096)
    fill_serial(serial_sharded, data)
    fill_serial(oracle, data)
    with parallel_store(data, n_shards, workers) as store:
        par = ParallelFederatedQueryEngine(store, enable_cache=False)
        ser = FederatedQueryEngine(serial_sharded, enable_cache=False)
        orc = FederatedQueryEngine(oracle, enable_cache=False)
        rng = np.random.default_rng(workers)
        for _ in range(10):
            q = random_query(rng)
            at = float(rng.uniform(HORIZON * 0.5, HORIZON * 1.1))
            got = par.query(q, at=at)
            assert_bit_identical(got, ser.query(q, at=at))
            assert_bit_identical(got, orc.query(q, at=at))
        assert par.parallel_scatters > 0
        assert par.serial_fallbacks == 0
        assert store.parallel_appends == len(data)


def test_parallel_samples_and_rate_match_serial():
    data = series_data(7, counter=True)
    serial_sharded = ShardedTimeSeriesStore(n_shards=4, default_capacity=4096)
    fill_serial(serial_sharded, data)
    with parallel_store(data, 4, 2) as store:
        par = ParallelFederatedQueryEngine(store, enable_cache=False)
        ser = FederatedQueryEngine(serial_sharded, enable_cache=False)
        q = MetricQuery("ctr", agg="rate", range_s=400.0, step_s=60.0, group_by=("node",))
        assert_bit_identical(par.query(q, at=950.0), ser.query(q, at=950.0))
        q_samples = MetricQuery("ctr", agg="mean", range_s=400.0)
        pt, pv = par.samples(q_samples, at=950.0)
        st, sv = ser.samples(q_samples, at=950.0)
        assert np.array_equal(pt, st)
        assert np.array_equal(pv, sv)


def test_parallel_rollup_folds_match_serial():
    """Worker-side tier folds + the parallel fold fan-out must be
    bit-identical to the serial per-shard RollupManager cascades —
    including which source (raw vs rollup) serves each query."""
    data = series_data(11)
    serial_sharded = ShardedTimeSeriesStore(n_shards=4, default_capacity=4096)
    fill_serial(serial_sharded, data)
    ser = FederatedQueryEngine.with_rollups(
        serial_sharded, resolutions=(10.0, 50.0), enable_cache=False
    )
    with parallel_store(data, 4, 2, resolutions=(10.0, 50.0)) as store:
        par = ParallelFederatedQueryEngine(store, enable_cache=False)
        for boundary in (HORIZON * 0.4, HORIZON * 0.8):
            assert par.fold_rollups(boundary) == ser.fold_rollups(boundary)
        rng = np.random.default_rng(5)
        for _ in range(12):
            q = random_query(rng)
            at = float(rng.uniform(HORIZON * 0.5, HORIZON * 1.1))
            got, want = par.query(q, at=at), ser.query(q, at=at)
            assert got.source.replace("federated:", "") == want.source.replace(
                "federated:", ""
            )
            assert_bit_identical(got, want)
        assert par.parallel_folds == 2


# ---------------------------------------------------------------------------
# Worker-crash degradation


def test_worker_crash_append_recovery_and_serial_fallback():
    data = series_data(21, n_series=10)
    halves = [
        [(k, t[: t.size // 2], v[: v.size // 2]) for k, t, v in data],
        [(k, t[t.size // 2:], v[v.size // 2:]) for k, t, v in data],
    ]
    reference = ShardedTimeSeriesStore(n_shards=4, default_capacity=4096)
    fill_serial(reference, data)
    with ParallelShardedStore(
        n_shards=4, default_capacity=4096, workers=2, respawn=False
    ) as store:
        store.start_parallel()
        fill_through_pool(store, halves[0])
        store.pool.inject_crash(0)
        # the next commit sees the dead worker: its shards' segments are
        # re-applied by the parent against the same shared rings
        fill_through_pool(store, halves[1])
        assert store.pool.broken
        assert store.append_recoveries > 0
        assert store.serial_appends > 0  # post-crash commits run serially
        par = ParallelFederatedQueryEngine(store, enable_cache=False)
        ser = FederatedQueryEngine(reference, enable_cache=False)
        rng = np.random.default_rng(3)
        for _ in range(8):
            q = random_query(rng)
            at = float(rng.uniform(HORIZON * 0.5, HORIZON * 1.1))
            assert_bit_identical(par.query(q, at=at), ser.query(q, at=at))
        assert par.serial_fallbacks > 0
        assert par.parallel_scatters == 0


def test_worker_crash_degraded_fold_matches_serial():
    data = series_data(31)
    serial_sharded = ShardedTimeSeriesStore(n_shards=4, default_capacity=4096)
    fill_serial(serial_sharded, data)
    ser = FederatedQueryEngine.with_rollups(
        serial_sharded, resolutions=(10.0, 50.0), enable_cache=False
    )
    with parallel_store(data, 4, 2, resolutions=(10.0, 50.0), respawn=False) as store:
        par = ParallelFederatedQueryEngine(store, enable_cache=False)
        store.pool.inject_crash(1)
        # fold fan-out hits the dead worker: its shards re-fold in the
        # parent from the shared rings (watermarks make this idempotent)
        assert par.fold_rollups(HORIZON * 0.8) == ser.fold_rollups(HORIZON * 0.8)
        rng = np.random.default_rng(9)
        for _ in range(8):
            q = random_query(rng)
            at = float(rng.uniform(HORIZON * 0.5, HORIZON * 1.1))
            assert_bit_identical(par.query(q, at=at), ser.query(q, at=at))


def test_crash_then_more_ingest_and_parent_folds_stay_exact():
    """Post-crash serial ingest + parent-side folding over the shared
    rings must keep matching the serial engine (full degraded mode)."""
    data = series_data(41, n_series=8)
    serial_sharded = ShardedTimeSeriesStore(n_shards=3, default_capacity=4096)
    ser = FederatedQueryEngine.with_rollups(
        serial_sharded, resolutions=(20.0,), enable_cache=False
    )
    with parallel_store(data[:4], 3, 2, resolutions=(20.0,), respawn=False) as store:
        par = ParallelFederatedQueryEngine(store, enable_cache=False)
        store.pool.inject_crash(0)
        fill_through_pool(store, data[4:])  # lands serially after the crash
        fill_serial(serial_sharded, data)
        assert par.fold_rollups(HORIZON * 0.9) == ser.fold_rollups(HORIZON * 0.9)
        q = MetricQuery("m", agg="mean", range_s=HORIZON, step_s=50.0, group_by=("node",))
        assert_bit_identical(par.query(q, at=HORIZON), ser.query(q, at=HORIZON))


def test_worker_respawn_restores_parallel_execution():
    """With respawn on (the default), a crash costs one dispatch: the
    dead worker's tasks are recovered by the parent, the worker is
    respawned with its shard meta replayed from shm, and subsequent
    appends, scatters, and folds run parallel again — bit-identical to
    serial throughout."""
    data = series_data(51, n_series=10)
    halves = [
        [(k, t[: t.size // 2], v[: v.size // 2]) for k, t, v in data],
        [(k, t[t.size // 2:], v[v.size // 2:]) for k, t, v in data],
    ]
    serial_sharded = ShardedTimeSeriesStore(n_shards=4, default_capacity=4096)
    ser = FederatedQueryEngine.with_rollups(
        serial_sharded, resolutions=(10.0, 50.0), enable_cache=False
    )
    with parallel_store(halves[0], 4, 2, resolutions=(10.0, 50.0)) as store:
        par = ParallelFederatedQueryEngine(store, enable_cache=False)
        par.fold_rollups(HORIZON * 0.3)  # worker-side tier rings exist
        store.pool.inject_crash(0)
        fill_through_pool(store, halves[1])  # detects death, recovers, respawns
        fill_serial(serial_sharded, data)
        assert store.pool.respawns_total == 1
        assert not store.pool.broken
        assert store.append_recoveries > 0  # the detecting batch was lost
        assert store.serial_appends == 0  # later commits ran parallel again
        ser.fold_rollups(HORIZON * 0.3)
        assert par.fold_rollups(HORIZON * 0.9) == ser.fold_rollups(HORIZON * 0.9)
        scatters_before = par.parallel_scatters
        rng = np.random.default_rng(13)
        for _ in range(8):
            q = random_query(rng)
            at = float(rng.uniform(HORIZON * 0.5, HORIZON * 1.1))
            assert_bit_identical(par.query(q, at=at), ser.query(q, at=at))
        assert par.parallel_scatters > scatters_before
        assert par.serial_fallbacks == 0
        assert store.shard_stats()["pool_respawns_total"] == 1.0


# ---------------------------------------------------------------------------
# append_segments / append_batch edge cases


@pytest.mark.parametrize("start_pool", [False, True])
def test_append_batch_empty_is_noop(start_pool):
    with ParallelShardedStore(n_shards=3, default_capacity=64, workers=2) as store:
        if start_pool:
            store.start_parallel()
        empty = np.empty(0, dtype=np.int64)
        store.append_batch(empty, np.empty(0), np.empty(0))
        assert store.total_inserts == 0
        assert store.parallel_appends == 0


def test_append_segments_empty_segment_arrays_are_noop():
    with ParallelShardedStore(n_shards=2, default_capacity=64, workers=1) as store:
        shard = store.shards[0]
        empty_i = np.empty(0, dtype=np.int64)
        shard.append_segments(empty_i, np.empty(0), np.empty(0), empty_i, empty_i)
        assert shard.total_inserts == 0


@pytest.mark.parametrize("start_pool", [False, True])
def test_append_batch_single_series_matches_serial(start_pool):
    key = SeriesKey.of("m", node="n0")
    times = np.arange(0.0, 50.0, 1.0)
    values = np.sin(times)
    with ParallelShardedStore(n_shards=3, default_capacity=64, workers=2) as store:
        if start_pool:
            store.start_parallel()
        gid = store.registry.id_for(key)
        store.append_batch(np.full(times.size, gid, dtype=np.int64), times, values)
        t, v = store.query(key, -np.inf, np.inf)
        assert np.array_equal(t, times)
        assert np.array_equal(v, values)
        assert store.total_inserts == times.size


@pytest.mark.parametrize("start_pool", [False, True])
def test_append_batch_rejects_uninterned_ids(start_pool):
    with ParallelShardedStore(n_shards=3, default_capacity=64, workers=2) as store:
        if start_pool:
            store.start_parallel()
        store.registry.id_for(SeriesKey.of("m", node="n0"))  # gid 0 exists
        with pytest.raises(IndexError):
            store.append_batch(
                np.array([0, 7], dtype=np.int64), np.array([1.0, 2.0]), np.ones(2)
            )
        assert store.total_inserts == 0  # nothing partially committed


def test_shard_append_segments_rejects_out_of_range_sid():
    with ParallelShardedStore(n_shards=2, default_capacity=64, workers=1) as store:
        shard = store.shards[0]
        with pytest.raises(IndexError):
            shard.append_segments(
                np.array([99], dtype=np.int64),
                np.array([1.0]),
                np.array([2.0]),
                np.array([0], dtype=np.int64),
                np.array([1], dtype=np.int64),
            )


# ---------------------------------------------------------------------------
# Lifecycle and cluster wiring


def test_context_lifecycle_and_stats():
    data = series_data(51, n_series=6)
    with ParallelShardContext(shards=3, workers=2, capacity=256) as ctx:
        fill_through_pool(ctx.store, data)
        q = MetricQuery("m", agg="mean", range_s=HORIZON, step_s=100.0, group_by=("node",))
        ctx.engine.query(q, at=HORIZON)
        stats = ctx.engine.stats()
        assert stats["parallel_scatters"] >= 1.0
        assert stats["serial_fallbacks"] == 0.0
        assert stats["pool_workers"] == 2.0
        assert stats["pool_dispatches"] >= 1.0
        store_stats = ctx.store.shard_stats()
        assert store_stats["parallel_appends"] == float(len(data))
    ctx.close()  # idempotent after the context manager already closed


def test_cluster_config_validation():
    from repro.cluster import ClusterConfig

    with pytest.raises(ValueError):
        ClusterConfig(parallel=-1)
    with pytest.raises(ValueError):
        ClusterConfig(shards=1, parallel=2)
    ClusterConfig(shards=4, parallel=2)  # valid


def test_cluster_parallel_matches_serial_sharded():
    from repro.cluster import Cluster, ClusterConfig
    from repro.sim import Engine

    results = {}
    for parallel in (0, 2):
        engine = Engine()
        with Cluster(
            engine,
            ClusterConfig(
                n_nodes=6, telemetry_period_s=10.0, seed=3, shards=4, parallel=parallel
            ),
        ) as cluster:
            if parallel:
                assert isinstance(cluster.store, ParallelShardedStore)
                assert cluster.store.parallel_active
            qe = cluster.query_engine(rollup_resolutions=(30.0, 120.0))
            engine.run(until=240.0)
            qe.fold_rollups(engine.now)
            results[parallel] = qe.query(
                "mean(node_cpu_util[120s] by 30s) group by (node)", at=engine.now
            )
        if parallel:
            assert not cluster.store.pool.active  # close() released the pool
    assert results[2].series  # the shift produced data
    assert_bit_identical(results[2], results[0])
