"""Stack wiring: a sharded cluster serves loops and queries unchanged."""

import numpy as np

from repro.cluster import Cluster, ClusterConfig
from repro.query.engine import QueryEngine
from repro.shard import FederatedQueryEngine, ShardedTimeSeriesStore
from repro.sim import Engine


def _cluster(shards, n_nodes=12, horizon=None, seed=5):
    engine = Engine()
    cluster = Cluster(
        engine,
        ClusterConfig(n_nodes=n_nodes, shards=shards, telemetry_period_s=10.0, seed=seed),
    )
    if horizon is not None:
        engine.run(until=horizon)
    return engine, cluster


def test_cluster_builds_sharded_store_and_federated_engine():
    _, cluster = _cluster(shards=4)
    assert isinstance(cluster.store, ShardedTimeSeriesStore)
    assert cluster.store.n_shards == 4
    assert isinstance(cluster.query_engine(), FederatedQueryEngine)
    runtime = cluster.loop_runtime()
    assert isinstance(runtime.query_engine, FederatedQueryEngine)
    assert runtime.store is cluster.store


def test_query_engine_memoized_per_configuration():
    _, cluster = _cluster(shards=4)
    a = cluster.query_engine(rollup_resolutions=(60.0,))
    b = cluster.query_engine(rollup_resolutions=(60.0,))
    assert a is b  # repeated calls must not stack rollup listeners
    c = cluster.query_engine()
    assert c is not a
    assert cluster.query_engine() is c
    # one manager per shard registered exactly once
    assert all(len(s._listeners) == 1 for s in cluster.store.shards)


def test_single_shard_config_keeps_plain_store():
    _, cluster = _cluster(shards=1)
    assert not isinstance(cluster.store, ShardedTimeSeriesStore)
    qe = cluster.query_engine()
    assert isinstance(qe, QueryEngine)
    assert not isinstance(qe, FederatedQueryEngine)


def test_collector_routes_telemetry_across_shards():
    engine, cluster = _cluster(shards=4, horizon=300.0)
    # every node's sensors committed through the routed batch path
    cards = cluster.store.shard_cardinalities()
    assert sum(cards) == cluster.store.cardinality() > 0
    assert sum(1 for c in cards if c > 0) >= 2  # routing actually spread keys
    res = cluster.query_engine().query(
        "mean(node_cpu_util[120s]) group by (node)", at=engine.now
    )
    assert len(res.series) == len(cluster.nodes)
    assert res.source == "federated:raw"


def test_sharded_and_unsharded_clusters_store_identical_telemetry():
    engine_a, plain = _cluster(shards=1, horizon=400.0)
    engine_b, sharded = _cluster(shards=4, horizon=400.0)
    keys = plain.store.series_keys()
    assert keys == sharded.store.series_keys()
    for key in keys:
        ta, va = plain.store.query(key, -np.inf, np.inf)
        tb, vb = sharded.store.query(key, -np.inf, np.inf)
        assert np.array_equal(ta, tb)
        assert np.array_equal(va, vb)


def test_loop_runtime_monitors_read_through_federation():
    from repro.experiments.loops_exp import watch_fleet_specs

    engine, cluster = _cluster(shards=4, n_nodes=8)
    runtime = cluster.loop_runtime()
    specs = watch_fleet_specs(
        "node_cpu_util", cluster.node_ids(), 8,
        period_s=60.0, window_s=300.0, threshold=0.5,
    )
    for spec in specs:
        spec.start_at = 120.0
    runtime.add_many(specs, start=True)
    engine.run(until=600.0)
    runtime.stop()
    stats = runtime.stats()
    assert stats["iterations_total"] > 0
    assert stats["hub_fused_served"] > 0  # fusion layered over federation
    assert stats["hub_engine_federated_queries"] > 0
    # self-telemetry round-trips through the sharded store
    val = runtime.query_engine.scalar("mean(loop_iteration_ms)", at=engine.now)
    assert val is not None and val >= 0.0
