"""Sharded store: routing determinism, API parity, ingest equivalence."""

import numpy as np
import pytest

from repro.shard import ShardedTimeSeriesStore, shard_of_key
from repro.telemetry.metric import SeriesKey
from repro.telemetry.tsdb import TimeSeriesStore


def _keys(n, metrics=2):
    return [
        SeriesKey.of(f"metric{m}", node=f"n{i:03d}")
        for i in range(n)
        for m in range(metrics)
    ]


def test_routing_is_deterministic_and_total():
    keys = _keys(50)
    for n_shards in (1, 2, 3, 8):
        first = [shard_of_key(k, n_shards) for k in keys]
        again = [shard_of_key(k, n_shards) for k in keys]
        assert first == again
        assert all(0 <= s < n_shards for s in first)


def test_series_land_on_exactly_one_shard():
    store = ShardedTimeSeriesStore(n_shards=4)
    for key in _keys(30):
        store.insert(key, 1.0, 2.0)
    for key in _keys(30):
        owners = [s for s in store.shards if s.has(key)]
        assert len(owners) == 1
        assert owners[0] is store.shard_for(key)
    assert store.cardinality() == 60
    assert sum(store.shard_cardinalities()) == 60


@pytest.mark.parametrize("n_shards", [1, 2, 3, 5, 8])
def test_append_batch_matches_single_store(n_shards):
    rng = np.random.default_rng(n_shards)
    keys = _keys(25, metrics=3)
    single = TimeSeriesStore(default_capacity=256)
    sharded = ShardedTimeSeriesStore(n_shards=n_shards, default_capacity=256)
    sid_s = np.array([single.registry.id_for(k) for k in keys])
    sid_f = np.array([sharded.registry.id_for(k) for k in keys])
    t = 0.0
    for _ in range(12):
        n_rows = int(rng.integers(20, 200))
        rows = rng.integers(0, len(keys), size=n_rows)
        times = t + rng.uniform(0, 5.0, size=n_rows)
        values = rng.normal(size=n_rows)
        single.append_batch(sid_s[rows], times, values)
        sharded.append_batch(sid_f[rows], times, values)
        t += 5.0
    assert sharded.total_inserts == single.total_inserts
    assert sharded.series_keys() == single.series_keys()
    for key in single.series_keys():
        st, sv = single.query(key, -np.inf, np.inf)
        ft, fv = sharded.query(key, -np.inf, np.inf)
        assert np.array_equal(st, ft)
        assert np.array_equal(sv, fv)


def test_append_batch_rejects_foreign_ids():
    store = ShardedTimeSeriesStore(n_shards=2)
    store.registry.id_for(SeriesKey.of("m", node="a"))
    with pytest.raises(IndexError):
        store.append_batch(
            np.array([5]), np.array([1.0]), np.array([2.0])
        )


def test_ring_wraparound_matches_single_store():
    keys = _keys(10)
    single = TimeSeriesStore(default_capacity=16)
    sharded = ShardedTimeSeriesStore(n_shards=3, default_capacity=16)
    sid_s = np.array([single.registry.id_for(k) for k in keys])
    sid_f = np.array([sharded.registry.id_for(k) for k in keys])
    for tick in range(40):  # 40 points into capacity-16 rings
        times = np.full(len(keys), float(tick))
        values = np.arange(len(keys), dtype=float) + tick
        single.append_batch(sid_s, times, values)
        sharded.append_batch(sid_f, times, values)
    for key in keys:
        st, sv = single.query(key, -np.inf, np.inf)
        ft, fv = sharded.query(key, -np.inf, np.inf)
        assert st.size == 16
        assert np.array_equal(st, ft)
        assert np.array_equal(sv, fv)


def test_global_listener_sees_all_rows_with_global_ids():
    store = ShardedTimeSeriesStore(n_shards=4)
    keys = _keys(20)
    sids = np.array([store.registry.id_for(k) for k in keys])
    seen = []
    store.add_ingest_listener(lambda ids, t, v: seen.append((ids.copy(), t.copy(), v.copy())))
    store.append_batch(sids, np.zeros(len(keys)), np.arange(len(keys), dtype=float))
    total = sum(ids.size for ids, _, _ in seen)
    assert total == len(keys)
    for ids, times, values in seen:
        for sid, v in zip(ids, values):
            key = store.registry.key_for(int(sid))  # global namespace
            # value encodes the key's position, proving id translation
            assert keys[int(v)] == key


def test_epochs_and_generations_are_monotone():
    store = ShardedTimeSeriesStore(n_shards=4)
    key = SeriesKey.of("m", node="x")
    e0 = store.metric_epoch("m")
    g0 = store.series_generation("m")
    store.insert(key, 1.0, 1.0)
    e1 = store.metric_epoch("m")
    g1 = store.series_generation("m")
    assert e1 > e0 and g1 > g0
    store.insert(key, 2.0, 1.0)
    assert store.metric_epoch("m") > e1
    assert store.series_generation("m") == g1  # no new series


def test_scalar_reads_route_to_owner():
    store = ShardedTimeSeriesStore(n_shards=4)
    key = SeriesKey.of("m", node="y")
    store.insert_batch(key, np.array([1.0, 2.0, 3.0]), np.array([10.0, 20.0, 30.0]))
    assert store.has(key)
    assert store.latest(key) == (3.0, 30.0)
    assert store.earliest_time(key) == 1.0
    assert store.stats(key, 0.0, 10.0).count == 3
    t, v = store.downsample(key, 0.0, 4.0, step=2.0)
    assert v.size > 0
    assert store.aggregate_across("m", 0.0, 10.0, agg="sum") == 60.0


def test_aggregate_across_matches_single_store_pooling_order():
    """'last' (and float association) depend on pooling order: the
    facade must iterate series in creation order like the single store."""
    single = TimeSeriesStore()
    sharded = ShardedTimeSeriesStore(n_shards=1)  # drop-in configuration
    b, a = SeriesKey.of("m", node="b"), SeriesKey.of("m", node="a")
    for store in (single, sharded):
        store.insert(b, 1.0, 111.0)  # created first, str-sorts last
        store.insert(a, 2.0, 222.0)
    for agg in ("last", "sum", "mean", "min", "max", "count"):
        assert sharded.aggregate_across("m", 0.0, 10.0, agg) == single.aggregate_across(
            "m", 0.0, 10.0, agg
        ), agg


def test_set_capacity_applies_to_new_series():
    store = ShardedTimeSeriesStore(n_shards=2)
    store.set_capacity("m", 4)
    key = SeriesKey.of("m", node="z")
    store.insert_batch(key, np.arange(10.0), np.arange(10.0))
    t, _ = store.query(key, -np.inf, np.inf)
    assert t.size == 4  # overwrote oldest
