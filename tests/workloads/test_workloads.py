"""Tests for archetypes, workload generation, resubmission, traces."""

import numpy as np
import pytest

from repro.cluster.checkpoint import CheckpointStore
from repro.cluster.job import JobState
from repro.cluster.node import Node, NodeSpec
from repro.cluster.scheduler import Scheduler
from repro.sim import Engine, RngRegistry
from repro.workloads.archetypes import (
    adaptive_mesh_app,
    io_heavy_app,
    ml_training_app,
    simulation_app,
    standard_mix,
)
from repro.workloads.generator import (
    MisestimationModel,
    ResubmitPolicy,
    WorkloadGenerator,
    WorkloadSpec,
)
from repro.workloads.traces import export_job_trace, export_marker_dataset, load_job_trace
from repro.telemetry.markers import ProgressMarker, ProgressMarkerChannel


@pytest.fixture
def rng():
    return RngRegistry(seed=1).stream("test")


class TestArchetypes:
    @pytest.mark.parametrize(
        "factory", [simulation_app, adaptive_mesh_app, ml_training_app, io_heavy_app]
    )
    def test_profiles_valid_and_varied(self, factory, rng):
        profiles = [factory(rng) for _ in range(10)]
        runtimes = [p.nominal_runtime_s() for p in profiles]
        assert all(r > 0 for r in runtimes)
        assert np.std(runtimes) > 0  # randomized, not constant

    def test_adaptive_mesh_slows_down(self, rng):
        p = adaptive_mesh_app(rng)
        assert len(p.phases) == 2
        assert p.phases[0].rate_multiplier < 1.0
        assert p.phases[1].rate_multiplier < p.phases[0].rate_multiplier

    def test_ml_training_uses_gpu(self, rng):
        assert ml_training_app(rng).uses_gpu

    def test_standard_mix_weights(self):
        mix = standard_mix()
        assert len(mix) == 4
        assert abs(sum(a.weight for a in mix) - 1.0) < 1e-9


class TestMisestimation:
    def test_biased_underestimation(self, rng):
        model = MisestimationModel(mu=-0.5, sigma=0.1)
        requests = [model.request_for(10_000.0, rng) for _ in range(100)]
        assert np.median(requests) < 10_000.0

    def test_clipping(self, rng):
        model = MisestimationModel(mu=0.0, sigma=5.0, min_factor=0.5, max_factor=2.0)
        for _ in range(50):
            req = model.request_for(10_000.0, rng)
            assert 5_000.0 <= req <= 20_000.0

    def test_floor(self, rng):
        model = MisestimationModel(floor_s=1000.0)
        assert model.request_for(10.0, rng) == 1000.0

    def test_validation(self):
        with pytest.raises(ValueError):
            MisestimationModel(min_factor=0.0)


class TestWorkloadGenerator:
    def _gen(self, n_jobs=10, seed=0):
        eng = Engine()
        sched = Scheduler(eng, [Node(f"n{i}", NodeSpec()) for i in range(8)])
        rng = RngRegistry(seed=seed).stream("wl")
        gen = WorkloadGenerator(eng, sched, rng, WorkloadSpec(n_jobs=n_jobs))
        return eng, sched, gen

    def test_submits_requested_count(self):
        eng, sched, gen = self._gen(n_jobs=12)
        gen.start()
        eng.run(until=1e7)
        assert len(gen.jobs) == 12
        assert sched.stats.submitted == 12

    def test_deterministic_under_seed(self):
        _, _, gen1 = self._gen(seed=5)
        _, _, gen2 = self._gen(seed=5)
        j1 = gen1.make_job()
        j2 = gen2.make_job()
        assert j1.profile.name == j2.profile.name
        assert j1.walltime_request_s == j2.walltime_request_s

    def test_underestimated_subset(self):
        eng, sched, gen = self._gen(n_jobs=30)
        gen.start()
        eng.run(until=1e7)
        under = gen.underestimated_jobs()
        assert 0 < len(under) <= 30

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            WorkloadSpec(n_jobs=0)
        with pytest.raises(ValueError):
            WorkloadSpec(arrival_rate_per_s=0.0)
        with pytest.raises(ValueError):
            WorkloadSpec(mix=[])


class TestResubmitPolicy:
    def test_timeout_resubmitted_with_checkpoint(self):
        from repro.cluster.application import ApplicationProfile
        from repro.cluster.job import Job

        eng = Engine()
        store = CheckpointStore()
        sched = Scheduler(eng, [Node("n0", NodeSpec())], checkpoint_store=store)
        policy = ResubmitPolicy(
            eng, sched, checkpoint_store=store, max_resubmits_per_job=2, resubmit_delay_s=10.0
        )
        profile = ApplicationProfile("app", 3000.0, 1.0, marker_period_s=60.0, checkpoint_cost_s=30.0)
        job = Job("j1", "u", profile, walltime_request_s=1000.0)
        sched.submit(job)
        # checkpoint before the timeout so the resubmit restarts warm
        eng.schedule(800.0, sched.signal_checkpoint, "j1")
        eng.run(until=20_000.0)
        assert job.state is JobState.TIMEOUT
        assert policy.resubmissions >= 1
        clones = [j for j in sched.jobs.values() if j.job_id.startswith("j1-r")]
        assert clones
        assert clones[0].restart_step > 0.0  # warm restart

    def test_resubmit_limit(self):
        from repro.cluster.application import ApplicationProfile
        from repro.cluster.job import Job

        eng = Engine()
        sched = Scheduler(eng, [Node("n0", NodeSpec())])
        policy = ResubmitPolicy(eng, sched, max_resubmits_per_job=1, resubmit_delay_s=10.0)
        profile = ApplicationProfile("app", 1e6, 1.0)  # can never finish
        job = Job("j1", "u", profile, walltime_request_s=500.0)
        sched.submit(job)
        eng.run(until=50_000.0)
        assert policy.resubmissions == 1  # chain stops after the limit

    def test_completed_jobs_not_resubmitted(self):
        from repro.cluster.application import ApplicationProfile
        from repro.cluster.job import Job

        eng = Engine()
        sched = Scheduler(eng, [Node("n0", NodeSpec())])
        policy = ResubmitPolicy(eng, sched, resubmit_delay_s=10.0)
        profile = ApplicationProfile("app", 100.0, 1.0)
        job = Job("j1", "u", profile, walltime_request_s=500.0)
        sched.submit(job)
        eng.run(until=10_000.0)
        assert policy.resubmissions == 0


class TestTraces:
    def test_job_trace_roundtrip(self, tmp_path):
        from repro.cluster.application import ApplicationProfile
        from repro.cluster.job import Job

        eng = Engine()
        sched = Scheduler(eng, [Node("n0", NodeSpec())])
        profile = ApplicationProfile("app", 200.0, 1.0)
        job = Job("j1", "u", profile, walltime_request_s=400.0)
        sched.submit(job)
        eng.run(until=1000.0)
        path = tmp_path / "trace.csv"
        n = export_job_trace([job], path)
        assert n == 1
        rows = load_job_trace(path)
        assert rows[0]["job_id"] == "j1"
        assert rows[0]["state"] == "completed"
        assert float(rows[0]["final_step"]) == 200.0

    def test_marker_dataset_export(self, tmp_path):
        channel = ProgressMarkerChannel()
        for t in range(5):
            channel.emit(ProgressMarker("j1", float(t) * 10, float(t), total_steps=100.0))
        path = tmp_path / "markers.csv"
        n = export_marker_dataset(channel, path)
        assert n == 5
        content = path.read_text().splitlines()
        assert content[0] == "job_id,time,step,total_steps"
        assert len(content) == 6
