"""Unit tests for the pressure-graded load shedder and its hysteresis."""

import pytest

from repro.serve.model import TenantSpec
from repro.serve.shed import DEGRADE, NORMAL, SHED, LoadShedder, ShedConfig


def _shedder(degrade=0.5, shed=0.85, hysteresis=0.1):
    return LoadShedder(ShedConfig(degrade, shed, hysteresis))


class TestLadder:
    def test_starts_normal(self):
        s = _shedder()
        assert s.level == NORMAL
        assert s.level_name == "normal"

    def test_enters_degrade_at_threshold(self):
        s = _shedder()
        assert s.observe(0.49) == NORMAL
        assert s.observe(0.5) == DEGRADE
        assert s.level_name == "degrade"

    def test_enters_shed_at_threshold(self):
        s = _shedder()
        assert s.observe(0.85) == SHED
        assert s.level_name == "shed"

    def test_normal_jumps_straight_to_shed(self):
        s = _shedder()
        assert s.observe(0.99) == SHED
        assert s.transitions == 1

    def test_shed_holds_inside_hysteresis_band(self):
        s = _shedder()
        s.observe(0.9)
        assert s.observe(0.8) == SHED  # exit threshold is 0.85 - 0.1
        assert s.observe(0.75) == SHED

    def test_shed_exits_to_degrade(self):
        s = _shedder()
        s.observe(0.9)
        assert s.observe(0.7) == DEGRADE

    def test_shed_exits_straight_to_normal_when_pressure_collapses(self):
        s = _shedder()
        s.observe(0.9)
        assert s.observe(0.1) == NORMAL

    def test_degrade_holds_inside_hysteresis_band(self):
        s = _shedder()
        s.observe(0.6)
        assert s.observe(0.45) == DEGRADE  # exit threshold is 0.5 - 0.1
        assert s.observe(0.39) == NORMAL

    def test_transitions_count_changes_only(self):
        s = _shedder()
        for p in (0.1, 0.2, 0.3):
            s.observe(p)
        assert s.transitions == 0
        s.observe(0.6)  # -> degrade
        s.observe(0.6)  # holds
        s.observe(0.9)  # -> shed
        s.observe(0.1)  # -> normal
        assert s.transitions == 3


class TestDecisions:
    def test_should_degrade_requires_level_and_opt_in(self):
        s = _shedder()
        flex = TenantSpec("flex")
        exact = TenantSpec("exact", allow_degraded=False)
        assert not s.should_degrade(flex)
        s.observe(0.6)
        assert s.should_degrade(flex)
        assert not s.should_degrade(exact)
        s.observe(0.9)
        assert s.should_degrade(flex)  # shed level still degrades

    def test_only_lowest_priority_class_sheds(self):
        s = _shedder()
        low = TenantSpec("low", priority=0)
        high = TenantSpec("high", priority=1)
        s.observe(0.9)
        assert s.should_shed(low, min_priority=0)
        assert not s.should_shed(high, min_priority=0)

    def test_no_shedding_below_shed_level(self):
        s = _shedder()
        s.observe(0.6)  # degrade only
        assert not s.should_shed(TenantSpec("low", priority=0), min_priority=0)

    def test_no_shedding_without_registered_tenants(self):
        s = _shedder()
        s.observe(1.0)
        assert not s.should_shed_priority(0, None)

    def test_request_priority_override(self):
        s = _shedder()
        s.observe(1.0)
        assert s.should_shed_priority(0, 0)
        assert not s.should_shed_priority(5, 0)

    def test_stats_shape(self):
        s = _shedder()
        s.observe(0.9)
        stats = s.stats()
        assert stats["level"] == float(SHED)
        assert stats["transitions"] == 1.0
        assert set(stats) == {
            "level", "transitions", "degraded_served", "shed_rejections",
        }


class TestConfigValidation:
    def test_degrade_pressure_bounds(self):
        with pytest.raises(ValueError, match="degrade_pressure"):
            ShedConfig(degrade_pressure=0.0)
        with pytest.raises(ValueError, match="degrade_pressure"):
            ShedConfig(degrade_pressure=1.5)

    def test_shed_pressure_ordering(self):
        with pytest.raises(ValueError, match="shed_pressure"):
            ShedConfig(degrade_pressure=0.8, shed_pressure=0.5)

    def test_negative_hysteresis(self):
        with pytest.raises(ValueError, match="hysteresis"):
            ShedConfig(hysteresis=-0.1)
