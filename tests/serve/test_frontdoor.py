"""Front-door serving tests: exactness, deadlines, shedding, fast paths.

The bit-identity property is the serving contract from the README: a
non-degraded ``ok`` answer through the front door — whatever fast path
served it — is the engine's own answer, for every engine shape and
worker count.  The concurrency-sensitive tests pin the schedule instead
of racing it: a fake clock drives deadlines, and the engine write gate
(held by the test) parks the single worker so queue pressure can be
built deterministically.
"""

import dataclasses
import time

import numpy as np
import pytest

from repro.query import QueryEngine, RollupManager
from repro.query.model import MetricQuery
from repro.serve import QueryFrontDoor, QueryRequest, TenantSpec
from repro.shard import FederatedQueryEngine

from tests.query.test_property import assert_results_match, random_query
from tests.shard.test_federation_property import (
    HORIZON,
    assert_bit_identical,
    build_stores,
)


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t


def _open_spec(name, **kw):
    kw.setdefault("qps", 1e6)
    kw.setdefault("queue_depth", 256)
    return TenantSpec(name, **kw)


def _small_engine(seed=7):
    rng = np.random.default_rng(seed)
    _sharded, _oracle, single = build_stores(rng, 2, n_series=6, max_points=60)
    return QueryEngine(single, enable_cache=False), single


def _wait_inflight(fd, tenant, n, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if fd.admission.tenant(tenant).inflight >= n:
            return
        time.sleep(0.002)
    raise AssertionError(f"worker never picked up a {tenant!r} request")


INSTANT = MetricQuery("m", agg="mean")
RANGE_Q = MetricQuery("m", agg="mean", range_s=600.0, step_s=60.0)


@pytest.mark.parametrize("n_shards,n_workers", [(1, 1), (2, 4), (5, 2)])
def test_served_answers_bit_identical_to_direct_execution(n_shards, n_workers):
    rng = np.random.default_rng(42 + 10 * n_shards + n_workers)
    sharded, _oracle, single = build_stores(rng, max(n_shards, 2))
    if n_shards == 1:
        engine = QueryEngine(single, enable_cache=False)
        direct = QueryEngine(single, enable_cache=False)
    else:
        engine = FederatedQueryEngine(sharded, enable_cache=False)
        direct = FederatedQueryEngine(sharded, enable_cache=False)
    fd = QueryFrontDoor(
        engine,
        tenants=[_open_spec("t")],
        n_workers=n_workers,
        enable_standing=False,
    )
    with fd:
        for _ in range(8):
            q = random_query(rng)
            at = float(rng.uniform(HORIZON * 0.5, HORIZON * 1.1))
            want = direct.query(q, at=at)
            first = fd.serve(QueryRequest(q, tenant="t", at=at))
            assert first.status == "ok" and not first.degraded
            assert_bit_identical(first.engine_result, want)
            # the repeat may come from the hot-result cache — the answer
            # must still be the engine's own, bit for bit
            again = fd.serve(QueryRequest(q, tenant="t", at=at))
            assert again.status == "ok"
            assert_bit_identical(again.engine_result, want)
        stats = fd.stats()
        assert stats["served"] == 16.0
        assert stats["hot_hits"] >= 1.0
        assert stats["tenant_t"]["served"] == 16.0


def test_deadline_expiry_is_accounted():
    clock = FakeClock()
    engine, _store = _small_engine()
    fd = QueryFrontDoor(
        engine, tenants=[_open_spec("t")], n_workers=1,
        enable_standing=False, clock=clock,
    )
    with fd:
        with fd.write_gate():  # park execution so the deadline can pass
            fut = fd.submit(
                QueryRequest(RANGE_Q, tenant="t", at=500.0, deadline_ms=10.0)
            )
            clock.t += 1.0
        res = fut.result(timeout=5.0)
    assert res.status == "expired"
    assert res.reason == "deadline"
    assert res.rejected and not res.ok
    assert fd.admission.tenant("t").expired == 1
    assert fd.admission.tenant("t").served == 0


def test_shed_rejects_lowest_priority_class_only():
    engine, _store = _small_engine()
    fd = QueryFrontDoor(
        engine,
        tenants=[
            TenantSpec("low", qps=1e6, max_inflight=1, queue_depth=4, priority=0),
            _open_spec("high", priority=1),
        ],
        n_workers=1,
        enable_standing=False,
    )
    with fd:
        with fd.write_gate():
            first = fd.submit(QueryRequest(INSTANT, tenant="low", at=500.0))
            _wait_inflight(fd, "low", 1)
            # low's queue fills to capacity behind the parked worker
            queued = [
                fd.submit(QueryRequest(INSTANT, tenant="low", at=500.0))
                for _ in range(4)
            ]
            shed = fd.serve(QueryRequest(INSTANT, tenant="low", at=500.0))
            assert shed.status == "rejected" and shed.reason == "shed"
            # a request-level priority override joins the shed class too
            overridden = fd.serve(
                QueryRequest(INSTANT, tenant="high", at=500.0, priority=0)
            )
            assert overridden.status == "rejected" and overridden.reason == "shed"
            # the higher class keeps service at its own priority
            high = fd.submit(QueryRequest(INSTANT, tenant="high", at=500.0))
        for fut in [first, *queued, high]:
            assert fut.result(timeout=5.0).status == "ok"
    assert fd.admission.tenant("low").shed == 1
    assert fd.admission.tenant("high").shed == 1
    assert fd.shedder.shed_rejections == 2
    assert fd.shedder.level >= 2


def test_degrade_serves_coarse_tier_and_respects_exact_tenants():
    rng = np.random.default_rng(3)
    _sharded, _oracle, single = build_stores(rng, 2)
    rollups = RollupManager(single, resolutions=(10.0, 600.0))
    rollups.fold(HORIZON * 2)
    engine = QueryEngine(single, rollups=rollups, enable_cache=False)
    direct = QueryEngine(single, rollups=rollups, enable_cache=False)
    fd = QueryFrontDoor(
        engine,
        tenants=[
            TenantSpec("flex", qps=1e6, max_inflight=1, queue_depth=4, priority=1),
            _open_spec("exact", priority=1, allow_degraded=False),
        ],
        n_workers=1,
        enable_standing=False,
    )
    at = HORIZON
    with fd:
        with fd.write_gate():
            blocker = fd.submit(QueryRequest(INSTANT, tenant="flex", at=at))
            _wait_inflight(fd, "flex", 1)
            fillers = [
                fd.submit(QueryRequest(INSTANT, tenant="flex", at=at))
                for _ in range(2)
            ]
            target = fd.submit(QueryRequest(RANGE_Q, tenant="flex", at=at))
            assert fd.shedder.level == 1  # 2/4 queue fill entered degrade
            exact = fd.submit(QueryRequest(RANGE_Q, tenant="exact", at=at))
        deg = target.result(timeout=5.0)
        exa = exact.result(timeout=5.0)
        for fut in [blocker, *fillers]:
            assert fut.result(timeout=5.0).status == "ok"
    # degraded answer == direct execution at the coarsest tier step
    assert deg.status == "ok" and deg.degraded
    want_coarse = direct.query(dataclasses.replace(RANGE_Q, step_s=600.0), at=at)
    assert_bit_identical(deg.engine_result, want_coarse)
    # the exact-only tenant kept full-resolution execution
    assert exa.status == "ok" and not exa.degraded
    assert_bit_identical(exa.engine_result, direct.query(RANGE_Q, at=at))
    assert fd.shedder.degraded_served == 1
    assert fd.admission.tenant("flex").degraded == 1
    assert fd.admission.tenant("exact").degraded == 0
    # instants never degrade: there is no coarser tier for a point read
    assert all(
        not fut.result().degraded for fut in [blocker, *fillers]
    )


def test_hot_cache_hits_and_epoch_invalidation():
    engine, store = _small_engine()
    fd = QueryFrontDoor(
        engine, tenants=[_open_spec("t")], n_workers=1, enable_standing=False,
    )
    at = HORIZON * 0.9
    with fd:
        first = fd.serve(QueryRequest(RANGE_Q, tenant="t", at=at))
        assert first.status == "ok" and first.source != "cache"
        hit = fd.serve(QueryRequest(RANGE_Q, tenant="t", at=at))
        assert hit.status == "ok" and hit.source == "cache"
        assert fd.hot_hits == 1
        assert_bit_identical(hit.engine_result, first.engine_result)
        # a commit mints a new epoch: the stale entry must not serve
        from repro.telemetry.metric import SeriesKey

        with fd.write_gate():
            store.insert_batch(
                SeriesKey.of("m", node="n0", shard="0", rack="r0"),
                np.array([HORIZON * 2]),
                np.array([123.0]),
            )
        fresh = fd.serve(QueryRequest(RANGE_Q, tenant="t", at=at))
        assert fresh.source != "cache"
        assert fd.hot_hits == 1


def test_standing_auto_promotion():
    engine, single = _small_engine(seed=11)
    fd = QueryFrontDoor(
        engine, tenants=[_open_spec("t")], n_workers=1, hot_promote_after=2,
    )
    ats = [HORIZON * 0.6, HORIZON * 0.7, HORIZON * 0.8]
    with fd:
        first = fd.serve(QueryRequest(RANGE_Q, tenant="t", at=ats[0]))
        assert first.status == "ok" and first.source != "standing"
        assert RANGE_Q not in fd.standing.shapes
        fd.serve(QueryRequest(RANGE_Q, tenant="t", at=ats[1]))  # 2nd sighting
        assert RANGE_Q in fd.standing.shapes
        third = fd.serve(QueryRequest(RANGE_Q, tenant="t", at=ats[2]))
    assert third.status == "ok" and third.source == "standing"
    assert fd.standing_served >= 1
    direct = QueryEngine(single, enable_cache=False)
    assert_results_match(third.engine_result, direct.query(RANGE_Q, at=ats[2]))


def test_unknown_tenant_rejected():
    engine, _store = _small_engine()
    fd = QueryFrontDoor(engine, n_workers=0, enable_standing=False)
    res = fd.serve(QueryRequest(INSTANT, tenant="nobody", at=1.0))
    assert res.status == "rejected" and res.reason == "unknown_tenant"
    assert fd.rejected_unknown == 1


def test_stop_resolves_queued_requests():
    engine, _store = _small_engine()
    fd = QueryFrontDoor(
        engine, tenants=[_open_spec("t")], n_workers=0, enable_standing=False,
    )
    fd.start()
    fut = fd.submit(QueryRequest(INSTANT, tenant="t", at=1.0))
    fd.stop()
    res = fut.result(timeout=5.0)
    assert res.status == "rejected" and res.reason == "shutdown"


def test_error_answers_instead_of_dying():
    engine, _store = _small_engine()
    fd = QueryFrontDoor(
        engine, tenants=[_open_spec("t")], n_workers=1, enable_standing=False,
    )
    with fd:
        res = fd.serve(QueryRequest("not a query ((", tenant="t", at=1.0))
        assert res.status == "error"
        assert res.reason
        # the worker survived: a well-formed follow-up still serves
        ok = fd.serve(QueryRequest(INSTANT, tenant="t", at=500.0))
        assert ok.status == "ok"
    assert fd.admission.tenant("t").errors == 1
