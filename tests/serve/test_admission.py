"""Deterministic unit tests for per-tenant admission control.

The controller is clock-agnostic (every method takes ``now``), so these
tests drive it with explicit timestamps — no sleeping, no wall clock.
"""

import pytest

from repro.serve.admission import (
    ADMIT,
    AdmissionController,
    PendingRequest,
    TokenBucket,
)
from repro.serve.model import (
    REJECT_QUEUE_FULL,
    REJECT_QUOTA,
    QueryRequest,
    TenantSpec,
)


def _pending(tenant, now=0.0, deadline_s=None):
    expires = None if deadline_s is None else now + deadline_s
    return PendingRequest(QueryRequest("mean(m)", tenant=tenant), now, expires)


class TestTokenBucket:
    def test_starts_full_and_drains(self):
        b = TokenBucket(rate=2.0, burst=3.0)
        assert [b.try_take(0.0) for _ in range(4)] == [True, True, True, False]

    def test_refills_at_rate(self):
        b = TokenBucket(rate=2.0, burst=2.0)
        assert b.try_take(0.0) and b.try_take(0.0)
        assert not b.try_take(0.0)
        assert not b.try_take(0.4)  # 0.8 tokens accrued — not enough
        assert b.try_take(0.5)  # 1.0 accrued exactly
        assert b.try_take(10.0)  # long idle refills (capped) tokens

    def test_refill_caps_at_burst(self):
        b = TokenBucket(rate=100.0, burst=2.0)
        b.try_take(0.0)
        b.refill(1000.0)
        assert b.tokens == 2.0

    def test_first_observation_anchors_clock(self):
        # lazy ``_last`` init: a bucket first observed late in a run must
        # not be granted the whole elapsed history as refill
        b = TokenBucket(rate=1.0, burst=2.0)
        assert b.try_take(1e6) and b.try_take(1e6)
        assert not b.try_take(1e6)

    @pytest.mark.parametrize("rate,burst", [(0.0, 1.0), (-1.0, 1.0), (1.0, 0.0)])
    def test_rejects_non_positive_parameters(self, rate, burst):
        with pytest.raises(ValueError, match="must be positive"):
            TokenBucket(rate=rate, burst=burst)


class TestAdmission:
    def test_quota_rejection_and_recovery(self):
        ctl = AdmissionController()
        state = ctl.add_tenant(TenantSpec("t", qps=2.0, burst=2.0))
        assert ctl.try_admit(state, 0.0) is ADMIT
        assert ctl.try_admit(state, 0.0) is ADMIT
        assert ctl.try_admit(state, 0.0) == REJECT_QUOTA
        assert state.submitted == 3
        assert state.rejected_quota == 1
        # one second later the 2 qps quota has refilled
        assert ctl.try_admit(state, 1.0) is ADMIT

    def test_queue_full_rejection(self):
        ctl = AdmissionController()
        state = ctl.add_tenant(TenantSpec("t", qps=100.0, queue_depth=2))
        for _ in range(2):
            assert ctl.try_admit(state, 0.0) is ADMIT
            ctl.enqueue(state, _pending("t"))
        assert ctl.try_admit(state, 0.0) == REJECT_QUEUE_FULL
        assert state.rejected_queue_full == 1
        assert state.admitted == 2  # only enqueue() counts admissions

    def test_duplicate_tenant_rejected(self):
        ctl = AdmissionController()
        ctl.add_tenant(TenantSpec("t"))
        with pytest.raises(ValueError, match="already registered"):
            ctl.add_tenant(TenantSpec("t"))

    def test_min_priority(self):
        ctl = AdmissionController()
        assert ctl.min_priority() is None
        ctl.add_tenant(TenantSpec("a", priority=2))
        ctl.add_tenant(TenantSpec("b", priority=0))
        assert ctl.min_priority() == 0


class TestDispatch:
    def test_round_robin_interleaves_tenants(self):
        ctl = AdmissionController()
        a = ctl.add_tenant(TenantSpec("a", qps=100.0))
        b = ctl.add_tenant(TenantSpec("b", qps=100.0))
        for state in (a, b):
            ctl.enqueue(state, _pending(state.spec.name))
            ctl.enqueue(state, _pending(state.spec.name))
        order = []
        for _ in range(4):
            chosen, expired = ctl.next_ready(0.0)
            assert expired == []
            order.append(chosen[0].spec.name)
        # fair interleave despite equal queue depths and arrival order
        assert order == ["a", "b", "a", "b"]
        assert a.inflight == 2 and b.inflight == 2
        assert ctl.next_ready(0.0)[0] is None

    def test_inflight_cap_skips_tenant(self):
        ctl = AdmissionController()
        a = ctl.add_tenant(TenantSpec("a", qps=100.0, max_inflight=1))
        b = ctl.add_tenant(TenantSpec("b", qps=100.0))
        ctl.enqueue(a, _pending("a"))
        ctl.enqueue(a, _pending("a"))
        ctl.enqueue(b, _pending("b"))
        assert ctl.next_ready(0.0)[0][0] is a
        # a is at its cap: its second entry waits, b gets the slot
        assert ctl.next_ready(0.0)[0][0] is b
        assert ctl.next_ready(0.0)[0] is None
        ctl.release(a)
        assert ctl.next_ready(0.0)[0][0] is a

    def test_expiry_sweep_runs_for_capped_tenants(self):
        ctl = AdmissionController()
        a = ctl.add_tenant(TenantSpec("a", qps=100.0, max_inflight=1))
        ctl.enqueue(a, _pending("a"))
        chosen, _ = ctl.next_ready(0.0)
        assert chosen[0] is a  # a now at its in-flight cap
        ctl.enqueue(a, _pending("a", now=0.0, deadline_s=1.0))
        chosen, expired = ctl.next_ready(5.0)
        assert chosen is None
        assert len(expired) == 1 and expired[0][0] is a
        assert a.expired == 1

    def test_expired_entries_never_dispatch(self):
        ctl = AdmissionController()
        a = ctl.add_tenant(TenantSpec("a", qps=100.0))
        ctl.enqueue(a, _pending("a", now=0.0, deadline_s=1.0))
        ctl.enqueue(a, _pending("a", now=0.0))  # no deadline
        chosen, expired = ctl.next_ready(2.0)
        assert len(expired) == 1
        assert chosen is not None and chosen[1].expires_at is None


class TestPressureAndDrain:
    def test_pressure_is_worst_tenant_fill(self):
        ctl = AdmissionController()
        a = ctl.add_tenant(TenantSpec("a", qps=100.0, queue_depth=4))
        b = ctl.add_tenant(TenantSpec("b", qps=100.0, queue_depth=10))
        assert ctl.pressure() == 0.0
        ctl.enqueue(a, _pending("a"))
        ctl.enqueue(a, _pending("a"))
        ctl.enqueue(b, _pending("b"))
        assert ctl.pressure() == pytest.approx(0.5)  # max(2/4, 1/10)

    def test_drain_empties_every_queue(self):
        ctl = AdmissionController()
        a = ctl.add_tenant(TenantSpec("a", qps=100.0))
        b = ctl.add_tenant(TenantSpec("b", qps=100.0))
        ctl.enqueue(a, _pending("a"))
        ctl.enqueue(b, _pending("b"))
        drained = ctl.drain()
        assert len(drained) == 2
        assert ctl.queued_total() == 0

    def test_stats_sums_tenants(self):
        ctl = AdmissionController()
        a = ctl.add_tenant(TenantSpec("a", qps=1.0, burst=1.0, queue_depth=4))
        b = ctl.add_tenant(TenantSpec("b", qps=100.0, queue_depth=4))
        assert ctl.try_admit(a, 0.0) is ADMIT
        ctl.enqueue(a, _pending("a"))
        assert ctl.try_admit(a, 0.0) == REJECT_QUOTA
        assert ctl.try_admit(b, 0.0) is ADMIT
        ctl.enqueue(b, _pending("b"))
        stats = ctl.stats()
        assert stats["tenants"] == 2.0
        assert stats["submitted"] == 3.0
        assert stats["admitted"] == 2.0
        assert stats["rejected_quota"] == 1.0
        assert stats["queued"] == 2.0
        assert stats["pressure"] == pytest.approx(0.25)
        assert a.stats()["queue_depth"] == 1.0
