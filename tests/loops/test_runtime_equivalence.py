"""Equivalence: runtime-hosted loops vs legacy hand-wired managers.

Each of the five cases is run twice on identically seeded scenarios:

* **legacy** — the pre-runtime wiring: a bare ``MAPEKLoop`` assembled
  from the case's components, with the original direct-read monitors
  (``OstBandwidthMonitor``, ``MaintenanceMonitor``,
  ``JobProgressMonitor``) or a private uncached query engine.
* **runtime** — the shipped ``*CaseManager`` wrappers: declarative
  specs, telemetry bridges, fused query hub, arbiter, self-telemetry.

The rewire contract is *exact behavioral parity*: identical iteration
counts and identical executed-action sequences (time, kind, target,
params, honored).
"""

import pytest

from repro.cluster.application import ApplicationProfile, LaunchConfig
from repro.cluster.checkpoint import CheckpointStore
from repro.cluster.job import Job
from repro.cluster.maintenance import MaintenanceEvent, MaintenanceManager
from repro.cluster.node import Node, NodeSpec
from repro.cluster.scheduler import Scheduler
from repro.core.guards import ActionBudgetGuard
from repro.core.knowledge import KnowledgeBase
from repro.core.loop import MAPEKLoop
from repro.loops.io_qos_loop import (
    AimdQosPlanner,
    IoLoadMonitor,
    IoQosCaseManager,
    IoQosConfig,
    QosAnalyzer,
    QosExecutor,
)
from repro.loops.maintenance_loop import (
    CheckpointExecutor,
    MaintenanceAnalyzer,
    MaintenanceCaseManager,
    MaintenanceMonitor,
    MaintenancePlanner,
)
from repro.loops.misconfig_loop import (
    FixOrNotifyExecutor,
    InformOrFixPlanner,
    JobConfigMonitor,
    MisconfigCaseConfig,
    MisconfigCaseManager,
    MisconfigLoopAnalyzer,
)
from repro.loops.ost_loop import (
    AvoidOstPlanner,
    OstBandwidthMonitor,
    OstCaseConfig,
    OstCaseManager,
    SlowOstAnalyzer,
    WriterExecutor,
)
from repro.loops.scheduler_loop import (
    ExtensionPlanner,
    JobProgressMonitor,
    ProgressAnalyzer,
    SchedulerCaseConfig,
    SchedulerCaseManager,
    SchedulerExecutor,
)
from repro.query.engine import QueryEngine
from repro.sim import Engine
from repro.storage.client import PeriodicWriter
from repro.storage.filesystem import ParallelFileSystem
from repro.storage.ost import OST, OstState
from repro.telemetry.markers import ProgressMarkerChannel
from repro.telemetry.metric import SeriesKey
from repro.telemetry.tsdb import TimeSeriesStore


def trace(loop: MAPEKLoop):
    """The comparable behavior of a loop: every executed action."""
    out = []
    for it in loop.iterations:
        for r in it.results:
            out.append(
                (
                    round(it.t_execute, 9),
                    r.action.kind,
                    r.action.target,
                    tuple(sorted((k, round(v, 9)) for k, v in r.action.params.items())),
                    r.honored,
                )
            )
    return out


# ---------------------------------------------------------------------------
# OST case


def _ost_world(wired: str):
    engine = Engine()
    osts = [OST(f"ost{i}", 1000.0) for i in range(6)]
    fs = ParallelFileSystem(engine, osts)
    writer = PeriodicWriter(engine, fs, "app", size_mb=500.0, period_s=30.0, stripe_count=2)
    writer.start()
    config = OstCaseConfig(loop_period_s=60.0, slow_fraction=0.5)
    if wired == "legacy":
        loop = MAPEKLoop(
            engine,
            "ost-case",
            monitor=OstBandwidthMonitor(fs),
            analyzer=SlowOstAnalyzer(config),
            planner=AvoidOstPlanner([writer]),
            executor=WriterExecutor(engine, [writer]),
            period_s=config.loop_period_s,
        )
        loop.start()
    else:
        case = OstCaseManager(engine, fs, [writer], config=config)
        case.start()
        loop = case.loop
    engine.schedule_at(500.0, lambda: fs.set_ost_state(writer.file.stripe_osts[0], OstState.DEGRADED, 0.05))
    engine.run(until=3000.0)
    return loop


def test_ost_case_equivalent_under_runtime():
    legacy = _ost_world("legacy")
    hosted = _ost_world("runtime")
    assert legacy.iterations_run == hosted.iterations_run
    assert trace(legacy) == trace(hosted)
    assert trace(hosted)  # scenario actually produced failovers


# ---------------------------------------------------------------------------
# Maintenance case


def _maintenance_world(wired: str):
    engine = Engine()
    store = CheckpointStore()
    nodes = [Node(f"n{i}", NodeSpec()) for i in range(2)]
    sched = Scheduler(engine, nodes, checkpoint_store=store)
    maint = MaintenanceManager(engine, sched)
    if wired == "legacy":
        loop = MAPEKLoop(
            engine,
            "maintenance-case",
            monitor=MaintenanceMonitor(sched, maint),
            analyzer=MaintenanceAnalyzer(sched),
            planner=MaintenancePlanner(sched, lead_factor=3.0),
            executor=CheckpointExecutor(sched),
            period_s=60.0,
        )
        loop.start()
    else:
        case = MaintenanceCaseManager(engine, sched, maint, period_s=60.0)
        case.start()
        loop = case.loop
    profile = ApplicationProfile(
        "app", 10000.0, 1.0, marker_period_s=60.0, checkpoint_cost_s=60.0
    )
    sched.submit(Job("j1", "u", profile, walltime_request_s=12000.0))
    maint.schedule_event(
        MaintenanceEvent(
            frozenset({"n0", "n1"}), t_start=3000.0, duration_s=600.0, announce_lead_s=1800.0
        )
    )
    engine.run(until=5000.0)
    return loop


def test_maintenance_case_equivalent_under_runtime():
    legacy = _maintenance_world("legacy")
    hosted = _maintenance_world("runtime")
    assert legacy.iterations_run == hosted.iterations_run
    assert trace(legacy) == trace(hosted)
    assert trace(hosted)  # checkpoint actually triggered


# ---------------------------------------------------------------------------
# I/O-QoS case


def _ioqos_world(wired: str):
    engine = Engine()
    osts = [OST(f"ost{i}", 500.0) for i in range(4)]
    fs = ParallelFileSystem(engine, osts)
    workflow = PeriodicWriter(engine, fs, "workflow", size_mb=1000.0, period_s=30.0, stripe_count=2)
    bg1 = PeriodicWriter(engine, fs, "bg1", size_mb=20000.0, period_s=20.0, stripe_count=4)
    bg2 = PeriodicWriter(engine, fs, "bg2", size_mb=20000.0, period_s=20.0, stripe_count=4)
    writers = [workflow, bg1, bg2]
    workflow.start(start_at=5.0)
    bg1.start()
    bg2.start()
    config = IoQosConfig(latency_target_s=2.0, loop_period_s=60.0)
    if wired == "legacy":
        background = [w.client_id for w in writers if w.client_id != config.deadline_tenant]
        loop = MAPEKLoop(
            engine,
            "io-qos-case",
            monitor=IoLoadMonitor(fs, writers, config),  # private uncached engine
            analyzer=QosAnalyzer(config),
            planner=AimdQosPlanner(config, background),
            executor=QosExecutor(fs),
            knowledge=KnowledgeBase(),
            period_s=config.loop_period_s,
        )
        loop.start()
    else:
        case = IoQosCaseManager(engine, fs, writers, config=config)
        case.start()
        loop = case.loop
    engine.run(until=3000.0)
    return loop


def test_ioqos_case_equivalent_under_runtime():
    legacy = _ioqos_world("legacy")
    hosted = _ioqos_world("runtime")
    assert legacy.iterations_run == hosted.iterations_run
    assert trace(legacy) == trace(hosted)
    assert trace(hosted)  # AIMD throttling actually happened


# ---------------------------------------------------------------------------
# Misconfiguration case


def _misconfig_world(wired: str):
    engine = Engine()
    store = TimeSeriesStore()
    sched = Scheduler(engine, [Node("n0", NodeSpec(cores=32))])
    config = MisconfigCaseConfig(loop_period_s=120.0, min_runtime_s=200.0, observation_window_s=300.0)
    if wired == "legacy":
        loop = MAPEKLoop(
            engine,
            "misconfig-case",
            monitor=JobConfigMonitor(
                sched, store, config, query_engine=QueryEngine(store, enable_cache=False)
            ),
            analyzer=MisconfigLoopAnalyzer(),
            planner=InformOrFixPlanner(config),
            executor=FixOrNotifyExecutor(engine, sched),
            period_s=config.loop_period_s,
        )
        loop.start()
    else:
        case = MisconfigCaseManager(engine, sched, store, config=config)
        case.start()
        loop = case.loop
    profile = ApplicationProfile("app", 20000.0, 1.0, marker_period_s=60.0)
    job = Job("j1", "u", profile, walltime_request_s=30000.0, launch=LaunchConfig(threads=4))
    sched.submit(job)

    def sample():
        app = sched.app("j1")
        util = 0.0
        if app is not None and app.running:
            util = min(1.0, app.current_rate() / profile.base_step_rate)
        store.insert(SeriesKey.of("node_cpu_util", node="n0"), engine.now, util)

    engine.every(30.0, sample)
    engine.run(until=2000.0)
    return loop


def test_misconfig_case_equivalent_under_runtime():
    legacy = _misconfig_world("legacy")
    hosted = _misconfig_world("runtime")
    assert legacy.iterations_run == hosted.iterations_run
    assert trace(legacy) == trace(hosted)
    assert any(kind == "fix_threads" for _, kind, _, _, _ in trace(hosted))


# ---------------------------------------------------------------------------
# Scheduler case (per-job loops, marker side channel through telemetry)


def _scheduler_world(wired: str):
    engine = Engine()
    channel = ProgressMarkerChannel()
    sched = Scheduler(engine, [Node("n0", NodeSpec()), Node("n1", NodeSpec())], marker_channel=channel)
    config = SchedulerCaseConfig(loop_period_s=60.0)
    loops = {}
    if wired == "legacy":

        def job_started(job):
            knowledge = KnowledgeBase()
            knowledge.remember("job_id", job.job_id)
            knowledge.remember("supports_checkpoint", job.profile.supports_checkpoint)
            loop = MAPEKLoop(
                engine,
                f"sched-case-{job.job_id}",
                monitor=JobProgressMonitor(channel, sched, job.job_id),
                analyzer=ProgressAnalyzer(forecaster_name=config.forecaster_name),
                planner=ExtensionPlanner(
                    safety_margin_s=config.safety_margin_s,
                    act_within_s=config.act_within_s,
                    checkpoint_fallback=config.checkpoint_fallback,
                ),
                executor=SchedulerExecutor(sched),
                knowledge=knowledge,
                guards=[
                    ActionBudgetGuard(
                        kinds={"request_extension"},
                        max_actions_per_target=config.budget_max_extensions,
                        max_amount_per_target=config.budget_max_total_s,
                        amount_param="extra_s",
                    )
                ],
                period_s=config.loop_period_s,
            )
            loops[job.job_id] = loop
            loop.start(start_at=engine.now + config.loop_period_s)

        def job_ended(job):
            loop = loops.get(job.job_id)
            if loop is not None:
                loop.stop()

        sched.on_job_start.append(job_started)
        sched.on_job_end.append(job_ended)
    else:
        manager = SchedulerCaseManager(engine, sched, channel, config=config)
        loops = manager.loops  # live dict; entries removed at job end

    profile = ApplicationProfile("app", 2000.0, 1.0, marker_period_s=30.0)
    job = Job("j1", "alice", profile, walltime_request_s=1500.0)
    sched.submit(job)
    # snapshot the per-job loop as soon as it exists
    snapshot = {}

    def grab():
        if "j1" in loops and "j1" not in snapshot:
            snapshot["j1"] = loops["j1"]

    engine.every(10.0, grab)
    engine.run(until=5000.0)
    return snapshot["j1"], job


def test_scheduler_case_equivalent_under_runtime():
    legacy_loop, legacy_job = _scheduler_world("legacy")
    hosted_loop, hosted_job = _scheduler_world("runtime")
    assert legacy_loop.iterations_run == hosted_loop.iterations_run
    assert trace(legacy_loop) == trace(hosted_loop)
    assert any(kind == "request_extension" for _, kind, _, _, _ in trace(hosted_loop))
    # end state identical: rescued in both worlds with the same deadline
    assert legacy_job.state is hosted_job.state
    assert legacy_job.time_limit_s == pytest.approx(hosted_job.time_limit_s)
    assert legacy_job.end_time == pytest.approx(hosted_job.end_time)


def test_scheduler_monitor_observations_match_legacy():
    """Field-level check: query-backed observation == direct-read observation."""
    legacy_loop, _ = _scheduler_world("legacy")
    hosted_loop, _ = _scheduler_world("runtime")
    legacy_obs = [it.observation for it in legacy_loop.iterations if it.observation]
    hosted_obs = [it.observation for it in hosted_loop.iterations if it.observation]
    assert len(legacy_obs) == len(hosted_obs)
    for lo, ho in zip(legacy_obs, hosted_obs):
        assert lo.time == ho.time
        assert dict(lo.values) == pytest.approx(dict(ho.values))
        l_markers = [(m.time, m.step) for m in lo.context["new_markers"]]
        h_markers = [(m.time, m.step) for m in ho.context["new_markers"]]
        assert l_markers == h_markers
