"""Tests for human-on-the-loop notification wiring in the Scheduler case."""


from repro.cluster.application import ApplicationProfile
from repro.cluster.job import Job, JobState
from repro.cluster.node import Node, NodeSpec
from repro.cluster.scheduler import Scheduler
from repro.core.audit import AuditTrail
from repro.core.humanloop import HumanOnTheLoopNotifier
from repro.loops.scheduler_loop import SchedulerCaseConfig, SchedulerCaseManager
from repro.sim import Engine
from repro.telemetry.markers import ProgressMarkerChannel


def run_case(notifier=None, runtime=2000.0, walltime=1500.0):
    engine = Engine()
    channel = ProgressMarkerChannel()
    scheduler = Scheduler(engine, [Node("n0", NodeSpec())], marker_channel=channel)
    SchedulerCaseManager(
        engine,
        scheduler,
        channel,
        config=SchedulerCaseConfig(loop_period_s=60.0),
        notifier=notifier,
    )
    profile = ApplicationProfile("app", runtime, 1.0, marker_period_s=30.0)
    job = Job("j1", "alice", profile, walltime_request_s=walltime)
    scheduler.submit(job)
    engine.run(until=8000.0)
    return job


def test_autonomous_actions_notify_the_operator():
    audit = AuditTrail()
    notifier = HumanOnTheLoopNotifier(audit)
    job = run_case(notifier)
    assert job.state is JobState.COMPLETED  # still fully autonomous
    assert notifier.notifications >= 1
    events = audit.by_phase("notify")
    assert any("overrun" in e.message or "extension" in e.message.lower() or e.data
               for e in events)
    # explanations carry decision metadata for the operator
    assert all("confidence" in e.data for e in events)


def test_no_notifications_when_loop_never_acts():
    audit = AuditTrail()
    notifier = HumanOnTheLoopNotifier(audit)
    job = run_case(notifier, runtime=500.0, walltime=2000.0)  # well-estimated
    assert job.state is JobState.COMPLETED
    assert notifier.notifications == 0


def test_notifier_optional():
    job = run_case(notifier=None)
    assert job.state is JobState.COMPLETED
