"""Tests for the Scheduler use case (Fig. 3) — loop + cluster integration."""

import pytest

from repro.cluster.application import ApplicationProfile, PhaseChange
from repro.cluster.job import Job, JobState
from repro.cluster.node import Node, NodeSpec
from repro.cluster.scheduler import Scheduler, SchedulerConfig
from repro.core.audit import AuditTrail
from repro.loops.scheduler_loop import SchedulerCaseConfig, SchedulerCaseManager
from repro.sim import Engine
from repro.telemetry.markers import ProgressMarkerChannel


def setup_case(
    runtime_s=2000.0,
    walltime_s=1500.0,
    n_nodes_cluster=2,
    config=None,
    profile_kw=None,
    scheduler_config=None,
):
    eng = Engine()
    channel = ProgressMarkerChannel()
    nodes = [Node(f"n{i}", NodeSpec()) for i in range(n_nodes_cluster)]
    sched = Scheduler(
        eng, nodes, config=scheduler_config or SchedulerConfig(), marker_channel=channel
    )
    manager = SchedulerCaseManager(
        eng, sched, channel, config=config or SchedulerCaseConfig(loop_period_s=60.0)
    )
    prof_kw = dict(
        name="app",
        total_steps=runtime_s,
        base_step_rate=1.0,
        marker_period_s=30.0,
        checkpoint_cost_s=30.0,
    )
    if profile_kw:
        prof_kw.update(profile_kw)
    profile = ApplicationProfile(**prof_kw)
    job = Job("j1", "alice", profile, walltime_request_s=walltime_s)
    return eng, sched, manager, job


class TestSchedulerCaseEndToEnd:
    def test_rescues_underestimated_job(self):
        """The headline behaviour: a job that would TIMEOUT completes."""
        eng, sched, manager, job = setup_case(runtime_s=2000.0, walltime_s=1500.0)
        sched.submit(job)
        eng.run(until=5000.0)
        assert job.state is JobState.COMPLETED
        assert job.extension_count >= 1
        assert job.time_limit_s > job.walltime_request_s
        assert sched.stats.extensions_granted >= 1

    def test_without_loop_job_times_out(self):
        eng = Engine()
        channel = ProgressMarkerChannel()
        sched = Scheduler(eng, [Node("n0", NodeSpec())], marker_channel=channel)
        profile = ApplicationProfile("app", 2000.0, 1.0, marker_period_s=30.0)
        job = Job("j1", "alice", profile, walltime_request_s=1500.0)
        sched.submit(job)
        eng.run(until=5000.0)
        assert job.state is JobState.TIMEOUT

    def test_well_estimated_job_not_extended(self):
        eng, sched, manager, job = setup_case(runtime_s=1000.0, walltime_s=1500.0)
        sched.submit(job)
        eng.run(until=5000.0)
        assert job.state is JobState.COMPLETED
        assert job.extension_count == 0

    def test_loop_stops_when_job_ends(self):
        eng, sched, manager, job = setup_case(runtime_s=500.0, walltime_s=800.0)
        sched.submit(job)
        eng.run(until=5000.0)
        assert manager.active_loops() == 0

    def test_budget_guard_limits_extensions(self):
        cfg = SchedulerCaseConfig(
            loop_period_s=60.0, budget_max_extensions=1, budget_max_total_s=600.0,
            checkpoint_fallback=False,
        )
        # monstrously underestimated: would need many extensions
        eng, sched, manager, job = setup_case(
            runtime_s=6000.0, walltime_s=1000.0, config=cfg
        )
        sched.submit(job)
        eng.run(until=10000.0)
        assert job.extension_count <= 1
        assert job.state is JobState.TIMEOUT  # budget was not enough

    def test_checkpoint_fallback_after_denial(self):
        from repro.cluster.scheduler import ExtensionPolicy

        # site policy: no extensions at all
        policy = ExtensionPolicy(max_extensions_per_job=0)
        eng, sched, manager, job = setup_case(
            runtime_s=2000.0,
            walltime_s=1500.0,
            scheduler_config=SchedulerConfig(extension_policy=policy),
        )
        sched.submit(job)
        eng.run(until=5000.0)
        assert job.state is JobState.TIMEOUT  # still killed...
        # the checkpoint fallback fired: knowledge says so and the app saved state
        assert sched.stats.extensions_denied >= 1

    def test_phase_change_handled_by_forecaster(self):
        """A job that slows down mid-run still gets rescued."""
        cfg = SchedulerCaseConfig(loop_period_s=60.0, forecaster_name="ewma")
        eng, sched, manager, job = setup_case(
            runtime_s=1000.0,  # nominal 1000s, but second half at half rate → 1500s
            walltime_s=1200.0,
            config=cfg,
            profile_kw=dict(phases=(PhaseChange(0.5, 0.5),)),
        )
        sched.submit(job)
        eng.run(until=6000.0)
        assert job.state is JobState.COMPLETED
        assert job.extension_count >= 1

    def test_run_history_accumulates(self):
        eng, sched, manager, job = setup_case(runtime_s=500.0, walltime_s=800.0)
        sched.submit(job)
        eng.run(until=2000.0)
        assert len(manager.shared.run_history) == 1
        rec = manager.shared.run_history.records()[0]
        assert rec.succeeded
        assert rec.runtime_s == pytest.approx(500.0, rel=0.02)

    def test_assessment_scores_recorded(self):
        eng, sched, manager, job = setup_case(runtime_s=2000.0, walltime_s=1500.0)
        sched.submit(job)
        eng.run(until=5000.0)
        assert manager.assessments  # extension assessed at job end
        assert manager.mean_assessment() > 0.5  # rescue scored well

    def test_audit_trail_populated(self):
        audit = AuditTrail()
        eng = Engine()
        channel = ProgressMarkerChannel()
        sched = Scheduler(eng, [Node("n0", NodeSpec())], marker_channel=channel)
        SchedulerCaseManager(
            eng, sched, channel, config=SchedulerCaseConfig(loop_period_s=60.0), audit=audit
        )
        profile = ApplicationProfile("app", 2000.0, 1.0, marker_period_s=30.0)
        job = Job("j1", "alice", profile, walltime_request_s=1500.0)
        sched.submit(job)
        eng.run(until=5000.0)
        assert audit.by_phase("execute")
        assert any("request_extension" in e.message for e in audit.by_phase("execute"))

    def test_multiple_concurrent_jobs_each_get_loops(self):
        eng = Engine()
        channel = ProgressMarkerChannel()
        nodes = [Node(f"n{i}", NodeSpec()) for i in range(3)]
        sched = Scheduler(eng, nodes, marker_channel=channel)
        manager = SchedulerCaseManager(
            eng, sched, channel, config=SchedulerCaseConfig(loop_period_s=60.0)
        )
        jobs = []
        for i, runtime in enumerate([2000.0, 1800.0, 400.0]):
            profile = ApplicationProfile(f"app{i}", runtime, 1.0, marker_period_s=30.0)
            job = Job(f"j{i}", "alice", profile, walltime_request_s=1500.0)
            jobs.append(job)
            sched.submit(job)
        eng.run(until=100.0)
        assert manager.active_loops() == 3
        eng.run(until=8000.0)
        assert jobs[0].state is JobState.COMPLETED  # rescued
        assert jobs[1].state is JobState.COMPLETED  # rescued
        assert jobs[2].state is JobState.COMPLETED  # never needed help
        assert jobs[2].extension_count == 0
