"""Tests for the Maintenance, I/O-QoS, OST, and Misconfiguration loops."""

import pytest

from repro.cluster.application import ApplicationProfile, LaunchConfig
from repro.cluster.checkpoint import CheckpointStore
from repro.cluster.job import Job, JobState
from repro.cluster.maintenance import MaintenanceEvent, MaintenanceManager
from repro.cluster.node import Node, NodeSpec
from repro.cluster.scheduler import Scheduler
from repro.core.audit import AuditTrail
from repro.core.humanloop import HumanOnTheLoopNotifier
from repro.loops.io_qos_loop import IoQosConfig, IoQosManagerLoop
from repro.loops.maintenance_loop import MaintenanceCaseManager
from repro.loops.misconfig_loop import MisconfigCaseConfig, MisconfigCaseManager
from repro.loops.ost_loop import OstCaseConfig, OstCaseManager
from repro.sim import Engine
from repro.storage.client import PeriodicWriter
from repro.storage.filesystem import ParallelFileSystem
from repro.storage.ost import OST, OstState
from repro.telemetry.markers import ProgressMarkerChannel
from repro.telemetry.metric import SeriesKey
from repro.telemetry.tsdb import TimeSeriesStore


class TestMaintenanceLoop:
    def _setup(self):
        eng = Engine()
        store = CheckpointStore()
        nodes = [Node(f"n{i}", NodeSpec()) for i in range(2)]
        sched = Scheduler(eng, nodes, checkpoint_store=store)
        maint = MaintenanceManager(eng, sched)
        case = MaintenanceCaseManager(eng, sched, maint, period_s=60.0)
        case.start()
        return eng, sched, maint, store, case

    def test_job_checkpointed_before_window(self):
        eng, sched, maint, store, case = self._setup()
        profile = ApplicationProfile(
            "app", 10000.0, 1.0, marker_period_s=60.0, checkpoint_cost_s=60.0
        )
        job = Job("j1", "u", profile, walltime_request_s=12000.0)
        sched.submit(job)
        maint.schedule_event(
            MaintenanceEvent(
                frozenset({"n0", "n1"}), t_start=3000.0, duration_s=600.0, announce_lead_s=1800.0
            )
        )
        eng.run(until=5000.0)
        assert job.state is JobState.KILLED_MAINTENANCE
        record = store.latest("u", "app")
        assert record is not None
        # checkpoint taken close to (but before) the window
        assert 2000.0 < record.step < 3000.0
        assert case.checkpoints_triggered >= 1

    def test_without_loop_no_checkpoint(self):
        eng = Engine()
        store = CheckpointStore()
        sched = Scheduler(eng, [Node("n0", NodeSpec())], checkpoint_store=store)
        maint = MaintenanceManager(eng, sched)
        profile = ApplicationProfile("app", 10000.0, 1.0, checkpoint_cost_s=60.0)
        job = Job("j1", "u", profile, walltime_request_s=12000.0)
        sched.submit(job)
        maint.schedule_event(
            MaintenanceEvent(frozenset({"n0"}), 3000.0, 600.0, announce_lead_s=1800.0)
        )
        eng.run(until=5000.0)
        assert job.state is JobState.KILLED_MAINTENANCE
        assert store.latest("u", "app") is None  # all progress lost

    def test_unaffected_job_not_checkpointed(self):
        eng, sched, maint, store, case = self._setup()
        profile = ApplicationProfile("app", 10000.0, 1.0, checkpoint_cost_s=60.0)
        job = Job("j1", "u", profile, walltime_request_s=12000.0)
        sched.submit(job)
        eng.run(until=10.0)
        other_node = "n1" if "n0" in job.assigned_nodes else "n0"
        maint.schedule_event(
            MaintenanceEvent(frozenset({other_node}), 3000.0, 600.0, announce_lead_s=1800.0)
        )
        eng.run(until=5000.0)
        assert job.state is JobState.RUNNING
        assert store.latest("u", "app") is None

    def test_job_finishing_before_window_left_alone(self):
        eng, sched, maint, store, case = self._setup()
        profile = ApplicationProfile("app", 500.0, 1.0, checkpoint_cost_s=60.0)
        job = Job("j1", "u", profile, walltime_request_s=800.0)
        sched.submit(job)
        maint.schedule_event(
            MaintenanceEvent(frozenset({"n0", "n1"}), 3000.0, 600.0, announce_lead_s=2500.0)
        )
        eng.run(until=5000.0)
        assert job.state is JobState.COMPLETED
        assert store.latest("u", "app") is None


class TestIoQosLoop:
    def _setup(self, with_loop=True):
        eng = Engine()
        osts = [OST(f"ost{i}", 500.0) for i in range(4)]
        fs = ParallelFileSystem(eng, osts)
        # deadline workflow: periodic 1000 MB writes; isolation latency is
        # 1.0 s (500 MB/stripe at 500 MB/s); the target is 2.0 s
        workflow = PeriodicWriter(
            eng, fs, "workflow", size_mb=1000.0, period_s=30.0, stripe_count=2
        )
        # two saturating background tenants: huge writes always in flight
        bg1 = PeriodicWriter(eng, fs, "bg1", size_mb=20000.0, period_s=20.0, stripe_count=4)
        bg2 = PeriodicWriter(eng, fs, "bg2", size_mb=20000.0, period_s=20.0, stripe_count=4)
        writers = [workflow, bg1, bg2]
        # stagger starts so workflow writes land while bg writes are in flight
        workflow.start(start_at=5.0)
        bg1.start()
        bg2.start()
        case = None
        if with_loop:
            case = IoQosManagerLoop(
                eng,
                fs,
                writers,
                config=IoQosConfig(latency_target_s=2.0, loop_period_s=60.0),
            )
            case.start()
        return eng, fs, workflow, [bg1, bg2], case

    def test_without_loop_latency_violates(self):
        eng, fs, workflow, bg, _ = self._setup(with_loop=False)
        eng.run(until=4000.0)
        late = [t.duration for t in workflow.transfers[-10:]]
        assert max(late) > 2.0  # contention pushes past the target

    def test_loop_reduces_deadline_tenant_latency(self):
        eng, fs, workflow, bg, case = self._setup(with_loop=True)
        eng.run(until=4000.0)
        import numpy as np

        latencies = np.array([t.duration for t in workflow.transfers])
        # shaped background: mean well under target, violations rare
        assert float(np.mean(latencies)) < 1.5
        assert float(np.mean(latencies > 2.0)) < 0.2
        assert case.adjustments > 0
        # background tenants were actually throttled
        rate, _burst = fs.qos.allocation("bg1")
        assert rate < 2000.0

    def test_recovery_when_pressure_stops(self):
        eng, fs, workflow, bg, case = self._setup(with_loop=True)
        eng.run(until=2000.0)
        throttled_rate, _ = fs.qos.allocation("bg1")
        # background stops writing; headroom should restore allocations
        for w in bg:
            w.stop()
        eng.run(until=8000.0)
        recovered_rate, _ = fs.qos.allocation("bg1")
        assert recovered_rate > throttled_rate

    def test_config_validation(self):
        with pytest.raises(ValueError):
            IoQosConfig(decrease_factor=1.5)
        with pytest.raises(ValueError):
            IoQosConfig(latency_target_s=0.0)


class TestOstLoop:
    def _setup(self, with_loop=True):
        eng = Engine()
        osts = [OST(f"ost{i}", 1000.0) for i in range(6)]
        fs = ParallelFileSystem(eng, osts)
        writer = PeriodicWriter(eng, fs, "app", size_mb=500.0, period_s=30.0, stripe_count=2)
        writer.start()
        case = None
        if with_loop:
            case = OstCaseManager(
                eng, fs, [writer], config=OstCaseConfig(loop_period_s=60.0, slow_fraction=0.5)
            )
            case.start()
        return eng, fs, writer, case

    def test_failover_restores_bandwidth(self):
        eng, fs, writer, case = self._setup(with_loop=True)
        eng.run(until=500.0)
        victim = writer.file.stripe_osts[0]
        fs.set_ost_state(victim, OstState.DEGRADED, 0.05)
        eng.run(until=3000.0)
        assert victim not in writer.file.stripe_osts  # moved away
        assert case.failovers >= 1
        recent = writer.recent_bandwidth_mbps()
        assert recent > 1000.0  # back to two healthy stripes

    def test_without_loop_bandwidth_stays_low(self):
        eng, fs, writer, _ = self._setup(with_loop=False)
        eng.run(until=500.0)
        victim = writer.file.stripe_osts[0]
        fs.set_ost_state(victim, OstState.DEGRADED, 0.05)
        eng.run(until=3000.0)
        assert victim in writer.file.stripe_osts
        assert writer.recent_bandwidth_mbps() < 500.0

    def test_healthy_system_no_failovers(self):
        eng, fs, writer, case = self._setup(with_loop=True)
        eng.run(until=3000.0)
        assert case.failovers == 0
        assert writer.file.restripe_count == 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            OstCaseConfig(slow_fraction=1.5)


class TestMisconfigLoop:
    def _setup(self, launch, uses_gpu=False, gpus=0):
        eng = Engine()
        store = TimeSeriesStore()
        channel = ProgressMarkerChannel()
        nodes = [Node("n0", NodeSpec(cores=32, gpus=gpus))]
        sched = Scheduler(eng, nodes, marker_channel=channel)
        audit = AuditTrail()
        notifier = HumanOnTheLoopNotifier(audit)
        case = MisconfigCaseManager(
            eng,
            sched,
            store,
            config=MisconfigCaseConfig(
                loop_period_s=120.0, min_runtime_s=200.0, observation_window_s=300.0
            ),
            notifier=notifier,
        )
        case.start()
        profile = ApplicationProfile(
            "app", 20000.0, 1.0, marker_period_s=60.0, uses_gpu=uses_gpu
        )
        job = Job("j1", "u", profile, walltime_request_s=30000.0, launch=launch)
        sched.submit(job)

        # feed node utilization telemetry that reflects the app's config
        def sample():
            app = sched.app("j1")
            util = 0.0
            if app is not None and app.running:
                util = min(1.0, app.current_rate() / profile.base_step_rate)
            store.insert(SeriesKey.of("node_cpu_util", node="n0"), eng.now, util)

        eng.every(30.0, sample)
        return eng, sched, case, notifier, job

    def test_thread_mismatch_fixed_online(self):
        eng, sched, case, notifier, job = self._setup(LaunchConfig(threads=4))
        eng.run(until=2000.0)
        assert case.fixes_applied >= 1
        app = sched.app("j1")
        assert app.launch.threads == 32  # corrected to the core count
        assert app.current_rate() == pytest.approx(1.0, rel=0.01)

    def test_well_configured_job_untouched(self):
        eng, sched, case, notifier, job = self._setup(LaunchConfig())
        eng.run(until=2000.0)
        assert case.fixes_applied == 0
        assert case.notifications_sent == 0

    def test_judge_immediately_deployment_survives_zero_age(self):
        """min_runtime_s=0 can observe a job the tick it starts (age 0)."""
        eng = Engine()
        store = TimeSeriesStore()
        sched = Scheduler(eng, [Node("n0", NodeSpec(cores=8))])
        case = MisconfigCaseManager(
            eng, sched, store,
            config=MisconfigCaseConfig(loop_period_s=60.0, min_runtime_s=0.0),
        )
        case.start()
        profile = ApplicationProfile("app", 20000.0, 1.0)
        sched.submit(Job("j1", "u", profile, walltime_request_s=30000.0))
        eng.run(until=300.0)  # must not raise on the zero-width window

    def test_wrong_library_fixed_online(self):
        launch = LaunchConfig(
            library_paths=("generic-blas",), expected_libraries=("site-blas",)
        )
        eng, sched, case, notifier, job = self._setup(launch)
        eng.run(until=2000.0)
        assert case.fixes_applied >= 1
        app = sched.app("j1")
        assert "site-blas" in app.launch.library_paths
        assert app.current_rate() == pytest.approx(1.0, rel=0.01)  # penalty gone

    def test_finding_handled_once(self):
        eng, sched, case, notifier, job = self._setup(LaunchConfig(threads=4))
        eng.run(until=6000.0)
        # the same (job, kind) is not re-actioned every cycle
        assert case.fixes_applied == 1

    def test_config_validation(self):
        with pytest.raises(ValueError):
            MisconfigCaseConfig(fix_threshold=2.0)
