"""Tests for the experiment harness and every scenario's headline shape.

These are the reproduction checks: each test asserts the qualitative
claim the corresponding paper experiment makes, on a reduced problem
size so the suite stays fast.
"""

import math

import pytest

from repro.experiments.harness import aggregate_rows, replicate
from repro.experiments.maintenance_exp import run_maintenance_scenario
from repro.experiments.metrics import detection_metrics, latency_summary
from repro.experiments.misconfig_exp import run_misconfig_scenario
from repro.experiments.model_exp import run_forecaster_comparison, run_model_ablation
from repro.experiments.patterns_exp import PatternScenarioConfig, run_pattern_scenario
from repro.experiments.pipeline_exp import run_pipeline_scenario
from repro.experiments.report import render_table
from repro.experiments.scheduler_case import (
    SchedulerScenarioConfig,
    run_scheduler_scenario,
)
from repro.experiments.storage_exp import run_ioqos_scenario, run_ost_scenario


class TestReportAndHarness:
    def test_render_table_alignment(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.123456}]
        text = render_table(rows, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_render_empty(self):
        assert "(no rows)" in render_table([], title="t")

    def test_render_column_selection(self):
        text = render_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_replicate_and_aggregate(self):
        rows = replicate(lambda seed: {"x": float(seed), "mode": "m"}, seeds=[1, 2, 3])
        agg = aggregate_rows(rows)
        assert agg["x"] == pytest.approx(2.0)
        assert agg["x_std"] == pytest.approx(1.0)
        assert agg["mode"] == "m"

    def test_aggregate_empty(self):
        assert aggregate_rows([]) == {}

    def test_detection_metrics(self):
        pred = [("j1", "a"), ("j2", "b")]
        act = [("j1", "a"), ("j3", "c")]
        m = detection_metrics(pred, act)
        assert m["precision"] == 0.5
        assert m["recall"] == 0.5

    def test_latency_summary(self):
        s = latency_summary([1.0, 2.0, 3.0])
        assert s["mean_s"] == 2.0
        assert s["p99_s"] >= s["p50_s"]
        assert latency_summary([]) == {"n": 0.0}


class TestSchedulerScenarioShape:
    """E3: autonomy loop beats no-loop and padding baselines."""

    @pytest.fixture(scope="class")
    def results(self):
        out = {}
        for mode in ("none", "padding", "autonomous"):
            cfg = SchedulerScenarioConfig(
                seed=7, mode=mode, n_jobs=20, n_nodes=10, horizon_s=250_000.0
            )
            out[mode] = run_scheduler_scenario(cfg)
        return out

    def test_loop_improves_completion_rate(self, results):
        assert results["autonomous"]["completion_rate"] > results["none"]["completion_rate"]
        assert results["autonomous"]["completion_rate"] > results["padding"]["completion_rate"]

    def test_loop_reduces_wasted_node_hours(self, results):
        assert results["autonomous"]["wasted_nh"] < results["none"]["wasted_nh"]

    def test_loop_uses_extensions(self, results):
        assert results["autonomous"]["ext_granted"] > 0
        assert results["none"]["ext_granted"] == 0

    def test_mode_validation(self):
        with pytest.raises(ValueError):
            SchedulerScenarioConfig(mode="magic")


class TestHumanLatencyShape:
    """E8: response value decays with human latency."""

    def test_fast_human_beats_slow_human(self):
        fast = run_scheduler_scenario(
            SchedulerScenarioConfig(
                seed=3, mode="human", n_jobs=16, n_nodes=8, horizon_s=250_000.0,
                human_median_latency_s=60.0, human_availability=1.0,
            )
        )
        slow = run_scheduler_scenario(
            SchedulerScenarioConfig(
                seed=3, mode="human", n_jobs=16, n_nodes=8, horizon_s=250_000.0,
                human_median_latency_s=14_400.0, human_availability=1.0,
            )
        )
        assert fast["completion_rate"] >= slow["completion_rate"]


class TestPatternScenarioShape:
    """E2: the Fig. 2 trade-offs."""

    def test_master_worker_latency_grows_with_n(self):
        small = run_pattern_scenario(
            PatternScenarioConfig(seed=1, pattern="master-worker", n_elements=8,
                                  horizon_s=300.0, settle_s=100.0)
        )
        large = run_pattern_scenario(
            PatternScenarioConfig(seed=1, pattern="master-worker", n_elements=64,
                                  horizon_s=300.0, settle_s=100.0)
        )
        assert large["latency_s"] > small["latency_s"] * 2

    def test_hierarchical_latency_flat_in_n(self):
        small = run_pattern_scenario(
            PatternScenarioConfig(seed=1, pattern="hierarchical", n_elements=8,
                                  horizon_s=300.0, settle_s=100.0)
        )
        large = run_pattern_scenario(
            PatternScenarioConfig(seed=1, pattern="hierarchical", n_elements=64,
                                  horizon_s=300.0, settle_s=100.0)
        )
        assert large["latency_s"] == pytest.approx(small["latency_s"])

    def test_failure_containment_ordering(self):
        rows = {}
        for pattern in ("master-worker", "coordinated", "hierarchical"):
            rows[pattern] = run_pattern_scenario(
                PatternScenarioConfig(
                    seed=2, pattern=pattern, n_elements=32,
                    horizon_s=900.0, inject_failure_at=300.0,
                )
            )
        assert rows["master-worker"]["uncontrolled_frac"] == 1.0
        assert rows["coordinated"]["uncontrolled_frac"] <= 0.1
        assert 0.1 < rows["hierarchical"]["uncontrolled_frac"] < 0.5

    def test_coordinated_instability_at_high_comp_gain(self):
        calm = run_pattern_scenario(
            PatternScenarioConfig(seed=3, pattern="coordinated", n_elements=16,
                                  horizon_s=900.0, comp_gain=0.1)
        )
        wild = run_pattern_scenario(
            PatternScenarioConfig(seed=3, pattern="coordinated", n_elements=16,
                                  horizon_s=900.0, comp_gain=3.0)
        )
        assert wild["osc_std"] > 10 * calm["osc_std"]

    def test_pattern_validation(self):
        with pytest.raises(ValueError):
            PatternScenarioConfig(pattern="anarchy")
        with pytest.raises(ValueError):
            PatternScenarioConfig(settle_s=500.0, horizon_s=400.0)


class TestStorageScenarioShapes:
    """E5 and E6."""

    def test_ost_loop_restores_bandwidth(self):
        with_loop = run_ost_scenario(with_loop=True, seed=0, horizon_s=3000.0)
        without = run_ost_scenario(with_loop=False, seed=0, horizon_s=3000.0)
        assert math.isinf(without["recovery_s"])
        assert with_loop["recovery_s"] < 600.0
        assert with_loop["final_bw_mbps"] > 5 * without["final_bw_mbps"]

    def test_ioqos_loop_cuts_violations(self):
        with_loop = run_ioqos_scenario(with_loop=True, seed=0, horizon_s=4000.0)
        without = run_ioqos_scenario(with_loop=False, seed=0, horizon_s=4000.0)
        assert without["violation_rate"] > 0.5
        assert with_loop["violation_rate"] < 0.2
        assert with_loop["mean_latency_s"] < without["mean_latency_s"]


class TestMaintenanceScenarioShape:
    """E4: checkpoints save nearly all in-flight work."""

    def test_loop_cuts_lost_node_hours(self):
        with_loop = run_maintenance_scenario(with_loop=True, seed=0)
        without = run_maintenance_scenario(with_loop=False, seed=0)
        assert with_loop["lost_node_hours"] < 0.2 * without["lost_node_hours"]
        assert with_loop["checkpoints_saved"] > 0
        assert without["checkpoints_saved"] == 0
        assert with_loop["makespan_s"] < without["makespan_s"]


class TestMisconfigScenarioShape:
    """E7: detection quality and the value of online fixes."""

    def test_detection_quality(self):
        row = run_misconfig_scenario(seed=1, n_jobs=20, with_fixes=False, horizon_s=20_000.0)
        assert row["precision"] >= 0.9
        assert row["recall"] >= 0.9

    def test_fixes_recover_runtime(self):
        fixed = run_misconfig_scenario(seed=1, n_jobs=20, with_fixes=True, horizon_s=30_000.0)
        advised = run_misconfig_scenario(seed=1, n_jobs=20, with_fixes=False, horizon_s=30_000.0)
        assert fixed["mean_runtime_misconfigured_s"] < advised["mean_runtime_misconfigured_s"]
        assert fixed["fixes_applied"] > 0


class TestPipelineScenarioShape:
    """E1: the monitoring + ODA pipeline is complete, timely, and cheap."""

    def test_pipeline_feasibility(self):
        row = run_pipeline_scenario(seed=0, n_nodes=16, horizon_s=1200.0, n_anomalies=4)
        assert row["completeness"] > 0.99
        assert row["anomaly_recall"] >= 0.75
        assert row["overhead_cpu_frac"] < 0.01
        assert row["e2e_lag_s"] < 1.0


class TestModelExperimentShapes:
    """E9 and the D1 forecaster ablation."""

    def test_forecaster_ranking(self):
        rows = {r["forecaster"]: r for r in run_forecaster_comparison(seed=0, n_runs=8)}
        # regression-based forecasters beat the naive average-rate one on
        # drifting traces
        assert rows["ols"]["rel_eta_error"] < rows["rate"]["rel_eta_error"]
        assert rows["theilsen"]["rel_eta_error"] < rows["rate"]["rel_eta_error"]

    def test_continual_model_wins_after_drift(self):
        rows = {r["model"]: r for r in run_model_ablation(seed=0, n_samples=1000)}
        continual = rows["rls-forgetting (small, continual)"]
        frozen = rows["rls-no-forgetting (small, frozen)"]
        batch = rows["batch-poly-8 (large, refit-always)"]
        assert continual["post_drift_mae"] < 0.5 * frozen["post_drift_mae"]
        assert continual["post_drift_mae"] < 0.5 * batch["post_drift_mae"]
        assert continual["update_us"] < batch["update_us"]
