"""Direct tests for tsdb/trust/interchange experiment helpers."""

import pytest

from repro.experiments.interchange_exp import run_interchange_matrix
from repro.experiments.trust_exp import run_trust_sweep
from repro.experiments.tsdb_exp import (
    run_knowledge_ops,
    run_tsdb_ingest,
    run_tsdb_queries,
)


class TestTsdbExperiments:
    def test_ingest_point_vs_batch(self):
        point = run_tsdb_ingest(seed=0, n_series=16, points_per_series=500, batch_size=1)
        batch = run_tsdb_ingest(seed=0, n_series=16, points_per_series=500, batch_size=100)
        assert point["points"] == batch["points"] == 16 * 500
        assert point["cardinality"] == 16
        assert batch["inserts_per_s"] > point["inserts_per_s"]

    def test_query_latency_fields(self):
        row = run_tsdb_queries(seed=0, n_series=16, points_per_series=500, n_queries=50)
        assert row["query_us"] > 0
        assert row["downsample_us"] > 0

    def test_knowledge_ops(self):
        row = run_knowledge_ops(n_models=50, n_plans=100)
        assert row["n_models"] == 50
        assert row["effectiveness"] == pytest.approx(0.8)
        assert row["model_register_us"] > 0


class TestSamplingTradeoff:
    def test_latency_cost_shape(self):
        from repro.experiments.pipeline_exp import run_sampling_tradeoff

        rows = run_sampling_tradeoff(
            seed=1, n_nodes=6, periods_s=(2.0, 30.0), horizon_s=1800.0
        )
        fast, slow = rows
        assert fast["detect_latency_s"] < slow["detect_latency_s"]
        assert fast["overhead_cpu_frac"] > slow["overhead_cpu_frac"]
        assert fast["detected_frac"] == 1.0


class TestTrustSweep:
    def test_budget_zero_is_status_quo(self):
        rows = run_trust_sweep(
            seed=0, budgets=[0, 2], n_jobs=12, n_nodes=8, horizon_s=200_000.0
        )
        assert rows[0]["ext_granted"] == 0
        assert rows[1]["ext_granted"] > 0
        assert rows[1]["completion_rate"] >= rows[0]["completion_rate"]


class TestInterchangeMatrix:
    def test_every_forecaster_rescues(self):
        rows = run_interchange_matrix(horizon_s=8000.0)
        from repro.analytics.forecast import forecaster_names

        assert {r["forecaster"] for r in rows} == set(forecaster_names())
        assert all(r["rescued"] for r in rows)
        assert all(r["constructed_via_registry"] for r in rows)
