"""E17 scenario helpers at reduced scale (the benchmark runs at 256)."""

from repro.experiments.provenance import provenance, stamp
from repro.experiments.supervise_exp import (
    run_adaptive_fusion_benchmark,
    run_supervision_benchmark,
)


def test_supervision_benchmark_row_shape():
    row = run_supervision_benchmark(seed=0, n_loops=32)
    assert row["restores_within_2x"] == 1.0
    assert row["control_degrades"] == 1.0
    assert row["restarts"] == row["frozen"] + row["stuck"]
    assert row["stuck_recovered"] == row["stuck"]
    assert row["actions_audited"] >= row["restarts"]


def test_adaptive_fusion_exactness_at_small_scale():
    row = run_adaptive_fusion_benchmark(seed=0, n_loops=32, ticks=10)
    # perf gate is benchmark-scale only; exactness and the flip always hold
    assert row["match"] == 1.0
    assert row["overrides"] >= 1.0
    assert row["fused_served"] > 0.0
    assert row["adaptive_queries"] < row["unfused_queries"]


def test_provenance_fields():
    fields = provenance()
    assert set(fields) == {"git_sha", "generated_at"}
    assert fields["git_sha"] != ""
    assert "T" in fields["generated_at"]
    row = stamp({"x": 1.0})
    assert row["x"] == 1.0 and "git_sha" in row and "generated_at" in row
    # the row's own fields win a collision
    assert stamp({"git_sha": "pinned"})["git_sha"] == "pinned"
