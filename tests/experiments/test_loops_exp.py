"""E15 loop-fleet scenario functions and the E1 in-situ watch path."""

from repro.experiments.loops_exp import (
    run_loop_fleet_benchmark,
    run_runtime_overhead,
    watch_fleet_specs,
)
from repro.experiments.pipeline_exp import run_pipeline_scenario


class TestWatchFleetSpecs:
    def test_partitions_cover_all_nodes_once(self):
        nodes = [f"n{i:04d}" for i in range(10)]
        specs = watch_fleet_specs("m", nodes, 4)
        assert len(specs) == 4
        assert len({s.name for s in specs}) == 4
        exprs = [s.queries[0].query for s in specs]
        for node in nodes:
            assert sum(node in str(e) for e in exprs) == 1

    def test_regex_metacharacters_in_node_ids_escaped(self):
        specs = watch_fleet_specs("m", ["rack[2]n3", "node+1"], 1)
        # must parse as a valid query despite the metacharacters
        assert "rack" in str(specs[0].queries[0].query)

    def test_more_loops_than_nodes(self):
        specs = watch_fleet_specs("m", ["a", "b"], 5)
        assert len(specs) == 2  # empty partitions dropped

    def test_cluster_query_slot_optional(self):
        bare = watch_fleet_specs("m", ["a"], 1)
        withc = watch_fleet_specs("m", ["a"], 1, cluster_query=True)
        assert len(bare[0].queries) == 1
        assert len(withc[0].queries) == 2


class TestFleetBenchmarkShape:
    def test_fused_matches_adhoc_and_executes_fewer_queries(self):
        row = run_loop_fleet_benchmark(seed=0, n_loops=8, nodes_per_loop=2, ticks=3)
        assert row["match"] == 1.0
        assert row["fused_queries"] < row["adhoc_queries"]
        assert row["iterations"] == 8 * 3

    def test_runtime_overhead_parity(self):
        row = run_runtime_overhead(seed=0, n_loops=3, ticks=20)
        assert row["iterations_match"] == 1.0
        assert row["hosted_wall_s"] > 0.0 and row["legacy_wall_s"] > 0.0


class TestPipelineWatchLoops:
    def test_in_situ_fleet_reports_and_keeps_ingest_metrics_clean(self):
        base = run_pipeline_scenario(seed=0, n_nodes=16, horizon_s=900.0)
        watched = run_pipeline_scenario(seed=0, n_nodes=16, horizon_s=900.0, watch_loops=4)
        assert watched["watch_loops"] == 4.0
        assert watched["watch_iterations"] > 0.0
        assert watched["watch_queries_executed"] > 0.0
        # self-telemetry is disabled for the fleet: the E1 ingest metrics
        # still measure the pipeline, not the loops
        assert watched["samples_ingested"] == base["samples_ingested"]
        assert watched["series"] == base["series"]
