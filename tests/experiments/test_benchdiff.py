"""Unit tests for the benchmark-artifact diff (``repro bench-diff``)."""

import json

import pytest

from repro.experiments.benchdiff import (
    artifact_label,
    artifact_shas,
    diff_artifacts,
    is_throughput_key,
    load_artifact,
    render_diff,
    render_trend,
    trend_artifacts,
)


def test_is_throughput_key():
    assert is_throughput_key("samples_per_s")
    assert is_throughput_key("serial_queries_per_s")
    assert is_throughput_key("scatter_speedup")
    assert is_throughput_key("speedup_vs_baseline")
    assert not is_throughput_key("query_ms")
    assert not is_throughput_key("n_series")
    assert not is_throughput_key("persistence")  # no accidental infix match


def test_diff_flags_regressions_beyond_threshold():
    old = {"ingest": {"samples_per_s": 1000.0, "scatter_speedup": 3.0}}
    new = {"ingest": {"samples_per_s": 700.0, "scatter_speedup": 2.9}}
    rows = diff_artifacts(old, new, threshold=0.2)
    by_key = {r["key"]: r for r in rows}
    assert by_key["ingest.samples_per_s"]["regressed"]  # 0.70 < 0.80
    assert not by_key["ingest.scatter_speedup"]["regressed"]  # 0.97
    assert rows[0]["regressed"]  # regressions sort first
    assert by_key["ingest.samples_per_s"]["ratio"] == pytest.approx(0.7)


def test_diff_ignores_one_sided_and_non_throughput_and_bools():
    old = {"a": {"x_per_s": 10.0, "gone_per_s": 5.0, "wall_ms": 3.0}}
    new = {"a": {"x_per_s": 10.0, "added_per_s": 5.0, "wall_ms": 9.0, "ok_per_s": True}}
    rows = diff_artifacts(old, new)
    assert [r["key"] for r in rows] == ["a.x_per_s"]


def test_diff_walks_lists_and_skips_nonpositive_baselines():
    old = {"runs": [{"q_per_s": 0.0}, {"q_per_s": 4.0}]}
    new = {"runs": [{"q_per_s": 9.0}, {"q_per_s": 2.0}]}
    rows = diff_artifacts(old, new, threshold=0.4)
    assert [r["key"] for r in rows] == ["runs.1.q_per_s"]
    assert rows[0]["regressed"]  # ratio 0.5 < 0.6


def test_diff_threshold_validation():
    with pytest.raises(ValueError):
        diff_artifacts({}, {}, threshold=1.0)
    with pytest.raises(ValueError):
        diff_artifacts({}, {}, threshold=-0.1)
    assert diff_artifacts({}, {}, threshold=0.0) == []


def test_render_diff_and_empty_case():
    rows = diff_artifacts(
        {"a_per_s": 10.0, "b_per_s": 10.0}, {"a_per_s": 5.0, "b_per_s": 11.0}
    )
    text = render_diff(rows)
    assert "2 throughput metric(s) compared, 1 regressed beyond 20%" in text
    assert "REGRESSED" in text and "ok" in text
    assert text.index("a_per_s") < text.index("b_per_s")  # regression listed first
    assert "no comparable throughput metrics" in render_diff([])


def test_trend_tracks_drift_across_runs():
    runs = [
        {"q_per_s": 100.0, "gone_per_s": 9.0},
        {"q_per_s": 90.0},
        {"q_per_s": 70.0, "fresh_per_s": 5.0},
    ]
    rows = trend_artifacts(runs, threshold=0.2)
    by_key = {r["key"]: r for r in rows}
    assert set(by_key) == {"q_per_s", "fresh_per_s"}  # newest artifact decides
    assert by_key["q_per_s"]["values"] == [100.0, 90.0, 70.0]
    assert by_key["q_per_s"]["ratio"] == pytest.approx(0.7)  # vs oldest present
    assert by_key["q_per_s"]["regressed"]  # 30% drift across the window
    assert by_key["fresh_per_s"]["ratio"] is None  # brand new: no baseline
    assert not by_key["fresh_per_s"]["regressed"]
    assert rows[0]["key"] == "q_per_s"  # drifted metrics sort first


def test_trend_requires_two_artifacts_and_renders_markdown():
    with pytest.raises(ValueError):
        trend_artifacts([{"q_per_s": 1.0}])
    rows = trend_artifacts([{"q_per_s": 8.0}, {"q_per_s": 10.0}])
    text = render_trend(rows, ["runA", "runB"])
    assert "| metric | runA | runB | trend |" in text
    assert "`q_per_s`" in text and "1.25x" in text
    assert "no throughput metrics" in render_trend([], ["runA"])


def test_artifact_label_prefers_sha_and_date():
    artifact = {
        "rows": [{"git_sha": "abcdef0123456789",
                  "generated_at": "2026-08-07T01:02:03+00:00"}]
    }
    assert artifact_label(artifact, "run0") == "abcdef0@2026-08-07"
    assert artifact_label({}, "run0") == "run0"


def test_load_artifact_and_shas(tmp_path):
    artifact = {
        "E16": [{"git_sha": "abc1234", "samples_per_s": 1.0}],
        "E18": {"rows": [{"git_sha": "def5678"}], "git_sha": "abc1234"},
        "meta": {"git_sha": 42},  # non-string ignored
    }
    path = tmp_path / "BENCH_all.json"
    path.write_text(json.dumps(artifact))
    loaded = load_artifact(str(path))
    assert loaded == artifact
    assert artifact_shas(loaded) == ["abc1234", "def5678"]
