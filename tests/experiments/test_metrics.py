"""Direct tests for JobOutcomeSummary and report formatting."""

import pytest

from repro.cluster.application import ApplicationProfile
from repro.cluster.job import Job
from repro.cluster.node import Node, NodeSpec
from repro.cluster.scheduler import Scheduler
from repro.experiments.metrics import JobOutcomeSummary
from repro.experiments.report import _fmt, render_table
from repro.sim import Engine


def run_mixed_workload():
    eng = Engine()
    sched = Scheduler(eng, [Node(f"n{i}", NodeSpec()) for i in range(4)])
    ok = Job("ok", "u", ApplicationProfile("a", 500.0, 1.0, marker_period_s=100.0),
             walltime_request_s=1000.0)
    late = Job("late", "u", ApplicationProfile("b", 5000.0, 1.0, marker_period_s=100.0),
               walltime_request_s=1000.0)
    rescued = Job("rescued", "u", ApplicationProfile("c", 1500.0, 1.0, marker_period_s=100.0),
                  walltime_request_s=1000.0)
    for j in (ok, late, rescued):
        sched.submit(j)
    eng.schedule(900.0, sched.request_extension, "rescued", 800.0)
    eng.run(until=10_000.0)
    return eng, sched


class TestJobOutcomeSummary:
    def test_counts_and_rates(self):
        eng, sched = run_mixed_workload()
        summary = JobOutcomeSummary.from_scheduler(sched, horizon_s=10_000.0)
        assert summary.n_submitted == 3
        assert summary.n_completed == 2  # ok + rescued
        assert summary.n_timeout == 1  # late
        assert summary.completion_rate == pytest.approx(2 / 3)
        assert summary.extensions_granted == 1
        assert summary.extension_hours_granted == pytest.approx(800.0 / 3600.0)

    def test_wasted_node_hours_counts_lost_runtime(self):
        eng, sched = run_mixed_workload()
        summary = JobOutcomeSummary.from_scheduler(sched, horizon_s=10_000.0)
        # the timed-out job burned its full 1000 s on one node
        assert summary.wasted_node_hours == pytest.approx(1000.0 / 3600.0)

    def test_as_row_is_flat_and_rounded(self):
        eng, sched = run_mixed_workload()
        row = JobOutcomeSummary.from_scheduler(sched, horizon_s=10_000.0).as_row()
        assert row["submitted"] == 3
        assert isinstance(row["completion_rate"], float)
        assert set(row) >= {"completed", "timeout", "wasted_nh", "ext_granted"}


class TestReportFormatting:
    def test_fmt_bools_and_nan(self):
        assert _fmt(True) == "yes"
        assert _fmt(False) == "no"
        assert _fmt(float("nan")) == "nan"

    def test_fmt_large_and_small_floats(self):
        assert _fmt(123456.0) == "1.23e+05"
        assert _fmt(0.0001) == "0.0001"
        assert _fmt(1.5) == "1.5"
        assert _fmt(2.0) == "2"

    def test_table_missing_cells_render_empty(self):
        text = render_table([{"a": 1}, {"a": 2, "b": 3}], columns=["a", "b"])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[2].endswith(" ")  # empty b cell padded
