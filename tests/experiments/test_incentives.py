"""Tests for the question-v incentive report."""


from repro.experiments.incentives import (
    IncentiveStatement,
    incentive_report,
    render_incentives,
)
from repro.experiments.scheduler_case import (
    SchedulerScenarioConfig,
    run_scheduler_scenario,
)


def fake_row(**overrides):
    base = dict(
        completion_rate=0.2,
        completed=5.0,
        timeout=20.0,
        resubmissions=15.0,
        wasted_nh=100.0,
        overhang_nh=2.0,
    )
    base.update(overrides)
    return base


class TestIncentiveReport:
    def test_statements_cover_paper_statistics(self):
        statements = incentive_report(
            fake_row(),
            fake_row(completion_rate=0.9, completed=23.0, timeout=2.0,
                     resubmissions=1.0, wasted_nh=5.0, overhang_nh=4.0),
        )
        texts = " | ".join(s.statement for s in statements)
        # the two statistics the paper names explicitly
        assert "completed jobs increase from 5 to 23" in texts
        assert "resubmitted jobs decrease from 15 to 1" in texts
        # plus the user-facing success framing
        assert "success rate rises from 20% to 90%" in texts
        audiences = {s.audience for s in statements}
        assert audiences == {"users", "administrators"}

    def test_improved_flag(self):
        same = IncentiveStatement("users", "x", 1.0, 1.0)
        better = IncentiveStatement("users", "x", 1.0, 2.0)
        assert not same.improved
        assert better.improved

    def test_render_groups_by_audience(self):
        text = render_incentives(incentive_report(fake_row(), fake_row(completed=9.0)))
        lines = text.splitlines()
        assert lines[0] == "for users:"
        assert "for administrators:" in lines
        assert sum(1 for ln in lines if ln.startswith("  - ")) == 6

    def test_from_real_scenario_rows(self):
        baseline = run_scheduler_scenario(
            SchedulerScenarioConfig(seed=5, mode="none", n_jobs=14, n_nodes=8,
                                    horizon_s=200_000.0)
        )
        with_loop = run_scheduler_scenario(
            SchedulerScenarioConfig(seed=5, mode="autonomous", n_jobs=14, n_nodes=8,
                                    horizon_s=200_000.0)
        )
        statements = incentive_report(baseline, with_loop)
        # the deployment case the paper predicts: users and admins both win
        success = next(s for s in statements if "success rate" in s.statement)
        resub = next(s for s in statements if "resubmitted" in s.statement)
        assert success.after > success.before
        assert resub.after <= resub.before
