"""Tests for OSTs, the parallel filesystem, clients, and interference."""

import pytest

from repro.sim import Engine
from repro.storage.client import PeriodicWriter
from repro.storage.filesystem import ParallelFileSystem
from repro.storage.interference import deadline_miss_rate, interference_report
from repro.storage.ost import OST, OstState
from repro.storage.qos import QoSManager


def make_fs(n_osts=4, rate=1000.0, qos=None):
    eng = Engine()
    osts = [OST(f"ost{i}", nominal_rate_mbps=rate) for i in range(n_osts)]
    fs = ParallelFileSystem(eng, osts, qos=qos)
    return eng, fs


class TestOst:
    def test_effective_rate_states(self):
        o = OST("o", 1000.0)
        assert o.effective_rate_mbps == 1000.0
        o.set_state(OstState.DEGRADED, 0.1)
        assert o.effective_rate_mbps == 100.0
        o.set_state(OstState.FAILED)
        assert o.effective_rate_mbps == 0.0
        assert not o.usable

    def test_recovery_resets_factor(self):
        o = OST("o", 1000.0)
        o.set_state(OstState.DEGRADED, 0.1)
        o.set_state(OstState.HEALTHY)
        assert o.effective_rate_mbps == 1000.0

    def test_share_divides_among_transfers(self):
        o = OST("o", 1000.0)
        assert o.share_for_new_transfer() == 1000.0
        o.active_transfers.add(1)
        assert o.share_for_new_transfer() == 500.0

    def test_validation(self):
        with pytest.raises(ValueError):
            OST("o", 0.0)
        with pytest.raises(ValueError):
            OST("o", 100.0).set_state(OstState.DEGRADED, 0.0)


class TestFileSystem:
    def test_create_file_round_robin(self):
        _, fs = make_fs(4)
        f1 = fs.create_file("a", "u", stripe_count=2)
        f2 = fs.create_file("b", "u", stripe_count=2)
        assert len(f1.stripe_osts) == 2
        assert f1.stripe_osts != f2.stripe_osts  # cursor advanced

    def test_create_avoids_osts(self):
        _, fs = make_fs(4)
        f = fs.create_file("a", "u", stripe_count=2, avoid={"ost0", "ost1"})
        assert set(f.stripe_osts) <= {"ost2", "ost3"}

    def test_duplicate_file_raises(self):
        _, fs = make_fs()
        fs.create_file("a", "u")
        with pytest.raises(ValueError, match="exists"):
            fs.create_file("a", "u")

    def test_too_many_stripes_raises(self):
        _, fs = make_fs(2)
        with pytest.raises(ValueError, match="only"):
            fs.create_file("a", "u", stripe_count=3)

    def test_single_write_full_bandwidth(self):
        eng, fs = make_fs(4, rate=1000.0)
        fs.create_file("a", "u", stripe_count=2)
        done = []
        # two stripes, each idle → 2000 MB/s; 1000 MB → 0.5 s
        duration = fs.write("u", "a", 1000.0, done.append)
        assert duration == pytest.approx(0.5)
        eng.run(until=1.0)
        assert len(done) == 1
        assert done[0].achieved_mbps == pytest.approx(2000.0)

    def test_contention_halves_bandwidth(self):
        eng, fs = make_fs(2, rate=1000.0)
        fs.create_file("a", "u1", stripe_count=2)
        fs.create_file("b", "u2", stripe_count=2)
        d1 = fs.write("u1", "a", 1000.0)
        d2 = fs.write("u2", "b", 1000.0)
        assert d1 == pytest.approx(0.5)  # first writer sees idle system
        assert d2 == pytest.approx(1.0)  # second shares every OST
        eng.run(until=5.0)
        assert len(fs.transfers) == 2

    def test_degraded_ost_bottlenecks_whole_write(self):
        eng, fs = make_fs(2, rate=1000.0)
        fs.create_file("a", "u", stripe_count=2)
        fs.set_ost_state("ost0", OstState.DEGRADED, 0.1)
        # each stripe gets 550 MB; the degraded stripe at 100 MB/s dominates
        duration = fs.write("u", "a", 1100.0)
        assert duration == pytest.approx(5.5)

    def test_ost_telemetry_pinpoints_slow_ost(self):
        eng, fs = make_fs(2, rate=1000.0)
        fs.create_file("a", "u", stripe_count=2)
        fs.set_ost_state("ost0", OstState.DEGRADED, 0.1)
        fs.write("u", "a", 1000.0)
        eng.run(until=10.0)
        assert fs.ost_bandwidth_mbps("ost0") == pytest.approx(100.0)
        assert fs.ost_bandwidth_mbps("ost1") == pytest.approx(1000.0)

    def test_write_to_unknown_file(self):
        _, fs = make_fs()
        with pytest.raises(KeyError):
            fs.write("u", "ghost", 10.0)

    def test_invalid_size(self):
        _, fs = make_fs()
        fs.create_file("a", "u")
        with pytest.raises(ValueError):
            fs.write("u", "a", 0.0)

    def test_restripe_avoids_bad_ost(self):
        _, fs = make_fs(4)
        f = fs.create_file("a", "u", stripe_count=2)
        bad = f.stripe_osts[0]
        fs.restripe_file("a", avoid={bad})
        assert bad not in f.stripe_osts
        assert f.restripe_count == 1

    def test_restripe_unknown_file(self):
        _, fs = make_fs()
        with pytest.raises(KeyError):
            fs.restripe_file("ghost")

    def test_avoidance_is_best_effort_when_capacity_tight(self):
        """Avoiding more OSTs than spare capacity falls back gracefully."""
        _, fs = make_fs(4)
        f = fs.create_file("a", "u", stripe_count=3)
        # ask to avoid 2 of 4 → only 2 clean candidates for 3 stripes;
        # the reopen must still succeed using the healthier avoided OSTs
        fs.restripe_file("a", avoid={"ost0", "ost1"})
        assert len(f.stripe_osts) == 3
        assert f.restripe_count == 1

    def test_avoidance_fallback_prefers_healthy_osts(self):
        _, fs = make_fs(3)
        f = fs.create_file("a", "u", stripe_count=2)
        fs.set_ost_state("ost0", OstState.DEGRADED, 0.1)
        # avoid everything → fallback ranks avoided OSTs by effective rate,
        # so the two healthy ones are chosen over the degraded one
        fs.restripe_file("a", avoid={"ost0", "ost1", "ost2"})
        assert sorted(f.stripe_osts) == ["ost1", "ost2"]

    def test_qos_shaping_governs_when_slower(self):
        qos = QoSManager()
        qos.set_allocation("tenant", rate_mbps=100.0, burst_mb=0.0)
        eng, fs = make_fs(4, rate=1000.0, qos=qos)
        fs.create_file("a", "tenant", stripe_count=2)
        # physical would be 0.5 s; shaped: 1000 MB at 100 MB/s = 10 s
        duration = fs.write("tenant", "a", 1000.0)
        assert duration == pytest.approx(10.0)

    def test_qos_burst_allows_fast_write(self):
        qos = QoSManager()
        qos.set_allocation("tenant", rate_mbps=100.0, burst_mb=2000.0)
        eng, fs = make_fs(4, rate=1000.0, qos=qos)
        fs.create_file("a", "tenant", stripe_count=2)
        duration = fs.write("tenant", "a", 1000.0)
        assert duration == pytest.approx(0.5)  # burst credit covers it

    def test_ost_telemetry_updates(self):
        eng, fs = make_fs(2, rate=1000.0)
        f = fs.create_file("a", "u", stripe_count=2)
        fs.write("u", "a", 1000.0)
        assert fs.ost_pending_ops(f.stripe_osts[0]) == 1
        eng.run(until=2.0)
        assert fs.ost_pending_ops(f.stripe_osts[0]) == 0
        assert fs.ost_bandwidth_mbps(f.stripe_osts[0]) == pytest.approx(1000.0)
        assert fs.bytes_written_mb == 1000.0

    def test_load_fraction(self):
        eng, fs = make_fs(2)
        fs.create_file("a", "u", stripe_count=2)
        assert fs.load_fraction() == 0.0
        fs.write("u", "a", 10000.0)
        assert fs.load_fraction() == 1.0

    def test_needs_osts(self):
        with pytest.raises(ValueError):
            ParallelFileSystem(Engine(), [])


class TestPeriodicWriter:
    def test_writes_on_cadence(self):
        eng, fs = make_fs(4, rate=1000.0)
        w = PeriodicWriter(eng, fs, "app1", size_mb=100.0, period_s=10.0, stripe_count=2)
        w.start()
        eng.run(until=35.0)
        assert len(w.transfers) == 4  # t = 0, 10, 20, 30
        assert w.recent_bandwidth_mbps() == pytest.approx(2000.0)

    def test_avoid_osts_restripes_before_next_write(self):
        eng, fs = make_fs(4, rate=1000.0)
        w = PeriodicWriter(eng, fs, "app1", size_mb=100.0, period_s=10.0, stripe_count=2)
        w.start()
        eng.run(until=5.0)
        original = set(w.file.stripe_osts)
        w.avoid_osts(original)
        eng.run(until=15.0)
        assert set(w.file.stripe_osts).isdisjoint(original)
        assert w.file.restripe_count == 1

    def test_overlapping_writes_skipped(self):
        eng, fs = make_fs(2, rate=10.0)  # slow: 100 MB takes ~5+ s per stripe pair
        w = PeriodicWriter(eng, fs, "app1", size_mb=1000.0, period_s=10.0, stripe_count=2)
        w.start()
        eng.run(until=100.0)
        assert w.skipped_writes > 0

    def test_validation(self):
        eng, fs = make_fs()
        with pytest.raises(ValueError):
            PeriodicWriter(eng, fs, "x", size_mb=0.0)
        with pytest.raises(ValueError):
            PeriodicWriter(eng, fs, "y", period_s=0.0)

    def test_double_start_raises(self):
        eng, fs = make_fs()
        w = PeriodicWriter(eng, fs, "x")
        w.start()
        with pytest.raises(RuntimeError):
            w.start()


class TestInterferenceReport:
    def _transfers(self):
        eng, fs = make_fs(2, rate=1000.0)
        fs.create_file("a", "u1", stripe_count=2)
        fs.create_file("b", "u2", stripe_count=2)
        for i in range(10):
            eng.schedule(i * 10.0, fs.write, "u1", "a", 500.0)
            eng.schedule(i * 10.0 + 1.0, fs.write, "u2", "b", 500.0)
        eng.run(until=200.0)
        return fs.transfers

    def test_report_fields(self):
        transfers = self._transfers()
        rep = interference_report(transfers, "u1", isolation_duration_s=0.25)
        assert rep.n_transfers == 10
        assert rep.p95_s >= rep.p50_s
        assert rep.p99_s >= rep.p95_s
        assert rep.slowdown_vs_isolation >= 1.0

    def test_empty_client(self):
        rep = interference_report([], "ghost")
        assert rep.n_transfers == 0
        assert rep.slowdown_vs_isolation is None

    def test_deadline_miss_rate(self):
        transfers = self._transfers()
        assert deadline_miss_rate(transfers, "u1", deadline_s=1e9) == 0.0
        assert deadline_miss_rate(transfers, "u1", deadline_s=0.0) == 1.0
        assert deadline_miss_rate([], "ghost", 1.0) is None
