"""Tests for token buckets and QoS management, incl. property tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.qos import QoSManager, TokenBucket


class TestTokenBucket:
    def test_starts_full(self):
        b = TokenBucket(rate_mbps=100.0, burst_mb=500.0)
        assert b.level(0.0) == 500.0

    def test_burst_absorbed_without_delay(self):
        b = TokenBucket(100.0, 500.0)
        assert b.shaped_duration(400.0, now=0.0) == 0.0

    def test_deficit_shaped_at_rate(self):
        b = TokenBucket(100.0, 500.0)
        b.consume(500.0, now=0.0)  # drain
        # 200 MB at 100 MB/s → 2 s
        assert b.shaped_duration(200.0, now=0.0) == pytest.approx(2.0)

    def test_refill_over_time(self):
        b = TokenBucket(100.0, 500.0)
        b.consume(500.0, now=0.0)
        assert b.level(2.0) == pytest.approx(200.0)
        assert b.level(100.0) == 500.0  # capped at burst

    def test_time_backwards_raises(self):
        b = TokenBucket(100.0, 500.0)
        b.level(10.0)
        with pytest.raises(ValueError, match="backwards"):
            b.level(5.0)

    def test_set_burst_clamps_level(self):
        b = TokenBucket(100.0, 500.0)
        b.set_burst(100.0, now=0.0)
        assert b.level(0.0) == 100.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(0.0, 100.0)
        with pytest.raises(ValueError):
            TokenBucket(10.0, -1.0)
        b = TokenBucket(10.0, 10.0)
        with pytest.raises(ValueError):
            b.consume(-1.0, 0.0)
        with pytest.raises(ValueError):
            b.shaped_duration(-1.0, 0.0)
        with pytest.raises(ValueError):
            b.set_rate(0.0)

    @given(
        rate=st.floats(min_value=1.0, max_value=1000.0),
        burst=st.floats(min_value=0.0, max_value=1000.0),
        events=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=10.0),  # dt
                st.floats(min_value=0.0, max_value=500.0),  # size
            ),
            min_size=1,
            max_size=50,
        ),
    )
    @settings(max_examples=100)
    def test_level_bounds_invariant(self, rate, burst, events):
        """Level stays within [0, burst] under arbitrary consume sequences."""
        b = TokenBucket(rate, burst)
        now = 0.0
        for dt, size in events:
            now += dt
            b.consume(size, now)
            level = b.level(now)
            assert 0.0 <= level <= burst + 1e-9

    @given(
        rate=st.floats(min_value=1.0, max_value=100.0),
        burst=st.floats(min_value=0.0, max_value=100.0),
        sizes=st.lists(st.floats(min_value=0.1, max_value=50.0), min_size=1, max_size=30),
    )
    @settings(max_examples=100)
    def test_shaped_throughput_bounded(self, rate, burst, sizes):
        """Serial shaped transfers cannot beat rate*time + burst."""
        b = TokenBucket(rate, burst)
        now = 0.0
        total = 0.0
        for size in sizes:
            d = b.shaped_duration(size, now)
            now += d  # transfer takes at least the shaped duration
            b.consume(size, now)
            total += size
        # at time `now`, total consumed must respect the long-run bound
        assert total <= rate * now + burst + 1e-6


class TestQoSManager:
    def test_unshaped_tenant_no_delay(self):
        q = QoSManager()
        assert q.shaped_duration("ghost", 1000.0, 0.0) == 0.0

    def test_set_allocation_creates_bucket(self):
        q = QoSManager()
        q.set_allocation("a", 100.0, 200.0)
        assert q.allocation("a") == (100.0, 200.0)
        assert q.bucket("a") is not None

    def test_update_allocation_in_place(self):
        q = QoSManager()
        q.set_allocation("a", 100.0, 200.0)
        q.consume("a", 200.0, now=0.0)
        q.set_allocation("a", 50.0, 100.0, now=0.0)
        assert q.allocation("a") == (50.0, 100.0)
        assert q.adjustments == 2

    def test_remove_allocation(self):
        q = QoSManager()
        q.set_allocation("a", 100.0, 200.0)
        q.remove_allocation("a")
        assert q.allocation("a") is None
        assert q.shaped_duration("a", 100.0, 0.0) == 0.0

    def test_tenants_sorted(self):
        q = QoSManager()
        q.set_allocation("zeta", 1.0, 1.0)
        q.set_allocation("alpha", 1.0, 1.0)
        assert q.tenants() == ["alpha", "zeta"]
