"""Property-based tests: scheduler invariants under randomized workloads."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.application import ApplicationProfile
from repro.cluster.job import Job, JobState, TERMINAL_STATES
from repro.cluster.node import Node, NodeSpec
from repro.cluster.scheduler import Scheduler
from repro.sim import Engine

job_specs = st.lists(
    st.tuples(
        st.floats(min_value=50.0, max_value=2000.0),   # true runtime
        st.floats(min_value=0.5, max_value=2.0),       # walltime factor
        st.integers(min_value=1, max_value=3),         # nodes
        st.floats(min_value=0.0, max_value=3000.0),    # submit time
    ),
    min_size=1,
    max_size=12,
)


def build_and_run(specs, n_nodes=4):
    eng = Engine()
    sched = Scheduler(eng, [Node(f"n{i}", NodeSpec()) for i in range(n_nodes)])
    violations = []

    def check(_job):
        busy = sum(1 for n in sched.nodes.values() if n.is_busy)
        expected = sum(j.n_nodes for j in sched.running_jobs())
        if busy != expected:
            violations.append((eng.now, busy, expected))
        for job in sched.running_jobs():
            owned = [
                n for n in sched.nodes.values() if n.running_job_id == job.job_id
            ]
            if len(owned) != job.n_nodes:
                violations.append((eng.now, job.job_id, len(owned)))

    sched.on_job_start.append(check)
    sched.on_job_end.append(check)
    jobs = []
    for i, (runtime, factor, n, submit) in enumerate(specs):
        profile = ApplicationProfile(f"app{i}", runtime, 1.0, marker_period_s=100.0)
        job = Job(
            f"j{i}", "u", profile,
            n_nodes=n, walltime_request_s=max(60.0, runtime * factor),
        )
        jobs.append(job)
        eng.schedule_at(submit, sched.submit, job)
    eng.run(until=500_000.0)
    return eng, sched, jobs, violations


@given(job_specs)
@settings(max_examples=40, deadline=None)
def test_no_oversubscription_and_all_jobs_terminal(specs):
    eng, sched, jobs, violations = build_and_run(specs)
    assert violations == []
    # every job reaches a terminal state within the generous horizon
    assert all(j.state in TERMINAL_STATES for j in jobs)
    # all nodes released at the end
    assert all(not n.is_busy for n in sched.nodes.values())


@given(job_specs)
@settings(max_examples=40, deadline=None)
def test_no_job_exceeds_its_limit(specs):
    _, _, jobs, _ = build_and_run(specs)
    for job in jobs:
        if job.runtime is not None:
            # runtime never exceeds the (unextended) limit plus scheduling slop
            assert job.runtime <= job.time_limit_s + 1e-6


@given(job_specs)
@settings(max_examples=40, deadline=None)
def test_conservation_of_jobs(specs):
    _, sched, jobs, _ = build_and_run(specs)
    stats = sched.stats
    terminal_counts = (
        stats.completed + stats.timeout + stats.failed + stats.killed_maintenance
    )
    assert stats.submitted == len(jobs)
    assert terminal_counts == len(jobs)


@given(job_specs)
@settings(max_examples=30, deadline=None)
def test_generous_walltime_means_completion(specs):
    """Jobs whose request covers their runtime always complete."""
    _, _, jobs, _ = build_and_run(specs)
    for job in jobs:
        if job.walltime_request_s >= job.profile.nominal_runtime_s() + 1.0:
            assert job.state is JobState.COMPLETED
