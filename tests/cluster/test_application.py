"""Tests for application profiles and running-app simulation."""

import numpy as np
import pytest

from repro.cluster.application import (
    ApplicationProfile,
    LaunchConfig,
    PhaseChange,
    RunningApp,
)
from repro.sim import Engine
from repro.telemetry.markers import ProgressMarkerChannel


def profile(**overrides):
    defaults = dict(
        name="mini-app",
        total_steps=1000.0,
        base_step_rate=1.0,  # 1000 s nominal runtime
        marker_period_s=30.0,
        checkpoint_cost_s=50.0,
    )
    defaults.update(overrides)
    return ApplicationProfile(**defaults)


def run_app(prof, until, *, cores=32, launch=None, channel=None, start_step=0.0, engine=None):
    eng = engine or Engine()
    done = []
    app = RunningApp(
        eng,
        "j1",
        prof,
        cores=cores,
        launch=launch,
        channel=channel,
        on_complete=lambda a: done.append(eng.now),
        start_step=start_step,
    )
    app.start()
    eng.run(until=until)
    return app, done, eng


class TestApplicationProfile:
    def test_validation(self):
        with pytest.raises(ValueError):
            profile(total_steps=0)
        with pytest.raises(ValueError):
            profile(base_step_rate=0)
        with pytest.raises(ValueError):
            profile(marker_period_s=0)

    def test_phases_must_be_sorted(self):
        with pytest.raises(ValueError, match="sorted"):
            profile(phases=(PhaseChange(0.5, 2.0), PhaseChange(0.2, 1.0)))

    def test_phase_multiplier_segments(self):
        p = profile(phases=(PhaseChange(0.5, 2.0), PhaseChange(0.8, 0.5)))
        assert p.phase_multiplier(0.0) == 1.0
        assert p.phase_multiplier(0.49) == 1.0
        assert p.phase_multiplier(0.5) == 2.0
        assert p.phase_multiplier(0.79) == 2.0
        assert p.phase_multiplier(0.9) == 0.5

    def test_nominal_runtime_without_phases(self):
        assert profile().nominal_runtime_s() == pytest.approx(1000.0)

    def test_nominal_runtime_with_phases(self):
        # first half at rate 1, second half at rate 2 → 500 + 250
        p = profile(phases=(PhaseChange(0.5, 2.0),))
        assert p.nominal_runtime_s() == pytest.approx(750.0)


class TestLaunchConfig:
    def test_default_is_nominal(self):
        assert LaunchConfig().compute_multiplier(32, uses_gpu=False) == 1.0

    def test_undersubscription(self):
        cfg = LaunchConfig(threads=8)
        assert cfg.compute_multiplier(32, uses_gpu=False) == pytest.approx(0.25)

    def test_oversubscription_penalty(self):
        cfg = LaunchConfig(threads=64)
        assert cfg.compute_multiplier(32, uses_gpu=False) == pytest.approx(0.5 * 0.8)

    def test_gpu_offload_disabled(self):
        cfg = LaunchConfig(gpu_offload_enabled=False)
        assert cfg.compute_multiplier(32, uses_gpu=True) == pytest.approx(0.2)
        assert cfg.compute_multiplier(32, uses_gpu=False) == 1.0

    def test_missing_library(self):
        cfg = LaunchConfig(library_paths=("generic",), expected_libraries=("site-blas",))
        assert cfg.compute_multiplier(32, uses_gpu=False) == pytest.approx(0.6)

    def test_invalid_threads(self):
        with pytest.raises(ValueError):
            LaunchConfig(threads=-1).compute_multiplier(32, uses_gpu=False)


class TestRunningApp:
    def test_completes_at_nominal_runtime(self):
        app, done, eng = run_app(profile(), until=2000.0)
        assert app.completed
        assert done == [pytest.approx(1000.0)]
        assert app.steps_done == 1000.0

    def test_markers_emitted_on_cadence(self):
        ch = ProgressMarkerChannel()
        app, _, _ = run_app(profile(), until=100.0, channel=ch)
        markers = ch.read_all("j1")
        times = [m.time for m in markers]
        assert times[:4] == [0.0, 30.0, 60.0, 90.0]
        steps = [m.step for m in markers]
        assert steps == sorted(steps)

    def test_final_marker_at_completion(self):
        ch = ProgressMarkerChannel()
        app, _, _ = run_app(profile(), until=2000.0, channel=ch)
        last = ch.last("j1")
        assert last.step == 1000.0
        assert last.time == pytest.approx(1000.0)

    def test_misconfigured_launch_slows_progress(self):
        slow_launch = LaunchConfig(threads=8)  # 0.25x on 32 cores
        app, done, _ = run_app(profile(), until=8000.0, launch=slow_launch)
        assert done == [pytest.approx(4000.0)]

    def test_restart_from_checkpoint_step(self):
        app, done, _ = run_app(profile(), until=2000.0, start_step=500.0)
        assert done == [pytest.approx(500.0)]  # only half the work left

    def test_stop_freezes_progress(self):
        eng = Engine()
        app = RunningApp(eng, "j1", profile(), cores=32)
        app.start()
        eng.run(until=400.0)
        final = app.stop()
        assert final == pytest.approx(400.0, rel=0.01)
        eng.run(until=1000.0)
        assert app.steps_done == final
        assert not app.completed

    def test_external_multiplier_slows(self):
        eng = Engine()
        app = RunningApp(eng, "j1", profile(), cores=32)
        app.start()
        eng.schedule(500.0, app.set_external_multiplier, 0.5)
        eng.run(until=3000.0)
        # 500 steps at rate 1.0, then 500 steps at 0.5 → total 1500 s
        assert app.completed
        assert app.steps_done == 1000.0

    def test_phase_change_affects_rate(self):
        p = profile(phases=(PhaseChange(0.5, 2.0),))
        app, done, _ = run_app(p, until=2000.0)
        assert done == [pytest.approx(750.0, rel=0.01)]

    def test_checkpoint_pauses_and_records(self):
        eng = Engine()
        records = []
        app = RunningApp(
            eng,
            "j1",
            profile(),
            cores=32,
            on_checkpoint=lambda a, step: records.append((eng.now, step)),
        )
        app.start()
        eng.schedule(300.0, app.begin_checkpoint)
        eng.run(until=3000.0)
        assert len(records) == 1
        ckpt_time, ckpt_step = records[0]
        assert ckpt_time == pytest.approx(350.0)  # 300 + 50 cost
        assert ckpt_step == pytest.approx(300.0, rel=0.01)
        assert app.last_checkpoint_step == ckpt_step
        # completion delayed by the checkpoint cost
        assert app.completed

    def test_checkpoint_unsupported(self):
        eng = Engine()
        app = RunningApp(eng, "j1", profile(supports_checkpoint=False), cores=32)
        app.start()
        assert app.begin_checkpoint() is False

    def test_kill_during_checkpoint_loses_it(self):
        eng = Engine()
        records = []
        app = RunningApp(
            eng, "j1", profile(), cores=32, on_checkpoint=lambda a, s: records.append(s)
        )
        app.start()
        eng.schedule(300.0, app.begin_checkpoint)
        eng.schedule(320.0, app.stop)  # mid-checkpoint
        eng.run(until=1000.0)
        assert records == []
        assert app.last_checkpoint_step == 0.0

    def test_thread_fix_speeds_up(self):
        eng = Engine()
        app = RunningApp(eng, "j1", profile(), cores=32, launch=LaunchConfig(threads=8))
        app.start()
        eng.schedule(1000.0, app.apply_thread_fix, 32)
        eng.run(until=5000.0)
        # 1000 s at 0.25 rate = 250 steps; remaining 750 at rate 1 → done at 1750
        assert app.completed
        assert eng.now >= 1750.0

    def test_noise_requires_rng_else_deterministic(self):
        app, done, _ = run_app(profile(rate_noise_std=0.5), until=2000.0)
        assert done == [pytest.approx(1000.0)]  # no rng → no noise applied

    def test_noisy_progress_still_completes(self):
        eng = Engine()
        rng = np.random.default_rng(1)
        app = RunningApp(eng, "j1", profile(rate_noise_std=0.2), cores=32, rng=rng)
        app.start()
        eng.run(until=5000.0)
        assert app.completed
        assert app.steps_done == 1000.0

    def test_double_start_raises(self):
        eng = Engine()
        app = RunningApp(eng, "j1", profile(), cores=32)
        app.start()
        with pytest.raises(RuntimeError):
            app.start()

    def test_progress_fraction(self):
        eng = Engine()
        app = RunningApp(eng, "j1", profile(), cores=32)
        app.start()
        eng.run(until=250.0)
        app._advance(eng.now)
        assert app.progress_fraction == pytest.approx(0.25, rel=0.02)

    def test_remaining_seconds_nominal(self):
        eng = Engine()
        app = RunningApp(eng, "j1", profile(), cores=32)
        app.start()
        eng.run(until=400.0)
        app._advance(eng.now)
        assert app.remaining_seconds_nominal() == pytest.approx(600.0, rel=0.02)
