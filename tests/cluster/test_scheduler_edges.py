"""Edge-case tests for scheduler reservations, extensions, and accounting."""


import pytest

from repro.cluster.application import ApplicationProfile
from repro.cluster.job import Job, JobState
from repro.cluster.node import Node, NodeSpec
from repro.cluster.scheduler import Reservation, Scheduler
from repro.sim import Engine


def prof(runtime=1000.0, **kw):
    defaults = dict(marker_period_s=100.0)
    defaults.update(kw)
    return ApplicationProfile("app", runtime, 1.0, **defaults)


class TestReservationEdges:
    def test_reservation_validation(self):
        with pytest.raises(ValueError):
            Reservation(frozenset({"n0"}), 100.0, 100.0)  # empty window

    def test_reservation_unknown_node(self):
        eng = Engine()
        sched = Scheduler(eng, [Node("n0", NodeSpec())])
        with pytest.raises(ValueError, match="unknown"):
            sched.add_reservation(Reservation(frozenset({"zz"}), 10.0, 20.0))

    def test_job_fits_exactly_before_reservation(self):
        eng = Engine()
        sched = Scheduler(eng, [Node("n0", NodeSpec())])
        sched.add_reservation(Reservation(frozenset({"n0"}), 1000.0, 2000.0))
        # walltime 1000 → window [0, 1000) does not intersect [1000, 2000)
        job = Job("j1", "u", prof(runtime=500.0), walltime_request_s=1000.0)
        sched.submit(job)
        eng.run(until=5000.0)
        assert job.start_time == 0.0
        assert job.state is JobState.COMPLETED

    def test_job_overlapping_reservation_waits(self):
        eng = Engine()
        sched = Scheduler(eng, [Node("n0", NodeSpec())])
        sched.add_reservation(Reservation(frozenset({"n0"}), 500.0, 1500.0))
        job = Job("j1", "u", prof(runtime=600.0), walltime_request_s=1000.0)
        sched.submit(job)
        eng.run(until=5000.0)
        assert job.start_time >= 1500.0
        assert job.state is JobState.COMPLETED

    def test_extension_cap_uses_earliest_reservation(self):
        eng = Engine()
        sched = Scheduler(eng, [Node("n0", NodeSpec())])
        job = Job("j1", "u", prof(runtime=5000.0), walltime_request_s=1000.0)
        sched.submit(job)
        eng.run(until=1.0)
        sched.add_reservation(Reservation(frozenset({"n0"}), 2000.0, 3000.0))
        sched.add_reservation(Reservation(frozenset({"n0"}), 1400.0, 1600.0))
        responses = []
        eng.schedule(900.0, lambda: responses.append(sched.request_extension("j1", 5000.0)))
        eng.run(until=1200.0)
        # deadline 1000; earliest conflicting reservation starts at 1400
        assert responses[0].granted_s == pytest.approx(400.0)

    def test_reservation_on_other_nodes_does_not_cap(self):
        eng = Engine()
        sched = Scheduler(eng, [Node("n0", NodeSpec()), Node("n1", NodeSpec())])
        job = Job("j1", "u", prof(runtime=5000.0), walltime_request_s=1000.0)
        sched.submit(job)
        eng.run(until=1.0)
        other = "n1" if job.assigned_nodes == ["n0"] else "n0"
        sched.add_reservation(Reservation(frozenset({other}), 1200.0, 2000.0))
        responses = []
        eng.schedule(900.0, lambda: responses.append(sched.request_extension("j1", 500.0)))
        eng.run(until=1200.0)
        assert responses[0].granted_s == 500.0


class TestExtensionEdges:
    def test_nonpositive_request_denied(self):
        eng = Engine()
        sched = Scheduler(eng, [Node("n0", NodeSpec())])
        job = Job("j1", "u", prof(runtime=5000.0), walltime_request_s=1000.0)
        sched.submit(job)
        eng.run(until=1.0)
        response = sched.request_extension("j1", 0.0)
        assert response.denied
        assert "non-positive" in response.reason

    def test_extension_after_extension(self):
        eng = Engine()
        sched = Scheduler(eng, [Node("n0", NodeSpec())])
        job = Job("j1", "u", prof(runtime=2500.0), walltime_request_s=1000.0)
        sched.submit(job)
        eng.schedule(900.0, sched.request_extension, "j1", 800.0)
        eng.schedule(1700.0, sched.request_extension, "j1", 800.0)
        eng.run(until=10_000.0)
        assert job.state is JobState.COMPLETED
        assert job.extension_count == 2
        assert job.time_limit_s == pytest.approx(2600.0)

    def test_denied_extension_does_not_move_deadline(self):
        from repro.cluster.scheduler import ExtensionPolicy, SchedulerConfig

        eng = Engine()
        policy = ExtensionPolicy(max_extensions_per_job=0)
        sched = Scheduler(
            eng, [Node("n0", NodeSpec())], config=SchedulerConfig(extension_policy=policy)
        )
        job = Job("j1", "u", prof(runtime=2000.0), walltime_request_s=1000.0)
        sched.submit(job)
        eng.schedule(900.0, sched.request_extension, "j1", 800.0)
        eng.run(until=5000.0)
        assert job.state is JobState.TIMEOUT
        assert job.end_time == pytest.approx(1000.0)


class TestAccountingEdges:
    def test_utilization_with_since(self):
        eng = Engine()
        sched = Scheduler(eng, [Node("n0", NodeSpec())])
        job = Job("j1", "u", prof(runtime=500.0), walltime_request_s=600.0)
        sched.submit(job)
        eng.run(until=1000.0)
        # full window: 500/1000; later window baseline shifts
        assert sched.utilization(since=0.0) == pytest.approx(0.5, rel=0.01)

    def test_finished_jobs_listing(self):
        eng = Engine()
        sched = Scheduler(eng, [Node("n0", NodeSpec())])
        j1 = Job("j1", "u", prof(runtime=100.0), walltime_request_s=200.0)
        j2 = Job("j2", "u", prof(runtime=100_000.0), walltime_request_s=200_000.0)
        sched.submit(j1)
        sched.submit(j2)
        eng.run(until=1000.0)
        finished = sched.finished_jobs()
        assert [j.job_id for j in finished] == ["j1"]
