"""Tests for nodes, jobs, power, checkpoints, maintenance, failures, facade."""

import pytest

from repro.cluster.application import ApplicationProfile
from repro.cluster.checkpoint import CheckpointRecord, CheckpointStore
from repro.cluster.cluster import Cluster, ClusterConfig
from repro.cluster.failures import FailureInjector
from repro.cluster.job import Job, JobState
from repro.cluster.maintenance import MaintenanceEvent, MaintenanceManager
from repro.cluster.node import Node, NodeSpec, NodeState
from repro.cluster.power import PowerModel
from repro.cluster.scheduler import Scheduler
from repro.sim import Engine, RngRegistry
from repro.telemetry.metric import SeriesKey


def prof(runtime=500.0):
    return ApplicationProfile("app", runtime, 1.0, marker_period_s=50.0)


class TestNode:
    def test_assign_release_accounting(self):
        n = Node("n0", NodeSpec())
        n.assign("j1", now=10.0)
        assert n.is_busy and not n.is_allocatable
        n.release(now=60.0)
        assert n.busy_seconds == 50.0
        assert n.is_allocatable

    def test_double_assign_raises(self):
        n = Node("n0", NodeSpec())
        n.assign("j1", 0.0)
        with pytest.raises(RuntimeError):
            n.assign("j2", 1.0)

    def test_release_idle_raises(self):
        with pytest.raises(RuntimeError):
            Node("n0", NodeSpec()).release(0.0)

    def test_down_node_not_allocatable(self):
        n = Node("n0", NodeSpec())
        n.state = NodeState.DOWN
        assert not n.is_allocatable

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            NodeSpec(cores=0)
        with pytest.raises(ValueError):
            NodeSpec(idle_watts=500, peak_watts=100)


class TestJob:
    def test_validation(self):
        with pytest.raises(ValueError):
            Job("j", "u", prof(), n_nodes=0)
        with pytest.raises(ValueError):
            Job("j", "u", prof(), walltime_request_s=0)
        with pytest.raises(ValueError):
            Job("j", "u", prof(), restart_step=-1)

    def test_extension_bookkeeping(self):
        j = Job("j", "u", prof(), walltime_request_s=1000.0)
        j.record_extension(300.0, 300.0, time=500.0)
        j.record_extension(300.0, 0.0, time=700.0)  # denied
        j.record_extension(400.0, 200.0, time=800.0)  # shortened
        assert j.extension_count == 2
        assert j.total_extension_s == 500.0
        assert j.time_limit_s == 1500.0
        assert j.extensions[1].denied
        assert j.extensions[2].shortened

    def test_derived_times(self):
        j = Job("j", "u", prof(), walltime_request_s=1000.0, submit_time=100.0)
        assert j.wait_time is None
        j.start_time = 150.0
        assert j.wait_time == 50.0
        assert j.deadline == 1150.0
        j.end_time = 500.0
        assert j.runtime == 350.0
        assert j.node_seconds() == 350.0


class TestPowerModel:
    def test_idle_and_peak(self):
        pm = PowerModel()
        n = Node("n0", NodeSpec(idle_watts=100, peak_watts=500))
        assert pm.node_power(n, 0.0) == 100.0
        assert pm.node_power(n, 1.0) == 500.0
        assert pm.node_power(n, 0.5) == 300.0

    def test_down_node_zero_power(self):
        pm = PowerModel()
        n = Node("n0", NodeSpec())
        n.state = NodeState.DOWN
        assert pm.node_power(n, 1.0) == 0.0

    def test_util_clamped(self):
        pm = PowerModel()
        n = Node("n0", NodeSpec(idle_watts=100, peak_watts=500))
        assert pm.node_power(n, 2.0) == 500.0
        assert pm.node_power(n, -1.0) == 100.0

    def test_cluster_power(self):
        pm = PowerModel()
        nodes = [Node(f"n{i}", NodeSpec(idle_watts=100, peak_watts=500)) for i in range(3)]
        total = pm.cluster_power(nodes, lambda n: 0.0)
        assert total == 300.0


class TestCheckpointStore:
    def test_newest_wins(self):
        store = CheckpointStore()
        store.save(CheckpointRecord("j1", "u", "app", step=100.0, time=10.0))
        store.save(CheckpointRecord("j2", "u", "app", step=200.0, time=20.0))
        assert store.latest("u", "app").step == 200.0
        assert store.restart_step("u", "app") == 200.0

    def test_missing_returns_zero(self):
        assert CheckpointStore().restart_step("u", "app") == 0.0

    def test_discard(self):
        store = CheckpointStore()
        store.save(CheckpointRecord("j1", "u", "app", 100.0, 10.0))
        store.discard("u", "app")
        assert store.latest("u", "app") is None

    def test_negative_step_rejected(self):
        with pytest.raises(ValueError):
            CheckpointRecord("j", "u", "a", step=-1.0, time=0.0)


class TestMaintenance:
    def _setup(self, announce_lead=500.0):
        eng = Engine()
        nodes = [Node(f"n{i}", NodeSpec()) for i in range(2)]
        sched = Scheduler(eng, nodes)
        mgr = MaintenanceManager(eng, sched)
        return eng, sched, mgr

    def test_event_validation(self):
        with pytest.raises(ValueError):
            MaintenanceEvent(frozenset({"n0"}), 100.0, duration_s=0.0)

    def test_unknown_nodes_rejected(self):
        eng, sched, mgr = self._setup()
        with pytest.raises(ValueError, match="unknown nodes"):
            mgr.schedule_event(MaintenanceEvent(frozenset({"zz"}), 100.0, 50.0))

    def test_running_job_killed_at_window_start(self):
        eng, sched, mgr = self._setup()
        job = Job("j1", "u", prof(runtime=5000.0), walltime_request_s=6000.0)
        sched.submit(job)
        mgr.schedule_event(
            MaintenanceEvent(frozenset({"n0", "n1"}), 1000.0, 500.0, announce_lead_s=200.0)
        )
        eng.run(until=3000.0)
        assert job.state is JobState.KILLED_MAINTENANCE
        assert mgr.jobs_killed_by_maintenance == 1

    def test_nodes_recover_after_window(self):
        eng, sched, mgr = self._setup()
        mgr.schedule_event(MaintenanceEvent(frozenset({"n0"}), 100.0, 50.0, announce_lead_s=50.0))
        eng.run(until=120.0)
        assert sched.nodes["n0"].state is NodeState.MAINTENANCE
        eng.run(until=200.0)
        assert sched.nodes["n0"].state is NodeState.UP

    def test_announcement_fires_hooks_and_reserves(self):
        eng, sched, mgr = self._setup()
        announced = []
        mgr.on_announce.append(announced.append)
        mgr.schedule_event(
            MaintenanceEvent(frozenset({"n0"}), 1000.0, 500.0, announce_lead_s=400.0)
        )
        eng.run(until=700.0)
        assert len(announced) == 1
        assert len(sched.reservations) == 1
        assert sched.reservations[0].t_start == 1000.0

    def test_new_jobs_avoid_reserved_window(self):
        eng, sched, mgr = self._setup()
        mgr.schedule_event(
            MaintenanceEvent(frozenset({"n0", "n1"}), 500.0, 500.0, announce_lead_s=500.0)
        )
        eng.run(until=10.0)
        # job would overlap the window → must wait until after maintenance
        job = Job("j1", "u", prof(runtime=600.0), walltime_request_s=800.0)
        sched.submit(job)
        eng.run(until=5000.0)
        assert job.start_time >= 1000.0
        assert job.state is JobState.COMPLETED


class TestFailureInjector:
    def test_failures_injected_and_repaired(self):
        eng = Engine()
        nodes = [Node(f"n{i}", NodeSpec()) for i in range(4)]
        sched = Scheduler(eng, nodes)
        rng = RngRegistry(seed=3).stream("fail")
        inj = FailureInjector(
            eng, sched, rng, mtbf_node_s=1000.0, repair_time_s=100.0
        )
        inj.start()
        eng.run(until=2000.0)
        assert len(inj.records) > 0
        # by the horizon, early failures have been repaired
        assert any(n.state is NodeState.UP for n in nodes)

    def test_validation(self):
        eng = Engine()
        sched = Scheduler(eng, [Node("n0", NodeSpec())])
        rng = RngRegistry(seed=0).stream("f")
        with pytest.raises(ValueError):
            FailureInjector(eng, sched, rng, mtbf_node_s=0.0)

    def test_stop_halts_injection(self):
        eng = Engine()
        sched = Scheduler(eng, [Node(f"n{i}", NodeSpec()) for i in range(4)])
        rng = RngRegistry(seed=4).stream("f")
        inj = FailureInjector(eng, sched, rng, mtbf_node_s=500.0, repair_time_s=50.0)
        inj.start()
        eng.run(until=1000.0)
        count = len(inj.records)
        inj.stop()
        eng.run(until=5000.0)
        assert len(inj.records) == count


class TestClusterFacade:
    def test_assembly_and_job_flow(self):
        eng = Engine()
        cluster = Cluster(eng, ClusterConfig(n_nodes=4, telemetry_period_s=50.0))
        job = Job("j1", "u", prof(runtime=300.0), walltime_request_s=500.0)
        cluster.submit(job)
        cluster.run(until=1000.0)
        assert job.state is JobState.COMPLETED
        # telemetry flowed into the store
        key = SeriesKey.of("node_cpu_util", node="n0000")
        times, values = cluster.store.query(key, 0, 1000)
        assert times.size > 0
        assert values.max() > 0.5  # busy while the job ran

    def test_progress_markers_mirrored(self):
        eng = Engine()
        cluster = Cluster(eng, ClusterConfig(n_nodes=2))
        job = Job("j1", "u", prof(runtime=300.0), walltime_request_s=500.0)
        cluster.submit(job)
        cluster.run(until=1000.0)
        key = SeriesKey.of("job_progress_steps", job="j1")
        times, steps = cluster.store.query(key, 0, 1000)
        assert steps[-1] == 300.0

    def test_telemetry_disabled(self):
        eng = Engine()
        cluster = Cluster(eng, ClusterConfig(n_nodes=2, enable_telemetry=False))
        assert cluster.samplers == []
        assert cluster.pipeline is None

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ClusterConfig(n_nodes=0)
