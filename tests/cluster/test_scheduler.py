"""Tests for the FCFS + EASY backfill scheduler and the extension hook."""

import pytest

from repro.cluster.application import ApplicationProfile
from repro.cluster.checkpoint import CheckpointStore
from repro.cluster.job import Job, JobState
from repro.cluster.node import Node, NodeSpec, NodeState
from repro.cluster.scheduler import (
    ExtensionPolicy,
    Reservation,
    Scheduler,
    SchedulerConfig,
)
from repro.sim import Engine, RngRegistry


def make_profile(runtime_s=1000.0, **overrides):
    defaults = dict(
        name="app",
        total_steps=runtime_s,
        base_step_rate=1.0,
        marker_period_s=50.0,
        checkpoint_cost_s=30.0,
    )
    defaults.update(overrides)
    return ApplicationProfile(**defaults)


def make_job(job_id, runtime_s=1000.0, walltime_s=1500.0, n_nodes=1, **job_kw):
    return Job(
        job_id,
        "alice",
        make_profile(runtime_s),
        n_nodes=n_nodes,
        walltime_request_s=walltime_s,
        **job_kw,
    )


def make_sched(n_nodes=4, **cfg_kw):
    eng = Engine()
    nodes = [Node(f"n{i}", NodeSpec(cores=32)) for i in range(n_nodes)]
    sched = Scheduler(eng, nodes, config=SchedulerConfig(**cfg_kw))
    return eng, sched


class TestBasicScheduling:
    def test_single_job_runs_to_completion(self):
        eng, sched = make_sched()
        job = make_job("j1", runtime_s=500.0, walltime_s=1000.0)
        sched.submit(job)
        eng.run(until=2000.0)
        assert job.state is JobState.COMPLETED
        assert job.start_time == 0.0
        assert job.end_time == pytest.approx(500.0)
        assert job.final_step == 500.0

    def test_walltime_kill(self):
        eng, sched = make_sched()
        job = make_job("j1", runtime_s=2000.0, walltime_s=1000.0)  # underestimated
        sched.submit(job)
        eng.run(until=3000.0)
        assert job.state is JobState.TIMEOUT
        assert job.end_time == pytest.approx(1000.0)
        assert job.final_step == pytest.approx(1000.0, rel=0.01)
        assert sched.stats.timeout == 1

    def test_fcfs_order(self):
        eng, sched = make_sched(n_nodes=1)
        j1 = make_job("j1", runtime_s=100.0, walltime_s=200.0)
        j2 = make_job("j2", runtime_s=100.0, walltime_s=200.0)
        sched.submit(j1)
        sched.submit(j2)
        eng.run(until=1000.0)
        assert j1.start_time < j2.start_time
        assert j2.start_time == pytest.approx(100.0)

    def test_priority_overrides_fcfs(self):
        eng, sched = make_sched(n_nodes=1)
        # occupy the node so both queue
        blocker = make_job("j0", runtime_s=100.0, walltime_s=150.0)
        sched.submit(blocker)
        j1 = make_job("j1", runtime_s=100.0, walltime_s=200.0)
        j2 = make_job("j2", runtime_s=100.0, walltime_s=200.0, priority=10)
        eng.schedule(10.0, sched.submit, j1)
        eng.schedule(20.0, sched.submit, j2)
        eng.run(until=1000.0)
        assert j2.start_time < j1.start_time

    def test_multi_node_job_waits_for_enough_nodes(self):
        eng, sched = make_sched(n_nodes=4)
        small = make_job("small", runtime_s=300.0, walltime_s=400.0, n_nodes=3)
        big = make_job("big", runtime_s=100.0, walltime_s=200.0, n_nodes=4)
        sched.submit(small)
        eng.schedule(5.0, sched.submit, big)  # strictly later → FCFS after small
        eng.run(until=2000.0)
        assert big.start_time >= small.end_time
        assert big.state is JobState.COMPLETED

    def test_no_node_oversubscription(self):
        """Invariant: a node never hosts two jobs at once."""
        eng, sched = make_sched(n_nodes=2)
        violations = []

        def check(_):
            seen = {}
            for n in sched.nodes.values():
                if n.running_job_id is not None:
                    seen.setdefault(n.running_job_id, 0)
                    seen[n.running_job_id] += 1
            running = sched.running_jobs()
            busy_nodes = sum(1 for n in sched.nodes.values() if n.is_busy)
            expected = sum(j.n_nodes for j in running)
            if busy_nodes != expected:
                violations.append((eng.now, busy_nodes, expected))

        for i in range(8):
            job = make_job(f"j{i}", runtime_s=100.0 + i * 37, walltime_s=400.0, n_nodes=1 + i % 2)
            sched.submit(job)
        sched.on_job_start.append(check)
        sched.on_job_end.append(check)
        eng.run(until=10_000.0)
        assert violations == []
        assert all(j.is_terminal for j in sched.jobs.values())

    def test_duplicate_job_id_rejected(self):
        eng, sched = make_sched()
        sched.submit(make_job("j1"))
        with pytest.raises(ValueError, match="duplicate"):
            sched.submit(make_job("j1"))

    def test_cancel_pending(self):
        eng, sched = make_sched(n_nodes=1)
        j1 = make_job("j1", runtime_s=500.0, walltime_s=600.0)
        j2 = make_job("j2")
        sched.submit(j1)
        sched.submit(j2)
        eng.run(until=10.0)
        assert sched.cancel("j2")
        assert j2.state is JobState.CANCELLED
        assert not sched.cancel("j1")  # running

    def test_needs_at_least_one_node(self):
        with pytest.raises(ValueError):
            Scheduler(Engine(), [])


class TestBackfill:
    def test_small_job_backfills_into_hole(self):
        eng, sched = make_sched(n_nodes=4)
        # j1 takes all 4 nodes until t=400
        j1 = make_job("j1", runtime_s=400.0, walltime_s=500.0, n_nodes=4)
        sched.submit(j1)
        eng.run(until=10.0)
        # j2 needs all 4 nodes → must wait (head of queue, shadow = 500)
        j2 = make_job("j2", runtime_s=400.0, walltime_s=500.0, n_nodes=4)
        sched.submit(j2)
        eng.run(until=20.0)
        assert j2.state is JobState.PENDING
        # backfill candidate: finishes long before j1's limit... but no free
        # nodes exist; nothing to backfill into yet. Now free one node by
        # using a 3-node head instead — rebuild scenario below.

    def test_backfill_uses_idle_nodes_without_delaying_head(self):
        eng, sched = make_sched(n_nodes=4)
        j1 = make_job("j1", runtime_s=400.0, walltime_s=500.0, n_nodes=3)
        sched.submit(j1)
        head = make_job("head", runtime_s=300.0, walltime_s=400.0, n_nodes=4)
        eng.schedule(10.0, sched.submit, head)
        # short job fits on the one idle node and ends before head's shadow
        filler = make_job("filler", runtime_s=100.0, walltime_s=150.0, n_nodes=1)
        eng.schedule(11.0, sched.submit, filler)
        eng.run(until=2000.0)
        assert filler.was_backfilled
        assert filler.start_time == pytest.approx(11.0)
        # head starts when j1's nodes free (t≈500 limit, actual end 400)
        assert head.start_time == pytest.approx(400.0)
        assert sched.stats.backfilled == 1

    def test_long_filler_not_backfilled_when_it_would_delay_head(self):
        eng, sched = make_sched(n_nodes=4)
        j1 = make_job("j1", runtime_s=400.0, walltime_s=500.0, n_nodes=3)
        sched.submit(j1)
        head = make_job("head", runtime_s=300.0, walltime_s=400.0, n_nodes=4)
        eng.schedule(10.0, sched.submit, head)
        # would run past head's shadow time (500) on the single idle node
        long_filler = make_job("long", runtime_s=900.0, walltime_s=1000.0, n_nodes=1)
        eng.schedule(11.0, sched.submit, long_filler)
        eng.run(until=30.0)
        assert long_filler.state is JobState.PENDING
        eng.run(until=5000.0)
        # it eventually runs after head
        assert long_filler.state is JobState.COMPLETED
        assert long_filler.start_time >= head.start_time

    def test_backfill_disabled(self):
        eng, sched = make_sched(n_nodes=4, backfill=False)
        j1 = make_job("j1", runtime_s=400.0, walltime_s=500.0, n_nodes=3)
        sched.submit(j1)
        head = make_job("head", runtime_s=300.0, walltime_s=400.0, n_nodes=4)
        filler = make_job("filler", runtime_s=100.0, walltime_s=150.0, n_nodes=1)
        eng.schedule(10.0, sched.submit, head)
        eng.schedule(11.0, sched.submit, filler)
        eng.run(until=50.0)
        assert filler.state is JobState.PENDING


class TestExtensions:
    def test_extension_rescues_underestimated_job(self):
        eng, sched = make_sched()
        job = make_job("j1", runtime_s=1200.0, walltime_s=1000.0)
        sched.submit(job)
        eng.schedule(900.0, sched.request_extension, "j1", 500.0)
        eng.run(until=3000.0)
        assert job.state is JobState.COMPLETED
        assert job.time_limit_s == 1500.0
        assert sched.stats.extensions_granted == 1

    def test_extension_denied_when_budget_exhausted(self):
        eng, sched = make_sched()
        policy = sched.config.extension_policy
        policy.max_extensions_per_job = 1
        job = make_job("j1", runtime_s=3000.0, walltime_s=500.0)
        sched.submit(job)
        responses = []
        eng.schedule(400.0, lambda: responses.append(sched.request_extension("j1", 200.0)))
        eng.schedule(600.0, lambda: responses.append(sched.request_extension("j1", 200.0)))
        eng.run(until=5000.0)
        assert not responses[0].denied
        assert responses[1].denied
        assert "count budget" in responses[1].reason
        assert job.state is JobState.TIMEOUT

    def test_extension_shortened_by_time_budget(self):
        eng, sched = make_sched()
        sched.config.extension_policy.max_total_extension_s = 300.0
        job = make_job("j1", runtime_s=2000.0, walltime_s=1000.0)
        sched.submit(job)
        responses = []
        eng.schedule(900.0, lambda: responses.append(sched.request_extension("j1", 1000.0)))
        eng.run(until=5000.0)
        assert responses[0].shortened
        assert responses[0].granted_s == 300.0

    def test_extension_capped_by_reservation(self):
        eng, sched = make_sched(n_nodes=1)
        job = make_job("j1", runtime_s=2000.0, walltime_s=1000.0)
        sched.submit(job)
        eng.run(until=1.0)
        # maintenance on the job's node starting at t=1200
        sched.add_reservation(
            Reservation(frozenset(job.assigned_nodes), 1200.0, 2000.0)
        )
        responses = []
        eng.schedule(900.0, lambda: responses.append(sched.request_extension("j1", 1000.0)))
        eng.run(until=5000.0)
        # deadline was 1000; cap = 1200 - 1000 = 200
        assert responses[0].granted_s == pytest.approx(200.0)

    def test_extension_for_unknown_or_finished_job(self):
        eng, sched = make_sched()
        assert sched.request_extension("ghost", 100.0).denied
        job = make_job("j1", runtime_s=100.0, walltime_s=200.0)
        sched.submit(job)
        eng.run(until=500.0)
        assert sched.request_extension("j1", 100.0).denied

    def test_random_denial_policy(self):
        rng = RngRegistry(seed=0).stream("deny")
        policy = ExtensionPolicy(deny_prob=1.0, rng=rng)
        eng = Engine()
        nodes = [Node("n0", NodeSpec())]
        sched = Scheduler(eng, nodes, config=SchedulerConfig(extension_policy=policy))
        job = make_job("j1", runtime_s=2000.0, walltime_s=1000.0)
        sched.submit(job)
        responses = []
        eng.schedule(900.0, lambda: responses.append(sched.request_extension("j1", 100.0)))
        eng.run(until=3000.0)
        assert responses[0].denied
        assert responses[0].reason == "site policy denial"

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            ExtensionPolicy(max_extensions_per_job=-1)
        with pytest.raises(ValueError):
            ExtensionPolicy(deny_prob=0.5)  # rng missing

    def test_overhang_accounted(self):
        eng, sched = make_sched()
        # job finishes at 500 with a 1000 limit → 500 node-seconds overhang
        job = make_job("j1", runtime_s=500.0, walltime_s=1000.0)
        sched.submit(job)
        eng.run(until=2000.0)
        assert sched.stats.overhang_node_seconds == pytest.approx(500.0)


class TestCheckpointIntegration:
    def test_signal_checkpoint_saves_record(self):
        eng = Engine()
        nodes = [Node("n0", NodeSpec())]
        store = CheckpointStore()
        sched = Scheduler(eng, nodes, checkpoint_store=store)
        job = make_job("j1", runtime_s=1000.0, walltime_s=2000.0)
        sched.submit(job)
        eng.schedule(400.0, sched.signal_checkpoint, "j1")
        eng.run(until=3000.0)
        record = store.latest("alice", "app")
        assert record is not None
        assert record.step == pytest.approx(400.0, rel=0.01)

    def test_signal_checkpoint_unknown_job(self):
        eng, sched = make_sched()
        assert sched.signal_checkpoint("ghost") is False


class TestNodeFailures:
    def test_fail_node_kills_job(self):
        eng, sched = make_sched(n_nodes=2)
        job = make_job("j1", runtime_s=1000.0, walltime_s=2000.0, n_nodes=2)
        sched.submit(job)
        eng.schedule(100.0, sched.fail_node, "n0")
        eng.run(until=3000.0)
        assert job.state is JobState.FAILED
        assert sched.nodes["n0"].state is NodeState.DOWN
        # the sibling node is released for other work
        assert sched.nodes["n1"].is_allocatable

    def test_repair_restores_capacity(self):
        eng, sched = make_sched(n_nodes=1)
        sched.fail_node("n0")
        j = make_job("j1", runtime_s=100.0, walltime_s=200.0)
        sched.submit(j)
        eng.run(until=50.0)
        assert j.state is JobState.PENDING
        sched.repair_node("n0")
        eng.run(until=500.0)
        assert j.state is JobState.COMPLETED

    def test_failed_job_not_restarted_automatically(self):
        eng, sched = make_sched(n_nodes=2)
        job = make_job("j1", runtime_s=1000.0, walltime_s=2000.0)
        sched.submit(job)
        eng.schedule(100.0, sched.fail_node, "n0")
        eng.run(until=3000.0)
        # a FAILED job stays failed; resubmission is a policy above the scheduler
        assert job.state in (JobState.FAILED, JobState.COMPLETED)


class TestUtilizationAccounting:
    def test_single_job_utilization(self):
        eng, sched = make_sched(n_nodes=2)
        job = make_job("j1", runtime_s=500.0, walltime_s=600.0)
        sched.submit(job)
        eng.run(until=1000.0)
        # one of two nodes busy for 500 of 1000 s → 25%
        assert sched.utilization() == pytest.approx(0.25, rel=0.01)
