"""Property-based tests (hypothesis) for the discrete-event engine."""

from hypothesis import given
from hypothesis import strategies as st

from repro.sim import Engine

times = st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False)
priorities = st.integers(min_value=-5, max_value=5)


@given(st.lists(times, min_size=1, max_size=100))
def test_execution_order_is_time_sorted(schedule_times):
    eng = Engine()
    executed = []
    for t in schedule_times:
        eng.schedule_at(t, lambda t=t: executed.append(t))
    eng.run()
    assert executed == sorted(schedule_times)
    assert eng.events_executed == len(schedule_times)


@given(st.lists(st.tuples(times, priorities), min_size=1, max_size=100))
def test_execution_order_time_then_priority_then_seq(entries):
    eng = Engine()
    executed = []
    for seq, (t, prio) in enumerate(entries):
        eng.schedule_at(t, lambda key=(t, prio, seq): executed.append(key), priority=prio)
    eng.run()
    assert executed == sorted(executed)


@given(
    st.lists(times, min_size=1, max_size=60),
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
)
def test_run_until_partitions_events(schedule_times, horizon):
    eng = Engine()
    fired = []
    for t in schedule_times:
        eng.schedule_at(t, lambda t=t: fired.append(t))
    eng.run(until=horizon)
    expected = sorted(t for t in schedule_times if t <= horizon)
    assert fired == expected
    # the rest remain queued
    assert eng.pending_count() == len(schedule_times) - len(expected)


@given(st.lists(times, min_size=2, max_size=60), st.data())
def test_cancellation_removes_exactly_those_events(schedule_times, data):
    eng = Engine()
    fired = []
    events = [
        eng.schedule_at(t, lambda i=i: fired.append(i)) for i, t in enumerate(schedule_times)
    ]
    to_cancel = data.draw(
        st.sets(st.integers(min_value=0, max_value=len(events) - 1), max_size=len(events))
    )
    for i in to_cancel:
        events[i].cancel()
    eng.run()
    assert sorted(fired) == sorted(set(range(len(events))) - to_cancel)


@given(st.lists(st.floats(min_value=0.001, max_value=100.0, allow_nan=False), min_size=1, max_size=30))
def test_clock_never_goes_backwards(delays):
    eng = Engine()
    observed = []

    def chain(remaining):
        observed.append(eng.now)
        if remaining:
            eng.schedule(remaining[0], chain, remaining[1:])

    eng.schedule(delays[0], chain, delays[1:])
    eng.run()
    assert observed == sorted(observed)
