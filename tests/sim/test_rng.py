"""Tests for reproducible named RNG streams."""

import numpy as np

from repro.sim import RngRegistry


def test_same_name_returns_same_generator():
    rngs = RngRegistry(seed=1)
    assert rngs.stream("a") is rngs.stream("a")


def test_streams_independent_of_request_order():
    r1 = RngRegistry(seed=42)
    r2 = RngRegistry(seed=42)
    a1 = r1.stream("alpha").random(5)
    _ = r1.stream("beta").random(5)
    # request in opposite order on the second registry
    _ = r2.stream("beta").random(5)
    a2 = r2.stream("alpha").random(5)
    np.testing.assert_array_equal(a1, a2)


def test_different_seeds_differ():
    x = RngRegistry(seed=1).stream("s").random(8)
    y = RngRegistry(seed=2).stream("s").random(8)
    assert not np.array_equal(x, y)


def test_different_names_differ():
    rngs = RngRegistry(seed=3)
    x = rngs.stream("one").random(8)
    y = rngs.stream("two").random(8)
    assert not np.array_equal(x, y)


def test_fork_is_deterministic_and_distinct_per_index():
    r1 = RngRegistry(seed=9)
    r2 = RngRegistry(seed=9)
    np.testing.assert_array_equal(r1.fork("job", 3).random(4), r2.fork("job", 3).random(4))
    assert not np.array_equal(r1.fork("job", 3).random(4), r1.fork("job", 4).random(4))


def test_names_sorted():
    rngs = RngRegistry(seed=0)
    rngs.stream("zeta")
    rngs.stream("alpha")
    assert rngs.names() == ["alpha", "zeta"]
