"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import Engine, SimTimeError, StopSimulation


def test_events_run_in_time_order():
    eng = Engine()
    order = []
    eng.schedule(5.0, order.append, "b")
    eng.schedule(1.0, order.append, "a")
    eng.schedule(9.0, order.append, "c")
    eng.run()
    assert order == ["a", "b", "c"]


def test_same_time_events_run_in_schedule_order():
    eng = Engine()
    order = []
    for tag in ["first", "second", "third"]:
        eng.schedule(2.0, order.append, tag)
    eng.run()
    assert order == ["first", "second", "third"]


def test_priority_breaks_ties_before_seq():
    eng = Engine()
    order = []
    eng.schedule(1.0, order.append, "late", priority=5)
    eng.schedule(1.0, order.append, "early", priority=-5)
    eng.run()
    assert order == ["early", "late"]


def test_now_advances_to_event_time():
    eng = Engine()
    seen = []
    eng.schedule(3.5, lambda: seen.append(eng.now))
    eng.run()
    assert seen == [3.5]
    assert eng.now == 3.5


def test_run_until_executes_events_at_horizon():
    eng = Engine()
    hits = []
    eng.schedule(10.0, hits.append, "at-horizon")
    eng.schedule(10.5, hits.append, "beyond")
    end = eng.run(until=10.0)
    assert hits == ["at-horizon"]
    assert end == 10.0
    # the "beyond" event is still queued
    assert eng.pending_count() == 1


def test_run_until_advances_clock_when_queue_drains_early():
    eng = Engine()
    eng.schedule(1.0, lambda: None)
    end = eng.run(until=50.0)
    assert end == 50.0
    assert eng.now == 50.0


def test_schedule_in_past_raises():
    eng = Engine()
    eng.schedule(5.0, lambda: None)
    eng.run()
    with pytest.raises(SimTimeError):
        eng.schedule_at(1.0, lambda: None)


def test_schedule_nan_raises():
    eng = Engine()
    with pytest.raises(SimTimeError):
        eng.schedule_at(float("nan"), lambda: None)


def test_cancelled_event_does_not_fire():
    eng = Engine()
    fired = []
    ev = eng.schedule(1.0, fired.append, "x")
    ev.cancel()
    eng.run()
    assert fired == []
    assert eng.events_executed == 0


def test_events_scheduled_during_run_fire():
    eng = Engine()
    order = []

    def first():
        order.append("first")
        eng.schedule(1.0, lambda: order.append("nested"))

    eng.schedule(1.0, first)
    eng.run()
    assert order == ["first", "nested"]


def test_zero_delay_self_schedule_is_allowed():
    eng = Engine()
    count = [0]

    def again():
        count[0] += 1
        if count[0] < 3:
            eng.schedule(0.0, again)

    eng.schedule(0.0, again)
    eng.run()
    assert count[0] == 3


def test_stop_simulation_exception_stops_run():
    eng = Engine()
    seen = []

    def boom():
        seen.append("boom")
        raise StopSimulation

    eng.schedule(1.0, boom)
    eng.schedule(2.0, seen.append, "never")
    eng.run()
    assert seen == ["boom"]
    assert eng.now == 1.0


def test_max_events_limits_run():
    eng = Engine()
    for i in range(10):
        eng.schedule(float(i), lambda: None)
    eng.run(max_events=4)
    assert eng.events_executed == 4


def test_run_is_not_reentrant():
    eng = Engine()

    def nested():
        eng.run()

    eng.schedule(1.0, nested)
    with pytest.raises(RuntimeError):
        eng.run()


def test_peek_skips_cancelled():
    eng = Engine()
    ev = eng.schedule(1.0, lambda: None)
    eng.schedule(2.0, lambda: None)
    ev.cancel()
    assert eng.peek() == 2.0


def test_drain_cancels_by_label():
    eng = Engine()
    fired = []
    eng.schedule(1.0, fired.append, "keep", label="keep")
    eng.schedule(1.0, fired.append, "drop", label="drop")
    ncancelled = eng.drain(labels=["drop"])
    assert ncancelled == 1
    eng.run()
    assert fired == ["keep"]


def test_trace_hook_sees_events():
    eng = Engine()
    seen = []
    eng.add_trace_hook(lambda ev: seen.append(ev.time))
    eng.schedule(1.0, lambda: None)
    eng.schedule(2.0, lambda: None)
    eng.run()
    assert seen == [1.0, 2.0]


class TestPeriodicTask:
    def test_fires_every_period(self):
        eng = Engine()
        ticks = []
        eng.every(10.0, lambda: ticks.append(eng.now))
        eng.run(until=35.0)
        assert ticks == [0.0, 10.0, 20.0, 30.0]

    def test_start_at_offset(self):
        eng = Engine()
        ticks = []
        eng.every(10.0, lambda: ticks.append(eng.now), start_at=5.0)
        eng.run(until=30.0)
        assert ticks == [5.0, 15.0, 25.0]

    def test_returning_false_stops(self):
        eng = Engine()
        ticks = []

        def tick():
            ticks.append(eng.now)
            return len(ticks) < 2

        eng.every(1.0, tick)
        eng.run(until=10.0)
        assert ticks == [0.0, 1.0]

    def test_stop_cancels_future_firing(self):
        eng = Engine()
        ticks = []
        task = eng.every(1.0, lambda: ticks.append(eng.now))
        eng.schedule(2.5, task.stop)
        eng.run(until=10.0)
        assert ticks == [0.0, 1.0, 2.0]
        assert task.stopped

    def test_rejects_nonpositive_period(self):
        eng = Engine()
        with pytest.raises(ValueError):
            eng.every(0.0, lambda: None)

    def test_jitter_applied(self):
        eng = Engine()
        ticks = []
        eng.every(10.0, lambda: ticks.append(eng.now), jitter_fn=lambda: 0.5)
        eng.run(until=30.0)
        # each firing is shifted +0.5 relative to nominal cadence
        assert ticks == pytest.approx([0.5, 11.0, 21.5])
