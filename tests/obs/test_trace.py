"""Span tracer unit behaviour: nesting, ring bound, cross-process ids."""

import json

import pytest

from repro.obs.trace import TRACER, Tracer, _NullCtx


@pytest.fixture(autouse=True)
def clean_global_tracer():
    TRACER.disable()
    TRACER.reset()
    yield
    TRACER.disable()
    TRACER.reset()


def span_names(tracer):
    return [s[0] for s in tracer.spans()]


class TestRecording:
    def test_disabled_tracer_records_nothing_and_returns_null_ctx(self):
        t = Tracer()
        ctx = t.span("x")
        assert isinstance(ctx, _NullCtx)
        with ctx:
            pass
        assert len(t) == 0
        # the null context is shared — no allocation per disabled call
        assert t.span("y") is ctx

    def test_nesting_establishes_parentage(self):
        t = Tracer()
        t.enable()
        with t.span("outer"):
            with t.span("inner"):
                pass
            with t.span("sibling"):
                pass
        spans = {s[0]: s for s in t.spans()}
        assert spans["outer"][3] is None
        assert spans["inner"][3] == spans["outer"][2]
        assert spans["sibling"][3] == spans["outer"][2]
        # children closed (and landed in the ring) before the parent
        assert span_names(t) == ["inner", "sibling", "outer"]

    def test_span_ids_unique_and_embed_pid(self):
        t = Tracer()
        t.enable()
        for _ in range(10):
            with t.span("a"):
                pass
        ids = [s[2] for s in t.spans()]
        assert len(set(ids)) == 10
        import os
        for sid in ids:
            assert sid & ((1 << 22) - 1) == os.getpid() & ((1 << 22) - 1)

    def test_args_ride_on_the_span(self):
        t = Tracer()
        t.enable()
        with t.span("q", metric="cpu", shard=3):
            pass
        assert t.spans()[0][6] == {"metric": "cpu", "shard": 3}

    def test_ring_is_bounded(self):
        t = Tracer(capacity=8)
        t.enable()
        for i in range(20):
            with t.span(f"s{i}"):
                pass
        assert len(t) == 8
        assert span_names(t) == [f"s{i}" for i in range(12, 20)]

    def test_reset_mid_span_does_not_crash(self):
        t = Tracer()
        t.enable()
        with t.span("outer"):
            t.reset()
        assert span_names(t) == ["outer"]
        assert t.spans()[0][3] is None


class TestCrossProcess:
    def test_adopt_parents_top_level_spans(self):
        t = Tracer()
        t.enable()
        t.adopt(12345)
        with t.span("worker-task"):
            pass
        assert t.spans()[0][3] == 12345
        assert t.current_id() == 12345  # adopted id exposed between spans

    def test_drain_then_ingest_round_trip(self):
        worker = Tracer()
        worker.enable()
        with worker.span("remote"):
            pass
        shipped = worker.drain()
        assert len(worker) == 0

        parent = Tracer()
        parent.enable()
        parent.ingest(shipped)
        assert span_names(parent) == ["remote"]

    def test_current_id_reflects_innermost_open_span(self):
        t = Tracer()
        t.enable()
        assert t.current_id() is None
        with t.span("a") as a:
            assert t.current_id() == a.span_id
            with t.span("b") as b:
                assert t.current_id() == b.span_id
            assert t.current_id() == a.span_id


class TestChromeExport:
    def test_export_is_valid_chrome_trace_json(self):
        t = Tracer()
        t.enable()
        with t.span("outer", loop="l1"):
            with t.span("inner"):
                pass
        doc = json.loads(t.export_chrome_json())
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"]["producer"] == "repro.obs"
        events = doc["traceEvents"]
        assert [e["name"] for e in events] == ["outer", "inner"]  # ts-sorted
        for e in events:
            assert e["ph"] == "X"
            assert e["dur"] > 0
            assert "span_id" in e["args"]
        outer, inner = events
        assert inner["args"]["parent_id"] == outer["args"]["span_id"]
        assert outer["args"]["loop"] == "l1"
        assert "parent_id" not in outer["args"]

    def test_enable_can_grow_capacity(self):
        t = Tracer(capacity=4)
        t.enable()
        for i in range(6):
            with t.span(f"s{i}"):
                pass
        t.enable(capacity=16)  # re-enable with a bigger ring keeps spans
        assert span_names(t) == ["s2", "s3", "s4", "s5"]
        for i in range(6, 12):
            with t.span(f"s{i}"):
                pass
        assert len(t) == 10
