"""Fleet-scale trace export: the PR 9 acceptance shape.

``repro trace`` on a 256-loop fleet over a parallel sharded store must
produce valid Chrome-trace JSON whose worker-process spans parent under
the dispatching scatter/append spans of the main process.
"""

import json

import pytest

from repro.cli import main
from repro.obs.trace import TRACER


@pytest.fixture(autouse=True)
def clean_global_tracer():
    TRACER.disable()
    TRACER.reset()
    yield
    TRACER.disable()
    TRACER.reset()


def test_traced_256_loop_fleet_exports_cross_process_chrome_json(tmp_path, capsys):
    out = tmp_path / "trace.json"
    assert main([
        "trace", "--loops", "256", "--nodes", "32", "--horizon", "480",
        "--shards", "4", "--parallel", "2", "--out", str(out),
    ]) == 0
    printed = capsys.readouterr().out
    assert "worker-side" in printed

    doc = json.loads(out.read_text())  # loads => valid JSON
    assert doc["otherData"]["producer"] == "repro.obs"
    events = doc["traceEvents"]
    assert events
    for e in events:  # chrome trace-event required fields
        assert e["ph"] == "X"
        assert isinstance(e["name"], str)
        assert e["dur"] > 0
        assert "span_id" in e["args"]
    # sorted by timestamp, as viewers expect
    ts = [e["ts"] for e in events]
    assert ts == sorted(ts)

    names = {e["name"] for e in events}
    # the autonomy path end to end: loop -> hub -> engine -> scatter
    assert {"loop.cycle", "loop.decide", "arbiter.resolve", "hub.query",
            "engine.query", "engine.execute", "federated.scatter",
            "scatter.shard"} <= names

    main_pid = doc["otherData"]["main_pid"]
    by_id = {e["args"]["span_id"]: e for e in events}
    worker_events = [e for e in events if e["pid"] != main_pid]
    assert worker_events  # the pool really executed shard passes
    assert {e["pid"] for e in worker_events} != {main_pid}
    for e in worker_events:
        parent = by_id.get(e["args"].get("parent_id"))
        # every worker span parents under a main-process dispatch span
        assert parent is not None
        assert parent["pid"] == main_pid
        assert parent["name"] in ("federated.scatter", "store.append")
    # and specifically: worker scatter work under the scatter span
    scatter_leaves = [e for e in worker_events if e["name"] == "scatter.shard"]
    assert scatter_leaves
    for e in scatter_leaves:
        assert by_id[e["args"]["parent_id"]]["name"] == "federated.scatter"
