"""Span-tree parity: serial, pool-dispatched, and crash-fallback scatter
passes must produce the same span tree shape (names + parentage) for an
identical federated query — the guarantee that a trace reads the same
whether the fleet ran ``--parallel`` or not.
"""

import numpy as np
import pytest

from repro.obs.trace import TRACER
from repro.query import MetricQuery
from repro.shard import (
    FederatedQueryEngine,
    ParallelFederatedQueryEngine,
    ShardedTimeSeriesStore,
)
from tests.shard.test_parallel import fill_serial, parallel_store, series_data


@pytest.fixture(autouse=True)
def clean_global_tracer():
    TRACER.disable()
    TRACER.reset()
    yield
    TRACER.disable()
    TRACER.reset()


QUERY = MetricQuery("m", agg="mean", range_s=400.0, step_s=60.0, group_by=("node",))


def tree_shape(spans):
    """Every span as its root-to-leaf name path, sorted — parentage and
    multiplicity, independent of ids, pids, and timing."""
    by_id = {s[2]: s for s in spans}

    def path(s):
        names = [s[0]]
        parent = s[3]
        while parent is not None and parent in by_id:
            parent_span = by_id[parent]
            names.append(parent_span[0])
            parent = parent_span[3]
        return tuple(reversed(names))

    return sorted(path(s) for s in spans)


def traced_query(engine, at=950.0):
    TRACER.enable()
    TRACER.reset()
    result = engine.query(QUERY, at=at)
    spans = TRACER.drain()
    TRACER.disable()
    return result, spans


def test_serial_and_parallel_produce_identical_span_trees():
    data = series_data(11)
    serial_sharded = ShardedTimeSeriesStore(n_shards=4, default_capacity=4096)
    fill_serial(serial_sharded, data)
    ser = FederatedQueryEngine(serial_sharded, enable_cache=False)
    _, serial_spans = traced_query(ser)
    serial_shape = tree_shape(serial_spans)

    # the serial trace has the full hierarchy: query -> execute ->
    # scatter -> per-shard leaves
    assert ("engine.query",) in serial_shape
    assert ("engine.query", "engine.execute", "federated.scatter",
            "scatter.shard") in serial_shape

    with parallel_store(data, 4, 2) as store:
        par = ParallelFederatedQueryEngine(store, enable_cache=False)
        _, parallel_spans = traced_query(par)
        assert par.serial_fallbacks == 0  # genuinely pool-dispatched
    assert tree_shape(parallel_spans) == serial_shape

    # the shard leaves really crossed a process boundary
    import os
    worker_pids = {s[1] for s in parallel_spans if s[0] == "scatter.shard"}
    assert worker_pids and os.getpid() not in worker_pids


def test_worker_crash_fallback_keeps_the_same_span_tree():
    data = series_data(23)
    serial_sharded = ShardedTimeSeriesStore(n_shards=3, default_capacity=4096)
    fill_serial(serial_sharded, data)
    ser = FederatedQueryEngine(serial_sharded, enable_cache=False)
    _, serial_spans = traced_query(ser)

    # workers=1, no respawn: the injected crash forces the WORKER_DIED
    # serial fallback inside the already-open federated.scatter span
    with parallel_store(data, 3, 1, respawn=False) as store:
        par = ParallelFederatedQueryEngine(store, enable_cache=False)
        store.pool.inject_crash(0)
        result, fallback_spans = traced_query(par)
        assert par.serial_fallbacks > 0
    assert tree_shape(fallback_spans) == tree_shape(serial_spans)
    # the fallback ran in-process — every span from this pid
    import os
    assert {s[1] for s in fallback_spans} == {os.getpid()}
    # and still answered correctly
    want = ser.query(QUERY, at=950.0)
    assert len(result.series) == len(want.series)
    for a, b in zip(result.series, want.series):
        assert a.labels == b.labels
        assert np.array_equal(a.values, b.values)


def test_disabled_tracing_records_nothing_on_either_engine():
    data = series_data(5)
    serial_sharded = ShardedTimeSeriesStore(n_shards=2, default_capacity=4096)
    fill_serial(serial_sharded, data)
    ser = FederatedQueryEngine(serial_sharded, enable_cache=False)
    ser.query(QUERY, at=950.0)
    assert len(TRACER) == 0
    with parallel_store(data, 2, 1) as store:
        par = ParallelFederatedQueryEngine(store, enable_cache=False)
        par.query(QUERY, at=950.0)
    assert len(TRACER) == 0
