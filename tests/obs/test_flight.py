"""Flight recorder: windowed dumps, audit attachment on interventions."""

import json

import numpy as np
import pytest

from repro.core.audit import AuditTrail
from repro.core.runtime import LoopRuntime, LoopSpec, MonitorQuery, RuntimeConfig
from repro.obs.flight import FLIGHT, FlightRecorder
from repro.obs.trace import TRACER, Tracer
from repro.sim import Engine
from repro.telemetry.metric import SeriesKey
from repro.telemetry.tsdb import TimeSeriesStore


@pytest.fixture(autouse=True)
def clean_global_tracer():
    TRACER.disable()
    TRACER.reset()
    yield
    TRACER.disable()
    TRACER.reset()


class TestRecorder:
    def test_dump_returns_none_when_tracing_off(self):
        rec = FlightRecorder(Tracer())
        assert rec.dump("restart_loop", loop="a") is None
        assert rec.dumps() == []

    def test_dump_snapshots_recent_spans_with_context(self):
        t = Tracer()
        t.enable()
        with t.span("loop.cycle", loop="a"):
            pass
        rec = FlightRecorder(t, window_s=30.0)
        dump_id = rec.dump("quarantine_loop", loop="a", by="supervisor")
        assert dump_id == "flight-0001"
        d = rec.get(dump_id)
        assert d["reason"] == "quarantine_loop"
        assert d["context"] == {"loop": "a", "by": "supervisor"}
        assert d["n_spans"] == 1
        assert rec.spans_of(dump_id)[0][0] == "loop.cycle"

    def test_window_excludes_old_spans(self):
        t = Tracer()
        t.enable()
        with t.span("recent"):
            pass
        # an artificially ancient span (ended an hour ago)
        t.ingest([("old", 1, 1, None, 0.0, 1.0, {})])
        rec = FlightRecorder(t, window_s=30.0)
        names = [s[0] for s in rec.spans_of(rec.dump("restart_loop"))]
        assert names == ["recent"]

    def test_dumps_are_bounded(self):
        t = Tracer()
        t.enable()
        rec = FlightRecorder(t, max_dumps=3)
        ids = [rec.dump("restart_loop") for _ in range(5)]
        kept = [d["id"] for d in rec.dumps()]
        assert kept == ids[2:]
        assert rec.get(ids[0]) is None

    def test_export_json_is_chrome_trace(self):
        t = Tracer()
        t.enable()
        with t.span("loop.decide"):
            pass
        rec = FlightRecorder(t)
        dump_id = rec.dump("restart_loop", loop="a")
        doc = json.loads(rec.export_json(dump_id))
        assert doc["otherData"]["reason"] == "restart_loop"
        assert doc["otherData"]["dump_id"] == dump_id
        assert [e["name"] for e in doc["traceEvents"]] == ["loop.decide"]
        assert rec.export_json("flight-9999") is None


def _spec(name):
    from repro.core.component import Analyzer, Executor, Planner
    from repro.core.types import AnalysisReport, ExecutionResult, Observation, Plan

    class A(Analyzer):
        name = "a"

        def analyze(self, observation, knowledge):
            return AnalysisReport(observation.time, self.name)

    class P(Planner):
        name = "p"

        def plan(self, report, knowledge):
            return Plan(report.time, self.name, ())

    class E(Executor):
        name = "e"

        def execute(self, plan, knowledge):
            return [ExecutionResult(a, plan.time, honored=True) for a in plan.actions]

    def build(now, inputs):
        return Observation(now, name, values={"v": 1.0})

    return LoopSpec(
        name=name,
        queries=(MonitorQuery("u", 'mean(util{node="n0"}[300s])'),),
        build_observation=build,
        analyzer_factory=A,
        planner_factory=P,
        executor_factory=E,
        period_s=30.0,
    )


class TestInterventionAttachment:
    def _runtime(self, audit):
        engine = Engine()
        store = TimeSeriesStore()
        times = np.arange(0.0, 2000.0, 10.0)
        store.insert_batch(SeriesKey.of("util", node="n0"), times,
                           np.full(times.size, 0.5))
        runtime = LoopRuntime(engine, store, audit=audit,
                              config=RuntimeConfig())
        runtime.add(_spec("watch-a"), start=True)
        return engine, runtime

    def test_quarantine_attaches_flight_dump_to_audit(self):
        audit = AuditTrail()
        engine, runtime = self._runtime(audit)
        TRACER.enable()
        TRACER.reset()
        engine.run(until=120.0)  # a few traced cycles land in the ring
        runtime.quarantine("watch-a", by="meta-loop", reason="vetoed")
        events = audit.flight_dumps()
        assert len(events) == 1
        dump_id = events[0].data["flight_dump"]
        dump = FLIGHT.get(dump_id)
        assert dump is not None
        assert dump["reason"] == "quarantine_loop"
        assert dump["context"]["loop"] == "watch-a"
        # the dump carries the causal trace: the loop's own cycles
        assert any(s[0] == "loop.cycle" for s in dump["spans"])
        assert audit.stats()["events"] >= 1

    def test_restart_attaches_flight_dump_to_audit(self):
        audit = AuditTrail()
        engine, runtime = self._runtime(audit)
        TRACER.enable()
        TRACER.reset()
        engine.run(until=120.0)
        runtime.restart("watch-a", by="meta-loop", reason="stale")
        events = audit.flight_dumps()
        assert len(events) == 1
        assert FLIGHT.get(events[0].data["flight_dump"])["reason"] == "restart_loop"

    def test_untraced_intervention_audits_without_flight_dump(self):
        audit = AuditTrail()
        engine, runtime = self._runtime(audit)
        engine.run(until=120.0)
        runtime.quarantine("watch-a")
        assert audit.flight_dumps() == []
        assert any(e.data.get("op") == "quarantine" for e in audit.events)
