"""Metrics registry: instruments, stats absorption, obs_* publication."""

import numpy as np

from repro.obs import MetricsRegistry, absorb_stats, collect_metrics, route_stat
from repro.query import QueryEngine
from repro.telemetry.metric import SeriesKey
from repro.telemetry.tsdb import TimeSeriesStore


class TestInstruments:
    def test_counter_gauge_histogram(self):
        reg = MetricsRegistry()
        reg.counter("a.events").inc()
        reg.counter("a.events").inc(2.0)
        reg.gauge("a.depth").set(7)
        h = reg.histogram("a.wall_ms")
        h.observe(1.0)
        h.observe(3.0)
        snap = reg.snapshot()
        assert snap["a.events"] == 3.0
        assert snap["a.depth"] == 7.0
        assert snap["a.wall_ms.count"] == 2.0
        assert snap["a.wall_ms.mean"] == 2.0
        assert snap["a.wall_ms.max"] == 3.0

    def test_instruments_are_memoized_by_name(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        reg.reset()
        c = reg.counter("x")
        assert c.value == 0.0

    def test_record_skips_non_numeric_and_bools(self):
        reg = MetricsRegistry()
        reg.record("a.flag", True)
        reg.record("a.name", "hello")
        reg.record("a.value", 1.5)
        assert reg.snapshot() == {"a.value": 1.5}

    def test_snapshot_is_sorted(self):
        reg = MetricsRegistry()
        reg.gauge("z.last").set(1)
        reg.gauge("a.first").set(2)
        assert list(reg.snapshot()) == ["a.first", "z.last"]


class TestRouting:
    def test_engine_origin_splits_flat_prefixes(self):
        assert route_stat("cache_hits", "engine") == ("cache", "hits")
        assert route_stat("rollup_folds", "engine") == ("rollup", "folds")
        assert route_stat("pool_workers", "engine") == ("pool", "workers")
        assert route_stat("parallel_scatters", "engine") == ("parallel", "scatters")
        assert route_stat("standing_updates_applied", "engine") == (
            "standing", "updates_applied")
        assert route_stat("queries_total", "engine") == ("engine", "queries_total")

    def test_federation_keys_get_their_own_namespace(self):
        assert route_stat("shards", "engine") == ("federation", "shards")
        assert route_stat("fanout_mean", "engine") == ("federation", "fanout_mean")
        assert route_stat("serial_fallbacks", "engine") == ("parallel", "serial_fallbacks")

    def test_hub_origin_keeps_own_counters_and_unwraps_merges(self):
        # hub's own standing_served is a hub counter, not a standing one
        assert route_stat("standing_served", "hub") == ("hub", "standing_served")
        assert route_stat("fused_served", "hub") == ("hub", "fused_served")
        # the hub merges engine stats under engine_ — unwrap recursively
        assert route_stat("engine_cache_hits", "hub") == ("cache", "hits")
        assert route_stat("standing_reads_served", "hub") == ("standing", "reads_served")

    def test_runtime_origin_unwraps_hub_and_arbiter(self):
        assert route_stat("hub_fused_served", "runtime") == ("hub", "fused_served")
        assert route_stat("hub_engine_cache_hits", "runtime") == ("cache", "hits")
        assert route_stat("arbiter_vetoes_total", "runtime") == ("arbiter", "vetoes_total")
        assert route_stat("iterations_total", "runtime") == ("runtime", "iterations_total")

    def test_literal_origin_passes_through(self):
        assert route_stat("workers", "pool") == ("pool", "workers")


class TestAbsorb:
    def test_absorb_stats_keeps_legacy_keys_as_aliases(self):
        reg = MetricsRegistry()
        absorb_stats(reg, {"cache_hits": 5.0, "queries_total": 9.0}, "engine")
        assert reg.snapshot() == {"cache.hits": 5.0, "engine.queries_total": 9.0}
        assert reg.alias_of("cache.hits") == "cache_hits"
        assert reg.alias_of("engine.queries_total") is None  # key == short

    def test_render_shows_aliases(self):
        reg = MetricsRegistry()
        absorb_stats(reg, {"cache_hits": 5.0}, "engine")
        assert reg.render() == ["cache.hits = 5  [cache_hits]"]

    def test_collect_metrics_from_live_engine(self):
        store = TimeSeriesStore()
        store.insert(SeriesKey.of("m", node="n0"), 1.0, 0.5)
        engine = QueryEngine(store)
        engine.query(engine.parse("mean(m[10s])"), at=5.0)
        reg = MetricsRegistry()
        out = collect_metrics(engine=engine, registry=reg)
        assert out is reg
        snap = reg.snapshot()
        assert snap["engine.queries_total"] == 1.0
        assert "cache.hits" in snap


class TestPublish:
    def test_publish_writes_obs_series_into_the_store(self):
        store = TimeSeriesStore()
        reg = MetricsRegistry()
        reg.gauge("cache.hits").set(3.0)
        reg.counter("hub.fused_served").inc(4.0)
        written = reg.publish(store, 100.0)
        assert ("obs_cache_hits", 3.0) in written
        assert ("obs_hub_fused_served", 4.0) in written
        # readable back out through the ordinary query surface
        qe = QueryEngine(store, enable_cache=False)
        assert qe.scalar("last(obs_cache_hits)", at=101.0) == 3.0

    def test_runtime_self_publishes_on_a_schedule(self):
        from repro.core.runtime import LoopRuntime, RuntimeConfig
        from repro.sim import Engine

        engine = Engine()
        store = TimeSeriesStore()
        times = np.arange(0.0, 400.0, 10.0)
        store.insert_batch(SeriesKey.of("util", node="n0"), times,
                           np.full(times.size, 0.5))
        runtime = LoopRuntime(
            engine, store, config=RuntimeConfig(obs_publish_period_s=60.0)
        )
        engine.run(until=200.0)
        runtime.stop()
        assert runtime.obs_publishes >= 3
        value = runtime.query_engine.scalar(
            "last(obs_runtime_loops)", at=engine.now
        )
        assert value is not None
