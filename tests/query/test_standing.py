"""Property tests for the standing-query engine.

The exactness contract: a registered shape served from incrementally
maintained partial-aggregate state must match the batch engine and the
brute-force reference oracle across arbitrary commit interleavings —
reads between commits, multiple shapes sharing grids, rate over
counters with resets — up to floating-point association (1e-9
relative, the bound the federated merge already documents) and
bit-for-bit for the order statistics.
"""

import math

import numpy as np
import pytest

from repro.core.runtime import QueryHub
from repro.query import (
    LabelMatcher,
    MetricQuery,
    QueryEngine,
    RollupManager,
    evaluate_naive,
)
from repro.query.kernels import PARTIAL_AGGS
from repro.query.standing import (
    StandingGrid,
    StandingQueryEngine,
    StoreStandingProvider,
)
from repro.telemetry.metric import SeriesKey
from repro.telemetry.tsdb import TimeSeriesStore

HORIZON = 1000.0


def random_standing_query(rng, metric="m"):
    """Random *eligible* shape: windowed, stepped, partial-algebra agg."""
    agg = "rate" if metric == "ctr" else str(rng.choice(PARTIAL_AGGS))
    matchers = []
    if rng.random() < 0.4:
        matchers.append(LabelMatcher("node", "=~", str(rng.choice(["n[0-2]", "n.*"]))))
    if rng.random() < 0.3:
        matchers.append(LabelMatcher("rack", "!=", "r1"))
    return MetricQuery(
        metric,
        agg=agg,
        matchers=tuple(matchers),
        range_s=float(rng.choice([90.0, 300.0, 777.0])),
        step_s=float(rng.choice([30.0, 60.0, 250.0])),
        group_by=[(), ("node",), ("rack",), ("node", "rack")][int(rng.integers(0, 4))],
    )


def commit_rounds(rng, *, n_series=10, rounds=8, counter=False, t_hi=HORIZON):
    """Per-round columnar commits with per-series non-decreasing times.

    Each round appends a fresh slice of every series' timeline, so a
    read between rounds sees a genuinely partial history — the
    interleaving the incremental path must stay exact under.
    """
    metric = "ctr" if counter else "m"
    keys = [
        SeriesKey.of(metric, node=f"n{i % 4}", shard=str(i), rack=f"r{i % 3}")
        for i in range(n_series)
    ]
    per_key = {}
    for k in keys:
        n = int(rng.integers(4, 40))
        times = np.sort(rng.uniform(0, t_hi, size=n))
        if counter:
            increments = rng.exponential(5.0, size=n)
            values = np.cumsum(increments)
            if n > 4 and rng.random() < 0.5:  # counter reset mid-stream
                cut = int(rng.integers(1, n))
                values[cut:] = np.cumsum(increments[cut:])
        else:
            values = rng.normal(50.0, 20.0, size=n)
        per_key[k] = (times, values)
    out = []
    for r in range(rounds):
        batch = []
        for k, (times, values) in per_key.items():
            lo = r * times.size // rounds
            hi = (r + 1) * times.size // rounds
            if hi > lo:
                batch.append((k, times[lo:hi], values[lo:hi]))
        out.append(batch)
    return out


def assert_results_match(got, want, rtol=1e-9):
    assert got is not None, f"standing fell back for {want.query}"
    assert len(got.series) == len(want.series), (
        f"series count {len(got.series)} != {len(want.series)} for {want.query}"
    )
    for a, b in zip(got.series, want.series):
        assert a.labels == b.labels
        np.testing.assert_allclose(a.times, b.times, rtol=0, atol=1e-9)
        np.testing.assert_allclose(a.values, b.values, rtol=rtol, atol=1e-9)


@pytest.mark.parametrize("seed", range(6))
def test_standing_matches_batch_and_oracle_across_commits(seed):
    rng = np.random.default_rng(seed)
    store = TimeSeriesStore(default_capacity=4096)
    qe = QueryEngine(store, enable_cache=False)
    st = StandingQueryEngine(qe)
    queries = [random_standing_query(rng) for _ in range(6)]
    for q in queries:
        assert st.register(q)
    at = 0.0
    for batch in commit_rounds(rng):
        for k, times, values in batch:
            store.insert_batch(k, times, values)
            at = max(at, float(times[-1]))
        for q in queries:
            got = st.query(q, at=at)
            assert_results_match(got, qe.query(q, at=at))
            assert_results_match(got, evaluate_naive(store, q, at=at))
    stats = st.stats()
    assert stats["reads_served"] > 0
    assert stats["updates_applied"] > 0
    assert stats["scan_fallbacks"] == 0


@pytest.mark.parametrize("seed", range(4))
def test_standing_rate_matches_batch_and_oracle(seed):
    rng = np.random.default_rng(100 + seed)
    store = TimeSeriesStore(default_capacity=4096)
    qe = QueryEngine(store, enable_cache=False)
    st = StandingQueryEngine(qe)
    queries = [random_standing_query(rng, metric="ctr") for _ in range(4)]
    for q in queries:
        assert st.register(q)
    at = 0.0
    for batch in commit_rounds(rng, counter=True):
        for k, times, values in batch:
            store.insert_batch(k, times, values)
            at = max(at, float(times[-1]))
        for q in queries:
            got = st.query(q, at=at)
            assert_results_match(got, qe.query(q, at=at))
            assert_results_match(got, evaluate_naive(store, q, at=at))


def test_registration_after_ingest_backfills_from_rings():
    """A shape registered mid-stream starts from backfilled ring state."""
    rng = np.random.default_rng(7)
    store = TimeSeriesStore(default_capacity=4096)
    qe = QueryEngine(store, enable_cache=False)
    st = StandingQueryEngine(qe)
    rounds = commit_rounds(rng, rounds=6)
    at = 0.0
    for k, times, values in rounds[0] + rounds[1]:
        store.insert_batch(k, times, values)
        at = max(at, float(times[-1]))
    q = MetricQuery("m", agg="mean", range_s=600.0, step_s=60.0, group_by=("node",))
    assert st.register(q)
    for batch in rounds[2:]:
        for k, times, values in batch:
            store.insert_batch(k, times, values)
            at = max(at, float(times[-1]))
        assert_results_match(st.query(q, at=at), qe.query(q, at=at))


def test_snapshot_reuse_and_epoch_invalidation():
    store = TimeSeriesStore(default_capacity=4096)
    qe = QueryEngine(store, enable_cache=False)
    st = StandingQueryEngine(qe)
    key = SeriesKey.of("m", node="n0")
    q = MetricQuery("m", agg="sum", range_s=300.0, step_s=30.0)
    assert st.register(q)
    store.insert_batch(key, np.arange(10.0, 250.0, 10.0), np.ones(24))
    first = st.query(q, at=250.0)
    again = st.query(q, at=250.0)
    assert again is first  # same (at, epoch, generation) -> snapshot
    assert st.snapshot_hits == 1
    # a commit mints a new epoch: the same ``at`` re-reads fresh state
    store.insert_batch(key, np.array([255.0]), np.array([100.0]))
    fresh = st.query(q, at=250.0)
    assert fresh is not first
    assert_results_match(fresh, qe.query(q, at=250.0))


def test_window_older_than_bin_ring_falls_back_to_rollup_tiers():
    """Eviction is delegated: reads past the bin ring return ``None`` and
    the batch engine stitches the answer from rollup tiers instead."""
    store = TimeSeriesStore(default_capacity=4096)
    rollups = RollupManager(store, resolutions=(30.0,))
    qe = QueryEngine(store, rollups=rollups, enable_cache=False)
    st = StandingQueryEngine(qe)
    q = MetricQuery("m", agg="mean", range_s=300.0, step_s=30.0)
    assert st.register(q)
    key = SeriesKey.of("m", node="n0")
    times = np.arange(5.0, 4000.0, 5.0)
    store.insert_batch(key, times, np.sin(times))
    rollups.fold(4000.0)
    # fresh window: served from standing state
    assert st.query(q, at=3990.0) is not None
    # a window that starts before the grid's retained bins: fallback
    assert st.query(q, at=600.0) is None
    assert st.stats()["scan_fallbacks"] == 1.0
    assert_results_match(qe.query(q, at=600.0), evaluate_naive(store, q, at=600.0))


def test_ineligible_shapes_are_refused():
    store = TimeSeriesStore(default_capacity=64)
    st = StandingQueryEngine(QueryEngine(store, enable_cache=False))
    # percentiles need raw samples; instant queries have no grid
    assert not st.register(MetricQuery("m", agg="p95", range_s=300.0, step_s=30.0))
    assert not st.register(MetricQuery("m", agg="mean", range_s=None, step_s=30.0))
    assert not st.register(MetricQuery("m", agg="mean", range_s=300.0, step_s=None))
    assert st.query(MetricQuery("m", agg="p95", range_s=300.0, step_s=30.0), at=1.0) is None


def test_max_shapes_bounds_registration():
    store = TimeSeriesStore(default_capacity=64)
    st = StandingQueryEngine(QueryEngine(store, enable_cache=False), max_shapes=2)
    qs = [MetricQuery("m", agg="sum", range_s=300.0, step_s=float(s)) for s in (10, 20, 40)]
    assert st.register(qs[0]) and st.register(qs[1])
    assert not st.register(qs[2])
    assert st.register(qs[0])  # re-registration of a held shape is free


def test_grid_moments_expose_sufficient_statistics():
    """count/sum/sumsq per bin — enough to derive mean and variance."""
    rng = np.random.default_rng(11)
    grid = StandingGrid(10.0, 8)
    times = np.sort(rng.uniform(0.0, 75.0, size=40))
    values = rng.normal(0.0, 3.0, size=40)
    grid.ingest(np.zeros(40, dtype=np.int64), times, values)
    bins = np.floor(times / 10.0).astype(np.int64)
    mo = grid.moments(0, 0, 7)
    assert list(mo["bin"]) == sorted(set(bins.tolist()))
    for b, cnt, s, ssq in zip(mo["bin"], mo["count"], mo["sum"], mo["sumsq"]):
        sel = values[bins == b]
        assert cnt == sel.size
        np.testing.assert_allclose(s, sel.sum(), rtol=1e-9)
        np.testing.assert_allclose(ssq, np.square(sel).sum(), rtol=1e-9)
        var = ssq / cnt - (s / cnt) ** 2
        np.testing.assert_allclose(var, sel.var(), rtol=1e-9, atol=1e-9)


def test_hub_auto_registers_hot_shapes_and_serves_standing():
    """A fused shape shared by >=2 narrow readers for >=2 completed ticks
    auto-registers; subsequent hub reads come from standing state and
    match the batch engine bit-for-bit on narrowed output."""
    store = TimeSeriesStore(default_capacity=4096)
    qe = QueryEngine(store)
    plain = QueryEngine(store, enable_cache=False)
    hub = QueryHub(qe, fuse=True, standing=StandingQueryEngine(qe))
    keys = [SeriesKey.of("m", node=f"n{i}") for i in range(4)]
    rng = np.random.default_rng(3)
    narrows = [
        MetricQuery(
            "m",
            agg="mean",
            matchers=(LabelMatcher("node", "=", f"n{i}"),),
            range_s=300.0,
            step_s=30.0,
            group_by=("node",),
        )
        for i in range(3)
    ]
    at = 0.0
    served_before = None
    for tick in range(5):
        for k in keys:
            ts = at + np.sort(rng.uniform(1.0, 30.0, size=5))
            store.insert_batch(k, ts, rng.normal(10.0, 2.0, size=5))
        at += 30.0
        for q in narrows:
            got = hub.query(q, at=at)
            assert_results_match(got, plain.query(q, at=at))
        if tick == 2:
            served_before = hub.standing_served
    # ticks 0-1 build sharing history; by the later ticks the shape is
    # registered and every narrow read is answered from standing state
    assert hub.standing_served > 0
    assert hub.standing_served > served_before
    assert len(hub.standing.shapes) == 1
    assert hub.stats()["standing_served"] == float(hub.standing_served)
