"""Tests for the vectorized binned-aggregation kernels."""

import numpy as np
import pytest

from repro.query.kernels import PartialBins, counter_increase, grouped_aggregate


def _naive_grouped(bin_idx, values, fn):
    out_b, out_v = [], []
    for b in np.unique(bin_idx):
        out_b.append(b)
        out_v.append(fn(values[bin_idx == b]))
    return np.asarray(out_b), np.asarray(out_v, dtype=float)


class TestGroupedAggregate:
    @pytest.mark.parametrize(
        "agg,fn",
        [
            ("mean", np.mean),
            ("sum", np.sum),
            ("min", np.min),
            ("max", np.max),
            ("count", lambda a: float(a.size)),
            ("p50", lambda a: np.percentile(a, 50)),
            ("p95", lambda a: np.percentile(a, 95)),
            ("p99", lambda a: np.percentile(a, 99)),
        ],
    )
    def test_matches_naive_per_bin_loop(self, agg, fn):
        rng = np.random.default_rng(1)
        bin_idx = rng.integers(0, 40, size=1000)
        values = rng.normal(size=1000)
        nz, got = grouped_aggregate(bin_idx, values, agg)
        ref_b, ref_v = _naive_grouped(bin_idx, values, fn)
        np.testing.assert_array_equal(nz, ref_b)
        np.testing.assert_allclose(got, ref_v, rtol=1e-12)

    def test_sparse_large_bins(self):
        bin_idx = np.array([0, 10_000_000, 10_000_000])
        nz, got = grouped_aggregate(bin_idx, np.array([1.0, 2.0, 4.0]), "mean")
        np.testing.assert_array_equal(nz, [0, 10_000_000])
        np.testing.assert_allclose(got, [1.0, 3.0])

    def test_last_takes_latest_time(self):
        bin_idx = np.array([0, 0, 1, 1])
        times = np.array([1.0, 2.0, 5.0, 4.0])
        values = np.array([10.0, 20.0, 30.0, 40.0])
        _, got = grouped_aggregate(bin_idx, values, "last", times=times)
        np.testing.assert_array_equal(got, [20.0, 30.0])

    def test_last_tie_breaks_by_input_order(self):
        bin_idx = np.zeros(3, dtype=np.int64)
        times = np.array([1.0, 2.0, 2.0])
        values = np.array([10.0, 20.0, 30.0])
        _, got = grouped_aggregate(bin_idx, values, "last", times=times)
        np.testing.assert_array_equal(got, [30.0])

    def test_last_requires_times(self):
        with pytest.raises(ValueError, match="requires sample times"):
            grouped_aggregate(np.zeros(2, dtype=np.int64), np.ones(2), "last")

    def test_empty_input(self):
        nz, got = grouped_aggregate(np.empty(0, dtype=np.int64), np.empty(0), "mean")
        assert nz.size == 0 and got.size == 0

    def test_unknown_agg(self):
        with pytest.raises(ValueError, match="unknown aggregator"):
            grouped_aggregate(np.zeros(1, dtype=np.int64), np.ones(1), "mode")


class TestCounterIncrease:
    def test_monotonic(self):
        np.testing.assert_array_equal(
            counter_increase(np.array([1.0, 3.0, 6.0])), [2.0, 3.0]
        )

    def test_reset_clamped_to_new_value(self):
        # counter restarts: 100 -> 5 contributes 5, not -95
        np.testing.assert_array_equal(
            counter_increase(np.array([90.0, 100.0, 5.0, 25.0])), [10.0, 5.0, 20.0]
        )

    def test_short_series(self):
        assert counter_increase(np.array([1.0])).size == 0
        assert counter_increase(np.empty(0)).size == 0


class TestPartialBins:
    def test_samples_then_finalize_matches_direct(self):
        rng = np.random.default_rng(2)
        times = np.sort(rng.uniform(0, 100, size=500))
        values = rng.normal(size=500)
        bin_idx = (times // 10).astype(np.int64)
        partial = PartialBins(10)
        partial.add_samples(bin_idx, times, values)
        for agg in ("mean", "sum", "count", "min", "max", "last"):
            nz, got = partial.finalize(agg)
            ref_b, ref_v = grouped_aggregate(bin_idx, values, agg, times=times)
            np.testing.assert_array_equal(nz, ref_b)
            np.testing.assert_allclose(got, ref_v, rtol=1e-12)

    def test_rows_merge_is_exact(self):
        """Pre-aggregated fine bins + raw tail == a flat raw scan."""
        rng = np.random.default_rng(3)
        times = np.sort(rng.uniform(0, 120, size=600))
        values = rng.normal(size=600)
        # fine partial over 12 bins of 10s, folded into 2 coarse bins of 60s
        fine = PartialBins(12)
        fine.add_samples((times // 10).astype(np.int64), times, values)
        nz = fine.nonempty()
        coarse = PartialBins(2)
        coarse.add_rows(
            nz // 6,
            fine.sum[nz],
            fine.count[nz],
            fine.vmin[nz],
            fine.vmax[nz],
            fine.last_t[nz],
            fine.last_v[nz],
        )
        direct = PartialBins(2)
        direct.add_samples((times // 60).astype(np.int64), times, values)
        for agg in ("mean", "sum", "count", "min", "max", "last"):
            _, got = coarse.finalize(agg)
            _, ref = direct.finalize(agg)
            np.testing.assert_allclose(got, ref, rtol=1e-12)

    def test_incremental_adds_accumulate(self):
        partial = PartialBins(2)
        partial.add_samples(np.array([0]), np.array([1.0]), np.array([5.0]))
        partial.add_samples(np.array([0, 1]), np.array([2.0, 3.0]), np.array([7.0, 1.0]))
        nz, means = partial.finalize("mean")
        np.testing.assert_array_equal(nz, [0, 1])
        np.testing.assert_allclose(means, [6.0, 1.0])

    def test_percentile_not_servable(self):
        partial = PartialBins(1)
        with pytest.raises(ValueError, match="cannot be served"):
            partial.finalize("p95")

    def test_empty_bins_dropped(self):
        partial = PartialBins(5)
        partial.add_samples(np.array([1, 3]), np.array([10.0, 30.0]), np.array([1.0, 2.0]))
        nz, _ = partial.finalize("count")
        np.testing.assert_array_equal(nz, [1, 3])

    def test_nonpositive_bins_rejected(self):
        with pytest.raises(ValueError):
            PartialBins(0)
