"""Instant queries served from rollup tiers once raw data ages out.

Ring buffers overwrite oldest; rollup rows persist.  A single-series
instant query whose window the ring no longer covers used to return
empty — now the engine answers it from the finest tier whose bins lie
fully inside the window.  Raw-served behavior must be unchanged.
"""

import numpy as np
import pytest

from repro.query import MetricQuery, QueryCache, QueryEngine, RollupManager
from repro.telemetry.metric import SeriesKey
from repro.telemetry.tsdb import TimeSeriesStore

KEY = SeriesKey.of("m", node="n0")


def aged_store(capacity=32, points=400, period=1.0, res=10.0):
    """A store whose ring wrapped far past the early samples, with
    tier rows folded continuously (so they retain the aged-out data)."""
    store = TimeSeriesStore(default_capacity=capacity)
    rollups = RollupManager(store, resolutions=(res, 5 * res))
    for i in range(points):
        store.insert(KEY, i * period, float(i))
        if i % 10 == 9:
            rollups.fold(i * period)
    return store, rollups


@pytest.mark.parametrize("agg,expected", [
    ("mean", np.mean), ("sum", np.sum), ("min", np.min), ("max", np.max),
    ("count", lambda v: v.size), ("last", lambda v: v[-1]),
])
def test_aged_out_window_served_from_tier(agg, expected):
    store, rollups = aged_store()
    qe = QueryEngine(store, rollups=rollups, enable_cache=False)
    # window [100, 200]: raw ring holds only ~[368, 399] by now
    q = MetricQuery("m", agg=agg, range_s=100.0)
    result = qe.query(q, at=200.0)
    assert result.source.startswith("rollup:")
    # fully-contained bins cover [100, 200): values 100..199
    truth = np.arange(100.0, 200.0)
    assert result.series[0].values[0] == pytest.approx(float(expected(truth)))


def test_raw_covered_window_still_served_raw():
    store, rollups = aged_store()
    qe = QueryEngine(store, rollups=rollups, enable_cache=False)
    q = MetricQuery("m", agg="mean", range_s=20.0)
    result = qe.query(q, at=395.0)  # ring still holds this window
    assert result.source == "raw"
    t, v = store.query(KEY, 375.0, 395.0)
    assert result.series[0].values[0] == pytest.approx(float(np.mean(v)))


def test_window_with_no_data_stays_empty():
    store, rollups = aged_store()
    qe = QueryEngine(store, rollups=rollups, enable_cache=False)
    # window entirely before the first sample: no rows, no raw
    q = MetricQuery("m", agg="mean", range_s=50.0)
    result = qe.query(q, at=-100.0)
    assert not result.series


def test_no_rollups_keeps_empty_answer():
    store, _ = aged_store()
    qe = QueryEngine(store, enable_cache=False)
    q = MetricQuery("m", agg="mean", range_s=100.0)
    assert not qe.query(q, at=200.0).series


def test_percentiles_not_served_from_tiers():
    store, rollups = aged_store()
    qe = QueryEngine(store, rollups=rollups, enable_cache=False)
    q = MetricQuery("m", agg="p95", range_s=100.0)
    assert not qe.query(q, at=200.0).series  # needs the raw distribution


def test_multi_series_groups_not_served_from_tiers():
    store = TimeSeriesStore(default_capacity=32)
    rollups = RollupManager(store, resolutions=(10.0,))
    other = SeriesKey.of("m", node="n1")
    for i in range(400):
        store.insert(KEY, float(i), float(i))
        store.insert(other, float(i), float(i))
        if i % 10 == 9:
            rollups.fold(float(i))
    qe = QueryEngine(store, rollups=rollups, enable_cache=False)
    q = MetricQuery("m", agg="mean", range_s=100.0)  # pools both series
    assert not qe.query(q, at=200.0).series
    # but grouped singletons qualify
    grouped = MetricQuery("m", agg="mean", range_s=100.0, group_by=("node",))
    result = qe.query(grouped, at=200.0)
    assert len(result.series) == 2
    assert result.source.startswith("rollup:")


def test_tier_served_instant_results_cache_correctly():
    store, rollups = aged_store()
    qe = QueryEngine(store, rollups=rollups, cache=QueryCache())
    q = MetricQuery("m", agg="last", range_s=100.0)
    first = qe.query(q, at=200.0)
    assert first.source.startswith("rollup:")
    assert qe.query(q, at=200.0).source == "cache"


def test_fold_without_commit_invalidates_cached_instant():
    """Instant results now depend on fold state: a fold that lands with
    no intervening commit must not keep serving the pre-fold answer."""
    store = TimeSeriesStore(default_capacity=32)
    rollups = RollupManager(store, resolutions=(10.0,))
    for i in range(200):
        store.insert(KEY, float(i), float(i))
        if i == 99:
            rollups.fold(100.0)  # [110, 160] still unfolded after this
    qe = QueryEngine(store, rollups=rollups, cache=QueryCache())
    q = MetricQuery("m", agg="mean", range_s=50.0)
    empty = qe.query(q, at=160.0)  # aged out of the ring, not yet folded
    assert not empty.series
    rollups.fold(200.0)  # periodic fold task, no new commits
    refolded = qe.query(q, at=160.0)
    assert refolded.source.startswith("rollup:")
    assert refolded.series  # not the stale cached empty result
    assert refolded.series[0].values[0] == pytest.approx(np.mean(np.arange(110.0, 160.0)))
