"""Tests for the query string syntax parser."""

import pytest

from repro.query import LabelMatcher, MetricQuery, QueryParseError, parse_duration, parse_query


class TestParseDuration:
    def test_units(self):
        assert parse_duration("300s") == 300.0
        assert parse_duration("5m") == 300.0
        assert parse_duration("1h") == 3600.0
        assert parse_duration("90") == 90.0
        assert parse_duration("1.5m") == 90.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            parse_duration("5 parsecs")
        with pytest.raises(ValueError):
            parse_duration("")


class TestParseQuery:
    def test_minimal(self):
        q = parse_query("mean(node_cpu_util)")
        assert q == MetricQuery("node_cpu_util")

    def test_full_expression(self):
        q = parse_query('mean(node_cpu_util{node=~"n0.*"}[300s] by 30s) group by (node)')
        assert q.metric == "node_cpu_util"
        assert q.agg == "mean"
        assert q.matchers == (LabelMatcher("node", "=~", "n0.*"),)
        assert q.range_s == 300.0
        assert q.step_s == 30.0
        assert q.group_by == ("node",)

    def test_all_matcher_ops(self):
        q = parse_query('sum(m{a="x",b!="y",c=~"z.*",d!~"w+"}[60s])')
        assert [m.op for m in q.matchers] == ["=", "!=", "=~", "!~"]

    def test_minute_units_in_range_and_step(self):
        q = parse_query("p95(node_power_watts[10m] by 1m)")
        assert q.range_s == 600.0 and q.step_s == 60.0

    def test_rate(self):
        q = parse_query('rate(job_progress_steps{job="j1"}[600s] by 60s)')
        assert q.agg == "rate"

    def test_multi_group_by(self):
        q = parse_query("max(node_temp_celsius[1h]) group by (rack,node)")
        assert q.group_by == ("rack", "node")

    def test_whitespace_tolerant(self):
        q = parse_query('  mean( node_cpu_util { node = "n1" } [ 300s ]  )  ')
        assert q.matchers == (LabelMatcher("node", "=", "n1"),)

    def test_regex_value_with_brace_quantifier(self):
        q = parse_query('mean(node_cpu_util{node=~"n[0-9]{2}"}[300s])')
        assert q.matchers == (LabelMatcher("node", "=~", "n[0-9]{2}"),)

    def test_value_with_comma_inside_quotes(self):
        q = parse_query('sum(m{node=~"a,b",rack="r1"})')
        assert q.matchers == (
            LabelMatcher("node", "=~", "a,b"),
            LabelMatcher("rack", "=", "r1"),
        )

    def test_matchers_missing_comma_rejected(self):
        with pytest.raises(QueryParseError, match="expected ','"):
            parse_query('sum(m{a="x" b="y"})')

    @pytest.mark.parametrize(
        "bad",
        [
            "not a query",
            "mean()",
            "mean(node_cpu_util",
            "bogus(node_cpu_util)",
            'mean(m{node~"x"})',
            "mean(m[nope])",
            "mean(m) group by ()",
            'mean(m{node=~"["})',  # invalid regex
        ],
    )
    def test_rejects(self, bad):
        with pytest.raises(QueryParseError):
            parse_query(bad)

    def test_roundtrip_canonical(self):
        exprs = [
            "mean(node_cpu_util)",
            'mean(node_cpu_util{node=~"n0.*"}[300s] by 30s) group by (node)',
            "rate(job_progress_steps[600s] by 60s)",
            'p99(m{a!="b"}[90s])',
        ]
        exprs.append('mean(m{node=~"n[0-9]{2},x"}[60s])')
        for expr in exprs:
            q = parse_query(expr)
            assert parse_query(q.to_expr()) == q


class TestLabelMatcher:
    def test_equality_ops(self):
        assert LabelMatcher("n", "=", "x").matches("x")
        assert not LabelMatcher("n", "=", "x").matches("y")
        assert LabelMatcher("n", "!=", "x").matches("y")

    def test_regex_fully_anchored(self):
        m = LabelMatcher("n", "=~", "n0")
        assert m.matches("n0")
        assert not m.matches("n01")  # no partial match

    def test_absent_label_is_empty_string(self):
        assert LabelMatcher("n", "!=", "x").matches(None)
        assert LabelMatcher("n", "=~", "").matches(None)

    def test_invalid_op_rejected(self):
        with pytest.raises(ValueError):
            LabelMatcher("n", "~", "x")


class TestMetricQueryValidation:
    def test_bad_agg(self):
        with pytest.raises(ValueError):
            MetricQuery("m", agg="median-ish")

    def test_bad_range(self):
        with pytest.raises(ValueError):
            MetricQuery("m", range_s=-1.0)

    def test_bad_step(self):
        with pytest.raises(ValueError):
            MetricQuery("m", step_s=0.0)

    def test_bad_metric_name(self):
        with pytest.raises(ValueError):
            MetricQuery("9metric")
