"""Property-style tests: engine results must match the brute-force oracle.

Randomized stores (irregular timestamps, many labelled series) and
randomized queries, evaluated both by the vectorized engine (raw and
rollup-served) and by :func:`repro.query.reference.evaluate_naive`.
Seeded RNG keeps every run deterministic.
"""

import numpy as np
import pytest

from repro.query import (
    LabelMatcher,
    MetricQuery,
    QueryEngine,
    RollupManager,
    evaluate_naive,
)
from repro.telemetry.metric import SeriesKey
from repro.telemetry.tsdb import TimeSeriesStore

HORIZON = 1000.0


def random_store(rng, n_series=12, max_points=300, counter=False):
    store = TimeSeriesStore(default_capacity=4096)
    for i in range(n_series):
        key = SeriesKey.of(
            "ctr" if counter else "m",
            node=f"n{i % 5}",
            shard=str(i),
            rack=f"r{i % 3}",
        )
        n = int(rng.integers(2, max_points))
        times = np.sort(rng.uniform(0, HORIZON, size=n))
        if counter:
            # mostly-increasing counter with occasional resets
            increments = rng.exponential(5.0, size=n)
            values = np.cumsum(increments)
            for reset_at in rng.integers(1, n, size=max(1, n // 80)):
                values[reset_at:] = np.cumsum(increments[reset_at:])
        else:
            values = rng.normal(50.0, 20.0, size=n)
        store.insert_batch(key, times, values)
    return store


def random_query(rng, metric="m"):
    agg = str(rng.choice(["mean", "sum", "min", "max", "count", "last", "p50", "p95", "p99"]))
    matchers = []
    if rng.random() < 0.5:
        matchers.append(LabelMatcher("node", "=~", str(rng.choice(["n[0-2]", "n.*", "n3"]))))
    if rng.random() < 0.3:
        matchers.append(LabelMatcher("rack", "!=", "r1"))
    range_s = float(rng.choice([90.0, 300.0, 777.0, 1000.0])) if rng.random() < 0.8 else None
    step_s = float(rng.choice([30.0, 60.0, 250.0])) if rng.random() < 0.7 else None
    group_by = [(), ("node",), ("rack",), ("node", "rack")][int(rng.integers(0, 4))]
    return MetricQuery(
        metric, agg=agg, matchers=tuple(matchers), range_s=range_s, step_s=step_s,
        group_by=group_by,
    )


def assert_results_match(got, want, rtol=1e-9):
    assert len(got.series) == len(want.series), (
        f"series count {len(got.series)} != {len(want.series)} for {got.query}"
    )
    for a, b in zip(got.series, want.series):
        assert a.labels == b.labels
        np.testing.assert_allclose(a.times, b.times, rtol=0, atol=1e-9)
        np.testing.assert_allclose(a.values, b.values, rtol=rtol, atol=1e-9)


@pytest.mark.parametrize("seed", range(8))
def test_engine_matches_reference_raw(seed):
    rng = np.random.default_rng(seed)
    store = random_store(rng)
    qe = QueryEngine(store, enable_cache=False)
    for _ in range(12):
        q = random_query(rng)
        at = float(rng.uniform(HORIZON * 0.5, HORIZON * 1.1))
        assert_results_match(qe.query(q, at=at), evaluate_naive(store, q, at=at))


@pytest.mark.parametrize("seed", range(4))
def test_engine_matches_reference_with_rollups(seed):
    """Tier-served execution must be bit-compatible with raw scans."""
    rng = np.random.default_rng(100 + seed)
    store = random_store(rng)
    rollups = RollupManager(store, resolutions=(10.0, 50.0))
    rollups.fold(float(rng.uniform(HORIZON * 0.6, HORIZON)))
    qe = QueryEngine(store, rollups=rollups, enable_cache=False)
    for _ in range(12):
        q = random_query(rng)
        at = float(rng.uniform(HORIZON * 0.5, HORIZON * 1.1))
        assert_results_match(qe.query(q, at=at), evaluate_naive(store, q, at=at))
    assert qe.served_rollup > 0  # the tiers actually served something


@pytest.mark.parametrize("seed", range(4))
def test_rate_matches_reference(seed):
    rng = np.random.default_rng(200 + seed)
    store = random_store(rng, counter=True)
    qe = QueryEngine(store, enable_cache=False)
    for _ in range(8):
        q = random_query(rng, metric="ctr")
        q = MetricQuery(
            "ctr", agg="rate", matchers=q.matchers, range_s=q.range_s, step_s=q.step_s,
            group_by=q.group_by,
        )
        at = float(rng.uniform(HORIZON * 0.5, HORIZON * 1.1))
        assert_results_match(qe.query(q, at=at), evaluate_naive(store, q, at=at))


def test_cached_result_equals_fresh():
    rng = np.random.default_rng(7)
    store = random_store(rng)
    cached = QueryEngine(store)
    fresh = QueryEngine(store, enable_cache=False)
    q = MetricQuery("m", agg="mean", range_s=600.0, step_s=60.0)
    first = cached.query(q, at=900.0)
    hit = cached.query(q, at=900.0)
    assert hit.source == "cache"
    assert_results_match(hit, fresh.query(q, at=900.0))
    assert_results_match(first, hit)
