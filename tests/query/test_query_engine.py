"""Tests for the query engine: selection, execution, caching, sources."""

import numpy as np
import pytest

from repro.query import QueryEngine, RollupManager, parse_query
from repro.telemetry.metric import SeriesKey
from repro.telemetry.tsdb import TimeSeriesStore


def make_store(n_nodes=4, points=200, seed=0):
    rng = np.random.default_rng(seed)
    store = TimeSeriesStore(default_capacity=4096)
    for i in range(n_nodes):
        key = SeriesKey.of("node_cpu_util", node=f"n{i}", rack=f"r{i % 2}")
        times = np.sort(rng.uniform(0, 600, size=points))
        store.insert_batch(key, times, rng.uniform(0, 1, size=points))
    return store


class TestSelection:
    def test_exact_and_regex_matchers(self):
        store = make_store()
        qe = QueryEngine(store)
        assert len(qe.select(parse_query('mean(node_cpu_util{node="n1"})'))) == 1
        assert len(qe.select(parse_query('mean(node_cpu_util{node=~"n[01]"})'))) == 2
        assert len(qe.select(parse_query('mean(node_cpu_util{rack!="r0"})'))) == 2
        assert len(qe.select(parse_query("mean(node_cpu_util)"))) == 4
        assert qe.select(parse_query("mean(unknown_metric)")) == []


class TestExecution:
    def test_instant_mean_matches_store_aggregate(self):
        store = make_store()
        qe = QueryEngine(store)
        got = qe.scalar("mean(node_cpu_util[600s])", at=600.0)
        want = store.aggregate_across("node_cpu_util", 0.0, 600.0, "mean")
        assert got == pytest.approx(want)

    def test_group_by_splits_series(self):
        store = make_store()
        qe = QueryEngine(store)
        r = qe.query("mean(node_cpu_util[600s]) group by (rack)", at=600.0)
        assert [s.labels for s in r.series] == [
            (("rack", "r0"),),
            (("rack", "r1"),),
        ]

    def test_scalar_requires_single_series(self):
        store = make_store()
        qe = QueryEngine(store)
        with pytest.raises(ValueError, match="scalar"):
            qe.scalar("mean(node_cpu_util[600s]) group by (node)", at=600.0)

    def test_no_data_returns_empty(self):
        qe = QueryEngine(TimeSeriesStore())
        r = qe.query("mean(node_cpu_util[60s])", at=100.0)
        assert r.series == ()
        assert r.scalar() is None

    def test_range_query_bins_on_absolute_grid(self):
        store = TimeSeriesStore()
        key = SeriesKey.of("m", node="a")
        store.insert_batch(key, np.arange(0.0, 100.0), np.ones(100))
        qe = QueryEngine(store)
        r = qe.query("count(m[45s] by 30s)", at=95.0)
        # window [50, 95] covers grid bins 30-60-90
        np.testing.assert_array_equal(r.series[0].times, [30.0, 60.0, 90.0])
        np.testing.assert_array_equal(r.series[0].values, [30.0, 30.0, 10.0])

    def test_rate_sums_across_series(self):
        store = TimeSeriesStore()
        for node in ("a", "b"):
            key = SeriesKey.of("ctr", node=node)
            times = np.arange(0.0, 100.0, 10.0)
            store.insert_batch(key, times, times * 2.0)  # 2 units/s each
        qe = QueryEngine(store)
        assert qe.scalar("rate(ctr[90s])", at=90.0) == pytest.approx(4.0)

    def test_rate_handles_counter_reset(self):
        store = TimeSeriesStore()
        key = SeriesKey.of("ctr")
        store.insert_batch(
            key, np.array([0.0, 10.0, 20.0, 30.0]), np.array([0.0, 100.0, 10.0, 110.0])
        )
        qe = QueryEngine(store)
        # increases: 100, 10 (reset), 100 -> 210 over 30s
        assert qe.scalar("rate(ctr[30s])", at=30.0) == pytest.approx(210.0 / 30.0)

    def test_result_arrays_frozen(self):
        store = make_store()
        qe = QueryEngine(store)
        r = qe.query("mean(node_cpu_util[600s] by 60s)", at=600.0)
        with pytest.raises(ValueError):
            r.series[0].values[0] = 0.0


class TestCacheIntegration:
    def test_repeat_query_hits_cache(self):
        store = make_store()
        qe = QueryEngine(store)
        r1 = qe.query("mean(node_cpu_util[600s] by 60s)", at=600.0)
        r2 = qe.query("mean(node_cpu_util[600s] by 60s)", at=600.0)
        assert r1.source == "raw"
        assert r2.source == "cache"
        np.testing.assert_array_equal(r1.series[0].values, r2.series[0].values)
        assert qe.cache.hits == 1

    def test_window_quantization_shares_entries(self):
        store = make_store()
        qe = QueryEngine(store)
        qe.query("mean(node_cpu_util[600s] by 60s)", at=600.0)
        r = qe.query("mean(node_cpu_util[600s] by 60s)", at=601.0)  # same 60s quantum
        assert r.source == "cache"

    def test_different_windows_miss(self):
        store = make_store()
        qe = QueryEngine(store)
        qe.query("mean(node_cpu_util[600s] by 60s)", at=600.0)
        r = qe.query("mean(node_cpu_util[600s] by 60s)", at=665.0)
        assert r.source != "cache"

    def test_cache_disabled(self):
        store = make_store()
        qe = QueryEngine(store, enable_cache=False)
        qe.query("mean(node_cpu_util[600s])", at=600.0)
        r = qe.query("mean(node_cpu_util[600s])", at=600.0)
        assert r.source == "raw"

    def test_commit_invalidates_instant_queries(self):
        """Regression: an instant query re-issued inside the same quantum
        after a commit must see the new sample, not the cached tail."""
        store = TimeSeriesStore()
        key = SeriesKey.of("m")
        store.insert(key, 0.0, 1.0)
        qe = QueryEngine(store, instant_quantum_s=1000.0)
        assert qe.query("last(m)", at=100.0).scalar() == 1.0
        store.insert(key, 50.0, 42.0)  # lands inside the cached window
        r = qe.query("last(m)", at=100.0)  # same quantum as the first query
        assert r.source != "cache"
        assert r.scalar() == 42.0

    def test_commit_invalidates_range_queries(self):
        store = make_store()
        qe = QueryEngine(store)
        r1 = qe.query("count(node_cpu_util[600s] by 60s)", at=600.0)
        sid = store.registry.id_for(SeriesKey.of("node_cpu_util", node="node0"))
        store.append_batch(np.array([sid]), np.array([599.0]), np.array([1.0]))
        r2 = qe.query("count(node_cpu_util[600s] by 60s)", at=600.0)
        assert r2.source != "cache"
        assert float(np.sum(r2.series[0].values)) == float(np.sum(r1.series[0].values)) + 1.0

    def test_unrelated_metric_commit_keeps_cache_warm(self):
        store = make_store()
        qe = QueryEngine(store)
        qe.query("mean(node_cpu_util[600s] by 60s)", at=600.0)
        store.insert(SeriesKey.of("other_metric"), 599.0, 1.0)
        r = qe.query("mean(node_cpu_util[600s] by 60s)", at=600.0)
        assert r.source == "cache"  # per-metric epochs: no cross-invalidation

    def test_stats_exposed(self):
        store = make_store()
        qe = QueryEngine(store, rollups=RollupManager(store, resolutions=(60.0,)))
        qe.query("mean(node_cpu_util[600s])", at=600.0)
        stats = qe.stats()
        assert stats["queries_total"] == 1.0
        assert "cache_hit_rate" in stats
        assert "rollup_folds" in stats


class TestRollupIntegration:
    def test_long_range_served_from_tier_and_exact(self):
        store = make_store(points=400)
        rollups = RollupManager(store, resolutions=(10.0, 60.0))
        rollups.fold(600.0)
        qe = QueryEngine(store, rollups=rollups, enable_cache=False)
        tiered = qe.query("mean(node_cpu_util[600s] by 60s)", at=600.0)
        assert tiered.source == "rollup:60s"
        flat = QueryEngine(store, enable_cache=False).query(
            "mean(node_cpu_util[600s] by 60s)", at=600.0
        )
        np.testing.assert_array_equal(tiered.series[0].times, flat.series[0].times)
        np.testing.assert_allclose(tiered.series[0].values, flat.series[0].values, rtol=1e-12)

    def test_raw_tail_past_watermark_included(self):
        store = TimeSeriesStore()
        key = SeriesKey.of("m")
        store.insert_batch(key, np.arange(0.0, 100.0), np.ones(100))
        rollups = RollupManager(store, resolutions=(10.0,))
        rollups.fold(50.0)  # watermark at 50; the rest stays raw
        store.insert_batch(key, np.arange(100.0, 130.0), np.ones(30))
        qe = QueryEngine(store, rollups=rollups, enable_cache=False)
        r = qe.query("count(m[130s] by 10s)", at=130.0)
        assert r.source == "rollup:10s"
        assert float(np.sum(r.series[0].values)) == 130.0

    def test_percentiles_stay_raw(self):
        store = make_store()
        rollups = RollupManager(store, resolutions=(60.0,))
        rollups.fold(600.0)
        qe = QueryEngine(store, rollups=rollups, enable_cache=False)
        assert qe.query("p95(node_cpu_util[600s] by 60s)", at=600.0).source == "raw"
