"""Query fusion (widen/narrow) exactness and the raw samples API."""

import numpy as np
import pytest

from repro.query.engine import QueryEngine
from repro.query.fuse import fusable, narrow_result, widen
from repro.query.model import LabelMatcher, MetricQuery
from repro.query.parser import parse_query
from repro.telemetry.metric import SeriesKey
from repro.telemetry.tsdb import TimeSeriesStore


def _store(n_nodes=8, points=50, period=10.0):
    store = TimeSeriesStore()
    rng = np.random.default_rng(42)
    times = np.arange(points) * period
    for i in range(n_nodes):
        store.insert_batch(
            SeriesKey.of("util", node=f"n{i:02d}", rack=f"r{i % 2}"),
            times,
            rng.uniform(0.0, 1.0, size=points),
        )
    return store


class TestFusable:
    def test_requires_matchers(self):
        assert not fusable(parse_query("mean(util[100s]) group by (node)"))

    def test_matcher_label_must_be_grouped(self):
        assert not fusable(parse_query('mean(util{node=~"n0.*"}[100s])'))
        assert fusable(parse_query('mean(util{node=~"n0.*"}[100s]) group by (node)'))

    def test_mixed_labels(self):
        q = parse_query('mean(util{node=~"n0.*",rack="r0"}[100s]) group by (node)')
        assert not fusable(q)  # rack matched but not grouped
        q = parse_query('mean(util{node=~"n0.*",rack="r0"}[100s]) group by (node,rack)')
        assert fusable(q)

    def test_widen_drops_matchers_only(self):
        q = parse_query('p95(util{node=~"n0.*"}[100s] by 10s) group by (node)')
        w = widen(q)
        assert w.matchers == ()
        assert (w.metric, w.agg, w.range_s, w.step_s, w.group_by) == (
            q.metric, q.agg, q.range_s, q.step_s, q.group_by,
        )


class TestNarrowExactness:
    @pytest.mark.parametrize("agg", ["mean", "sum", "max", "count", "last", "p95"])
    @pytest.mark.parametrize(
        "expr_tpl",
        [
            'AGG(util{node=~"n0[0-3]"}[300s] by 30s) group by (node)',
            'AGG(util{node=~"n0[0-3]"}[300s]) group by (node)',
            'AGG(util{rack="r1"}[200s] by 50s) group by (rack,node)',
        ],
    )
    def test_narrowed_equals_direct(self, agg, expr_tpl):
        store = _store()
        engine = QueryEngine(store, enable_cache=False)
        q = parse_query(expr_tpl.replace("AGG", agg))
        assert fusable(q)
        direct = engine.query(q, at=500.0)
        fused = narrow_result(q, engine.query(widen(q), at=500.0))
        assert len(direct.series) == len(fused.series)
        for d, f in zip(direct.series, fused.series):
            assert d.labels == f.labels
            np.testing.assert_array_equal(d.times, f.times)
            np.testing.assert_array_equal(d.values, f.values)

    def test_no_match_yields_empty(self):
        store = _store()
        engine = QueryEngine(store, enable_cache=False)
        q = parse_query('mean(util{node="absent"}[300s]) group by (node)')
        fused = narrow_result(q, engine.query(widen(q), at=500.0))
        assert fused.series == ()

    def test_source_tagged(self):
        store = _store()
        engine = QueryEngine(store, enable_cache=False)
        q = parse_query('mean(util{node="n00"}[300s]) group by (node)')
        fused = narrow_result(q, engine.query(widen(q), at=500.0))
        assert fused.source.startswith("fused+")


class TestSamples:
    def test_cursor_semantics(self):
        store = TimeSeriesStore()
        key = SeriesKey.of("steps", job="j1")
        for t in (10.0, 20.0, 30.0, 40.0):
            store.insert(key, t, t * 2)
        engine = QueryEngine(store, enable_cache=False)
        q = parse_query('last(steps{job="j1"})')
        times, values = engine.samples(q, at=100.0)
        np.testing.assert_array_equal(times, [10.0, 20.0, 30.0, 40.0])
        # since is exclusive
        times, values = engine.samples(q, at=100.0, since=20.0)
        np.testing.assert_array_equal(times, [30.0, 40.0])
        np.testing.assert_array_equal(values, [60.0, 80.0])
        times, _ = engine.samples(q, at=100.0, since=40.0)
        assert times.size == 0

    def test_pooled_across_series_sorted(self):
        store = TimeSeriesStore()
        store.insert_batch(SeriesKey.of("m", s="a"), np.array([1.0, 3.0]), np.array([1.0, 3.0]))
        store.insert_batch(SeriesKey.of("m", s="b"), np.array([2.0, 4.0]), np.array([2.0, 4.0]))
        engine = QueryEngine(store, enable_cache=False)
        times, values = engine.samples(parse_query("last(m)"), at=10.0)
        np.testing.assert_array_equal(times, [1.0, 2.0, 3.0, 4.0])
        np.testing.assert_array_equal(values, [1.0, 2.0, 3.0, 4.0])

    def test_range_window_floor(self):
        store = TimeSeriesStore()
        key = SeriesKey.of("m")
        for t in (10.0, 50.0, 90.0):
            store.insert(key, t, t)
        engine = QueryEngine(store, enable_cache=False)
        times, _ = engine.samples(parse_query("last(m[50s])"), at=100.0)
        np.testing.assert_array_equal(times, [50.0, 90.0])


class TestSelectionCache:
    def test_select_memo_tracks_new_series(self):
        store = _store(n_nodes=2)
        engine = QueryEngine(store, enable_cache=False)
        q = MetricQuery("util", matchers=(LabelMatcher("node", "=~", "n.*"),))
        assert len(engine.select(q)) == 2
        store.insert(SeriesKey.of("util", node="n99"), 1000.0, 0.5)
        assert len(engine.select(q)) == 3  # generation bump invalidates memo
