"""Tests for rollup tiers: folding, cascading, watermarks, retention."""

import numpy as np
import pytest

from repro.query.cache import QueryCache
from repro.query.rollup import RollupManager, _StatRing
from repro.sim import Engine
from repro.telemetry.metric import SeriesKey
from repro.telemetry.tsdb import TimeSeriesStore


def filled_store(points=300, step=1.0):
    store = TimeSeriesStore(default_capacity=8192)
    key = SeriesKey.of("m", node="a")
    times = np.arange(points, dtype=float) * step
    store.insert_batch(key, times, np.sin(times))
    return store, key


class TestFolding:
    def test_fold_only_complete_bins(self):
        store, key = filled_store(points=95)
        roll = RollupManager(store, resolutions=(10.0,))
        roll.fold(95.0)
        rows = roll.tiers[0].window(key, 0.0, 1e9)
        np.testing.assert_array_equal(rows["time"], np.arange(0.0, 90.0, 10.0))
        assert roll.tiers[0].watermark(key) == 90.0

    def test_fold_is_idempotent(self):
        store, key = filled_store()
        roll = RollupManager(store, resolutions=(10.0,))
        first = roll.fold(300.0)
        assert first > 0
        assert roll.fold(300.0) == 0  # nothing new

    def test_incremental_fold_equals_single_fold(self):
        store_a, key = filled_store()
        roll_a = RollupManager(store_a, resolutions=(10.0,))
        for now in (40.0, 123.0, 300.0):
            roll_a.fold(now)
        store_b, _ = filled_store()
        roll_b = RollupManager(store_b, resolutions=(10.0,))
        roll_b.fold(300.0)
        rows_a = roll_a.tiers[0].window(key, 0.0, 1e9)
        rows_b = roll_b.tiers[0].window(key, 0.0, 1e9)
        for col in rows_a:
            np.testing.assert_allclose(rows_a[col], rows_b[col], rtol=1e-12)

    def test_rollup_row_statistics(self):
        store = TimeSeriesStore()
        key = SeriesKey.of("m")
        store.insert_batch(
            key, np.array([0.0, 3.0, 7.0, 12.0]), np.array([4.0, 2.0, 6.0, 1.0])
        )
        roll = RollupManager(store, resolutions=(10.0,))
        roll.fold(20.0)
        rows = roll.tiers[0].window(key, 0.0, 20.0)
        np.testing.assert_array_equal(rows["time"], [0.0, 10.0])
        np.testing.assert_array_equal(rows["sum"], [12.0, 1.0])
        np.testing.assert_array_equal(rows["count"], [3.0, 1.0])
        np.testing.assert_array_equal(rows["min"], [2.0, 1.0])
        np.testing.assert_array_equal(rows["max"], [6.0, 1.0])
        np.testing.assert_array_equal(rows["last_v"], [6.0, 1.0])
        np.testing.assert_array_equal(rows["last_t"], [7.0, 12.0])


class TestCascade:
    def test_coarse_tier_folds_from_fine(self):
        store, key = filled_store(points=700)
        roll = RollupManager(store, resolutions=(10.0, 100.0))
        roll.fold(700.0)
        fine = roll.tiers[0].window(key, 0.0, 1e9)
        coarse = roll.tiers[1].window(key, 0.0, 1e9)
        assert coarse["time"].size == 7
        # coarse sums/counts must equal regrouped fine sums/counts
        np.testing.assert_allclose(
            coarse["sum"],
            [np.sum(fine["sum"][(fine["time"] // 100) == b]) for b in range(7)],
            rtol=1e-12,
        )
        assert roll.tiers[1].watermark(key) == 700.0

    def test_resolutions_must_nest(self):
        store, _ = filled_store()
        with pytest.raises(ValueError, match="multiple"):
            RollupManager(store, resolutions=(10.0, 25.0))

    def test_tier_for_prefers_coarsest_exact(self):
        store, _ = filled_store()
        roll = RollupManager(store, resolutions=(10.0, 60.0, 600.0))
        assert roll.tier_for(600.0, "mean").resolution_s == 600.0
        assert roll.tier_for(120.0, "mean").resolution_s == 60.0
        assert roll.tier_for(90.0, "mean").resolution_s == 10.0
        assert roll.tier_for(5.0, "mean") is None  # finer than any tier
        assert roll.tier_for(600.0, "p95") is None  # needs raw samples
        assert roll.tier_for(None, "mean") is None  # instant queries scan raw


class TestRetention:
    def test_tier_ring_keeps_tail(self):
        store, key = filled_store(points=2000)
        roll = RollupManager(store, resolutions=(10.0,), capacity=50)
        roll.fold(2000.0)
        rows = roll.tiers[0].window(key, 0.0, 1e9)
        assert rows["time"].size == 50
        np.testing.assert_array_equal(rows["time"], np.arange(1500.0, 2000.0, 10.0))

    def test_tier_outlives_raw_ring(self):
        """Rollups retain history the raw ring has already overwritten."""
        store = TimeSeriesStore(default_capacity=100)
        key = SeriesKey.of("m")
        roll = RollupManager(store, resolutions=(10.0,), capacity=1000)
        t = 0.0
        for _ in range(20):
            times = np.arange(t, t + 50.0)
            store.insert_batch(key, times, np.ones(50))
            t += 50.0
            roll.fold(t)  # fold before the ring wraps
        raw_times, _ = store.query(key, -np.inf, np.inf)
        assert raw_times[0] == 900.0  # raw kept only the last 100 samples
        rows = roll.tiers[0].window(key, 0.0, 1e9)
        assert rows["time"][0] == 0.0  # rollups kept everything


class TestAttach:
    def test_attach_folds_on_cadence(self):
        engine = Engine()
        store = TimeSeriesStore()
        key = SeriesKey.of("m")
        engine.every(1.0, lambda: store.insert(key, engine.now, 1.0))
        roll = RollupManager(store, resolutions=(10.0,))
        roll.attach(engine)
        engine.run(until=100.0)
        # folds fired on cadence; all complete 10s bins are rolled up
        assert roll.tiers[0].watermark(key) == 100.0
        assert roll.tiers[0].window(key, 0.0, 1e9)["time"].size == 10
        with pytest.raises(RuntimeError):
            roll.attach(engine)
        roll.detach()


class TestStatRing:
    def test_append_larger_than_capacity(self):
        ring = _StatRing(4)
        cols = {
            name: np.arange(10.0)
            for name in ("time", "sum", "count", "min", "max", "last_t", "last_v")
        }
        ring.append_rows(cols)
        np.testing.assert_array_equal(ring.ordered()["time"], [6.0, 7.0, 8.0, 9.0])

    def test_wraparound_split_write(self):
        ring = _StatRing(5)
        def mk(a):
            return {
                name: np.asarray(a, dtype=float)
                for name in ("time", "sum", "count", "min", "max", "last_t", "last_v")
            }
        ring.append_rows(mk([0.0, 1.0, 2.0]))
        ring.append_rows(mk([3.0, 4.0, 5.0, 6.0]))
        np.testing.assert_array_equal(ring.ordered()["time"], [2.0, 3.0, 4.0, 5.0, 6.0])


class TestIngestFedFolding:
    """Tier-0 folding consumes committed batches, not raw rescans."""

    def _ingested_store_rows(self, chunk_ticks, fold_points):
        """Insert via the listener path (manager exists first), folding at
        the given points; return the tier-0 rows."""
        store = TimeSeriesStore(default_capacity=8192)
        key = SeriesKey.of("m", node="a")
        roll = RollupManager(store, resolutions=(10.0,))
        t = 0.0
        folds = iter(fold_points)
        next_fold = next(folds, None)
        for _ in range(chunk_ticks):
            store.insert(key, t, np.sin(t))
            t += 1.0
            if next_fold is not None and t >= next_fold:
                roll.fold(next_fold)
                next_fold = next(folds, None)
        roll.fold(t)
        return roll, key

    def test_listener_fed_rows_match_bootstrap_rows(self):
        # manager-first (pure listener path), folded incrementally…
        roll_a, key = self._ingested_store_rows(300, (40.0, 123.0, 250.0))
        # …vs data-first (pure raw bootstrap path), folded once
        store_b, _ = filled_store()
        roll_b = RollupManager(store_b, resolutions=(10.0,))
        roll_b.fold(300.0)
        rows_a = roll_a.tiers[0].window(key, 0.0, 1e9)
        rows_b = roll_b.tiers[0].window(key, 0.0, 1e9)
        for col in rows_a:
            np.testing.assert_allclose(rows_a[col], rows_b[col], rtol=1e-12)

    def test_fold_does_not_rescan_rings_for_streamed_series(self):
        """Once listener coverage reaches the watermark, folding must not
        query raw rings — streamed data is folded from the buffer."""
        store = TimeSeriesStore(default_capacity=8192)
        key = SeriesKey.of("m")
        roll = RollupManager(store, resolutions=(10.0,))
        times = np.arange(0.0, 50.0)
        store.insert_batch(key, times, np.ones(50))
        roll.fold(50.0)  # bootstrap scan
        calls = []
        original = store.query
        store.query = lambda *a, **k: (calls.append(a), original(*a, **k))[1]
        store.insert_batch(key, np.arange(50.0, 100.0), np.ones(50))
        roll.fold(100.0)
        store.query = original
        assert calls == []  # second fold consumed only the ingest buffer
        rows = roll.tiers[0].window(key, 0.0, 1e9)
        np.testing.assert_array_equal(rows["time"], np.arange(0.0, 100.0, 10.0))

    def test_mixed_pre_and_post_manager_data(self):
        """Data before the manager existed plus streamed data afterwards
        folds exactly once each."""
        store = TimeSeriesStore(default_capacity=8192)
        key = SeriesKey.of("m")
        store.insert_batch(key, np.arange(0.0, 35.0), np.ones(35))  # pre-manager
        roll = RollupManager(store, resolutions=(10.0,))
        store.insert_batch(key, np.arange(35.0, 95.0), np.ones(60))  # streamed
        roll.fold(95.0)
        rows = roll.tiers[0].window(key, 0.0, 1e9)
        np.testing.assert_array_equal(rows["time"], np.arange(0.0, 90.0, 10.0))
        np.testing.assert_array_equal(rows["count"], np.full(9, 10.0))

    def test_buffer_overflow_drains_complete_bins(self):
        store = TimeSeriesStore(default_capacity=8192)
        key = SeriesKey.of("m")
        roll = RollupManager(store, resolutions=(10.0,), ingest_buffer_cap=64)
        for t in range(200):  # overflows the 64-sample cap repeatedly
            store.insert(key, float(t), 1.0)
        assert roll._buffered_rows <= 64  # drained early, memory bounded
        rows = roll.tiers[0].window(key, 0.0, 1e9)
        assert rows["time"].size >= 18  # complete bins already folded
        roll.fold(200.0)
        rows = roll.tiers[0].window(key, 0.0, 1e9)
        np.testing.assert_array_equal(rows["time"], np.arange(0.0, 200.0, 10.0))
        np.testing.assert_array_equal(rows["count"], np.full(20, 10.0))

    def test_overflow_drain_handles_time_skewed_series(self):
        """Regression: drain boundary must use the buffer's true max time
        even when the last-sorted series carries the oldest timestamps."""
        store = TimeSeriesStore(default_capacity=8192)
        a = store.registry.id_for(SeriesKey.of("m", node="a"))  # lower id, newer times
        b = store.registry.id_for(SeriesKey.of("m", node="b"))  # higher id, older times
        roll = RollupManager(store, resolutions=(10.0,), ingest_buffer_cap=4)
        store.append_batch(
            np.array([a, a, a, a, b, b, b, b]),
            np.array([100.0, 101.0, 102.0, 103.0, 1.0, 2.0, 3.0, 4.0]),
            np.ones(8),
        )
        assert roll._buffered_rows <= 4  # drain actually released the cap
        rows = roll.tiers[0].window(SeriesKey.of("m", node="b"), 0.0, 1e9)
        np.testing.assert_array_equal(rows["time"], [0.0])
        np.testing.assert_array_equal(rows["count"], [4.0])

    def test_caller_reusing_arrays_cannot_corrupt_buffer(self):
        """Regression: the listener must receive copies from insert_batch
        so a caller mutating its scratch arrays afterwards is harmless."""
        store = TimeSeriesStore(default_capacity=8192)
        key = SeriesKey.of("m")
        roll = RollupManager(store, resolutions=(10.0,))
        buf_t = np.arange(0.0, 20.0)
        buf_v = np.ones(20)
        store.insert_batch(key, buf_t, buf_v)
        buf_t += 100.0  # caller reuses its scratch arrays
        buf_v[:] = 999.0
        roll.fold(20.0)
        rows = roll.tiers[0].window(key, 0.0, 1e9)
        np.testing.assert_array_equal(rows["time"], [0.0, 10.0])
        np.testing.assert_array_equal(rows["sum"], [10.0, 10.0])

    def test_late_samples_are_counted_not_folded(self):
        store = TimeSeriesStore(default_capacity=8192)
        key_a = SeriesKey.of("m", node="a")
        key_b = SeriesKey.of("m", node="b")
        roll = RollupManager(store, resolutions=(10.0,))
        store.insert(key_a, 0.0, 1.0)
        store.insert(key_b, 0.0, 1.0)
        roll.fold(50.0)  # advances both watermarks to 50
        store.insert(key_b, 12.0, 99.0)  # arrives behind the watermark
        store.insert(key_b, 60.0, 2.0)
        roll.fold(70.0)
        assert roll.late_samples_dropped == 1
        rows = roll.tiers[0].window(key_b, 0.0, 1e9)
        np.testing.assert_array_equal(rows["time"], [0.0, 60.0])  # 12.0 not folded


class TestQueryCacheUnit:
    def test_lru_eviction(self):
        cache = QueryCache(max_entries=2)
        cache.put(("a",), 1)
        cache.put(("b",), 2)
        assert cache.get(("a",)) == 1  # refresh a
        cache.put(("c",), 3)  # evicts b
        assert cache.get(("b",)) is None
        assert cache.get(("a",)) == 1
        assert cache.evictions == 1

    def test_hit_miss_counters(self):
        cache = QueryCache()
        assert cache.get("k") is None
        cache.put("k", 42)
        assert cache.get("k") == 42
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_invalidate(self):
        cache = QueryCache()
        cache.put("k", 42)
        cache.invalidate()
        assert cache.get("k") is None

    def test_quantized_keys(self):
        k1 = QueryCache.make_key("expr", 0.0, 60.0, 30.0)
        k2 = QueryCache.make_key("expr", 10.0, 89.0, 30.0)
        k3 = QueryCache.make_key("expr", 0.0, 95.0, 30.0)
        assert k1 == k2 and k1 != k3
