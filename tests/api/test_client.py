"""Tests for the public ``repro.api.Client`` facade.

The client is the one supported external surface: every read passes the
front door (typed request/response, admission, fast paths), the sim
advances under the serving write gate, and the deprecated raw-engine
entry point still works but warns exactly once per process.
"""

import warnings

import numpy as np
import pytest

import repro.cluster.cluster as cluster_mod
from repro.api import Client, ClusterConfig, QueryRequest, QueryResult, TenantSpec
from repro.obs import MetricsRegistry

EXPR = "mean(node_cpu_util[300s] by 30s)"


@pytest.fixture(scope="module")
def client():
    with Client.from_config(
        ClusterConfig(n_nodes=4, telemetry_period_s=10.0, seed=3)
    ) as c:
        c.run(until=600.0)
        yield c


class TestServing:
    def test_query_ok_and_engine_exact(self, client):
        at = client.now
        res = client.query(EXPR, at=at)
        assert res.ok and res.status == "ok"
        assert res.tenant == "default"
        assert not res.degraded
        assert len(res.series) > 0
        with client.front_door.write_gate():
            want = client.engine.query(client.engine.parse(EXPR), at=at)
        assert len(res.series) == len(want.series)
        for a, b in zip(res.series, want.series):
            assert a.labels == b.labels
            assert np.array_equal(a.times, b.times)
            assert np.array_equal(a.values, b.values)

    def test_query_async_future(self, client):
        fut = client.query_async(EXPR, deadline_ms=5000.0)
        res = fut.result(timeout=10.0)
        assert isinstance(res, QueryResult)
        assert res.ok

    def test_samples(self, client):
        times, values = client.samples("mean(node_cpu_util)")
        assert len(times) == len(values) > 0
        assert np.all(np.diff(times) >= 0)

    def test_typed_request_boundary(self, client):
        res = client.front_door.serve(QueryRequest(EXPR, at=client.now))
        assert isinstance(res, QueryResult)
        assert res.request.expr() == EXPR

    def test_add_tenant(self, client):
        client.add_tenant(TenantSpec("team-a", qps=50.0, priority=2))
        res = client.query(EXPR, tenant="team-a")
        assert res.ok and res.tenant == "team-a"

    def test_unknown_tenant_rejected(self, client):
        res = client.query(EXPR, tenant="never-registered")
        assert res.status == "rejected"
        assert res.reason == "unknown_tenant"


class TestReadout:
    def test_stats_shape(self, client):
        stats = client.stats()
        assert "serve" in stats and "engine" in stats
        assert stats["serve"]["tenant_default"]["served"] >= 1.0

    def test_metrics_taxonomy(self, client):
        client.query(EXPR)
        snap = client.metrics(MetricsRegistry()).snapshot()
        assert snap["serve.submitted"] >= 1.0
        assert "serve.pressure" in snap
        assert any(k.startswith("serve.tenant_default.") for k in snap)
        assert any(k.startswith("engine.") for k in snap)

    def test_trace_spans(self, client):
        client.trace(enable=True)
        try:
            client.query(EXPR, at=client.now - 1.0)
            spans = client.trace()
        finally:
            client.trace(enable=False)
        assert any(s[0] == "serve.request" for s in spans)  # span tuple: (name, ...)


class TestLifecycleAndMigration:
    def test_deprecated_query_engine_warns_once(self, client):
        cluster_mod._QUERY_ENGINE_WARNED = False
        resolutions = (10.0, 60.0, 600.0)
        with pytest.warns(DeprecationWarning, match="repro.api.Client"):
            engine = client.cluster.query_engine(rollup_resolutions=resolutions)
        assert engine is client.engine  # same memoized engine underneath
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            client.cluster.query_engine(rollup_resolutions=resolutions)
        assert not any(
            issubclass(w.category, DeprecationWarning) for w in record
        )

    def test_close_is_idempotent(self):
        c = Client.from_config(ClusterConfig(n_nodes=2, seed=1))
        c.run(until=50.0)
        assert c.query("mean(node_cpu_util)").ok
        c.close()
        c.close()
