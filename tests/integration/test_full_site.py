"""Full-site integration: all five autonomy loops on one simulated site.

The paper's end state is a site where multiple MODA autonomy loops run
concurrently over shared substrates.  This test deploys the Scheduler,
Maintenance, Misconfiguration, OST, and I/O-QoS loops on one engine and
verifies each one acted correctly without interfering with the others.
"""

import pytest

from repro.cluster.application import ApplicationProfile, LaunchConfig
from repro.cluster.checkpoint import CheckpointStore
from repro.cluster.job import Job, JobState
from repro.cluster.maintenance import MaintenanceEvent, MaintenanceManager
from repro.cluster.node import Node, NodeSpec
from repro.cluster.scheduler import Scheduler
from repro.core.audit import AuditTrail
from repro.loops import (
    IoQosConfig,
    IoQosManagerLoop,
    MaintenanceCaseManager,
    MisconfigCaseConfig,
    MisconfigCaseManager,
    OstCaseConfig,
    OstCaseManager,
    SchedulerCaseConfig,
    SchedulerCaseManager,
)
from repro.sim import Engine
from repro.storage import AppIoClient, OST, OstState, ParallelFileSystem, PeriodicWriter
from repro.telemetry.markers import ProgressMarkerChannel
from repro.telemetry.metric import SeriesKey
from repro.telemetry.tsdb import TimeSeriesStore


@pytest.fixture(scope="module")
def site():
    engine = Engine()
    audit = AuditTrail()
    store = TimeSeriesStore()
    channel = ProgressMarkerChannel()
    checkpoints = CheckpointStore()

    # --- substrates -----------------------------------------------------
    nodes = [Node(f"n{i:02d}", NodeSpec(cores=32)) for i in range(8)]
    fs = ParallelFileSystem(engine, [OST(f"ost{i}", 1000.0) for i in range(6)])
    scheduler = Scheduler(
        engine,
        nodes,
        marker_channel=channel,
        checkpoint_store=checkpoints,
        io_client_factory=lambda job: AppIoClient(fs, job.job_id),
    )
    maintenance = MaintenanceManager(engine, scheduler)

    # storage-side tenants
    deadline_writer = PeriodicWriter(engine, fs, "workflow", size_mb=800.0, period_s=60.0, stripe_count=2)
    bg_writer = PeriodicWriter(engine, fs, "bg0", size_mb=15000.0, period_s=30.0, stripe_count=4)
    deadline_writer.start(start_at=5.0)
    bg_writer.start()

    # --- the five loops ---------------------------------------------------
    sched_case = SchedulerCaseManager(
        engine, scheduler, channel,
        config=SchedulerCaseConfig(loop_period_s=60.0), audit=audit,
    )
    maint_case = MaintenanceCaseManager(engine, scheduler, maintenance, period_s=120.0, audit=audit)
    maint_case.start()
    misconfig_case = MisconfigCaseManager(
        engine, scheduler, store,
        config=MisconfigCaseConfig(loop_period_s=120.0, min_runtime_s=300.0),
        audit=audit,
    )
    misconfig_case.start()
    ost_case = OstCaseManager(
        engine, fs, [deadline_writer, bg_writer],
        config=OstCaseConfig(loop_period_s=60.0), audit=audit,
    )
    ost_case.start()
    qos_case = IoQosManagerLoop(
        engine, fs, [deadline_writer, bg_writer],
        config=IoQosConfig(latency_target_s=3.0, loop_period_s=60.0), audit=audit,
    )
    qos_case.start()

    # --- workload ----------------------------------------------------------
    underestimated = Job(
        "under", "alice",
        ApplicationProfile("solver", 4000.0, 1.0, marker_period_s=30.0),
        walltime_request_s=3000.0,
    )
    misconfigured = Job(
        "misconf", "bob",
        ApplicationProfile("mesher", 30_000.0, 1.0, marker_period_s=60.0),
        walltime_request_s=60_000.0,
        launch=LaunchConfig(threads=4),
    )
    long_runner = Job(
        "longrun", "carol",
        ApplicationProfile("climate", 40_000.0, 1.0, marker_period_s=60.0,
                           checkpoint_cost_s=60.0),
        walltime_request_s=60_000.0,
    )
    io_job = Job(
        "iojob", "dave",
        ApplicationProfile("writer-app", 6000.0, 1.0, marker_period_s=60.0,
                           io_every_s=500.0, io_size_mb=1000.0),
        walltime_request_s=20_000.0,
    )
    for job in (underestimated, misconfigured, long_runner, io_job):
        scheduler.submit(job)

    # utilization telemetry for the misconfiguration loop
    def sample():
        for node in nodes:
            util = 0.0
            if node.running_job_id:
                app = scheduler.app(node.running_job_id)
                if app is not None and app.running:
                    util = min(1.0, app.current_rate() / app.profile.base_step_rate)
            store.insert(SeriesKey.of("node_cpu_util", node=node.node_id), engine.now, util)

    engine.every(60.0, sample)

    # events: degrade an OST under the deadline writer, then maintenance on
    # the long-runner's nodes
    def degrade():
        victim = deadline_writer.file.stripe_osts[0]
        fs.set_ost_state(victim, OstState.DEGRADED, 0.05)
        return victim

    victims = {}
    engine.schedule_at(900.0, lambda: victims.update(ost=degrade()))

    def schedule_maintenance():
        maintenance.schedule_event(
            MaintenanceEvent(
                frozenset(long_runner.assigned_nodes),
                t_start=6000.0,
                duration_s=1200.0,
                announce_lead_s=2400.0,
            )
        )

    engine.schedule_at(3000.0, schedule_maintenance)
    engine.run(until=12_000.0)

    return dict(
        engine=engine, scheduler=scheduler, audit=audit, checkpoints=checkpoints,
        deadline_writer=deadline_writer, victims=victims,
        jobs=dict(under=underestimated, misconf=misconfigured,
                  longrun=long_runner, iojob=io_job),
        cases=dict(sched=sched_case, maint=maint_case, misconfig=misconfig_case,
                   ost=ost_case, qos=qos_case),
        fs=fs,
    )


class TestFullSite:
    def test_scheduler_loop_rescued_underestimated_job(self, site):
        job = site["jobs"]["under"]
        assert job.state is JobState.COMPLETED
        assert job.extension_count >= 1

    def test_misconfig_loop_fixed_thread_count(self, site):
        assert site["cases"]["misconfig"].fixes_applied >= 1
        app = site["scheduler"].app("misconf")
        if app is not None:  # still running at horizon
            assert app.launch.threads == 32

    def test_maintenance_loop_checkpointed_long_runner(self, site):
        job = site["jobs"]["longrun"]
        assert job.state is JobState.KILLED_MAINTENANCE
        record = site["checkpoints"].latest("carol", "climate")
        assert record is not None
        assert record.step > 0

    def test_ost_loop_moved_deadline_writer(self, site):
        victim = site["victims"]["ost"]
        assert victim not in site["deadline_writer"].file.stripe_osts
        assert site["cases"]["ost"].failovers >= 1

    def test_qos_loop_throttled_background(self, site):
        assert site["cases"]["qos"].adjustments >= 1
        allocation = site["fs"].qos.allocation("bg0")
        assert allocation is not None

    def test_io_job_progressed_with_real_writes(self, site):
        job = site["jobs"]["iojob"]
        writes = [t for t in site["fs"].transfers if t.client == "iojob"]
        assert len(writes) >= 3
        assert job.state in (JobState.COMPLETED, JobState.RUNNING)

    def test_audit_covers_all_loops(self, site):
        loops_seen = {e.loop for e in site["audit"].events}
        assert any(name.startswith("sched-case") for name in loops_seen)
        assert "maintenance-case" in loops_seen
        assert "ost-case" in loops_seen
        # misconfig + qos act through their executors; their loop names
        # appear when they planned actions
        assert len(loops_seen) >= 4

    def test_no_loop_starved_another(self, site):
        """Every loop iterated regularly over the whole horizon."""
        cases = site["cases"]
        assert cases["maint"].loop.iterations_run > 50
        assert cases["misconfig"].loop.iterations_run > 50
        assert cases["ost"].loop.iterations_run > 100
        assert cases["qos"].loop.iterations_run > 100
