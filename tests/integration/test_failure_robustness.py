"""Robustness: autonomy loops keep operating under node failures.

Section IV: "Resilience is essential in HPC systems where operations
must persist through component and subsystem failures."  These tests
inject node failures while the Scheduler-case loops run and verify the
system degrades gracefully: no crashes, failed jobs accounted, surviving
jobs still rescued, loops cleaned up.
"""


from repro.cluster.application import ApplicationProfile
from repro.cluster.failures import FailureInjector
from repro.cluster.job import Job, JobState
from repro.cluster.node import Node, NodeSpec
from repro.cluster.scheduler import Scheduler
from repro.loops import SchedulerCaseConfig, SchedulerCaseManager
from repro.sim import Engine, RngRegistry
from repro.telemetry.markers import ProgressMarkerChannel
from repro.workloads.generator import ResubmitPolicy, WorkloadGenerator, WorkloadSpec


def test_scheduler_loops_survive_node_failures():
    engine = Engine()
    rngs = RngRegistry(seed=13)
    channel = ProgressMarkerChannel()
    nodes = [Node(f"n{i}", NodeSpec()) for i in range(8)]
    scheduler = Scheduler(engine, nodes, marker_channel=channel, rng=rngs.stream("sched"))
    manager = SchedulerCaseManager(
        engine, scheduler, channel, config=SchedulerCaseConfig(loop_period_s=60.0)
    )
    injector = FailureInjector(
        engine, scheduler, rngs.stream("fail"), mtbf_node_s=20_000.0, repair_time_s=2_000.0
    )
    injector.start()
    generator = WorkloadGenerator(
        engine, scheduler, rngs.stream("wl"), WorkloadSpec(n_jobs=20)
    )
    ResubmitPolicy(engine, scheduler, resubmit_states=(JobState.TIMEOUT, JobState.FAILED))
    generator.start()
    engine.run(until=400_000.0)

    stats = scheduler.stats
    assert len(injector.records) > 0, "failures must actually have been injected"
    # conservation: every started job reached a terminal state
    terminal = stats.completed + stats.timeout + stats.failed + stats.killed_maintenance
    assert terminal == stats.submitted
    # the loop manager cleaned up after every ended job
    assert manager.active_loops() == len(scheduler.running_jobs())
    # despite failures, the loop still rescued underestimated jobs
    assert stats.extensions_granted > 0
    assert stats.completed > 0


def test_loop_handles_job_killed_mid_cycle():
    """A job dying between Monitor and Execute must not break the loop."""
    engine = Engine()
    channel = ProgressMarkerChannel()
    scheduler = Scheduler(engine, [Node("n0", NodeSpec())], marker_channel=channel)
    from repro.core.loop import PhaseLatency

    manager = SchedulerCaseManager(
        engine,
        scheduler,
        channel,
        config=SchedulerCaseConfig(
            loop_period_s=60.0,
            # long decision delay: the job can die while a plan is in flight
            phase_latency=PhaseLatency(analyze_s=30.0, plan_s=20.0),
        ),
    )
    profile = ApplicationProfile("app", 5000.0, 1.0, marker_period_s=30.0)
    job = Job("j1", "u", profile, walltime_request_s=3000.0)
    scheduler.submit(job)
    # kill the node shortly after a monitor tick fires
    engine.schedule(2000.0 + 10.0, scheduler.fail_node, "n0")
    engine.run(until=10_000.0)
    assert job.state is JobState.FAILED
    assert manager.active_loops() == 0  # loop stopped cleanly


def test_failed_then_resubmitted_job_gets_new_loop():
    engine = Engine()
    channel = ProgressMarkerChannel()
    scheduler = Scheduler(engine, [Node("n0", NodeSpec()), Node("n1", NodeSpec())],
                          marker_channel=channel)
    SchedulerCaseManager(
        engine, scheduler, channel, config=SchedulerCaseConfig(loop_period_s=60.0)
    )
    ResubmitPolicy(
        engine, scheduler,
        resubmit_states=(JobState.FAILED,), resubmit_delay_s=100.0,
    )
    profile = ApplicationProfile("app", 3000.0, 1.0, marker_period_s=30.0)
    job = Job("j1", "u", profile, walltime_request_s=2000.0)  # underestimated
    scheduler.submit(job)
    engine.schedule(500.0, scheduler.fail_node, "n0")
    engine.schedule(600.0, scheduler.repair_node, "n0")
    engine.run(until=30_000.0)
    assert job.state is JobState.FAILED
    clone = scheduler.jobs.get("j1-r1")
    assert clone is not None
    # the clone got its own loop and was rescued by an extension
    assert clone.state is JobState.COMPLETED
    assert clone.extension_count >= 1
