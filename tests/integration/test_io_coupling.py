"""Integration tests: application I/O phases coupled to the filesystem."""

import pytest

from repro.cluster.application import ApplicationProfile, RunningApp
from repro.cluster.job import Job, JobState
from repro.cluster.node import Node, NodeSpec
from repro.cluster.scheduler import Scheduler
from repro.sim import Engine
from repro.storage import OST, AppIoClient, ParallelFileSystem


def io_profile(runtime=1000.0, io_every=200.0, io_mb=1000.0, **kw):
    return ApplicationProfile(
        "io-app",
        total_steps=runtime,
        base_step_rate=1.0,
        marker_period_s=50.0,
        io_every_s=io_every,
        io_size_mb=io_mb,
        **kw,
    )


def make_fs(eng, n_osts=4, rate=1000.0):
    return ParallelFileSystem(eng, [OST(f"ost{i}", rate) for i in range(n_osts)])


class TestAppIoClient:
    def test_lazy_file_creation_and_write(self):
        eng = Engine()
        fs = make_fs(eng)
        client = AppIoClient(fs, "j1", stripe_count=2)
        assert client.file is None
        done = []
        client.write(1000.0, done.append)
        assert client.file is not None
        eng.run(until=5.0)
        assert len(done) == 1
        assert client.writes == 1


class TestRunningAppIo:
    def test_io_phases_pause_progress(self):
        eng = Engine()
        fs = make_fs(eng, rate=1000.0)
        client = AppIoClient(fs, "j1", stripe_count=2)
        app = RunningApp(eng, "j1", io_profile(), cores=32, io_client=client)
        app.start()
        eng.run(until=10_000.0)
        assert app.completed
        # 1000 s compute + 4 io phases (t=200,400,...) of 0.5 s each
        assert app.io_count >= 4
        assert app.io_blocked_s == pytest.approx(app.io_count * 0.5, rel=0.01)
        assert eng.now >= 1000.0 + app.io_blocked_s - 1.0

    def test_slow_filesystem_stretches_runtime(self):
        eng_fast = Engine()
        fast_fs = make_fs(eng_fast, rate=2000.0)
        app_fast = RunningApp(
            eng_fast, "j1", io_profile(), cores=32,
            io_client=AppIoClient(fast_fs, "j1"),
        )
        app_fast.start()
        eng_fast.run(until=50_000.0)

        eng_slow = Engine()
        slow_fs = make_fs(eng_slow, rate=20.0)  # badly contended site
        app_slow = RunningApp(
            eng_slow, "j1", io_profile(), cores=32,
            io_client=AppIoClient(slow_fs, "j1"),
        )
        app_slow.start()
        eng_slow.run(until=50_000.0)

        assert app_fast.completed and app_slow.completed
        assert app_slow.io_blocked_s > 10 * app_fast.io_blocked_s

    def test_no_io_without_client(self):
        eng = Engine()
        done = []
        app = RunningApp(
            eng, "j1", io_profile(), cores=32, on_complete=lambda a: done.append(eng.now)
        )  # no client → io spec ignored
        app.start()
        eng.run(until=5000.0)
        assert app.completed
        assert app.io_count == 0
        assert done == [pytest.approx(1000.0)]

    def test_checkpoint_blocked_during_io(self):
        eng = Engine()
        fs = make_fs(eng, rate=10.0)  # io phases last ~50 s
        client = AppIoClient(fs, "j1", stripe_count=2)
        app = RunningApp(eng, "j1", io_profile(io_mb=1000.0), cores=32, io_client=client)
        app.start()
        eng.run(until=210.0)  # inside the first io phase (starts at t=200)
        assert app.begin_checkpoint() is False

    def test_overlapping_io_skipped(self):
        eng = Engine()
        fs = make_fs(eng, rate=1.0)  # one write takes ~500 s > io_every
        client = AppIoClient(fs, "j1", stripe_count=2)
        app = RunningApp(eng, "j1", io_profile(io_every=200.0), cores=32, io_client=client)
        app.start()
        eng.run(until=2000.0)
        # only non-overlapping phases actually wrote
        assert client.writes < 10

    def test_kill_during_io_freezes_steps(self):
        eng = Engine()
        fs = make_fs(eng, rate=10.0)
        client = AppIoClient(fs, "j1", stripe_count=2)
        app = RunningApp(eng, "j1", io_profile(), cores=32, io_client=client)
        app.start()
        eng.run(until=210.0)  # mid-io
        final = app.stop()
        assert final == pytest.approx(200.0, rel=0.02)
        eng.run(until=5000.0)
        assert app.steps_done == final


class TestSchedulerIoFactory:
    def test_scheduler_wires_io_clients(self):
        eng = Engine()
        fs = make_fs(eng, rate=1000.0)
        sched = Scheduler(
            eng,
            [Node("n0", NodeSpec())],
            io_client_factory=lambda job: AppIoClient(fs, job.job_id),
        )
        job = Job("j1", "u", io_profile(), walltime_request_s=5000.0)
        sched.submit(job)
        eng.run(until=10_000.0)
        assert job.state is JobState.COMPLETED
        app_writes = [t for t in fs.transfers if t.client == "j1"]
        assert len(app_writes) >= 4

    def test_non_io_jobs_get_no_client(self):
        eng = Engine()
        fs = make_fs(eng)
        created = []

        def factory(job):
            client = AppIoClient(fs, job.job_id)
            created.append(client)
            return client

        sched = Scheduler(eng, [Node("n0", NodeSpec())], io_client_factory=factory)
        profile = ApplicationProfile("plain", 200.0, 1.0)  # no io_every_s
        sched.submit(Job("j1", "u", profile, walltime_request_s=500.0))
        eng.run(until=1000.0)
        assert created == []
