"""Tests for the CLI."""


from repro.cli import EXPERIMENT_INDEX, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "E1" in out and "E13" in out
    assert "Scheduler case" in out


def test_version_command(capsys):
    assert main(["version"]) == 0
    out = capsys.readouterr().out.strip()
    assert out == "1.0.0"


def test_no_command_prints_help(capsys):
    assert main([]) == 2
    assert "experiments" in capsys.readouterr().out


def test_index_covers_all_experiments():
    ids = [e[0] for e in EXPERIMENT_INDEX]
    assert ids == [f"E{i}" for i in range(1, 22)]


def test_loops_command(capsys):
    assert main(["loops", "--loops", "4", "--nodes", "8", "--horizon", "900"]) == 0
    out = capsys.readouterr().out
    assert "watch-0000" in out
    assert "fused reads" in out
    assert "loop_iteration_ms" in out


def test_bench_loops_command(tmp_path, capsys):
    out_path = tmp_path / "BENCH_loops.json"
    assert main(["bench-loops", "--loops", "8", "--ticks", "2", "--json", str(out_path)]) == 0
    out = capsys.readouterr().out
    assert "monitor speedup" in out
    assert "hosting overhead" in out
    import json

    data = json.loads(out_path.read_text())
    assert data["fleet"]["match"] == 1.0
    assert data["overhead"]["iterations_match"] == 1.0


def test_bench_ingest_command(tmp_path, capsys):
    out_path = tmp_path / "BENCH_ingest.json"
    assert main([
        "bench-ingest", "--nodes", "64", "--metrics", "4",
        "--horizon", "30", "--json", str(out_path),
    ]) == 0
    out = capsys.readouterr().out
    assert "speedup" in out
    import json

    row = json.loads(out_path.read_text())
    assert row["match"] == 1.0
    assert row["n_nodes"] == 64.0


def test_query_command(capsys):
    assert main([
        "query", "mean(node_cpu_util[600s] by 60s)", "--nodes", "4", "--horizon", "900",
    ]) == 0
    out = capsys.readouterr().out
    assert "source=" in out
    assert "# engine:" in out


def test_query_command_group_by(capsys):
    assert main([
        "query",
        'max(node_power_watts{node=~"n00.*"}[600s]) group by (node)',
        "--nodes", "4", "--horizon", "900",
    ]) == 0
    out = capsys.readouterr().out
    assert "node=" in out


def test_query_command_parse_error(capsys):
    assert main(["query", "not a query", "--nodes", "2", "--horizon", "60"]) == 2
    assert "cannot parse" in capsys.readouterr().err


def test_query_command_sharded_with_stats(capsys):
    assert main([
        "query", "mean(node_cpu_util[600s] by 60s) group by (node)",
        "--nodes", "4", "--horizon", "900", "--shards", "4", "--stats",
    ]) == 0
    out = capsys.readouterr().out
    assert "source=standing" in out  # eligible shape served from standing state
    assert "federation.shards = 4" in out
    assert "cache.hits = " in out
    assert "federation.fanout_mean = " in out
    assert "standing.registered_shapes = 1" in out
    assert "standing.scan_fallbacks = 0" in out
    # legacy flat names survive as aliases next to the canonical ones
    assert "[cache_hits]" in out


def test_query_command_stats_unsharded(capsys):
    assert main([
        "query", "mean(node_cpu_util[600s] by 60s)",
        "--nodes", "4", "--horizon", "600", "--stats",
    ]) == 0
    out = capsys.readouterr().out
    assert "cache.hits = " in out
    assert "federation." not in out  # no federation counters on one store


def test_supervise_command(capsys):
    assert main(["supervise", "--loops", "16"]) == 0
    out = capsys.readouterr().out
    assert "supervisor actions (audited):" in out
    assert "restart act-" in out
    assert "final p95" in out


def test_bench_supervise_smoke_command(tmp_path, capsys):
    out_path = tmp_path / "BENCH_supervise.json"
    assert main([
        "bench-supervise", "--loops", "32", "--ticks", "8",
        "--smoke", "--json", str(out_path),
    ]) == 0
    out = capsys.readouterr().out
    assert "healing:" in out
    assert "adaptive fusion" in out
    import json

    rows = json.loads(out_path.read_text())
    assert rows["heal"]["restores_within_2x"] == 1.0
    assert rows["fusion"]["match"] == 1.0
    # bench artifacts are stamped for cross-run comparability
    assert rows["git_sha"] and rows["generated_at"]


def test_bench_loops_artifact_carries_provenance(tmp_path, capsys):
    out_path = tmp_path / "BENCH_loops.json"
    assert main(["bench-loops", "--loops", "4", "--ticks", "2", "--json", str(out_path)]) == 0
    capsys.readouterr()
    import json

    data = json.loads(out_path.read_text())
    assert data["git_sha"] and data["generated_at"]


def test_bench_shard_smoke_command(tmp_path, capsys):
    out_path = tmp_path / "BENCH_shard.json"
    assert main([
        "bench-shard", "--series", "64", "--shards", "4", "--ticks", "8",
        "--smoke", "--json", str(out_path),
    ]) == 0
    out = capsys.readouterr().out
    assert "query speedup" in out
    import json

    rows = json.loads(out_path.read_text())
    assert rows["query"]["bit_identical"] == 1.0
    assert rows["query"]["match"] == 1.0
    assert rows["ingest"]["match"] == 1.0
    assert rows["query"]["n_shards"] == 4.0


def test_bench_obs_smoke_command(tmp_path, capsys):
    out_path = tmp_path / "BENCH_obs.json"
    assert main(["bench-obs", "--smoke", "--json", str(out_path)]) == 0
    out = capsys.readouterr().out
    assert "ingest: disabled" in out
    assert "spans recorded" in out
    import json

    rows = json.loads(out_path.read_text())
    assert rows["standing"]["match"] == 1.0  # spans never perturb results
    assert rows["standing"]["spans_recorded"] > 0
    assert rows["ingest"]["commits"] > 0
    assert rows["git_sha"] and rows["generated_at"]


def test_query_command_parallel_with_stats(capsys):
    assert main([
        "query", "mean(node_cpu_util[600s] by 60s) group by (node)",
        "--nodes", "4", "--horizon", "900", "--shards", "4", "--parallel", "2", "--stats",
    ]) == 0
    out = capsys.readouterr().out
    assert "source=standing" in out  # eligible shape served from standing state
    assert "federation.shards = 4" in out
    assert "pool.workers = 2" in out
    assert "standing.registered_shapes = 1" in out


def test_bench_shard_parallel_smoke_command(tmp_path, capsys):
    out_path = tmp_path / "BENCH_parallel_storage.json"
    assert main([
        "bench-shard", "--series", "64", "--shards", "4", "--ticks", "8",
        "--parallel", "2", "--smoke", "--json", str(out_path),
    ]) == 0
    out = capsys.readouterr().out
    assert "scatter speedup" in out
    assert "shm ingest overhead" in out
    import json

    rows = json.loads(out_path.read_text())
    assert rows["scatter"]["bit_identical"] == 1.0
    assert rows["ingest"]["match"] == 1.0
    assert rows["git_sha"] and rows["generated_at"]


def test_bench_parallel_smoke_command(tmp_path, capsys):
    out_path = tmp_path / "BENCH_parallel.json"
    assert main([
        "bench-parallel", "--series", "64", "--shards", "4", "--workers", "2",
        "--ticks", "8", "--smoke", "--json", str(out_path),
    ]) == 0
    out = capsys.readouterr().out
    assert "scatter speedup" in out
    assert "fleet + supervision reruns exact" in out
    import json

    rows = json.loads(out_path.read_text())
    assert rows["scatter"]["bit_identical"] == 1.0
    assert rows["ingest"]["match"] == 1.0
    assert rows["fleet"]["match"] == 1.0
    assert rows["supervise"]["trace_match"] == 1.0
    assert rows["supervise"]["restores_within_2x"] == 1.0
    assert rows["git_sha"] and rows["generated_at"]


def test_bench_diff_command(tmp_path, capsys):
    import json

    old_path, new_path = tmp_path / "old.json", tmp_path / "new.json"
    old_path.write_text(json.dumps(
        {"ingest": {"samples_per_s": 1000.0, "git_sha": "aaa111"}, "wall_ms": 5.0}
    ))
    new_path.write_text(json.dumps(
        {"ingest": {"samples_per_s": 700.0, "git_sha": "bbb222"}, "wall_ms": 9.0}
    ))
    # default: warn only, exit 0
    assert main(["bench-diff", str(old_path), str(new_path)]) == 0
    out = capsys.readouterr().out
    assert "# old: aaa111" in out and "# new: bbb222" in out
    assert "1 regressed beyond 20%" in out
    assert "REGRESSED" in out
    # --fail upgrades regressions to exit 1
    assert main(["bench-diff", str(old_path), str(new_path), "--fail"]) == 1
    capsys.readouterr()
    # within threshold: no regression even with --fail
    assert main([
        "bench-diff", str(old_path), str(new_path), "--threshold", "0.5", "--fail",
    ]) == 0
    assert "0 regressed" in capsys.readouterr().out


def test_bench_diff_command_errors(tmp_path, capsys):
    import json

    good = tmp_path / "good.json"
    good.write_text(json.dumps({"x_per_s": 1.0}))
    assert main(["bench-diff", str(tmp_path / "missing.json"), str(good)]) == 2
    assert "cannot load artifact" in capsys.readouterr().err
    assert main(["bench-diff", str(good), str(good), "--threshold", "1.5"]) == 2
    assert "threshold" in capsys.readouterr().err


def test_query_command_serving_flags(capsys):
    assert main([
        "query", "mean(node_cpu_util[600s] by 60s)",
        "--nodes", "4", "--horizon", "900",
        "--tenant", "dashboards", "--qps", "50", "--deadline-ms", "60000",
    ]) == 0
    out = capsys.readouterr().out
    assert "tenant=dashboards" in out
    assert "latency=" in out


def test_query_command_stats_include_serving(capsys):
    assert main([
        "query", "mean(node_cpu_util[600s] by 60s)",
        "--nodes", "4", "--horizon", "600", "--stats",
    ]) == 0
    out = capsys.readouterr().out
    assert "serve.submitted = " in out
    assert "serve.tenant_default.served = " in out


def test_serve_command(capsys):
    assert main([
        "serve", "--nodes", "8", "--horizon", "900",
        "--duration", "0.3", "--drivers", "2", "--qps", "500",
    ]) == 0
    out = capsys.readouterr().out
    assert "tenant" in out and "p99_ms" in out
    assert "besteffort" in out  # the three-tenant demo mix


def test_bench_serve_smoke_command(tmp_path, capsys):
    out_path = tmp_path / "BENCH_serve.json"
    assert main([
        "bench-serve", "--nodes", "8", "--duration", "0.4", "--drivers", "2",
        "--smoke", "--json", str(out_path),
    ]) == 0
    out = capsys.readouterr().out
    assert "E21" in out
    import json

    rows = json.loads(out_path.read_text())
    assert rows["load"]["match"] == 1.0
    assert rows["load"]["accounting_ok"] == 1.0
    assert rows["isolation"]["accounting_ok"] == 1.0
