#!/usr/bin/env python
"""Public-API import boundary check (PR 10).

External-facing code — the CLI and the experiment drivers — should talk
to the stack through :mod:`repro.api` (the ``Client`` facade and the
typed serving boundary), not construct engines from the internals.
This script AST-scans ``src/repro/cli.py`` and
``src/repro/experiments/*.py`` for imports of engine internals:

* ``repro.query.engine`` / ``repro.query.standing`` — batch and
  standing engine construction;
* ``repro.shard`` — federated / process-parallel engine construction;
* ``QueryEngine`` re-exported through ``repro.query``.

Pre-existing offenders are **grandfathered** (listed below) and only
warn — they predate the facade and migrate opportunistically.  Any NEW
violation fails the lint (exit 1): new code starts on the public
surface.

Run from the repository root: ``python tools/check_api_imports.py``.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

#: module prefixes that are engine internals (dotted-prefix match)
FORBIDDEN_PREFIXES = (
    "repro.query.engine",
    "repro.query.standing",
    "repro.shard",
)

#: names that are internals even when imported off the package root
FORBIDDEN_FROM_QUERY = frozenset({"QueryEngine"})

#: (path relative to src/, forbidden module) pairs that predate the
#: repro.api facade — these warn instead of failing; shrink, never grow
GRANDFATHERED = {
    ("repro/experiments/loops_exp.py", "repro.query.engine"),
    ("repro/experiments/obs_exp.py", "repro.query"),
    ("repro/experiments/obs_exp.py", "repro.query.standing"),
    ("repro/experiments/parallel_exp.py", "repro.shard"),
    ("repro/experiments/query_exp.py", "repro.query.engine"),
    ("repro/experiments/shard_exp.py", "repro.query.engine"),
    ("repro/experiments/shard_exp.py", "repro.query.standing"),
    ("repro/experiments/shard_exp.py", "repro.shard"),
    ("repro/experiments/standing_exp.py", "repro.query"),
    ("repro/experiments/standing_exp.py", "repro.query.standing"),
}


def _is_forbidden(module: str, names: Tuple[str, ...]) -> bool:
    for prefix in FORBIDDEN_PREFIXES:
        if module == prefix or module.startswith(prefix + "."):
            return True
    if module == "repro.query" and FORBIDDEN_FROM_QUERY.intersection(names):
        return True
    return False


def _violations(path: Path) -> Iterator[Tuple[int, str]]:
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if _is_forbidden(alias.name, ()):
                    yield node.lineno, alias.name
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            names = tuple(alias.name for alias in node.names)
            if _is_forbidden(node.module, names):
                yield node.lineno, node.module


def main() -> int:
    src = Path(__file__).resolve().parent.parent / "src"
    targets: List[Path] = [src / "repro" / "cli.py"]
    targets += sorted((src / "repro" / "experiments").glob("*.py"))
    warned = failed = 0
    for path in targets:
        rel = path.relative_to(src).as_posix()
        for lineno, module in _violations(path):
            if (rel, module) in GRANDFATHERED:
                warned += 1
                print(f"warning: {rel}:{lineno}: grandfathered import of "
                      f"{module} (migrate to repro.api)")
            else:
                failed += 1
                print(f"error: {rel}:{lineno}: imports engine internal "
                      f"{module} — use repro.api instead", file=sys.stderr)
    print(f"check_api_imports: {len(targets)} file(s), "
          f"{warned} grandfathered warning(s), {failed} new violation(s)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
