"""Setuptools shim.

Allows ``python setup.py develop`` on toolchains without the ``wheel``
package (offline environments); ``pip install -e .`` works wherever a
modern setuptools/wheel pair is available.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
