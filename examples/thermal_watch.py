#!/usr/bin/env python3
"""Seasonal-aware thermal monitoring with derived site aggregates.

Node temperatures swing ±5 °C with the diurnal facility cycle, so plain
thresholding either cries wolf every afternoon or misses real events.
This demo runs eight days of synthetic per-node temperature telemetry
with one injected cooling fault, and shows:

* the DerivedMetricsService maintaining site-level aggregates,
* a plain z-score detector going blind on the trending signal,
* the seasonal detector flagging exactly the faulty node and window.

Run:  python examples/thermal_watch.py
"""

import numpy as np

from repro.analytics import SeasonalAnomalyDetector, ZScoreDetector
from repro.analytics.seasonal import DAY_S
from repro.sim import Engine, RngRegistry
from repro.telemetry import (
    DerivedMetricSpec,
    DerivedMetricsService,
    SeriesKey,
    TimeSeriesStore,
)
from repro.telemetry.synthetic import SpikeSpec, SyntheticSeriesSpec, render_series

N_NODES = 12
STEP_S = 600.0
DAYS = 8
FAULT_NODE = 7
FAULT_AT = 6 * DAY_S + 2.5 * 3600.0  # 02:30 on day 7 — off the daily peak


def main() -> None:
    engine = Engine()
    rngs = RngRegistry(seed=23)
    store = TimeSeriesStore(default_capacity=int(DAYS * DAY_S / STEP_S) + 8)
    grid = np.arange(0.0, DAYS * DAY_S, STEP_S)

    for node in range(N_NODES):
        spec = SyntheticSeriesSpec(
            base=float(rngs.fork("base", node).uniform(58, 66)),
            diurnal_amplitude=5.0,
            noise_std=0.5,
            ar1_coeff=0.4,
            spikes=[SpikeSpec(FAULT_AT, magnitude=6.0, duration=3 * 3600.0)]
            if node == FAULT_NODE
            else [],
            clip_max=95.0,
        )
        series = render_series(grid, spec, rngs.fork("temp", node))
        store.insert_batch(
            SeriesKey.of("node_temp_celsius", node=f"n{node:02d}"), grid, series
        )

    # site aggregates, recomputed once per simulated hour
    service = DerivedMetricsService(
        engine,
        store,
        [DerivedMetricSpec("node_temp_celsius", "max", SeriesKey.of("cluster_temp_max"),
                           window_s=3600.0),
         DerivedMetricSpec("node_temp_celsius", "mean", SeriesKey.of("cluster_temp_mean"),
                           window_s=3600.0)],
        period_s=3600.0,
    )
    service.start(start_at=3600.0)
    engine.run(until=DAYS * DAY_S)

    _, maxima = store.query(SeriesKey.of("cluster_temp_max"), 0, DAYS * DAY_S)
    print(f"site aggregates: {service.samples_written} samples; "
          f"hottest hour peaked at {maxima.max():.1f} °C")

    print("\nper-node diagnosis (plain 6 h z-score vs seasonal baseline):")
    any_seasonal = []
    for node in range(N_NODES):
        key = SeriesKey.of("node_temp_celsius", node=f"n{node:02d}")
        times, values = store.query(key, 0, DAYS * DAY_S)
        plain = ZScoreDetector(window=36, threshold=4.0)
        seasonal = SeasonalAnomalyDetector(threshold=5.5, min_per_bin=3)
        plain_hits, seasonal_hits = [], []
        for t, v in zip(times, values):
            if plain.update(t, v) is not None:
                plain_hits.append(t)
            if seasonal.update(t, v) is not None:
                seasonal_hits.append(t)
        if plain_hits or seasonal_hits:
            print(f"  n{node:02d}: plain={len(plain_hits):2d} hits, "
                  f"seasonal={len(seasonal_hits):2d} hits "
                  + (f"(first at day {seasonal_hits[0]/DAY_S:.2f})" if seasonal_hits else ""))
        any_seasonal.extend((node, t) for t in seasonal_hits)

    flagged_nodes = {n for n, _ in any_seasonal}
    in_window = [t for n, t in any_seasonal
                 if n == FAULT_NODE and FAULT_AT <= t <= FAULT_AT + 3.5 * 3600.0]
    print(f"\ninjected fault: node n{FAULT_NODE:02d} at day {FAULT_AT/DAY_S:.2f} (+6 °C, 3 h)")
    print(f"seasonal detector flagged nodes: {sorted(flagged_nodes)}; "
          f"{len(in_window)} detections inside the fault window")
    assert FAULT_NODE in flagged_nodes and in_window


if __name__ == "__main__":
    main()
