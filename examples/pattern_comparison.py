#!/usr/bin/env python3
"""Fig. 2 live: the four MAPE-K patterns on one regulation task.

Runs classical, master-worker, coordinated, and hierarchical control of
the same drifting fleet (a power-cap-style task), then injects a
controller failure into each decentralized pattern to show the
containment differences the paper describes.

Run:  python examples/pattern_comparison.py
"""

from repro.experiments import render_table
from repro.experiments.patterns_exp import PatternScenarioConfig, run_pattern_scenario


def main() -> None:
    print("Regulating 64 drifting elements to a global cap, per pattern:\n")
    rows = [
        run_pattern_scenario(
            PatternScenarioConfig(seed=5, pattern=p, n_elements=64, horizon_s=900.0)
        )
        for p in ("classical", "master-worker", "coordinated", "hierarchical")
    ]
    print(render_table(
        rows,
        columns=["pattern", "latency_s", "messages_total", "bias", "osc_std"],
        title="healthy operation",
    ))

    print("\nNow kill one controller component at t=300s:\n")
    rows = [
        run_pattern_scenario(
            PatternScenarioConfig(
                seed=5, pattern=p, n_elements=64, horizon_s=900.0, inject_failure_at=300.0
            )
        )
        for p in ("master-worker", "coordinated", "hierarchical")
    ]
    print(render_table(
        rows,
        columns=["pattern", "uncontrolled_frac", "bias", "osc_std"],
        title="after controller failure (master / one local loop / one group head)",
    ))
    print(
        "\nreading: master-worker loses everything with its master;\n"
        "coordinated loses one element; hierarchical loses one group\n"
        "while the top level re-shares the target over survivors."
    )


if __name__ == "__main__":
    main()
