#!/usr/bin/env python3
"""Generate the paper's promised open datasets (methodology question iii).

The paper commits to releasing "the exploratory datasets used to gain
insight into the variation of progress markers and run-time variation".
This script runs a realistic mixed workload and exports the two
datasets as CSV:

* ``datasets/job_trace.csv``   — per-job outcomes (runtime variation)
* ``datasets/markers.csv``     — raw progress-marker streams

Run:  python examples/export_open_datasets.py
"""

from pathlib import Path

from repro.cluster import Cluster, ClusterConfig
from repro.sim import Engine, RngRegistry
from repro.workloads import (
    WorkloadGenerator,
    WorkloadSpec,
    export_job_trace,
    export_marker_dataset,
)


def main() -> None:
    engine = Engine()
    cluster = Cluster(engine, ClusterConfig(n_nodes=16, enable_telemetry=False, seed=11))
    generator = WorkloadGenerator(
        engine,
        cluster.scheduler,
        RngRegistry(seed=11).stream("workload"),
        WorkloadSpec(n_jobs=40, arrival_rate_per_s=1 / 120.0),
    )
    generator.start()
    engine.run(until=500_000.0)

    out = Path("datasets")
    out.mkdir(exist_ok=True)
    n_jobs = export_job_trace(generator.jobs, out / "job_trace.csv")
    n_markers = export_marker_dataset(cluster.markers, out / "markers.csv")

    states = {}
    for job in generator.jobs:
        states[job.state.value] = states.get(job.state.value, 0) + 1
    print(f"wrote {out/'job_trace.csv'}: {n_jobs} jobs {states}")
    print(f"wrote {out/'markers.csv'}: {n_markers} progress markers")

    # quick look at run-time variation per application archetype
    from collections import defaultdict

    runtimes = defaultdict(list)
    for job in generator.jobs:
        if job.runtime is not None and job.state.value == "completed":
            runtimes[job.profile.name].append(job.runtime)
    print("\nrun-time variation by archetype (completed jobs):")
    for app, values in sorted(runtimes.items()):
        lo, hi = min(values), max(values)
        print(f"  {app:14s} n={len(values):3d} range {lo/60:6.1f}–{hi/60:6.1f} min")


if __name__ == "__main__":
    main()
