#!/usr/bin/env python3
"""Misconfiguration case: detect bad job configs, advise or fix online.

Three jobs start on the cluster: one well-configured, one running 4
threads on 32 allocated cores, one missing the site BLAS from its
library path.  The Misconfiguration loop inspects launch configuration
plus utilization telemetry, fixes what it safely can on the fly, and
notifies the user about the rest (the paper's use case 4).

Run:  python examples/misconfig_advisor.py
"""

from repro.cluster import ApplicationProfile, Job, LaunchConfig, Node, NodeSpec, Scheduler
from repro.core import AuditTrail
from repro.core.humanloop import HumanOnTheLoopNotifier
from repro.loops import MisconfigCaseConfig, MisconfigCaseManager
from repro.sim import Engine
from repro.telemetry import ProgressMarkerChannel, SeriesKey, TimeSeriesStore


def main() -> None:
    engine = Engine()
    store = TimeSeriesStore()
    channel = ProgressMarkerChannel()
    audit = AuditTrail()
    notifier = HumanOnTheLoopNotifier(audit)
    nodes = [Node(f"n{i}", NodeSpec(cores=32)) for i in range(3)]
    scheduler = Scheduler(engine, nodes, marker_channel=channel)

    case = MisconfigCaseManager(
        engine,
        scheduler,
        store,
        config=MisconfigCaseConfig(loop_period_s=120.0, min_runtime_s=300.0),
        notifier=notifier,
        audit=audit,
    )
    case.start()

    profile = ApplicationProfile("solver", 20_000.0, 1.0, marker_period_s=60.0)
    jobs = [
        Job("good", "carol", profile, walltime_request_s=50_000.0, launch=LaunchConfig()),
        Job("few-threads", "dave", profile, walltime_request_s=50_000.0,
            launch=LaunchConfig(threads=4)),
        Job("wrong-libs", "erin", profile, walltime_request_s=50_000.0,
            launch=LaunchConfig(library_paths=("generic-blas",),
                                expected_libraries=("site-blas",))),
    ]
    for job in jobs:
        scheduler.submit(job)

    # node utilization telemetry reflecting each app's effective rate
    def sample() -> None:
        for node in nodes:
            util = 0.0
            if node.running_job_id:
                app = scheduler.app(node.running_job_id)
                if app is not None and app.running:
                    util = min(1.0, app.current_rate() / app.profile.base_step_rate)
            store.insert(SeriesKey.of("node_cpu_util", node=node.node_id), engine.now, util)

    engine.every(60.0, sample)
    engine.run(until=3000.0)

    print(f"online fixes applied : {case.fixes_applied}")
    print(f"user notifications   : {case.notifications_sent}")
    print("\nper-job effective throughput after the loop ran:")
    for job in jobs:
        app = scheduler.app(job.job_id)
        rate = app.current_rate() / profile.base_step_rate if app else 0.0
        print(f"  {job.job_id:12s} -> {rate:4.0%} of nominal")
    print("\naudit/notifications:")
    for event in audit.events:
        print("  " + event.render())
    assert case.fixes_applied >= 2  # both broken jobs were repaired


if __name__ == "__main__":
    main()
