#!/usr/bin/env python3
"""Scheduler case at fleet scale: autonomy loop vs. the status quo.

Runs the same misestimated workload three times — no response, a
human-in-the-loop operator, and the autonomous MAPE-K loop — and prints
the comparison table (experiment E3 of the reproduction).

Run:  python examples/scheduler_rescue.py
"""

from repro.experiments import (
    incentive_report,
    render_incentives,
    render_table,
    run_scheduler_scenario,
)
from repro.experiments.scheduler_case import SchedulerScenarioConfig


def main() -> None:
    rows = []
    for mode in ("none", "human", "autonomous"):
        cfg = SchedulerScenarioConfig(
            seed=42,
            mode=mode,
            n_nodes=16,
            n_jobs=32,
            horizon_s=400_000.0,
            human_median_latency_s=1800.0,  # a 30-minute operator
            human_availability=0.7,
        )
        rows.append(run_scheduler_scenario(cfg))

    print(render_table(
        rows,
        columns=[
            "mode", "submitted", "completed", "timeout", "completion_rate",
            "wasted_nh", "ext_req", "ext_granted", "resubmissions",
        ],
        title="Scheduler case: who rescues underestimated jobs?",
    ))
    by_mode = {r["mode"]: r for r in rows}
    saved = by_mode["none"]["wasted_nh"] - by_mode["autonomous"]["wasted_nh"]
    print(f"\nnode-hours saved by the autonomy loop vs no response: {saved:.1f}")

    # the deployment pitch the paper's question v asks for
    print("\nwhy adopt it (methodology question v):")
    print(render_incentives(incentive_report(by_mode["none"], by_mode["autonomous"])))


if __name__ == "__main__":
    main()
