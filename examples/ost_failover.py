#!/usr/bin/env python3
"""OST case: detect a degraded storage target and move files off it.

An application writes periodic checkpoints over a striped file.  At
t=600s one of its OSTs degrades to 5% of nominal bandwidth (think RAID
rebuild).  The OST autonomy loop watches per-OST achieved bandwidth,
flags the slow target, and tells the application to close its files
there and reopen on healthy OSTs — the paper's use case 3.

Run:  python examples/ost_failover.py
"""

from repro.core import AuditTrail
from repro.loops import OstCaseConfig, OstCaseManager
from repro.sim import Engine
from repro.storage import OST, OstState, ParallelFileSystem, PeriodicWriter


def main() -> None:
    engine = Engine()
    audit = AuditTrail()
    osts = [OST(f"ost{i}", nominal_rate_mbps=1000.0) for i in range(6)]
    fs = ParallelFileSystem(engine, osts)

    writer = PeriodicWriter(
        engine, fs, "simulation-app", size_mb=500.0, period_s=30.0, stripe_count=2
    )
    writer.start()

    case = OstCaseManager(
        engine, fs, [writer], config=OstCaseConfig(loop_period_s=60.0), audit=audit
    )
    case.start()

    timeline = []

    def degrade() -> None:
        victim = writer.file.stripe_osts[0]
        fs.set_ost_state(victim, OstState.DEGRADED, 0.05)
        timeline.append((engine.now, f"OST {victim} degraded to 5%"))

    def report() -> None:
        bw = writer.recent_bandwidth_mbps()
        if bw is not None:
            timeline.append(
                (engine.now, f"recent app write bandwidth: {bw:.0f} MB/s "
                             f"(stripes: {writer.file.stripe_osts})")
            )

    engine.schedule_at(600.0, degrade)
    engine.every(300.0, report, start_at=300.0)
    engine.run(until=2400.0)

    print("timeline:")
    for t, message in timeline:
        print(f"  t={t:7.1f}s  {message}")
    print("\nloop decisions:")
    for event in audit.events:
        print("  " + event.render())
    print(f"\nrestripes performed: {writer.file.restripe_count}")
    assert writer.file.restripe_count >= 1


if __name__ == "__main__":
    main()
