#!/usr/bin/env python3
"""Quickstart: one underestimated job, rescued by the Scheduler loop.

This is the paper's Fig. 3 in ~40 lines: an application emits progress
markers, a MAPE-K loop forecasts its completion, notices the walltime
will not suffice, and asks the scheduler for an extension — which the
scheduler may grant, shorten, or deny.

Run:  python examples/quickstart.py
"""

from repro.cluster import ApplicationProfile, Job, NodeSpec, Node, Scheduler
from repro.core import AuditTrail
from repro.loops import SchedulerCaseConfig, SchedulerCaseManager
from repro.sim import Engine
from repro.telemetry import ProgressMarkerChannel


def main() -> None:
    engine = Engine()
    channel = ProgressMarkerChannel()
    audit = AuditTrail()

    # a 4-node mini cluster with a SLURM-like scheduler
    nodes = [Node(f"n{i}", NodeSpec(cores=32)) for i in range(4)]
    scheduler = Scheduler(engine, nodes, marker_channel=channel)

    # attach the Scheduler-case autonomy loop (one loop per running job)
    SchedulerCaseManager(
        engine,
        scheduler,
        channel,
        config=SchedulerCaseConfig(forecaster_name="ols", loop_period_s=60.0),
        audit=audit,
    )

    # the user thinks their job needs 1 hour; it actually needs ~100 minutes
    app = ApplicationProfile(
        name="solver",
        total_steps=6000.0,
        base_step_rate=1.0,  # → ~6000 s true runtime
        marker_period_s=30.0,
    )
    job = Job("job-001", "alice", app, walltime_request_s=3600.0)
    scheduler.submit(job)

    engine.run(until=20_000.0)

    print(f"job state        : {job.state.value}")
    print(f"requested wall   : {job.walltime_request_s:.0f} s")
    print(f"final time limit : {job.time_limit_s:.0f} s")
    print(f"actual runtime   : {job.runtime:.0f} s")
    print(f"extensions       : {job.extension_count} "
          f"(+{job.total_extension_s:.0f} s granted)")
    print("\naudit trail:")
    for event in audit.events:
        print("  " + event.render())
    assert job.state.value == "completed", "the loop should have rescued this job"


if __name__ == "__main__":
    main()
