#!/usr/bin/env python3
"""Fig. 1 end to end: holistic monitoring feeding visualize/diagnose/forecast.

Builds a 32-node cluster with the full telemetry pipeline, runs a mixed
workload for two simulated hours, then plays the three ODA roles from
the paper's vision figure over the collected store:

* visualize — a text "dashboard" of downsampled cluster power,
* diagnose  — anomaly detection over per-node power series,
* forecast  — progress forecasts for every running job.

Run:  python examples/holistic_dashboard.py
"""

import numpy as np

from repro.analytics import OLSForecaster, ZScoreDetector
from repro.cluster import Cluster, ClusterConfig
from repro.query import QueryEngine, RollupManager
from repro.sim import Engine, RngRegistry
from repro.telemetry import SeriesKey
from repro.workloads import WorkloadGenerator, WorkloadSpec


def sparkline(values, width=48) -> str:
    """Tiny text chart for the 'visualize' role."""
    blocks = " .:-=+*#%@"
    if len(values) == 0:
        return ""
    arr = np.asarray(values, dtype=float)
    if len(arr) > width:
        idx = np.linspace(0, len(arr) - 1, width).astype(int)
        arr = arr[idx]
    lo, hi = arr.min(), arr.max()
    span = (hi - lo) or 1.0
    return "".join(blocks[int((v - lo) / span * (len(blocks) - 1))] for v in arr)


def main() -> None:
    engine = Engine()
    cluster = Cluster(engine, ClusterConfig(n_nodes=32, telemetry_period_s=10.0, seed=7))
    generator = WorkloadGenerator(
        engine,
        cluster.scheduler,
        RngRegistry(seed=7).stream("workload"),
        WorkloadSpec(n_jobs=24, arrival_rate_per_s=1 / 180.0),
    )
    generator.start()
    # continuously fold raw telemetry into 60s → 300s rollup tiers so the
    # dashboard's long-range queries never scan raw ring buffers
    rollups = RollupManager(cluster.store, resolutions=(60.0, 300.0))
    rollups.attach(engine)
    horizon = 7200.0
    engine.run(until=horizon)

    store = cluster.store
    qe = QueryEngine(store, rollups=rollups)
    print("=" * 70)
    print("VISUALIZE — cluster power (5-min bins, served from rollups)")
    print("=" * 70)
    power = qe.query(
        "mean(node_power_watts[7200s] by 300s) group by (node)", at=horizon
    )
    shown = {s.label("node"): s for s in power.series}
    for node in cluster.nodes[:6]:
        series = shown.get(node.node_id)
        if series is None:
            print(f"  {node.node_id}: no data")
            continue
        print(f"  {node.node_id}: {sparkline(series.values)}  "
              f"(mean {np.mean(series.values):.0f} W)")
    print(f"  [query served from {power.source}]")

    print()
    print("=" * 70)
    print("DIAGNOSE — per-node power anomalies (z-score detector)")
    print("=" * 70)
    total = 0
    for node in cluster.nodes:
        key = SeriesKey.of("node_power_watts", node=node.node_id)
        times, values = store.query(key, 0, horizon)
        detector = ZScoreDetector(window=60, threshold=5.0)
        for t, v in zip(times, values):
            anomaly = detector.update(t, v)
            if anomaly is not None:
                total += 1
                print(f"  {node.node_id} t={t:7.0f}s value={v:6.1f} ({anomaly.detail})")
    if total == 0:
        print("  no anomalies — a quiet shift")

    print()
    print("=" * 70)
    print("FORECAST — time-to-completion for running jobs")
    print("=" * 70)
    for job in cluster.scheduler.running_jobs():
        times, steps = cluster.markers.as_arrays(job.job_id)
        fc = OLSForecaster()
        for t, s in zip(times, steps):
            fc.update(t, s)
        result = fc.forecast(horizon, job.profile.total_steps)
        if result is None:
            print(f"  {job.job_id}: not enough markers yet")
            continue
        eta_min = result.remaining(horizon) / 60.0
        limit_min = (job.deadline - horizon) / 60.0
        risk = "AT RISK" if result.eta_hi > job.deadline else "ok"
        print(f"  {job.job_id}: ~{eta_min:6.1f} min left, "
              f"{limit_min:6.1f} min of allocation → {risk}")

    queue = cluster.scheduler.queue_length
    util = cluster.scheduler.utilization()
    # the same dashboard query re-issued inside one step-quantum is a cache hit
    qe.query("mean(node_power_watts[7200s] by 300s) group by (node)", at=horizon)
    stats = qe.stats()
    print()
    print(f"cluster state: utilization={util:.0%}, queue={queue}, "
          f"series stored={store.cardinality()}, points={store.total_inserts}")
    print(f"query engine: {stats['queries_total']:.0f} queries, "
          f"{stats['served_rollup']:.0f} rollup-served, "
          f"cache hit rate {stats.get('cache_hit_rate', 0.0):.0%}, "
          f"rollup rows {sum(v for k, v in stats.items() if k.endswith('_rows')):.0f}")


if __name__ == "__main__":
    main()
