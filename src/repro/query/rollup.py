"""Tiered rollups: continuous folding of raw series into coarse bins.

Production MODA stores (DCDB, LRZ's ODA deployment) keep raw telemetry
briefly and serve long-range queries from downsampled *rollups*.  This
module reproduces that design: a :class:`RollupManager` owns a cascade
of :class:`RollupTier` resolutions (e.g. 10s → 60s → 600s).  Tier 0
folds complete bins out of the raw ring buffers; each coarser tier folds
from the tier below it, so raw data is read exactly once per sample no
matter how many tiers exist.

Each rollup row stores the *partial statistics* ``(sum, count, min,
max, last_t, last_v)`` of one time-grid-aligned bin, which is exactly
what :class:`repro.query.kernels.PartialBins` merges — so a query served
from a tier (plus the raw tail past the tier's watermark) is
bit-for-bit identical to a raw scan for every partial-servable
aggregator.

Folding should outpace raw ring wraparound (``fold_period_s`` well
under ``capacity × sample_period`` of the raw store); samples that wrap
away unfolded are lost to the rollups, same as in any real collector.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.query.kernels import PARTIAL_AGGS, PartialBins
from repro.telemetry.metric import SeriesKey
from repro.telemetry.tsdb import (
    TimeSeriesStore,
    ring_extend,
    ring_gather,
    ring_window_ranges,
)

#: Column names of one rollup row, in storage order.
ROW_COLUMNS = ("time", "sum", "count", "min", "max", "last_t", "last_v")


class _StatRing:
    """Fixed-capacity ring of rollup rows (column-oriented NumPy arrays).

    Wraparound writes and windowed reads are the shared ring helpers
    from :mod:`repro.telemetry.tsdb`, applied across the row columns in
    parallel — the wrap invariants live in one place for both raw
    sample buffers and rollup rows.
    """

    __slots__ = ("capacity", "_cols", "_head", "_count")

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = int(capacity)
        self._cols = {name: np.empty(self.capacity, dtype=np.float64) for name in ROW_COLUMNS}
        self._head = 0
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def append_rows(self, cols: Dict[str, np.ndarray]) -> None:
        """Bulk-append time-ordered rows (caller guarantees ordering)."""
        self._head, self._count = ring_extend(
            (self._cols[name] for name in ROW_COLUMNS),
            self._head,
            self._count,
            (cols[name] for name in ROW_COLUMNS),
        )

    def ordered(self) -> Dict[str, np.ndarray]:
        """All rows in time order (copies)."""
        return self.window(-np.inf, np.inf)

    def window(self, t0: float, t1: float) -> Dict[str, np.ndarray]:
        """Rows whose bin start lies in the half-open range ``[t0, t1)``,
        copying only the selected rows."""
        ranges = ring_window_ranges(
            self._cols["time"], self._head, self._count, t0, t1, right_inclusive=False
        )
        return {name: ring_gather(arr, ranges) for name, arr in self._cols.items()}


class RollupTier:
    """All series of one resolution, plus per-series fold watermarks."""

    def __init__(self, resolution_s: float, capacity: int = 4096) -> None:
        if resolution_s <= 0:
            raise ValueError("resolution_s must be positive")
        self.resolution_s = float(resolution_s)
        self.capacity = int(capacity)
        self._rings: Dict[SeriesKey, _StatRing] = {}
        #: end of the last complete bin folded, per series
        self._watermark: Dict[SeriesKey, float] = {}
        self.rows_written = 0

    def __len__(self) -> int:
        return sum(len(r) for r in self._rings.values())

    def watermark(self, key: SeriesKey) -> Optional[float]:
        return self._watermark.get(key)

    def window(self, key: SeriesKey, t0: float, t1: float) -> Optional[Dict[str, np.ndarray]]:
        ring = self._rings.get(key)
        if ring is None or len(ring) == 0:
            return None
        return ring.window(t0, t1)

    def _append(self, key: SeriesKey, cols: Dict[str, np.ndarray], new_watermark: float) -> None:
        ring = self._rings.get(key)
        if ring is None:
            ring = self._rings[key] = _StatRing(self.capacity)
        ring.append_rows(cols)
        self._watermark[key] = new_watermark
        self.rows_written += int(cols["time"].size)


def _partial_to_rows(partial: PartialBins, grid_t0: float, resolution: float) -> Dict[str, np.ndarray]:
    nz = partial.nonempty()
    return {
        "time": grid_t0 + nz * resolution,
        "sum": partial.sum[nz],
        "count": partial.count[nz],
        "min": partial.vmin[nz],
        "max": partial.vmax[nz],
        "last_t": partial.last_t[nz],
        "last_v": partial.last_v[nz],
    }


class RollupManager:
    """A cascade of rollup tiers continuously folded from a raw store."""

    def __init__(
        self,
        store: TimeSeriesStore,
        resolutions: Sequence[float] = (10.0, 60.0, 600.0),
        *,
        capacity: int = 4096,
    ) -> None:
        if not resolutions:
            raise ValueError("need at least one rollup resolution")
        res = sorted(float(r) for r in resolutions)
        if len(set(res)) != len(res):
            raise ValueError("duplicate rollup resolutions")
        for fine, coarse in zip(res, res[1:]):
            if coarse % fine != 0.0:
                raise ValueError(
                    f"each tier must be a multiple of the previous: {coarse} % {fine} != 0"
                )
        self.store = store
        self.tiers: List[RollupTier] = [RollupTier(r, capacity) for r in res]
        self.folds = 0
        self._task = None

    # ------------------------------------------------------------- folding
    def fold(self, now: float) -> int:
        """Fold all complete bins up to ``now`` through every tier.

        Returns the number of rollup rows written.  Idempotent per bin:
        re-folding the same ``now`` writes nothing new.
        """
        written = 0
        for key in self.store.series_keys():
            written += self._fold_tier0(key, now)
        for fine, coarse in zip(self.tiers, self.tiers[1:]):
            for key in self.store.series_keys():
                written += self._fold_cascade(key, fine, coarse)
        self.folds += 1
        return written

    def _fold_tier0(self, key: SeriesKey, now: float) -> int:
        tier = self.tiers[0]
        res = tier.resolution_s
        boundary = math.floor(now / res) * res  # end of last complete bin
        start = tier.watermark(key)
        if start is None:
            first = self.store.earliest_time(key)
            if first is None:
                return 0
            start = math.floor(first / res) * res
        if boundary <= start:
            return 0
        times, values = self.store.query(key, start, boundary)
        keep = times < boundary  # half-open bins; query() is inclusive
        times, values = times[keep], values[keep]
        if times.size == 0:
            tier._watermark[key] = boundary
            return 0
        n_bins = int(round((boundary - start) / res))
        bin_idx = np.floor((times - start) / res).astype(np.int64)
        partial = PartialBins(n_bins)
        partial.add_samples(bin_idx, times, values)
        rows = _partial_to_rows(partial, start, res)
        tier._append(key, rows, boundary)
        return int(rows["time"].size)

    def _fold_cascade(self, key: SeriesKey, fine: RollupTier, coarse: RollupTier) -> int:
        fine_wm = fine.watermark(key)
        if fine_wm is None:
            return 0
        res = coarse.resolution_s
        boundary = math.floor(fine_wm / res) * res
        start = coarse.watermark(key)
        if start is None:
            rows = fine.window(key, -np.inf, np.inf)
            if rows is None or rows["time"].size == 0:
                return 0
            start = math.floor(rows["time"][0] / res) * res
        if boundary <= start:
            return 0
        rows = fine.window(key, start, boundary)
        if rows is None or rows["time"].size == 0:
            coarse._watermark[key] = boundary
            return 0
        n_bins = int(round((boundary - start) / res))
        bin_idx = np.floor((rows["time"] - start) / res).astype(np.int64)
        partial = PartialBins(n_bins)
        partial.add_rows(
            bin_idx,
            rows["sum"],
            rows["count"],
            rows["min"],
            rows["max"],
            rows["last_t"],
            rows["last_v"],
        )
        out = _partial_to_rows(partial, start, res)
        coarse._append(key, out, boundary)
        return int(out["time"].size)

    # ---------------------------------------------------------- scheduling
    def attach(self, engine, period_s: Optional[float] = None, *, start_at=None) -> None:
        """Drive folding from a simulation engine on a fixed cadence."""
        if self._task is not None and not self._task.stopped:
            raise RuntimeError("rollup manager already attached")
        period = period_s if period_s is not None else self.tiers[0].resolution_s
        self._task = engine.every(
            period, lambda: self.fold(engine.now), start_at=start_at, label="rollup-fold"
        )

    def detach(self) -> None:
        if self._task is not None:
            self._task.stop()

    # ------------------------------------------------------ tier selection
    def tier_for(self, step_s: Optional[float], agg: str) -> Optional[RollupTier]:
        """Coarsest tier that can serve ``(step, agg)`` exactly, if any.

        A tier qualifies when the query is a range query whose step is a
        multiple of the tier resolution and the aggregator is servable
        from partial statistics.  ``None`` → the engine scans raw.
        """
        if step_s is None or agg not in PARTIAL_AGGS:
            return None
        best = None
        for tier in self.tiers:
            if tier.resolution_s <= step_s and step_s % tier.resolution_s == 0.0:
                best = tier
        return best

    def stats(self) -> Dict[str, float]:
        """Rows and watermark coverage per tier (for dashboards/benchmarks)."""
        out: Dict[str, float] = {"folds": float(self.folds)}
        for tier in self.tiers:
            out[f"tier_{int(tier.resolution_s)}s_rows"] = float(len(tier))
        return out
