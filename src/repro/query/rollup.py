"""Tiered rollups: continuous folding of raw series into coarse bins.

Production MODA stores (DCDB, LRZ's ODA deployment) keep raw telemetry
briefly and serve long-range queries from downsampled *rollups*.  This
module reproduces that design: a :class:`RollupManager` owns a cascade
of :class:`RollupTier` resolutions (e.g. 10s → 60s → 600s).  Tier 0
folds complete bins out of the raw ring buffers; each coarser tier folds
from the tier below it, so raw data is read exactly once per sample no
matter how many tiers exist.

Each rollup row stores the *partial statistics* ``(sum, count, min,
max, last_t, last_v)`` of one time-grid-aligned bin, which is exactly
what :class:`repro.query.kernels.PartialBins` merges — so a query served
from a tier (plus the raw tail past the tier's watermark) is
bit-for-bit identical to a raw scan for every partial-servable
aggregator.

Tier 0 is fed **directly from committed batches**: the manager registers
an ingest listener on the store and buffers the columnar ``(series_id,
time, value)`` stream; ``fold`` consumes that buffer, so a fold's cost
is proportional to *new* data, and raw rings are scanned only once per
series (the first fold, to bootstrap data committed before the manager
existed).  Folding should still outpace raw ring wraparound for that
bootstrap case (``fold_period_s`` well under ``capacity ×
sample_period``); samples that wrap away before the first fold are lost
to the rollups, same as in any real collector.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.query.kernels import PARTIAL_AGGS, PartialBins
from repro.telemetry.batch import sort_series_columns
from repro.telemetry.metric import SeriesKey
from repro.telemetry.tsdb import (
    TimeSeriesStore,
    ring_extend,
    ring_gather,
    ring_window_ranges,
)

#: Column names of one rollup row, in storage order.
ROW_COLUMNS = ("time", "sum", "count", "min", "max", "last_t", "last_v")


class _StatRing:
    """Fixed-capacity ring of rollup rows (column-oriented NumPy arrays).

    Wraparound writes and windowed reads are the shared ring helpers
    from :mod:`repro.telemetry.tsdb`, applied across the row columns in
    parallel — the wrap invariants live in one place for both raw
    sample buffers and rollup rows.
    """

    __slots__ = ("capacity", "_cols", "_head", "_count")

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = int(capacity)
        self._cols = {name: np.empty(self.capacity, dtype=np.float64) for name in ROW_COLUMNS}
        self._head = 0
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def append_rows(self, cols: Dict[str, np.ndarray]) -> None:
        """Bulk-append time-ordered rows (caller guarantees ordering)."""
        self._head, self._count = ring_extend(
            (self._cols[name] for name in ROW_COLUMNS),
            self._head,
            self._count,
            (cols[name] for name in ROW_COLUMNS),
        )

    def ordered(self) -> Dict[str, np.ndarray]:
        """All rows in time order (copies)."""
        return self.window(-np.inf, np.inf)

    def window(self, t0: float, t1: float) -> Dict[str, np.ndarray]:
        """Rows whose bin start lies in the half-open range ``[t0, t1)``,
        copying only the selected rows."""
        ranges = ring_window_ranges(
            self._cols["time"], self._head, self._count, t0, t1, right_inclusive=False
        )
        return {name: ring_gather(arr, ranges) for name, arr in self._cols.items()}


class RollupTier:
    """All series of one resolution, plus per-series fold watermarks."""

    def __init__(self, resolution_s: float, capacity: int = 4096) -> None:
        if resolution_s <= 0:
            raise ValueError("resolution_s must be positive")
        self.resolution_s = float(resolution_s)
        self.capacity = int(capacity)
        self._rings: Dict[SeriesKey, _StatRing] = {}
        #: end of the last complete bin folded, per series
        self._watermark: Dict[SeriesKey, float] = {}
        self.rows_written = 0

    def __len__(self) -> int:
        return sum(len(r) for r in self._rings.values())

    def watermark(self, key: SeriesKey) -> Optional[float]:
        return self._watermark.get(key)

    def window(self, key: SeriesKey, t0: float, t1: float) -> Optional[Dict[str, np.ndarray]]:
        ring = self._rings.get(key)
        if ring is None or len(ring) == 0:
            return None
        return ring.window(t0, t1)

    def _append(self, key: SeriesKey, cols: Dict[str, np.ndarray], new_watermark: float) -> None:
        ring = self._rings.get(key)
        if ring is None:
            ring = self._rings[key] = _StatRing(self.capacity)
        ring.append_rows(cols)
        self._watermark[key] = new_watermark
        self.rows_written += int(cols["time"].size)


def _partial_to_rows(partial: PartialBins, grid_t0: float, resolution: float) -> Dict[str, np.ndarray]:
    nz = partial.nonempty()
    return {
        "time": grid_t0 + nz * resolution,
        "sum": partial.sum[nz],
        "count": partial.count[nz],
        "min": partial.vmin[nz],
        "max": partial.vmax[nz],
        "last_t": partial.last_t[nz],
        "last_v": partial.last_v[nz],
    }


# --------------------------------------------------------------------------
# Fold primitives.  The bin arithmetic of every fold shape lives in these
# free functions so the key-based RollupManager below and the sid-based
# worker-side folder (repro.shard.parallel) produce bit-identical tier
# rows from the same inputs — the parallel tier's exactness oracle.


def select_tier_index(
    resolutions: Sequence[float], step_s: Optional[float], agg: str
) -> Optional[int]:
    """Index of the coarsest resolution serving ``(step, agg)`` exactly.

    ``resolutions`` must be sorted ascending (the tier order).  ``None``
    → the engine scans raw; mirrors :meth:`RollupManager.tier_for`.
    """
    if step_s is None or agg not in PARTIAL_AGGS:
        return None
    best = None
    for idx, res in enumerate(resolutions):
        if res <= step_s and step_s % res == 0.0:
            best = idx
    return best


def fold_segment_rows(
    times: np.ndarray, values: np.ndarray, wm: float, resolution: float
) -> Tuple[Optional[Dict[str, np.ndarray]], int]:
    """Rows from one series' buffered columns (time-sorted, all below the
    fold boundary); returns ``(rows, late_samples_dropped)``.

    Samples older than the watermark ``wm`` are late — their bin already
    folded — and are dropped, same as any real collector.
    """
    if times[-1] < wm:
        return None, int(times.size)
    dropped = 0
    if times[0] < wm:
        cut = int(np.searchsorted(times, wm, side="left"))
        dropped = cut
        times, values = times[cut:], values[cut:]
    bin_idx = np.floor(times / resolution).astype(np.int64)
    base = int(bin_idx[0])
    partial = PartialBins(int(bin_idx[-1]) - base + 1)
    partial.add_samples(bin_idx - base, times, values)
    return _partial_to_rows(partial, base * resolution, resolution), dropped


def fold_rawscan_rows(
    times: np.ndarray, values: np.ndarray, start: float, boundary: float, resolution: float
) -> Optional[Dict[str, np.ndarray]]:
    """Rows from a raw-ring window scan of ``[start, boundary)``.

    ``times``/``values`` come from an inclusive window query over
    ``[start, boundary]``; the boundary sample (start of the still-open
    bin) is excluded here.  ``None`` when nothing complete remains.
    """
    keep = times < boundary  # half-open bins; window queries are inclusive
    times, values = times[keep], values[keep]
    if times.size == 0:
        return None
    n_bins = int(round((boundary - start) / resolution))
    bin_idx = np.floor((times - start) / resolution).astype(np.int64)
    partial = PartialBins(n_bins)
    partial.add_samples(bin_idx, times, values)
    return _partial_to_rows(partial, start, resolution)


def fold_cascade_rows(
    rows: Dict[str, np.ndarray], start: float, boundary: float, resolution: float
) -> Dict[str, np.ndarray]:
    """Coarse rows folded from fine-tier rows of ``[start, boundary)``."""
    n_bins = int(round((boundary - start) / resolution))
    bin_idx = np.floor((rows["time"] - start) / resolution).astype(np.int64)
    partial = PartialBins(n_bins)
    partial.add_rows(
        bin_idx,
        rows["sum"],
        rows["count"],
        rows["min"],
        rows["max"],
        rows["last_t"],
        rows["last_v"],
    )
    return _partial_to_rows(partial, start, resolution)


class RollupManager:
    """A cascade of rollup tiers continuously folded from ingested batches."""

    def __init__(
        self,
        store: TimeSeriesStore,
        resolutions: Sequence[float] = (10.0, 60.0, 600.0),
        *,
        capacity: int = 4096,
        ingest_buffer_cap: int = 1 << 18,
    ) -> None:
        if not resolutions:
            raise ValueError("need at least one rollup resolution")
        res = sorted(float(r) for r in resolutions)
        if len(set(res)) != len(res):
            raise ValueError("duplicate rollup resolutions")
        for fine, coarse in zip(res, res[1:]):
            if coarse % fine != 0.0:
                raise ValueError(
                    f"each tier must be a multiple of the previous: {coarse} % {fine} != 0"
                )
        self.store = store
        self.tiers: List[RollupTier] = [RollupTier(r, capacity) for r in res]
        self.folds = 0
        self.late_samples_dropped = 0
        self._task = None
        #: committed-but-unfolded columns, newest last: ``(ids, times, values)``
        self._buffered: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        self._buffered_rows = 0
        #: earliest sample time the listener ever saw, per series
        self._listener_floor: Dict[SeriesKey, float] = {}
        self._buffer_cap = int(ingest_buffer_cap)
        store.add_ingest_listener(self._on_ingest)

    # -------------------------------------------------------------- ingest
    def _on_ingest(self, ids: np.ndarray, times: np.ndarray, values: np.ndarray) -> None:
        """Store listener: queue committed columns for the next fold.

        If folding falls far behind ingest the buffer is drained early
        (complete bins folded, open-bin tail kept), bounding memory
        without ever rescanning raw rings.
        """
        self._buffered.append((ids, times, values))
        self._buffered_rows += int(ids.size)
        if self._buffered_rows > self._buffer_cap:
            res = self.tiers[0].resolution_s
            # chunks are sorted by (series, time), so the true max is a
            # per-chunk .max(), not the last element
            max_t = max(float(chunk[1].max()) for chunk in self._buffered if chunk[1].size)
            self._fold_tier0_all(math.floor(max_t / res) * res)

    # ------------------------------------------------------------- folding
    def fold(self, now: float) -> int:
        """Fold all complete bins up to ``now`` through every tier.

        Returns the number of rollup rows written.  Idempotent per bin:
        re-folding the same ``now`` writes nothing new.
        """
        res = self.tiers[0].resolution_s
        written = self._fold_tier0_all(math.floor(now / res) * res)
        for fine, coarse in zip(self.tiers, self.tiers[1:]):
            for key in self.store.series_keys():
                written += self._fold_cascade(key, fine, coarse)
        self.folds += 1
        return written

    def _fold_tier0_all(self, boundary: float) -> int:
        """Advance tier 0 to ``boundary`` from the ingest buffer.

        A series folds purely from buffered columns once its *listener
        floor* — the earliest sample time the listener ever saw for it —
        lies strictly below its watermark: from then on, every unfolded
        sample is guaranteed to be in the buffer (per-series timestamps
        are monotone, so pre-listener data is all older than the floor).
        Until that handoff point (data committed before this manager
        existed, or a series first seen mid-fold) the region is folded
        with a raw-ring scan, exactly like the pre-columnar manager, and
        that series' buffered rows are discarded for the fold — the raw
        scan already covers them, since the listener fires post-commit.
        """
        tier = self.tiers[0]
        written = 0
        if self._buffered:
            chunks, self._buffered = self._buffered, []
            self._buffered_rows = 0
            if len(chunks) == 1:
                ids, times, values = chunks[0]
            else:
                ids = np.concatenate([c[0] for c in chunks])
                times = np.concatenate([c[1] for c in chunks])
                values = np.concatenate([c[2] for c in chunks])
            complete = times < boundary
            if not complete.all():
                keep = ~complete
                self._buffered.append((ids[keep], times[keep], values[keep]))
                self._buffered_rows = int(keep.sum())
                ids, times, values = ids[complete], times[complete], values[complete]
            if ids.size:
                ids, times, values, starts, ends = sort_series_columns(ids, times, values)
                registry = self.store.registry
                for lo, hi in zip(starts.tolist(), ends.tolist()):
                    key = registry.key_for(int(ids[lo]))
                    floor_t = self._listener_floor.get(key)
                    if floor_t is None:
                        floor_t = float(times[lo])
                        self._listener_floor[key] = floor_t
                    wm = tier.watermark(key)
                    if wm is not None and floor_t < wm:
                        written += self._fold_tier0_segment(
                            key, times[lo:hi], values[lo:hi], boundary
                        )
        for key in self.store.series_keys():
            wm = tier.watermark(key)
            if wm is not None and wm >= boundary:
                continue
            floor_t = self._listener_floor.get(key)
            if wm is not None and floor_t is not None and floor_t < wm:
                tier._watermark[key] = boundary  # buffer path covered it
            else:
                written += self._fold_tier0_rawscan(key, boundary)
        return written

    def _fold_tier0_segment(
        self, key: SeriesKey, times: np.ndarray, values: np.ndarray, boundary: float
    ) -> int:
        """Fold one series' buffered columns (time-sorted, all < boundary)."""
        tier = self.tiers[0]
        rows, dropped = fold_segment_rows(times, values, tier.watermark(key), tier.resolution_s)
        self.late_samples_dropped += dropped
        if rows is None:
            return 0
        tier._append(key, rows, boundary)
        return int(rows["time"].size)

    def _fold_tier0_rawscan(self, key: SeriesKey, boundary: float) -> int:
        """Raw-ring scan fold: pre-listener data (the bootstrap path)."""
        tier = self.tiers[0]
        res = tier.resolution_s
        start = tier.watermark(key)
        if start is None:
            first = self.store.earliest_time(key)
            if first is None:
                return 0
            start = math.floor(first / res) * res
        if boundary <= start:
            return 0
        times, values = self.store.query(key, start, boundary)
        rows = fold_rawscan_rows(times, values, start, boundary, res)
        if rows is None:
            tier._watermark[key] = boundary
            return 0
        tier._append(key, rows, boundary)
        return int(rows["time"].size)

    def _fold_cascade(self, key: SeriesKey, fine: RollupTier, coarse: RollupTier) -> int:
        fine_wm = fine.watermark(key)
        if fine_wm is None:
            return 0
        res = coarse.resolution_s
        boundary = math.floor(fine_wm / res) * res
        start = coarse.watermark(key)
        if start is None:
            rows = fine.window(key, -np.inf, np.inf)
            if rows is None or rows["time"].size == 0:
                return 0
            start = math.floor(rows["time"][0] / res) * res
        if boundary <= start:
            return 0
        rows = fine.window(key, start, boundary)
        if rows is None or rows["time"].size == 0:
            coarse._watermark[key] = boundary
            return 0
        out = fold_cascade_rows(rows, start, boundary, res)
        coarse._append(key, out, boundary)
        return int(out["time"].size)

    # ---------------------------------------------------------- scheduling
    def attach(self, engine, period_s: Optional[float] = None, *, start_at=None) -> None:
        """Drive folding from a simulation engine on a fixed cadence."""
        if self._task is not None and not self._task.stopped:
            raise RuntimeError("rollup manager already attached")
        period = period_s if period_s is not None else self.tiers[0].resolution_s
        self._task = engine.every(
            period, lambda: self.fold(engine.now), start_at=start_at, label="rollup-fold"
        )

    def detach(self) -> None:
        if self._task is not None:
            self._task.stop()

    # ------------------------------------------------------ tier selection
    def tier_for(self, step_s: Optional[float], agg: str) -> Optional[RollupTier]:
        """Coarsest tier that can serve ``(step, agg)`` exactly, if any.

        A tier qualifies when the query is a range query whose step is a
        multiple of the tier resolution and the aggregator is servable
        from partial statistics.  ``None`` → the engine scans raw.
        """
        idx = select_tier_index([t.resolution_s for t in self.tiers], step_s, agg)
        return None if idx is None else self.tiers[idx]

    def stats(self) -> Dict[str, float]:
        """Rows and watermark coverage per tier (for dashboards/benchmarks)."""
        out: Dict[str, float] = {"folds": float(self.folds)}
        for tier in self.tiers:
            out[f"tier_{int(tier.resolution_s)}s_rows"] = float(len(tier))
        return out
