"""Query fusion: serve many narrow selections from one wide execution.

A fleet of autonomy loops typically issues *structurally identical*
queries that differ only in their label selection — one misconfig loop
per partition asking ``mean(node_cpu_util{node=~"<partition>"}[600s])
group by (node)``, one scheduler loop per job asking
``last(job_deadline_s{job="<id>"}) group by (job)``.  Executed
individually, each query pays a full series-resolution pass plus its own
window scan: N loops → N store passes per tick.

Fusion rewrites such a query to its **widened** form — same metric,
aggregator, range, step, and grouping, but *no matchers* — executes that
once (the engine's cache makes every subsequent compatible query in the
same tick a pure hit), and answers each narrow query by filtering the
widened result's output series against the original matchers.

This is exact, not approximate, under one condition: every matcher's
label must appear in the query's ``group_by``.  Then each output series
carries concrete values for all matched labels, selection commutes with
aggregation (no cross-series pooling ever mixes different values of a
matched label), and filtering output series is equivalent to filtering
input series.  Queries that do not satisfy the condition are left alone.
"""

from __future__ import annotations

import dataclasses

from repro.obs.trace import TRACER
from repro.query.engine import QueryResult
from repro.query.model import MetricQuery

__all__ = ["fusable", "widen", "narrow_result"]


def fusable(q: MetricQuery) -> bool:
    """Whether ``q`` can be served exactly from its widened form.

    Requires at least one matcher (else the query is already wide) and
    every matched label present in ``group_by`` (else aggregation pools
    across values of a matched label and post-filtering would be wrong).
    """
    if not q.matchers:
        return False
    group = set(q.group_by)
    return all(m.name in group for m in q.matchers)


def widen(q: MetricQuery) -> MetricQuery:
    """The matcher-free superquery whose result contains ``q``'s answer."""
    return dataclasses.replace(q, matchers=())


def narrow_result(q: MetricQuery, wide: QueryResult) -> QueryResult:
    """Select ``q``'s answer out of the widened result.

    Output series whose group labels satisfy every matcher are kept
    verbatim (same frozen arrays — no copy); the rest are dropped.
    """
    if TRACER.enabled:
        with TRACER.span("fuse.narrow", metric=q.metric):
            return _narrow(q, wide)
    return _narrow(q, wide)


def _narrow(q: MetricQuery, wide: QueryResult) -> QueryResult:
    kept = []
    for series in wide.series:
        labels = dict(series.labels)
        if all(m.matches(labels.get(m.name)) for m in q.matchers):
            kept.append(series)
    return QueryResult(q, wide.t0, wide.t1, tuple(kept), source=f"fused+{wide.source}")
