"""Parser for the compact metric query syntax.

Grammar (whitespace-tolerant)::

    expr     := agg "(" selector [range] ["by" step] ")" ["group" "by" "(" names ")"]
    selector := metric ["{" matcher ("," matcher)* "}"]
    matcher  := name ("=" | "!=" | "=~" | "!~") '"' value '"'
    range    := "[" duration "]"
    step     := duration
    duration := number ["s" | "m" | "h"]        (default seconds)

Examples::

    mean(node_cpu_util{node=~"n0.*"}[300s] by 30s)
    rate(job_progress_steps{job="j7"}[10m])
    p95(node_power_watts[1h] by 60s) group by (node)
"""

from __future__ import annotations

import re
from typing import List, Tuple

from repro.query.model import LabelMatcher, MetricQuery

_DURATION_RE = re.compile(r"(\d+(?:\.\d+)?)\s*([smh]?)\Z")
_UNIT_SECONDS = {"": 1.0, "s": 1.0, "m": 60.0, "h": 3600.0}


class QueryParseError(ValueError):
    """Raised when an expression does not match the query grammar."""

    def __init__(self, expr: str, message: str) -> None:
        super().__init__(f"cannot parse query {expr!r}: {message}")
        self.expr = expr


def parse_duration(text: str) -> float:
    """``"300s" | "5m" | "1h" | "90"`` → seconds."""
    m = _DURATION_RE.match(text.strip())
    if m is None:
        raise ValueError(f"invalid duration {text!r}")
    return float(m.group(1)) * _UNIT_SECONDS[m.group(2)]


# Matcher blocks may contain "}" and "," inside quoted values (regex
# quantifiers like n[0-9]{2}, alternations like "a,b"), so the block is
# matched quote-aware and then re-parsed matcher by matcher.
_EXPR_RE = re.compile(
    r"""\s*
    (?P<agg>[a-z][a-z0-9]*)\s*
    \(\s*
      (?P<metric>[A-Za-z_][A-Za-z0-9_]*)\s*
      (?:\{(?P<matchers>(?:[^"{}]|"[^"]*")*)\}\s*)?
      (?:\[(?P<range>[^\]]+)\]\s*)?
      (?:by\s+(?P<step>[0-9][0-9.]*[smh]?)\s*)?
    \)\s*
    (?:group\s+by\s*\(\s*(?P<group>[^)]*)\)\s*)?
    \Z""",
    re.VERBOSE,
)

_MATCHER_ITEM_RE = re.compile(
    r'\s*(?P<name>[A-Za-z_][A-Za-z0-9_]*)\s*(?P<op>=~|!~|!=|=)\s*"(?P<value>[^"]*)"\s*'
)


def _parse_matchers(expr: str, text: str) -> Tuple[LabelMatcher, ...]:
    if not text.strip():
        return ()
    matchers: List[LabelMatcher] = []
    pos = 0
    while True:
        m = _MATCHER_ITEM_RE.match(text, pos)
        if m is None:
            raise QueryParseError(expr, f"bad label matcher at {text[pos:].strip()!r}")
        try:
            matchers.append(LabelMatcher(m.group("name"), m.group("op"), m.group("value")))
        except ValueError as exc:
            raise QueryParseError(expr, str(exc)) from None
        pos = m.end()
        if pos >= len(text):
            return tuple(matchers)
        if text[pos] != ",":
            raise QueryParseError(expr, f"expected ',' between matchers near {text[pos:]!r}")
        pos += 1


def parse_query(expr: str) -> MetricQuery:
    """Parse a compact query expression into a :class:`MetricQuery`."""
    m = _EXPR_RE.match(expr)
    if m is None:
        raise QueryParseError(expr, "does not match agg(metric{...}[range] by step)")
    group_by: Tuple[str, ...] = ()
    if m.group("group") is not None:
        names = [g.strip() for g in m.group("group").split(",") if g.strip()]
        if not names:
            raise QueryParseError(expr, "empty group by ()")
        group_by = tuple(names)
    try:
        return MetricQuery(
            metric=m.group("metric"),
            agg=m.group("agg"),
            matchers=_parse_matchers(expr, m.group("matchers") or ""),
            range_s=parse_duration(m.group("range")) if m.group("range") else None,
            step_s=parse_duration(m.group("step")) if m.group("step") else None,
            group_by=group_by,
        )
    except ValueError as exc:
        if isinstance(exc, QueryParseError):
            raise
        raise QueryParseError(expr, str(exc)) from None
