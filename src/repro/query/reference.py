"""Brute-force reference evaluator for the query semantics.

Implements exactly the semantics of :mod:`repro.query.model` with plain
Python loops over raw samples — per bin, per sample, no NumPy
vectorization and no rollups.  Two jobs:

* the **oracle** the property tests compare the engine against, and
* the **naive raw-scan baseline** the E13 benchmark measures the
  tiered/vectorized engine's speedup over.

Keep this module boring: clarity over speed is the whole point.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple, Union

import numpy as np

from repro.query.engine import QueryResult, ResultSeries
from repro.query.model import MetricQuery
from repro.query.parser import parse_query
from repro.telemetry.metric import SeriesKey
from repro.telemetry.tsdb import TimeSeriesStore


def _percentile(values: List[float], q: float) -> float:
    return float(np.percentile(np.asarray(values), q))


def _aggregate(agg: str, samples: List[Tuple[float, float, int]]) -> float:
    """Aggregate pooled ``(time, value, order)`` samples of one bin."""
    values = [v for _, v, _ in samples]
    if agg == "mean":
        return sum(values) / len(values)
    if agg == "sum":
        return sum(values)
    if agg == "count":
        return float(len(values))
    if agg == "min":
        return min(values)
    if agg == "max":
        return max(values)
    if agg == "last":
        # latest sample wins; ties broken by input order (later wins)
        best = max(samples, key=lambda s: (s[0], s[2]))
        return best[1]
    if agg == "p50":
        return _percentile(values, 50.0)
    if agg == "p95":
        return _percentile(values, 95.0)
    if agg == "p99":
        return _percentile(values, 99.0)
    raise ValueError(f"unknown aggregator {agg!r}")


def evaluate_naive(
    store: TimeSeriesStore, q: Union[str, MetricQuery], *, at: float
) -> QueryResult:
    """Evaluate ``q`` over the store's raw data the slow, obvious way."""
    if isinstance(q, str):
        q = parse_query(q)
    t1 = float(at)

    keys = sorted((k for k in store.series_keys(q.metric) if q.matches(k)), key=str)
    if q.range_s is not None:
        t0 = t1 - q.range_s
    else:
        firsts = []
        for key in keys:
            times, _ = store.query(key, -np.inf, t1)
            if times.size:
                firsts.append(float(times[0]))
        t0 = min(firsts) if firsts else t1

    groups: Dict[Tuple[Tuple[str, str], ...], List[SeriesKey]] = {}
    for key in keys:
        groups.setdefault(q.group_key(key), []).append(key)

    series: List[ResultSeries] = []
    for labels in sorted(groups):
        member_keys = sorted(groups[labels], key=str)
        if q.step_s is None:
            out = _instant(store, q, member_keys, t0, t1)
        elif q.agg == "rate":
            out = _range_rate(store, q, member_keys, t0, t1)
        else:
            out = _range_agg(store, q, member_keys, t0, t1)
        if out[0]:
            series.append(
                ResultSeries(labels, np.asarray(out[0], dtype=np.float64), np.asarray(out[1]))
            )
    return QueryResult(q, t0, t1, tuple(series), "naive")


def _collect(
    store: TimeSeriesStore, keys: Sequence[SeriesKey], t0: float, t1: float, *, inclusive: bool
) -> List[Tuple[float, float, int]]:
    """Pooled ``(time, value, order)`` samples, sample by sample."""
    pooled: List[Tuple[float, float, int]] = []
    order = 0
    for key in keys:
        times, values = store.query(key, t0, t1)
        for t, v in zip(times, values):
            if not inclusive and t >= t1:
                continue
            pooled.append((float(t), float(v), order))
            order += 1
    return pooled


def _range_agg(store, q, keys, t0, t1):
    step = q.step_s
    first_bin = math.floor(t0 / step)
    last_bin = math.floor(t1 / step)
    grid_t0 = first_bin * step
    t1_excl = (last_bin + 1) * step
    pooled = _collect(store, keys, grid_t0, t1_excl, inclusive=False)
    out_t, out_v = [], []
    for b in range(int(last_bin - first_bin + 1)):
        lo = grid_t0 + b * step
        hi = lo + step
        members = [s for s in pooled if lo <= s[0] < hi]
        if members:
            out_t.append(lo)
            out_v.append(_aggregate(q.agg, members))
    return out_t, out_v


def _range_rate(store, q, keys, t0, t1):
    step = q.step_s
    first_bin = math.floor(t0 / step)
    last_bin = math.floor(t1 / step)
    grid_t0 = first_bin * step
    t1_excl = (last_bin + 1) * step
    n_bins = int(last_bin - first_bin + 1)
    increase = [0.0] * n_bins
    touched = [False] * n_bins
    for key in keys:
        times, values = store.query(key, grid_t0, t1_excl)
        kept = [(float(t), float(v)) for t, v in zip(times, values) if t < t1_excl]
        for (t_prev, v_prev), (t_cur, v_cur) in zip(kept, kept[1:]):
            delta = v_cur - v_prev
            inc = delta if delta >= 0 else v_cur  # counter reset
            b = int(math.floor((t_cur - grid_t0) / step))
            increase[b] += inc
            touched[b] = True
    out_t = [grid_t0 + b * step for b in range(n_bins) if touched[b]]
    out_v = [increase[b] / step for b in range(n_bins) if touched[b]]
    return out_t, out_v


def _instant(store, q, keys, t0, t1):
    if q.agg == "rate":
        span = t1 - t0
        if span <= 0:
            return [], []
        total = 0.0
        any_delta = False
        for key in keys:
            _, values = store.query(key, t0, t1)
            vals = [float(v) for v in values]
            for v_prev, v_cur in zip(vals, vals[1:]):
                delta = v_cur - v_prev
                total += delta if delta >= 0 else v_cur
                any_delta = True
        return ([t0], [total / span]) if any_delta else ([], [])
    pooled = _collect(store, keys, t0, t1, inclusive=True)
    if not pooled:
        return [], []
    return [t0], [_aggregate(q.agg, pooled)]
