"""Vectorized binned-aggregation kernels.

These are the shared compute primitives of the query layer: every
downsample, rollup fold, and cross-series aggregation in the repo runs
through them.  The design constraint is **no per-bin Python loops** —
aggregation over an arbitrary number of bins costs a constant number of
NumPy passes (``np.bincount`` for additive statistics, one ``lexsort``
plus gather arithmetic for order statistics).

Two representations are used:

* :func:`grouped_aggregate` — sparse: maps ``(bin_idx, values)`` sample
  arrays straight to ``(unique_bins, aggregated)``.  This is the
  downsample/percentile path.
* :class:`PartialBins` — dense mergeable per-bin statistics
  ``(sum, count, min, max, last)``.  Partials computed from raw samples
  and from pre-aggregated rollup rows merge exactly, which is what lets
  the engine stitch a coarse historical tier onto a raw tail without
  approximation.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

#: Aggregators servable from (sum, count, min, max, last) partials.
PARTIAL_AGGS = ("mean", "sum", "count", "min", "max", "last")

#: Aggregators needing the full sample distribution (raw-only).
SAMPLE_ONLY_AGGS = ("p50", "p95", "p99")

#: Everything :func:`grouped_aggregate` understands.
ALL_AGGS = PARTIAL_AGGS + SAMPLE_ONLY_AGGS

_PERCENTILE_Q = {"p50": 50.0, "p95": 95.0, "p99": 99.0}


def _check_agg(agg: str) -> None:
    if agg not in ALL_AGGS:
        raise ValueError(f"unknown aggregator {agg!r}; choose from {sorted(ALL_AGGS)}")


def _bin_boundaries(compact: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
    """Per-bin (start, count) offsets into an array sorted by compact bin."""
    counts = np.bincount(compact, minlength=k)
    ends = np.cumsum(counts)
    return ends - counts, counts


def _percentile_sorted(v_sorted: np.ndarray, starts: np.ndarray, counts: np.ndarray, q: float) -> np.ndarray:
    """Linear-interpolation percentile per bin over value-sorted samples.

    Matches ``np.percentile(..., method="linear")`` bin by bin without a
    Python loop: position arithmetic plus two gathers.
    """
    pos = (counts - 1) * (q / 100.0)
    lo = np.floor(pos).astype(np.int64)
    hi = np.ceil(pos).astype(np.int64)
    frac = pos - lo
    return v_sorted[starts + lo] * (1.0 - frac) + v_sorted[starts + hi] * frac


def grouped_aggregate(
    bin_idx: np.ndarray,
    values: np.ndarray,
    agg: str,
    times: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Aggregate ``values`` grouped by integer ``bin_idx``.

    Returns ``(unique_bins, aggregated)`` with empty bins absent, both
    sorted by bin.  ``times`` is required for ``last`` (latest-sample
    semantics; ties broken by input position, later wins).  Inputs need
    not be sorted.
    """
    _check_agg(agg)
    bin_idx = np.asarray(bin_idx, dtype=np.int64)
    values = np.asarray(values, dtype=np.float64)
    if bin_idx.size == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
    nz_bins, compact = np.unique(bin_idx, return_inverse=True)
    k = nz_bins.size
    if agg == "sum":
        out = np.bincount(compact, weights=values, minlength=k)
    elif agg == "count":
        out = np.bincount(compact, minlength=k).astype(np.float64)
    elif agg == "mean":
        out = np.bincount(compact, weights=values, minlength=k) / np.bincount(
            compact, minlength=k
        )
    elif agg == "last":
        if times is None:
            raise ValueError("agg='last' requires sample times")
        order = np.lexsort((np.arange(values.size), np.asarray(times), compact))
        v = values[order]
        starts, counts = _bin_boundaries(compact[order], k)
        out = v[starts + counts - 1]
    else:  # order statistics: min/max/percentiles over value-sorted bins
        order = np.lexsort((values, compact))
        v = values[order]
        starts, counts = _bin_boundaries(compact[order], k)
        if agg == "min":
            out = v[starts]
        elif agg == "max":
            out = v[starts + counts - 1]
        else:
            out = _percentile_sorted(v, starts, counts, _PERCENTILE_Q[agg])
    return nz_bins, out


def counter_increase(values: np.ndarray) -> np.ndarray:
    """Reset-clamped per-sample increases of a counter series.

    Element ``i`` is the increase attributed to sample ``i+1``: the plain
    delta when the counter grew, or the new value itself after a reset
    (the counter restarted from zero, so everything it now shows is new
    growth).  Length is ``len(values) - 1``; empty for < 2 samples.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.size < 2:
        return np.empty(0, dtype=np.float64)
    deltas = np.diff(values)
    return np.where(deltas >= 0.0, deltas, values[1:])


class PartialBins:
    """Dense mergeable per-bin statistics over a fixed bin grid.

    Holds ``(sum, count, min, max, last_t, last_v)`` per bin.  Samples
    and pre-aggregated rollup rows both fold in exactly, and two partial
    tables over the same grid merge exactly — the algebra behind tiered
    query serving.
    """

    __slots__ = ("n_bins", "sum", "count", "vmin", "vmax", "last_t", "last_v")

    def __init__(self, n_bins: int) -> None:
        if n_bins <= 0:
            raise ValueError("n_bins must be positive")
        self.n_bins = int(n_bins)
        self.sum = np.zeros(self.n_bins, dtype=np.float64)
        self.count = np.zeros(self.n_bins, dtype=np.float64)
        self.vmin = np.full(self.n_bins, np.inf)
        self.vmax = np.full(self.n_bins, -np.inf)
        self.last_t = np.full(self.n_bins, -np.inf)
        self.last_v = np.full(self.n_bins, np.nan)

    # ------------------------------------------------------------- folding
    def _fold(
        self,
        bin_idx: np.ndarray,
        sums: np.ndarray,
        counts: Optional[np.ndarray],
        mins: np.ndarray,
        maxs: np.ndarray,
        last_ts: np.ndarray,
        last_vs: np.ndarray,
    ) -> None:
        """Shared fold: one lexsort, then bincount/reduceat per statistic.

        ``lexsort((last_t, bin))`` groups rows by bin with the latest
        timestamp last in each segment — min/max only need the grouping
        (``reduceat`` scans each segment), and ``last`` falls out of the
        segment tail; lexsort stability breaks timestamp ties toward the
        later input position.
        """
        self.sum += np.bincount(bin_idx, weights=sums, minlength=self.n_bins)
        if counts is None:
            seg_counts = np.bincount(bin_idx, minlength=self.n_bins)
            self.count += seg_counts
        else:
            seg_counts = np.bincount(bin_idx, minlength=self.n_bins)
            self.count += np.bincount(bin_idx, weights=counts, minlength=self.n_bins)
        nz = np.nonzero(seg_counts)[0]
        order = np.lexsort((last_ts, bin_idx))
        ends = np.cumsum(seg_counts)[nz]
        starts = ends - seg_counts[nz]
        self.vmin[nz] = np.minimum(self.vmin[nz], np.minimum.reduceat(mins[order], starts))
        self.vmax[nz] = np.maximum(self.vmax[nz], np.maximum.reduceat(maxs[order], starts))
        tail = order[ends - 1]
        lt, lv = last_ts[tail], last_vs[tail]
        newer = lt >= self.last_t[nz]
        upd = nz[newer]
        self.last_t[upd] = lt[newer]
        self.last_v[upd] = lv[newer]

    def add_samples(self, bin_idx: np.ndarray, times: np.ndarray, values: np.ndarray) -> None:
        """Fold raw samples into the table (vectorized, any order)."""
        bin_idx = np.asarray(bin_idx, dtype=np.int64)
        times = np.asarray(times, dtype=np.float64)
        values = np.asarray(values, dtype=np.float64)
        if bin_idx.size == 0:
            return
        self._fold(bin_idx, values, None, values, values, times, values)

    def add_rows(
        self,
        bin_idx: np.ndarray,
        sums: np.ndarray,
        counts: np.ndarray,
        mins: np.ndarray,
        maxs: np.ndarray,
        last_ts: np.ndarray,
        last_vs: np.ndarray,
    ) -> None:
        """Fold pre-aggregated rollup rows into the table."""
        bin_idx = np.asarray(bin_idx, dtype=np.int64)
        if bin_idx.size == 0:
            return
        self._fold(bin_idx, sums, counts, mins, maxs, last_ts, last_vs)

    # ----------------------------------------------------------- finishing
    def nonempty(self) -> np.ndarray:
        return np.nonzero(self.count > 0)[0]

    def finalize(self, agg: str) -> Tuple[np.ndarray, np.ndarray]:
        """``(bin_indices, values)`` for non-empty bins under ``agg``."""
        if agg not in PARTIAL_AGGS:
            raise ValueError(f"aggregator {agg!r} cannot be served from partials")
        nz = self.nonempty()
        if agg == "mean":
            out = self.sum[nz] / self.count[nz]
        elif agg == "sum":
            out = self.sum[nz]
        elif agg == "count":
            out = self.count[nz]
        elif agg == "min":
            out = self.vmin[nz]
        elif agg == "max":
            out = self.vmax[nz]
        else:  # last
            out = self.last_v[nz]
        return nz, out
