"""The query planner/executor.

:class:`QueryEngine` is the serving layer between the raw
:class:`~repro.telemetry.tsdb.TimeSeriesStore` and everything that reads
telemetry (analytics facades, MAPE-K loops, dashboards, the CLI).  An
execution runs through four stages:

1. **Cache probe** — canonical expression + quantized window
   (:class:`~repro.query.cache.QueryCache`).
2. **Resolve** — label matchers → concrete series keys → groups.
3. **Plan** — pick the coarsest rollup tier that can serve the
   ``(step, agg)`` pair exactly, else raw; tier-served queries still
   merge the raw tail past each series' fold watermark, so results are
   identical to a full raw scan (for partial-servable aggregators)
   while long-range queries touch only rollup rows for the bulk of the
   window.
4. **Execute** — fully vectorized binned aggregation
   (:mod:`repro.query.kernels`); cross-series pooling, percentiles,
   group-by, and counter-reset-aware ``rate`` without per-bin Python
   loops.

Semantics are defined by :mod:`repro.query.model` and mirrored by the
brute-force evaluator in :mod:`repro.query.reference`, which the
property tests hold the engine to.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.obs.trace import TRACER
from repro.query.cache import QueryCache
from repro.query.kernels import (
    PARTIAL_AGGS,
    PartialBins,
    counter_increase,
    grouped_aggregate,
)
from repro.query.model import MetricQuery
from repro.query.parser import parse_query
from repro.query.rollup import RollupManager, RollupTier
from repro.telemetry.metric import SeriesKey
from repro.telemetry.tsdb import TimeSeriesStore

GroupLabels = Tuple[Tuple[str, str], ...]


@dataclass(frozen=True)
class ResultSeries:
    """One output series: group labels plus aligned time/value arrays."""

    labels: GroupLabels
    times: np.ndarray
    values: np.ndarray

    def label(self, name: str) -> Optional[str]:
        for k, v in self.labels:
            if k == name:
                return v
        return None

    def __str__(self) -> str:
        inner = ",".join(f"{k}={v}" for k, v in self.labels)
        return f"{{{inner}}}" if inner else "{}"


@dataclass(frozen=True)
class QueryResult:
    """Engine output: the query, its resolved window, and result series."""

    query: MetricQuery
    t0: float
    t1: float
    series: Tuple[ResultSeries, ...]
    source: str  # "raw", "rollup:<res>s", or "cache"

    def first(self) -> Optional[ResultSeries]:
        return self.series[0] if self.series else None

    def scalar(self) -> Optional[float]:
        """Single value of a one-series instant query (else raises)."""
        if not self.series:
            return None
        if len(self.series) > 1:
            raise ValueError(
                f"scalar() on a {len(self.series)}-series result; drop group_by or select harder"
            )
        values = self.series[0].values
        return float(values[-1]) if values.size else None


def _freeze(arr: np.ndarray) -> np.ndarray:
    arr.flags.writeable = False
    return arr


def instant_tier_partials(
    store, rollups: RollupManager, key: SeriesKey, t0: float, t1: float
) -> Optional[Dict[str, float]]:
    """Partial statistics of an aged-out instant window served from tiers.

    Applies only when the raw ring no longer covers the window (its
    oldest retained sample is newer than ``t0``): the raw scan and the
    brute-force reference both see nothing, so answering from the
    finest tier whose bins lie **fully inside** ``[t0, t1]`` is
    strictly more history, never a different answer for data the ring
    still holds.  Partially overlapping bins are excluded — their
    statistics would mix samples from outside the window.  Returns the
    pooled ``(sum, count, min, max, last_t, last_v, resolution)`` of
    the qualifying rows, or ``None``.  Shared by the single-store
    engine and the federated engine (which applies it per shard).
    """
    earliest = store.earliest_time(key)
    if earliest is None or earliest <= t0:
        return None
    for tier in rollups.tiers:  # finest first: freshest detail
        rows = tier.window(key, t0, t1)
        if rows is None or not rows["time"].size:
            continue
        keep = rows["time"] + tier.resolution_s <= t1
        if not keep.any():
            continue
        return {
            "sum": float(np.sum(rows["sum"][keep])),
            "count": float(np.sum(rows["count"][keep])),
            "min": float(np.min(rows["min"][keep])),
            "max": float(np.max(rows["max"][keep])),
            # rows are time-ordered, so the tail is the freshest sample
            "last_t": float(rows["last_t"][keep][-1]),
            "last_v": float(rows["last_v"][keep][-1]),
            "resolution": tier.resolution_s,
        }
    return None


def instant_tier_rate(
    store, rollups: RollupManager, key: SeriesKey, t0: float, t1: float
) -> Optional[Tuple[float, float]]:
    """Counter increase of an aged-out instant window served from tiers.

    The ``rate`` analogue of :func:`instant_tier_partials`, with the same
    applicability rule: only when the raw ring no longer covers the
    window, and only from bins fully inside ``[t0, t1]``.  Consecutive
    bins' ``last_v`` values form the counter's sampled trajectory at
    tier resolution, so their reset-clamped deltas are the increase the
    raw scan would have seen at bin boundaries (increases swallowed by
    an intra-bin reset are lost — rollups keep bin-end values only, so
    the tier answer is a conservative floor, never an overcount).
    Returns ``(total_increase, resolution)`` or ``None``; shared by the
    single-store engine and the federated engine (applied per shard).
    """
    from repro.query.kernels import counter_increase

    earliest = store.earliest_time(key)
    if earliest is None or earliest <= t0:
        return None
    for tier in rollups.tiers:  # finest first: most bin boundaries
        rows = tier.window(key, t0, t1)
        if rows is None or not rows["time"].size:
            continue
        keep = rows["time"] + tier.resolution_s <= t1
        if int(keep.sum()) < 2:  # need >= 2 bin-end values for a delta
            continue
        inc = counter_increase(rows["last_v"][keep])
        return float(np.sum(inc)), tier.resolution_s
    return None


class QueryEngine:
    """Vectorized metric query engine with tiered rollups and caching."""

    def __init__(
        self,
        store: TimeSeriesStore,
        *,
        rollups: Optional[RollupManager] = None,
        cache: Optional[QueryCache] = None,
        enable_cache: bool = True,
        instant_quantum_s: float = 1.0,
    ) -> None:
        self.store = store
        self.rollups = rollups
        self.cache = cache if cache is not None else (QueryCache() if enable_cache else None)
        self.instant_quantum_s = float(instant_quantum_s)
        self.queries_total = 0
        self.samples_total = 0
        self.served_raw = 0
        self.served_rollup = 0
        self._parse_cache: Dict[str, MetricQuery] = {}
        #: matcher resolution memo keyed by the store's per-metric series
        #: generation — repeated loop queries skip re-matching every key
        self._select_cache: Dict[MetricQuery, Tuple[int, List[SeriesKey]]] = {}
        self._expr_cache: Dict[MetricQuery, str] = {}

    # -------------------------------------------------------------- public
    def parse(self, expr: str) -> MetricQuery:
        q = self._parse_cache.get(expr)
        if q is None:
            q = self._parse_cache[expr] = parse_query(expr)
        return q

    def query(
        self,
        q: Union[str, MetricQuery],
        *,
        at: float,
        fuse: Optional[bool] = None,
    ) -> QueryResult:
        """Evaluate ``q`` with its window ending at time ``at``.

        ``fuse`` is accepted for interface parity with
        :class:`repro.core.runtime.QueryHub` (monitors can be wired to
        either) and ignored here — the bare engine never widens.
        """
        if isinstance(q, str):
            q = self.parse(q)
        if TRACER.enabled:
            with TRACER.span("engine.query", metric=q.metric, agg=q.agg):
                return self._query(q, at)
        return self._query(q, at)

    def _query(self, q: MetricQuery, at: float) -> QueryResult:
        self.queries_total += 1
        expr = self._expr_cache.get(q)
        if expr is None:
            if len(self._expr_cache) > 4096:
                self._expr_cache.clear()
            expr = self._expr_cache[q] = q.to_expr()
        quantum = q.step_s if q.step_s is not None else self.instant_quantum_s
        cache_key = None
        if self.cache is not None:
            # Version-key on the metric's write epoch: any commit touching
            # this metric mints a new key, so a query issued after new
            # samples landed inside the window can never serve the stale
            # pre-commit tail.  Old-epoch entries age out of the LRU.
            cache_key = QueryCache.make_key(
                expr, at - (q.range_s or 0.0), at, quantum,
                version=self._cache_version(q),
            )
            hit = self.cache.get(cache_key)
            if hit is not None:
                return dataclasses.replace(hit, source="cache")
        if TRACER.enabled:
            with TRACER.span("engine.execute"):
                result = self._execute(q, at)
        else:
            result = self._execute(q, at)
        if self.cache is not None:
            self.cache.put(cache_key, result)
        return result

    def _cache_version(self, q: MetricQuery):
        """Writer-side version of everything ``q``'s result depends on.

        Range results depend only on committed samples (tier stitching
        is bit-identical to a raw scan, so folding never changes them)
        — the metric write epoch suffices.  Instant results can now be
        served from tiers once the ring ages out, so a fold with no
        intervening commit *can* change them: mix the fold counter in.
        """
        epoch = self.store.metric_epoch(q.metric)
        if q.step_s is None and self.rollups is not None:
            return (epoch, self.rollups.folds)
        return epoch

    def scalar(self, q: Union[str, MetricQuery], *, at: float) -> Optional[float]:
        """Convenience: single-series instant value, ``None`` when no data."""
        return self.query(q, at=at).scalar()

    def samples(
        self,
        q: Union[str, MetricQuery],
        *,
        at: float,
        since: Optional[float] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Raw sample extraction through the serving layer (no binning).

        Returns the pooled, time-sorted ``(times, values)`` of every
        sample of the matched series with ``since < t <= at`` (``since``
        exclusive — cursor semantics for marker-style event streams;
        ``None`` means full retention).  The query's aggregator is
        ignored; its metric, matchers, and ``range_s`` define selection
        and the window floor.  This is how loops consume point streams
        (progress markers, transfer logs) via label selection instead of
        reaching into producer objects.
        """
        if isinstance(q, str):
            q = self.parse(q)
        self.samples_total += 1
        keys = self.select(q)
        t1 = float(at)
        t0 = t1 - q.range_s if q.range_s is not None else self._earliest(keys, t1)
        if since is not None:
            t0 = max(t0, since)
        all_t, all_v = [], []
        for key in keys:
            times, values = self.store.query(key, t0, t1)
            if since is not None and times.size and times[0] <= since:
                keep = times > since
                times, values = times[keep], values[keep]
            if times.size:
                all_t.append(times)
                all_v.append(values)
        if not all_t:
            return np.empty(0), np.empty(0)
        times = np.concatenate(all_t)
        values = np.concatenate(all_v)
        if len(all_t) > 1:
            order = np.argsort(times, kind="stable")
            times, values = times[order], values[order]
        return times, values

    def select(self, q: MetricQuery) -> List[SeriesKey]:
        """Series keys matching the query's metric + label matchers.

        Memoized against the store's per-metric series generation: the
        resolution is recomputed only when a new series of the metric
        appears, not on every evaluation.
        """
        gen = self.store.series_generation(q.metric)
        hit = self._select_cache.get(q)
        if hit is not None and hit[0] == gen:
            return hit[1]
        keys = [k for k in self.store.series_keys(q.metric) if q.matches(k)]
        if len(self._select_cache) > 4096:  # unbounded query shapes: reset
            self._select_cache.clear()
        self._select_cache[q] = (gen, keys)
        return keys

    def tier_resolutions(self) -> List[float]:
        """Rollup tier resolutions (seconds, finest first); empty if none.

        The serving layer's degrade ladder uses this to pick the
        coarsest tier a request can be downgraded to; exposing it here
        keeps front-door code engine-shape-agnostic (the federated
        engine overrides with its per-shard tier list).
        """
        if self.rollups is None:
            return []
        return [t.resolution_s for t in self.rollups.tiers]

    def stats(self) -> Dict[str, float]:
        out = {
            "queries_total": float(self.queries_total),
            "served_raw": float(self.served_raw),
            "served_rollup": float(self.served_rollup),
        }
        if self.cache is not None:
            out.update({f"cache_{k}": v for k, v in self.cache.stats().items()})
        if self.rollups is not None:
            out.update({f"rollup_{k}": v for k, v in self.rollups.stats().items()})
        return out

    # ----------------------------------------------------------- execution
    def _execute(self, q: MetricQuery, at: float) -> QueryResult:
        keys = self.select(q)
        t1 = float(at)
        t0 = t1 - q.range_s if q.range_s is not None else self._earliest(keys, t1)
        groups: Dict[GroupLabels, List[SeriesKey]] = {}
        for key in keys:
            groups.setdefault(q.group_key(key), []).append(key)

        tier: Optional[RollupTier] = None
        if self.rollups is not None and q.agg in PARTIAL_AGGS and q.step_s is not None:
            tier = self.rollups.tier_for(q.step_s, q.agg)

        series: List[ResultSeries] = []
        tier_res: Optional[float] = None
        for labels in sorted(groups):
            member_keys = sorted(groups[labels], key=str)
            if q.step_s is None:
                times, values, inst_res = self._execute_instant(q, member_keys, t0, t1)
                if inst_res is not None:
                    tier_res = inst_res
            elif q.agg == "rate":
                times, values = self._execute_rate(q, member_keys, t0, t1)
            elif q.agg in PARTIAL_AGGS:
                times, values, group_used_tier = self._execute_partial(
                    q, member_keys, t0, t1, tier
                )
                if group_used_tier and tier is not None:
                    tier_res = tier.resolution_s
            else:  # percentiles: need the full sample distribution
                times, values = self._execute_sampled(q, member_keys, t0, t1)
            if times.size:
                series.append(ResultSeries(labels, _freeze(times), _freeze(values)))

        if tier_res is not None:
            source = f"rollup:{int(tier_res)}s"
            self.served_rollup += 1
        else:
            source = "raw"
            self.served_raw += 1
        return QueryResult(q, t0, t1, tuple(series), source)

    def _earliest(self, keys: Sequence[SeriesKey], t1: float) -> float:
        earliest = t1
        for key in keys:
            first = self.store.earliest_time(key)
            if first is not None and first <= t1:
                earliest = min(earliest, first)
        return earliest

    @staticmethod
    def _grid(t0: float, t1: float, step: float) -> Tuple[float, int]:
        """Absolute-grid-aligned bin layout covering ``[t0, t1]``."""
        first = math.floor(t0 / step)
        last = math.floor(t1 / step)
        return first * step, int(last - first + 1)

    def _raw_window(self, key: SeriesKey, t0: float, t1_excl: float):
        """Raw samples with ``t0 <= t < t1_excl`` (store query is inclusive)."""
        times, values = self.store.query(key, t0, t1_excl)
        if times.size and times[-1] >= t1_excl:
            keep = times < t1_excl
            times, values = times[keep], values[keep]
        return times, values

    def _execute_partial(
        self,
        q: MetricQuery,
        keys: Sequence[SeriesKey],
        t0: float,
        t1: float,
        tier: Optional[RollupTier],
    ) -> Tuple[np.ndarray, np.ndarray, bool]:
        step = q.step_s
        grid_t0, n_bins = self._grid(t0, t1, step)
        t1_excl = grid_t0 + n_bins * step
        # Pool tier rows and raw tails across the whole group before
        # touching the kernels: one add_rows + one add_samples call per
        # group, regardless of how many series it contains.
        row_chunks: List[Dict[str, np.ndarray]] = []
        raw_t_chunks: List[np.ndarray] = []
        raw_v_chunks: List[np.ndarray] = []
        for key in keys:
            cut = grid_t0
            if tier is not None:
                wm = tier.watermark(key)
                if wm is not None:
                    cut = min(max(wm, grid_t0), t1_excl)
                rows = tier.window(key, grid_t0, cut)
                if rows is not None and rows["time"].size:
                    row_chunks.append(rows)
            times, values = self._raw_window(key, cut, t1_excl)
            if times.size:
                raw_t_chunks.append(times)
                raw_v_chunks.append(values)
        partial = PartialBins(n_bins)
        if row_chunks:
            cols = {
                name: np.concatenate([c[name] for c in row_chunks]) for name in row_chunks[0]
            }
            bin_idx = ((cols["time"] - grid_t0) // step).astype(np.int64)
            partial.add_rows(
                bin_idx,
                cols["sum"],
                cols["count"],
                cols["min"],
                cols["max"],
                cols["last_t"],
                cols["last_v"],
            )
        if raw_t_chunks:
            times = np.concatenate(raw_t_chunks)
            values = np.concatenate(raw_v_chunks)
            bin_idx = ((times - grid_t0) // step).astype(np.int64)
            partial.add_samples(bin_idx, times, values)
        nz, vals = partial.finalize(q.agg)
        return grid_t0 + nz * step, vals, bool(row_chunks)

    def _execute_sampled(
        self, q: MetricQuery, keys: Sequence[SeriesKey], t0: float, t1: float
    ) -> Tuple[np.ndarray, np.ndarray]:
        step = q.step_s
        grid_t0, n_bins = self._grid(t0, t1, step)
        t1_excl = grid_t0 + n_bins * step
        all_t, all_v = [], []
        for key in keys:
            times, values = self._raw_window(key, grid_t0, t1_excl)
            if times.size:
                all_t.append(times)
                all_v.append(values)
        if not all_t:
            return np.empty(0), np.empty(0)
        times = np.concatenate(all_t)
        values = np.concatenate(all_v)
        bin_idx = ((times - grid_t0) // step).astype(np.int64)
        nz, vals = grouped_aggregate(bin_idx, values, q.agg, times=times)
        return grid_t0 + nz * step, vals

    def _execute_rate(
        self, q: MetricQuery, keys: Sequence[SeriesKey], t0: float, t1: float
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-series reset-clamped increases, summed across the group.

        Each increase is attributed to the bin of its *later* sample;
        bin rate = pooled increase / step.
        """
        step = q.step_s
        grid_t0, n_bins = self._grid(t0, t1, step)
        t1_excl = grid_t0 + n_bins * step
        increase = np.zeros(n_bins)
        touched = np.zeros(n_bins, dtype=bool)
        for key in keys:
            times, values = self._raw_window(key, grid_t0, t1_excl)
            if times.size < 2:
                continue
            inc = counter_increase(values)
            bin_idx = ((times[1:] - grid_t0) // step).astype(np.int64)
            increase += np.bincount(bin_idx, weights=inc, minlength=n_bins)
            touched |= np.bincount(bin_idx, minlength=n_bins).astype(bool)
        nz = np.nonzero(touched)[0]
        return grid_t0 + nz * step, increase[nz] / step

    def _execute_instant(
        self, q: MetricQuery, keys: Sequence[SeriesKey], t0: float, t1: float
    ) -> Tuple[np.ndarray, np.ndarray, Optional[float]]:
        """Single-bin aggregate over the inclusive window ``[t0, t1]``.

        The third element is the resolution of the rollup tier that
        served the group, or ``None`` for a raw-served (or empty) group.
        """
        if q.agg == "rate":
            span = t1 - t0
            if span <= 0:
                return np.empty(0), np.empty(0), None
            total = 0.0
            any_delta = False
            for key in keys:
                _, values = self.store.query(key, t0, t1)
                inc = counter_increase(values)
                if inc.size:
                    any_delta = True
                    total += float(np.sum(inc))
            if not any_delta:
                if len(keys) == 1 and self.rollups is not None:
                    # aged-out singleton counter: serve the increase from
                    # rollup tiers, matching the partial-agg tier fallback
                    hit = instant_tier_rate(self.store, self.rollups, keys[0], t0, t1)
                    if hit is not None:
                        total, res = hit
                        return np.array([t0]), np.array([total / span]), res
                return np.empty(0), np.empty(0), None
            return np.array([t0]), np.array([total / span]), None
        all_t, all_v = [], []
        for key in keys:
            times, values = self.store.query(key, t0, t1)
            if times.size:
                all_t.append(times)
                all_v.append(values)
        if not all_t:
            if len(keys) == 1 and q.agg in PARTIAL_AGGS and self.rollups is not None:
                value, res = self._instant_from_tiers(q.agg, keys[0], t0, t1)
                if value is not None:
                    return np.array([t0]), np.array([value]), res
            return np.empty(0), np.empty(0), None
        if q.agg == "last" and len(all_t) == 1:
            # single-series gauge read — the hottest loop-monitor shape;
            # per-series windows are time-sorted, so skip the bin kernel
            return np.array([t0]), np.array([all_v[0][-1]]), None
        times = np.concatenate(all_t)
        values = np.concatenate(all_v)
        _, vals = grouped_aggregate(
            np.zeros(values.size, dtype=np.int64), values, q.agg, times=times
        )
        return np.array([t0]), vals, None

    def _instant_from_tiers(
        self, agg: str, key: SeriesKey, t0: float, t1: float
    ) -> Tuple[Optional[float], Optional[float]]:
        row = instant_tier_partials(self.store, self.rollups, key, t0, t1)
        if row is None:
            return None, None
        if agg == "mean":
            value = row["sum"] / row["count"]
        elif agg == "sum":
            value = row["sum"]
        elif agg == "count":
            value = row["count"]
        elif agg == "min":
            value = row["min"]
        elif agg == "max":
            value = row["max"]
        else:  # last
            value = row["last_v"]
        return value, row["resolution"]
