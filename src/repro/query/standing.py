"""Standing queries: O(new samples) incremental monitor evaluation.

The batch :class:`~repro.query.engine.QueryEngine` re-scans a query's
full window on every evaluation, so fused monitoring cost grows as
``window x fleet size`` even though the store already knows exactly
which samples are new (ingest listeners + per-metric write epochs).
This module turns a *registered* :class:`~repro.query.model.MetricQuery`
into a **standing query**: per-series partial-aggregate state — ``(sum,
count, sumsq, min, max, last)`` per absolute time-grid bin, so ``mean``
/ ``std`` / ``rate`` derive exactly — maintained O(new samples) from
:meth:`TimeSeriesStore.add_ingest_listener` callbacks on commit.  A read
then folds the maintained per-(series, bin) rows with the same canonical
lexsort+reduceat merge the federated engine uses, instead of re-scanning
raw rings.

Exactness contract (property-tested against the batch engine and the
brute-force reference): range queries always evaluate over *complete*
grid bins, so full-bin partials are sufficient statistics; results match
the batch engine up to floating-point association (<= 1e-9 relative, the
same bound the federated engine documents), and bit-for-bit for the
order statistics ``min``/``max``/``count``/``last``.

Layout and lifecycle:

* :class:`StandingGrid` — the state itself, sid-addressed: dense
  ``(series, bin-slot)`` arrays over a ring of ``n_slots`` absolute
  bins.  Advancing past the newest bin recycles the oldest slots, so
  memory is bounded by ``series x window`` and **window eviction is
  delegated to the rollup tiers**: a read older than the bin ring falls
  back to the batch engine, which stitches tier rows under the raw tail.
* :class:`StoreStandingProvider` — owns one grid per step for a single
  :class:`TimeSeriesStore`, feeds them from the store's ingest listener,
  and bootstraps registration by backfilling retained ring windows
  (commits that already wrapped the ring mark the oldest retained bin
  incomplete, forcing batch fallback for windows that need it).
* :class:`StandingQueryEngine` — the serving layer: shape registration,
  per-shape group plans memoized on the series generation, reads merged
  from provider rows, and **epoch-keyed snapshots** — a result is keyed
  by ``(at, metric epoch, series generation)``, so repeated reads inside
  one tick are served from the snapshot and any in-flight commit mints a
  new key rather than racing the read.

Sharded stores plug in through the provider seam:
``FederatedQueryEngine`` keeps one provider per shard (shard-local sids,
gathered rows merged here), and the process-parallel tier maintains the
same grids worker-side, fed by the shard event stream.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.obs.trace import TRACER
from repro.query.engine import GroupLabels, QueryEngine, QueryResult, ResultSeries, _freeze
from repro.query.kernels import PARTIAL_AGGS
from repro.query.model import MetricQuery
from repro.telemetry.metric import SeriesKey
from repro.telemetry.tsdb import TimeSeriesStore

#: sentinel bin numbers: "complete since forever" / "complete nowhere"
_NEG_BIG = -(1 << 62)
_POS_BIG = 1 << 62

#: columns of one standing partial row (mirrors rollup ROW_COLUMNS plus
#: the grouping coordinates attached by providers)
ENTRY_COLUMNS = ("gidx", "rank", "bin", "sum", "count", "min", "max", "last_t", "last_v")
RATE_COLUMNS = ("inc", "first_inc")


def _empty_entries(want_rate: bool) -> Dict[str, np.ndarray]:
    out = {name: np.empty(0, dtype=np.float64) for name in ENTRY_COLUMNS}
    out["gidx"] = np.empty(0, dtype=np.int64)
    out["rank"] = np.empty(0, dtype=np.int64)
    out["bin"] = np.empty(0, dtype=np.int64)
    if want_rate:
        for name in RATE_COLUMNS:
            out[name] = np.empty(0, dtype=np.float64)
    return out


def concat_entries(chunks: Sequence[Dict[str, np.ndarray]]) -> Dict[str, np.ndarray]:
    """Column-wise concatenation of per-shard entry tables."""
    chunks = [c for c in chunks if c["gidx"].size]
    if not chunks:
        return _empty_entries(False)
    return {name: np.concatenate([c[name] for c in chunks]) for name in chunks[0]}


class StandingGrid:
    """Per-series partial aggregates over a ring of absolute grid bins.

    Bin ``k`` covers ``[k*step, (k+1)*step)`` on the absolute time grid
    (the same alignment the batch engine and rollup tiers use).  The bin
    dimension is a ring of ``n_slots`` slots addressed ``bin % n_slots``;
    advancing the newest bin clears the slots it recycles, so state
    covers exactly the trailing ``n_slots`` bins ending at ``hi_bin``.

    Per-series timestamps are non-decreasing (the store's append
    invariant), which is what makes single-pass incremental folding
    exact: within one commit a series' samples arrive time-sorted, and
    across commits each ``(series, bin)`` accumulator only ever appends.
    """

    def __init__(
        self,
        step_s: float,
        n_slots: int,
        *,
        track_rate: bool = False,
        tracks: Optional[Callable[[int], bool]] = None,
    ) -> None:
        if step_s <= 0:
            raise ValueError("step_s must be positive")
        if n_slots <= 0:
            raise ValueError("n_slots must be positive")
        self.step = float(step_s)
        self.n_slots = int(n_slots)
        self.track_rate = bool(track_rate)
        self._tracks = tracks  # sid -> belongs to a registered metric (None = all)
        self.hi_bin: Optional[int] = None
        self.updates_applied = 0  # samples folded in
        self.late_dropped = 0  # samples older than the bin ring
        #: replay floors exist only after backfills; the live ingest
        #: path skips the per-sample floor gather until one is set
        self._has_floor = False
        self._cap = 0
        self._known = np.empty(0, dtype=bool)
        self._tracked = np.empty(0, dtype=bool)
        self._floor_t = np.empty(0, dtype=np.float64)
        #: per-series: bins >= complete_from hold every retained sample
        self.complete_from = np.empty(0, dtype=np.int64)
        self._prev_t = np.empty(0, dtype=np.float64)
        self._prev_v = np.empty(0, dtype=np.float64)
        shape = (0, self.n_slots)
        self.sum = np.empty(shape)
        self.count = np.empty(shape)
        self.sumsq = np.empty(shape)
        self.vmin = np.empty(shape)
        self.vmax = np.empty(shape)
        self.last_t = np.empty(shape)
        self.last_v = np.empty(shape)
        self.inc = np.empty(shape)
        self.first_inc = np.empty(shape)

    # ------------------------------------------------------------- sizing
    def _grow(self, n: int) -> None:
        cap = max(self._cap * 2, n, 16)

        def grow1(old: np.ndarray, fill: float, dtype=np.float64) -> np.ndarray:
            arr = np.full(cap, fill, dtype=dtype)
            arr[: self._cap] = old
            return arr

        def grow2(old: np.ndarray, fill: float) -> np.ndarray:
            arr = np.full((cap, self.n_slots), fill)
            arr[: self._cap] = old
            return arr

        self._known = grow1(self._known, False, bool)
        self._tracked = grow1(self._tracked, False, bool)
        self._floor_t = grow1(self._floor_t, -np.inf)
        self.complete_from = grow1(self.complete_from, _POS_BIG, np.int64)
        self.sum = grow2(self.sum, 0.0)
        self.count = grow2(self.count, 0.0)
        self.sumsq = grow2(self.sumsq, 0.0)
        self.vmin = grow2(self.vmin, np.inf)
        self.vmax = grow2(self.vmax, -np.inf)
        self.last_t = grow2(self.last_t, -np.inf)
        self.last_v = grow2(self.last_v, np.nan)
        if self.track_rate:
            self._prev_t = grow1(self._prev_t, -np.inf)
            self._prev_v = grow1(self._prev_v, np.nan)
            self.inc = grow2(self.inc, 0.0)
            self.first_inc = grow2(self.first_inc, 0.0)
        self._cap = cap

    def _advance(self, hi_new: int) -> None:
        """Move the newest bin forward, recycling the slots it enters."""
        if self.hi_bin is None:
            self.hi_bin = hi_new
            return
        if hi_new <= self.hi_bin:
            return
        jump = hi_new - self.hi_bin
        if jump >= self.n_slots:
            cols: Union[slice, np.ndarray] = slice(None)
        else:
            cols = (self.hi_bin + 1 + np.arange(jump)) % self.n_slots
        self.sum[:, cols] = 0.0
        self.count[:, cols] = 0.0
        self.sumsq[:, cols] = 0.0
        self.vmin[:, cols] = np.inf
        self.vmax[:, cols] = -np.inf
        self.last_t[:, cols] = -np.inf
        self.last_v[:, cols] = np.nan
        if self.track_rate:
            self.inc[:, cols] = 0.0
            self.first_inc[:, cols] = 0.0
        self.hi_bin = hi_new

    # ------------------------------------------------------------- ingest
    def ingest(self, ids: np.ndarray, times: np.ndarray, values: np.ndarray) -> int:
        """Fold one committed batch (listener columns) into the grid.

        Columns are grouped by series and time-sorted within each series
        (the ingest-listener contract).  Returns the number of samples
        folded; untracked series, samples at or below a series' replay
        floor, and samples older than the bin ring are skipped.
        """
        ids = np.asarray(ids, dtype=np.int64)
        if ids.size == 0:
            return 0
        max_sid = int(ids.max())
        if max_sid >= self._cap:
            self._grow(max_sid + 1)
        unknown = ~self._known[ids]
        if unknown.any():
            # a series first seen live has its full history flowing
            # through this listener: complete from the very first bin
            for sid in np.unique(ids[unknown]).tolist():
                tracked = True if self._tracks is None else bool(self._tracks(sid))
                self._known[sid] = True
                self._tracked[sid] = tracked
                if tracked:
                    self.complete_from[sid] = _NEG_BIG
        keep = self._tracked[ids]
        if self._has_floor:
            keep &= times > self._floor_t[ids]
        if not keep.all():
            ids, times, values = ids[keep], times[keep], values[keep]
            if ids.size == 0:
                return 0
        times = np.asarray(times, dtype=np.float64)
        values = np.asarray(values, dtype=np.float64)
        bins = np.floor(times / self.step).astype(np.int64)
        inc = has_pred = None
        if self.track_rate:
            inc, has_pred = self._commit_increases(ids, times, values)
        self._advance(int(bins.max()))
        lo_valid = self.hi_bin - self.n_slots + 1
        fresh = bins >= lo_valid
        if not fresh.all():
            self.late_dropped += int(ids.size - fresh.sum())
            ids, times, values, bins = ids[fresh], times[fresh], values[fresh], bins[fresh]
            if self.track_rate:
                inc, has_pred = inc[fresh], has_pred[fresh]
            if ids.size == 0:
                return 0
        self._fold_segments(ids, times, values, bins, inc, has_pred)
        self.updates_applied += int(ids.size)
        return int(ids.size)

    def _commit_increases(
        self, ids: np.ndarray, times: np.ndarray, values: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Reset-clamped increase per sample, chained across commits via
        the per-series previous sample; advances that chain."""
        n = ids.size
        newser = np.empty(n, dtype=bool)
        newser[0] = True
        np.not_equal(ids[1:], ids[:-1], out=newser[1:])
        s_idx = np.nonzero(newser)[0]
        pv = np.empty(n)
        pv[1:] = values[:-1]
        pv[s_idx] = self._prev_v[ids[s_idx]]
        has_pred = np.ones(n, dtype=bool)
        has_pred[s_idx] = self._prev_t[ids[s_idx]] > -np.inf
        deltas = values - pv
        inc = np.where(deltas >= 0.0, deltas, values)
        inc[~has_pred] = 0.0  # exact additive identity: never shifts sums
        e_idx = np.append(s_idx[1:], n) - 1
        self._prev_t[ids[e_idx]] = times[e_idx]
        self._prev_v[ids[e_idx]] = values[e_idx]
        return inc, has_pred

    def _fold_segments(
        self,
        ids: np.ndarray,
        times: np.ndarray,
        values: np.ndarray,
        bins: np.ndarray,
        inc: Optional[np.ndarray],
        has_pred: Optional[np.ndarray],
    ) -> None:
        """Accumulate contiguous ``(series, bin)`` runs into the state.

        Runs are contiguous because the columns are grouped by series
        with non-decreasing times; distinct runs of one call land on
        distinct ``(series, slot)`` cells (two live bins of one series
        are less than ``n_slots`` apart), so fancy-indexed ``+=`` is
        exact.
        """
        n = ids.size
        seg = np.empty(n, dtype=bool)
        seg[0] = True
        seg[1:] = (ids[1:] != ids[:-1]) | (bins[1:] != bins[:-1])
        starts = np.nonzero(seg)[0]
        if starts.size == n:
            # every run is a single sample — the streamed-telemetry
            # common case (one point per series per commit): the reduceat
            # passes degenerate to the columns themselves
            sid_s, col = ids, bins % self.n_slots
            run_sums, run_counts = values, 1.0
            run_sumsq = values * values
            run_min = run_max = values
            tail_t, tail_v = times, values
            run_inc = inc
            inc_heads, pred_heads = inc, has_pred
        else:
            ends = np.append(starts[1:], n)
            sid_s = ids[starts]
            col = bins[starts] % self.n_slots
            run_sums = np.add.reduceat(values, starts)
            run_counts = ends - starts
            run_sumsq = np.add.reduceat(values * values, starts)
            run_min = np.minimum.reduceat(values, starts)
            run_max = np.maximum.reduceat(values, starts)
            tail_t, tail_v = times[ends - 1], values[ends - 1]
            if self.track_rate and inc is not None:
                run_inc = np.add.reduceat(inc, starts)
                inc_heads, pred_heads = inc[starts], has_pred[starts]
        # one flat index for every scatter: the state arrays are allocated
        # C-contiguous and never re-sliced, so the raveled views alias them
        flat = sid_s * self.n_slots + col
        cnt = self.count.ravel()
        cnt_before = cnt[flat]
        self.sum.ravel()[flat] += run_sums
        cnt[flat] = cnt_before + run_counts
        self.sumsq.ravel()[flat] += run_sumsq
        vmin = self.vmin.ravel()
        vmin[flat] = np.minimum(vmin[flat], run_min)
        vmax = self.vmax.ravel()
        vmax[flat] = np.maximum(vmax[flat], run_max)
        # non-decreasing per-series times: the run tail is the newest
        # sample of its bin, and timestamp ties resolve toward the later
        # sample — the same tie-break PartialBins applies
        self.last_t.ravel()[flat] = tail_t
        self.last_v.ravel()[flat] = tail_v
        if self.track_rate and inc is not None:
            self.inc.ravel()[flat] += run_inc
            newbin = cnt_before == 0.0
            if newbin.any():
                fi = np.where(pred_heads, inc_heads, 0.0)
                self.first_inc.ravel()[flat[newbin]] = fi[newbin]

    def backfill_series(
        self,
        sid: int,
        times: np.ndarray,
        values: np.ndarray,
        *,
        evicted: bool,
        floor: Optional[float] = None,
    ) -> None:
        """Bootstrap one series from its retained ring window.

        ``evicted`` marks a ring that has wrapped: the bin holding its
        oldest retained sample may have lost older samples, so the series
        is complete only from the *next* bin on.  ``floor`` (crash-
        respawn replay) additionally drops future listener deliveries at
        or below that time — best-effort boundary semantics shared with
        the parallel tier's recovery path.
        """
        sid = int(sid)
        if sid >= self._cap:
            self._grow(sid + 1)
        self._known[sid] = True
        self._tracked[sid] = True
        if floor is not None:
            self._floor_t[sid] = float(floor)
            self._has_floor = True
        times = np.asarray(times, dtype=np.float64)
        values = np.asarray(values, dtype=np.float64)
        if times.size == 0:
            self.complete_from[sid] = _NEG_BIG
            return
        bins = np.floor(times / self.step).astype(np.int64)
        inc = has_pred = None
        if self.track_rate:
            # increases over the retained trajectory; the oldest retained
            # sample has no known predecessor
            deltas = np.diff(values)
            inc = np.concatenate([[0.0], np.where(deltas >= 0.0, deltas, values[1:])])
            has_pred = np.ones(times.size, dtype=bool)
            has_pred[0] = False
            self._prev_t[sid] = times[-1]
            self._prev_v[sid] = values[-1]
        self._advance(int(bins[-1]))
        lo = int(bins[0]) + 1 if evicted else _NEG_BIG
        self.complete_from[sid] = lo
        lo_valid = self.hi_bin - self.n_slots + 1
        keep = bins >= max(lo, lo_valid)
        if not keep.all():
            times, values, bins = times[keep], values[keep], bins[keep]
            if self.track_rate:
                inc, has_pred = inc[keep], has_pred[keep]
            if times.size == 0:
                return
        ids = np.full(times.size, sid, dtype=np.int64)
        self._fold_segments(ids, times, values, bins, inc, has_pred)
        self.updates_applied += int(times.size)

    # -------------------------------------------------------------- reads
    def incomplete(self, sids: np.ndarray, b0: int) -> np.ndarray:
        """Subset of ``sids`` whose state cannot serve bins from ``b0``.

        A window starting before the bin ring fails for everyone; a
        never-seen series fails conservatively (the caller decides
        whether it actually holds data).
        """
        sids = np.asarray(sids, dtype=np.int64)
        if sids.size == 0:
            return sids
        if self.hi_bin is not None and b0 < self.hi_bin - self.n_slots + 1:
            return sids
        bad = np.ones(sids.size, dtype=bool)
        known = sids < self._cap
        ks = sids[known]
        bad[known] = ~self._tracked[ks] | (self.complete_from[ks] > b0)
        return sids[bad]

    def rows(
        self, sids: np.ndarray, b0: int, b1: int, *, want_rate: bool = False
    ) -> Dict[str, np.ndarray]:
        """Non-empty ``(series, bin)`` partial rows for absolute bins
        ``[b0, b1]``; ``spos`` indexes into ``sids``."""
        out = _empty_entries(want_rate)
        out["spos"] = np.empty(0, dtype=np.int64)
        del out["gidx"], out["rank"]
        sids = np.asarray(sids, dtype=np.int64)
        if self.hi_bin is None or sids.size == 0:
            return out
        b_hi = min(b1, self.hi_bin)
        if b_hi < b0:
            return out
        pos = np.nonzero(sids < self._cap)[0]
        ssub = sids[pos]
        cols = (b0 + np.arange(b_hi - b0 + 1)) % self.n_slots
        sub = self.count[np.ix_(ssub, cols)]
        r, c = np.nonzero(sub > 0.0)
        sel_s = ssub[r]
        sel_c = cols[c]
        out["spos"] = pos[r]
        out["bin"] = b0 + c
        out["sum"] = self.sum[sel_s, sel_c]
        out["count"] = sub[r, c]
        out["min"] = self.vmin[sel_s, sel_c]
        out["max"] = self.vmax[sel_s, sel_c]
        out["last_t"] = self.last_t[sel_s, sel_c]
        out["last_v"] = self.last_v[sel_s, sel_c]
        if want_rate:
            if not self.track_rate:
                raise ValueError("grid does not maintain rate state")
            out["inc"] = self.inc[sel_s, sel_c]
            out["first_inc"] = self.first_inc[sel_s, sel_c]
        return out

    def moments(self, sid: int, b0: int, b1: int) -> Dict[str, np.ndarray]:
        """``(count, sum, sumsq)`` per bin of one series — the sufficient
        statistics for incremental ``std``/variance derivation."""
        rows = self.rows(np.array([sid], dtype=np.int64), b0, b1)
        sel = rows["bin"]
        col = sel % self.n_slots
        return {
            "bin": sel,
            "count": rows["count"],
            "sum": rows["sum"],
            "sumsq": self.sumsq[np.full(sel.size, int(sid)), col],
        }

    def stats(self) -> Dict[str, float]:
        return {
            "updates_applied": float(self.updates_applied),
            "late_dropped": float(self.late_dropped),
        }


class StoreStandingProvider:
    """Standing state for one :class:`TimeSeriesStore`.

    Owns one :class:`StandingGrid` per registered step, fed from the
    store's ingest listener; registration backfills the metric's
    retained ring windows so the grid starts complete wherever the rings
    still are.
    """

    def __init__(self, store: TimeSeriesStore) -> None:
        self.store = store
        self.grids: Dict[float, StandingGrid] = {}
        self._step_metrics: Dict[float, set] = {}
        # interned sid columns per plan key-list: the engine's plan cache
        # hands the same list object back until the series generation
        # moves, so identity is the cache key (the held reference keeps
        # the id stable)
        self._sid_cache: Dict[int, Tuple[Sequence[SeriesKey], np.ndarray]] = {}
        store.add_ingest_listener(self._on_ingest)

    def _on_ingest(self, ids: np.ndarray, times: np.ndarray, values: np.ndarray) -> None:
        for grid in self.grids.values():
            grid.ingest(ids, times, values)

    def _tracks_fn(self, step: float) -> Callable[[int], bool]:
        metrics = self._step_metrics[step]
        registry = self.store.registry
        return lambda sid: registry.key_for(sid).metric in metrics

    def register(self, metric: str, step: float, n_slots: int, *, want_rate: bool) -> None:
        metrics = self._step_metrics.setdefault(step, set())
        fresh_metric = metric not in metrics
        metrics.add(metric)
        grid = self.grids.get(step)
        if grid is None or n_slots > grid.n_slots or (want_rate and not grid.track_rate):
            # a wider window or newly-needed rate state cannot be grown
            # incrementally: rebuild and re-bootstrap from the rings
            grid = StandingGrid(
                step,
                max(n_slots, grid.n_slots if grid is not None else 0),
                track_rate=want_rate or (grid.track_rate if grid is not None else False),
                tracks=self._tracks_fn(step),
            )
            self.grids[step] = grid
            for name in sorted(metrics):
                self._backfill(grid, name)
        elif fresh_metric:
            self._backfill(grid, metric)

    def _backfill(self, grid: StandingGrid, metric: str) -> None:
        registry = self.store.registry
        for key in self.store.series_keys(metric):
            buf = self.store._series.get(key)
            if buf is None:
                continue
            times, values = buf.arrays()
            grid.backfill_series(
                registry.id_for(key),
                times,
                values,
                evicted=buf.total_appended > len(buf),
            )

    def entries(
        self,
        metric: str,
        step: float,
        keys: Sequence[SeriesKey],
        gidxs: np.ndarray,
        ranks: np.ndarray,
        b0: int,
        b1: int,
        *,
        want_rate: bool = False,
    ) -> Optional[Dict[str, np.ndarray]]:
        """Partial rows for the planned selection, or ``None`` when the
        state cannot cover the window (batch fallback)."""
        grid = self.grids.get(step)
        if grid is None:
            return None
        if not keys:
            return _empty_entries(want_rate)
        registry = self.store.registry
        cached = self._sid_cache.get(id(keys))
        if cached is not None and cached[0] is keys:
            sids = cached[1]
        else:
            sids = registry.ids_for(keys)
            if len(self._sid_cache) > 64:
                self._sid_cache.clear()
            self._sid_cache[id(keys)] = (keys, sids)
        for sid in grid.incomplete(sids, b0).tolist():
            # incomplete state only matters if the series actually holds
            # data the batch scan would see
            if self.store.earliest_time(registry.key_for(sid)) is not None:
                return None
        rows = grid.rows(sids, b0, b1, want_rate=want_rate)
        spos = rows.pop("spos")
        rows["gidx"] = np.asarray(gidxs, dtype=np.int64)[spos]
        rows["rank"] = np.asarray(ranks, dtype=np.int64)[spos]
        return rows

    def stats(self) -> Dict[str, float]:
        out = {"grids": float(len(self.grids)), "updates_applied": 0.0, "late_dropped": 0.0}
        for grid in self.grids.values():
            for k, v in grid.stats().items():
                out[k] += v
        return out


def _seg_bounds(flags: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    starts = np.nonzero(flags)[0]
    return starts, np.append(starts[1:], flags.size)


def _group_series(
    labels: Sequence[GroupLabels],
    out_g: np.ndarray,
    times: np.ndarray,
    vals: np.ndarray,
) -> List[ResultSeries]:
    gflag = np.empty(out_g.size, dtype=bool)
    gflag[0] = True
    gflag[1:] = out_g[1:] != out_g[:-1]
    gs, ge = _seg_bounds(gflag)
    # freeze the parents once — the per-group slices are views and
    # inherit read-only
    times.flags.writeable = False
    vals.flags.writeable = False
    return [
        ResultSeries(labels[gi], times[s:e], vals[s:e])
        for gi, s, e in zip(out_g[gs].tolist(), gs.tolist(), ge.tolist())
    ]


def _assemble_partial(
    labels: Sequence[GroupLabels],
    ent: Dict[str, np.ndarray],
    agg: str,
    grid_t0: float,
    b0: int,
    step: float,
) -> List[ResultSeries]:
    """One lexsort+reduceat pass: rows -> per-(group, bin) aggregates.

    The sort mirrors the federated merge: primary group, then bin, then
    ``last_t`` with member rank as the tie-break — so ``last`` resolves
    ties toward the later member exactly like the batch engine's pooled
    fold does.
    """
    gidx = ent["gidx"]
    if gidx.size == 0:
        return []
    b = ent["bin"]
    same_g = gidx[1:] == gidx[:-1]
    canonical = bool(
        np.all(gidx[1:] >= gidx[:-1]) and not (same_g & (b[1:] <= b[:-1])).any()
    )
    if canonical:
        # rows arrive in canonical (group, bin) order with unique cells —
        # the provider's natural order when every group is a singleton —
        # so the sort and every reduceat are the identity
        out_g, out_b = gidx, b
        if agg == "sum":
            vals = ent["sum"]
        elif agg == "count":
            vals = ent["count"]
        elif agg == "mean":
            vals = ent["sum"] / ent["count"]
        elif agg == "min":
            vals = ent["min"]
        elif agg == "max":
            vals = ent["max"]
        else:
            vals = ent["last_v"]
    else:
        order = np.lexsort((ent["rank"], ent["last_t"], b, gidx))
        g = gidx[order]
        bo = b[order]
        seg = np.empty(g.size, dtype=bool)
        seg[0] = True
        seg[1:] = (g[1:] != g[:-1]) | (bo[1:] != bo[:-1])
        starts, ends = _seg_bounds(seg)
        out_g = g[starts]
        out_b = bo[starts]
        if agg == "sum":
            vals = np.add.reduceat(ent["sum"][order], starts)
        elif agg == "count":
            vals = np.add.reduceat(ent["count"][order], starts)
        elif agg == "mean":
            vals = np.add.reduceat(ent["sum"][order], starts) / np.add.reduceat(
                ent["count"][order], starts
            )
        elif agg == "min":
            vals = np.minimum.reduceat(ent["min"][order], starts)
        elif agg == "max":
            vals = np.maximum.reduceat(ent["max"][order], starts)
        else:  # last: the segment tail is (newest last_t, then highest rank)
            vals = ent["last_v"][order][ends - 1]
    times = grid_t0 + (out_b - b0) * step
    return _group_series(labels, out_g, times, vals)


def _assemble_rate(
    labels: Sequence[GroupLabels],
    ent: Dict[str, np.ndarray],
    grid_t0: float,
    b0: int,
    step: float,
) -> List[ResultSeries]:
    """Windowed rate from maintained increases.

    Pass 1 applies the per-series window correction: the first non-empty
    bin of each series drops the increase carried in by its first sample
    (that sample's predecessor lies outside the window, which the batch
    engine never pairs), and counts it as touched only when the bin has
    a second sample.  Pass 2 pools per ``(group, bin)`` in member-rank
    order, matching the batch engine's per-series accumulation order.
    """
    gidx = ent["gidx"]
    if gidx.size == 0:
        return []
    order = np.lexsort((ent["bin"], ent["rank"], gidx))
    g = gidx[order]
    r = ent["rank"][order]
    b = ent["bin"][order]
    inc = ent["inc"][order].copy()
    cnt = ent["count"][order]
    newser = np.empty(g.size, dtype=bool)
    newser[0] = True
    newser[1:] = (g[1:] != g[:-1]) | (r[1:] != r[:-1])
    inc[newser] -= ent["first_inc"][order][newser]
    touched = np.where(newser, cnt > 1.0, cnt > 0.0)
    order2 = np.lexsort((r, b, g))
    g2 = g[order2]
    b2 = b[order2]
    seg = np.empty(g2.size, dtype=bool)
    seg[0] = True
    seg[1:] = (g2[1:] != g2[:-1]) | (b2[1:] != b2[:-1])
    starts, _ = _seg_bounds(seg)
    pooled = np.add.reduceat(inc[order2], starts)
    any_touched = np.add.reduceat(touched[order2].astype(np.float64), starts) > 0.0
    out_g = g2[starts][any_touched]
    out_b = b2[starts][any_touched]
    if out_g.size == 0:
        return []
    times = grid_t0 + (out_b - b0) * step
    return _group_series(labels, out_g, times, pooled[any_touched] / step)


class StandingQueryEngine:
    """Serving layer for standing queries: registration, plans, reads.

    Wraps a batch engine (single-store or federated); ``query`` returns
    a :class:`QueryResult` with ``source="standing"`` when the
    registered state covers the request, or ``None`` so the caller falls
    back to the batch engine (cold shapes, percentiles, instant queries,
    windows older than the bin ring — where eviction hands over to the
    rollup tiers).
    """

    #: extra bin slots beyond one window: absorbs grid phase plus ingest
    #: running ahead of the read frontier
    SLACK_BINS = 4

    def __init__(self, engine: QueryEngine, provider=None, *, max_shapes: int = 64) -> None:
        self.engine = engine
        self.store = engine.store
        if provider is None:
            maker = getattr(engine, "make_standing_provider", None)
            provider = maker() if maker is not None else StoreStandingProvider(engine.store)
        self.provider = provider
        self.max_shapes = int(max_shapes)
        self.shapes: Dict[MetricQuery, float] = {}
        self.registered_total = 0
        self.reads_served = 0
        self.snapshot_hits = 0
        self.scan_fallbacks = 0
        self._plans: Dict[MetricQuery, Tuple[int, tuple]] = {}
        self._snaps: Dict[MetricQuery, Tuple[tuple, QueryResult]] = {}

    # ------------------------------------------------------- registration
    @staticmethod
    def eligible(q: MetricQuery) -> bool:
        """Shapes the partial algebra can maintain incrementally."""
        return (
            q.step_s is not None
            and q.range_s is not None
            and (q.agg in PARTIAL_AGGS or q.agg == "rate")
        )

    def register(self, q: Union[str, MetricQuery]) -> bool:
        """Compile ``q`` into maintained state; True when registered."""
        if isinstance(q, str):
            q = self.engine.parse(q)
        if q in self.shapes:
            return True
        if not self.eligible(q) or len(self.shapes) >= self.max_shapes:
            return False
        n_bins = int(math.floor(q.range_s / q.step_s)) + 1
        self.provider.register(
            q.metric, q.step_s, n_bins + 1 + self.SLACK_BINS, want_rate=q.agg == "rate"
        )
        self.shapes[q] = q.step_s
        self.registered_total += 1
        self._snaps.clear()  # provider state may have been rebuilt
        return True

    # -------------------------------------------------------------- reads
    def query(self, q: MetricQuery, *, at: float) -> Optional[QueryResult]:
        """Serve ``q`` from standing state, or ``None`` for batch fallback."""
        if q not in self.shapes:
            return None
        if TRACER.enabled:
            with TRACER.span("standing.read", metric=q.metric):
                return self._query(q, at=at)
        return self._query(q, at=at)

    def _query(self, q: MetricQuery, *, at: float) -> Optional[QueryResult]:
        version = (
            at,
            self.store.metric_epoch(q.metric),
            self.store.series_generation(q.metric),
        )
        snap = self._snaps.get(q)
        if snap is not None and snap[0] == version:
            self.snapshot_hits += 1
            return snap[1]
        result = self._read(q, float(at))
        if result is None:
            self.scan_fallbacks += 1
            return None
        self._snaps[q] = (version, result)
        self.reads_served += 1
        return result

    def clear_snapshots(self) -> None:
        """Drop memoized per-``(at, epoch)`` results.

        Benchmarks re-reading the same evaluation points call this
        between repeats so they measure the merge path, not dict hits.
        """
        self._snaps.clear()

    def _plan(self, q: MetricQuery) -> tuple:
        gen = self.store.series_generation(q.metric)
        hit = self._plans.get(q)
        if hit is not None and hit[0] == gen:
            return hit[1]
        keys = self.engine.select(q)
        groups: Dict[GroupLabels, List[SeriesKey]] = {}
        for key in keys:
            groups.setdefault(q.group_key(key), []).append(key)
        labels = sorted(groups)
        flat_keys: List[SeriesKey] = []
        gidxs: List[int] = []
        ranks: List[int] = []
        for gi, lab in enumerate(labels):
            for rank, key in enumerate(sorted(groups[lab], key=str)):
                flat_keys.append(key)
                gidxs.append(gi)
                ranks.append(rank)
        plan = (
            tuple(labels),
            flat_keys,
            np.asarray(gidxs, dtype=np.int64),
            np.asarray(ranks, dtype=np.int64),
        )
        if len(self._plans) > 4096:
            self._plans.clear()
        self._plans[q] = (gen, plan)
        return plan

    def _read(self, q: MetricQuery, at: float) -> Optional[QueryResult]:
        step = q.step_s
        t1 = at
        t0 = t1 - q.range_s
        grid_t0, n_bins = QueryEngine._grid(t0, t1, step)
        b0 = int(math.floor(t0 / step))
        b1 = b0 + n_bins - 1
        labels, keys, gidxs, ranks = self._plan(q)
        ent = self.provider.entries(
            q.metric, step, keys, gidxs, ranks, b0, b1, want_rate=q.agg == "rate"
        )
        if ent is None:
            return None
        if q.agg == "rate":
            series = _assemble_rate(labels, ent, grid_t0, b0, step)
        else:
            series = _assemble_partial(labels, ent, q.agg, grid_t0, b0, step)
        return QueryResult(q, t0, t1, tuple(series), "standing")

    def stats(self) -> Dict[str, float]:
        out = {
            "registered_shapes": float(len(self.shapes)),
            "reads_served": float(self.reads_served),
            "snapshot_hits": float(self.snapshot_hits),
            "scan_fallbacks": float(self.scan_fallbacks),
        }
        for k, v in self.provider.stats().items():
            out[k] = v
        return out
