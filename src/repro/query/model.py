"""Declarative query model for the metric serving layer.

A :class:`MetricQuery` names *what* to compute — metric, label
selection, time range, bin step, aggregator, and grouping — and leaves
*how* (raw scan vs. rollup tier, caching) to the engine.  Queries have a
canonical compact string form::

    mean(node_cpu_util{node=~"n0.*"}[300s] by 30s) group by (node)

which :func:`repro.query.parser.parse_query` round-trips.

Semantics (shared by the engine and the brute-force reference):

* **Selection** — series of ``metric`` whose labels satisfy every
  matcher (``=``, ``!=``, ``=~``, ``!~``; regexes are fully anchored).
* **Grouping** — matching series partition by their ``group_by`` label
  values (missing label → ``""``); empty ``group_by`` pools everything
  into one output series.
* **Range queries** (``step_s`` set) use half-open bins aligned to the
  absolute time grid: bin ``k`` covers ``[k·step, (k+1)·step)`` and the
  evaluated window is every bin overlapping ``[t0, t1]``.  Grid
  alignment is what makes rollup-tier serving exact.
* **Instant queries** (``step_s`` unset) aggregate the inclusive window
  ``[t0, t1]`` into a single value stamped at ``t0``.
* **Aggregation** pools samples across the group's series (``mean``,
  ``sum``, ``min``, ``max``, ``count``, ``last``, ``p50/p95/p99``), or
  for ``rate`` sums per-series counter-reset-aware increase rates.
* Empty bins and sample-less groups are dropped.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from functools import lru_cache
from typing import FrozenSet, Optional, Tuple

from repro.query.kernels import ALL_AGGS
from repro.telemetry.metric import SeriesKey

#: Every aggregator a query may name (kernel aggs plus counter rate).
QUERY_AGGS = ALL_AGGS + ("rate",)

_MATCH_OPS = ("=", "!=", "=~", "!~")

_NAME_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*\Z")

#: a regex that is really just ``lit1|lit2|...`` — no metacharacters
_LITERAL_ALT_RE = re.compile(r"[A-Za-z0-9_:-]+(?:\|[A-Za-z0-9_:-]+)*\Z")


@lru_cache(maxsize=4096)
def _literal_alternates(pattern: str) -> Optional[FrozenSet[str]]:
    """The alternate set of a pure literal alternation, else ``None``.

    Selection regexes from watch fleets are overwhelmingly literal
    alternations of member names; fullmatch against one is exactly set
    membership, which turns the per-series regex engine call into a
    hash lookup."""
    if _LITERAL_ALT_RE.match(pattern):
        return frozenset(pattern.split("|"))
    return None


@dataclass(frozen=True)
class LabelMatcher:
    """One label constraint: ``name op "value"``."""

    name: str
    op: str
    value: str

    def __post_init__(self) -> None:
        if self.op not in _MATCH_OPS:
            raise ValueError(f"unknown matcher op {self.op!r}; choose from {_MATCH_OPS}")
        if not _NAME_RE.match(self.name):
            raise ValueError(f"invalid label name {self.name!r}")
        if self.op in ("=~", "!~"):
            try:
                re.compile(self.value)
            except re.error as exc:
                raise ValueError(f"invalid regex {self.value!r}: {exc}") from None

    def matches(self, label_value: Optional[str]) -> bool:
        """Test one series' label value (``None`` = label absent → "")."""
        actual = label_value if label_value is not None else ""
        if self.op == "=":
            return actual == self.value
        if self.op == "!=":
            return actual != self.value
        alts = _literal_alternates(self.value)
        if alts is not None:
            matched = actual in alts
        else:
            matched = re.fullmatch(self.value, actual) is not None
        return matched if self.op == "=~" else not matched

    def __str__(self) -> str:
        return f'{self.name}{self.op}"{self.value}"'


@dataclass(frozen=True)
class MetricQuery:
    """A declarative metric query (see module docstring for semantics)."""

    metric: str
    agg: str = "mean"
    matchers: Tuple[LabelMatcher, ...] = ()
    range_s: Optional[float] = None  # window length; None = full retention
    step_s: Optional[float] = None  # bin width; None = instant query
    group_by: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not _NAME_RE.match(self.metric):
            raise ValueError(f"invalid metric name {self.metric!r}")
        if self.agg not in QUERY_AGGS:
            raise ValueError(f"unknown aggregator {self.agg!r}; choose from {sorted(QUERY_AGGS)}")
        if self.range_s is not None and self.range_s <= 0:
            raise ValueError("range_s must be positive")
        if self.step_s is not None and self.step_s <= 0:
            raise ValueError("step_s must be positive")
        for name in self.group_by:
            if not _NAME_RE.match(name):
                raise ValueError(f"invalid group_by label {name!r}")

    # ----------------------------------------------------------- selection
    def matches(self, key: SeriesKey) -> bool:
        """Whether one series key satisfies metric name and all matchers."""
        if key.metric != self.metric:
            return False
        return all(m.matches(key.label(m.name)) for m in self.matchers)

    def group_key(self, key: SeriesKey) -> Tuple[Tuple[str, str], ...]:
        """The output-series identity of one input series."""
        return tuple((name, key.label(name) or "") for name in self.group_by)

    # ---------------------------------------------------------- canonical
    def to_expr(self) -> str:
        """Canonical compact string form (parses back to an equal query)."""
        sel = self.metric
        if self.matchers:
            sel += "{" + ",".join(str(m) for m in self.matchers) + "}"
        if self.range_s is not None:
            sel += f"[{_fmt_seconds(self.range_s)}]"
        if self.step_s is not None:
            sel += f" by {_fmt_seconds(self.step_s)}"
        expr = f"{self.agg}({sel})"
        if self.group_by:
            expr += " group by (" + ",".join(self.group_by) + ")"
        return expr

    def __str__(self) -> str:
        return self.to_expr()


def _fmt_seconds(seconds: float) -> str:
    """Render a duration compactly (``90.0`` → ``"90s"``)."""
    if seconds == int(seconds):
        return f"{int(seconds)}s"
    return f"{seconds}s"
