"""Metric query engine (the serving layer between telemetry and analytics).

A declarative query model with a compact string syntax::

    mean(node_cpu_util{node=~"n0.*"}[300s] by 30s) group by (node)

executed by a vectorized planner/executor (:class:`QueryEngine`) over
the raw :class:`~repro.telemetry.tsdb.TimeSeriesStore`, continuously
folded rollup tiers (:class:`RollupManager`), and an LRU result cache
(:class:`QueryCache`).  See :mod:`repro.query.model` for the exact
semantics and :mod:`repro.query.reference` for the brute-force oracle.
"""

from repro.query.cache import QueryCache
from repro.query.engine import QueryEngine, QueryResult, ResultSeries
from repro.query.kernels import (
    ALL_AGGS,
    PARTIAL_AGGS,
    SAMPLE_ONLY_AGGS,
    PartialBins,
    counter_increase,
    grouped_aggregate,
)
from repro.query.model import LabelMatcher, MetricQuery, QUERY_AGGS
from repro.query.parser import QueryParseError, parse_duration, parse_query
from repro.query.reference import evaluate_naive
from repro.query.rollup import RollupManager, RollupTier

__all__ = [
    "ALL_AGGS",
    "LabelMatcher",
    "MetricQuery",
    "PARTIAL_AGGS",
    "PartialBins",
    "QUERY_AGGS",
    "QueryCache",
    "QueryEngine",
    "QueryParseError",
    "QueryResult",
    "ResultSeries",
    "RollupManager",
    "RollupTier",
    "SAMPLE_ONLY_AGGS",
    "counter_increase",
    "evaluate_naive",
    "grouped_aggregate",
    "parse_duration",
    "parse_query",
]
