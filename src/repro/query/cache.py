"""LRU result cache for the query engine.

Dashboards and autonomy loops re-issue the same handful of expressions
on a fixed cadence; caching keyed on the *canonical* expression plus a
**quantized** evaluation window turns that steady state into pure hits.
Windows are quantized to the query step (instant queries to
``instant_quantum_s``), so two evaluations issued within the same
quantum share an entry.  Staleness is bounded by **version-keying**:
the engine passes the store's per-metric write epoch into
:meth:`QueryCache.make_key`, so the moment new samples for a metric
commit, every subsequent evaluation misses the pre-commit entries and
recomputes — a cached result can never hide data that has already
landed inside its window.

Cached arrays are frozen (``writeable = False``) so one consumer cannot
corrupt another's hit.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Hashable, Tuple


class QueryCache:
    """Bounded LRU of query results with hit/miss accounting."""

    def __init__(self, max_entries: int = 256) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = int(max_entries)
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def make_key(
        expr: str, t0: float, t1: float, quantum: float, version: Hashable = 0
    ) -> Tuple[str, int, int, Hashable]:
        """Cache key: canonical expression + quantized window + data version.

        ``version`` is the writer-side version of the queried data —
        the store's per-metric write epoch, extended by the engine with
        the rollup fold counter for fold-dependent results; any bump
        invalidates every earlier entry for the expression without an
        explicit purge.
        """
        q = quantum if quantum > 0 else 1.0
        return (expr, int(t0 // q), int(t1 // q), version)

    def get(self, key: Hashable):
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: Hashable, result) -> None:
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = result
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1

    def invalidate(self) -> None:
        """Drop every entry (e.g. after bulk backfill into the store)."""
        self._entries.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        return {
            "entries": float(len(self._entries)),
            "hits": float(self.hits),
            "misses": float(self.misses),
            "evictions": float(self.evictions),
            "hit_rate": self.hit_rate,
        }
