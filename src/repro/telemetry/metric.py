"""Metric identity: specs, kinds, and series keys.

A *metric* is a named quantity with a unit and kind (gauge or counter);
a *series* is one labelled instance of a metric (e.g. ``node_power_watts``
on ``node=n012``).  ``SeriesKey`` is the hashable identity used throughout
the TSDB and the collection pipeline.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple


class MetricKind(enum.Enum):
    """Semantic kind of a metric.

    GAUGE    — instantaneous value (power, temperature, utilization).
    COUNTER  — monotonically non-decreasing count (bytes written, steps).
    """

    GAUGE = "gauge"
    COUNTER = "counter"


@dataclass(frozen=True)
class MetricSpec:
    """Declaration of a metric: its name, unit, kind, and documentation."""

    name: str
    unit: str
    kind: MetricKind = MetricKind.GAUGE
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("metric name must be non-empty")


@dataclass(frozen=True)
class SeriesKey:
    """Identity of one time series: metric name plus sorted label pairs."""

    metric: str
    labels: Tuple[Tuple[str, str], ...] = ()

    @staticmethod
    def of(metric: str, **labels: str) -> "SeriesKey":
        """Convenience constructor: ``SeriesKey.of("power", node="n01")``."""
        return SeriesKey(metric, tuple(sorted((k, str(v)) for k, v in labels.items())))

    def label(self, key: str) -> Optional[str]:
        """Value of one label, or ``None`` if absent."""
        for k, v in self.labels:
            if k == key:
                return v
        return None

    def with_labels(self, **extra: str) -> "SeriesKey":
        """A new key with additional/overridden labels."""
        merged: Dict[str, str] = dict(self.labels)
        merged.update({k: str(v) for k, v in extra.items()})
        return SeriesKey.of(self.metric, **merged)

    def __str__(self) -> str:
        if not self.labels:
            return self.metric
        inner = ",".join(f"{k}={v}" for k, v in self.labels)
        return f"{self.metric}{{{inner}}}"


class MetricCatalog:
    """Registry of metric specs — the monitoring system's schema.

    Registering a spec twice with identical content is idempotent;
    conflicting re-registration raises, which catches unit mismatches
    between producers early.
    """

    def __init__(self, specs: Iterable[MetricSpec] = ()) -> None:
        self._specs: Dict[str, MetricSpec] = {}
        for spec in specs:
            self.register(spec)

    def register(self, spec: MetricSpec) -> MetricSpec:
        existing = self._specs.get(spec.name)
        if existing is not None:
            if existing != spec:
                raise ValueError(
                    f"metric {spec.name!r} already registered with different spec: "
                    f"{existing} vs {spec}"
                )
            return existing
        self._specs[spec.name] = spec
        return spec

    def get(self, name: str) -> MetricSpec:
        try:
            return self._specs[name]
        except KeyError:
            raise KeyError(f"unknown metric {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __len__(self) -> int:
        return len(self._specs)

    def names(self) -> list[str]:
        return sorted(self._specs)


#: Metrics every simulated cluster exports, shared by substrates and loops.
STANDARD_METRICS: Tuple[MetricSpec, ...] = (
    MetricSpec("node_cpu_util", "fraction", MetricKind.GAUGE, "Per-node CPU utilization 0..1"),
    MetricSpec("node_gpu_util", "fraction", MetricKind.GAUGE, "Per-node GPU utilization 0..1"),
    MetricSpec("node_mem_used_gb", "GiB", MetricKind.GAUGE, "Per-node memory in use"),
    MetricSpec("node_power_watts", "W", MetricKind.GAUGE, "Per-node instantaneous power"),
    MetricSpec("node_temp_celsius", "C", MetricKind.GAUGE, "Per-node hottest-sensor temperature"),
    MetricSpec("job_progress_steps", "steps", MetricKind.COUNTER, "Application progress marker"),
    MetricSpec("job_io_write_mbps", "MB/s", MetricKind.GAUGE, "Per-job achieved write bandwidth"),
    MetricSpec("job_io_read_mbps", "MB/s", MetricKind.GAUGE, "Per-job achieved read bandwidth"),
    MetricSpec("ost_write_mbps", "MB/s", MetricKind.GAUGE, "Per-OST achieved write bandwidth"),
    MetricSpec("ost_pending_ops", "ops", MetricKind.GAUGE, "Per-OST queued operations"),
    MetricSpec("fs_load_fraction", "fraction", MetricKind.GAUGE, "Filesystem aggregate load 0..1"),
    MetricSpec("sched_queue_length", "jobs", MetricKind.GAUGE, "Scheduler pending-queue length"),
)


def standard_catalog() -> MetricCatalog:
    """A catalog pre-populated with :data:`STANDARD_METRICS`."""
    return MetricCatalog(STANDARD_METRICS)
