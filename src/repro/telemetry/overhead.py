"""Monitoring overhead accounting.

The paper's Section IV argues for co-locating analytics near compute; the
perennial counterargument is monitoring overhead.  This model aggregates
the simulated costs already tracked by sampling front-ends and
aggregators into the two numbers operators ask for: fraction of node
compute consumed, and network volume per node per second.

Both sampling front-ends work here: a per-node
:class:`~repro.telemetry.sampler.Sampler` represents one agent, while a
columnar :class:`~repro.telemetry.sampler.SamplingGroup` represents one
agent per member bank (``agent_count``), so CPU fractions stay
per-node regardless of how sampling is scheduled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.telemetry.collector import Aggregator


@dataclass(frozen=True)
class OverheadReport:
    """Aggregated monitoring cost over an observation window."""

    window_s: float
    n_agents: int
    cpu_seconds: float
    cpu_fraction_per_agent: float
    bytes_total: int
    bytes_per_agent_per_s: float
    samples_emitted: int
    samples_dropped: int

    @property
    def drop_rate(self) -> float:
        total = self.samples_emitted + self.samples_dropped
        return self.samples_dropped / total if total else 0.0


class MonitoringOverheadModel:
    """Collects overhead from pipeline components into an :class:`OverheadReport`.

    ``samplers`` may mix :class:`Sampler` and :class:`SamplingGroup`
    instances — anything exposing ``agent_count``, ``overhead_cpu_s``,
    ``samples_emitted``, and ``samples_dropped``.
    """

    def __init__(self, samplers: Iterable, aggregators: Iterable[Aggregator]) -> None:
        self.samplers = list(samplers)
        self.aggregators = list(aggregators)

    def report(self, window_s: float) -> OverheadReport:
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        n_agents = sum(getattr(s, "agent_count", 1) for s in self.samplers)
        n = max(1, n_agents)
        cpu = sum(s.overhead_cpu_s for s in self.samplers)
        emitted = sum(s.samples_emitted for s in self.samplers)
        dropped = sum(s.samples_dropped for s in self.samplers)
        nbytes = sum(a.bytes_forwarded for a in self.aggregators)
        return OverheadReport(
            window_s=window_s,
            n_agents=n_agents,
            cpu_seconds=cpu,
            cpu_fraction_per_agent=cpu / (n * window_s),
            bytes_total=nbytes,
            bytes_per_agent_per_s=nbytes / (n * window_s),
            samples_emitted=emitted,
            samples_dropped=dropped,
        )
