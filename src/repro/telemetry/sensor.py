"""Sensor abstraction.

A sensor binds a :class:`~repro.telemetry.metric.SeriesKey` to a readout
function over simulated system state.  Samplers poll sensors; sensors
never push.  Measurement noise and failure (returning ``None``) are
modelled here because they are properties of the sensing hardware, while
sampling jitter/dropout are modelled in the sampler (properties of the
collection agent).
"""

from __future__ import annotations

import abc
from typing import Callable, Optional

import numpy as np

from repro.telemetry.metric import SeriesKey


class Sensor(abc.ABC):
    """One readable telemetry source."""

    def __init__(self, key: SeriesKey) -> None:
        self.key = key

    @abc.abstractmethod
    def read(self, now: float) -> Optional[float]:
        """Current value, or ``None`` if the reading is unavailable."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.key}>"


class CallableSensor(Sensor):
    """Sensor wrapping a plain callable, with optional Gaussian noise.

    ``fn`` receives the current time and returns the true value;
    ``noise_std`` adds zero-mean measurement noise drawn from ``rng``.
    ``fault_prob`` models a flaky sensor that occasionally fails to read.
    """

    def __init__(
        self,
        key: SeriesKey,
        fn: Callable[[float], Optional[float]],
        *,
        noise_std: float = 0.0,
        fault_prob: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(key)
        if noise_std < 0:
            raise ValueError("noise_std must be >= 0")
        if not 0.0 <= fault_prob <= 1.0:
            raise ValueError("fault_prob must be within [0, 1]")
        if (noise_std > 0 or fault_prob > 0) and rng is None:
            raise ValueError("rng required when noise_std or fault_prob is set")
        self._fn = fn
        self.noise_std = noise_std
        self.fault_prob = fault_prob
        self._rng = rng

    def read(self, now: float) -> Optional[float]:
        if self.fault_prob > 0 and self._rng.random() < self.fault_prob:
            return None
        value = self._fn(now)
        if value is None:
            return None
        if self.noise_std > 0:
            value = float(value) + float(self._rng.normal(0.0, self.noise_std))
        return float(value)


class ConstantSensor(Sensor):
    """Sensor that always reads a fixed value (tests and fillers)."""

    def __init__(self, key: SeriesKey, value: float) -> None:
        super().__init__(key)
        self.value = float(value)

    def read(self, now: float) -> Optional[float]:
        return self.value
