"""Sensor abstraction.

A sensor binds a :class:`~repro.telemetry.metric.SeriesKey` to a readout
function over simulated system state.  Samplers poll sensors; sensors
never push.  Measurement noise and failure (returning ``None``) are
modelled here because they are properties of the sensing hardware, while
sampling jitter/dropout are modelled in the sampler (properties of the
collection agent).
"""

from __future__ import annotations

import abc
from typing import Callable, Optional, Sequence, Union

import numpy as np

from repro.telemetry.batch import SampleBatch, SeriesRegistry
from repro.telemetry.metric import SeriesKey


class Sensor(abc.ABC):
    """One readable telemetry source."""

    def __init__(self, key: SeriesKey) -> None:
        self.key = key

    @abc.abstractmethod
    def read(self, now: float) -> Optional[float]:
        """Current value, or ``None`` if the reading is unavailable."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.key}>"


class CallableSensor(Sensor):
    """Sensor wrapping a plain callable, with optional Gaussian noise.

    ``fn`` receives the current time and returns the true value;
    ``noise_std`` adds zero-mean measurement noise drawn from ``rng``.
    ``fault_prob`` models a flaky sensor that occasionally fails to read.
    """

    def __init__(
        self,
        key: SeriesKey,
        fn: Callable[[float], Optional[float]],
        *,
        noise_std: float = 0.0,
        fault_prob: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(key)
        if noise_std < 0:
            raise ValueError("noise_std must be >= 0")
        if not 0.0 <= fault_prob <= 1.0:
            raise ValueError("fault_prob must be within [0, 1]")
        if (noise_std > 0 or fault_prob > 0) and rng is None:
            raise ValueError("rng required when noise_std or fault_prob is set")
        self._fn = fn
        self.noise_std = noise_std
        self.fault_prob = fault_prob
        self._rng = rng

    def read(self, now: float) -> Optional[float]:
        if self.fault_prob > 0 and self._rng.random() < self.fault_prob:
            return None
        value = self._fn(now)
        if value is None:
            return None
        if self.noise_std > 0:
            value = float(value) + float(self._rng.normal(0.0, self.noise_std))
        return float(value)


class ConstantSensor(Sensor):
    """Sensor that always reads a fixed value (tests and fillers)."""

    def __init__(self, key: SeriesKey, value: float) -> None:
        super().__init__(key)
        self.value = float(value)

    def read(self, now: float) -> Optional[float]:
        return self.value


class SensorBank:
    """A group of series evaluated in one vectorized call per round.

    Where a :class:`Sensor` produces one float per read, a bank produces
    the whole node's sampling round as a
    :class:`~repro.telemetry.batch.SampleBatch`: ``read_fn(now)`` returns
    an array of length ``len(keys)``, and measurement noise and sensor
    faults are drawn as arrays from the RNG stream instead of one scalar
    draw per sensor.  ``NaN`` entries in the readout mark unavailable
    readings (the array equivalent of a sensor returning ``None``).

    ``noise_std`` and ``fault_prob`` accept either a scalar applied to
    every series or a per-series array.  Per read, fault draws happen
    before noise draws (matching :class:`CallableSensor` ordering).
    """

    def __init__(
        self,
        keys: Sequence[SeriesKey],
        read_fn: Callable[[float], np.ndarray],
        *,
        registry: SeriesRegistry,
        noise_std: Union[float, np.ndarray] = 0.0,
        fault_prob: Union[float, np.ndarray] = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if not keys:
            raise ValueError("a sensor bank needs at least one series")
        self.keys = list(keys)
        self.series_ids = registry.ids_for(self.keys)
        self._read_fn = read_fn
        self.noise_std = np.broadcast_to(
            np.asarray(noise_std, dtype=np.float64), (len(self.keys),)
        )
        self.fault_prob = np.broadcast_to(
            np.asarray(fault_prob, dtype=np.float64), (len(self.keys),)
        )
        if np.any(self.noise_std < 0):
            raise ValueError("noise_std must be >= 0")
        if np.any((self.fault_prob < 0) | (self.fault_prob > 1)):
            raise ValueError("fault_prob must be within [0, 1]")
        self._has_noise = bool(np.any(self.noise_std > 0))
        self._has_faults = bool(np.any(self.fault_prob > 0))
        #: True when readouts pass through untransformed — the sampling
        #: group may then call ``read_fn`` directly after one validated
        #: round (see SamplingGroup._collect_round)
        self.is_plain = not (self._has_noise or self._has_faults)
        if not self.is_plain and rng is None:
            raise ValueError("rng required when noise_std or fault_prob is set")
        self._rng = rng

    @property
    def read_fn(self) -> Callable[[float], np.ndarray]:
        return self._read_fn

    @classmethod
    def from_sensors(
        cls, sensors: Sequence[Sensor], registry: SeriesRegistry
    ) -> "SensorBank":
        """Adapter: wrap legacy per-object sensors into a bank.

        The readout still loops the sensors in Python (they own their
        noise/fault modelling), but the round leaves as one batch, so
        everything downstream is columnar.
        """
        sensors = list(sensors)

        def read_all(now: float) -> np.ndarray:
            out = np.empty(len(sensors), dtype=np.float64)
            for i, sensor in enumerate(sensors):
                value = sensor.read(now)
                out[i] = np.nan if value is None else value
            return out

        return cls([s.key for s in sensors], read_all, registry=registry)

    @property
    def size(self) -> int:
        return len(self.keys)

    def read_values(self, now: float, *, copy: bool = True) -> np.ndarray:
        """Raw vectorized readout: float64 array of ``size`` values with
        noise/faults applied; ``NaN`` marks unavailable.

        With ``copy=False`` the readout function's array may be returned
        as-is (when no fault/noise transform forces a copy) — callers
        must consume it before the next read.  The sampling group uses
        this since it immediately copies into its round column.
        """
        if copy or self._has_faults:
            values = np.array(self._read_fn(now), dtype=np.float64)
        else:
            values = np.asarray(self._read_fn(now), dtype=np.float64)
        if values.shape != (len(self.keys),):
            raise ValueError(
                f"read_fn returned shape {values.shape}, expected ({len(self.keys)},)"
            )
        if self._has_faults:
            faulted = self._rng.random(values.size) < self.fault_prob
            values[faulted] = np.nan
        if self._has_noise:
            values = values + self._rng.normal(0.0, 1.0, values.size) * self.noise_std
        return values

    def read(self, now: float) -> SampleBatch:
        """One sampling round as a batch (unavailable readings dropped)."""
        values = self.read_values(now)
        valid = np.isfinite(values)
        if valid.all():
            ids, vals = self.series_ids, values
        else:
            ids, vals = self.series_ids[valid], values[valid]
        return SampleBatch._trusted(ids, np.full(ids.size, now, dtype=np.float64), vals)
