"""Columnar sample movement: struct-of-arrays batches and series interning.

The per-object ingest path (one :class:`Sample` dataclass per sensor per
tick) caps pipeline throughput at Python object-churn speed.  Production
collectors (LDMS transport, DCDB Wintermute) move telemetry as packed
columnar frames instead; this module provides the equivalents:

* :class:`SeriesRegistry` — interns :class:`~repro.telemetry.metric.SeriesKey`
  objects to dense integer ids, so hot-path code moves ``int64`` arrays
  and resolves keys only at the edges (sensor registration, store
  commit).
* :class:`SampleBatch` — one struct-of-arrays record ``(series_ids,
  times, values)`` carrying an entire sampling round (or the
  concatenation of many) through the aggregation tree.

:class:`Sample` remains the legacy per-point record; list-of-``Sample``
submissions are accepted everywhere as a thin adapter and converted to
batches at the collection root.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.telemetry.metric import SeriesKey


@dataclass(frozen=True)
class Sample:
    """One collected data point (legacy per-object pipeline currency)."""

    key: SeriesKey
    time: float
    value: float


def sort_series_columns(
    series_ids: np.ndarray, times: np.ndarray, values: np.ndarray
) -> tuple:
    """Stable-sort parallel columns by ``(series_id, time)``.

    Returns ``(ids, times, values, starts, ends)`` where ``starts``/
    ``ends`` delimit one ``[lo, hi)`` segment per distinct series, in id
    order.  This is *the* grouping idiom of the columnar pipeline —
    store commits and rollup folds both run on its output, so the
    sort-stability and segmentation invariants live in one place.
    """
    order = np.lexsort((times, series_ids))
    ids_s = series_ids[order]
    times_s = times[order]
    values_s = values[order]
    n = ids_s.size
    if n and ids_s[0] == ids_s[-1]:  # single-series fast path
        starts = np.zeros(1, dtype=np.int64)
        ends = np.array([n], dtype=np.int64)
    else:
        bounds = np.flatnonzero(ids_s[1:] != ids_s[:-1]) + 1
        starts = np.concatenate(([0], bounds))
        ends = np.concatenate((bounds, [n]))
    return ids_s, times_s, values_s, starts, ends


class SeriesRegistry:
    """Bidirectional intern table ``SeriesKey ↔ int`` (dense ids from 0).

    Ids are assigned on first sight and never recycled; the registry is
    append-only, so an id handed to a sensor bank stays valid for the
    lifetime of the store that owns the registry.
    """

    __slots__ = ("_ids", "_keys")

    def __init__(self) -> None:
        self._ids: Dict[SeriesKey, int] = {}
        self._keys: List[SeriesKey] = []

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, key: SeriesKey) -> bool:
        return key in self._ids

    def id_for(self, key: SeriesKey) -> int:
        """The interned id of ``key``, assigning a fresh one if needed."""
        sid = self._ids.get(key)
        if sid is None:
            sid = len(self._keys)
            self._ids[key] = sid
            self._keys.append(key)
        return sid

    def get(self, key: SeriesKey) -> Optional[int]:
        """The interned id of ``key`` without interning; ``None`` if unseen."""
        return self._ids.get(key)

    def ids_for(self, keys: Iterable[SeriesKey]) -> np.ndarray:
        """Vector of interned ids for ``keys`` (int64)."""
        return np.fromiter((self.id_for(k) for k in keys), dtype=np.int64)

    def key_for(self, sid: int) -> SeriesKey:
        """The key behind an id; raises ``IndexError`` for unknown ids."""
        if sid < 0:
            raise IndexError(f"series id must be non-negative, got {sid}")
        return self._keys[sid]


class SampleBatch:
    """Struct-of-arrays record of samples: ``(series_ids, times, values)``.

    All three columns are parallel 1-D arrays; ``series_ids`` indexes a
    :class:`SeriesRegistry`.  Rows need not be sorted — the store groups
    and orders them on commit.  Instances are treated as immutable once
    submitted into the pipeline.
    """

    __slots__ = ("series_ids", "times", "values")

    def __init__(
        self,
        series_ids: np.ndarray,
        times: np.ndarray,
        values: np.ndarray,
    ) -> None:
        self.series_ids = np.asarray(series_ids, dtype=np.int64)
        self.times = np.asarray(times, dtype=np.float64)
        self.values = np.asarray(values, dtype=np.float64)
        if not (self.series_ids.shape == self.times.shape == self.values.shape):
            raise ValueError(
                "series_ids, times, values must be parallel 1-D arrays, got shapes "
                f"{self.series_ids.shape}/{self.times.shape}/{self.values.shape}"
            )
        if self.series_ids.ndim != 1:
            raise ValueError("batch columns must be 1-D")

    def __len__(self) -> int:
        return int(self.series_ids.size)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SampleBatch n={len(self)}>"

    @classmethod
    def _trusted(
        cls, series_ids: np.ndarray, times: np.ndarray, values: np.ndarray
    ) -> "SampleBatch":
        """Hot-path constructor for columns already known to be parallel
        1-D arrays of the right dtypes (skips validation)."""
        batch = object.__new__(cls)
        batch.series_ids = series_ids
        batch.times = times
        batch.values = values
        return batch

    @staticmethod
    def empty() -> "SampleBatch":
        return SampleBatch(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64), np.empty(0, dtype=np.float64)
        )

    @staticmethod
    def concat(batches: Sequence["SampleBatch"]) -> "SampleBatch":
        """One batch holding every row of ``batches``, in order."""
        if not batches:
            return SampleBatch.empty()
        if len(batches) == 1:
            return batches[0]
        return SampleBatch(
            np.concatenate([b.series_ids for b in batches]),
            np.concatenate([b.times for b in batches]),
            np.concatenate([b.values for b in batches]),
        )

    @staticmethod
    def from_samples(samples: Sequence[Sample], registry: SeriesRegistry) -> "SampleBatch":
        """Adapter: pack legacy per-object samples into one batch."""
        n = len(samples)
        if n == 0:
            return SampleBatch.empty()
        ids = np.fromiter((registry.id_for(s.key) for s in samples), dtype=np.int64, count=n)
        times = np.fromiter((s.time for s in samples), dtype=np.float64, count=n)
        values = np.fromiter((s.value for s in samples), dtype=np.float64, count=n)
        return SampleBatch(ids, times, values)

    def to_samples(self, registry: SeriesRegistry) -> List[Sample]:
        """Adapter: unpack into legacy per-object samples (tests, debug)."""
        return [
            Sample(registry.key_for(int(sid)), float(t), float(v))
            for sid, t, v in zip(self.series_ids, self.times, self.values)
        ]
