"""Synthetic telemetry generation.

Anomaly-detection and forecasting workloads need realistic signals with
known ground truth.  A :class:`SyntheticSeriesSpec` composes the signal
features observed in production HPC telemetry:

* a base level,
* diurnal and weekly seasonality,
* linear drift,
* AR(1) autocorrelated noise,
* injected spikes and level shifts (with recorded ground-truth times).

``render_series`` evaluates the spec on a time grid vectorized in NumPy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

DAY_S = 86_400.0
WEEK_S = 7 * DAY_S


@dataclass(frozen=True)
class SpikeSpec:
    """One injected transient: additive ``magnitude`` for ``duration`` s."""

    time: float
    magnitude: float
    duration: float = 60.0


@dataclass(frozen=True)
class LevelShiftSpec:
    """A persistent additive level change starting at ``time``."""

    time: float
    magnitude: float


@dataclass
class SyntheticSeriesSpec:
    """Composable synthetic-signal description with ground truth."""

    base: float = 100.0
    diurnal_amplitude: float = 0.0
    diurnal_phase: float = 0.0
    weekly_amplitude: float = 0.0
    drift_per_day: float = 0.0
    noise_std: float = 1.0
    ar1_coeff: float = 0.0
    spikes: List[SpikeSpec] = field(default_factory=list)
    level_shifts: List[LevelShiftSpec] = field(default_factory=list)
    clip_min: Optional[float] = None
    clip_max: Optional[float] = None

    def __post_init__(self) -> None:
        if not -1.0 < self.ar1_coeff < 1.0:
            raise ValueError("ar1_coeff must lie in (-1, 1) for stationarity")
        if self.noise_std < 0:
            raise ValueError("noise_std must be >= 0")

    def anomaly_times(self) -> List[float]:
        """Ground-truth event times (spikes + shifts), sorted."""
        return sorted([s.time for s in self.spikes] + [s.time for s in self.level_shifts])


def _ar1(n: int, coeff: float, std: float, rng: np.random.Generator) -> np.ndarray:
    """AR(1) noise with stationary variance ``std**2``."""
    if std == 0 or n == 0:
        return np.zeros(n)
    white = rng.normal(0.0, std * np.sqrt(1.0 - coeff * coeff), size=n) if coeff else None
    if not coeff:
        return rng.normal(0.0, std, size=n)
    out = np.empty(n)
    out[0] = rng.normal(0.0, std)
    for i in range(1, n):
        out[i] = coeff * out[i - 1] + white[i]
    return out


def render_series(
    times: np.ndarray,
    spec: SyntheticSeriesSpec,
    rng: np.random.Generator,
) -> np.ndarray:
    """Evaluate ``spec`` at ``times`` (seconds); returns the values array."""
    times = np.asarray(times, dtype=np.float64)
    values = np.full(times.shape, spec.base, dtype=np.float64)
    if spec.diurnal_amplitude:
        values += spec.diurnal_amplitude * np.sin(
            2 * np.pi * (times / DAY_S) + spec.diurnal_phase
        )
    if spec.weekly_amplitude:
        values += spec.weekly_amplitude * np.sin(2 * np.pi * times / WEEK_S)
    if spec.drift_per_day:
        values += spec.drift_per_day * (times / DAY_S)
    values += _ar1(times.size, spec.ar1_coeff, spec.noise_std, rng)
    for spike in spec.spikes:
        mask = (times >= spike.time) & (times < spike.time + spike.duration)
        values[mask] += spike.magnitude
    for shift in spec.level_shifts:
        values[times >= shift.time] += shift.magnitude
    if spec.clip_min is not None or spec.clip_max is not None:
        values = np.clip(values, spec.clip_min, spec.clip_max)
    return values


def node_power_spec(rng: np.random.Generator) -> SyntheticSeriesSpec:
    """A plausible per-node power signal (W) with diurnal load correlation."""
    return SyntheticSeriesSpec(
        base=float(rng.uniform(350, 450)),
        diurnal_amplitude=float(rng.uniform(30, 60)),
        diurnal_phase=float(rng.uniform(0, 2 * np.pi)),
        noise_std=float(rng.uniform(5, 12)),
        ar1_coeff=0.8,
        clip_min=120.0,
    )


def node_temperature_spec(rng: np.random.Generator) -> SyntheticSeriesSpec:
    """A plausible per-node temperature signal (°C)."""
    return SyntheticSeriesSpec(
        base=float(rng.uniform(55, 70)),
        diurnal_amplitude=float(rng.uniform(2, 5)),
        noise_std=float(rng.uniform(0.3, 1.0)),
        ar1_coeff=0.9,
        clip_min=20.0,
        clip_max=95.0,
    )
