"""Derived cluster-level metrics.

Site dashboards and global autonomy loops consume *aggregates* (total
power, mean utilization, queue depth), not per-node series.
``DerivedMetricsService`` periodically computes configurable aggregates
over the store's raw series and writes them back as first-class derived
series — the "analysis products become data" pattern of production MODA
stacks.  Aggregation goes through the query engine
(:class:`repro.query.QueryEngine`), i.e. each spec is evaluated as the
instant query ``agg(source_metric[window])``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

from repro.sim.engine import Engine, PeriodicTask
from repro.telemetry.metric import SeriesKey
from repro.telemetry.tsdb import TimeSeriesStore

if TYPE_CHECKING:  # deferred at runtime: telemetry must not import query eagerly
    from repro.query.engine import QueryEngine
    from repro.query.model import MetricQuery


@dataclass(frozen=True)
class DerivedMetricSpec:
    """One aggregate: source metric → ``agg`` over a window → output key."""

    source_metric: str
    agg: str  # any TimeSeriesStore aggregator: mean/sum/max/p95/...
    output: SeriesKey
    window_s: float = 60.0

    def __post_init__(self) -> None:
        if self.window_s <= 0:
            raise ValueError("window_s must be positive")

    def to_query(self) -> "MetricQuery":
        """The instant query this spec evaluates each tick."""
        from repro.query.model import MetricQuery

        return MetricQuery(self.source_metric, agg=self.agg, range_s=self.window_s)


class DerivedMetricsService:
    """Computes derived series on a fixed cadence."""

    def __init__(
        self,
        engine: Engine,
        store: TimeSeriesStore,
        specs: List[DerivedMetricSpec],
        *,
        period_s: float = 60.0,
        query_engine: Optional["QueryEngine"] = None,
    ) -> None:
        from repro.query.engine import QueryEngine

        if period_s <= 0:
            raise ValueError("period_s must be positive")
        if not specs:
            raise ValueError("need at least one derived metric spec")
        self.engine = engine
        self.store = store
        # Derived windows end at a fresh `now` every tick, so caching
        # would only accumulate dead entries — run the engine uncached.
        self.query_engine = (
            query_engine
            if query_engine is not None
            else QueryEngine(store, enable_cache=False)
        )
        self.specs = list(specs)
        self._queries = [spec.to_query() for spec in self.specs]
        self.period_s = period_s
        self.samples_written = 0
        self._task: Optional[PeriodicTask] = None

    def start(self, *, start_at: Optional[float] = None) -> None:
        if self._task is not None and not self._task.stopped:
            raise RuntimeError("derived metrics service already started")
        self._task = self.engine.every(
            self.period_s, self._compute, start_at=start_at, label="derived-metrics"
        )

    def stop(self) -> None:
        if self._task is not None:
            self._task.stop()

    def _compute(self) -> None:
        now = self.engine.now
        for spec, query in zip(self.specs, self._queries):
            value = self.query_engine.scalar(query, at=now)
            if value is None:
                continue
            self.store.insert(spec.output, now, value)
            self.samples_written += 1


def standard_cluster_aggregates() -> List[DerivedMetricSpec]:
    """The aggregates every site dashboard wants."""
    return [
        DerivedMetricSpec(
            "node_power_watts", "sum", SeriesKey.of("cluster_power_watts"), window_s=60.0
        ),
        DerivedMetricSpec(
            "node_cpu_util", "mean", SeriesKey.of("cluster_cpu_util"), window_s=60.0
        ),
        DerivedMetricSpec(
            "node_cpu_util", "p95", SeriesKey.of("cluster_cpu_util_p95"), window_s=60.0
        ),
        DerivedMetricSpec(
            "node_temp_celsius", "max", SeriesKey.of("cluster_temp_max"), window_s=60.0
        ),
    ]
