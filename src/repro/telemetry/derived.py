"""Derived cluster-level metrics.

Site dashboards and global autonomy loops consume *aggregates* (total
power, mean utilization, queue depth), not per-node series.
``DerivedMetricsService`` periodically computes configurable aggregates
over the store's raw series and writes them back as first-class derived
series — the "analysis products become data" pattern of production MODA
stacks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.sim.engine import Engine, PeriodicTask
from repro.telemetry.metric import SeriesKey
from repro.telemetry.tsdb import TimeSeriesStore


@dataclass(frozen=True)
class DerivedMetricSpec:
    """One aggregate: source metric → ``agg`` over a window → output key."""

    source_metric: str
    agg: str  # any TimeSeriesStore aggregator: mean/sum/max/p95/...
    output: SeriesKey
    window_s: float = 60.0

    def __post_init__(self) -> None:
        if self.window_s <= 0:
            raise ValueError("window_s must be positive")


class DerivedMetricsService:
    """Computes derived series on a fixed cadence."""

    def __init__(
        self,
        engine: Engine,
        store: TimeSeriesStore,
        specs: List[DerivedMetricSpec],
        *,
        period_s: float = 60.0,
    ) -> None:
        if period_s <= 0:
            raise ValueError("period_s must be positive")
        if not specs:
            raise ValueError("need at least one derived metric spec")
        self.engine = engine
        self.store = store
        self.specs = list(specs)
        self.period_s = period_s
        self.samples_written = 0
        self._task: Optional[PeriodicTask] = None

    def start(self, *, start_at: Optional[float] = None) -> None:
        if self._task is not None and not self._task.stopped:
            raise RuntimeError("derived metrics service already started")
        self._task = self.engine.every(
            self.period_s, self._compute, start_at=start_at, label="derived-metrics"
        )

    def stop(self) -> None:
        if self._task is not None:
            self._task.stop()

    def _compute(self) -> None:
        now = self.engine.now
        for spec in self.specs:
            value = self.store.aggregate_across(
                spec.source_metric, now - spec.window_s, now, spec.agg
            )
            if value is None:
                continue
            self.store.insert(spec.output, now, value)
            self.samples_written += 1


def standard_cluster_aggregates() -> List[DerivedMetricSpec]:
    """The aggregates every site dashboard wants."""
    return [
        DerivedMetricSpec(
            "node_power_watts", "sum", SeriesKey.of("cluster_power_watts"), window_s=60.0
        ),
        DerivedMetricSpec(
            "node_cpu_util", "mean", SeriesKey.of("cluster_cpu_util"), window_s=60.0
        ),
        DerivedMetricSpec(
            "node_cpu_util", "p95", SeriesKey.of("cluster_cpu_util_p95"), window_s=60.0
        ),
        DerivedMetricSpec(
            "node_temp_celsius", "max", SeriesKey.of("cluster_temp_max"), window_s=60.0
        ),
    ]
