"""Collection pipeline: aggregation tree with transport latency.

Production monitoring stacks forward samples through one or more
aggregation hops before they land in queryable storage; the end-to-end
delay is a hard floor on autonomy-loop reaction time.  The pipeline here
models each hop as a fixed latency plus optional loss, and counts
messages and bytes so experiment E1/E2 can report transport volume.

Topology::

    Sampler -> Aggregator (level N) -> ... -> Collector (root) -> TimeSeriesStore
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.sim.engine import Engine
from repro.telemetry.sampler import Sample
from repro.telemetry.tsdb import TimeSeriesStore

#: Approximate wire size of one encoded sample (metric id, ts, value, labels).
SAMPLE_WIRE_BYTES = 64


class Collector:
    """Root of the pipeline: writes arriving samples into the store.

    Samples are written ``ingest_latency`` seconds after submission,
    modelling the final commit delay.  ``latest_arrival_lag`` reports the
    observed end-to-end lag of the most recent batch for diagnostics.
    """

    def __init__(
        self,
        engine: Engine,
        store: TimeSeriesStore,
        *,
        ingest_latency: float = 0.0,
        name: str = "root-collector",
    ) -> None:
        if ingest_latency < 0:
            raise ValueError("ingest_latency must be >= 0")
        self.engine = engine
        self.store = store
        self.ingest_latency = ingest_latency
        self.name = name
        self.batches_received = 0
        self.samples_ingested = 0
        self.latest_arrival_lag = 0.0

    def submit(self, samples: List[Sample]) -> None:
        self.batches_received += 1
        if self.ingest_latency > 0:
            self.engine.schedule(self.ingest_latency, self._commit, samples, label=self.name)
        else:
            self._commit(samples)

    def _commit(self, samples: List[Sample]) -> None:
        now = self.engine.now
        for s in samples:
            self.store.insert(s.key, s.time, s.value)
            self.samples_ingested += 1
            self.latest_arrival_lag = now - s.time


class Aggregator:
    """Intermediate hop: forwards batches downstream after a delay.

    ``loss_prob`` drops whole batches (network loss / agent crash);
    ``fan_in`` is bookkeeping for topology reports.
    """

    def __init__(
        self,
        engine: Engine,
        downstream,
        *,
        forward_latency: float = 0.05,
        loss_prob: float = 0.0,
        rng: Optional[np.random.Generator] = None,
        name: str = "aggregator",
    ) -> None:
        if forward_latency < 0:
            raise ValueError("forward_latency must be >= 0")
        if not 0.0 <= loss_prob <= 1.0:
            raise ValueError("loss_prob must be within [0, 1]")
        if loss_prob > 0 and rng is None:
            raise ValueError("rng required when loss_prob is set")
        self.engine = engine
        self.downstream = downstream
        self.forward_latency = forward_latency
        self.loss_prob = loss_prob
        self.rng = rng
        self.name = name
        self.batches_forwarded = 0
        self.batches_lost = 0
        self.bytes_forwarded = 0

    def submit(self, samples: List[Sample]) -> None:
        if self.loss_prob > 0 and self.rng.random() < self.loss_prob:
            self.batches_lost += 1
            return
        self.batches_forwarded += 1
        self.bytes_forwarded += len(samples) * SAMPLE_WIRE_BYTES
        if self.forward_latency > 0:
            self.engine.schedule(self.forward_latency, self.downstream.submit, samples, label=self.name)
        else:
            self.downstream.submit(samples)


class CollectionPipeline:
    """Convenience builder for a two-level tree (rack aggregators → root).

    ``build(n_groups)`` returns one aggregator per group, all feeding the
    shared root collector.  Samplers attach to their group's aggregator.
    """

    def __init__(
        self,
        engine: Engine,
        store: TimeSeriesStore,
        *,
        hop_latency: float = 0.05,
        ingest_latency: float = 0.05,
        loss_prob: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.engine = engine
        self.root = Collector(engine, store, ingest_latency=ingest_latency)
        self.hop_latency = hop_latency
        self.loss_prob = loss_prob
        self.rng = rng
        self.aggregators: List[Aggregator] = []

    def build(self, n_groups: int) -> List[Aggregator]:
        if n_groups <= 0:
            raise ValueError("n_groups must be positive")
        self.aggregators = [
            Aggregator(
                self.engine,
                self.root,
                forward_latency=self.hop_latency,
                loss_prob=self.loss_prob,
                rng=self.rng,
                name=f"agg-{i}",
            )
            for i in range(n_groups)
        ]
        return self.aggregators

    @property
    def end_to_end_latency(self) -> float:
        """Nominal pipeline delay (hop + ingest), excluding sampling period."""
        return self.hop_latency + self.root.ingest_latency

    def total_bytes(self) -> int:
        return sum(a.bytes_forwarded for a in self.aggregators)
