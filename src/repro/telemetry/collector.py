"""Collection pipeline: aggregation tree with transport latency.

Production monitoring stacks forward samples through one or more
aggregation hops before they land in queryable storage; the end-to-end
delay is a hard floor on autonomy-loop reaction time.  The pipeline here
models each hop as a fixed latency plus optional loss, and counts
messages and bytes so experiment E1/E2 can report transport volume.

The native currency is the columnar
:class:`~repro.telemetry.batch.SampleBatch`: aggregators **coalesce**
every child batch arriving within one forwarding window into a single
concatenated batch per hop, and the root collector commits through
:meth:`~repro.telemetry.tsdb.TimeSeriesStore.append_batch` — one bulk
write per flush instead of one Python call per point.  Legacy
``list[Sample]`` submissions are still accepted at every hop; without
commit coalescing they keep the seed path's point-by-point commit
semantics (the E14 baseline), while an interval-coalescing root packs
them into batches at flush time.

Topology::

    SensorBank/Sampler -> Aggregator (level N) -> ... -> Collector (root) -> TimeSeriesStore
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Union

import numpy as np

from repro.sim.engine import Engine
from repro.telemetry.batch import Sample, SampleBatch
from repro.telemetry.tsdb import TimeSeriesStore

#: Approximate wire size of one encoded sample (metric id, ts, value, labels).
SAMPLE_WIRE_BYTES = 64

Submission = Union[SampleBatch, List[Sample]]


@dataclass(frozen=True)
class AdaptiveCommitConfig:
    """Knobs for rate-adaptive commit coalescing at the root collector.

    The collector aims each bulk commit at ``target_batch_samples``
    rows: after every flush it re-estimates the ingest rate (EWMA over
    observed per-interval rows) and sets the next interval to
    ``target / rate``, clamped to ``[min_interval_s, max_interval_s]``.
    A flood of samples narrows the interval (bounded commit latency and
    batch memory); a trickle widens it (fewer, fuller commits) — the
    backpressure half of the PR 2 flow-control follow-up.
    """

    min_interval_s: float = 0.5
    max_interval_s: float = 60.0
    target_batch_samples: int = 4096
    #: EWMA weight of the newest rate observation, in (0, 1]
    smoothing: float = 0.5

    def __post_init__(self) -> None:
        if not 0 < self.min_interval_s <= self.max_interval_s:
            raise ValueError("need 0 < min_interval_s <= max_interval_s")
        if self.target_batch_samples <= 0:
            raise ValueError("target_batch_samples must be positive")
        if not 0.0 < self.smoothing <= 1.0:
            raise ValueError("smoothing must be in (0, 1]")


class Collector:
    """Root of the pipeline: writes arriving samples into the store.

    Samples are written ``ingest_latency`` seconds after submission,
    modelling the final commit delay.  With ``commit_interval_s`` set,
    the root additionally coalesces submissions: everything arriving
    within one interval is committed as a single columnar bulk append
    (the LDMS-style store-side batching that makes high-rate ingest
    cheap).  ``latest_arrival_lag`` reports the *maximum* end-to-end lag
    across the most recently committed batch.
    """

    def __init__(
        self,
        engine: Engine,
        store: TimeSeriesStore,
        *,
        ingest_latency: float = 0.0,
        commit_interval_s: Optional[float] = None,
        adaptive_commit: Optional[AdaptiveCommitConfig] = None,
        max_pending_samples: Optional[int] = None,
        name: str = "root-collector",
    ) -> None:
        if ingest_latency < 0:
            raise ValueError("ingest_latency must be >= 0")
        if commit_interval_s is not None and commit_interval_s <= 0:
            raise ValueError("commit_interval_s must be positive when set")
        if max_pending_samples is not None and max_pending_samples <= 0:
            raise ValueError("max_pending_samples must be positive when set")
        self.engine = engine
        self.store = store
        self.ingest_latency = ingest_latency
        self.adaptive = adaptive_commit
        if commit_interval_s is None and adaptive_commit is not None:
            # adaptive coalescing implies coalescing: start conservative
            # (short interval) and let the observed rate widen it
            commit_interval_s = adaptive_commit.min_interval_s
        self.commit_interval_s = commit_interval_s
        #: queue limit (samples) on the coalescing window — the root's
        #: half of the aggregation-tree backpressure story.  ``None``
        #: keeps the historical unbounded behaviour.
        self.max_pending_samples = max_pending_samples
        self.name = name
        self.batches_received = 0
        self.commits = 0
        self.samples_ingested = 0
        self.latest_arrival_lag = 0.0
        self.interval_adjustments = 0
        self.dropped_batches = 0
        self.dropped_samples = 0
        self.dropped_bytes = 0
        self._pending_samples = 0
        self._rate_ewma: Optional[float] = None
        #: the accumulation window of the currently scheduled flush —
        #: max(ingest_latency, interval) at schedule time, which is the
        #: denominator of the rate observation (not the bare interval)
        self._window_s: Optional[float] = None
        self._pending: List[Submission] = []
        self._flush_scheduled = False
        self._flush_seq = 0  # invalidates orphaned scheduled flush events

    def submit(self, samples: Submission) -> None:
        if self.commit_interval_s is not None:
            # Tail-drop backpressure: once the coalescing window holds
            # the cap, arriving submissions bounce whole (a single
            # oversized submission into an empty window still commits —
            # otherwise it could never drain).  Dropping *new* arrivals
            # keeps the oldest data flowing, bounding worst-case lag.
            if (
                self.max_pending_samples is not None
                and self._pending_samples >= self.max_pending_samples
            ):
                n = len(samples)
                self.dropped_batches += 1
                self.dropped_samples += n
                self.dropped_bytes += n * SAMPLE_WIRE_BYTES
                return
            self.batches_received += 1
            self._pending.append(samples)
            self._pending_samples += len(samples)
            if not self._flush_scheduled:
                self._flush_scheduled = True
                self._flush_seq += 1
                delay = max(self.ingest_latency, self.commit_interval_s)
                self._window_s = delay  # actual accumulation window
                self.engine.schedule(
                    delay, self._scheduled_flush, self._flush_seq, label=self.name
                )
            return
        self.batches_received += 1
        if self.ingest_latency > 0:
            self.engine.schedule(self.ingest_latency, self._commit, samples, label=self.name)
        else:
            self._commit(samples)

    def flush(self) -> None:
        """Commit everything pending immediately (end-of-run drain).

        A manual drain is not an interval-length observation window, so
        it never feeds the adaptive rate estimate.
        """
        self._flush_pending(adapt=False)

    def _scheduled_flush(self, seq: int) -> None:
        """Interval-flush event; no-op when superseded.

        A manual :meth:`flush` (or a rescheduling after one) can leave
        this event orphaned in the engine queue — firing it anyway
        would commit a *newer* window early and feed a wrong-window (or
        empty) observation into the adaptive rate estimate.
        """
        if seq != self._flush_seq or not self._flush_scheduled:
            return
        self._flush_pending()

    def _flush_pending(self, adapt: bool = True) -> None:
        self._flush_scheduled = False
        pending, self._pending = self._pending, []
        self._pending_samples = 0
        merged = self._merge(pending) if pending else None
        if adapt and self.adaptive is not None and self.commit_interval_s is not None:
            self._adapt_interval(len(merged) if merged is not None else 0)
        if merged is not None:
            self._commit(merged)

    def _adapt_interval(self, n_samples: int) -> None:
        """Retarget the commit interval from the observed ingest rate."""
        cfg = self.adaptive
        window = self._window_s if self._window_s is not None else self.commit_interval_s
        observed = n_samples / window
        if self._rate_ewma is None:
            self._rate_ewma = observed
        else:
            self._rate_ewma += cfg.smoothing * (observed - self._rate_ewma)
        if self._rate_ewma <= 0.0:
            desired = cfg.max_interval_s  # idle pipeline: widest interval
        else:
            desired = cfg.target_batch_samples / self._rate_ewma
        desired = min(max(desired, cfg.min_interval_s), cfg.max_interval_s)
        if desired != self.commit_interval_s:
            self.commit_interval_s = desired
            self.interval_adjustments += 1

    def _merge(self, pending: List[Submission]) -> Submission:
        """Concatenate queued submissions; lists are packed into a batch."""
        if len(pending) == 1:
            return pending[0]
        batches: List[SampleBatch] = []
        for sub in pending:
            if isinstance(sub, SampleBatch):
                batches.append(sub)
            else:
                batches.append(SampleBatch.from_samples(sub, self.store.registry))
        return SampleBatch.concat(batches)

    def _commit(self, samples: Submission) -> None:
        n = len(samples)
        if n == 0:
            return
        if isinstance(samples, SampleBatch):
            self.store.append_batch(samples.series_ids, samples.times, samples.values)
            oldest = float(samples.times.min())
        else:
            # Legacy per-object submissions keep the seed path's
            # point-by-point commit semantics (and cost) — they are the
            # baseline the E14 benchmark measures the columnar path
            # against.
            oldest = samples[0].time
            for s in samples:
                self.store.insert(s.key, s.time, s.value)
                if s.time < oldest:
                    oldest = s.time
        self.commits += 1
        self.samples_ingested += n
        # Lag accounting once per commit, against the *oldest* sample in
        # the batch — the worst-case end-to-end delay, not whichever
        # sample happened to be last in submission order.
        self.latest_arrival_lag = float(self.engine.now - oldest)

    def stats(self) -> dict:
        return {
            "batches_received": float(self.batches_received),
            "commits": float(self.commits),
            "samples_ingested": float(self.samples_ingested),
            "latest_arrival_lag": self.latest_arrival_lag,
            "interval_adjustments": float(self.interval_adjustments),
            "dropped_batches": float(self.dropped_batches),
            "dropped_samples": float(self.dropped_samples),
            "dropped_bytes": float(self.dropped_bytes),
            "pending_samples": float(self._pending_samples),
        }


class Aggregator:
    """Intermediate hop: concatenates child batches, forwards after a delay.

    Submissions arriving while a forwarding window is open are merged
    and sent with one hop event per window, however many children fed
    it: columnar submissions concatenate into a single downstream
    ``SampleBatch``, and legacy list submissions (which carry no series
    ids to merge by) coalesce into a single downstream list — so a
    window emits at most one message per submission kind.  ``loss_prob``
    drops whole child batches before they enter the window (network
    loss / agent crash); byte and message counters track both
    directions so loss accounting stays exact.
    """

    def __init__(
        self,
        engine: Engine,
        downstream,
        *,
        forward_latency: float = 0.05,
        loss_prob: float = 0.0,
        rng: Optional[np.random.Generator] = None,
        max_pending_samples: Optional[int] = None,
        name: str = "aggregator",
    ) -> None:
        if forward_latency < 0:
            raise ValueError("forward_latency must be >= 0")
        if not 0.0 <= loss_prob <= 1.0:
            raise ValueError("loss_prob must be within [0, 1]")
        if loss_prob > 0 and rng is None:
            raise ValueError("rng required when loss_prob is set")
        if max_pending_samples is not None and max_pending_samples <= 0:
            raise ValueError("max_pending_samples must be positive when set")
        self.engine = engine
        self.downstream = downstream
        self.forward_latency = forward_latency
        self.loss_prob = loss_prob
        self.rng = rng
        self.name = name
        #: queue limit (samples) on the forwarding window — per-hop
        #: backpressure; ``None`` keeps the historical unbounded queue.
        self.max_pending_samples = max_pending_samples
        self.batches_received = 0
        self.batches_forwarded = 0
        self.batches_lost = 0
        self.bytes_forwarded = 0
        self.bytes_lost = 0
        self.samples_forwarded = 0
        self.samples_lost = 0
        self.dropped_batches = 0
        self.dropped_samples = 0
        self.dropped_bytes = 0
        self._pending: List[Submission] = []
        self._pending_samples = 0
        self._flush_scheduled = False

    def submit(self, samples: Submission) -> None:
        n = len(samples)
        if self.loss_prob > 0 and self.rng.random() < self.loss_prob:
            self.batches_lost += 1
            self.samples_lost += n
            self.bytes_lost += n * SAMPLE_WIRE_BYTES
            return
        if self.forward_latency <= 0:
            self.batches_received += 1
            self._forward([samples])
            return
        # Tail-drop backpressure (same rule as the root collector): a
        # full forwarding window bounces whole arriving submissions —
        # the drop counters are the hop's overload signal, distinct from
        # the random-loss counters above.
        if (
            self.max_pending_samples is not None
            and self._pending_samples >= self.max_pending_samples
        ):
            self.dropped_batches += 1
            self.dropped_samples += n
            self.dropped_bytes += n * SAMPLE_WIRE_BYTES
            return
        self.batches_received += 1
        self._pending.append(samples)
        self._pending_samples += n
        if not self._flush_scheduled:
            self._flush_scheduled = True
            self.engine.schedule(self.forward_latency, self._flush, label=self.name)

    def _flush(self) -> None:
        self._flush_scheduled = False
        pending, self._pending = self._pending, []
        self._pending_samples = 0
        if pending:
            self._forward(pending)

    def stats(self) -> dict:
        return {
            "batches_received": float(self.batches_received),
            "batches_forwarded": float(self.batches_forwarded),
            "batches_lost": float(self.batches_lost),
            "samples_forwarded": float(self.samples_forwarded),
            "samples_lost": float(self.samples_lost),
            "bytes_forwarded": float(self.bytes_forwarded),
            "bytes_lost": float(self.bytes_lost),
            "dropped_batches": float(self.dropped_batches),
            "dropped_samples": float(self.dropped_samples),
            "dropped_bytes": float(self.dropped_bytes),
            "pending_samples": float(self._pending_samples),
        }

    def _forward(self, pending: List[Submission]) -> None:
        lists = [s for s in pending if not isinstance(s, SampleBatch)]
        batches = [s for s in pending if isinstance(s, SampleBatch)]
        if lists:
            merged_list: List[Sample] = lists[0] if len(lists) == 1 else [
                s for sub in lists for s in sub
            ]
            self.batches_forwarded += 1
            self.samples_forwarded += len(merged_list)
            self.bytes_forwarded += len(merged_list) * SAMPLE_WIRE_BYTES
            self.downstream.submit(merged_list)
        if batches:
            merged = SampleBatch.concat(batches)
            self.batches_forwarded += 1
            self.samples_forwarded += len(merged)
            self.bytes_forwarded += len(merged) * SAMPLE_WIRE_BYTES
            self.downstream.submit(merged)


class CollectionPipeline:
    """Convenience builder for a two-level tree (rack aggregators → root).

    ``build(n_groups)`` returns one aggregator per group, all feeding the
    shared root collector.  Samplers attach to their group's aggregator.
    ``registry`` exposes the store's series-id intern table for wiring
    :class:`~repro.telemetry.sensor.SensorBank` producers.
    """

    def __init__(
        self,
        engine: Engine,
        store: TimeSeriesStore,
        *,
        hop_latency: float = 0.05,
        ingest_latency: float = 0.05,
        commit_interval_s: Optional[float] = None,
        adaptive_commit: Optional[AdaptiveCommitConfig] = None,
        loss_prob: float = 0.0,
        rng: Optional[np.random.Generator] = None,
        max_pending_samples: Optional[int] = None,
        hop_max_pending_samples: Optional[int] = None,
    ) -> None:
        self.engine = engine
        self.root = Collector(
            engine,
            store,
            ingest_latency=ingest_latency,
            commit_interval_s=commit_interval_s,
            adaptive_commit=adaptive_commit,
            max_pending_samples=max_pending_samples,
        )
        self.hop_latency = hop_latency
        self.loss_prob = loss_prob
        self.rng = rng
        self.hop_max_pending_samples = hop_max_pending_samples
        self.aggregators: List[Aggregator] = []

    @property
    def registry(self):
        return self.root.store.registry

    def build(self, n_groups: int) -> List[Aggregator]:
        if n_groups <= 0:
            raise ValueError("n_groups must be positive")
        self.aggregators = [
            Aggregator(
                self.engine,
                self.root,
                forward_latency=self.hop_latency,
                loss_prob=self.loss_prob,
                rng=self.rng,
                max_pending_samples=self.hop_max_pending_samples,
                name=f"agg-{i}",
            )
            for i in range(n_groups)
        ]
        return self.aggregators

    @property
    def end_to_end_latency(self) -> float:
        """Nominal pipeline delay (hop + ingest), excluding sampling period."""
        return self.hop_latency + self.root.ingest_latency

    def total_bytes(self) -> int:
        return sum(a.bytes_forwarded for a in self.aggregators)

    def total_dropped_samples(self) -> int:
        """Samples dropped by backpressure anywhere in the tree."""
        return self.root.dropped_samples + sum(a.dropped_samples for a in self.aggregators)

    def stats(self) -> dict:
        """Tree-wide flow accounting, one nested dict per stage.

        Shaped for ``absorb_stats(METRICS, pipeline.stats(), "ingest")``:
        keys land as ``ingest.root.<k>`` and ``ingest.hops.<k>`` (hop
        counters summed across aggregators).
        """
        hops: dict = {}
        for agg in self.aggregators:
            for k, v in agg.stats().items():
                hops[k] = hops.get(k, 0.0) + v
        return {"root": self.root.stats(), "hops": hops}
