"""Periodic samplers.

Two sampling front-ends share this module:

* :class:`Sampler` — the legacy per-object agent: owns :class:`Sensor`
  objects on one node, polls them every ``period`` seconds, and emits a
  ``list[Sample]`` per round.  Kept as a thin adapter; everything
  downstream accepts it unchanged.
* :class:`SamplingGroup` — the columnar agent group: owns
  :class:`~repro.telemetry.sensor.SensorBank` objects for many nodes,
  fires **one** engine event per tick for the whole group, and emits a
  single concatenated :class:`~repro.telemetry.batch.SampleBatch`.  This
  is the scalable path: at N nodes × M metrics a tick costs one event
  and one batch instead of N events and N·M ``Sample`` objects.

Dropout models agent-side sample loss; it is decided *before* sensors
are polled, so a lost round costs no simulated sensor CPU, and the
overhead model (Fig. 1 feasibility, E1) charges ``per_sample_cost_s``
only for sensors actually read.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional

import numpy as np

from repro.sim.engine import Engine, PeriodicTask
from repro.telemetry.batch import Sample, SampleBatch
from repro.telemetry.sensor import Sensor, SensorBank

__all__ = ["Sample", "SampleSink", "Sampler", "SamplingGroup"]


class _PeriodicAgentBase:
    """Shared scheduling + overhead accounting for sampling front-ends."""

    def __init__(
        self,
        engine: Engine,
        sink: "SampleSink",
        *,
        period: float,
        jitter_std: float,
        dropout_prob: float,
        per_sample_cost_s: float,
        rng: Optional[np.random.Generator],
        name: str,
    ) -> None:
        if period <= 0:
            raise ValueError("period must be positive")
        if not 0.0 <= dropout_prob <= 1.0:
            raise ValueError("dropout_prob must be within [0, 1]")
        if (jitter_std > 0 or dropout_prob > 0) and rng is None:
            raise ValueError("rng required when jitter_std or dropout_prob is set")
        self.engine = engine
        self.sink = sink
        self.period = period
        self.jitter_std = jitter_std
        self.dropout_prob = dropout_prob
        self.per_sample_cost_s = per_sample_cost_s
        self.rng = rng
        self.name = name
        self._task: Optional[PeriodicTask] = None
        self.samples_emitted = 0
        self.samples_dropped = 0
        self.overhead_cpu_s = 0.0

    def start(self, *, start_at: Optional[float] = None) -> None:
        if self._task is not None and not self._task.stopped:
            raise RuntimeError(f"{type(self).__name__} {self.name!r} already started")
        jitter_fn = None
        if self.jitter_std > 0:
            def jitter_fn() -> float:
                return float(self.rng.normal(0.0, self.jitter_std))
        self._task = self.engine.every(
            self.period, self._collect_round, start_at=start_at, jitter_fn=jitter_fn, label=self.name
        )

    def stop(self) -> None:
        if self._task is not None:
            self._task.stop()

    def _collect_round(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    @property
    def agent_count(self) -> int:
        """Number of monitored agents (nodes) this front-end stands for."""
        return 1

    def overhead_cpu_frac(self, window_s: float) -> float:
        """Fraction of one agent's compute consumed over ``window_s``.

        The explicit accessor experiments should use instead of dividing
        ``overhead_cpu_s`` by hand: it normalizes by the number of
        agents represented, so per-node :class:`Sampler` and many-node
        :class:`SamplingGroup` report on the same scale.
        """
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        return self.overhead_cpu_s / (self.agent_count * window_s)


class Sampler(_PeriodicAgentBase):
    """Polls per-object sensors periodically and forwards sample lists.

    Parameters
    ----------
    engine:
        Simulation engine providing time and scheduling.
    sink:
        Any object with ``submit(samples: list[Sample]) -> None``.
    period:
        Sampling period in seconds.
    jitter_std:
        Std-dev of Gaussian jitter applied to each firing (seconds).
    dropout_prob:
        Probability an entire sampling round is lost before the sensors
        are polled (no samples, no overhead charged).
    per_sample_cost_s:
        Simulated CPU seconds consumed per sensor actually read.
    """

    def __init__(
        self,
        engine: Engine,
        sink: "SampleSink",
        *,
        period: float = 1.0,
        jitter_std: float = 0.0,
        dropout_prob: float = 0.0,
        per_sample_cost_s: float = 0.0,
        rng: Optional[np.random.Generator] = None,
        name: str = "sampler",
    ) -> None:
        super().__init__(
            engine,
            sink,
            period=period,
            jitter_std=jitter_std,
            dropout_prob=dropout_prob,
            per_sample_cost_s=per_sample_cost_s,
            rng=rng,
            name=name,
        )
        self._sensors: List[Sensor] = []

    def add_sensor(self, sensor: Sensor) -> None:
        self._sensors.append(sensor)

    def add_sensors(self, sensors: Iterable[Sensor]) -> None:
        for s in sensors:
            self.add_sensor(s)

    @property
    def sensor_count(self) -> int:
        return len(self._sensors)

    def _collect_round(self) -> None:
        if not self._sensors:
            return
        if self.dropout_prob > 0 and self.rng.random() < self.dropout_prob:
            self.samples_dropped += len(self._sensors)
            return
        now = self.engine.now
        batch: List[Sample] = []
        for sensor in self._sensors:
            value = sensor.read(now)
            self.overhead_cpu_s += self.per_sample_cost_s
            if value is None:
                continue
            batch.append(Sample(sensor.key, now, value))
        if not batch:
            return
        self.samples_emitted += len(batch)
        self.sink.submit(batch)


class SamplingGroup(_PeriodicAgentBase):
    """Coalesced columnar sampling for a group of nodes.

    One :class:`SamplingGroup` typically mirrors one aggregation subtree
    (e.g. a rack): each member :class:`SensorBank` is one node's sensor
    set.  Per tick the group fires a single engine event, reads every
    bank vectorized, and submits **one** concatenated
    :class:`SampleBatch` to its sink.

    ``dropout_prob`` is applied per bank per round (agent-side loss is a
    per-node phenomenon) with a single vectorized draw; dropped banks
    are not polled and accrue no overhead.
    """

    def __init__(
        self,
        engine: Engine,
        sink: "SampleSink",
        *,
        period: float = 1.0,
        jitter_std: float = 0.0,
        dropout_prob: float = 0.0,
        per_sample_cost_s: float = 0.0,
        rng: Optional[np.random.Generator] = None,
        name: str = "sampling-group",
    ) -> None:
        super().__init__(
            engine,
            sink,
            period=period,
            jitter_std=jitter_std,
            dropout_prob=dropout_prob,
            per_sample_cost_s=per_sample_cost_s,
            rng=rng,
            name=name,
        )
        self.banks: List[SensorBank] = []
        self.rounds = 0
        self._layout_banks = -1  # bank count the cached layout was built for
        self._all_ids: Optional[np.ndarray] = None
        self._offsets: List[int] = []

    def add_bank(self, bank: SensorBank) -> None:
        self.banks.append(bank)

    def add_banks(self, banks: Iterable[SensorBank]) -> None:
        for bank in banks:
            self.add_bank(bank)

    @property
    def agent_count(self) -> int:
        return len(self.banks)

    @property
    def sensor_count(self) -> int:
        return sum(bank.size for bank in self.banks)

    def _refresh_layout(self) -> None:
        """Precompute the group's concatenated id column and bank slices."""
        offsets = [0]
        for bank in self.banks:
            offsets.append(offsets[-1] + bank.size)
        self._offsets = offsets
        self._all_ids = np.concatenate([bank.series_ids for bank in self.banks])
        self._layout_banks = len(self.banks)
        self._validated = False
        self._readers = []

    def _build_readers(self, now: float, values: np.ndarray) -> None:
        """First round: read every bank through the checked path (shape
        validation), then cache per-bank readers — transform-free banks
        are called through their raw ``read_fn`` on later rounds, which
        skips a wrapper frame per bank per tick."""
        offsets = self._offsets
        readers = []
        for i, bank in enumerate(self.banks):
            values[offsets[i] : offsets[i + 1]] = bank.read_values(now, copy=False)
            fn = bank.read_fn if bank.is_plain else (
                lambda t, _b=bank: _b.read_values(t, copy=False)
            )
            readers.append((fn, offsets[i], offsets[i + 1]))
        self._readers = readers
        self._validated = True

    def _collect_round(self) -> None:
        if not self.banks:
            return
        self.rounds += 1
        now = self.engine.now
        if self.dropout_prob > 0:
            self._collect_round_with_dropout(now)
            return
        # Fast path: every bank reads into one preallocated column, so a
        # round costs one engine event and one batch for the whole group.
        if self._layout_banks != len(self.banks):
            self._refresh_layout()
        total = self._offsets[-1]
        values = np.empty(total, dtype=np.float64)
        if not self._validated:
            self._build_readers(now, values)
        else:
            for fn, lo, hi in self._readers:
                values[lo:hi] = fn(now)
        self.overhead_cpu_s += self.per_sample_cost_s * total
        if math.isfinite(values.sum()):
            batch = SampleBatch._trusted(
                self._all_ids, np.full(total, now, dtype=np.float64), values
            )
        else:  # some readings unavailable: drop the NaN rows
            valid = np.isfinite(values)
            ids = self._all_ids[valid]
            batch = SampleBatch._trusted(
                ids, np.full(ids.size, now, dtype=np.float64), values[valid]
            )
            if not len(batch):
                return
        self.samples_emitted += len(batch)
        self.sink.submit(batch)

    def _collect_round_with_dropout(self, now: float) -> None:
        """Slow path: per-bank agent loss decided before polling."""
        dropped = self.rng.random(len(self.banks)) < self.dropout_prob
        batches: List[SampleBatch] = []
        for i, bank in enumerate(self.banks):
            if dropped[i]:
                self.samples_dropped += bank.size
                continue
            batch = bank.read(now)
            self.overhead_cpu_s += self.per_sample_cost_s * bank.size
            if len(batch):
                batches.append(batch)
        if not batches:
            return
        merged = SampleBatch.concat(batches)
        self.samples_emitted += len(merged)
        self.sink.submit(merged)


class SampleSink:
    """Minimal sink interface (duck-typed; this class is documentation).

    ``submit`` accepts either a legacy ``list[Sample]`` or a columnar
    :class:`SampleBatch`.
    """

    def submit(self, samples) -> None:  # pragma: no cover
        raise NotImplementedError
