"""Periodic samplers.

A sampler owns a set of sensors on one "agent" (typically one node),
polls them every ``period`` seconds with optional jitter, and emits
:class:`Sample` records into a :class:`~repro.telemetry.collector.Collector`.
Dropout models agent-side sample loss; the overhead model accounts for
the compute the agent steals from the host (Fig. 1 feasibility, E1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

import numpy as np

from repro.sim.engine import Engine, PeriodicTask
from repro.telemetry.metric import SeriesKey
from repro.telemetry.sensor import Sensor


@dataclass(frozen=True)
class Sample:
    """One collected data point travelling through the pipeline."""

    key: SeriesKey
    time: float
    value: float


class Sampler:
    """Polls sensors periodically and forwards samples downstream.

    Parameters
    ----------
    engine:
        Simulation engine providing time and scheduling.
    sink:
        Any object with ``submit(samples: list[Sample]) -> None``.
    period:
        Sampling period in seconds.
    jitter_std:
        Std-dev of Gaussian jitter applied to each firing (seconds).
    dropout_prob:
        Probability an entire sampling round is lost before submission.
    per_sample_cost_s:
        Simulated CPU seconds consumed per sensor read (overhead model).
    """

    def __init__(
        self,
        engine: Engine,
        sink: "SampleSink",
        *,
        period: float = 1.0,
        jitter_std: float = 0.0,
        dropout_prob: float = 0.0,
        per_sample_cost_s: float = 0.0,
        rng: Optional[np.random.Generator] = None,
        name: str = "sampler",
    ) -> None:
        if period <= 0:
            raise ValueError("period must be positive")
        if not 0.0 <= dropout_prob <= 1.0:
            raise ValueError("dropout_prob must be within [0, 1]")
        if (jitter_std > 0 or dropout_prob > 0) and rng is None:
            raise ValueError("rng required when jitter_std or dropout_prob is set")
        self.engine = engine
        self.sink = sink
        self.period = period
        self.jitter_std = jitter_std
        self.dropout_prob = dropout_prob
        self.per_sample_cost_s = per_sample_cost_s
        self.rng = rng
        self.name = name
        self._sensors: List[Sensor] = []
        self._task: Optional[PeriodicTask] = None
        self.samples_emitted = 0
        self.samples_dropped = 0
        self.overhead_cpu_s = 0.0

    def add_sensor(self, sensor: Sensor) -> None:
        self._sensors.append(sensor)

    def add_sensors(self, sensors: Iterable[Sensor]) -> None:
        for s in sensors:
            self.add_sensor(s)

    @property
    def sensor_count(self) -> int:
        return len(self._sensors)

    def start(self, *, start_at: Optional[float] = None) -> None:
        if self._task is not None and not self._task.stopped:
            raise RuntimeError(f"sampler {self.name!r} already started")
        jitter_fn = None
        if self.jitter_std > 0:
            jitter_fn = lambda: float(self.rng.normal(0.0, self.jitter_std))
        self._task = self.engine.every(
            self.period, self._collect_round, start_at=start_at, jitter_fn=jitter_fn, label=self.name
        )

    def stop(self) -> None:
        if self._task is not None:
            self._task.stop()

    def _collect_round(self) -> None:
        now = self.engine.now
        batch: List[Sample] = []
        for sensor in self._sensors:
            value = sensor.read(now)
            self.overhead_cpu_s += self.per_sample_cost_s
            if value is None:
                continue
            batch.append(Sample(sensor.key, now, value))
        if not batch:
            return
        if self.dropout_prob > 0 and self.rng.random() < self.dropout_prob:
            self.samples_dropped += len(batch)
            return
        self.samples_emitted += len(batch)
        self.sink.submit(batch)


class SampleSink:
    """Minimal sink interface (duck-typed; this class is documentation)."""

    def submit(self, samples: List[Sample]) -> None:  # pragma: no cover
        raise NotImplementedError
