"""Holistic monitoring substrate (the "Monitor" layer of Fig. 1).

This package models a site telemetry stack of the LDMS / DCDB / Examon
class: sensors exposing facility, hardware, system-software, and
application metrics; periodic samplers with jitter, dropout, and overhead;
a collector/aggregation tree with per-hop transport latency; and a
NumPy-backed in-memory time-series store that the analytics layer queries.

The stack deliberately reproduces the *operational* properties that gate
autonomy-loop reaction time: finite sampling rates, collection latency,
and metric cardinality.
"""

from repro.telemetry.metric import MetricCatalog, MetricKind, MetricSpec, SeriesKey
from repro.telemetry.batch import Sample, SampleBatch, SeriesRegistry
from repro.telemetry.tsdb import RingBuffer, TimeSeriesStore
from repro.telemetry.sensor import CallableSensor, Sensor, SensorBank
from repro.telemetry.sampler import Sampler, SamplingGroup
from repro.telemetry.collector import (
    AdaptiveCommitConfig,
    Aggregator,
    Collector,
    CollectionPipeline,
)
from repro.telemetry.markers import ProgressMarker, ProgressMarkerChannel
from repro.telemetry.synthetic import SyntheticSeriesSpec, render_series
from repro.telemetry.derived import (
    DerivedMetricSpec,
    DerivedMetricsService,
    standard_cluster_aggregates,
)
from repro.telemetry.overhead import MonitoringOverheadModel

__all__ = [
    "AdaptiveCommitConfig",
    "Aggregator",
    "CallableSensor",
    "CollectionPipeline",
    "Collector",
    "DerivedMetricSpec",
    "DerivedMetricsService",
    "MetricCatalog",
    "MetricKind",
    "MetricSpec",
    "MonitoringOverheadModel",
    "ProgressMarker",
    "ProgressMarkerChannel",
    "RingBuffer",
    "Sample",
    "SampleBatch",
    "Sampler",
    "SamplingGroup",
    "Sensor",
    "SensorBank",
    "SeriesKey",
    "SeriesRegistry",
    "SyntheticSeriesSpec",
    "TimeSeriesStore",
    "render_series",
    "standard_cluster_aggregates",
]
