"""Application progress markers.

The paper's Scheduler case monitors progress "via markers that could be
output by an application (e.g., simulation time-step)", suggesting the
application's rank 0 periodically drops its current time-step to a file
or memory region.  :class:`ProgressMarkerChannel` emulates that side
channel: applications ``emit`` markers, monitors ``read_since`` them.

Markers are kept separate from the TSDB on purpose — in production they
live in a job-private file, not the site telemetry store — but a bridge
is provided for loops that prefer TSDB queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.telemetry.metric import SeriesKey
from repro.telemetry.tsdb import TimeSeriesStore


@dataclass(frozen=True)
class ProgressMarker:
    """One progress record: job, emission time, step count, optional total."""

    job_id: str
    time: float
    step: float
    total_steps: Optional[float] = None

    @property
    def fraction_done(self) -> Optional[float]:
        if self.total_steps is None or self.total_steps <= 0:
            return None
        return min(1.0, self.step / self.total_steps)


class ProgressMarkerChannel:
    """Per-job append-only marker streams with cursor reads."""

    def __init__(self, mirror_store: Optional[TimeSeriesStore] = None) -> None:
        self._markers: Dict[str, List[ProgressMarker]] = {}
        self._mirror = mirror_store
        self.total_emitted = 0

    @property
    def mirror_store(self) -> Optional[TimeSeriesStore]:
        return self._mirror

    def attach_mirror(self, store: TimeSeriesStore) -> None:
        """Mirror future markers into ``store`` (query-backed monitors).

        Only markers emitted from now on are mirrored; attach before the
        first job starts for a complete telemetry view.
        """
        if self._mirror is not None and self._mirror is not store:
            raise ValueError("channel already mirrors into a different store")
        self._mirror = store

    def emit(self, marker: ProgressMarker) -> None:
        stream = self._markers.setdefault(marker.job_id, [])
        if stream and marker.time < stream[-1].time:
            raise ValueError(
                f"marker for job {marker.job_id} at t={marker.time} is older than "
                f"last marker at t={stream[-1].time}"
            )
        stream.append(marker)
        self.total_emitted += 1
        if self._mirror is not None:
            self._mirror.insert(
                SeriesKey.of("job_progress_steps", job=marker.job_id), marker.time, marker.step
            )
            # Mirror the total on change only (one row per transition, not
            # per marker).  Truthiness mirrors the monitor contract — a
            # 0/None total means "totals unavailable, use priors" — and a
            # producer that STOPS reporting totals must be visible, so the
            # unavailable state is written as 0.0 rather than skipped.
            total = float(marker.total_steps) if marker.total_steps else 0.0
            prev = stream[-2] if len(stream) > 1 else None
            prev_total = (
                (float(prev.total_steps) if prev.total_steps else 0.0)
                if prev is not None
                else None
            )
            if total != prev_total:
                self._mirror.insert(
                    SeriesKey.of("job_progress_total", job=marker.job_id),
                    marker.time,
                    total,
                )

    def read_all(self, job_id: str) -> List[ProgressMarker]:
        return list(self._markers.get(job_id, ()))

    def read_since(self, job_id: str, t: float) -> List[ProgressMarker]:
        """Markers with ``time > t`` (exclusive cursor semantics)."""
        return [m for m in self._markers.get(job_id, ()) if m.time > t]

    def last(self, job_id: str) -> Optional[ProgressMarker]:
        stream = self._markers.get(job_id)
        return stream[-1] if stream else None

    def jobs(self) -> List[str]:
        return sorted(self._markers)

    def drop_job(self, job_id: str) -> None:
        """Discard a finished job's stream (bounded memory)."""
        self._markers.pop(job_id, None)

    def as_arrays(self, job_id: str) -> Tuple[List[float], List[float]]:
        """(times, steps) lists for analytics convenience."""
        stream = self._markers.get(job_id, ())
        return [m.time for m in stream], [m.step for m in stream]
