"""In-memory time-series store backed by NumPy ring buffers.

The store is the "K-adjacent" raw-data layer of the MODA stack: samplers
append points, analytics issue window queries, downsampling, and rate
computations.  Design goals, in order:

1. **Append speed** — a single ``O(1)`` write into a pre-allocated pair of
   arrays (insert rate is the storage concern called out in Section IV of
   the paper).
2. **Query as arrays** — window queries return NumPy views/copies that the
   analytics layer consumes without further conversion.
3. **Bounded memory** — fixed per-series capacity with overwrite-oldest
   semantics, matching production ring-buffer collectors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Mapping, Optional, Tuple

import numpy as np

from repro.telemetry.metric import SeriesKey

_AGGREGATORS: Dict[str, Callable[[np.ndarray], float]] = {
    "mean": np.mean,
    "min": np.min,
    "max": np.max,
    "sum": np.sum,
    "last": lambda a: float(a[-1]),
    "count": lambda a: float(a.size),
    "p50": lambda a: float(np.percentile(a, 50)),
    "p95": lambda a: float(np.percentile(a, 95)),
    "p99": lambda a: float(np.percentile(a, 99)),
}


class RingBuffer:
    """Fixed-capacity (timestamp, value) ring buffer.

    Timestamps must be appended in non-decreasing order (the collection
    pipeline guarantees arrival-order per series); violating this raises,
    because silently unsorted buffers would corrupt window queries.
    """

    __slots__ = ("capacity", "_times", "_values", "_head", "_count", "_written")

    def __init__(self, capacity: int = 4096) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self._times = np.empty(self.capacity, dtype=np.float64)
        self._values = np.empty(self.capacity, dtype=np.float64)
        self._head = 0  # next write position
        self._count = 0  # valid entries
        self._written = 0  # total appends ever

    def __len__(self) -> int:
        return self._count

    @property
    def total_appended(self) -> int:
        """Total points ever appended (including overwritten ones)."""
        return self._written

    def append(self, t: float, v: float) -> None:
        if self._count and t < self.last_time():
            raise ValueError(
                f"out-of-order append: t={t} < last={self.last_time()}"
            )
        self._times[self._head] = t
        self._values[self._head] = v
        self._head = (self._head + 1) % self.capacity
        self._count = min(self._count + 1, self.capacity)
        self._written += 1

    def extend(self, times: np.ndarray, values: np.ndarray) -> None:
        """Bulk append of already-sorted arrays."""
        times = np.asarray(times, dtype=np.float64)
        values = np.asarray(values, dtype=np.float64)
        if times.shape != values.shape:
            raise ValueError("times and values must have the same shape")
        if times.size == 0:
            return
        if np.any(np.diff(times) < 0):
            raise ValueError("bulk append requires sorted timestamps")
        if self._count and times[0] < self.last_time():
            raise ValueError("bulk append overlaps existing data")
        n = times.size
        if n >= self.capacity:
            # Only the trailing window survives.
            self._times[:] = times[-self.capacity:]
            self._values[:] = values[-self.capacity:]
            self._head = 0
            self._count = self.capacity
            self._written += n
            return
        end = self._head + n
        if end <= self.capacity:
            self._times[self._head:end] = times
            self._values[self._head:end] = values
        else:
            split = self.capacity - self._head
            self._times[self._head:] = times[:split]
            self._values[self._head:] = values[:split]
            self._times[: end % self.capacity] = times[split:]
            self._values[: end % self.capacity] = values[split:]
        self._head = end % self.capacity
        self._count = min(self._count + n, self.capacity)
        self._written += n

    def arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """All stored points in time order as ``(times, values)`` copies."""
        if self._count < self.capacity:
            return self._times[: self._count].copy(), self._values[: self._count].copy()
        idx = np.arange(self._head, self._head + self.capacity) % self.capacity
        return self._times[idx], self._values[idx]

    def last_time(self) -> float:
        if self._count == 0:
            raise IndexError("empty ring buffer")
        return float(self._times[(self._head - 1) % self.capacity])

    def last_value(self) -> float:
        if self._count == 0:
            raise IndexError("empty ring buffer")
        return float(self._values[(self._head - 1) % self.capacity])

    def window(self, t0: float, t1: float) -> Tuple[np.ndarray, np.ndarray]:
        """Points with ``t0 <= t <= t1`` in time order."""
        times, values = self.arrays()
        lo = np.searchsorted(times, t0, side="left")
        hi = np.searchsorted(times, t1, side="right")
        return times[lo:hi], values[lo:hi]


@dataclass
class SeriesStats:
    """Summary statistics for one series over a window (query helper)."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float

    @staticmethod
    def from_values(values: np.ndarray) -> "SeriesStats":
        if values.size == 0:
            return SeriesStats(0, float("nan"), float("nan"), float("nan"), float("nan"))
        return SeriesStats(
            int(values.size),
            float(np.mean(values)),
            float(np.std(values)),
            float(np.min(values)),
            float(np.max(values)),
        )


class TimeSeriesStore:
    """Map of :class:`SeriesKey` → :class:`RingBuffer` with query helpers."""

    def __init__(self, default_capacity: int = 4096) -> None:
        if default_capacity <= 0:
            raise ValueError("default_capacity must be positive")
        self.default_capacity = int(default_capacity)
        self._series: Dict[SeriesKey, RingBuffer] = {}
        self._capacity_overrides: Dict[str, int] = {}
        self.total_inserts = 0

    # ------------------------------------------------------------ management
    def set_capacity(self, metric: str, capacity: int) -> None:
        """Per-metric capacity override applied to new series."""
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._capacity_overrides[metric] = int(capacity)

    def _buffer(self, key: SeriesKey) -> RingBuffer:
        buf = self._series.get(key)
        if buf is None:
            cap = self._capacity_overrides.get(key.metric, self.default_capacity)
            buf = RingBuffer(cap)
            self._series[key] = buf
        return buf

    # --------------------------------------------------------------- writing
    def insert(self, key: SeriesKey, t: float, value: float) -> None:
        self._buffer(key).append(t, value)
        self.total_inserts += 1

    def insert_batch(self, key: SeriesKey, times: np.ndarray, values: np.ndarray) -> None:
        self._buffer(key).extend(times, values)
        self.total_inserts += int(np.asarray(times).size)

    # --------------------------------------------------------------- reading
    def has(self, key: SeriesKey) -> bool:
        buf = self._series.get(key)
        return buf is not None and len(buf) > 0

    def series_keys(self, metric: Optional[str] = None) -> list[SeriesKey]:
        keys = (k for k in self._series if metric is None or k.metric == metric)
        return sorted(keys, key=str)

    def cardinality(self) -> int:
        """Number of distinct live series (the Section IV design concern)."""
        return len(self._series)

    def latest(self, key: SeriesKey) -> Optional[Tuple[float, float]]:
        buf = self._series.get(key)
        if buf is None or len(buf) == 0:
            return None
        return buf.last_time(), buf.last_value()

    def query(self, key: SeriesKey, t0: float, t1: float) -> Tuple[np.ndarray, np.ndarray]:
        """Window query; empty arrays when the series is absent."""
        buf = self._series.get(key)
        if buf is None:
            return np.empty(0), np.empty(0)
        return buf.window(t0, t1)

    def stats(self, key: SeriesKey, t0: float, t1: float) -> SeriesStats:
        _, values = self.query(key, t0, t1)
        return SeriesStats.from_values(values)

    def rate(self, key: SeriesKey, t0: float, t1: float) -> Optional[float]:
        """Average per-second increase over a window (for COUNTER metrics)."""
        times, values = self.query(key, t0, t1)
        if times.size < 2 or times[-1] == times[0]:
            return None
        return float((values[-1] - values[0]) / (times[-1] - times[0]))

    def downsample(
        self,
        key: SeriesKey,
        t0: float,
        t1: float,
        step: float,
        agg: str = "mean",
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Aggregate the window into ``step``-second bins.

        Returns bin-start times and aggregated values; empty bins are
        dropped (matching PromQL-style range-vector semantics).
        """
        if step <= 0:
            raise ValueError("step must be positive")
        try:
            fn = _AGGREGATORS[agg]
        except KeyError:
            raise ValueError(f"unknown aggregator {agg!r}; choose from {sorted(_AGGREGATORS)}") from None
        times, values = self.query(key, t0, t1)
        if times.size == 0:
            return np.empty(0), np.empty(0)
        bins = np.floor((times - t0) / step).astype(np.int64)
        out_t, out_v = [], []
        for b in np.unique(bins):
            mask = bins == b
            out_t.append(t0 + b * step)
            out_v.append(fn(values[mask]))
        return np.asarray(out_t, dtype=np.float64), np.asarray(out_v, dtype=np.float64)

    def aggregate_across(
        self,
        metric: str,
        t0: float,
        t1: float,
        agg: str = "mean",
    ) -> Optional[float]:
        """Aggregate all points of all series of one metric over a window."""
        try:
            fn = _AGGREGATORS[agg]
        except KeyError:
            raise ValueError(f"unknown aggregator {agg!r}") from None
        chunks = []
        for key in self._series:
            if key.metric != metric:
                continue
            _, values = self.query(key, t0, t1)
            if values.size:
                chunks.append(values)
        if not chunks:
            return None
        return float(fn(np.concatenate(chunks)))
