"""In-memory time-series store backed by NumPy ring buffers.

The store is the "K-adjacent" raw-data layer of the MODA stack: samplers
append points, analytics issue window queries, downsampling, and rate
computations.  Design goals, in order:

1. **Append speed** — a single ``O(1)`` write into a pre-allocated pair of
   arrays (insert rate is the storage concern called out in Section IV of
   the paper).
2. **Query as arrays** — window queries return NumPy views/copies that the
   analytics layer consumes without further conversion.
3. **Bounded memory** — fixed per-series capacity with overwrite-oldest
   semantics, matching production ring-buffer collectors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.telemetry.batch import SeriesRegistry, sort_series_columns
from repro.telemetry.metric import SeriesKey

#: Signature of an ingest listener: ``(series_ids, times, values)`` where the
#: arrays are parallel, grouped by series id, and time-sorted within each
#: series.  Receivers must treat the arrays as read-only.
IngestListener = Callable[[np.ndarray, np.ndarray, np.ndarray], None]

# --------------------------------------------------------------------------
# Shared ring machinery.  A "ring" here is a set of parallel fixed-capacity
# arrays written at a common head; RingBuffer (raw samples) and the rollup
# layer's column rings both build on these helpers so the wraparound
# invariants live in exactly one place.


def ring_extend(
    arrays: Iterable[np.ndarray],
    head: int,
    count: int,
    new_cols: Iterable[np.ndarray],
) -> Tuple[int, int]:
    """Bulk-append parallel columns into parallel ring arrays.

    Returns the new ``(head, count)``.  Handles the three write shapes:
    whole-ring replacement (``n >= capacity``), contiguous, and split
    across the wrap point.  Callers validate ordering/overlap.
    """
    arrays = list(arrays)
    new_cols = list(new_cols)
    capacity = arrays[0].shape[0]
    n = int(new_cols[0].size)
    if n == 0:
        return head, count
    if n >= capacity:
        for dst, src in zip(arrays, new_cols):
            dst[:] = src[-capacity:]
        return 0, capacity
    end = head + n
    if end <= capacity:
        for dst, src in zip(arrays, new_cols):
            dst[head:end] = src
    else:
        split = capacity - head
        for dst, src in zip(arrays, new_cols):
            dst[head:] = src[:split]
            dst[: end % capacity] = src[split:]
    return end % capacity, min(count + n, capacity)


def ring_window_ranges(
    times: np.ndarray,
    head: int,
    count: int,
    t0: float,
    t1: float,
    *,
    right_inclusive: bool,
) -> list[Tuple[int, int]]:
    """Absolute ``[lo, hi)`` index ranges of the window ``t0..t1``.

    A wrapped ring is two independently sorted segments (``[head:]``
    then ``[:head]``, every timestamp of the first <= the second), so
    each can be binary-searched on its own — the window costs
    O(log capacity + answer), never a full-ring copy.
    """
    side = "right" if right_inclusive else "left"
    capacity = times.shape[0]
    if count < capacity:
        seg = times[:count]
        lo = int(seg.searchsorted(t0, side="left"))
        hi = int(seg.searchsorted(t1, side=side))
        return [(lo, hi)]
    seg1, seg2 = times[head:], times[:head]
    return [
        (head + int(seg1.searchsorted(t0, side="left")),
         head + int(seg1.searchsorted(t1, side=side))),
        (int(seg2.searchsorted(t0, side="left")),
         int(seg2.searchsorted(t1, side=side))),
    ]


def ring_gather(arr: np.ndarray, ranges: Iterable[Tuple[int, int]]) -> np.ndarray:
    """Copy the selected index ranges of one ring array, in order."""
    parts = [arr[lo:hi] for lo, hi in ranges if hi > lo]
    if not parts:
        return np.empty(0, dtype=arr.dtype)
    if len(parts) == 1:
        return parts[0].copy()
    return np.concatenate(parts)


def segment_notify_columns(
    seg_ids: np.ndarray,
    times: np.ndarray,
    values: np.ndarray,
    starts: np.ndarray,
    ends: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Compact listener columns ``(ids, times, values)`` for segment rows.

    Segments select rows ``[starts[j], ends[j])`` of shared columns;
    the result repeats each segment's id over its rows and gathers the
    rows into dense arrays — the shape ingest listeners (and the
    parallel shard tier's task payloads) consume.
    """
    lens = ends - starts
    idx = np.repeat(starts - np.concatenate(([0], np.cumsum(lens)[:-1])), lens)
    idx += np.arange(int(lens.sum()))
    return np.repeat(seg_ids, lens), times[idx], values[idx]


_AGGREGATORS: Dict[str, Callable[[np.ndarray], float]] = {
    "mean": np.mean,
    "min": np.min,
    "max": np.max,
    "sum": np.sum,
    "last": lambda a: float(a[-1]),
    "count": lambda a: float(a.size),
    "p50": lambda a: float(np.percentile(a, 50)),
    "p95": lambda a: float(np.percentile(a, 95)),
    "p99": lambda a: float(np.percentile(a, 99)),
}


class RingBuffer:
    """Fixed-capacity (timestamp, value) ring buffer.

    Timestamps must be appended in non-decreasing order (the collection
    pipeline guarantees arrival-order per series); violating this raises,
    because silently unsorted buffers would corrupt window queries.
    """

    __slots__ = ("capacity", "_times", "_values", "_head", "_count", "_written")

    def __init__(
        self,
        capacity: int = 4096,
        *,
        times: Optional[np.ndarray] = None,
        values: Optional[np.ndarray] = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        if times is None:
            times = np.empty(self.capacity, dtype=np.float64)
        if values is None:
            values = np.empty(self.capacity, dtype=np.float64)
        if times.shape != (self.capacity,) or values.shape != (self.capacity,):
            raise ValueError("preallocated ring arrays must be 1-D of length capacity")
        # Buffer-relocatable layout: the ring never reallocates or aliases
        # beyond these two arrays, so callers may back them with any
        # float64 storage — including multiprocessing shared memory (see
        # repro.shard.parallel.SharedRingBuffer) — and the ring works
        # unchanged from any process mapping the same buffers.
        self._times = times
        self._values = values
        self._head = 0  # next write position
        self._count = 0  # valid entries
        self._written = 0  # total appends ever

    def __len__(self) -> int:
        return self._count

    @property
    def total_appended(self) -> int:
        """Total points ever appended (including overwritten ones)."""
        return self._written

    def append(self, t: float, v: float) -> None:
        if self._count and t < self.last_time():
            raise ValueError(
                f"out-of-order append: t={t} < last={self.last_time()}"
            )
        self._times[self._head] = t
        self._values[self._head] = v
        self._head = (self._head + 1) % self.capacity
        self._count = min(self._count + 1, self.capacity)
        self._written += 1

    def extend(self, times: np.ndarray, values: np.ndarray) -> None:
        """Bulk append of already-sorted arrays."""
        times = np.asarray(times, dtype=np.float64)
        values = np.asarray(values, dtype=np.float64)
        if times.shape != values.shape:
            raise ValueError("times and values must have the same shape")
        if times.size == 0:
            return
        if np.any(np.diff(times) < 0):
            raise ValueError("bulk append requires sorted timestamps")
        if self._count and times[0] < self.last_time():
            raise ValueError("bulk append overlaps existing data")
        self._head, self._count = ring_extend(
            (self._times, self._values), self._head, self._count, (times, values)
        )
        self._written += times.size

    def _extend_sorted(self, times: np.ndarray, values: np.ndarray) -> None:
        """Hot-path bulk append for pre-validated float64 arrays.

        The caller (``TimeSeriesStore.append_batch``) has already sorted
        the segment and checked dtype/shape, so only the cross-call
        overlap invariant is enforced here.  The two-array ring write is
        inlined: per-series segments in a commit are typically a handful
        of points, and the generic :func:`ring_extend` list/zip plumbing
        would dominate the cost at that size.
        """
        n = times.size
        if n == 0:
            return
        if self._count and times[0] < self._times[(self._head - 1) % self.capacity]:
            raise ValueError("bulk append overlaps existing data")
        capacity = self.capacity
        head = self._head
        if n >= capacity:
            self._times[:] = times[-capacity:]
            self._values[:] = values[-capacity:]
            self._head, self._count = 0, capacity
        else:
            end = head + n
            if end <= capacity:
                self._times[head:end] = times
                self._values[head:end] = values
            else:
                split = capacity - head
                self._times[head:] = times[:split]
                self._values[head:] = values[:split]
                self._times[: end % capacity] = times[split:]
                self._values[: end % capacity] = values[split:]
            self._head = end % capacity
            self._count = min(self._count + n, capacity)
        self._written += n

    def arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """All stored points in time order as ``(times, values)`` copies."""
        if self._count < self.capacity:
            return self._times[: self._count].copy(), self._values[: self._count].copy()
        idx = np.arange(self._head, self._head + self.capacity) % self.capacity
        return self._times[idx], self._values[idx]

    def first_time(self) -> float:
        """Oldest retained timestamp, O(1)."""
        if self._count == 0:
            raise IndexError("empty ring buffer")
        if self._count < self.capacity:
            return float(self._times[0])
        return float(self._times[self._head])

    def last_time(self) -> float:
        if self._count == 0:
            raise IndexError("empty ring buffer")
        return float(self._times[(self._head - 1) % self.capacity])

    def last_value(self) -> float:
        if self._count == 0:
            raise IndexError("empty ring buffer")
        return float(self._values[(self._head - 1) % self.capacity])

    def window(self, t0: float, t1: float) -> Tuple[np.ndarray, np.ndarray]:
        """Points with ``t0 <= t <= t1`` in time order.

        Copies only the selected span, not the whole buffer — window
        queries are the hottest read path in the store, and narrow
        windows (loop observations, rollup tails) should cost O(answer).
        """
        ranges = ring_window_ranges(
            self._times, self._head, self._count, t0, t1, right_inclusive=True
        )
        return ring_gather(self._times, ranges), ring_gather(self._values, ranges)


@dataclass
class SeriesStats:
    """Summary statistics for one series over a window (query helper)."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float

    @staticmethod
    def from_values(values: np.ndarray) -> "SeriesStats":
        if values.size == 0:
            return SeriesStats(0, float("nan"), float("nan"), float("nan"), float("nan"))
        return SeriesStats(
            int(values.size),
            float(np.mean(values)),
            float(np.std(values)),
            float(np.min(values)),
            float(np.max(values)),
        )


class TimeSeriesStore:
    """Map of :class:`SeriesKey` → :class:`RingBuffer` with query helpers.

    The store owns the :class:`~repro.telemetry.batch.SeriesRegistry`
    that interns keys to dense integer ids — the columnar pipeline moves
    ``series_ids`` arrays and resolves keys only here, on commit.  Every
    write path (scalar, per-series bulk, columnar batch) additionally:

    * bumps a per-metric **write epoch** (used by the query layer to
      version-key cached results, so a commit inside a cached window
      invalidates exactly that metric's entries), and
    * notifies registered **ingest listeners** with the committed
      columns, which is how rollup folding consumes new data without
      rescanning raw rings.
    """

    def __init__(self, default_capacity: int = 4096) -> None:
        if default_capacity <= 0:
            raise ValueError("default_capacity must be positive")
        self.default_capacity = int(default_capacity)
        self.registry = SeriesRegistry()
        self._series: Dict[SeriesKey, RingBuffer] = {}
        #: series id → (buffer, metric) cache so the columnar commit path
        #: hashes a small int instead of a SeriesKey per segment
        self._id_buffers: Dict[int, Tuple[RingBuffer, str]] = {}
        self._capacity_overrides: Dict[str, int] = {}
        self._metric_epoch: Dict[str, int] = {}
        #: per-metric sorted-key index + generation counter: loop-style
        #: readers issue the same selection every tick, so key listing
        #: and matcher evaluation must not rescan the whole series map
        self._metric_keys: Dict[str, List[SeriesKey]] = {}
        self._metric_keys_dirty: set = set()
        self._metric_gen: Dict[str, int] = {}
        self._listeners: List[IngestListener] = []
        self.total_inserts = 0

    # ------------------------------------------------------------ management
    def set_capacity(self, metric: str, capacity: int) -> None:
        """Per-metric capacity override applied to new series."""
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._capacity_overrides[metric] = int(capacity)

    def add_ingest_listener(self, listener: IngestListener) -> None:
        """Register a callback invoked after every committed write.

        Listeners receive ``(series_ids, times, values)`` grouped by
        series and time-sorted within each series; the arrays are owned
        by the store's commit and must not be mutated.
        """
        self._listeners.append(listener)

    def metric_epoch(self, metric: str) -> int:
        """Monotone counter bumped by every write touching ``metric``."""
        return self._metric_epoch.get(metric, 0)

    def _make_buffer(self, key: SeriesKey, capacity: int) -> RingBuffer:
        """Allocate the ring buffer backing a new series.

        Subclasses override this to relocate ring storage (e.g. into
        shared memory for the process-parallel shard tier) without
        touching the interning/epoch bookkeeping in :meth:`_buffer`.
        """
        return RingBuffer(capacity)

    def _buffer(self, key: SeriesKey) -> RingBuffer:
        buf = self._series.get(key)
        if buf is None:
            cap = self._capacity_overrides.get(key.metric, self.default_capacity)
            buf = self._make_buffer(key, cap)
            self._series[key] = buf
            metric = key.metric
            self._metric_keys.setdefault(metric, []).append(key)
            self._metric_keys_dirty.add(metric)
            self._metric_gen[metric] = self._metric_gen.get(metric, 0) + 1
        return buf

    def _buffer_for_id(self, sid: int) -> Tuple[RingBuffer, str]:
        """Resolve and cache the ``(buffer, metric)`` entry for a series id."""
        key = self.registry.key_for(sid)
        entry = (self._buffer(key), key.metric)
        self._id_buffers[sid] = entry
        return entry

    # --------------------------------------------------------------- writing
    def _record_commit(self, metrics: Iterable[str]) -> None:
        """Bump the write epoch of every touched metric."""
        epochs = self._metric_epoch
        for metric in metrics:
            epochs[metric] = epochs.get(metric, 0) + 1

    def _notify(self, ids: np.ndarray, times: np.ndarray, values: np.ndarray) -> None:
        """Deliver committed columns to every ingest listener."""
        for listener in self._listeners:
            listener(ids, times, values)

    def insert(self, key: SeriesKey, t: float, value: float) -> None:
        self._buffer(key).append(t, value)
        self.total_inserts += 1
        self._record_commit((key.metric,))
        if self._listeners:
            self._notify(
                np.array([self.registry.id_for(key)], dtype=np.int64),
                np.array([t], dtype=np.float64),
                np.array([value], dtype=np.float64),
            )

    def insert_batch(self, key: SeriesKey, times: np.ndarray, values: np.ndarray) -> None:
        times = np.asarray(times, dtype=np.float64)
        values = np.asarray(values, dtype=np.float64)
        self._buffer(key).extend(times, values)
        self.total_inserts += int(times.size)
        if times.size == 0:
            return
        self._record_commit((key.metric,))
        if self._listeners:
            # copies, not the caller's arrays: listeners may buffer the
            # columns past this call (rollup folds), and the caller is
            # free to reuse its scratch arrays afterwards
            self._notify(
                np.full(times.size, self.registry.id_for(key), dtype=np.int64),
                times.copy(),
                values.copy(),
            )

    def append_batch(
        self,
        series_ids: np.ndarray,
        times: np.ndarray,
        values: np.ndarray,
    ) -> None:
        """Columnar bulk commit: rows for many series in one call.

        Rows may arrive in any order; one stable ``lexsort`` groups them
        by series id with per-series time order, then each series gets a
        single bulk ring extend — the per-sample cost is a few NumPy
        slice writes, not a Python call per point.  Ids must come from
        this store's :attr:`registry`.
        """
        series_ids = np.asarray(series_ids, dtype=np.int64)
        times = np.asarray(times, dtype=np.float64)
        values = np.asarray(values, dtype=np.float64)
        n = series_ids.size
        if not (series_ids.shape == times.shape == values.shape):
            raise ValueError("series_ids, times, values must be parallel 1-D arrays")
        if n == 0:
            return
        ids_s, times_s, values_s, starts, ends = sort_series_columns(
            series_ids, times, values
        )
        touched_metrics = set()
        id_buffers = self._id_buffers
        for sid, lo, hi in zip(ids_s[starts].tolist(), starts.tolist(), ends.tolist()):
            entry = id_buffers.get(sid)
            if entry is None:
                entry = self._buffer_for_id(sid)
            buf, metric = entry
            buf._extend_sorted(times_s[lo:hi], values_s[lo:hi])
            touched_metrics.add(metric)
        self.total_inserts += int(n)
        self._record_commit(touched_metrics)
        if self._listeners:
            self._notify(ids_s, times_s, values_s)

    def append_segments(
        self,
        seg_ids: np.ndarray,
        times: np.ndarray,
        values: np.ndarray,
        starts: np.ndarray,
        ends: np.ndarray,
    ) -> None:
        """Trusted commit of pre-sorted per-series segments.

        ``times``/``values`` are shared columns; rows ``[starts[j],
        ends[j])`` belong to series ``seg_ids[j]`` and are time-sorted
        (the :func:`~repro.telemetry.batch.sort_series_columns`
        contract).  This is the shard-router entry: the facade sorts a
        batch once, then hands each shard only its segments — no
        per-shard re-sort.  Segments must be ordered by series id and
        ids must come from this store's :attr:`registry`.
        """
        n = 0
        touched_metrics = set()
        id_buffers = self._id_buffers
        for sid, lo, hi in zip(seg_ids.tolist(), starts.tolist(), ends.tolist()):
            entry = id_buffers.get(sid)
            if entry is None:
                entry = self._buffer_for_id(sid)
            buf, metric = entry
            # Inlined RingBuffer._extend_sorted: this loop is the router's
            # per-commit floor (one iteration per live series), and at
            # 4096-series cardinality the helper's call overhead alone
            # costs ~10% of commit wall time — the margin of the E16
            # no-regression gate.  Invariants must match _extend_sorted
            # exactly; tests/shard/test_sharded_store.py pins the two
            # implementations to bit-identical stores, including the
            # wraparound cases.
            seg_t = times[lo:hi]
            seg_n = hi - lo
            count = buf._count
            capacity = buf.capacity
            if count and seg_t[0] < buf._times[(buf._head - 1) % capacity]:
                raise ValueError("bulk append overlaps existing data")
            seg_v = values[lo:hi]
            head = buf._head
            if seg_n >= capacity:
                buf._times[:] = seg_t[-capacity:]
                buf._values[:] = seg_v[-capacity:]
                buf._head, buf._count = 0, capacity
            else:
                end = head + seg_n
                if end <= capacity:
                    buf._times[head:end] = seg_t
                    buf._values[head:end] = seg_v
                    buf._head = end % capacity
                else:
                    split = capacity - head
                    buf._times[head:] = seg_t[:split]
                    buf._values[head:] = seg_v[:split]
                    buf._times[: end - capacity] = seg_t[split:]
                    buf._values[: end - capacity] = seg_v[split:]
                    buf._head = end - capacity
                count += seg_n
                buf._count = count if count < capacity else capacity
            buf._written += seg_n
            touched_metrics.add(metric)
            n += seg_n
        if n == 0:
            return
        self.total_inserts += n
        self._record_commit(touched_metrics)
        if self._listeners:
            self._notify(*segment_notify_columns(seg_ids, times, values, starts, ends))

    # --------------------------------------------------------------- reading
    def has(self, key: SeriesKey) -> bool:
        buf = self._series.get(key)
        return buf is not None and len(buf) > 0

    def series_keys(self, metric: Optional[str] = None) -> list[SeriesKey]:
        if metric is None:
            return sorted(self._series, key=str)
        keys = self._metric_keys.get(metric)
        if keys is None:
            return []
        if metric in self._metric_keys_dirty:
            keys.sort(key=str)
            self._metric_keys_dirty.discard(metric)
        return list(keys)

    def series_generation(self, metric: str) -> int:
        """Monotone counter bumped when a new series of ``metric`` appears.

        Readers that resolve label matchers to concrete keys can cache
        the resolution against this generation — selection only changes
        when the key set does, not on every write.
        """
        return self._metric_gen.get(metric, 0)

    def cardinality(self) -> int:
        """Number of distinct live series (the Section IV design concern)."""
        return len(self._series)

    def latest(self, key: SeriesKey) -> Optional[Tuple[float, float]]:
        buf = self._series.get(key)
        if buf is None or len(buf) == 0:
            return None
        return buf.last_time(), buf.last_value()

    def earliest_time(self, key: SeriesKey) -> Optional[float]:
        """Oldest retained timestamp of a series, O(1); None when empty."""
        buf = self._series.get(key)
        if buf is None or len(buf) == 0:
            return None
        return buf.first_time()

    def query(self, key: SeriesKey, t0: float, t1: float) -> Tuple[np.ndarray, np.ndarray]:
        """Window query; empty arrays when the series is absent."""
        buf = self._series.get(key)
        if buf is None:
            return np.empty(0), np.empty(0)
        return buf.window(t0, t1)

    def stats(self, key: SeriesKey, t0: float, t1: float) -> SeriesStats:
        _, values = self.query(key, t0, t1)
        return SeriesStats.from_values(values)

    def rate(self, key: SeriesKey, t0: float, t1: float) -> Optional[float]:
        """Average per-second increase over a window (for COUNTER metrics).

        Counter resets (the process restarted and the counter dropped)
        are clamped to per-segment positive increases: a drop contributes
        the post-reset value rather than a negative delta, so restarts
        never produce negative or understated rates.
        """
        from repro.query.kernels import counter_increase

        times, values = self.query(key, t0, t1)
        if times.size < 2 or times[-1] == times[0]:
            return None
        total = float(np.sum(counter_increase(values)))
        return total / float(times[-1] - times[0])

    def downsample(
        self,
        key: SeriesKey,
        t0: float,
        t1: float,
        step: float,
        agg: str = "mean",
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Aggregate the window into ``step``-second bins.

        Returns bin-start times and aggregated values; empty bins are
        dropped (matching PromQL-style range-vector semantics).
        """
        if step <= 0:
            raise ValueError("step must be positive")
        if agg not in _AGGREGATORS:
            raise ValueError(f"unknown aggregator {agg!r}; choose from {sorted(_AGGREGATORS)}")
        from repro.query.kernels import grouped_aggregate

        times, values = self.query(key, t0, t1)
        if times.size == 0:
            return np.empty(0), np.empty(0)
        bins = np.floor((times - t0) / step).astype(np.int64)
        nz_bins, out_v = grouped_aggregate(bins, values, agg, times=times)
        return t0 + nz_bins * step, out_v

    def aggregate_across(
        self,
        metric: str,
        t0: float,
        t1: float,
        agg: str = "mean",
    ) -> Optional[float]:
        """Aggregate all points of all series of one metric over a window."""
        try:
            fn = _AGGREGATORS[agg]
        except KeyError:
            raise ValueError(f"unknown aggregator {agg!r}") from None
        chunks = []
        for key in self._series:
            if key.metric != metric:
                continue
            _, values = self.query(key, t0, t1)
            if values.size:
                chunks.append(values)
        if not chunks:
            return None
        return float(fn(np.concatenate(chunks)))
