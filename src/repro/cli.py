"""Command-line interface.

``python -m repro <command>``:

* ``experiments [--quick] [--seeds ...]`` — regenerate every experiment
  table (the EXPERIMENTS.md content).
* ``list`` — enumerate experiments with their paper anchors.
* ``version`` — print the package version.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

EXPERIMENT_INDEX = [
    ("E1", "Fig. 1", "holistic monitoring + ODA pipeline"),
    ("E2", "Fig. 2", "MAPE-K pattern scalability/stability/robustness"),
    ("E3", "Fig. 3 / §III", "Scheduler case vs baselines"),
    ("E4", "§III case 1", "Maintenance: job continuity via checkpoints"),
    ("E5", "§III case 2", "I/O QoS adaptation"),
    ("E6", "§III case 3", "OST failover"),
    ("E7", "§III case 4", "Misconfiguration detect/advise/fix"),
    ("E8", "§I", "value of response vs human latency"),
    ("E9", "§IV", "small continual vs large batch models"),
    ("E10", "§IV", "TSDB + model-metadata storage paths"),
    ("E11", "§III.iv", "trust/guard budget sweep"),
    ("E12", "§II i–ii", "component interchange matrix"),
]


def cmd_list() -> int:
    width = max(len(anchor) for _, anchor, _ in EXPERIMENT_INDEX)
    for exp_id, anchor, title in EXPERIMENT_INDEX:
        print(f"{exp_id:4s} {anchor:{width}s}  {title}")
    return 0


def cmd_version() -> int:
    from repro import __version__

    print(__version__)
    return 0


def cmd_experiments(quick: bool, seeds: List[int]) -> int:
    from repro.experiments.runner import run_all

    run_all(quick=quick, seeds=seeds)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MAPE-K autonomy loops for HPC MODA (CLUSTER 2023 reproduction)",
    )
    sub = parser.add_subparsers(dest="command")
    exp = sub.add_parser("experiments", help="regenerate every experiment table")
    exp.add_argument("--quick", action="store_true", help="reduced problem sizes")
    exp.add_argument("--seeds", type=int, nargs="*", default=[0, 1, 2])
    sub.add_parser("list", help="list experiments and their paper anchors")
    sub.add_parser("version", help="print the package version")
    args = parser.parse_args(argv)

    if args.command == "experiments":
        return cmd_experiments(args.quick, args.seeds)
    if args.command == "list":
        return cmd_list()
    if args.command == "version":
        return cmd_version()
    parser.print_help()
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
