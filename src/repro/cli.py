"""Command-line interface.

``python -m repro <command>``:

* ``experiments [--quick] [--seeds ...]`` — regenerate every experiment
  table (the EXPERIMENTS.md content).
* ``list`` — enumerate experiments with their paper anchors.
* ``query "<expr>"`` — run a short simulated shift and serve a metric
  query expression (e.g. ``mean(node_cpu_util[600s] by 60s)``) through
  the multi-tenant front door over the vectorized query engine with
  tiered rollups.  ``--shards N`` partitions the telemetry store and
  serves the query through the federated scatter-gather engine;
  ``--parallel W`` additionally backs the shards with shared-memory
  columns and executes the per-shard scatter/append/fold passes on W
  worker processes.  ``query``, ``serve``, and ``bench-serve`` share
  one serving flag group: ``--tenant`` / ``--qps`` / ``--deadline-ms``
  / ``--stats`` (the unified metrics registry, ``serve.*`` included).
* ``serve`` — run a sustained multi-tenant serving demo: driver threads
  for an interactive, a batch, and a best-effort tenant hammer the
  front door while ingest keeps committing under the write gate; prints
  the per-tenant admission/degrade/shed/p99 table.
* ``loops`` — run a watch-loop fleet on the unified runtime over a
  simulated shift and print per-loop stats, fused-query serving
  counters, and the loops' own self-telemetry queried back out.
* ``bench-ingest`` — run the E14 ingest benchmark (columnar pipeline vs
  the per-object seed path), optionally writing a JSON artifact.
* ``bench-loops`` — run the E15 loop-fleet benchmark (fused monitoring
  vs per-loop ad-hoc scans + runtime hosting overhead), optionally
  writing a JSON artifact.
* ``bench-shard`` — run the E16 sharded-store benchmark (federated
  scatter-gather queries + routed ingest vs one store), optionally
  writing a JSON artifact; ``--smoke`` runs a small exactness-only
  configuration for CI.
* ``supervise`` — run a fleet with injected stuck/frozen loops under
  the meta-loop supervisors and print the healing timeline (healthy →
  degraded → restored staleness, audited restarts).
* ``bench-supervise`` — run the E17 fleet-supervision benchmark
  (self-healing staleness restoration + adaptive fusion vs never-fused
  monitoring), optionally writing a JSON artifact.
* ``bench-parallel`` — run the E18 process-parallel shard benchmark
  (worker-pool scatter speedup, shared-memory layout overhead, and the
  E15/E17 fleet reruns on the parallel engine), optionally writing a
  JSON artifact; ``--smoke`` runs a small exactness-only configuration
  for CI.  ``bench-shard --parallel W`` runs just the two storage
  halves at E16 sizing.
* ``bench-standing`` — run the E19 standing-query benchmark (hub
  serving from maintained partial aggregates vs PR 5 fused re-scans,
  plus the per-commit ingest-listener overhead), optionally writing a
  JSON artifact; ``--smoke`` runs a small exactness-only configuration
  for CI.
* ``trace`` — run a watch-loop fleet with span tracing enabled and
  export the span ring as Chrome-trace JSON (loads in Perfetto /
  ``chrome://tracing``); ``--shards``/``--parallel`` exercise the
  federated and worker-process paths, whose worker-side spans arrive
  parented under the dispatching scatter span.
* ``bench-obs`` — run the E20 observability-overhead benchmark
  (disabled-mode and enabled-mode tracing costs on the E14 ingest and
  E19 standing-serving paths, priced ≤2% / ≤5%), optionally writing a
  JSON artifact; ``--smoke`` runs a small exactness-only configuration
  for CI.
* ``bench-serve`` — run the E21 multi-tenant serving benchmark
  (sustained mixed load with admission/degrade/shed accounting and
  exactness gates, plus quota isolation of a quiet tenant under a
  greedy flood), optionally writing a JSON artifact; ``--smoke`` runs a
  small exactness-and-accounting-only configuration for CI.
* ``bench-diff OLD NEW`` — compare two benchmark JSON artifacts
  (typically merged ``BENCH_all.json`` files from two runs) and report
  throughput metrics (``*_per_s``, ``*speedup*``) that regressed beyond
  ``--threshold`` (default 20%); ``--fail`` turns regressions into a
  non-zero exit.
* ``bench-trend ARTIFACT...`` — fold two or more merged artifacts
  (oldest first) into a per-metric throughput trend table, written as
  markdown to ``--out`` (default ``BENCH_trend.md``) — the slow-drift
  complement of the pairwise diff, warn-only by design.
* ``version`` — print the package version.

Every ``bench-*`` JSON artifact is stamped with the producing commit's
git SHA and a UTC timestamp so CI rows are comparable across runs.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

EXPERIMENT_INDEX = [
    ("E1", "Fig. 1", "holistic monitoring + ODA pipeline"),
    ("E2", "Fig. 2", "MAPE-K pattern scalability/stability/robustness"),
    ("E3", "Fig. 3 / §III", "Scheduler case vs baselines"),
    ("E4", "§III case 1", "Maintenance: job continuity via checkpoints"),
    ("E5", "§III case 2", "I/O QoS adaptation"),
    ("E6", "§III case 3", "OST failover"),
    ("E7", "§III case 4", "Misconfiguration detect/advise/fix"),
    ("E8", "§I", "value of response vs human latency"),
    ("E9", "§IV", "small continual vs large batch models"),
    ("E10", "§IV", "TSDB + model-metadata storage paths"),
    ("E11", "§III.iv", "trust/guard budget sweep"),
    ("E12", "§II i–ii", "component interchange matrix"),
    ("E13", "§IV", "query engine: tiered rollups + cache vs raw scans"),
    ("E14", "§IV", "columnar ingest pipeline vs per-object seed path"),
    ("E15", "§II/§IV", "loop runtime: fused fleet monitoring vs ad-hoc scans"),
    ("E16", "§IV", "sharded store: federated scatter-gather vs one store"),
    ("E17", "§II/§IV", "fleet supervision: meta-loops over loop self-telemetry"),
    ("E18", "§IV", "process-parallel shards: shared-memory columns + worker pool"),
    ("E19", "§IV", "standing queries: O(new samples) incremental monitor serving"),
    ("E20", "§IV", "observability: span tracing + metrics priced on the hot paths"),
    ("E21", "§IV", "serving front door: multi-tenant admission, degrade, shed"),
]


def cmd_list() -> int:
    width = max(len(anchor) for _, anchor, _ in EXPERIMENT_INDEX)
    for exp_id, anchor, title in EXPERIMENT_INDEX:
        print(f"{exp_id:4s} {anchor:{width}s}  {title}")
    return 0


def cmd_version() -> int:
    from repro import __version__

    print(__version__)
    return 0


def cmd_experiments(quick: bool, seeds: List[int]) -> int:
    from repro.experiments.runner import run_all

    run_all(quick=quick, seeds=seeds)
    return 0


def _shift_client(
    *,
    nodes: int,
    horizon: float,
    seed: int,
    shards: int = 1,
    parallel: int = 0,
    tenants=(),
    rollup_resolutions=(60.0, 600.0),
):
    """One served cluster + workload shift — the shared construction every
    serving command uses (this replaced per-command engine wiring)."""
    from repro.api import Client, ClusterConfig
    from repro.sim import Engine, RngRegistry
    from repro.workloads import WorkloadGenerator, WorkloadSpec

    sim = Engine()
    client = Client.from_config(
        ClusterConfig(
            n_nodes=nodes, telemetry_period_s=10.0, seed=seed,
            shards=shards, parallel=parallel,
        ),
        sim=sim,
        tenants=tenants,
        rollup_resolutions=rollup_resolutions,
    )
    generator = WorkloadGenerator(
        sim,
        client.cluster.scheduler,
        RngRegistry(seed=seed).stream("workload"),
        WorkloadSpec(n_jobs=max(4, nodes // 2), arrival_rate_per_s=1 / 120.0),
    )
    generator.start()
    client.run(until=horizon)
    return client


def cmd_query(
    expr: str,
    nodes: int,
    horizon: float,
    seed: int,
    shards: int,
    parallel: int,
    show_stats: bool,
    tenant: str = "default",
    qps: float = 1000.0,
    deadline_ms: Optional[float] = None,
) -> int:
    """Simulate a short shift, then serve ``expr`` through the front door."""
    from repro.api import TenantSpec

    client = _shift_client(
        nodes=nodes, horizon=horizon, seed=seed, shards=shards, parallel=parallel,
        tenants=[TenantSpec(tenant, qps=qps, max_inflight=8, queue_depth=256)],
    )
    with client:
        fd = client.front_door
        if fd.standing is not None:
            # a one-shot CLI query never crosses the promotion threshold:
            # register eligible shapes up front so the invocation
            # demonstrates the standing serving path (parse errors are
            # surfaced by the serving path below, not here)
            try:
                with fd.write_gate():
                    fd.standing.register(client.engine.parse(expr))
            except Exception:
                pass
        result = client.query(expr, tenant=tenant, deadline_ms=deadline_ms)
        if result.status == "error":
            print(result.reason, file=sys.stderr)
            return 2
        if not result.ok:
            print(f"{result.status}: {result.reason} (tenant={result.tenant})",
                  file=sys.stderr)
            return 2
        er = result.engine_result
        print(f"# {er.query.to_expr()}")
        print(f"# window=[{er.t0:g}, {er.t1:g}]s source={result.source} "
              f"tenant={result.tenant} latency={result.latency_ms:.2f}ms "
              f"series={len(result.series)}")
        for series in result.series:
            if series.values.size == 1:
                print(f"{series!s:30s} {series.values[0]:.4f}")
                continue
            head = ", ".join(f"{v:.3f}" for v in series.values[:8])
            tail = ", …" if series.values.size > 8 else ""
            print(f"{series!s:30s} n={series.values.size:4d} [{head}{tail}]")
        if not result.series:
            print("(no matching data — try `mean(node_cpu_util[600s] by 60s)`)")
        stats = client.engine.stats()
        print(f"# engine: raw={stats['served_raw']:.0f} rollup={stats['served_rollup']:.0f} "
              f"cache_hit_rate={stats.get('cache_hit_rate', 0.0):.0%} "
              f"store_series={client.cluster.store.cardinality()}")
        if show_stats:
            from repro.obs import MetricsRegistry

            reg = client.metrics(MetricsRegistry())
            if "parallel_scatters" in stats:
                reg.record("parallel.appends",
                           float(client.cluster.store.parallel_appends),
                           alias="parallel_appends")
            print("# stats:")
            for line in reg.render():
                print(f"  {line}")
            if "shards" in stats:
                print(f"  # shard series: {client.cluster.store.shard_cardinalities()}")
    return 0


def cmd_serve(
    nodes: int,
    horizon: float,
    seed: int,
    duration: float,
    drivers: int,
    tenant: str,
    qps: float,
    deadline_ms: Optional[float],
    show_stats: bool,
) -> int:
    """Serve a sustained multi-tenant load; print the admission story."""
    from repro.api import TenantSpec
    from repro.experiments.serve_exp import build_client, run_mixed_load

    tenants = [
        TenantSpec(tenant, qps=qps, max_inflight=8, queue_depth=256, priority=2),
        TenantSpec("batch", qps=qps / 2.0, max_inflight=4, queue_depth=64,
                   priority=1),
        TenantSpec("besteffort", qps=qps / 2.0, max_inflight=2, queue_depth=16,
                   priority=0),
    ]
    client = build_client(seed=seed, n_nodes=nodes, horizon_s=horizon,
                          tenants=tenants)
    with client:
        plan = [
            (tenant, drivers, 0.0, deadline_ms),
            ("batch", max(1, drivers // 2), 0.0,
             deadline_ms * 2.0 if deadline_ms is not None else None),
            ("besteffort", max(1, drivers // 2), 0.0, deadline_ms),
        ]
        run_mixed_load(client, plan, duration_s=duration)
        stats = client.front_door.stats()
        print(f"served {stats['served']:.0f}/{stats['submitted']:.0f} requests "
              f"in {duration:.1f}s wall "
              f"(hot {stats['hot_hits']:.0f}, standing {stats['standing_served']:.0f}, "
              f"degraded {stats['degraded']:.0f}); rejected: "
              f"quota {stats['rejected_quota']:.0f}, "
              f"queue_full {stats['rejected_queue_full']:.0f}, "
              f"shed {stats['shed']:.0f}, expired {stats['expired']:.0f}")
        print(f"{'tenant':12s} {'prio':>4s} {'submitted':>9s} {'served':>7s} "
              f"{'degraded':>8s} {'shed':>5s} {'rejected':>8s} {'expired':>7s} "
              f"{'p99_ms':>8s}")
        for key in sorted(k for k in stats if k.startswith("tenant_")):
            t = stats[key]
            rejected = t["rejected_quota"] + t["rejected_queue_full"]
            print(f"{key[len('tenant_'):]:12s} {t['priority']:4.0f} "
                  f"{t['submitted']:9.0f} {t['served']:7.0f} {t['degraded']:8.0f} "
                  f"{t['shed']:5.0f} {rejected:8.0f} {t['expired']:7.0f} "
                  f"{t['p99_ms']:8.2f}")
        if show_stats:
            from repro.obs import MetricsRegistry

            reg = client.metrics(MetricsRegistry())
            print("# stats:")
            for line in reg.render():
                print(f"  {line}")
    return 0


def cmd_bench_serve(
    nodes: int,
    duration: float,
    drivers: int,
    json_path: Optional[str],
    smoke: bool,
    tenant: str = "default",
    qps: float = 4000.0,
    deadline_ms: float = 250.0,
    show_stats: bool = False,
) -> int:
    """Run the E21 serving benchmark and print (optionally dump) rows.

    ``--smoke`` shrinks both halves and checks only exactness and
    admission accounting, not the QPS/p99/isolation gates — the CI
    wiring check.  The full run additionally gates served p99 at the
    request deadline, quiet-tenant p99 inflation at 2x under a greedy
    flood, and (multi-core hosts only) aggregate throughput at
    2000 QPS.
    """
    import json
    import os

    from repro.experiments.provenance import stamp
    from repro.experiments.report import render_table
    from repro.experiments.serve_exp import run_serve_benchmark

    if smoke:
        nodes, duration, drivers = min(nodes, 16), min(duration, 0.8), min(drivers, 2)
    rows = run_serve_benchmark(
        seed=0, n_nodes=nodes, duration_s=duration, n_drivers=drivers,
        tenant=tenant, qps_quota=qps,
        deadline_ms=deadline_ms if deadline_ms is not None else 250.0,
    )
    load, isolation = rows["load"], rows["isolation"]
    print(render_table([load], title="E21 — sustained mixed multi-tenant serving"))
    print(render_table([isolation], title="E21b — quota isolation under a greedy flood"))
    if load["match"] != 1.0:
        print("ERROR: non-degraded served answers diverged from direct engine execution",
              file=sys.stderr)
        return 1
    if load["accounting_ok"] != 1.0 or isolation["accounting_ok"] != 1.0:
        print("ERROR: per-tenant admission accounting does not add up", file=sys.stderr)
        return 1
    if not smoke:
        if load["p99_ms"] > load["deadline_ms"]:
            print("ERROR: served p99 above the request deadline", file=sys.stderr)
            return 1
        if isolation["isolation_ok"] != 1.0:
            print("ERROR: greedy tenant inflated the quiet tenant's p99 beyond 2x",
                  file=sys.stderr)
            return 1
        if (os.cpu_count() or 1) >= 4 and load["qps"] < 2000.0:
            print("ERROR: aggregate serving throughput below the 2000 QPS gate",
                  file=sys.stderr)
            return 1
    if show_stats:
        from repro.obs import MetricsRegistry, absorb_stats

        reg = MetricsRegistry()
        absorb_stats(reg, load, "serve")
        print("# stats:")
        for line in reg.render():
            print(f"  {line}")
    print(
        f"served {load['qps']:.0f} QPS aggregate, p99 {load['p99_ms']:.2f}ms "
        f"(deadline {load['deadline_ms']:.0f}ms, "
        f"hot {load['hot_hits']:.0f} / standing {load['standing_served']:.0f} / "
        f"degraded {load['degraded']:.0f} / shed {load['shed']:.0f}); "
        f"quiet-tenant p99 {isolation['quiet_solo_p99_ms']:.2f}ms solo -> "
        f"{isolation['quiet_contended_p99_ms']:.2f}ms contended "
        f"({isolation['greedy_rejected']:.0f} greedy rejections)"
    )
    if json_path:
        with open(json_path, "w", encoding="utf-8") as fh:
            json.dump(stamp(rows), fh, indent=2, sort_keys=True)
        print(f"wrote {json_path}")
    return 0


def cmd_loops(n_loops: int, nodes: int, horizon: float, seed: int) -> int:
    """Host a watch-loop fleet on the runtime over a simulated cluster shift."""
    from repro.cluster import Cluster, ClusterConfig
    from repro.experiments.loops_exp import watch_fleet_specs
    from repro.experiments.report import render_table
    from repro.sim import Engine, RngRegistry
    from repro.workloads import WorkloadGenerator, WorkloadSpec

    engine = Engine()
    cluster = Cluster(engine, ClusterConfig(n_nodes=nodes, telemetry_period_s=10.0, seed=seed))
    generator = WorkloadGenerator(
        engine,
        cluster.scheduler,
        RngRegistry(seed=seed).stream("workload"),
        WorkloadSpec(n_jobs=max(4, nodes // 2), arrival_rate_per_s=1 / 120.0),
    )
    generator.start()
    runtime = cluster.loop_runtime()
    specs = watch_fleet_specs(
        "node_cpu_util",
        cluster.node_ids(),
        n_loops,
        period_s=60.0,
        window_s=300.0,
        threshold=0.5,
    )
    for spec in specs:
        spec.start_at = 300.0
    runtime.add_many(specs, start=True)
    engine.run(until=horizon)
    runtime.stop()

    print(render_table(runtime.loop_stats()[: min(n_loops, 12)],
                       title=f"repro loops — {n_loops} watch loops over {nodes} nodes"))
    print()
    stats = runtime.stats()
    print(f"fleet: {stats['iterations_total']:.0f} iterations, "
          f"{stats['hub_fused_served']:.0f} fused reads, "
          f"{stats['hub_engine_served_raw'] + stats['hub_engine_served_rollup']:.0f} "
          f"query executions, cache hit rate "
          f"{stats.get('hub_engine_cache_hit_rate', 0.0):.0%}")
    # the loops are themselves monitorable: query their self-telemetry back
    mean_ms = runtime.query_engine.scalar("mean(loop_iteration_ms)", at=engine.now)
    if mean_ms is not None:
        print(f"self-telemetry: mean loop_iteration_ms = {mean_ms:.3f}")
    return 0


def cmd_bench_loops(n_loops: int, ticks: int, json_path: Optional[str]) -> int:
    """Run the E15 loop-fleet benchmark and print (optionally dump) the rows."""
    import json

    from repro.experiments.loops_exp import run_loop_fleet_benchmark, run_runtime_overhead
    from repro.experiments.provenance import stamp
    from repro.experiments.report import render_table

    fleet = run_loop_fleet_benchmark(n_loops=n_loops, ticks=ticks)
    overhead = run_runtime_overhead()
    print(render_table([fleet], title="E15 — fused fleet monitoring vs per-loop ad-hoc scans"))
    print(render_table([overhead], title="E15b — runtime hosting overhead"))
    if fleet["match"] != 1.0:
        print("ERROR: fused and ad-hoc fleets disagreed on analyzer verdicts", file=sys.stderr)
        return 1
    print(
        f"monitor speedup: {fleet['monitor_speedup']:.2f}x "
        f"({fleet['adhoc_queries']:.0f} -> {fleet['fused_queries']:.0f} query executions); "
        f"hosting overhead {overhead['overhead_ratio']:.2f}x"
    )
    if json_path:
        with open(json_path, "w", encoding="utf-8") as fh:
            json.dump(
                stamp({"fleet": fleet, "overhead": overhead}), fh, indent=2, sort_keys=True
            )
        print(f"wrote {json_path}")
    return 0


def cmd_supervise(n_loops: int, seed: int) -> int:
    """Run a supervised fleet with injected faults; print the healing story."""
    from repro.experiments.report import render_table
    from repro.experiments.supervise_exp import run_supervision_scenario

    row = run_supervision_scenario(seed=seed, n_loops=n_loops, supervise=True)
    trace = row.pop("trace")
    print(render_table([row], title=f"repro supervise — {n_loops} loops, injected faults"))
    print()
    print(f"healthy p95 staleness {row['healthy_p95_s']:.1f}s; after injecting "
          f"{row['frozen']:.0f} frozen + {row['stuck']:.0f} stuck loops and "
          f"{row['restarts']:.0f} supervised restarts, final p95 "
          f"{row['final_p95_s']:.1f}s")
    print("supervisor actions (audited):")
    for t, actor, op, target in trace[:20]:
        print(f"  t={t:8.1f}s {actor}: {op} {target}")
    if len(trace) > 20:
        print(f"  … {len(trace) - 20} more")
    return 0


def cmd_bench_supervise(
    n_loops: int, ticks: int, json_path: Optional[str], smoke: bool
) -> int:
    """Run the E17 supervision benchmark and print (optionally dump) rows.

    ``--smoke`` shrinks the fleet and skips the perf gate on adaptive
    fusion (exactness and healing are still asserted) — the CI wiring
    check, fast enough for every push.
    """
    import json

    from repro.experiments.provenance import stamp
    from repro.experiments.report import render_table
    from repro.experiments.supervise_exp import (
        run_adaptive_fusion_benchmark,
        run_supervision_benchmark,
    )

    if smoke:
        n_loops, ticks = min(n_loops, 64), min(ticks, 12)
    heal = run_supervision_benchmark(seed=0, n_loops=n_loops)
    fusion = run_adaptive_fusion_benchmark(seed=0, n_loops=n_loops, ticks=ticks)
    print(render_table([heal], title="E17 — supervised vs unsupervised fleet under faults"))
    print(render_table([fusion], title="E17b — adaptive fusion vs never-fused monitoring"))
    if heal["restores_within_2x"] != 1.0 or heal["control_degrades"] != 1.0:
        print("ERROR: supervision did not restore fleet staleness within bound",
              file=sys.stderr)
        return 1
    if fusion["match"] != 1.0:
        print("ERROR: adaptive and unfused fleets disagreed on analyzer verdicts",
              file=sys.stderr)
        return 1
    if not smoke and fusion["monitor_speedup"] < 2.0:
        print("ERROR: adaptive fusion below the 2x gate", file=sys.stderr)
        return 1
    print(
        f"healing: p95 staleness {heal['healthy_p95_s']:.1f}s healthy -> "
        f"{heal['unsupervised_p95_s']:.1f}s unsupervised vs "
        f"{heal['supervised_p95_s']:.1f}s supervised "
        f"({heal['restarts']:.0f} audited restarts); "
        f"adaptive fusion {fusion['monitor_speedup']:.2f}x over unfused"
    )
    if json_path:
        with open(json_path, "w", encoding="utf-8") as fh:
            json.dump(stamp({"heal": heal, "fusion": fusion}), fh, indent=2, sort_keys=True)
        print(f"wrote {json_path}")
    return 0


def cmd_bench_ingest(
    nodes: int, metrics: int, horizon: float, json_path: Optional[str]
) -> int:
    """Run the E14 ingest benchmark and print (optionally dump) the row."""
    import json

    from repro.experiments.ingest_exp import run_ingest_benchmark
    from repro.experiments.provenance import stamp
    from repro.experiments.report import render_table

    row = run_ingest_benchmark(
        n_nodes=nodes, metrics_per_node=metrics, horizon_s=horizon
    )
    print(render_table([row], title="E14 — columnar vs per-object ingest"))
    if row["match"] != 1.0:
        print("ERROR: columnar and per-object stores diverged", file=sys.stderr)
        return 1
    print(
        f"speedup: {row['speedup']:.2f}x "
        f"({row['legacy_samples_per_s']:.0f} -> {row['columnar_samples_per_s']:.0f} samples/s), "
        f"events reduced {row['event_reduction']:.1f}x"
    )
    if json_path:
        with open(json_path, "w", encoding="utf-8") as fh:
            json.dump(stamp(row), fh, indent=2, sort_keys=True)
        print(f"wrote {json_path}")
    return 0


def cmd_bench_shard(
    series: int,
    shards: int,
    ticks: int,
    json_path: Optional[str],
    smoke: bool,
    parallel: int = 0,
    show_stats: bool = False,
) -> int:
    """Run the E16 sharded-store benchmark and print (optionally dump) rows.

    ``--smoke`` shrinks the workload and checks only exactness (bitwise
    partition invariance + store equality), not the perf thresholds —
    the CI wiring check, fast enough for every push.  ``--parallel W``
    runs the same storage measurements through the process-parallel
    tier instead (the E18 scatter/ingest halves at this sizing).
    """
    import json

    from repro.experiments.provenance import stamp
    from repro.experiments.report import render_table
    from repro.experiments.shard_exp import run_shard_benchmark

    if parallel > 0:
        return _bench_parallel_storage(
            series=series, shards=shards, workers=parallel, ticks=ticks,
            json_path=json_path, smoke=smoke, show_stats=show_stats,
        )
    if smoke:
        series, ticks, repeats = min(series, 256), min(ticks, 16), 1
    else:
        repeats = 3
    rows = run_shard_benchmark(
        n_series=series, n_shards=shards, ticks=ticks, repeats=repeats
    )
    query, ingest = rows["query"], rows["ingest"]
    print(render_table([query], title="E16 — federated vs unsharded group_by queries"))
    print(render_table([ingest], title="E16 — sharded vs single-store columnar ingest"))
    if query["bit_identical"] != 1.0 or query["match"] != 1.0:
        print("ERROR: federated results diverged from the single-store oracle", file=sys.stderr)
        return 1
    if query["standing_match"] != 1.0:
        print("ERROR: standing-query results diverged from the batch engine", file=sys.stderr)
        return 1
    if ingest["match"] != 1.0:
        print("ERROR: sharded and single-store ingest diverged", file=sys.stderr)
        return 1
    if show_stats:
        from repro.obs import MetricsRegistry, absorb_stats

        reg = MetricsRegistry()
        absorb_stats(reg, {
            "shards": query["n_shards"],
            "fanout_mean": query["fanout_mean"],
            "result_series": query["result_series"],
            "standing_registered_shapes": query["standing_registered_shapes"],
            "standing_updates_applied": query["standing_updates_applied"],
            "standing_scan_fallbacks": query["standing_scan_fallbacks"],
            "standing_speedup": query["standing_speedup"],
        }, "engine")
        print("# stats:")
        for line in reg.render():
            print(f"  {line}")
    print(
        f"query speedup: {query['query_speedup']:.2f}x "
        f"({query['single_queries_per_s']:.1f} -> {query['federated_queries_per_s']:.1f} queries/s, "
        f"fanout {query['fanout_mean']:.1f}); "
        f"ingest {ingest['ingest_speedup']:.2f}x "
        f"({ingest['single_samples_per_s']:.0f} -> {ingest['sharded_samples_per_s']:.0f} samples/s)"
    )
    if json_path:
        with open(json_path, "w", encoding="utf-8") as fh:
            json.dump(stamp(rows), fh, indent=2, sort_keys=True)
        print(f"wrote {json_path}")
    return 0


def _bench_parallel_storage(
    *, series: int, shards: int, workers: int, ticks: int,
    json_path: Optional[str], smoke: bool, show_stats: bool = False,
) -> int:
    """The two E18 storage halves (scatter + ingest) at E16-style sizing."""
    import json

    from repro.experiments.parallel_exp import (
        run_parallel_ingest_benchmark,
        run_parallel_scatter_benchmark,
    )
    from repro.experiments.provenance import stamp
    from repro.experiments.report import render_table

    if smoke:
        series, ticks, repeats = min(series, 256), min(ticks, 16), 1
        workers = min(workers, 2)
    else:
        repeats = 3
    scatter = run_parallel_scatter_benchmark(
        n_series=series, n_shards=shards, workers=workers, ticks=ticks, repeats=repeats
    )
    ingest = run_parallel_ingest_benchmark(
        n_series=series, n_shards=shards, workers=min(workers, 2),
        ticks=ticks, repeats=repeats,
    )
    print(render_table([scatter], title="E18 — parallel vs serial federated scatter"))
    print(render_table([ingest], title="E18 — shared-memory vs plain sharded ingest"))
    if scatter["bit_identical"] != 1.0 or ingest["match"] != 1.0:
        print("ERROR: parallel execution diverged from the serial engine", file=sys.stderr)
        return 1
    if not smoke and scatter["scatter_speedup"] < 2.5:
        print("ERROR: parallel scatter below the 2.5x gate", file=sys.stderr)
        return 1
    if not smoke and ingest["shm_overhead"] > 1.2:
        print("ERROR: shared-memory ingest overhead above the 1.2x gate", file=sys.stderr)
        return 1
    if show_stats:
        from repro.obs import MetricsRegistry, absorb_stats

        reg = MetricsRegistry()
        absorb_stats(reg, {
            "pool_workers": scatter["workers"],
            "parallel_scatters": scatter["parallel_scatters"],
            "parallel_appends": ingest["parallel_appends"],
        }, "engine")
        print("# stats:")
        for line in reg.render():
            print(f"  {line}")
    print(
        f"scatter speedup: {scatter['scatter_speedup']:.2f}x "
        f"({scatter['serial_queries_per_s']:.1f} -> "
        f"{scatter['parallel_queries_per_s']:.1f} queries/s, "
        f"{scatter['workers']:.0f} workers x {scatter['n_shards']:.0f} shards); "
        f"shm ingest overhead {ingest['shm_overhead']:.2f}x"
    )
    if json_path:
        with open(json_path, "w", encoding="utf-8") as fh:
            json.dump(
                stamp({"scatter": scatter, "ingest": ingest}), fh, indent=2, sort_keys=True
            )
        print(f"wrote {json_path}")
    return 0


def cmd_bench_parallel(
    series: int,
    shards: int,
    workers: int,
    ticks: int,
    json_path: Optional[str],
    smoke: bool,
) -> int:
    """Run the E18 process-parallel benchmark and print (optionally dump) rows.

    ``--smoke`` shrinks every section and skips the perf gates (bitwise
    identicality, store equality, verdict/trace parity are still
    asserted) — the CI wiring check, fast enough for every push and for
    single-core runners.
    """
    import json

    from repro.experiments.parallel_exp import run_parallel_benchmark
    from repro.experiments.provenance import stamp
    from repro.experiments.report import render_table

    if smoke:
        series, ticks, repeats = min(series, 256), min(ticks, 16), 1
        workers = min(workers, 2)
        fleet_loops, supervise_loops = 16, 16
    else:
        repeats, fleet_loops, supervise_loops = 3, 64, 32
    rows = run_parallel_benchmark(
        n_series=series, n_shards=shards, workers=workers, ticks=ticks,
        repeats=repeats, fleet_loops=fleet_loops, supervise_loops=supervise_loops,
    )
    scatter, ingest = rows["scatter"], rows["ingest"]
    fleet, supervise = rows["fleet"], rows["supervise"]
    print(render_table([scatter], title="E18 — parallel vs serial federated scatter"))
    print(render_table([ingest], title="E18 — shared-memory vs plain sharded ingest"))
    print(render_table([fleet], title="E18 — E15 watch fleet rerun on the parallel engine"))
    print(render_table([supervise], title="E18 — E17 supervision rerun on the parallel engine"))
    if scatter["bit_identical"] != 1.0 or ingest["match"] != 1.0:
        print("ERROR: parallel execution diverged from the serial engine", file=sys.stderr)
        return 1
    if fleet["match"] != 1.0:
        print("ERROR: fleet verdicts differ between serial and parallel engines",
              file=sys.stderr)
        return 1
    if supervise["trace_match"] != 1.0 or supervise["restores_within_2x"] != 1.0:
        print("ERROR: supervision diverged on the parallel engine", file=sys.stderr)
        return 1
    if not smoke and scatter["scatter_speedup"] < 2.5:
        print("ERROR: parallel scatter below the 2.5x gate", file=sys.stderr)
        return 1
    if not smoke and ingest["shm_overhead"] > 1.2:
        print("ERROR: shared-memory ingest overhead above the 1.2x gate", file=sys.stderr)
        return 1
    print(
        f"scatter speedup: {scatter['scatter_speedup']:.2f}x "
        f"({scatter['workers']:.0f} workers x {scatter['n_shards']:.0f} shards); "
        f"shm ingest overhead {ingest['shm_overhead']:.2f}x; "
        f"fleet + supervision reruns exact on the parallel engine"
    )
    if json_path:
        with open(json_path, "w", encoding="utf-8") as fh:
            json.dump(stamp(rows), fh, indent=2, sort_keys=True)
        print(f"wrote {json_path}")
    return 0


def cmd_bench_standing(
    n_loops: int,
    nodes_per_loop: int,
    ticks: int,
    json_path: Optional[str],
    smoke: bool,
    show_stats: bool = False,
) -> int:
    """Run the E19 standing-query benchmark and print (optionally dump) rows.

    ``--smoke`` shrinks the fleet and checks only exactness (standing
    results vs the uncached batch engine on sampled ticks), not the
    perf gates — the CI wiring check.  The full run gates hub serving
    at ≥5× fused throughput and the per-commit partial-aggregate update
    at ≤1.1× plain columnar ingest.
    """
    import json

    from repro.experiments.provenance import stamp
    from repro.experiments.report import render_table
    from repro.experiments.standing_exp import run_standing_benchmark

    if smoke:
        n_loops = min(n_loops, 32)
        nodes_per_loop = min(nodes_per_loop, 8)
        ticks = min(ticks, 8)
    rows = run_standing_benchmark(
        n_loops=n_loops, nodes_per_loop=nodes_per_loop, ticks=ticks
    )
    hub, ingest = rows["hub"], rows["ingest"]
    print(render_table([hub], title="E19 — standing vs fused hub serving"))
    print(render_table([ingest], title="E19 — standing-update overhead on columnar ingest"))
    if hub["match"] != 1.0:
        print("ERROR: standing results diverged from the uncached batch engine",
              file=sys.stderr)
        return 1
    if hub["auto_registered_shapes"] < 1.0:
        print("ERROR: the hub never auto-registered the hot shape", file=sys.stderr)
        return 1
    if not smoke and hub["hub_speedup"] < 5.0:
        print("ERROR: standing hub serving below the 5x gate", file=sys.stderr)
        return 1
    if not smoke and ingest["standing_overhead"] > 1.1:
        print("ERROR: standing ingest overhead above the 1.1x gate", file=sys.stderr)
        return 1
    if show_stats:
        from repro.obs import MetricsRegistry, absorb_stats

        reg = MetricsRegistry()
        absorb_stats(reg, {
            "standing_registered_shapes": hub["auto_registered_shapes"],
            "standing_served": hub["standing_served"],
            "standing_updates_applied": hub["standing_updates"],
            "standing_scan_fallbacks": hub["standing_fallbacks"],
        }, "engine")
        print("# stats:")
        for line in reg.render():
            print(f"  {line}")
    print(
        f"hub speedup: {hub['hub_speedup']:.2f}x "
        f"({hub['fused_queries_per_s']:.0f} -> {hub['standing_queries_per_s']:.0f} queries/s); "
        f"ingest overhead {ingest['standing_overhead']:.2f}x "
        f"({ingest['plain_samples_per_s']:.0f} -> {ingest['standing_samples_per_s']:.0f} samples/s)"
    )
    if json_path:
        with open(json_path, "w", encoding="utf-8") as fh:
            json.dump(stamp(rows), fh, indent=2, sort_keys=True)
        print(f"wrote {json_path}")
    return 0


def cmd_trace(
    n_loops: int,
    nodes: int,
    horizon: float,
    seed: int,
    shards: int,
    parallel: int,
    out: str,
) -> int:
    """Run a traced fleet shift and export the span ring as Chrome JSON."""
    import json

    from repro.cluster import Cluster, ClusterConfig
    from repro.experiments.loops_exp import watch_fleet_specs
    from repro.obs.trace import TRACER
    from repro.sim import Engine, RngRegistry
    from repro.workloads import WorkloadGenerator, WorkloadSpec

    engine = Engine()
    with Cluster(
        engine,
        ClusterConfig(
            n_nodes=nodes, telemetry_period_s=10.0, seed=seed,
            shards=shards, parallel=parallel,
        ),
    ) as cluster:
        generator = WorkloadGenerator(
            engine,
            cluster.scheduler,
            RngRegistry(seed=seed).stream("workload"),
            WorkloadSpec(n_jobs=max(4, nodes // 2), arrival_rate_per_s=1 / 120.0),
        )
        generator.start()
        runtime = cluster.loop_runtime()
        specs = watch_fleet_specs(
            "node_cpu_util", cluster.node_ids(), n_loops,
            period_s=60.0, window_s=300.0, threshold=0.5,
        )
        for spec in specs:
            spec.start_at = 300.0
        runtime.add_many(specs, start=True)
        TRACER.enable()
        TRACER.reset()
        try:
            engine.run(until=horizon)
            runtime.stop()
            doc = TRACER.export_chrome()
        finally:
            TRACER.disable()
            TRACER.reset()
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)
    events = doc["traceEvents"]
    main_pid = doc["otherData"]["main_pid"]
    worker_events = sum(1 for e in events if e["pid"] != main_pid)
    names: dict = {}
    for e in events:
        names[e["name"]] = names.get(e["name"], 0) + 1
    print(f"traced {len(events)} spans across "
          f"{len({e['pid'] for e in events})} process(es) "
          f"({worker_events} worker-side); wrote {out}")
    for name in sorted(names):
        print(f"  {name:20s} x{names[name]}")
    return 0


def cmd_bench_obs(
    series: int,
    n_loops: int,
    ticks: int,
    json_path: Optional[str],
    smoke: bool,
) -> int:
    """Run the E20 observability-overhead benchmark and print (dump) rows.

    ``--smoke`` shrinks both halves and checks only exactness (traced
    and untraced sweeps must return identical results), not the
    overhead gates — the CI wiring check.  The full run gates disabled
    tracing at ≤1.02× and enabled tracing at ≤1.05× on both the ingest
    and standing-serving paths.
    """
    import json

    from repro.experiments.obs_exp import run_obs_benchmark
    from repro.experiments.provenance import stamp
    from repro.experiments.report import render_table

    if smoke:
        series, n_loops, ticks = min(series, 256), min(n_loops, 16), min(ticks, 6)
    rows = run_obs_benchmark(n_series=series, n_loops=n_loops, ticks=ticks)
    ingest, standing = rows["ingest"], rows["standing"]
    print(render_table([ingest], title="E20 — tracing overhead on columnar ingest"))
    print(render_table([standing], title="E20 — tracing overhead on standing hub serving"))
    if standing["match"] != 1.0:
        print("ERROR: traced and untraced sweeps returned different results",
              file=sys.stderr)
        return 1
    if not smoke:
        for half, row in (("ingest", ingest), ("standing", standing)):
            if row["disabled_overhead"] > 1.02:
                print(f"ERROR: disabled tracing above the 2% gate on {half}",
                      file=sys.stderr)
                return 1
            if row["enabled_overhead"] > 1.05:
                print(f"ERROR: enabled tracing above the 5% gate on {half}",
                      file=sys.stderr)
                return 1
    print(
        f"ingest: disabled {ingest['disabled_overhead']:.3f}x "
        f"enabled {ingest['enabled_overhead']:.3f}x; "
        f"standing: disabled {standing['disabled_overhead']:.3f}x "
        f"enabled {standing['enabled_overhead']:.3f}x "
        f"({standing['spans_recorded']:.0f} spans recorded)"
    )
    if json_path:
        with open(json_path, "w", encoding="utf-8") as fh:
            json.dump(stamp(rows), fh, indent=2, sort_keys=True)
        print(f"wrote {json_path}")
    return 0


def cmd_bench_diff(old_path: str, new_path: str, threshold: float, fail: bool) -> int:
    """Diff two benchmark artifacts; warn (or fail) on throughput drops."""
    from repro.experiments.benchdiff import (
        artifact_shas,
        diff_artifacts,
        load_artifact,
        render_diff,
    )

    try:
        old = load_artifact(old_path)
        new = load_artifact(new_path)
    except (OSError, ValueError) as exc:
        print(f"bench-diff: cannot load artifact: {exc}", file=sys.stderr)
        return 2
    try:
        rows = diff_artifacts(old, new, threshold=threshold)
    except ValueError as exc:
        print(f"bench-diff: {exc}", file=sys.stderr)
        return 2
    old_shas, new_shas = artifact_shas(old), artifact_shas(new)
    if old_shas or new_shas:
        print(f"# old: {', '.join(old_shas) or 'unstamped'}")
        print(f"# new: {', '.join(new_shas) or 'unstamped'}")
    print(render_diff(rows, threshold=threshold))
    regressed = [r for r in rows if r["regressed"]]
    if regressed and fail:
        return 1
    return 0


def cmd_bench_trend(paths: List[str], out: str, threshold: float) -> int:
    """Fold merged artifacts (oldest first) into a markdown trend table."""
    from repro.experiments.benchdiff import (
        artifact_label,
        load_artifact,
        render_trend,
        trend_artifacts,
    )

    artifacts = []
    labels = []
    for idx, path in enumerate(paths):
        try:
            artifact = load_artifact(path)
        except (OSError, ValueError) as exc:
            print(f"bench-trend: cannot load artifact: {exc}", file=sys.stderr)
            return 2
        artifacts.append(artifact)
        labels.append(artifact_label(artifact, fallback=f"run{idx}"))
    try:
        rows = trend_artifacts(artifacts, threshold=threshold)
    except ValueError as exc:
        print(f"bench-trend: {exc}", file=sys.stderr)
        return 2
    report = render_trend(rows, labels, threshold=threshold)
    with open(out, "w", encoding="utf-8") as fh:
        fh.write(report)
    regressed = [r for r in rows if r["regressed"]]
    print(f"bench-trend: {len(rows)} metric(s) across {len(paths)} run(s), "
          f"{len(regressed)} drifted beyond {threshold:.0%}; wrote {out}")
    for r in regressed:
        print(f"  DRIFTED {r['key']} ({r['ratio']:.2f}x over the window)")
    return 0


def _add_serving_args(parser, *, deadline_default: Optional[float] = None,
                      qps_default: float = 1000.0) -> None:
    """The one shared serving flag group (``query`` / ``serve`` /
    ``bench-serve``) — every serving command bills requests to a tenant
    on the front door instead of constructing its own engine."""
    grp = parser.add_argument_group("serving", "multi-tenant front-door options")
    grp.add_argument("--tenant", default="default",
                     help="tenant name requests are billed to")
    grp.add_argument("--qps", type=float, default=qps_default,
                     help="tenant token-bucket quota in queries/s")
    grp.add_argument("--deadline-ms", dest="deadline_ms", type=float,
                     default=deadline_default,
                     help="per-request deadline; expired requests are rejected")
    grp.add_argument("--stats", action="store_true",
                     help="print the unified metrics registry (serve.* included)")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MAPE-K autonomy loops for HPC MODA (CLUSTER 2023 reproduction)",
    )
    sub = parser.add_subparsers(dest="command")
    exp = sub.add_parser("experiments", help="regenerate every experiment table")
    exp.add_argument("--quick", action="store_true", help="reduced problem sizes")
    exp.add_argument("--seeds", type=int, nargs="*", default=[0, 1, 2])
    sub.add_parser("list", help="list experiments and their paper anchors")
    qry = sub.add_parser("query", help="evaluate a metric query over a simulated shift")
    qry.add_argument("expr", help='e.g. \'mean(node_cpu_util[600s] by 60s) group by (node)\'')
    qry.add_argument("--nodes", type=int, default=16)
    qry.add_argument("--horizon", type=float, default=1800.0, help="simulated seconds")
    qry.add_argument("--seed", type=int, default=7)
    qry.add_argument("--shards", type=int, default=1,
                     help="partition the store and serve through the federated engine")
    qry.add_argument("--parallel", type=int, default=0,
                     help="worker processes for the shared-memory parallel tier "
                          "(requires --shards > 1)")
    _add_serving_args(qry)
    srv = sub.add_parser("serve",
                         help="serve a sustained multi-tenant load over a shift")
    srv.add_argument("--nodes", type=int, default=32)
    srv.add_argument("--horizon", type=float, default=1800.0, help="simulated seconds")
    srv.add_argument("--seed", type=int, default=7)
    srv.add_argument("--duration", type=float, default=2.0,
                     help="wall-clock serving seconds")
    srv.add_argument("--drivers", type=int, default=4,
                     help="driver threads for the primary tenant")
    _add_serving_args(srv, deadline_default=250.0, qps_default=4000.0)
    loops = sub.add_parser("loops", help="host a watch-loop fleet on the unified runtime")
    loops.add_argument("--loops", dest="n_loops", type=int, default=8)
    loops.add_argument("--nodes", type=int, default=32)
    loops.add_argument("--horizon", type=float, default=1800.0, help="simulated seconds")
    loops.add_argument("--seed", type=int, default=7)
    bench = sub.add_parser("bench-ingest", help="run the E14 ingest benchmark")
    bench.add_argument("--nodes", type=int, default=1024)
    bench.add_argument("--metrics", type=int, default=8, help="metrics per node")
    bench.add_argument("--horizon", type=float, default=180.0, help="simulated seconds")
    bench.add_argument("--json", dest="json_path", default=None, help="write row as JSON")
    bloops = sub.add_parser("bench-loops", help="run the E15 loop-fleet benchmark")
    bloops.add_argument("--loops", dest="n_loops", type=int, default=256)
    bloops.add_argument("--ticks", type=int, default=10)
    bloops.add_argument("--json", dest="json_path", default=None, help="write rows as JSON")
    bshard = sub.add_parser("bench-shard", help="run the E16 sharded-store benchmark")
    bshard.add_argument("--series", type=int, default=4096)
    bshard.add_argument("--shards", type=int, default=8)
    bshard.add_argument("--ticks", type=int, default=64, help="commits per store")
    bshard.add_argument("--json", dest="json_path", default=None, help="write rows as JSON")
    bshard.add_argument("--smoke", action="store_true",
                        help="small exactness-only run (CI wiring check)")
    bshard.add_argument("--parallel", type=int, default=0,
                        help="run the storage measurements through the "
                             "process-parallel tier with this many workers")
    bshard.add_argument("--stats", action="store_true",
                        help="print standing-query / federation / pool counters")
    sup = sub.add_parser("supervise", help="run a supervised fleet with injected faults")
    sup.add_argument("--loops", dest="n_loops", type=int, default=64)
    sup.add_argument("--seed", type=int, default=0)
    bsup = sub.add_parser("bench-supervise", help="run the E17 fleet-supervision benchmark")
    bsup.add_argument("--loops", dest="n_loops", type=int, default=256)
    bsup.add_argument("--ticks", type=int, default=20, help="adaptive-fusion fleet ticks")
    bsup.add_argument("--json", dest="json_path", default=None, help="write rows as JSON")
    bsup.add_argument("--smoke", action="store_true",
                      help="small run without the fusion perf gate (CI wiring check)")
    bpar = sub.add_parser("bench-parallel", help="run the E18 process-parallel benchmark")
    bpar.add_argument("--series", type=int, default=4096)
    bpar.add_argument("--shards", type=int, default=8)
    bpar.add_argument("--workers", type=int, default=4, help="worker processes")
    bpar.add_argument("--ticks", type=int, default=64, help="commits per store")
    bpar.add_argument("--json", dest="json_path", default=None, help="write rows as JSON")
    bpar.add_argument("--smoke", action="store_true",
                      help="small exactness-only run (CI wiring check)")
    bstand = sub.add_parser("bench-standing",
                            help="run the E19 standing-query benchmark")
    bstand.add_argument("--loops", dest="n_loops", type=int, default=256)
    bstand.add_argument("--nodes-per-loop", dest="nodes_per_loop", type=int, default=16)
    bstand.add_argument("--ticks", type=int, default=60, help="hub serving ticks")
    bstand.add_argument("--json", dest="json_path", default=None, help="write rows as JSON")
    bstand.add_argument("--smoke", action="store_true",
                        help="small exactness-only run (CI wiring check)")
    bstand.add_argument("--stats", action="store_true",
                        help="print standing-query engine counters")
    trc = sub.add_parser("trace",
                         help="run a traced fleet and export Chrome-trace JSON")
    trc.add_argument("--loops", dest="n_loops", type=int, default=256)
    trc.add_argument("--nodes", type=int, default=32)
    trc.add_argument("--horizon", type=float, default=900.0, help="simulated seconds")
    trc.add_argument("--seed", type=int, default=7)
    trc.add_argument("--shards", type=int, default=1,
                     help="partition the store and trace the federated scatter path")
    trc.add_argument("--parallel", type=int, default=0,
                     help="worker processes (traces cross-process shard spans)")
    trc.add_argument("--out", default="trace.json",
                     help="Chrome-trace JSON output path (default trace.json)")
    bobs = sub.add_parser("bench-obs",
                          help="run the E20 observability-overhead benchmark")
    bobs.add_argument("--series", type=int, default=4096)
    bobs.add_argument("--loops", dest="n_loops", type=int, default=64)
    bobs.add_argument("--ticks", type=int, default=30)
    bobs.add_argument("--json", dest="json_path", default=None, help="write rows as JSON")
    bobs.add_argument("--smoke", action="store_true",
                      help="small exactness-only run (CI wiring check)")
    bsrv = sub.add_parser("bench-serve",
                          help="run the E21 multi-tenant serving benchmark")
    bsrv.add_argument("--nodes", type=int, default=64)
    bsrv.add_argument("--duration", type=float, default=3.0,
                      help="wall-clock seconds for the mixed-load phase")
    bsrv.add_argument("--drivers", type=int, default=4,
                      help="unpaced driver threads per greedy traffic class")
    bsrv.add_argument("--json", dest="json_path", default=None, help="write rows as JSON")
    bsrv.add_argument("--smoke", action="store_true",
                      help="small exactness-and-accounting-only run (CI wiring check)")
    _add_serving_args(bsrv, deadline_default=250.0, qps_default=4000.0)
    bdiff = sub.add_parser("bench-diff",
                           help="diff two benchmark artifacts for throughput regressions")
    bdiff.add_argument("old", help="baseline artifact (e.g. previous BENCH_all.json)")
    bdiff.add_argument("new", help="candidate artifact")
    bdiff.add_argument("--threshold", type=float, default=0.2,
                       help="regression threshold as a fraction (default 0.2 = 20%%)")
    bdiff.add_argument("--fail", action="store_true",
                       help="exit non-zero when any metric regressed beyond the threshold")
    btrend = sub.add_parser("bench-trend",
                            help="fold merged artifacts into a throughput trend table")
    btrend.add_argument("artifacts", nargs="+",
                        help="two or more merged BENCH_all.json files, oldest first")
    btrend.add_argument("--out", default="BENCH_trend.md",
                        help="markdown output path (default BENCH_trend.md)")
    btrend.add_argument("--threshold", type=float, default=0.2,
                        help="drift threshold as a fraction (default 0.2 = 20%%)")
    sub.add_parser("version", help="print the package version")
    args = parser.parse_args(argv)

    if args.command == "experiments":
        return cmd_experiments(args.quick, args.seeds)
    if args.command == "query":
        return cmd_query(
            args.expr, args.nodes, args.horizon, args.seed, args.shards,
            args.parallel, args.stats, args.tenant, args.qps, args.deadline_ms,
        )
    if args.command == "serve":
        return cmd_serve(
            args.nodes, args.horizon, args.seed, args.duration, args.drivers,
            args.tenant, args.qps, args.deadline_ms, args.stats,
        )
    if args.command == "bench-serve":
        return cmd_bench_serve(
            args.nodes, args.duration, args.drivers, args.json_path, args.smoke,
            args.tenant, args.qps, args.deadline_ms, args.stats,
        )
    if args.command == "loops":
        return cmd_loops(args.n_loops, args.nodes, args.horizon, args.seed)
    if args.command == "bench-ingest":
        return cmd_bench_ingest(args.nodes, args.metrics, args.horizon, args.json_path)
    if args.command == "bench-loops":
        return cmd_bench_loops(args.n_loops, args.ticks, args.json_path)
    if args.command == "bench-shard":
        return cmd_bench_shard(
            args.series, args.shards, args.ticks, args.json_path, args.smoke,
            args.parallel, args.stats,
        )
    if args.command == "supervise":
        return cmd_supervise(args.n_loops, args.seed)
    if args.command == "bench-supervise":
        return cmd_bench_supervise(args.n_loops, args.ticks, args.json_path, args.smoke)
    if args.command == "bench-parallel":
        return cmd_bench_parallel(
            args.series, args.shards, args.workers, args.ticks, args.json_path,
            args.smoke,
        )
    if args.command == "bench-standing":
        return cmd_bench_standing(
            args.n_loops, args.nodes_per_loop, args.ticks, args.json_path,
            args.smoke, args.stats,
        )
    if args.command == "trace":
        return cmd_trace(
            args.n_loops, args.nodes, args.horizon, args.seed, args.shards,
            args.parallel, args.out,
        )
    if args.command == "bench-obs":
        return cmd_bench_obs(
            args.series, args.n_loops, args.ticks, args.json_path, args.smoke,
        )
    if args.command == "bench-diff":
        return cmd_bench_diff(args.old, args.new, args.threshold, args.fail)
    if args.command == "bench-trend":
        return cmd_bench_trend(args.artifacts, args.out, args.threshold)
    if args.command == "list":
        return cmd_list()
    if args.command == "version":
        return cmd_version()
    parser.print_help()
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
