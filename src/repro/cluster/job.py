"""Job lifecycle.

A job is a resource request wrapping an application profile.  The
lifecycle follows production schedulers::

    PENDING -> RUNNING -> COMPLETED            (reached its final step)
                        | TIMEOUT              (killed at the walltime limit)
                        | FAILED               (node failure)
                        | KILLED_MAINTENANCE   (maintenance window)
              CANCELLED                        (never started)

``TIMEOUT`` is the state the Scheduler autonomy loop exists to prevent.
Extension bookkeeping lives here so trust metrics (extension counts,
overhang) can be computed per job.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from repro.cluster.application import ApplicationProfile, LaunchConfig


class JobState(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"
    TIMEOUT = "timeout"
    FAILED = "failed"
    KILLED_MAINTENANCE = "killed_maintenance"
    CANCELLED = "cancelled"


TERMINAL_STATES = frozenset(
    {
        JobState.COMPLETED,
        JobState.TIMEOUT,
        JobState.FAILED,
        JobState.KILLED_MAINTENANCE,
        JobState.CANCELLED,
    }
)


@dataclass
class ExtensionGrant:
    """One walltime-extension interaction and its outcome."""

    requested_s: float
    granted_s: float
    time: float

    @property
    def denied(self) -> bool:
        return self.granted_s <= 0.0

    @property
    def shortened(self) -> bool:
        return 0.0 < self.granted_s < self.requested_s


class Job:
    """One scheduled unit of work."""

    def __init__(
        self,
        job_id: str,
        user: str,
        profile: ApplicationProfile,
        *,
        n_nodes: int = 1,
        walltime_request_s: float = 3600.0,
        submit_time: float = 0.0,
        priority: int = 0,
        launch: Optional[LaunchConfig] = None,
        restart_step: float = 0.0,
    ) -> None:
        if n_nodes <= 0:
            raise ValueError("n_nodes must be positive")
        if walltime_request_s <= 0:
            raise ValueError("walltime_request_s must be positive")
        if restart_step < 0:
            raise ValueError("restart_step must be >= 0")
        self.job_id = job_id
        self.user = user
        self.profile = profile
        self.n_nodes = n_nodes
        self.walltime_request_s = walltime_request_s
        self.submit_time = submit_time
        self.priority = priority
        self.launch = launch if launch is not None else LaunchConfig()
        self.restart_step = restart_step

        self.state = JobState.PENDING
        self.start_time: Optional[float] = None
        self.end_time: Optional[float] = None
        self.assigned_nodes: List[str] = []
        self.time_limit_s = walltime_request_s  # may grow through extensions
        self.extensions: List[ExtensionGrant] = []
        self.final_step: Optional[float] = None
        self.was_backfilled = False

    # ------------------------------------------------------------ properties
    @property
    def is_terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def wait_time(self) -> Optional[float]:
        if self.start_time is None:
            return None
        return self.start_time - self.submit_time

    @property
    def runtime(self) -> Optional[float]:
        if self.start_time is None or self.end_time is None:
            return None
        return self.end_time - self.start_time

    @property
    def deadline(self) -> Optional[float]:
        """Absolute kill time under the current limit (running jobs only)."""
        if self.start_time is None:
            return None
        return self.start_time + self.time_limit_s

    @property
    def extension_count(self) -> int:
        return sum(1 for e in self.extensions if not e.denied)

    @property
    def total_extension_s(self) -> float:
        return sum(e.granted_s for e in self.extensions)

    def record_extension(self, requested_s: float, granted_s: float, time: float) -> None:
        self.extensions.append(ExtensionGrant(requested_s, granted_s, time))
        if granted_s > 0:
            self.time_limit_s += granted_s

    def node_seconds(self) -> float:
        """Consumed node-seconds (0 for jobs that never started)."""
        if self.runtime is None:
            return 0.0
        return self.runtime * self.n_nodes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Job {self.job_id} {self.state.value} n={self.n_nodes}>"
