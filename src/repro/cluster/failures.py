"""Failure injection.

Exponentially distributed node failures with fixed repair times —
enough to exercise the robustness claims of the decentralized MAPE-K
patterns (experiment E2) and the resilience discussion of Section IV.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.cluster.scheduler import Scheduler
from repro.sim.engine import Engine


@dataclass(frozen=True)
class FailureRecord:
    """One injected failure: node, when, and which job it killed."""

    node_id: str
    time: float
    killed_job_id: Optional[str]


class FailureInjector:
    """Injects node failures at exponential inter-arrival times.

    ``mtbf_node_s`` is the per-node mean time between failures; the
    cluster-wide failure rate scales with node count.  Failed nodes
    repair after ``repair_time_s``.
    """

    def __init__(
        self,
        engine: Engine,
        scheduler: Scheduler,
        rng: np.random.Generator,
        *,
        mtbf_node_s: float = 30 * 86400.0,
        repair_time_s: float = 4 * 3600.0,
    ) -> None:
        if mtbf_node_s <= 0:
            raise ValueError("mtbf_node_s must be positive")
        if repair_time_s <= 0:
            raise ValueError("repair_time_s must be positive")
        self.engine = engine
        self.scheduler = scheduler
        self.rng = rng
        self.mtbf_node_s = mtbf_node_s
        self.repair_time_s = repair_time_s
        self.records: List[FailureRecord] = []
        self._active = False

    def start(self) -> None:
        self._active = True
        self._schedule_next()

    def stop(self) -> None:
        self._active = False

    def _cluster_rate(self) -> float:
        n_up = sum(
            1 for n in self.scheduler.nodes.values() if n.state.value == "up"
        )
        return max(1, n_up) / self.mtbf_node_s

    def _schedule_next(self) -> None:
        if not self._active:
            return
        delay = float(self.rng.exponential(1.0 / self._cluster_rate()))
        self.engine.schedule(delay, self._fail_random_node, label="failure")

    def _fail_random_node(self) -> None:
        if not self._active:
            return
        up_nodes = [n.node_id for n in self.scheduler.nodes.values() if n.state.value == "up"]
        if up_nodes:
            victim_node = up_nodes[int(self.rng.integers(len(up_nodes)))]
            killed = self.scheduler.fail_node(victim_node)
            self.records.append(FailureRecord(victim_node, self.engine.now, killed))
            self.engine.schedule(
                self.repair_time_s, self.scheduler.repair_node, victim_node, label="repair"
            )
        self._schedule_next()
