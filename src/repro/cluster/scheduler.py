"""SLURM-like scheduler: FCFS + EASY backfill, walltime enforcement,
and the walltime-extension hook the paper's Execute phase uses.

The extension API deliberately mirrors the paper's description of the
Scheduler case: *"the scheduler may deny the request or provide a
shorter extension than requested"*.  Site policy (extension budgets,
random denial), reservation conflicts (maintenance windows), and the
requested amount all shape the grant.

Scheduling passes are event-driven (submit/finish/repair/extension) and
coalesced through a zero-delay engine event so deep callback recursion
cannot occur.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.cluster.application import RunningApp
from repro.cluster.checkpoint import CheckpointRecord, CheckpointStore
from repro.cluster.job import Job, JobState
from repro.cluster.node import Node, NodeState
from repro.sim.engine import Engine
from repro.sim.rng import _name_entropy
from repro.telemetry.markers import ProgressMarkerChannel


@dataclass(frozen=True)
class Reservation:
    """Nodes unavailable during [t_start, t_end) — maintenance windows."""

    nodes: frozenset
    t_start: float
    t_end: float
    label: str = "maintenance"

    def __post_init__(self) -> None:
        if self.t_end <= self.t_start:
            raise ValueError("t_end must be after t_start")

    def covers(self, node_id: str) -> bool:
        return node_id in self.nodes

    def intersects(self, t0: float, t1: float) -> bool:
        return self.t_start < t1 and t0 < self.t_end


@dataclass(frozen=True)
class ExtensionResponse:
    """Outcome of a walltime-extension request."""

    requested_s: float
    granted_s: float
    reason: str

    @property
    def denied(self) -> bool:
        return self.granted_s <= 0.0

    @property
    def shortened(self) -> bool:
        return 0.0 < self.granted_s < self.requested_s


@dataclass
class ExtensionPolicy:
    """Site policy for extension requests (the trust controls of §III.iv).

    ``max_extensions_per_job`` and ``max_total_extension_s`` are the
    "limits on the number and overall time of extensions for a single
    application" the paper proposes; ``deny_prob`` models opaque
    site-side denials the loop must tolerate.
    """

    max_extensions_per_job: int = 3
    max_total_extension_s: float = 7200.0
    deny_prob: float = 0.0
    rng: Optional[np.random.Generator] = None

    def __post_init__(self) -> None:
        if self.max_extensions_per_job < 0:
            raise ValueError("max_extensions_per_job must be >= 0")
        if self.max_total_extension_s < 0:
            raise ValueError("max_total_extension_s must be >= 0")
        if not 0.0 <= self.deny_prob <= 1.0:
            raise ValueError("deny_prob must be in [0, 1]")
        if self.deny_prob > 0 and self.rng is None:
            raise ValueError("rng required when deny_prob is set")

    def evaluate(self, job: Job, requested_s: float, conflict_cap_s: float) -> ExtensionResponse:
        """Grant amount given policy budgets and the reservation cap."""
        if requested_s <= 0:
            return ExtensionResponse(requested_s, 0.0, "non-positive request")
        if job.extension_count >= self.max_extensions_per_job:
            return ExtensionResponse(requested_s, 0.0, "extension count budget exhausted")
        budget_left = self.max_total_extension_s - job.total_extension_s
        if budget_left <= 0:
            return ExtensionResponse(requested_s, 0.0, "extension time budget exhausted")
        if self.deny_prob > 0 and self.rng.random() < self.deny_prob:
            return ExtensionResponse(requested_s, 0.0, "site policy denial")
        granted = min(requested_s, budget_left, conflict_cap_s)
        if granted <= 0:
            return ExtensionResponse(requested_s, 0.0, "reservation conflict")
        reason = "granted" if granted == requested_s else "shortened"
        return ExtensionResponse(requested_s, granted, reason)


@dataclass
class SchedulerConfig:
    """Scheduler behaviour switches."""

    backfill: bool = True
    extension_policy: ExtensionPolicy = field(default_factory=ExtensionPolicy)


@dataclass
class SchedulerStats:
    """Aggregate counters the experiment harness reports."""

    submitted: int = 0
    started: int = 0
    completed: int = 0
    timeout: int = 0
    failed: int = 0
    killed_maintenance: int = 0
    backfilled: int = 0
    extensions_requested: int = 0
    extensions_granted: int = 0
    extensions_denied: int = 0
    extensions_shortened: int = 0
    extension_seconds_granted: float = 0.0
    overhang_node_seconds: float = 0.0  # granted-but-unused limit × nodes


class Scheduler:
    """Event-driven FCFS + EASY-backfill scheduler over whole nodes."""

    def __init__(
        self,
        engine: Engine,
        nodes: Sequence[Node],
        *,
        config: Optional[SchedulerConfig] = None,
        marker_channel: Optional[ProgressMarkerChannel] = None,
        checkpoint_store: Optional[CheckpointStore] = None,
        rng: Optional[np.random.Generator] = None,
        io_client_factory: Optional[Callable[[Job], object]] = None,
    ) -> None:
        if not nodes:
            raise ValueError("scheduler needs at least one node")
        self.engine = engine
        self.nodes: Dict[str, Node] = {n.node_id: n for n in nodes}
        if len(self.nodes) != len(nodes):
            raise ValueError("duplicate node ids")
        self.config = config if config is not None else SchedulerConfig()
        self.marker_channel = marker_channel
        self.checkpoint_store = checkpoint_store
        self.rng = rng
        self.io_client_factory = io_client_factory
        # one draw at construction keeps per-job app streams reproducible
        # and independent of job start order
        self._app_seed = int(rng.integers(0, 2**31)) if rng is not None else None

        self.jobs: Dict[str, Job] = {}
        self._queue: List[Job] = []
        self._apps: Dict[str, RunningApp] = {}
        self._kill_events: Dict[str, object] = {}
        self.reservations: List[Reservation] = []
        self.stats = SchedulerStats()
        self._pass_scheduled = False
        self.on_job_end: List[Callable[[Job], None]] = []
        self.on_job_start: List[Callable[[Job], None]] = []
        #: hooks invoked after every extension decision (granted or not) —
        #: telemetry bridges publish deadline changes from here
        self.on_extension: List[Callable[[Job, ExtensionResponse], None]] = []

    # ----------------------------------------------------------- submission
    def submit(self, job: Job) -> None:
        if job.job_id in self.jobs:
            raise ValueError(f"duplicate job id {job.job_id!r}")
        job.submit_time = self.engine.now
        self.jobs[job.job_id] = job
        self._queue.append(job)
        self.stats.submitted += 1
        self._trigger_pass()

    def cancel(self, job_id: str) -> bool:
        """Cancel a pending job; running jobs cannot be cancelled here."""
        job = self.jobs.get(job_id)
        if job is None or job.state is not JobState.PENDING:
            return False
        self._queue.remove(job)
        job.state = JobState.CANCELLED
        job.end_time = self.engine.now
        return True

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    def running_jobs(self) -> List[Job]:
        return [j for j in self.jobs.values() if j.state is JobState.RUNNING]

    def app(self, job_id: str) -> Optional[RunningApp]:
        """The live application of a running job (loop monitor access)."""
        return self._apps.get(job_id)

    # --------------------------------------------------------- reservations
    def add_reservation(self, res: Reservation) -> None:
        unknown = [n for n in res.nodes if n not in self.nodes]
        if unknown:
            raise ValueError(f"reservation references unknown nodes: {unknown}")
        self.reservations.append(res)
        self._trigger_pass()
        # jobs blocked purely by this window become placeable when it ends
        self.engine.schedule_at(
            max(self.engine.now, res.t_end), self._trigger_pass, label="res-end"
        )

    def _node_blocked(self, node_id: str, t0: float, t1: float) -> bool:
        return any(
            r.covers(node_id) and r.intersects(t0, t1) for r in self.reservations
        )

    def _eligible_nodes(self, duration_s: float) -> List[Node]:
        now = self.engine.now
        return [
            n
            for n in self.nodes.values()
            if n.is_allocatable and not self._node_blocked(n.node_id, now, now + duration_s)
        ]

    # ----------------------------------------------------------- scheduling
    def _trigger_pass(self) -> None:
        """Coalesce scheduling passes into one zero-delay event."""
        if self._pass_scheduled:
            return
        self._pass_scheduled = True
        self.engine.schedule(0.0, self._run_pass, priority=10, label="sched-pass")

    def _run_pass(self) -> None:
        self._pass_scheduled = False
        self._schedule()

    def _schedule(self) -> None:
        self._queue.sort(key=lambda j: (-j.priority, j.submit_time, j.job_id))
        started_any = True
        while started_any and self._queue:
            started_any = False
            head = self._queue[0]
            eligible = self._eligible_nodes(head.time_limit_s)
            if len(eligible) >= head.n_nodes:
                self._start_job(head, eligible[: head.n_nodes], backfilled=False)
                started_any = True
                continue
            if self.config.backfill:
                self._backfill(head, eligible)
            break

    def _backfill(self, head: Job, eligible_for_head: List[Node]) -> None:
        """EASY backfill: later jobs may start if they cannot delay ``head``."""
        now = self.engine.now
        free_now = len(eligible_for_head)
        shadow_time, extra_at_shadow = self._shadow(head, free_now)
        for job in list(self._queue[1:]):
            eligible = self._eligible_nodes(job.time_limit_s)
            if len(eligible) < job.n_nodes:
                continue
            fits_before_shadow = now + job.time_limit_s <= shadow_time
            fits_beside_head = job.n_nodes <= extra_at_shadow
            if fits_before_shadow or fits_beside_head:
                self._start_job(job, eligible[: job.n_nodes], backfilled=True)
                if fits_beside_head:
                    extra_at_shadow -= job.n_nodes

    def _shadow(self, head: Job, free_now: int) -> tuple[float, int]:
        """Earliest time ``head`` could start, and spare nodes at that time.

        Uses running jobs' current time limits (the information a real
        EASY scheduler has).  Reservations are ignored for the *count*
        (approximation); per-node reservation checks still gate actual
        placement.
        """
        need = head.n_nodes - free_now
        if need <= 0:
            return self.engine.now, free_now - head.n_nodes
        ends = sorted(
            ((j.deadline, j.n_nodes) for j in self.running_jobs()), key=lambda x: x[0]
        )
        freed = 0
        for deadline, n in ends:
            freed += n
            if freed >= need:
                return deadline, free_now + freed - head.n_nodes
        return math.inf, 0

    def _start_job(self, job: Job, nodes: List[Node], *, backfilled: bool) -> None:
        now = self.engine.now
        self._queue.remove(job)
        job.state = JobState.RUNNING
        job.start_time = now
        job.was_backfilled = backfilled
        job.assigned_nodes = [n.node_id for n in nodes]
        for n in nodes:
            n.assign(job.job_id, now)
        app_rng = None
        if self._app_seed is not None:
            # stable per-job stream: (scheduler seed, sha256(job id))
            app_rng = np.random.default_rng([self._app_seed, *_name_entropy(job.job_id)])
        io_client = None
        if self.io_client_factory is not None and job.profile.io_every_s is not None:
            io_client = self.io_client_factory(job)
        app = RunningApp(
            self.engine,
            job.job_id,
            job.profile,
            cores=nodes[0].spec.cores,
            launch=job.launch,
            channel=self.marker_channel,
            rng=app_rng,
            on_complete=self._on_app_complete,
            on_checkpoint=self._on_app_checkpoint,
            start_step=job.restart_step,
            io_client=io_client,
        )
        self._apps[job.job_id] = app
        app.start()
        self._kill_events[job.job_id] = self.engine.schedule_at(
            job.deadline, self._walltime_kill, job.job_id, label=f"kill-{job.job_id}"
        )
        self.stats.started += 1
        if backfilled:
            self.stats.backfilled += 1
        for hook in self.on_job_start:
            hook(job)

    # ------------------------------------------------------------- endings
    def _on_app_complete(self, app: RunningApp) -> None:
        job = self.jobs[app.job_id]
        self._end_job(job, JobState.COMPLETED)

    def _on_app_checkpoint(self, app: RunningApp, step: float) -> None:
        if self.checkpoint_store is not None:
            job = self.jobs[app.job_id]
            self.checkpoint_store.save(
                CheckpointRecord(job.job_id, job.user, job.profile.name, step, self.engine.now)
            )

    def _walltime_kill(self, job_id: str) -> None:
        self._kill_events.pop(job_id, None)
        job = self.jobs.get(job_id)
        if job is None or job.state is not JobState.RUNNING:
            return
        self._end_job(job, JobState.TIMEOUT)

    def kill_job(self, job_id: str, state: JobState) -> bool:
        """External kill (maintenance/failure paths)."""
        job = self.jobs.get(job_id)
        if job is None or job.state is not JobState.RUNNING:
            return False
        self._end_job(job, state)
        return True

    def _end_job(self, job: Job, state: JobState) -> None:
        now = self.engine.now
        app = self._apps.pop(job.job_id, None)
        if app is not None:
            job.final_step = app.stop()
        kill_ev = self._kill_events.pop(job.job_id, None)
        if kill_ev is not None:
            kill_ev.cancel()
        job.state = state
        job.end_time = now
        for node_id in job.assigned_nodes:
            node = self.nodes[node_id]
            if node.running_job_id == job.job_id:
                node.release(now)
        # overhang: limit the job held beyond its actual use, per node
        unused = max(0.0, (job.deadline or now) - now)
        self.stats.overhang_node_seconds += unused * job.n_nodes
        if state is JobState.COMPLETED:
            self.stats.completed += 1
        elif state is JobState.TIMEOUT:
            self.stats.timeout += 1
        elif state is JobState.FAILED:
            self.stats.failed += 1
        elif state is JobState.KILLED_MAINTENANCE:
            self.stats.killed_maintenance += 1
        for hook in self.on_job_end:
            hook(job)
        self._trigger_pass()

    # ------------------------------------------------------ extension hook
    def request_extension(self, job_id: str, extra_s: float) -> ExtensionResponse:
        """The Execute-phase actuator: ask for more walltime.

        Returns the (possibly shortened or denied) grant and applies it:
        the kill event moves to the new deadline.
        """
        job = self.jobs.get(job_id)
        if job is None or job.state is not JobState.RUNNING:
            return ExtensionResponse(extra_s, 0.0, "job not running")
        self.stats.extensions_requested += 1
        response = self.config.extension_policy.evaluate(
            job, extra_s, self._extension_conflict_cap(job)
        )
        job.record_extension(response.requested_s, response.granted_s, self.engine.now)
        if response.denied:
            self.stats.extensions_denied += 1
            for hook in self.on_extension:
                hook(job, response)
            return response
        self.stats.extensions_granted += 1
        if response.shortened:
            self.stats.extensions_shortened += 1
        self.stats.extension_seconds_granted += response.granted_s
        kill_ev = self._kill_events.get(job_id)
        if kill_ev is not None:
            kill_ev.cancel()
        self._kill_events[job_id] = self.engine.schedule_at(
            job.deadline, self._walltime_kill, job_id, label=f"kill-{job_id}"
        )
        for hook in self.on_extension:
            hook(job, response)
        return response

    def _extension_conflict_cap(self, job: Job) -> float:
        """Max extension before the job collides with a reservation."""
        deadline = job.deadline
        cap = math.inf
        for res in self.reservations:
            if res.t_start < deadline:
                continue  # already violated or past; placement prevented this
            for node_id in job.assigned_nodes:
                if res.covers(node_id):
                    cap = min(cap, res.t_start - deadline)
                    break
        return cap

    # ------------------------------------------------------ checkpoint hook
    def signal_checkpoint(self, job_id: str) -> bool:
        """Ask a running job to checkpoint (Maintenance/Scheduler response)."""
        app = self._apps.get(job_id)
        if app is None:
            return False
        return app.begin_checkpoint()

    # ----------------------------------------------------------- node state
    def fail_node(self, node_id: str) -> Optional[str]:
        """Fail a node; the running job (if any) dies.  Returns its id."""
        node = self.nodes[node_id]
        victim = node.running_job_id
        if victim is not None:
            self.kill_job(victim, JobState.FAILED)
        node.state = NodeState.DOWN
        return victim

    def repair_node(self, node_id: str) -> None:
        node = self.nodes[node_id]
        node.state = NodeState.UP
        self._trigger_pass()

    def set_node_state(self, node_id: str, state: NodeState) -> None:
        self.nodes[node_id].state = state
        if state is NodeState.UP:
            self._trigger_pass()

    # ------------------------------------------------------------- metrics
    def utilization(self, since: float = 0.0) -> float:
        """Busy node-seconds over available node-seconds since ``since``."""
        now = self.engine.now
        horizon = max(1e-12, now - since)
        busy = sum(n.accumulated_busy_seconds(now) for n in self.nodes.values())
        return busy / (horizon * len(self.nodes))

    def finished_jobs(self) -> List[Job]:
        return [j for j in self.jobs.values() if j.is_terminal]
