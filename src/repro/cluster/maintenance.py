"""Maintenance events (use case 1, Section III).

A maintenance event is announced ``announce_lead_s`` before its window.
On announcement the manager places a scheduler reservation (so new jobs
avoid the window); when the window opens, jobs still running on affected
nodes are killed — unless an autonomy loop checkpointed and/or drained
them first.  That gap between announcement and window is exactly where
the Maintenance loop acts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

from repro.cluster.job import JobState
from repro.cluster.node import NodeState
from repro.cluster.scheduler import Reservation, Scheduler
from repro.sim.engine import Engine


@dataclass(frozen=True)
class MaintenanceEvent:
    """One maintenance window on a set of nodes."""

    nodes: frozenset
    t_start: float
    duration_s: float
    announce_lead_s: float = 3600.0
    label: str = "maintenance"

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if self.announce_lead_s < 0:
            raise ValueError("announce_lead_s must be >= 0")

    @property
    def t_end(self) -> float:
        return self.t_start + self.duration_s

    @property
    def t_announce(self) -> float:
        return max(0.0, self.t_start - self.announce_lead_s)


class MaintenanceManager:
    """Schedules announcement/start/end transitions for maintenance events.

    ``on_announce`` hooks receive the event at announcement time — this
    is the sensor the Maintenance autonomy loop subscribes to.
    """

    def __init__(self, engine: Engine, scheduler: Scheduler) -> None:
        self.engine = engine
        self.scheduler = scheduler
        self.events: List[MaintenanceEvent] = []
        self.on_announce: List[Callable[[MaintenanceEvent], None]] = []
        self.jobs_killed_by_maintenance = 0

    def schedule_event(self, event: MaintenanceEvent) -> None:
        unknown = [n for n in event.nodes if n not in self.scheduler.nodes]
        if unknown:
            raise ValueError(f"maintenance references unknown nodes: {unknown}")
        self.events.append(event)
        self.engine.schedule_at(event.t_announce, self._announce, event, label="maint-announce")
        self.engine.schedule_at(event.t_start, self._begin, event, label="maint-begin")
        self.engine.schedule_at(event.t_end, self._end, event, label="maint-end")

    def _announce(self, event: MaintenanceEvent) -> None:
        self.scheduler.add_reservation(
            Reservation(event.nodes, event.t_start, event.t_end, label=event.label)
        )
        for hook in self.on_announce:
            hook(event)

    def _begin(self, event: MaintenanceEvent) -> None:
        for node_id in event.nodes:
            node = self.scheduler.nodes[node_id]
            victim = node.running_job_id
            if victim is not None:
                if self.scheduler.kill_job(victim, JobState.KILLED_MAINTENANCE):
                    self.jobs_killed_by_maintenance += 1
            node.state = NodeState.MAINTENANCE

    def _end(self, event: MaintenanceEvent) -> None:
        for node_id in event.nodes:
            self.scheduler.set_node_state(node_id, NodeState.UP)
