"""Node and cluster power models.

A linear utilization→power model per node — coarse but sufficient for
the holistic-monitoring pipeline (facility metrics in Fig. 1) and for
energy accounting in experiment reports.
"""

from __future__ import annotations

from typing import Iterable

from repro.cluster.node import Node, NodeState


class PowerModel:
    """Linear power model: ``idle + util * (peak - idle)`` per node."""

    def node_power(self, node: Node, cpu_util: float) -> float:
        """Instantaneous node power in watts for a given utilization."""
        if node.state is NodeState.DOWN:
            return 0.0
        util = min(1.0, max(0.0, cpu_util))
        spec = node.spec
        return spec.idle_watts + util * (spec.peak_watts - spec.idle_watts)

    def cluster_power(self, nodes: Iterable[Node], util_lookup) -> float:
        """Aggregate power; ``util_lookup(node) -> float`` supplies utilization."""
        return sum(self.node_power(n, util_lookup(n)) for n in nodes)
