"""Iterative application models.

The paper's Monitor phase reads progress "via markers that could be
output by an application (e.g., simulation time-step)".  An
:class:`ApplicationProfile` describes an iterative code — total steps,
nominal step rate, per-phase rate changes, marker cadence, checkpoint
cost — and :class:`RunningApp` simulates one execution of it:

* progress integrates a piecewise-constant step rate,
* markers are emitted every ``marker_period_s`` (rank-0 style),
* checkpoints freeze progress for ``checkpoint_cost_s`` then record the
  saved step,
* launch misconfiguration (thread/core mismatch, disabled GPU offload)
  and external factors (I/O contention) scale the effective rate.

Rate variability is the phenomenon the Analyze phase must survive, so
noise, phase changes, and external slowdowns are first-class here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np

from repro.sim.engine import Engine, PeriodicTask
from repro.telemetry.markers import ProgressMarker, ProgressMarkerChannel

#: Relative throughput penalty applied per-unit oversubscription ratio.
OVERSUBSCRIPTION_PENALTY = 0.2


@dataclass(frozen=True)
class PhaseChange:
    """From ``at_fraction`` of total steps onward, multiply the rate."""

    at_fraction: float
    rate_multiplier: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.at_fraction <= 1.0:
            raise ValueError("at_fraction must be in [0, 1]")
        if self.rate_multiplier <= 0:
            raise ValueError("rate_multiplier must be positive")


@dataclass(frozen=True)
class ApplicationProfile:
    """Static description of an application's execution behaviour."""

    name: str
    total_steps: float
    base_step_rate: float  # steps/second at nominal configuration
    rate_noise_std: float = 0.0  # relative noise per marker interval
    phases: Tuple[PhaseChange, ...] = ()
    marker_period_s: float = 30.0
    checkpoint_cost_s: float = 60.0
    supports_checkpoint: bool = True
    uses_gpu: bool = False
    io_every_s: Optional[float] = None  # periodic I/O phase cadence
    io_size_mb: float = 0.0

    def __post_init__(self) -> None:
        if self.total_steps <= 0:
            raise ValueError("total_steps must be positive")
        if self.base_step_rate <= 0:
            raise ValueError("base_step_rate must be positive")
        if self.rate_noise_std < 0:
            raise ValueError("rate_noise_std must be >= 0")
        if self.marker_period_s <= 0:
            raise ValueError("marker_period_s must be positive")
        if sorted(self.phases, key=lambda p: p.at_fraction) != list(self.phases):
            raise ValueError("phases must be sorted by at_fraction")

    def phase_multiplier(self, fraction: float) -> float:
        """Rate multiplier of the phase segment containing ``fraction``."""
        mult = 1.0
        for phase in self.phases:
            if fraction >= phase.at_fraction:
                mult = phase.rate_multiplier
            else:
                break
        return mult

    def nominal_runtime_s(self) -> float:
        """Runtime at nominal configuration, integrating phase changes."""
        boundaries = [0.0] + [p.at_fraction for p in self.phases] + [1.0]
        total = 0.0
        for lo, hi in zip(boundaries[:-1], boundaries[1:]):
            if hi <= lo:
                continue
            steps = (hi - lo) * self.total_steps
            total += steps / (self.base_step_rate * self.phase_multiplier(lo))
        return total


@dataclass(frozen=True)
class LaunchConfig:
    """User launch configuration — the misconfiguration surface."""

    threads: Optional[int] = None  # None = auto (matches allocated cores)
    gpu_offload_enabled: bool = True
    library_paths: Tuple[str, ...] = ("site-blas", "site-mpi")
    expected_libraries: Tuple[str, ...] = ("site-blas",)

    def compute_multiplier(self, cores: int, uses_gpu: bool) -> float:
        """Effective throughput multiplier for this config on ``cores``.

        * threads < cores: idle cores → ``threads/cores``
        * threads > cores: context-switch thrash → ``cores/threads`` with
          an extra :data:`OVERSUBSCRIPTION_PENALTY`
        * GPU app with offload disabled: falls back to CPU at 20%
        * missing expected libraries: generic fallback at 60%
        """
        mult = 1.0
        threads = self.threads if self.threads is not None else cores
        if threads <= 0:
            raise ValueError("threads must be positive when set")
        if threads < cores:
            mult *= threads / cores
        elif threads > cores:
            mult *= (cores / threads) * (1.0 - OVERSUBSCRIPTION_PENALTY)
        if uses_gpu and not self.gpu_offload_enabled:
            mult *= 0.2
        missing = [lib for lib in self.expected_libraries if lib not in self.library_paths]
        if missing:
            mult *= 0.6
        return mult


class IoClient:
    """Protocol for application output phases (duck-typed; documentation).

    The storage substrate provides implementations (e.g.
    :class:`repro.storage.client.AppIoClient`); keeping only this
    protocol here avoids a cluster→storage dependency.
    """

    def write(self, size_mb: float, on_done: Callable) -> None:  # pragma: no cover
        raise NotImplementedError


class RunningApp:
    """One live execution of an application on allocated nodes.

    The scheduler creates a ``RunningApp`` when a job starts; autonomy
    loops interact with it through its hooks:

    * :meth:`begin_checkpoint` — the Maintenance/Scheduler response hook
    * :meth:`set_external_multiplier` — I/O-contention coupling
    * :meth:`apply_thread_fix` — the Misconfiguration on-the-fly fix
    """

    def __init__(
        self,
        engine: Engine,
        job_id: str,
        profile: ApplicationProfile,
        *,
        cores: int,
        launch: Optional[LaunchConfig] = None,
        channel: Optional[ProgressMarkerChannel] = None,
        rng: Optional[np.random.Generator] = None,
        on_complete: Optional[Callable[["RunningApp"], None]] = None,
        on_checkpoint: Optional[Callable[["RunningApp", float], None]] = None,
        start_step: float = 0.0,
        io_client: Optional["IoClient"] = None,
    ) -> None:
        self.engine = engine
        self.job_id = job_id
        self.profile = profile
        self.cores = cores
        self.launch = launch if launch is not None else LaunchConfig()
        self.channel = channel
        self.rng = rng
        self.on_complete = on_complete
        self.on_checkpoint = on_checkpoint

        self.steps_done = float(start_step)
        self.last_checkpoint_step = float(start_step)
        self.external_multiplier = 1.0
        self._config_multiplier = self.launch.compute_multiplier(cores, profile.uses_gpu)
        self._noise_factor = 1.0
        self._last_advance: Optional[float] = None
        self._pauses: set = set()  # "checkpoint" / "io" — progress frozen
        self._running = False
        self.completed = False
        self._task: Optional[PeriodicTask] = None
        self._io_task: Optional[PeriodicTask] = None
        self._completion_event = None
        self.checkpoint_count = 0
        self.io_client = io_client
        self.io_count = 0
        self.io_blocked_s = 0.0
        self._io_started_at: Optional[float] = None

    @property
    def _frozen(self) -> bool:
        return bool(self._pauses)

    # ------------------------------------------------------------ lifecycle
    def start(self) -> None:
        if self._running:
            raise RuntimeError(f"app for job {self.job_id} already running")
        self._running = True
        self._last_advance = self.engine.now
        self._emit_marker()
        self._task = self.engine.every(
            self.profile.marker_period_s,
            self._tick,
            start_at=self.engine.now + self.profile.marker_period_s,
            label=f"app-{self.job_id}",
        )
        if self.profile.io_every_s is not None and self.io_client is not None:
            self._io_task = self.engine.every(
                self.profile.io_every_s,
                self._begin_io,
                start_at=self.engine.now + self.profile.io_every_s,
                label=f"app-io-{self.job_id}",
            )
        self._resample_noise()
        self._maybe_schedule_completion()

    def stop(self) -> float:
        """Halt execution (kill); returns the final step count."""
        if self._running:
            self._advance(self.engine.now)
            self._running = False
        if self._task is not None:
            self._task.stop()
        if self._io_task is not None:
            self._io_task.stop()
        if self._completion_event is not None:
            self._completion_event.cancel()
            self._completion_event = None
        return self.steps_done

    @property
    def running(self) -> bool:
        return self._running

    # ------------------------------------------------------------- progress
    @property
    def progress_fraction(self) -> float:
        return min(1.0, self.steps_done / self.profile.total_steps)

    def current_rate(self) -> float:
        """Effective step rate right now (steps/second)."""
        if self._frozen or not self._running:
            return 0.0
        return (
            self.profile.base_step_rate
            * self.profile.phase_multiplier(self.progress_fraction)
            * self._config_multiplier
            * self.external_multiplier
            * self._noise_factor
        )

    def _resample_noise(self) -> None:
        if self.profile.rate_noise_std > 0 and self.rng is not None:
            draw = self.rng.normal(1.0, self.profile.rate_noise_std)
            self._noise_factor = max(0.05, float(draw))
        else:
            self._noise_factor = 1.0

    def _advance(self, to: float) -> None:
        if self._last_advance is None:
            self._last_advance = to
            return
        dt = to - self._last_advance
        if dt > 0 and not self._frozen:
            self.steps_done = min(
                self.profile.total_steps, self.steps_done + self.current_rate() * dt
            )
        self._last_advance = to

    def _tick(self) -> None:
        if not self._running:
            return
        self._advance(self.engine.now)
        self._emit_marker()
        if self.steps_done >= self.profile.total_steps:
            self._complete()
            return
        self._resample_noise()
        self._maybe_schedule_completion()

    def _maybe_schedule_completion(self) -> None:
        """Schedule exact completion when it lands before the next tick."""
        if self._completion_event is not None:
            self._completion_event.cancel()
            self._completion_event = None
        rate = self.current_rate()
        if rate <= 0:
            return
        remaining = self.profile.total_steps - self.steps_done
        eta = remaining / rate
        if eta <= self.profile.marker_period_s:
            self._completion_event = self.engine.schedule(
                eta, self._finish_exactly, label=f"app-complete-{self.job_id}"
            )

    def _finish_exactly(self) -> None:
        self._completion_event = None
        if not self._running:
            return
        self._advance(self.engine.now)
        self.steps_done = self.profile.total_steps
        self._complete()

    def _complete(self) -> None:
        self._running = False
        self.completed = True
        if self._task is not None:
            self._task.stop()
        if self._completion_event is not None:
            self._completion_event.cancel()
            self._completion_event = None
        self._emit_marker()
        if self.on_complete is not None:
            self.on_complete(self)

    def _emit_marker(self) -> None:
        if self.channel is not None:
            self.channel.emit(
                ProgressMarker(
                    self.job_id, self.engine.now, self.steps_done, self.profile.total_steps
                )
            )

    # ----------------------------------------------------------------- hooks
    def begin_checkpoint(self) -> bool:
        """Start an asynchronous checkpoint; returns False if unsupported.

        Progress freezes for ``checkpoint_cost_s``; on completion the
        current step becomes the restart point and ``on_checkpoint``
        fires.  A kill during the freeze loses the in-flight checkpoint,
        and a checkpoint cannot start while an I/O phase is blocking.
        """
        if not self.profile.supports_checkpoint or not self._running or self._frozen:
            return False
        self._advance(self.engine.now)
        self._pauses.add("checkpoint")
        if self._completion_event is not None:
            self._completion_event.cancel()
            self._completion_event = None
        self.engine.schedule(
            self.profile.checkpoint_cost_s, self._end_checkpoint, label=f"ckpt-{self.job_id}"
        )
        return True

    def _end_checkpoint(self) -> None:
        if not self._running:
            return  # killed mid-checkpoint: nothing saved
        self._pauses.discard("checkpoint")
        self._last_advance = self.engine.now
        self.last_checkpoint_step = self.steps_done
        self.checkpoint_count += 1
        self._maybe_schedule_completion()
        if self.on_checkpoint is not None:
            self.on_checkpoint(self, self.steps_done)

    # -------------------------------------------------------------- I/O phase
    def _begin_io(self) -> None:
        """Start a blocking output phase through the I/O client.

        Progress freezes until the filesystem reports completion — so
        filesystem contention directly stretches the application's
        effective runtime (the coupling the I/O-QoS case exploits).
        """
        if not self._running or self._frozen:
            return  # skip overlapping phases (previous write still going)
        self._advance(self.engine.now)
        self._pauses.add("io")
        self._io_started_at = self.engine.now
        if self._completion_event is not None:
            self._completion_event.cancel()
            self._completion_event = None
        self.io_client.write(self.profile.io_size_mb, self._end_io)

    def _end_io(self, *_args) -> None:
        if not self._running:
            return
        self._pauses.discard("io")
        self._last_advance = self.engine.now
        self.io_count += 1
        if self._io_started_at is not None:
            self.io_blocked_s += self.engine.now - self._io_started_at
            self._io_started_at = None
        self._maybe_schedule_completion()

    def set_external_multiplier(self, multiplier: float) -> None:
        """Apply an external slowdown/speedup (e.g. I/O contention)."""
        if multiplier < 0:
            raise ValueError("multiplier must be >= 0")
        self._advance(self.engine.now)
        self.external_multiplier = multiplier
        self._maybe_schedule_completion()

    def apply_thread_fix(self, threads: int) -> None:
        """On-the-fly thread-count correction (Misconfiguration response)."""
        if threads <= 0:
            raise ValueError("threads must be positive")
        self._reconfigure(
            LaunchConfig(
                threads=threads,
                gpu_offload_enabled=self.launch.gpu_offload_enabled,
                library_paths=self.launch.library_paths,
                expected_libraries=self.launch.expected_libraries,
            )
        )

    def apply_library_fix(self) -> None:
        """Prepend the expected site libraries (Misconfiguration response)."""
        missing = tuple(
            lib for lib in self.launch.expected_libraries
            if lib not in self.launch.library_paths
        )
        self._reconfigure(
            LaunchConfig(
                threads=self.launch.threads,
                gpu_offload_enabled=self.launch.gpu_offload_enabled,
                library_paths=missing + self.launch.library_paths,
                expected_libraries=self.launch.expected_libraries,
            )
        )

    def _reconfigure(self, launch: LaunchConfig) -> None:
        self._advance(self.engine.now)
        self.launch = launch
        self._config_multiplier = launch.compute_multiplier(self.cores, self.profile.uses_gpu)
        self._maybe_schedule_completion()

    def remaining_seconds_nominal(self) -> float:
        """Oracle remaining time at the current deterministic rate."""
        rate = (
            self.profile.base_step_rate
            * self.profile.phase_multiplier(self.progress_fraction)
            * self._config_multiplier
            * self.external_multiplier
        )
        if rate <= 0:
            return float("inf")
        return (self.profile.total_steps - self.steps_done) / rate
