"""Compute nodes.

Whole-node allocation (the common HPC configuration): a node runs at
most one job at a time.  Node state drives both the scheduler's
allocatable set and the telemetry sensors (utilization, power).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class NodeState(enum.Enum):
    UP = "up"
    DOWN = "down"  # failed, awaiting repair
    DRAINING = "draining"  # running job may finish; no new work (maintenance)
    MAINTENANCE = "maintenance"  # actively serviced


@dataclass(frozen=True)
class NodeSpec:
    """Hardware inventory of one node."""

    cores: int = 32
    gpus: int = 0
    mem_gb: float = 128.0
    idle_watts: float = 150.0
    peak_watts: float = 550.0

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ValueError("cores must be positive")
        if self.peak_watts < self.idle_watts:
            raise ValueError("peak_watts must be >= idle_watts")


class Node:
    """One compute node: identity, spec, state, and current occupant."""

    def __init__(self, node_id: str, spec: NodeSpec) -> None:
        self.node_id = node_id
        self.spec = spec
        self.state = NodeState.UP
        self.running_job_id: Optional[str] = None
        # accounting
        self.busy_seconds = 0.0
        self._busy_since: Optional[float] = None

    @property
    def is_allocatable(self) -> bool:
        return self.state is NodeState.UP and self.running_job_id is None

    @property
    def is_busy(self) -> bool:
        return self.running_job_id is not None

    def assign(self, job_id: str, now: float) -> None:
        if not self.is_allocatable:
            raise RuntimeError(
                f"node {self.node_id} not allocatable "
                f"(state={self.state.value}, job={self.running_job_id})"
            )
        self.running_job_id = job_id
        self._busy_since = now

    def release(self, now: float) -> None:
        if self.running_job_id is None:
            raise RuntimeError(f"node {self.node_id} has no job to release")
        self.running_job_id = None
        if self._busy_since is not None:
            self.busy_seconds += now - self._busy_since
            self._busy_since = None

    def accumulated_busy_seconds(self, now: float) -> float:
        """Busy time including the in-flight assignment."""
        extra = (now - self._busy_since) if self._busy_since is not None else 0.0
        return self.busy_seconds + extra

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Node {self.node_id} {self.state.value} job={self.running_job_id}>"
