"""Simulated HPC cluster substrate.

Models the managed system of the paper's Scheduler, Maintenance, and
Misconfiguration use cases: compute nodes, a SLURM-like scheduler with
FCFS + EASY backfill and a walltime-extension hook, iterative
applications that emit progress markers, checkpoint/restart, maintenance
windows, and failure injection.

The scheduler deliberately exposes exactly the actuator surface the
paper's Execute phase uses: ``request_extension`` (which may deny or
shorten, like ``scontrol update TimeLimit`` under site policy) and
checkpoint signalling.
"""

from repro.cluster.node import Node, NodeSpec, NodeState
from repro.cluster.power import PowerModel
from repro.cluster.job import Job, JobState
from repro.cluster.application import ApplicationProfile, LaunchConfig, RunningApp
from repro.cluster.checkpoint import CheckpointRecord, CheckpointStore
from repro.cluster.scheduler import (
    ExtensionPolicy,
    ExtensionResponse,
    Reservation,
    Scheduler,
    SchedulerConfig,
)
from repro.cluster.maintenance import MaintenanceEvent, MaintenanceManager
from repro.cluster.failures import FailureInjector
from repro.cluster.cluster import Cluster, ClusterConfig

__all__ = [
    "ApplicationProfile",
    "CheckpointRecord",
    "CheckpointStore",
    "Cluster",
    "ClusterConfig",
    "ExtensionPolicy",
    "ExtensionResponse",
    "FailureInjector",
    "Job",
    "JobState",
    "LaunchConfig",
    "MaintenanceEvent",
    "MaintenanceManager",
    "Node",
    "NodeSpec",
    "NodeState",
    "PowerModel",
    "Reservation",
    "RunningApp",
    "Scheduler",
    "SchedulerConfig",
]
