"""Cluster facade: nodes + scheduler + telemetry wiring in one object.

``Cluster`` assembles the pieces every experiment needs — a node fleet,
the scheduler, the progress-marker channel, a time-series store fed by
per-node sensors — so examples and benchmarks construct one object and
submit jobs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cluster.checkpoint import CheckpointStore
from repro.cluster.maintenance import MaintenanceManager
from repro.cluster.node import Node, NodeSpec, NodeState
from repro.cluster.power import PowerModel
from repro.cluster.scheduler import Scheduler, SchedulerConfig
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
import numpy as np

from repro.telemetry.collector import CollectionPipeline
from repro.telemetry.markers import ProgressMarkerChannel
from repro.telemetry.metric import SeriesKey
from repro.telemetry.sampler import SamplingGroup
from repro.telemetry.sensor import SensorBank
from repro.telemetry.tsdb import TimeSeriesStore


@dataclass
class ClusterConfig:
    """Knobs for assembling a simulated cluster."""

    n_nodes: int = 16
    node_spec: NodeSpec = field(default_factory=NodeSpec)
    scheduler: SchedulerConfig = field(default_factory=SchedulerConfig)
    telemetry_period_s: float = 10.0
    telemetry_groups: int = 2
    telemetry_hop_latency_s: float = 0.1
    enable_telemetry: bool = True
    #: >1 hash-partitions the telemetry store across that many shard
    #: stores; loops and dashboards then read through a federated
    #: scatter-gather query engine (see :mod:`repro.shard`)
    shards: int = 1
    #: >0 backs the shard stores with shared-memory columns and runs
    #: per-shard ingest/scatter/fold work on that many worker processes
    #: (see :mod:`repro.shard.parallel`); requires ``shards > 1``.
    #: The pool starts with the cluster; call :meth:`Cluster.close` (or
    #: use the cluster as a context manager) to release it.
    parallel: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_nodes <= 0:
            raise ValueError("n_nodes must be positive")
        if self.telemetry_groups <= 0:
            raise ValueError("telemetry_groups must be positive")
        if self.shards <= 0:
            raise ValueError("shards must be positive")
        if self.parallel < 0:
            raise ValueError("parallel must be non-negative")
        if self.parallel > 0 and self.shards <= 1:
            raise ValueError("parallel workers require a sharded store (shards > 1)")


#: warn-once flag for the deprecated public ``query_engine`` entry point
_QUERY_ENGINE_WARNED = False


class Cluster:
    """Assembled simulated HPC system."""

    def __init__(self, engine: Engine, config: Optional[ClusterConfig] = None) -> None:
        self.engine = engine
        self.config = config if config is not None else ClusterConfig()
        self.rngs = RngRegistry(seed=self.config.seed)
        self.nodes: List[Node] = [
            Node(f"n{idx:04d}", self.config.node_spec) for idx in range(self.config.n_nodes)
        ]
        if self.config.parallel > 0:
            from repro.shard import ParallelShardedStore

            # shared-memory shard columns + worker pool: ingest and
            # query scatters execute process-parallel, reads still
            # federate through query_engine() / loop_runtime()
            self.store = ParallelShardedStore(
                n_shards=self.config.shards, workers=self.config.parallel
            )
            self.store.start_parallel()
        elif self.config.shards > 1:
            from repro.shard import ShardedTimeSeriesStore

            # the collector's commit path routes batches by shard; every
            # reader goes through query_engine() / loop_runtime(), which
            # federate reads back across the partitions
            self.store = ShardedTimeSeriesStore(n_shards=self.config.shards)
        else:
            self.store = TimeSeriesStore()
        self.markers = ProgressMarkerChannel(mirror_store=self.store)
        self.checkpoints = CheckpointStore()
        self.scheduler = Scheduler(
            engine,
            self.nodes,
            config=self.config.scheduler,
            marker_channel=self.markers,
            checkpoint_store=self.checkpoints,
            rng=self.rngs.stream("scheduler"),
        )
        self.maintenance = MaintenanceManager(engine, self.scheduler)
        self.power_model = PowerModel()
        self.samplers: List[SamplingGroup] = []
        self.pipeline: Optional[CollectionPipeline] = None
        self.runtime = None  # lazily built by loop_runtime()
        self._query_engines: Dict = {}  # query_engine() memo per config
        if self.config.enable_telemetry:
            self._wire_telemetry()

    # ------------------------------------------------------------ telemetry
    def _wire_telemetry(self) -> None:
        """Columnar telemetry: one sensor bank per node, one sampling
        group per aggregation subtree, batches end to end."""
        cfg = self.config
        self.pipeline = CollectionPipeline(
            self.engine,
            self.store,
            hop_latency=cfg.telemetry_hop_latency_s,
            ingest_latency=cfg.telemetry_hop_latency_s,
        )
        aggregators = self.pipeline.build(cfg.telemetry_groups)
        registry = self.pipeline.registry
        for g, agg in enumerate(aggregators):
            group = SamplingGroup(
                self.engine,
                agg,
                period=cfg.telemetry_period_s,
                name=f"telemetry-group-{g}",
            )
            for node in self.nodes[g :: cfg.telemetry_groups]:
                group.add_bank(
                    SensorBank(
                        [
                            SeriesKey.of("node_cpu_util", node=node.node_id),
                            SeriesKey.of("node_power_watts", node=node.node_id),
                        ],
                        self._node_reader(node),
                        registry=registry,
                    )
                )
            group.start()
            self.samplers.append(group)
        # scheduler queue-length gauge through the same pipeline
        queue_group = SamplingGroup(
            self.engine,
            aggregators[0],
            period=cfg.telemetry_period_s,
            name="telemetry-sched",
        )
        queue_group.add_bank(
            SensorBank(
                [SeriesKey.of("sched_queue_length")],
                lambda now: np.array([float(self.scheduler.queue_length)]),
                registry=registry,
            )
        )
        queue_group.start()
        self.samplers.append(queue_group)

    def node_cpu_util(self, node: Node) -> float:
        """Current utilization: the running app's effective intensity."""
        if node.state is not NodeState.UP or node.running_job_id is None:
            return 0.0
        app = self.scheduler.app(node.running_job_id)
        if app is None:
            return 0.0
        base = app.profile.base_step_rate
        rate = app.current_rate()
        if base <= 0:
            return 0.0
        return min(1.0, rate / base)

    def _node_reader(self, node: Node):
        def read(now: float) -> np.ndarray:
            util = self.node_cpu_util(node)
            return np.array([util, self.power_model.node_power(node, util)])

        return read

    # --------------------------------------------------------------- queries
    def query_engine(self, *, rollup_resolutions=None, cache=None, enable_cache=True):
        """Deprecated raw-engine access — use :class:`repro.api.Client`.

        The engine this returns still works exactly as before (it is the
        same memoized engine the client uses internally), but external
        consumers should now go through ``Client.from_config`` /
        ``Client.from_cluster``, which adds admission control, typed
        request/response, and the serving fast paths.  Warns once per
        process.
        """
        global _QUERY_ENGINE_WARNED
        if not _QUERY_ENGINE_WARNED:
            _QUERY_ENGINE_WARNED = True
            import warnings

            warnings.warn(
                "Cluster.query_engine() is deprecated as a public entry point; "
                "build a repro.api.Client (Client.from_config / Client.from_cluster) "
                "and use client.query()/client.engine instead",
                DeprecationWarning,
                stacklevel=2,
            )
        return self._query_engine(
            rollup_resolutions=rollup_resolutions, cache=cache, enable_cache=enable_cache
        )

    def _query_engine(self, *, rollup_resolutions=None, cache=None, enable_cache=True):
        """A query engine over this cluster's store (internal seam).

        Returns the plain vectorized engine for a single-store cluster
        and a :class:`~repro.shard.FederatedQueryEngine` (optionally
        with per-shard rollup cascades) when the store is sharded — the
        one read surface, so callers never need to know how the store is
        partitioned.  Memoized per configuration: building rollup
        cascades registers permanent ingest listeners on the store, so
        repeated calls (dashboard refresh loops) must share one engine,
        not stack new managers.
        """
        if cache is not None:  # caller-managed cache: no sharing
            return self._build_query_engine(rollup_resolutions, cache, enable_cache)
        config_key = (
            tuple(rollup_resolutions) if rollup_resolutions is not None else None,
            enable_cache,
        )
        cached = self._query_engines.get(config_key)
        if cached is not None:
            return cached
        engine = self._build_query_engine(rollup_resolutions, cache, enable_cache)
        self._query_engines[config_key] = engine
        return engine

    def _build_query_engine(self, rollup_resolutions, cache, enable_cache):
        from repro.query import QueryEngine, RollupManager
        from repro.shard import (
            FederatedQueryEngine,
            ParallelFederatedQueryEngine,
            ParallelShardedStore,
            ShardedTimeSeriesStore,
        )

        if isinstance(self.store, ParallelShardedStore):
            # tiers live in shared memory and fold inside the workers;
            # the store enforces one rollup layout for its lifetime
            if rollup_resolutions is not None:
                self.store.create_tiersets(rollup_resolutions)
            return ParallelFederatedQueryEngine(
                self.store, cache=cache, enable_cache=enable_cache
            )
        if isinstance(self.store, ShardedTimeSeriesStore):
            if rollup_resolutions is not None:
                return FederatedQueryEngine.with_rollups(
                    self.store,
                    resolutions=rollup_resolutions,
                    cache=cache,
                    enable_cache=enable_cache,
                )
            return FederatedQueryEngine(self.store, cache=cache, enable_cache=enable_cache)
        rollups = None
        if rollup_resolutions is not None:
            rollups = RollupManager(self.store, resolutions=rollup_resolutions)
        return QueryEngine(
            self.store, rollups=rollups, cache=cache, enable_cache=enable_cache
        )

    # --------------------------------------------------------------- loops
    def loop_runtime(self, *, audit=None, runtime_config=None):
        """The cluster's shared autonomy-loop runtime (lazily built).

        Hosts every loop attached to this cluster over the cluster's
        telemetry store: one fused query hub, one plan arbiter, one
        self-telemetry surface.  Case managers join it via their
        ``runtime=`` parameter.  ``audit``/``runtime_config`` only apply
        on first construction; passing them again for an existing
        runtime is a configuration conflict and raises.
        """
        if self.runtime is None:
            from repro.core.runtime import LoopRuntime, RuntimeConfig
            from repro.shard import ShardedTimeSeriesStore

            query_engine = None
            if isinstance(self.store, ShardedTimeSeriesStore):
                cfg = runtime_config if runtime_config is not None else RuntimeConfig()
                # monitors read through the federated scatter-gather
                # engine; the QueryHub's fusion/caching layers work
                # unchanged on top of it
                query_engine = self._query_engine(enable_cache=cfg.enable_cache)
            self.runtime = LoopRuntime(
                self.engine,
                self.store,
                query_engine=query_engine,
                audit=audit,
                config=runtime_config,
            )
        elif (audit is not None and self.runtime.audit is not audit) or (
            runtime_config is not None and self.runtime.config != runtime_config
        ):
            raise ValueError(
                "loop runtime already built; audit/runtime_config cannot be changed"
            )
        return self.runtime

    def attach_supervisors(self, config=None, *, kinds=("health", "tuning", "fusion")):
        """Attach the meta-loop supervisor family to this cluster's runtime.

        Builds the shared :meth:`loop_runtime` if needed, then hosts the
        fleet-supervision loops (see :mod:`repro.core.supervisor`) on
        it: every case loop attached to this cluster becomes a patient
        of heartbeat/staleness healing, veto-storm quarantine, period
        retuning, and adaptive query fusion.
        """
        from repro.core.supervisor import attach_supervisors

        return attach_supervisors(self.loop_runtime(), config, kinds=kinds)

    def collect_metrics(self, *, registry=None):
        """Absorb every live subsystem's stats into one obs registry.

        Covers whatever exists on this cluster: every built query
        engine, the loop runtime (which embeds hub and arbiter stats),
        and a sharded store's per-shard counters.  Returns the registry
        (the process-wide :data:`repro.obs.METRICS` by default) — the
        one-call path from a cluster to the unified ``--stats`` taxonomy
        and the ``obs_*`` self-publication series.
        """
        from repro.obs import METRICS, collect_metrics

        reg = registry if registry is not None else METRICS
        for engine in self._query_engines.values():
            collect_metrics(engine=engine, registry=reg)
        if self.runtime is not None:
            collect_metrics(runtime=self.runtime, registry=reg)
        return reg

    # ------------------------------------------------------------- shortcuts
    def submit(self, job) -> None:
        self.scheduler.submit(job)

    def run(self, until: float) -> float:
        return self.engine.run(until=until)

    def node_ids(self) -> List[str]:
        return [n.node_id for n in self.nodes]

    # ------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Release external resources (the parallel tier's worker pool
        and shared-memory blocks).  Idempotent; a no-op for in-process
        stores."""
        close = getattr(self.store, "close", None)
        if close is not None:
            close()

    def __enter__(self) -> "Cluster":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
