"""Checkpoint records and storage.

Checkpoints are the response hook shared by the Scheduler and
Maintenance cases.  The store keeps the newest checkpoint per
``(user, app)`` so a resubmitted job can restart from saved progress.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class CheckpointRecord:
    """One saved checkpoint: identity, saved step, and when it was taken."""

    job_id: str
    user: str
    app_name: str
    step: float
    time: float

    def __post_init__(self) -> None:
        if self.step < 0:
            raise ValueError("step must be >= 0")


class CheckpointStore:
    """Newest-wins checkpoint store keyed by ``(user, app_name)``."""

    def __init__(self) -> None:
        self._latest: Dict[Tuple[str, str], CheckpointRecord] = {}
        self.total_saved = 0

    def save(self, record: CheckpointRecord) -> None:
        key = (record.user, record.app_name)
        existing = self._latest.get(key)
        if existing is None or record.time >= existing.time:
            self._latest[key] = record
        self.total_saved += 1

    def latest(self, user: str, app_name: str) -> Optional[CheckpointRecord]:
        return self._latest.get((user, app_name))

    def restart_step(self, user: str, app_name: str) -> float:
        """Step to restart from; 0 when no checkpoint exists."""
        record = self.latest(user, app_name)
        return record.step if record is not None else 0.0

    def discard(self, user: str, app_name: str) -> None:
        self._latest.pop((user, app_name), None)

    def __len__(self) -> int:
        return len(self._latest)
