"""moda-loops: MAPE-K autonomy loops for HPC MODA.

Reproduction of Boito et al., "Autonomy Loops for Monitoring,
Operational Data Analytics, Feedback, and Response in HPC Operations"
(IEEE CLUSTER 2023, arXiv:2401.16971).

Package map
-----------

==================  =====================================================
``repro.sim``       deterministic discrete-event engine, seeded RNG
``repro.telemetry`` sensors → samplers → collectors → ring-buffer TSDB
``repro.analytics`` streaming stats, TTC forecasting, anomaly detection,
                    job similarity, misconfiguration rules, online models
``repro.cluster``   nodes, jobs, applications with progress markers,
                    SLURM-like scheduler with extension hook, maintenance
``repro.storage``   Lustre-like striped filesystem, OST health, QoS
``repro.core``      the MAPE-K loop framework and Fig. 2 patterns
``repro.loops``     the five Section III use cases, assembled
``repro.workloads`` job mixes, misestimation, resubmission, trace export
``repro.experiments`` scenario functions + table rendering for E1–E12
==================  =====================================================

Quick start::

    from repro.cluster import ApplicationProfile, Job, Node, NodeSpec, Scheduler
    from repro.loops import SchedulerCaseManager
    from repro.sim import Engine
    from repro.telemetry import ProgressMarkerChannel

    engine = Engine()
    channel = ProgressMarkerChannel()
    scheduler = Scheduler(engine, [Node("n0", NodeSpec())], marker_channel=channel)
    SchedulerCaseManager(engine, scheduler, channel)
    scheduler.submit(Job("j1", "alice",
                         ApplicationProfile("app", 6000, 1.0),
                         walltime_request_s=3600))
    engine.run(until=20_000)
"""

__version__ = "1.0.0"

__all__ = [
    "analytics",
    "cluster",
    "core",
    "experiments",
    "loops",
    "sim",
    "storage",
    "telemetry",
    "workloads",
]
